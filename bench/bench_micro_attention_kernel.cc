// Microbenchmark: the CPU blockwise attention kernels (forward tile, backward tile,
// softmax merge) across tile sizes and mask kinds.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "runtime/attention_kernel.h"

namespace dcp {
namespace {

struct TileFixture {
  std::vector<float> q;
  std::vector<float> kv;
  std::vector<float> acc;
  SequenceMask mask;
  TileArgs args;

  TileFixture(int64_t tile, int heads, int dim, MaskKind kind)
      : mask(SequenceMask::Build(MaskSpec::ForKind(kind),
                                 MakeSequenceInfo(MaskSpec::ForKind(kind), tile))) {
    Rng rng(5);
    q.resize(static_cast<size_t>(heads * tile * dim));
    kv.resize(static_cast<size_t>(2 * tile * dim));
    acc.resize(static_cast<size_t>(heads * tile * dim + 2 * heads * tile));
    for (float& v : q) {
      v = static_cast<float>(rng.NextUniform(-1, 1));
    }
    for (float& v : kv) {
      v = static_cast<float>(rng.NextUniform(-1, 1));
    }
    args = TileArgs{heads, tile, dim, 0, tile, 0, tile, false};
  }

  void ResetAcc(int heads, int64_t tile, int dim) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (int64_t i = heads * tile * dim; i < heads * tile * (dim + 1); ++i) {
      acc[static_cast<size_t>(i)] = -std::numeric_limits<float>::infinity();
    }
  }
};

void BM_AttentionTileForward(benchmark::State& state) {
  const int64_t tile = state.range(0);
  constexpr int kHeads = 4;
  constexpr int kDim = 128;
  TileFixture fixture(tile, kHeads, kDim, MaskKind::kCausal);
  for (auto _ : state) {
    fixture.ResetAcc(kHeads, tile, kDim);
    AttentionTileForward(fixture.mask, fixture.args, fixture.q, fixture.kv, fixture.acc);
    benchmark::DoNotOptimize(fixture.acc.data());
  }
  const double pairs = 0.5 * static_cast<double>(tile) * static_cast<double>(tile + 1);
  state.SetItemsProcessed(static_cast<int64_t>(pairs) * kHeads *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AttentionTileForward)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_AttentionTileBackward(benchmark::State& state) {
  const int64_t tile = state.range(0);
  constexpr int kHeads = 4;
  constexpr int kDim = 128;
  TileFixture fixture(tile, kHeads, kDim, MaskKind::kCausal);
  fixture.ResetAcc(kHeads, tile, kDim);
  AttentionTileForward(fixture.mask, fixture.args, fixture.q, fixture.kv, fixture.acc);
  std::vector<float> out(static_cast<size_t>(kHeads * tile * kDim));
  FinalizeOutput(fixture.acc, out, kHeads, tile, kDim, tile);
  std::vector<float> dout = fixture.q;  // Any payload of the right shape.
  std::vector<float> delta(static_cast<size_t>(kHeads * tile));
  ComputeDelta(dout, out, delta, kHeads, tile, kDim, tile);
  std::vector<float> dq(static_cast<size_t>(kHeads * tile * kDim));
  std::vector<float> dkv(static_cast<size_t>(2 * tile * kDim));
  for (auto _ : state) {
    std::fill(dq.begin(), dq.end(), 0.0f);
    std::fill(dkv.begin(), dkv.end(), 0.0f);
    AttentionTileBackward(fixture.mask, fixture.args, fixture.q, fixture.kv, fixture.acc,
                          dout, delta, dq, dkv);
    benchmark::DoNotOptimize(dq.data());
  }
}
BENCHMARK(BM_AttentionTileBackward)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_MergeSoftmaxAccumulators(benchmark::State& state) {
  const int64_t tile = state.range(0);
  constexpr int kHeads = 4;
  constexpr int kDim = 128;
  TileFixture a(tile, kHeads, kDim, MaskKind::kCausal);
  TileFixture b(tile, kHeads, kDim, MaskKind::kCausal);
  a.ResetAcc(kHeads, tile, kDim);
  b.ResetAcc(kHeads, tile, kDim);
  AttentionTileForward(a.mask, a.args, a.q, a.kv, a.acc);
  AttentionTileForward(b.mask, b.args, b.q, b.kv, b.acc);
  for (auto _ : state) {
    MergeSoftmaxAccumulators(a.acc, b.acc, kHeads, tile, kDim, tile);
    benchmark::DoNotOptimize(a.acc.data());
  }
}
BENCHMARK(BM_MergeSoftmaxAccumulators)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dcp
