// Microbenchmark: end-to-end planner throughput across block sizes and masks, plus the
// division-count (T) ablation and hierarchical-vs-flat placement ablation.
#include <benchmark/benchmark.h>

#include "baselines/static_planner.h"
#include "core/planner.h"
#include "data/batching.h"
#include "runtime/sim_engine.h"

namespace dcp {
namespace {

Batch MakeBatch(uint64_t seed) {
  DatasetConfig data;
  data.kind = DatasetKind::kLongDataCollections;
  data.max_seq_len = 131072;
  data.seed = seed;
  BatchingConfig batching;
  batching.token_budget = 131072;
  BatchStream stream{LengthSampler(data), batching};
  return stream.NextBatch();
}

PlannerOptions Options(int64_t block_size) {
  PlannerOptions options;
  options.block_size = block_size;
  options.num_groups = 2;
  options.heads_per_group = 4;
  options.head_dim = 128;
  return options;
}

void BM_PlanBatch(benchmark::State& state) {
  const ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  const Batch batch = MakeBatch(7);
  const PlannerOptions options = Options(state.range(0));
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), batch.seqlens);
  for (auto _ : state) {
    BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
    benchmark::DoNotOptimize(plan.stats.total_comm_bytes);
  }
}
BENCHMARK(BM_PlanBatch)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Unit(benchmark::kMillisecond);

// Ablation: number of divisions T (the paper fixes 4). Reports simulated attention time
// as a counter so the throughput/overlap trade-off is visible.
void BM_DivisionsAblation(benchmark::State& state) {
  const ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  const Batch batch = MakeBatch(9);
  PlannerOptions options = Options(2048);
  options.divisions = static_cast<int>(state.range(0));
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), batch.seqlens);
  SimEngine sim{CostModel(cluster)};
  double simulated_ms = 0.0;
  for (auto _ : state) {
    BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
    simulated_ms = sim.Simulate(plan, false).makespan * 1e3;
    benchmark::DoNotOptimize(simulated_ms);
  }
  state.counters["sim_fw_ms"] = simulated_ms;
}
BENCHMARK(BM_DivisionsAblation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Ablation: hierarchical (node-level then device-level) vs flat placement.
void BM_HierarchicalVsFlat(benchmark::State& state) {
  const ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  const Batch batch = MakeBatch(11);
  PlannerOptions options = Options(2048);
  options.hierarchical = state.range(0) != 0;
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), batch.seqlens);
  Bytes inter_node = 0;
  for (auto _ : state) {
    BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
    inter_node = plan.stats.inter_node_comm_bytes;
    benchmark::DoNotOptimize(inter_node);
  }
  state.counters["inter_node_MiB"] = static_cast<double>(inter_node) / (1 << 20);
}
BENCHMARK(BM_HierarchicalVsFlat)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcp
