// Shared driver for the end-to-end figures (15, 16): per-iteration training time of the
// 8B GPT under MLM (Megatron + enhanced TransformerEngine CP) vs DCP, across masks and
// maximum sequence lengths, on the 64-GPU testbed (8 nodes, TP=4 -> 16 CP ranks).
#ifndef DCP_BENCH_BENCH_E2E_COMMON_H_
#define DCP_BENCH_BENCH_E2E_COMMON_H_

#include <cstdio>

#include "baselines/static_planner.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/planner.h"
#include "data/batching.h"
#include "e2e/iteration_model.h"

namespace dcp {

inline PlannerOptions E2ePlannerOptions() {
  // Per TP rank the 32-head/8-KV-group model exposes 8 query heads and 2 KV groups.
  PlannerOptions options;
  options.block_size = 2048;
  options.num_groups = 2;
  options.heads_per_group = 4;
  options.head_dim = 128;
  return options;
}

inline void RunEndToEndFigure(const char* figure, DatasetKind dataset) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  const ModelSpec model = ModelSpec::Gpt8B();
  const PlannerOptions options = E2ePlannerOptions();
  std::printf("%s: end-to-end iteration time (s), GPT-8B, 64 GPUs (8 nodes, TP=4, 16-way "
              "CP), dataset %s\n\n",
              figure, DatasetKindName(dataset).c_str());
  Table table({"MaxSeqLen", "Mask", "MLM (s)", "DCP (s)", "Speedup"});
  for (int64_t max_len : {16384ll, 32768ll, 65536ll, 131072ll}) {
    for (MaskKind kind : AllMaskKinds()) {
      DatasetConfig data;
      data.kind = dataset;
      data.max_seq_len = max_len;
      BatchingConfig batching;
      batching.token_budget = 131072;
      BatchStream stream{LengthSampler(data), batching};
      const MaskSpec mask = MaskSpec::ForKind(kind);
      RunningStats mlm_time;
      RunningStats dcp_time;
      for (const Batch& batch : stream.NextBatches(5)) {
        BaselineResult mlm = PlanBaseline(BaselineKind::kTransformerEngine, batch.seqlens,
                                          mask, cluster, options);
        mlm_time.Add(ModelIteration(model, cluster, mlm.plan).Total());
        std::vector<SequenceMask> masks = BuildBatchMasks(mask, batch.seqlens);
        BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
        dcp_time.Add(ModelIteration(model, cluster, plan).Total());
      }
      table.AddRow({std::to_string(max_len), MaskKindName(kind),
                    Table::Num(mlm_time.mean(), 3), Table::Num(dcp_time.mean(), 3),
                    Table::Num(mlm_time.mean() / dcp_time.mean()) + "x"});
    }
  }
  table.Print();
  std::printf(
      "\nPaper reference: up to 1.16x speedup with causal, 1.00x~1.46x with sparse masks; "
      "causal speedups are higher at smaller max lengths (more short sequences).\n");
}

}  // namespace dcp

#endif  // DCP_BENCH_BENCH_E2E_COMMON_H_
