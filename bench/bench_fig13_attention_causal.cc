// Figure 13: micro-benchmark attention performance with the causal mask.
// Average forward / backward attention time of RFA(Ring), RFA(ZigZag), LoongTrain,
// TransformerEngine and DCP on LongDataCollections-like batches, for sequence-length
// scales {0.5, 1, 2, 4} on 32 simulated A100s (4 nodes).
#include <cstdio>

#include "bench_common.h"

namespace dcp {
namespace {

void Run() {
  std::printf("Figure 13: attention micro-benchmark, causal mask (avg ms per batch)\n");
  std::printf("Testbed: 4 nodes x 8 A100 (simulated), GQA 8Q/2KV heads, head dim 128,\n");
  std::printf("131072-token batches, LongDataCollections-like lengths.\n\n");
  Table fw_table({"Scale", "RFA(Ring)", "RFA(ZigZag)", "LT", "TE", "DCP", "DCP speedup"});
  Table bw_table({"Scale", "RFA(Ring)", "RFA(ZigZag)", "LT", "TE", "DCP", "DCP speedup"});
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    MicroBenchConfig config;
    config.length_scale = scale;
    const MaskSpec mask = MaskSpec::Causal();
    const FwBwTime ring = MeasureBaselineAttention(BaselineKind::kRfaRing, config, mask);
    const FwBwTime zigzag =
        MeasureBaselineAttention(BaselineKind::kRfaZigZag, config, mask);
    const FwBwTime lt = MeasureBaselineAttention(BaselineKind::kLoongTrain, config, mask);
    const FwBwTime te =
        MeasureBaselineAttention(BaselineKind::kTransformerEngine, config, mask);
    const FwBwTime dcp = MeasureDcpAttention(config, mask);
    const double best_fw = std::min({ring.fw_ms, zigzag.fw_ms, lt.fw_ms, te.fw_ms});
    const double best_bw = std::min({ring.bw_ms, zigzag.bw_ms, lt.bw_ms, te.bw_ms});
    fw_table.AddRow({ScaleName(scale), Table::Num(ring.fw_ms), Table::Num(zigzag.fw_ms),
                     Table::Num(lt.fw_ms), Table::Num(te.fw_ms), Table::Num(dcp.fw_ms),
                     Table::Num(best_fw / dcp.fw_ms) + "x"});
    bw_table.AddRow({ScaleName(scale), Table::Num(ring.bw_ms), Table::Num(zigzag.bw_ms),
                     Table::Num(lt.bw_ms), Table::Num(te.bw_ms), Table::Num(dcp.bw_ms),
                     Table::Num(best_bw / dcp.bw_ms) + "x"});
  }
  std::printf("(a) Attention forward\n");
  fw_table.Print();
  std::printf("\n(b) Attention backward\n");
  bw_table.Print();
  std::printf(
      "\nPaper reference: DCP 1.19x~2.45x vs next-best baseline; largest gain at scale "
      "0.5 (more short sequences), gap closing as the scale grows.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
