// Microbenchmark: multilevel vs greedy hypergraph partitioning throughput and quality on
// clustered random hypergraphs (the partitioner ablation DESIGN.md calls out).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"

namespace dcp {
namespace {

Hypergraph MakeClustered(int k, int per_group, uint64_t seed) {
  Rng rng(seed);
  Hypergraph hg;
  for (int v = 0; v < k * per_group; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int g = 0; g < k; ++g) {
    for (int e = 0; e < per_group * 2; ++e) {
      std::vector<VertexId> pins;
      const int size = 2 + static_cast<int>(rng.NextBounded(4));
      const bool cross = rng.NextDouble() < 0.15;
      for (int p = 0; p < size; ++p) {
        const int group = cross && p == 0 ? (g + 1) % k : g;
        pins.push_back(group * per_group +
                       static_cast<int>(rng.NextBounded(static_cast<uint64_t>(per_group))));
      }
      std::sort(pins.begin(), pins.end());
      pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
      if (pins.size() >= 2) {
        hg.AddEdge(1.0 + rng.NextDouble() * 3.0, pins);
      }
    }
  }
  hg.Finalize();
  return hg;
}

void BM_MultilevelPartition(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int per_group = static_cast<int>(state.range(1));
  Hypergraph hg = MakeClustered(k, per_group, 11);
  PartitionConfig config;
  config.k = k;
  config.eps = {0.25, 0.25};
  auto partitioner = MakeMultilevelPartitioner();
  double cost = 0.0;
  for (auto _ : state) {
    PartitionResult result = partitioner->Run(hg, config);
    cost = result.connectivity_cost;
    benchmark::DoNotOptimize(result.part.data());
  }
  state.counters["connectivity"] = cost;
  state.counters["vertices"] = hg.num_vertices();
}
BENCHMARK(BM_MultilevelPartition)
    ->Args({4, 64})
    ->Args({8, 128})
    ->Args({16, 256})
    // Large-k rows (production cluster scale): same n = 4096 instance family, so these
    // isolate how planning time scales with the device count.
    ->Args({64, 64})
    ->Args({128, 32})
    ->Args({256, 16})
    // Tiny large-k config for the bench_smoke ctest label.
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond);

void BM_GreedyPartition(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int per_group = static_cast<int>(state.range(1));
  Hypergraph hg = MakeClustered(k, per_group, 11);
  PartitionConfig config;
  config.k = k;
  config.eps = {0.25, 0.25};
  auto partitioner = MakeGreedyPartitioner();
  double cost = 0.0;
  for (auto _ : state) {
    PartitionResult result = partitioner->Run(hg, config);
    cost = result.connectivity_cost;
    benchmark::DoNotOptimize(result.part.data());
  }
  state.counters["connectivity"] = cost;
}
BENCHMARK(BM_GreedyPartition)
    ->Args({4, 64})
    ->Args({8, 128})
    ->Args({16, 256})
    ->Args({64, 64})
    ->Args({128, 32})
    ->Args({256, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcp
