// Figure 20: communication volume vs the computation-imbalance tolerance epsilon, on both
// datasets (causal mask). Larger tolerance gives the partitioner freedom to trade balance
// for locality.
#include <cstdio>

#include "bench_common.h"

namespace dcp {
namespace {

void Run() {
  std::printf("Figure 20: impact of computation imbalance tolerance on communication\n\n");
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  Table table({"Tolerance (1+eps)", "LongAlign (MiB)", "LongDataCollections (MiB)"});
  for (double eps : {0.1, 0.2, 0.4, 0.8, 1.2, 1.6}) {
    std::vector<std::string> row = {Table::Num(1.0 + eps, 1)};
    for (DatasetKind dataset :
         {DatasetKind::kLongAlign, DatasetKind::kLongDataCollections}) {
      MicroBenchConfig config;
      config.cluster = cluster;
      config.dataset = dataset;
      config.num_batches = 5;
      PlannerOptions options = config.MakePlannerOptions();
      options.eps_inter = eps;
      options.eps_intra = eps;
      RunningStats comm;
      for (const Batch& batch : config.MakeBatches()) {
        std::vector<SequenceMask> masks =
            BuildBatchMasks(MaskSpec::Causal(), batch.seqlens);
        BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
        comm.Add(static_cast<double>(plan.stats.inter_node_comm_bytes) / (1 << 20));
      }
      row.push_back(Table::Num(comm.mean(), 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nPaper reference: required communication decreases as the tolerance "
              "grows — a clear trade-off between compute balance and communication.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
