// Figure 18: impact of block size on planning time (block generation + hypergraph
// partitioning + computation/communication scheduling), per mask, on both datasets.
// Unlike the timing figures, this measures REAL wall-clock time of our C++ planner.
#include <cstdio>

#include "bench_common.h"

namespace dcp {
namespace {

void RunDataset(DatasetKind dataset) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  std::printf("(%s)\n", DatasetKindName(dataset).c_str());
  Table table({"Block", "Causal (ms)", "Lambda (ms)", "SharedQuestion (ms)",
               "CausalBlockwise (ms)"});
  for (int64_t block_size : {512ll, 1024ll, 2048ll, 4096ll}) {
    std::vector<std::string> row = {std::to_string(block_size)};
    for (MaskKind kind : AllMaskKinds()) {
      MicroBenchConfig config;
      config.cluster = cluster;
      config.dataset = dataset;
      config.block_size = block_size;
      config.num_batches = 4;
      const PlannerOptions options = config.MakePlannerOptions();
      RunningStats planning_ms;
      for (const Batch& batch : config.MakeBatches()) {
        std::vector<SequenceMask> masks =
            BuildBatchMasks(MaskSpec::ForKind(kind), batch.seqlens);
        BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
        planning_ms.Add(plan.stats.planning_seconds * 1e3);
      }
      row.push_back(Table::Num(planning_ms.mean(), 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dcp

int main() {
  std::printf("Figure 18: planning time vs block size (real wall clock of this planner)\n\n");
  dcp::RunDataset(dcp::DatasetKind::kLongAlign);
  dcp::RunDataset(dcp::DatasetKind::kLongDataCollections);
  std::printf("Paper reference: planning time drops rapidly with block size (fewer blocks) "
              "and is much smaller under sparse masks; with look-ahead prefetching it "
              "fully overlaps iteration execution.\n");
  return 0;
}
