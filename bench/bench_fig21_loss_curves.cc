// Figure 21: training-loss parity. Trains the tiny numeric GPT with the baseline
// (reference attention) and with DCP's planner+executor, per mask, and reports the loss
// curves plus their maximum divergence — DCP does not alter the attention algorithm, so
// the curves must coincide up to kernel-order float error.
#include <cmath>
#include <cstdio>

#include "common/table.h"
#include "e2e/trainer.h"

namespace dcp {
namespace {

void Run() {
  std::printf("Figure 21: training loss curves, MLM baseline vs DCP (200 iterations)\n\n");
  for (MaskKind kind : AllMaskKinds()) {
    TrainerConfig config;
    config.iterations = 200;
    config.mask = MaskSpec::ForKind(kind);
    config.mask.sink_tokens = 4;
    config.mask.window_tokens = 12;
    config.mask.icl_block_tokens = 8;
    const std::vector<double> mlm = TrainLossCurve(config, AttentionEngineKind::kReference);
    const std::vector<double> dcp = TrainLossCurve(config, AttentionEngineKind::kDcp);
    double max_diff = 0.0;
    for (size_t i = 0; i < mlm.size(); ++i) {
      max_diff = std::max(max_diff, std::fabs(mlm[i] - dcp[i]));
    }
    std::printf("Mask: %s\n", MaskKindName(kind).c_str());
    Table table({"Iteration", "MLM loss", "DCP loss"});
    for (size_t i = 0; i < mlm.size(); i += 25) {
      table.AddRow({std::to_string(i), Table::Num(mlm[i], 4), Table::Num(dcp[i], 4)});
    }
    table.AddRow({std::to_string(mlm.size() - 1), Table::Num(mlm.back(), 4),
                  Table::Num(dcp.back(), 4)});
    table.Print();
    std::printf("max |MLM - DCP| over 200 iterations: %.5f\n\n", max_diff);
  }
  std::printf("Paper reference: DCP's loss curve matches the MLM baseline, with only "
              "small deviations from different kernel implementations and "
              "attention/reduction computation orders.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
