// Figure 22: decomposition of end-to-end iteration time (LongAlign, max sequence length
// 131072) into Others / non-overlapped attention compute / overlapped communication /
// non-overlapped CP communication, for DCP and the MLM baseline under all four masks.
#include <cstdio>

#include "baselines/static_planner.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/planner.h"
#include "data/batching.h"
#include "e2e/iteration_model.h"

namespace dcp {
namespace {

struct Decomposition {
  double others = 0.0;
  double attn = 0.0;
  double overlap = 0.0;
  double exposed = 0.0;
};

Decomposition Average(const std::vector<IterationBreakdown>& breakdowns) {
  Decomposition out;
  for (const IterationBreakdown& b : breakdowns) {
    out.others += b.Others() * 1e3;
    out.attn += (b.attn_compute + b.attn_overhead) * 1e3;
    out.overlap += b.attn_overlap_comm * 1e3;
    out.exposed += b.attn_exposed_comm * 1e3;
  }
  const double n = static_cast<double>(breakdowns.size());
  out.others /= n;
  out.attn /= n;
  out.overlap /= n;
  out.exposed /= n;
  return out;
}

void Run() {
  std::printf("Figure 22: iteration time decomposition (LongAlign, max seq len 131072)\n");
  std::printf("Columns: Others | non-ovlp attention | overlapped comm | non-ovlp CP comm "
              "(ms). Overlapped comm is hidden under compute and not part of the sum.\n\n");
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  const ModelSpec model = ModelSpec::Gpt8B();
  PlannerOptions options;
  options.block_size = 2048;
  options.num_groups = 2;
  options.heads_per_group = 4;
  options.head_dim = 128;

  Table table({"Mask", "System", "Others", "Non-ovlp Attn", "Overlap", "Non-ovlp Comm",
               "Total (ms)"});
  for (MaskKind kind : AllMaskKinds()) {
    DatasetConfig data;
    data.kind = DatasetKind::kLongAlign;
    data.max_seq_len = 131072;
    BatchingConfig batching;
    batching.token_budget = 131072;
    BatchStream stream{LengthSampler(data), batching};
    const MaskSpec mask = MaskSpec::ForKind(kind);
    std::vector<IterationBreakdown> dcp_runs;
    std::vector<IterationBreakdown> mlm_runs;
    for (const Batch& batch : stream.NextBatches(5)) {
      std::vector<SequenceMask> masks = BuildBatchMasks(mask, batch.seqlens);
      BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
      dcp_runs.push_back(ModelIteration(model, cluster, plan));
      BaselineResult mlm = PlanBaseline(BaselineKind::kTransformerEngine, batch.seqlens,
                                        mask, cluster, options);
      mlm_runs.push_back(ModelIteration(model, cluster, mlm.plan));
    }
    for (const auto& [name, decomposition] :
         {std::pair{"DCP", Average(dcp_runs)},
          std::pair{"MLM", Average(mlm_runs)}}) {
      table.AddRow({MaskKindName(kind), name, Table::Num(decomposition.others, 0),
                    Table::Num(decomposition.attn, 0), Table::Num(decomposition.overlap, 0),
                    Table::Num(decomposition.exposed, 0),
                    Table::Num(decomposition.others + decomposition.attn +
                                   decomposition.exposed,
                               0)});
    }
  }
  table.Print();
  std::printf("\nPaper reference: under sparse masks DCP sharply reduces total "
              "communication time and slightly reduces attention compute; under causal "
              "it reduces communication but overlaps less of it.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
