// Figure 19: communication volume vs mask sparsity. Sparsity = FLOPs of the sparse mask /
// FLOPs of the causal mask on the same lengths; the sweep varies the lambda window, the
// causal-blockwise window and the shared-question answer fraction.
#include <cstdio>

#include "bench_common.h"

namespace dcp {
namespace {

struct Point {
  std::string mask;
  double sparsity;
  double comm_mib;
};

void RunDataset(DatasetKind dataset) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  std::printf("(%s)\n", DatasetKindName(dataset).c_str());

  std::vector<MaskSpec> specs;
  for (int64_t window : {1024ll, 4096ll, 16384ll, 49152ll}) {
    specs.push_back(MaskSpec::Lambda(64, window));
  }
  for (int64_t window_blocks : {2ll, 16ll, 64ll}) {
    specs.push_back(MaskSpec::CausalBlockwise(256, window_blocks));
  }
  for (int answers : {8, 4, 2}) {
    specs.push_back(MaskSpec::SharedQuestion(answers, 0.9 / answers));
  }
  specs.push_back(MaskSpec::Causal());

  Table table({"Mask", "Sparsity", "DCP comm (MiB)"});
  for (const MaskSpec& spec : specs) {
    MicroBenchConfig config;
    config.cluster = cluster;
    config.dataset = dataset;
    config.num_batches = 5;
    const PlannerOptions options = config.MakePlannerOptions();
    RunningStats comm;
    RunningStats sparsity;
    for (const Batch& batch : config.MakeBatches()) {
      std::vector<SequenceMask> masks = BuildBatchMasks(spec, batch.seqlens);
      double pairs = 0.0;
      double causal_pairs = 0.0;
      for (const SequenceMask& mask : masks) {
        pairs += static_cast<double>(mask.TotalPairs());
        causal_pairs += 0.5 * static_cast<double>(mask.length()) *
                        static_cast<double>(mask.length() + 1);
      }
      sparsity.Add(pairs / causal_pairs);
      BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
      comm.Add(static_cast<double>(plan.stats.inter_node_comm_bytes) / (1 << 20));
    }
    table.AddRow({MaskKindName(spec.kind), Table::Num(sparsity.mean(), 3),
                  Table::Num(comm.mean(), 1)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dcp

int main() {
  std::printf("Figure 19: communication volume vs mask sparsity\n\n");
  dcp::RunDataset(dcp::DatasetKind::kLongAlign);
  dcp::RunDataset(dcp::DatasetKind::kLongDataCollections);
  std::printf("Paper reference: DCP's communication grows nearly linearly with mask "
              "sparsity — sparsity translates directly into saved communication.\n");
  return 0;
}
