// Figure 17: total inter-node communication volume vs block size {512..4096}, per mask,
// on both datasets, with the MLM (TE) baseline volume as reference.
#include <cstdio>

#include "bench_common.h"

namespace dcp {
namespace {

void RunDataset(DatasetKind dataset) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  std::printf("(%s)\n", DatasetKindName(dataset).c_str());
  Table table({"Block", "Causal", "Lambda", "SharedQuestion", "CausalBlockwise",
               "MLM (causal)"});
  for (int64_t block_size : {512ll, 1024ll, 2048ll, 4096ll}) {
    std::vector<std::string> row = {std::to_string(block_size)};
    double mlm_mib = 0.0;
    for (MaskKind kind : AllMaskKinds()) {
      MicroBenchConfig config;
      config.cluster = cluster;
      config.dataset = dataset;
      config.block_size = block_size;
      config.num_batches = 6;
      const PlannerOptions options = config.MakePlannerOptions();
      RunningStats inter_node;
      RunningStats mlm_inter_node;
      for (const Batch& batch : config.MakeBatches()) {
        std::vector<SequenceMask> masks =
            BuildBatchMasks(MaskSpec::ForKind(kind), batch.seqlens);
        BatchPlan plan = PlanBatch(batch.seqlens, masks, cluster, options);
        inter_node.Add(static_cast<double>(plan.stats.inter_node_comm_bytes) / (1 << 20));
        if (kind == MaskKind::kCausal) {
          BaselineResult mlm = PlanBaseline(BaselineKind::kTransformerEngine,
                                            batch.seqlens, MaskSpec::Causal(), cluster,
                                            options);
          mlm_inter_node.Add(
              static_cast<double>(mlm.plan.stats.inter_node_comm_bytes) / (1 << 20));
        }
      }
      row.push_back(Table::Num(inter_node.mean(), 1));
      if (kind == MaskKind::kCausal) {
        mlm_mib = mlm_inter_node.mean();
      }
    }
    row.push_back(Table::Num(mlm_mib, 1));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dcp

int main() {
  std::printf("Figure 17: total inter-node communication volume (MiB per batch) vs block "
              "size\n\n");
  dcp::RunDataset(dcp::DatasetKind::kLongAlign);
  dcp::RunDataset(dcp::DatasetKind::kLongDataCollections);
  std::printf("Paper reference: DCP needs far less communication than the MLM baseline; "
              "volume increases slightly with block size (less placement flexibility).\n");
  return 0;
}
