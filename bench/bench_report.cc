// Machine-readable planning-performance report. Times the hypergraph partitioner on
// clustered micro instances and the full planner across block sizes / masks / datasets,
// then emits BENCH_planning.json so successive PRs can track the planning-time
// trajectory without scraping table output.
//
// Usage:
//   bench_report [--smoke] [--json=PATH]
// --smoke shrinks every instance (and is what the `ctest -L bench_smoke` label runs);
// --json defaults to BENCH_planning.json in the current directory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/plan_store.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"
#include "service/fault_injection.h"
#include "service/plan_client.h"
#include "service/plan_server.h"
#include "service/replica_set.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

namespace dcp {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Hypergraph MakeClustered(int k, int per_group, uint64_t seed) {
  Rng rng(seed);
  Hypergraph hg;
  for (int v = 0; v < k * per_group; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int g = 0; g < k; ++g) {
    for (int e = 0; e < per_group * 2; ++e) {
      std::vector<VertexId> pins;
      const int size = 2 + static_cast<int>(rng.NextBounded(4));
      const bool cross = rng.NextDouble() < 0.15;
      for (int p = 0; p < size; ++p) {
        const int group = cross && p == 0 ? (g + 1) % k : g;
        pins.push_back(group * per_group + static_cast<int>(rng.NextBounded(
                                               static_cast<uint64_t>(per_group))));
      }
      std::sort(pins.begin(), pins.end());
      pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
      if (pins.size() >= 2) {
        hg.AddEdge(1.0 + rng.NextDouble() * 3.0, pins);
      }
    }
  }
  hg.Finalize();
  return hg;
}

struct PartitionerRow {
  int k = 0;
  int per_group = 0;
  int vertices = 0;
  int repeats = 0;
  double ms_mean = 0.0;
  double ms_min = 0.0;
  double connectivity = 0.0;
  bool balanced = false;
};

PartitionerRow MeasurePartitioner(int k, int per_group, int repeats) {
  Hypergraph hg = MakeClustered(k, per_group, 11);
  PartitionConfig config;
  config.k = k;
  config.eps = {0.25, 0.25};
  auto partitioner = MakeMultilevelPartitioner();
  RunningStats ms;
  PartitionResult result;
  for (int r = 0; r < repeats; ++r) {
    const double start = NowSeconds();
    result = partitioner->Run(hg, config);
    ms.Add((NowSeconds() - start) * 1e3);
  }
  PartitionerRow row;
  row.k = k;
  row.per_group = per_group;
  row.vertices = hg.num_vertices();
  row.repeats = repeats;
  row.ms_mean = ms.mean();
  row.ms_min = ms.min();
  row.connectivity = result.connectivity_cost;
  row.balanced = result.balanced;
  return row;
}

struct PlanningRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;  // Total context-parallel devices the plan targets.
  int batches = 0;
  double planning_ms_mean = 0.0;
  double planning_ms_max = 0.0;
};

PlanningRow MeasurePlanning(DatasetKind dataset, MaskKind mask, int64_t block_size,
                            int num_batches, int64_t token_budget,
                            const ClusterSpec& cluster) {
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  config.num_batches = num_batches;
  config.token_budget = token_budget;
  config.max_seq_len = token_budget;
  const PlannerOptions options = config.MakePlannerOptions();
  RunningStats planning_ms;
  for (const Batch& batch : config.MakeBatches()) {
    std::vector<SequenceMask> masks =
        BuildBatchMasks(MaskSpec::ForKind(mask), batch.seqlens);
    BatchPlan plan = PlanBatch(batch.seqlens, masks, config.cluster, options);
    planning_ms.Add(plan.stats.planning_seconds * 1e3);
  }
  PlanningRow row;
  row.dataset = DatasetKindName(dataset);
  row.mask = MaskKindName(mask);
  row.block_size = block_size;
  row.k = config.cluster.num_devices();
  row.batches = num_batches;
  row.planning_ms_mean = planning_ms.mean();
  row.planning_ms_max = planning_ms.max();
  return row;
}

// Production traffic replans recurring batch shapes; this row measures the Engine's
// compiled-plan cache on exactly that workload: one cold plan of a batch, then the same
// batch re-planned `repeats` times through the cache.
struct RepeatBatchRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;
  int repeats = 0;
  double cold_ms = 0.0;          // First sighting: full planning pipeline.
  double hit_ms_mean = 0.0;      // Cache-hit path: signature hash + LRU lookup.
  double hit_ms_max = 0.0;
  double hit_rate = 0.0;         // From Engine::cache_stats over the whole run.
  double speedup = 0.0;          // cold_ms / hit_ms_mean.
};

RepeatBatchRow MeasureRepeatBatch(DatasetKind dataset, MaskKind mask, int64_t block_size,
                                  int repeats, int64_t token_budget,
                                  const ClusterSpec& cluster) {
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  config.num_batches = 1;
  config.token_budget = token_budget;
  config.max_seq_len = token_budget;
  const Batch batch = config.MakeBatches().front();
  const MaskSpec spec = MaskSpec::ForKind(mask);

  EngineOptions engine_options;
  engine_options.planner = config.MakePlannerOptions();
  Engine engine(cluster, engine_options);

  RepeatBatchRow row;
  row.dataset = DatasetKindName(dataset);
  row.mask = MaskKindName(mask);
  row.block_size = block_size;
  row.k = cluster.num_devices();
  row.repeats = repeats;

  double start = NowSeconds();
  const PlanHandle cold = engine.Plan(batch.seqlens, spec).value();
  row.cold_ms = (NowSeconds() - start) * 1e3;

  RunningStats hit_ms;
  for (int r = 0; r < repeats; ++r) {
    start = NowSeconds();
    const PlanHandle hit = engine.Plan(batch.seqlens, spec).value();
    hit_ms.Add((NowSeconds() - start) * 1e3);
    if (hit.get() != cold.get()) {
      std::fprintf(stderr, "bench_report: repeat plan was not a cache hit\n");
      std::exit(1);
    }
  }
  row.hit_ms_mean = hit_ms.mean();
  row.hit_ms_max = hit_ms.max();
  row.hit_rate = engine.cache_stats().HitRate();
  row.speedup = row.hit_ms_mean > 0.0 ? row.cold_ms / row.hit_ms_mean : 0.0;
  return row;
}

// The instrumentation tax on the hottest path in the system: the same cache-hit loop
// as repeat_batch, timed once with latency recording disabled and once enabled
// (counters/gauges are always on — the toggle gates only the clock reads and histogram
// records, which is exactly what `metrics::SetRecordingEnabled` controls in prod).
// Gate: the enabled hit path must stay within 10% of the disabled one. Both sides use
// the min over interleaved rounds — scheduler noise inflates means and maxes, and a
// real regression (an added lock, a syscall-backed clock) moves the min too.
struct MetricsOverheadRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;
  int repeats = 0;                // Hit measurements per side.
  double disabled_hit_ms_min = 0.0;
  double enabled_hit_ms_min = 0.0;
  double overhead_ratio = 0.0;    // enabled / disabled.
};

MetricsOverheadRow MeasureMetricsOverhead(DatasetKind dataset, MaskKind mask,
                                          int64_t block_size, int repeats,
                                          int64_t token_budget,
                                          const ClusterSpec& cluster) {
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  config.num_batches = 1;
  config.token_budget = token_budget;
  config.max_seq_len = token_budget;
  const Batch batch = config.MakeBatches().front();
  const MaskSpec spec = MaskSpec::ForKind(mask);

  EngineOptions engine_options;
  engine_options.planner = config.MakePlannerOptions();
  Engine engine(cluster, engine_options);
  (void)engine.Plan(batch.seqlens, spec).value();  // Populate the cache.

  MetricsOverheadRow row;
  row.dataset = DatasetKindName(dataset);
  row.mask = MaskKindName(mask);
  row.block_size = block_size;
  row.k = cluster.num_devices();
  row.repeats = repeats;

  // Interleave disabled/enabled rounds so frequency scaling or a background spike
  // hits both sides, then compare mins.
  double disabled_min = 1e30;
  double enabled_min = 1e30;
  constexpr int kRounds = 4;
  const int per_round = repeats / kRounds > 0 ? repeats / kRounds : 1;
  for (int round = 0; round < kRounds; ++round) {
    for (const bool enabled : {false, true}) {
      metrics::SetRecordingEnabled(enabled);
      double& side_min = enabled ? enabled_min : disabled_min;
      for (int r = 0; r < per_round; ++r) {
        const double start = NowSeconds();
        const PlanHandle hit = engine.Plan(batch.seqlens, spec).value();
        const double ms = (NowSeconds() - start) * 1e3;
        if (ms < side_min) side_min = ms;
        (void)hit;
      }
    }
  }
  metrics::SetRecordingEnabled(true);

  row.disabled_hit_ms_min = disabled_min;
  row.enabled_hit_ms_min = enabled_min;
  row.overhead_ratio = disabled_min > 0.0 ? enabled_min / disabled_min : 0.0;
  // 2us of absolute slack: at sub-20us hit latencies, 10% is within timer jitter even
  // for the min-of-many, and a genuine regression (a lock or syscall on the hit path)
  // costs far more than 2us.
  if (enabled_min > disabled_min * 1.10 + 0.002) {
    std::fprintf(stderr,
                 "bench_report: metrics-enabled hit path %.4f ms exceeds 1.10x the "
                 "disabled path %.4f ms (+2us slack)\n",
                 enabled_min, disabled_min);
    std::exit(1);
  }
  return row;
}

// Measures cross-process warm start: one process plans cold and writes through to the
// plan store; a fresh Engine (fresh cache, same store path — a process restart in
// miniature) must then serve the same signature from disk, bit-identical, >= 10x faster
// than cold planning. Violations exit non-zero so `ctest -L bench_smoke` fails CI on
// store-hit latency or correctness regressions.
struct WarmStartRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;
  int repeats = 0;              // Fresh-Engine restarts measured.
  double cold_ms = 0.0;         // Cold planning (empty store) in the writer engine.
  double store_hit_ms_mean = 0.0;  // First Plan() on a fresh Engine over the store.
  double store_hit_ms_min = 0.0;
  double speedup = 0.0;         // cold_ms / store_hit_ms_mean.
};

WarmStartRow MeasureWarmStart(DatasetKind dataset, MaskKind mask, int64_t block_size,
                              int repeats, int64_t token_budget,
                              const ClusterSpec& cluster, const std::string& store_dir) {
  // Start from an empty store so cold_ms really is cold across repeated bench runs.
  std::filesystem::remove_all(store_dir);
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  config.num_batches = 1;
  config.token_budget = token_budget;
  config.max_seq_len = token_budget;
  const Batch batch = config.MakeBatches().front();
  const MaskSpec spec = MaskSpec::ForKind(mask);

  EngineOptions engine_options;
  engine_options.planner = config.MakePlannerOptions();
  engine_options.plan_store_path = store_dir;

  WarmStartRow row;
  row.dataset = DatasetKindName(dataset);
  row.mask = MaskKindName(mask);
  row.block_size = block_size;
  row.k = cluster.num_devices();
  row.repeats = repeats;

  std::string cold_serialized;
  {
    Engine writer(cluster, engine_options);
    const double start = NowSeconds();
    const PlanHandle cold = writer.Plan(batch.seqlens, spec).value();
    row.cold_ms = (NowSeconds() - start) * 1e3;
    cold_serialized = SerializePlan(cold->plan);
    if (writer.cache_stats().store_writes < 1) {
      std::fprintf(stderr, "bench_report: cold plan was not written to the store\n");
      std::exit(1);
    }
  }

  RunningStats hit_ms;
  for (int r = 0; r < repeats; ++r) {
    Engine fresh(cluster, engine_options);  // Construction excluded from the hit path.
    const double start = NowSeconds();
    const PlanHandle warm = fresh.Plan(batch.seqlens, spec).value();
    hit_ms.Add((NowSeconds() - start) * 1e3);
    if (fresh.cache_stats().store_hits != 1) {
      std::fprintf(stderr, "bench_report: warm start was not served from the store\n");
      std::exit(1);
    }
    if (SerializePlan(warm->plan) != cold_serialized) {
      std::fprintf(stderr,
                   "bench_report: store-served plan differs from the cold plan\n");
      std::exit(1);
    }
  }
  row.store_hit_ms_mean = hit_ms.mean();
  row.store_hit_ms_min = hit_ms.min();
  row.speedup = row.store_hit_ms_mean > 0.0 ? row.cold_ms / row.store_hit_ms_mean : 0.0;
  // Gate on the min hit latency: scheduler noise on a loaded CI box inflates the mean,
  // but a genuine decode/IO regression moves the floor.
  const double floor_speedup =
      row.store_hit_ms_min > 0.0 ? row.cold_ms / row.store_hit_ms_min : 0.0;
  if (floor_speedup < 10.0) {
    std::fprintf(stderr,
                 "bench_report: warm-start speedup %.1fx is under the 10x regression "
                 "bar (cold %.2f ms, best store hit %.4f ms)\n",
                 floor_speedup, row.cold_ms, row.store_hit_ms_min);
    std::exit(1);
  }
  return row;
}

// Everything in a plan is deterministic except stats.planning_seconds (a wall-clock
// measurement of the producing run); zero it before bit-identity comparisons between
// independent planning runs.
std::string SerializeTimeless(const BatchPlan& plan) {
  BatchPlan copy = plan;
  copy.stats.planning_seconds = 0.0;
  return SerializePlan(copy);
}

// The planning-service row: one loopback PlanServer, measuring the full remote tier
// ladder for a recurring batch shape — cold remote planning (RPC + full planner),
// server-cache hit (RPC + record encode/decode; what a fresh trainer rank pays when a
// sibling already planned the shape), and client-cache hit (no RPC at all) — next to
// the in-process cold baseline. Gates: every remote response bit-identical to
// in-process planning, served-from tiers as expected, two tenants with different
// EngineOptions produce distinct signatures for the same batch, and the min
// server-cache-hit latency >= 10x faster than cold remote planning.
struct ServiceRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;
  int repeats = 0;                  // Fresh-client server-hit measurements.
  double in_process_cold_ms = 0.0;  // Engine::Plan baseline, no service.
  double remote_cold_ms = 0.0;      // First remote plan: RPC + full planning.
  double server_hit_ms_mean = 0.0;  // Fresh client, warm server cache.
  double server_hit_ms_min = 0.0;
  double client_hit_ms_mean = 0.0;  // Warm client LRU: no RPC.
  double client_hit_ms_min = 0.0;
  double speedup = 0.0;             // remote_cold_ms / server_hit_ms_mean.
};

ServiceRow MeasureService(DatasetKind dataset, MaskKind mask, int64_t block_size,
                          int repeats, int64_t token_budget,
                          const ClusterSpec& cluster) {
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  config.num_batches = 1;
  config.token_budget = token_budget;
  config.max_seq_len = token_budget;
  const Batch batch = config.MakeBatches().front();
  const MaskSpec spec = MaskSpec::ForKind(mask);

  EngineOptions tenant_options;
  tenant_options.planner = config.MakePlannerOptions();
  // A second tenant with a different block size: same request, different plans — the
  // isolation gate below asserts their signatures never collide.
  EngineOptions alt_options = tenant_options;
  alt_options.planner.block_size = block_size * 2;

  auto registry = std::make_shared<TenantRegistry>();
  if (!registry->Register({"bench", cluster, tenant_options}).ok() ||
      !registry->Register({"bench-alt", cluster, alt_options}).ok()) {
    std::fprintf(stderr, "bench_report: cannot register service tenants\n");
    std::exit(1);
  }
  PlanServer server(registry, PlanServerOptions{});
  if (!server.Start(ServiceAddress::Tcp("127.0.0.1", 0)).ok()) {
    std::fprintf(stderr, "bench_report: cannot start loopback plan server\n");
    std::exit(1);
  }
  auto make_client = [&](const std::string& tenant) {
    PlanClientOptions client_options;
    client_options.tenant = tenant;
    StatusOr<std::unique_ptr<PlanClient>> client =
        PlanClient::Connect(server.bound_address(), client_options);
    if (!client.ok()) {
      std::fprintf(stderr, "bench_report: cannot connect plan client: %s\n",
                   client.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(client).value();
  };

  ServiceRow row;
  row.dataset = DatasetKindName(dataset);
  row.mask = MaskKindName(mask);
  row.block_size = block_size;
  row.k = cluster.num_devices();
  row.repeats = repeats;

  // In-process baseline on an identically-configured private engine.
  std::string expected;
  {
    Engine local(cluster, tenant_options);
    const double start = NowSeconds();
    const PlanHandle cold = local.Plan(batch.seqlens, spec).value();
    row.in_process_cold_ms = (NowSeconds() - start) * 1e3;
    expected = SerializeTimeless(cold->plan);
  }

  // Cold remote planning: first sighting of the shape anywhere in the service.
  PlanSignature bench_signature;
  {
    std::unique_ptr<PlanClient> client = make_client("bench");
    const double start = NowSeconds();
    StatusOr<PlanHandle> cold = client->Plan(batch.seqlens, spec);
    row.remote_cold_ms = (NowSeconds() - start) * 1e3;
    if (!cold.ok() || client->last_source() != PlanServeSource::kPlanned) {
      std::fprintf(stderr, "bench_report: cold remote plan was not freshly planned\n");
      std::exit(1);
    }
    if (SerializeTimeless(cold.value()->plan) != expected) {
      std::fprintf(stderr,
                   "bench_report: remote plan differs from in-process planning\n");
      std::exit(1);
    }
    bench_signature = cold.value()->signature;
  }

  // Tenant isolation: the same request under different EngineOptions must produce a
  // distinct signature (and therefore can never be served from the other's cache).
  {
    std::unique_ptr<PlanClient> alt = make_client("bench-alt");
    const PlanHandle alt_plan = alt->Plan(batch.seqlens, spec).value();
    if (alt_plan->signature == bench_signature) {
      std::fprintf(stderr, "bench_report: tenant signatures collided\n");
      std::exit(1);
    }
  }

  // Server-cache hits: a fresh client per repeat (a new trainer rank joining), so the
  // client LRU is cold and the server's in-memory cache serves every request.
  RunningStats server_hit_ms;
  RunningStats client_hit_ms;
  for (int r = 0; r < repeats; ++r) {
    std::unique_ptr<PlanClient> fresh = make_client("bench");
    double start = NowSeconds();
    StatusOr<PlanHandle> hit = fresh->Plan(batch.seqlens, spec);
    server_hit_ms.Add((NowSeconds() - start) * 1e3);
    if (!hit.ok() || fresh->last_source() != PlanServeSource::kMemoryCache) {
      std::fprintf(stderr,
                   "bench_report: repeat was not served from the server cache\n");
      std::exit(1);
    }
    if (SerializeTimeless(hit.value()->plan) != expected) {
      std::fprintf(stderr, "bench_report: server-cache hit not bit-identical\n");
      std::exit(1);
    }
    // Client-cache hit on the same client: no RPC.
    start = NowSeconds();
    StatusOr<PlanHandle> local_hit = fresh->Plan(batch.seqlens, spec);
    client_hit_ms.Add((NowSeconds() - start) * 1e3);
    if (!local_hit.ok() || fresh->last_source() != PlanServeSource::kClientCache) {
      std::fprintf(stderr,
                   "bench_report: repeat was not served from the client cache\n");
      std::exit(1);
    }
  }
  row.server_hit_ms_mean = server_hit_ms.mean();
  row.server_hit_ms_min = server_hit_ms.min();
  row.client_hit_ms_mean = client_hit_ms.mean();
  row.client_hit_ms_min = client_hit_ms.min();
  row.speedup =
      row.server_hit_ms_mean > 0.0 ? row.remote_cold_ms / row.server_hit_ms_mean : 0.0;
  // Gate on the min hit latency, like warm_start: noise inflates the mean on a loaded
  // CI box, but a genuine RPC/encode regression moves the floor.
  const double floor_speedup =
      row.server_hit_ms_min > 0.0 ? row.remote_cold_ms / row.server_hit_ms_min : 0.0;
  if (floor_speedup < 10.0) {
    std::fprintf(stderr,
                 "bench_report: service speedup %.1fx is under the 10x regression bar "
                 "(remote cold %.2f ms, best server hit %.4f ms)\n",
                 floor_speedup, row.remote_cold_ms, row.server_hit_ms_min);
    std::exit(1);
  }
  server.Stop();
  return row;
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
  return samples[std::min(rank, samples.size() - 1)];
}

// The replicated-service row: a 3-replica loopback fleet with deterministic serve-side
// stragglers (every Nth serve per replica stalls), measured three ways — un-hedged,
// hedged, and with one replica killed mid-run. Gates (exit non-zero): every response in
// every pass bit-identical to in-process planning, zero lost requests after the kill
// (failover or local fallback serves them all), hedged p99 <= un-hedged p99 (small
// absolute slack for the case where a hedge itself lands on a straggler slot), and the
// hedge volume within the configured budget.
struct ReplicatedServiceRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;
  int replicas = 3;
  int requests = 0;                // Per pass.
  double unhedged_p50_ms = 0.0;
  double unhedged_p99_ms = 0.0;
  double hedged_p50_ms = 0.0;
  double hedged_p99_ms = 0.0;
  int64_t hedges_sent = 0;
  int64_t hedge_wins = 0;
  double hedge_volume = 0.0;       // hedges_sent / requests in the hedged pass.
  int64_t failovers_after_kill = 0;
  int64_t lost_requests = 0;       // Must be zero: every request served somewhere.
};

ReplicatedServiceRow MeasureReplicatedService(DatasetKind dataset, MaskKind mask,
                                              int64_t block_size, int requests,
                                              const ClusterSpec& cluster) {
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  EngineOptions tenant_options;
  tenant_options.planner = config.MakePlannerOptions();
  const MaskSpec spec = MaskSpec::ForKind(mask);

  ReplicatedServiceRow row;
  row.dataset = DatasetKindName(dataset);
  row.mask = MaskKindName(mask);
  row.block_size = block_size;
  row.k = cluster.num_devices();
  row.requests = requests;

  // Distinct recurring shapes; each routes to a stable rendezvous primary.
  std::vector<std::vector<int64_t>> shapes;
  for (int i = 0; i < requests; ++i) {
    shapes.push_back({6 * block_size + block_size * (i % 11) / 2 + 32 * i,
                      3 * block_size + 16 * (i % 7)});
  }
  Engine local(cluster, tenant_options);
  std::vector<std::string> expected;
  for (const auto& shape : shapes) {
    expected.push_back(SerializeTimeless(local.Plan(shape, spec).value()->plan));
  }

  // The fleet: three replicas, one shared tenant config, one injector each (rates are
  // armed only after warmup, so op counters start each pass at a known phase).
  std::vector<std::shared_ptr<FaultInjector>> injectors;
  std::vector<std::unique_ptr<PlanServer>> servers;
  std::vector<ServiceAddress> addresses;
  for (int i = 0; i < 3; ++i) {
    injectors.push_back(
        std::make_shared<FaultInjector>(0xbe7c0000ULL + static_cast<uint64_t>(i)));
    auto registry = std::make_shared<TenantRegistry>();
    if (!registry->Register({"bench", cluster, tenant_options}).ok()) {
      std::fprintf(stderr, "bench_report: cannot register replicated tenant\n");
      std::exit(1);
    }
    PlanServerOptions server_options;
    server_options.fault_injector = injectors.back();
    servers.push_back(std::make_unique<PlanServer>(registry, server_options));
    if (!servers.back()->Start(ServiceAddress::Tcp("127.0.0.1", 0)).ok()) {
      std::fprintf(stderr, "bench_report: cannot start replica %d\n", i);
      std::exit(1);
    }
    addresses.push_back(servers.back()->bound_address());
  }

  // Warm every replica with every shape, so the measured passes isolate the serving
  // path (cache hit vs straggler stall vs failover) from cold planning.
  for (const auto& address : addresses) {
    PlanClientOptions warm_options;
    warm_options.tenant = "bench";
    warm_options.cache_capacity = 0;
    StatusOr<std::unique_ptr<PlanClient>> warm =
        PlanClient::Connect(address, warm_options);
    if (!warm.ok()) {
      std::fprintf(stderr, "bench_report: cannot warm replica: %s\n",
                   warm.status().ToString().c_str());
      std::exit(1);
    }
    for (const auto& shape : shapes) {
      if (!warm.value()->Plan(shape, spec).ok()) {
        std::fprintf(stderr, "bench_report: replica warmup plan failed\n");
        std::exit(1);
      }
    }
  }

  ReplicaSetOptions base;
  base.tenant = "bench";
  base.cache_capacity = 0;  // Every request crosses the wire.
  base.hedging = false;

  // Arm one deterministic straggler: every (requests/3)th serve on the replica that
  // rendezvous routing favors most stalls 25ms. Periodic injection (not probabilistic)
  // keeps the stall count stable run to run; the period is chosen so that (a) warmup —
  // `requests` serves per server — leaves the op counter exactly on a period boundary,
  // and (b) each measured pass crosses at least one boundary (the favored replica is
  // primary for >= requests/3 shapes by pigeonhole), so every pass sees >= 1 stall and
  // the p99 sample genuinely measures tail behavior.
  size_t straggler = 0;
  {
    const std::unique_ptr<ReplicaSet> probe = ReplicaSet::Create(addresses, base).value();
    std::vector<int> primaries(3, 0);
    for (const auto& shape : shapes) {
      ++primaries[probe->RouteOrder(shape, spec)[0]];
    }
    straggler = static_cast<size_t>(
        std::max_element(primaries.begin(), primaries.end()) - primaries.begin());
  }
  FaultRates straggle;
  straggle.every_n = requests / 3;
  straggle.periodic_action = FaultAction::kDelay;
  straggle.delay_ms = 25;
  injectors[straggler]->SetRates(FaultPoint::kServe, straggle);

  const auto run_pass = [&](ReplicaSet& set, const char* pass) {
    std::vector<double> ms;
    ms.reserve(shapes.size());
    for (size_t i = 0; i < shapes.size(); ++i) {
      const double start = NowSeconds();
      StatusOr<PlanHandle> plan = set.Plan(shapes[i], spec);
      ms.push_back((NowSeconds() - start) * 1e3);
      if (!plan.ok()) {
        std::fprintf(stderr, "bench_report: %s request %zu lost: %s\n", pass, i,
                     plan.status().ToString().c_str());
        std::exit(1);
      }
      if (SerializeTimeless(plan.value()->plan) != expected[i]) {
        std::fprintf(stderr,
                     "bench_report: %s request %zu not bit-identical to in-process "
                     "planning\n",
                     pass, i);
        std::exit(1);
      }
    }
    return ms;
  };

  {
    std::unique_ptr<ReplicaSet> unhedged = ReplicaSet::Create(addresses, base).value();
    const std::vector<double> ms = run_pass(*unhedged, "unhedged");
    row.unhedged_p50_ms = PercentileMs(ms, 0.50);
    row.unhedged_p99_ms = PercentileMs(ms, 0.99);
  }

  // Hedge delays floored above loopback serve jitter (a warm serve is ~1-3 ms), so
  // only genuine stalls hedge; the burst covers the requests that queue behind a
  // straggling attempt on the same replica connection.
  ReplicaSetOptions hedged_options = base;
  hedged_options.hedging = true;
  hedged_options.hedge_min_delay_ms = 10;
  hedged_options.hedge_max_delay_ms = 12;
  hedged_options.hedge_budget_fraction = 0.05;
  hedged_options.hedge_budget_burst = 2;
  {
    std::unique_ptr<ReplicaSet> hedged =
        ReplicaSet::Create(addresses, hedged_options).value();
    const std::vector<double> ms = run_pass(*hedged, "hedged");
    row.hedged_p50_ms = PercentileMs(ms, 0.50);
    row.hedged_p99_ms = PercentileMs(ms, 0.99);
    const ReplicaSetStats stats = hedged->stats();
    row.hedges_sent = stats.hedges_sent;
    row.hedge_wins = stats.hedge_wins;
    row.hedge_volume =
        stats.requests > 0
            ? static_cast<double>(stats.hedges_sent) / static_cast<double>(stats.requests)
            : 0.0;
    const double allowance =
        static_cast<double>(hedged_options.hedge_budget_burst) +
        hedged_options.hedge_budget_fraction * static_cast<double>(stats.requests);
    if (static_cast<double>(stats.hedges_sent) > allowance) {
      std::fprintf(stderr,
                   "bench_report: hedge volume %lld exceeds budget %.1f "
                   "(burst %d + %.0f%% of %lld requests)\n",
                   static_cast<long long>(stats.hedges_sent), allowance,
                   hedged_options.hedge_budget_burst,
                   hedged_options.hedge_budget_fraction * 100.0,
                   static_cast<long long>(stats.requests));
      std::exit(1);
    }
  }
  // 2ms slack: when a hedge itself lands on a straggler slot the request rides out the
  // full stall on both replicas, making the two p99s equal up to scheduler noise.
  if (row.hedged_p99_ms > row.unhedged_p99_ms + 2.0) {
    std::fprintf(stderr,
                 "bench_report: hedged p99 %.2f ms did not beat un-hedged p99 %.2f ms\n",
                 row.hedged_p99_ms, row.unhedged_p99_ms);
    std::exit(1);
  }

  // Kill one replica mid-run: the fleet (plus the local-fallback engine as a last
  // resort) must serve every request, bit-identical.
  ReplicaSetOptions survivor_options = hedged_options;
  survivor_options.local_fallback = true;
  survivor_options.fallback_cluster = cluster;
  survivor_options.fallback_options = tenant_options;
  {
    std::unique_ptr<ReplicaSet> survivor =
        ReplicaSet::Create(addresses, survivor_options).value();
    for (size_t i = 0; i < shapes.size() / 2; ++i) {
      if (!survivor->Plan(shapes[i], spec).ok()) {
        std::fprintf(stderr, "bench_report: pre-kill request %zu lost\n", i);
        std::exit(1);
      }
    }
    const size_t victim = survivor->RouteOrder(shapes[0], spec)[0];
    servers[victim]->Stop();  // Mid-run: live connections, warm caches, gone.
    (void)run_pass(*survivor, "post-kill");
    row.failovers_after_kill = survivor->stats().failovers;
    if (row.failovers_after_kill < 1) {
      std::fprintf(stderr,
                   "bench_report: killing a primary caused no failover (routing never "
                   "exercised the dead replica?)\n");
      std::exit(1);
    }
  }
  row.lost_requests = 0;  // Any loss exited above.
  for (auto& server : servers) {
    server->Stop();
  }
  return row;
}

// Threads in this process right now (/proc/self/status). The scaling gate compares
// this across connection counts: an event-driven server's thread count must not move.
int CountProcessThreads() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  int threads = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) {
      break;
    }
  }
  std::fclose(f);
  return threads;
}

// The connection-scaling sweep: one loopback PlanServer with a fixed IO-thread pool,
// N in {1, 16, 64, 256} concurrent connections all replaying the same warm shape, a
// small fixed pool of closed-loop driver threads round-robining over them (so the
// sweep varies connection count, not offered concurrency). Gates (exit non-zero):
// every response bit-identical to in-process planning, server thread count identical
// at every N > 1 (the event loop multiplexes; no thread per connection), every warm
// serve zero-copy (record bytes written straight from the shared cache), and p99 at
// the largest N within 2x of the single-connection p99 (plus a 2 ms grace for loaded
// CI boxes).
struct ServiceScalingRow {
  std::string dataset;
  std::string mask;
  int64_t block_size = 0;
  int k = 0;
  int connections = 0;
  int drivers = 0;      // Closed-loop requester threads (fixed; != connections).
  int requests = 0;     // Total RPCs in this row.
  int io_threads = 0;
  int process_threads = 0;  // Threads while all N connections are open.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rps = 0.0;
};

std::vector<ServiceScalingRow> MeasureServiceScaling(DatasetKind dataset, MaskKind mask,
                                                     int64_t block_size,
                                                     int64_t token_budget,
                                                     const ClusterSpec& cluster,
                                                     const std::vector<int>& sweep,
                                                     int requests_per_conn) {
  MicroBenchConfig config;
  config.cluster = cluster;
  config.dataset = dataset;
  config.block_size = block_size;
  config.num_batches = 1;
  config.token_budget = token_budget;
  config.max_seq_len = token_budget;
  const Batch batch = config.MakeBatches().front();
  const MaskSpec spec = MaskSpec::ForKind(mask);
  EngineOptions tenant_options;
  tenant_options.planner = config.MakePlannerOptions();

  auto registry = std::make_shared<TenantRegistry>();
  if (!registry->Register({"bench", cluster, tenant_options}).ok()) {
    std::fprintf(stderr, "bench_report: cannot register scaling tenant\n");
    std::exit(1);
  }
  const int drivers = static_cast<int>(
      std::min<unsigned>(8, std::max<unsigned>(2, std::thread::hardware_concurrency())));
  PlanServerOptions server_options;
  server_options.workers = drivers;  // A full driver pool never queues on workers.
  PlanServer server(registry, server_options);
  if (!server.Start(ServiceAddress::Tcp("127.0.0.1", 0)).ok()) {
    std::fprintf(stderr, "bench_report: cannot start scaling plan server\n");
    std::exit(1);
  }

  PlanServiceRequest request;
  request.tenant = "bench";
  request.seqlens = batch.seqlens;
  request.mask_spec = spec;
  request.block_size = block_size;
  const std::string payload = SerializePlanServiceRequest(request);

  // In-process baseline plan, then one warmup RPC: validates the served record decodes
  // to the identical plan and pins the exact record bytes every later response must
  // match (the record encode is deterministic per signature).
  std::string expected_record;
  {
    Engine local(cluster, tenant_options);
    const std::string expected =
        SerializeTimeless(local.Plan(batch.seqlens, spec).value()->plan);
    StatusOr<Socket> warm = ConnectSocket(server.bound_address(), /*timeout_ms=*/2000);
    if (!warm.ok() ||
        !WriteFrame(warm.value(), FrameType::kPlanRequest, payload).ok()) {
      std::fprintf(stderr, "bench_report: scaling warmup RPC failed\n");
      std::exit(1);
    }
    StatusOr<Frame> reply = ReadFrame(warm.value(), kMaxFramePayloadBytes);
    if (!reply.ok()) {
      std::fprintf(stderr, "bench_report: scaling warmup read failed\n");
      std::exit(1);
    }
    StatusOr<PlanServiceResponse> response =
        DeserializePlanServiceResponse(reply.value().payload);
    if (!response.ok() || response.value().code != StatusCode::kOk) {
      std::fprintf(stderr, "bench_report: scaling warmup response not OK\n");
      std::exit(1);
    }
    StatusOr<std::pair<PlanSignature, BatchPlan>> decoded =
        PlanStore::DecodeRecord(response.value().record);
    if (!decoded.ok() || SerializeTimeless(decoded.value().second) != expected) {
      std::fprintf(stderr,
                   "bench_report: scaling warmup record not bit-identical to "
                   "in-process planning\n");
      std::exit(1);
    }
    expected_record = response.value().record;
  }

  const auto measure = [&](int connections) -> ServiceScalingRow {
    ServiceScalingRow row;
    row.dataset = DatasetKindName(dataset);
    row.mask = MaskKindName(mask);
    row.block_size = block_size;
    row.k = cluster.num_devices();
    row.connections = connections;
    row.drivers = connections == 1 ? 1 : std::min(drivers, connections);
    row.io_threads = server.io_thread_count();
    // Keep every row's sample count meaningful: at least ~256 samples even at N=1,
    // so the p99 is a real tail statistic and not the max of a handful of RPCs.
    const int per_conn = std::max(requests_per_conn, 256 / connections);
    row.requests = per_conn * connections;

    std::vector<Socket> sockets;
    sockets.reserve(static_cast<size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      StatusOr<Socket> socket =
          ConnectSocket(server.bound_address(), /*timeout_ms=*/2000);
      if (!socket.ok()) {
        std::fprintf(stderr, "bench_report: scaling connect %d/%d failed: %s\n", c,
                     connections, socket.status().ToString().c_str());
        std::exit(1);
      }
      socket.value().set_io_timeout_ms(10000);
      sockets.push_back(std::move(socket).value());
    }

    // Each driver owns a disjoint slice of the sockets (frames on one connection must
    // not interleave) and runs them closed-loop: one request in flight per connection.
    std::vector<std::vector<double>> samples(static_cast<size_t>(row.drivers));
    std::atomic<bool> failed{false};
    const double sweep_start = NowSeconds();
    std::vector<std::thread> threads;
    for (int d = 0; d < row.drivers; ++d) {
      threads.emplace_back([&, d] {
        std::vector<double>& mine = samples[static_cast<size_t>(d)];
        for (int r = 0; r < per_conn && !failed.load(); ++r) {
          for (int c = d; c < connections; c += row.drivers) {
            Socket& socket = sockets[static_cast<size_t>(c)];
            const double start = NowSeconds();
            if (!WriteFrame(socket, FrameType::kPlanRequest, payload).ok()) {
              failed.store(true);
              return;
            }
            StatusOr<Frame> reply = ReadFrame(socket, kMaxFramePayloadBytes);
            if (!reply.ok()) {
              failed.store(true);
              return;
            }
            mine.push_back((NowSeconds() - start) * 1e3);
            StatusOr<PlanServiceResponse> response =
                DeserializePlanServiceResponse(reply.value().payload);
            if (!response.ok() || response.value().code != StatusCode::kOk ||
                response.value().record != expected_record) {
              failed.store(true);
              return;
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    if (failed.load()) {
      std::fprintf(stderr,
                   "bench_report: scaling RPC failed or response diverged at %d "
                   "connections\n",
                   connections);
      std::exit(1);
    }
    const double elapsed = NowSeconds() - sweep_start;
    // All N sockets are still open here: a thread-per-connection server would show
    // N reader threads in this count.
    row.process_threads = CountProcessThreads();
    std::vector<double> all;
    for (const std::vector<double>& part : samples) {
      all.insert(all.end(), part.begin(), part.end());
    }
    row.p50_ms = PercentileMs(all, 0.50);
    row.p99_ms = PercentileMs(all, 0.99);
    row.rps = elapsed > 0.0 ? static_cast<double>(row.requests) / elapsed : 0.0;
    return row;
  };

  std::vector<ServiceScalingRow> rows;
  for (const int connections : sweep) {
    rows.push_back(measure(connections));
  }

  // Gate: bounded threads — identical process thread count at every multi-connection
  // N (the driver pool is fixed, so any growth is server-side threads per connection).
  for (size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].process_threads != rows[1].process_threads) {
      std::fprintf(stderr,
                   "bench_report: server thread count scaled with connections "
                   "(%d threads at N=%d vs %d at N=%d)\n",
                   rows[1].process_threads, rows[1].connections,
                   rows[i].process_threads, rows[i].connections);
      std::exit(1);
    }
  }
  // Gate: flat tail — p99 at the largest N within 2x of single-connection p99, with a
  // 2 ms absolute grace: on a small CI box the driver pool itself contends with the
  // server for cores, which inflates sub-millisecond percentiles by scheduler quanta
  // that have nothing to do with connection scaling. For the same reason a single
  // scheduler stall can spike one pass's p99, so a failing widest row is re-measured
  // (best of 3): genuine connection-scaling pathology reproduces on every pass, a
  // co-tenant CPU burst does not.
  const ServiceScalingRow& base = rows.front();
  const auto p99_exceeds_envelope = [&](const ServiceScalingRow& row) {
    return row.p99_ms > 2.0 * base.p99_ms && row.p99_ms > base.p99_ms + 2.0;
  };
  for (int retry = 0; retry < 2 && p99_exceeds_envelope(rows.back()); ++retry) {
    std::fprintf(stderr,
                 "bench_report: p99 %.3f ms at N=%d outside envelope, re-measuring "
                 "(retry %d)\n",
                 rows.back().p99_ms, rows.back().connections, retry + 1);
    ServiceScalingRow again = measure(rows.back().connections);
    // The thread-equality gate above already ran: only adopt a retry that would
    // still have passed it.
    if (again.p99_ms < rows.back().p99_ms &&
        (rows.size() < 3 || again.process_threads == rows[1].process_threads)) {
      rows.back() = again;
    }
  }
  const ServiceScalingRow& widest = rows.back();
  if (p99_exceeds_envelope(widest)) {
    std::fprintf(stderr,
                 "bench_report: p99 scaled with connections (%.3f ms at N=%d vs "
                 "%.3f ms at N=%d)\n",
                 base.p99_ms, base.connections, widest.p99_ms, widest.connections);
    std::exit(1);
  }
  // Gate: zero-copy serving — every warm hit above framed the shared cached record
  // without copying it (warmup + all sweep requests).
  int64_t total_requests = 1;
  for (const ServiceScalingRow& row : rows) {
    total_requests += row.requests;
  }
  const PlanServerStats stats = server.stats();
  if (stats.zero_copy_serves < total_requests) {
    std::fprintf(stderr,
                 "bench_report: only %lld of %lld serves were zero-copy\n",
                 static_cast<long long>(stats.zero_copy_serves),
                 static_cast<long long>(total_requests));
    std::exit(1);
  }
  server.Stop();
  return rows;
}

void WriteJson(const std::string& path, bool smoke,
               const std::vector<PartitionerRow>& partitioner,
               const std::vector<PlanningRow>& planning,
               const std::vector<RepeatBatchRow>& repeat_batch,
               const std::vector<MetricsOverheadRow>& metrics_overhead,
               const std::vector<WarmStartRow>& warm_start,
               const std::vector<ServiceRow>& service,
               const std::vector<ServiceScalingRow>& scaling,
               const std::vector<ReplicatedServiceRow>& replicated) {
  // Write to a temp file and rename into place so an interrupted run can never leave a
  // truncated JSON under the real name (cross-PR perf diffs parse these files).
  const std::string temp = path + ".tmp";
  FILE* f = std::fopen(temp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot open %s for writing\n", temp.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"dcp.bench_planning.v8\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"partitioner\": [\n");
  for (size_t i = 0; i < partitioner.size(); ++i) {
    const PartitionerRow& r = partitioner[i];
    std::fprintf(f,
                 "    {\"k\": %d, \"per_group\": %d, \"vertices\": %d, \"repeats\": %d, "
                 "\"ms_mean\": %.4f, \"ms_min\": %.4f, \"connectivity\": %.4f, "
                 "\"balanced\": %s}%s\n",
                 r.k, r.per_group, r.vertices, r.repeats, r.ms_mean, r.ms_min,
                 r.connectivity, r.balanced ? "true" : "false",
                 i + 1 < partitioner.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"planning\": [\n");
  for (size_t i = 0; i < planning.size(); ++i) {
    const PlanningRow& r = planning[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"batches\": %d, \"planning_ms_mean\": %.4f, "
                 "\"planning_ms_max\": %.4f}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.batches, r.planning_ms_mean,
                 r.planning_ms_max, i + 1 < planning.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"repeat_batch\": [\n");
  for (size_t i = 0; i < repeat_batch.size(); ++i) {
    const RepeatBatchRow& r = repeat_batch[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"repeats\": %d, \"cold_ms\": %.4f, \"hit_ms_mean\": %.6f, "
                 "\"hit_ms_max\": %.6f, \"hit_rate\": %.4f, \"speedup\": %.1f}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.repeats, r.cold_ms,
                 r.hit_ms_mean, r.hit_ms_max, r.hit_rate, r.speedup,
                 i + 1 < repeat_batch.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics_overhead\": [\n");
  for (size_t i = 0; i < metrics_overhead.size(); ++i) {
    const MetricsOverheadRow& r = metrics_overhead[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"repeats\": %d, \"disabled_hit_ms_min\": %.6f, "
                 "\"enabled_hit_ms_min\": %.6f, \"overhead_ratio\": %.4f}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.repeats,
                 r.disabled_hit_ms_min, r.enabled_hit_ms_min, r.overhead_ratio,
                 i + 1 < metrics_overhead.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"warm_start\": [\n");
  for (size_t i = 0; i < warm_start.size(); ++i) {
    const WarmStartRow& r = warm_start[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"repeats\": %d, \"cold_ms\": %.4f, "
                 "\"store_hit_ms_mean\": %.6f, \"store_hit_ms_min\": %.6f, "
                 "\"speedup\": %.1f}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.repeats, r.cold_ms,
                 r.store_hit_ms_mean, r.store_hit_ms_min, r.speedup,
                 i + 1 < warm_start.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"service\": [\n");
  for (size_t i = 0; i < service.size(); ++i) {
    const ServiceRow& r = service[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"repeats\": %d, \"in_process_cold_ms\": %.4f, "
                 "\"remote_cold_ms\": %.4f, \"server_hit_ms_mean\": %.6f, "
                 "\"server_hit_ms_min\": %.6f, \"client_hit_ms_mean\": %.6f, "
                 "\"client_hit_ms_min\": %.6f, \"speedup\": %.1f}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.repeats,
                 r.in_process_cold_ms, r.remote_cold_ms, r.server_hit_ms_mean,
                 r.server_hit_ms_min, r.client_hit_ms_mean, r.client_hit_ms_min,
                 r.speedup, i + 1 < service.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"service_scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ServiceScalingRow& r = scaling[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"connections\": %d, \"drivers\": %d, \"requests\": %d, "
                 "\"io_threads\": %d, \"process_threads\": %d, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"rps\": %.0f}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.connections, r.drivers,
                 r.requests, r.io_threads, r.process_threads, r.p50_ms, r.p99_ms,
                 r.rps, i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"service_replicated\": [\n");
  for (size_t i = 0; i < replicated.size(); ++i) {
    const ReplicatedServiceRow& r = replicated[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"mask\": \"%s\", \"block_size\": %lld, "
                 "\"k\": %d, \"replicas\": %d, \"requests\": %d, "
                 "\"unhedged_p50_ms\": %.4f, \"unhedged_p99_ms\": %.4f, "
                 "\"hedged_p50_ms\": %.4f, \"hedged_p99_ms\": %.4f, "
                 "\"hedges_sent\": %lld, \"hedge_wins\": %lld, "
                 "\"hedge_volume\": %.4f, \"failovers_after_kill\": %lld, "
                 "\"lost_requests\": %lld}%s\n",
                 r.dataset.c_str(), r.mask.c_str(),
                 static_cast<long long>(r.block_size), r.k, r.replicas, r.requests,
                 r.unhedged_p50_ms, r.unhedged_p99_ms, r.hedged_p50_ms, r.hedged_p99_ms,
                 static_cast<long long>(r.hedges_sent),
                 static_cast<long long>(r.hedge_wins), r.hedge_volume,
                 static_cast<long long>(r.failovers_after_kill),
                 static_cast<long long>(r.lost_requests),
                 i + 1 < replicated.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_report: cannot finish writing %s\n", temp.c_str());
    std::exit(1);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "bench_report: cannot rename %s to %s\n", temp.c_str(),
                 path.c_str());
    std::exit(1);
  }
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_planning.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: bench_report [--smoke] [--json=PATH]\n");
      return 2;
    }
  }

  std::vector<PartitionerRow> partitioner;
  if (smoke) {
    partitioner.push_back(MeasurePartitioner(4, 16, 2));
    partitioner.push_back(MeasurePartitioner(8, 32, 1));
    partitioner.push_back(MeasurePartitioner(64, 8, 1));  // Tiny large-k config.
  } else {
    partitioner.push_back(MeasurePartitioner(4, 64, 5));
    partitioner.push_back(MeasurePartitioner(8, 128, 3));
    partitioner.push_back(MeasurePartitioner(16, 256, 2));
    // Large-k rows: same vertex count, scaling only the device count, so successive
    // PRs can diff how planning time scales with k.
    partitioner.push_back(MeasurePartitioner(64, 64, 2));
    partitioner.push_back(MeasurePartitioner(128, 32, 2));
    partitioner.push_back(MeasurePartitioner(256, 16, 2));
  }

  std::vector<PlanningRow> planning;
  const int batches = smoke ? 1 : 4;
  const int64_t budget = smoke ? 16384 : 131072;
  const std::vector<int64_t> block_sizes =
      smoke ? std::vector<int64_t>{2048} : std::vector<int64_t>{512, 1024, 2048, 4096};
  const ClusterSpec testbed = ClusterSpec::EndToEndTestbed();
  for (DatasetKind dataset :
       {DatasetKind::kLongAlign, DatasetKind::kLongDataCollections}) {
    for (int64_t block_size : block_sizes) {
      for (MaskKind mask : AllMaskKinds()) {
        planning.push_back(
            MeasurePlanning(dataset, mask, block_size, batches, budget, testbed));
      }
    }
  }
  // End-to-end planning at production device counts: the paper's testbed topology scaled
  // to 128 CP ranks. One row per dataset keeps the full run affordable.
  ClusterSpec large = testbed;
  large.num_nodes = 16;
  large.devices_per_node = 8;
  for (DatasetKind dataset :
       {DatasetKind::kLongAlign, DatasetKind::kLongDataCollections}) {
    planning.push_back(MeasurePlanning(dataset, MaskKind::kCausal, 2048, batches,
                                       smoke ? budget : budget / 2, large));
  }

  // Repeat-batch workload: the cache hit-path latency next to the cold planning time.
  std::vector<RepeatBatchRow> repeat_batch;
  const int repeats = smoke ? 8 : 32;
  repeat_batch.push_back(MeasureRepeatBatch(DatasetKind::kLongAlign, MaskKind::kCausal,
                                            2048, repeats, budget, testbed));
  if (!smoke) {
    repeat_batch.push_back(MeasureRepeatBatch(DatasetKind::kLongDataCollections,
                                              MaskKind::kLambda, 1024, repeats, budget,
                                              testbed));
  }
  for (const RepeatBatchRow& r : repeat_batch) {
    std::printf("repeat-batch %s/%s block %lld: cold %.2f ms, hit %.4f ms (%.0fx), "
                "hit rate %.2f\n",
                r.dataset.c_str(), r.mask.c_str(), static_cast<long long>(r.block_size),
                r.cold_ms, r.hit_ms_mean, r.speedup, r.hit_rate);
  }

  // Instrumentation tax on the cache-hit path: enabled-vs-disabled latency recording
  // on the same engine, gated at 1.10x inside the measure function.
  std::vector<MetricsOverheadRow> metrics_overhead;
  metrics_overhead.push_back(MeasureMetricsOverhead(
      DatasetKind::kLongAlign, MaskKind::kCausal, 2048, smoke ? 64 : 256, budget,
      testbed));
  for (const MetricsOverheadRow& r : metrics_overhead) {
    std::printf("metrics-overhead %s/%s block %lld: hit min %.4f ms disabled, %.4f ms "
                "enabled (%.2fx)\n",
                r.dataset.c_str(), r.mask.c_str(), static_cast<long long>(r.block_size),
                r.disabled_hit_ms_min, r.enabled_hit_ms_min, r.overhead_ratio);
  }

  // Cross-process warm start through the persistent plan store. Small block sizes make
  // the cold plan genuinely expensive, so the row exercises the case persistence is for.
  std::vector<WarmStartRow> warm_start;
  const std::string store_dir = json_path + ".plan_store";
  const int warm_repeats = smoke ? 5 : 8;
  // Smoke shrinks the token budget, so drop the block size with it to keep the cold
  // plan expensive enough (64 chunks) that the row measures planning, not disk latency.
  warm_start.push_back(MeasureWarmStart(DatasetKind::kLongAlign, MaskKind::kCausal,
                                        smoke ? 256 : 512, warm_repeats, budget, testbed,
                                        store_dir));
  if (!smoke) {
    // Causal on both datasets: warm start pays off where planning is expensive. Sparse
    // masks (lambda) plan so cheaply that the disk hit is near break-even — that case
    // is served by the in-memory repeat_batch path, not the store.
    warm_start.push_back(MeasureWarmStart(DatasetKind::kLongDataCollections,
                                          MaskKind::kCausal, 512, warm_repeats, budget,
                                          testbed, store_dir));
  }
  for (const WarmStartRow& r : warm_start) {
    std::printf("warm-start %s/%s block %lld: cold %.2f ms, store hit %.4f ms (%.0fx) "
                "across %d fresh engines\n",
                r.dataset.c_str(), r.mask.c_str(), static_cast<long long>(r.block_size),
                r.cold_ms, r.store_hit_ms_mean, r.speedup, r.repeats);
  }

  // Remote planning over the loopback service: the same recurring-shape workload as
  // repeat_batch/warm_start, measured through the full RPC path.
  std::vector<ServiceRow> service;
  const int service_repeats = smoke ? 5 : 8;
  // Smoke drops the block size further than warm_start: the service hit path pays RPC
  // + record decode + mask rebuild, so the cold plan must be decisively expensive for
  // the row to measure planning displacement rather than loopback latency.
  service.push_back(MeasureService(DatasetKind::kLongAlign, MaskKind::kCausal,
                                   smoke ? 128 : 512, service_repeats, budget,
                                   testbed));
  if (!smoke) {
    service.push_back(MeasureService(DatasetKind::kLongDataCollections,
                                     MaskKind::kCausal, 512, service_repeats, budget,
                                     testbed));
  }
  for (const ServiceRow& r : service) {
    std::printf("service %s/%s block %lld: in-process cold %.2f ms, remote cold "
                "%.2f ms, server hit %.4f ms (%.0fx), client hit %.4f ms\n",
                r.dataset.c_str(), r.mask.c_str(), static_cast<long long>(r.block_size),
                r.in_process_cold_ms, r.remote_cold_ms, r.server_hit_ms_mean, r.speedup,
                r.client_hit_ms_mean);
  }

  // Connection scaling through the event-driven server: the same warm shape over
  // N in {1, 16, 64, 256} concurrent connections with a fixed driver pool.
  const std::vector<ServiceScalingRow> scaling = MeasureServiceScaling(
      DatasetKind::kLongAlign, MaskKind::kCausal, smoke ? 128 : 512, budget, testbed,
      {1, 16, 64, 256}, smoke ? 4 : 8);
  for (const ServiceScalingRow& r : scaling) {
    std::printf("service-scaling %s/%s block %lld: %d conns (%d drivers, %d reqs): "
                "p50 %.3f ms, p99 %.3f ms, %.0f rps, %d process threads\n",
                r.dataset.c_str(), r.mask.c_str(), static_cast<long long>(r.block_size),
                r.connections, r.drivers, r.requests, r.p50_ms, r.p99_ms, r.rps,
                r.process_threads);
  }

  // The replicated fleet under deterministic stragglers and a mid-run replica kill.
  // Request counts are multiples of 3 (see the straggler-period invariant inside).
  std::vector<ReplicatedServiceRow> replicated;
  replicated.push_back(MeasureReplicatedService(DatasetKind::kLongAlign,
                                                MaskKind::kCausal, smoke ? 128 : 256,
                                                smoke ? 48 : 96, testbed));
  for (const ReplicatedServiceRow& r : replicated) {
    std::printf(
        "replicated %s/%s block %lld: %d replicas, %d requests/pass, un-hedged p99 "
        "%.2f ms -> hedged p99 %.2f ms (%lld hedges, %lld wins, %.1f%% extra volume), "
        "%lld failovers after kill, %lld lost\n",
        r.dataset.c_str(), r.mask.c_str(), static_cast<long long>(r.block_size),
        r.replicas, r.requests, r.unhedged_p99_ms, r.hedged_p99_ms,
        static_cast<long long>(r.hedges_sent), static_cast<long long>(r.hedge_wins),
        r.hedge_volume * 100.0, static_cast<long long>(r.failovers_after_kill),
        static_cast<long long>(r.lost_requests));
  }

  WriteJson(json_path, smoke, partitioner, planning, repeat_batch, metrics_overhead,
            warm_start, service, scaling, replicated);
  std::printf(
      "bench_report: wrote %s (%zu partitioner rows, %zu planning rows, %zu repeat "
      "rows, %zu metrics-overhead rows, %zu warm-start rows, %zu service rows, "
      "%zu scaling rows, %zu replicated rows)\n",
      json_path.c_str(), partitioner.size(), planning.size(), repeat_batch.size(),
      metrics_overhead.size(), warm_start.size(), service.size(), scaling.size(),
      replicated.size());
  return 0;
}

}  // namespace
}  // namespace dcp

int main(int argc, char** argv) { return dcp::Main(argc, argv); }
