// Figure 7: applying ring attention to a shared-question mask causes imbalanced
// computation and redundant KV communication. The paper's example: 16 KV blocks on 4
// devices (zig-zag), 16 KV blocks transferred per ring step over 3 steps = 48, of which
// 38 are never used by the receiving device.
#include <cstdio>
#include <set>

#include "baselines/static_planner.h"
#include "common/table.h"
#include "core/planner.h"

namespace dcp {
namespace {

void Run() {
  std::printf("Figure 7: ring attention on a shared-question masked sequence\n\n");
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 4;
  PlannerOptions options;
  options.block_size = 512;
  options.num_groups = 1;  // Count per-block transfers like the figure (one head group).
  options.heads_per_group = 8;
  options.head_dim = 128;
  // 16 chunks of 512 tokens; question = 2 blocks (12.5%), 4 answers of 3.5 blocks each —
  // the geometry of the paper's Fig. 7 drawing.
  const std::vector<int64_t> seqlens = {512 * 16};
  const MaskSpec mask = MaskSpec::SharedQuestion(4, 0.21875);

  BaselineResult ring =
      PlanBaseline(BaselineKind::kRfaZigZag, seqlens, mask, cluster, options);

  // Count transferred KV blocks and how many of them the receiving device actually uses.
  int transferred = 0;
  int used = 0;
  std::vector<Flops> flops(4, 0.0);
  for (int d = 0; d < ring.plan.num_devices(); ++d) {
    const DevicePlan& dev = ring.plan.devices[static_cast<size_t>(d)];
    std::set<int32_t> consumed_kv_slots;
    for (const Instruction& instr : dev.instructions) {
      if (instr.kind == InstrKind::kBlockwiseAttention) {
        flops[static_cast<size_t>(d)] += instr.flops;
        for (const AttentionWorkItem& item : instr.attn_items) {
          consumed_kv_slots.insert(item.kv.slot);
        }
      }
    }
    for (const Instruction& instr : dev.instructions) {
      if (instr.kind == InstrKind::kCommLaunch && !instr.is_send) {
        for (const TransferBlock& block : instr.blocks) {
          if (block.ref.kind == BufKind::kKV) {
            ++transferred;
            if (consumed_kv_slots.contains(block.ref.slot)) {
              ++used;
            }
          }
        }
      }
    }
  }
  std::printf("Ring attention: %d KV blocks transferred, %d used, %d redundant (%.0f%%)\n",
              transferred, used, transferred - used,
              100.0 * (transferred - used) / transferred);
  std::printf("Paper reference: 48 transferred, 38 redundant (79%%).\n\n");

  Table table({"Device", "Ring GFLOPs", "DCP GFLOPs"});
  std::vector<SequenceMask> masks = BuildBatchMasks(mask, seqlens);
  BatchPlan dcp = PlanBatch(seqlens, masks, cluster, options);
  std::vector<Flops> dcp_flops(4, 0.0);
  for (int d = 0; d < dcp.num_devices(); ++d) {
    for (const Instruction& instr : dcp.devices[static_cast<size_t>(d)].instructions) {
      if (instr.kind == InstrKind::kBlockwiseAttention) {
        dcp_flops[static_cast<size_t>(d)] += instr.flops;
      }
    }
  }
  for (int d = 0; d < 4; ++d) {
    table.AddRow({std::to_string(d), Table::Num(flops[static_cast<size_t>(d)] / 1e9, 2),
                  Table::Num(dcp_flops[static_cast<size_t>(d)] / 1e9, 2)});
  }
  table.Print();
  std::printf("\nDCP comm: %lld KV-equivalent bytes vs ring %lld bytes.\n",
              static_cast<long long>(dcp.stats.total_comm_bytes),
              static_cast<long long>(ring.plan.stats.total_comm_bytes));
  std::printf("Paper reference: static placement overloads the last device (the global "
              "test/answer region) while DCP balances compute and drops unused KV "
              "transfers.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
