// Figure 14: micro-benchmark attention performance under the four attention masks
// (causal, causal blockwise, lambda, shared question), TE vs DCP, forward and backward,
// for mean sequence-length scales {0.5, 1, 2, 4}.
#include <cstdio>

#include "bench_common.h"

namespace dcp {
namespace {

void Run() {
  std::printf("Figure 14: attention micro-benchmark across masks (avg ms per batch)\n");
  std::printf("TE = TransformerEngine extended with variable-length + mask support.\n\n");
  Table table({"Scale", "Mask", "TE FW", "DCP FW", "TE BW", "DCP BW", "Speedup(FW+BW)"});
  RunningStats sparse_speedups;
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    for (MaskKind kind : AllMaskKinds()) {
      MicroBenchConfig config;
      config.length_scale = scale;
      config.num_batches = 8;
      const MaskSpec mask = MaskSpec::ForKind(kind);
      const FwBwTime te =
          MeasureBaselineAttention(BaselineKind::kTransformerEngine, config, mask);
      const FwBwTime dcp = MeasureDcpAttention(config, mask);
      const double speedup = te.total_ms() / dcp.total_ms();
      if (kind != MaskKind::kCausal) {
        sparse_speedups.Add(speedup);
      }
      table.AddRow({ScaleName(scale), MaskKindName(kind), Table::Num(te.fw_ms),
                    Table::Num(dcp.fw_ms), Table::Num(te.bw_ms), Table::Num(dcp.bw_ms),
                    Table::Num(speedup) + "x"});
    }
  }
  table.Print();
  std::printf(
      "\nSparse-mask speedup range: %.2fx ~ %.2fx (paper: 2.15x~3.77x; higher on the "
      "sparser lambda / causal-blockwise masks than on shared-question).\n",
      sparse_speedups.min(), sparse_speedups.max());
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
