// Figure 2: sequence-length distributions of the (synthetic) LongAlign and
// LongDataCollections datasets, capped at 131072.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "data/dataset.h"

namespace dcp {
namespace {

void Run() {
  std::printf("Figure 2: sequence length distribution (synthetic fits, capped at "
              "131072)\n\n");
  for (DatasetKind kind :
       {DatasetKind::kLongAlign, DatasetKind::kLongDataCollections}) {
    DatasetConfig config;
    config.kind = kind;
    LengthSampler sampler(config);
    Histogram hist(0, 131072, 16);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
      const int64_t len = sampler.Next();
      hist.Add(static_cast<double>(len));
      stats.Add(static_cast<double>(len));
    }
    std::printf("%s: mean %.0f, min %.0f, max %.0f\n", DatasetKindName(kind).c_str(),
                stats.mean(), stats.min(), stats.max());
    std::printf("%s\n", hist.ToAscii(56).c_str());
  }
  std::printf("Paper reference: both datasets are heavily skewed toward short sequences "
              "with a long tail; LongAlign has longer means and fewer short sequences "
              "than LongDataCollections.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
