// Figure 5: communication and computation under three parallelization configurations for
// a batch of one long and two short sequences on two devices:
//  (a) static CP (every sequence split across both devices)   - heavy communication;
//  (b) pure DP (whole sequences per device)                   - zero comm, imbalanced;
//  (c) DCP (CP for the long sequence, DP for the short ones)  - balanced, half the comm.
#include <cstdio>

#include "baselines/static_planner.h"
#include "common/table.h"
#include "core/block_gen.h"
#include "core/plan_compile.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "runtime/sim_engine.h"

namespace dcp {
namespace {

PlannerOptions ToyOptions() {
  PlannerOptions options;
  options.block_size = 1024;
  options.num_groups = 2;
  options.heads_per_group = 4;
  options.head_dim = 128;
  options.divisions = 2;
  // The figure's point is balanced computation: use a tight tolerance so the planner must
  // split the long sequence (with a loose one, pure DP's 1.33x max/avg imbalance is
  // feasible and its zero communication wins).
  options.eps_inter = 0.1;
  options.eps_intra = 0.1;
  return options;
}

struct ConfigResult {
  Bytes comm = 0;
  Flops dev0 = 0.0;
  Flops dev1 = 0.0;
  double sim_ms = 0.0;
};

ConfigResult Evaluate(const BatchPlan& plan, const ClusterSpec& cluster) {
  ConfigResult result;
  result.comm = plan.stats.total_comm_bytes;
  std::vector<Flops> flops(2, 0.0);
  for (int d = 0; d < plan.num_devices(); ++d) {
    for (const Instruction& instr : plan.devices[static_cast<size_t>(d)].instructions) {
      if (instr.kind == InstrKind::kBlockwiseAttention) {
        flops[static_cast<size_t>(d)] += instr.flops;
      }
    }
  }
  result.dev0 = flops[0];
  result.dev1 = flops[1];
  SimEngine sim{CostModel(cluster)};
  result.sim_ms = sim.Simulate(plan, false).makespan * 1e3;
  return result;
}

// Hand-built pure-DP placement: long sequence on device 0, both short ones on device 1
// (the paper's Fig. 5b).
BatchPlan PureDpPlan(const std::vector<int64_t>& seqlens,
                     const std::vector<SequenceMask>& masks, const ClusterSpec& cluster,
                     const PlannerOptions& options) {
  const BatchLayout layout = options.MakeLayout(seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  PlacementResult placement;
  placement.chunk_device.resize(static_cast<size_t>(graph.num_chunks()));
  for (int gc = 0; gc < graph.num_chunks(); ++gc) {
    placement.chunk_device[static_cast<size_t>(gc)] =
        graph.chunks[static_cast<size_t>(gc)].seq == 0 ? 0 : 1;
  }
  placement.comp_device.resize(static_cast<size_t>(graph.num_comp_blocks()));
  for (int i = 0; i < graph.num_comp_blocks(); ++i) {
    placement.comp_device[static_cast<size_t>(i)] =
        graph.comp_blocks[static_cast<size_t>(i)].seq == 0 ? 0 : 1;
  }
  ScheduleOptions schedule_options;
  schedule_options.divisions = options.divisions;
  ScheduleResult schedule = ScheduleBlocks(graph, placement, 2, schedule_options);
  return CompilePlan(graph, placement, schedule, cluster);
}

void Run() {
  std::printf("Figure 5: parallelization configurations on 2 devices\n");
  std::printf("Batch: one 8192-token and two 4096-token sequences, causal mask.\n\n");
  ClusterSpec cluster;
  cluster.num_nodes = 2;  // Two devices on separate nodes: communication is expensive.
  cluster.devices_per_node = 1;
  const PlannerOptions options = ToyOptions();
  const std::vector<int64_t> seqlens = {8192, 4096, 4096};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);

  // (a) Static CP: RFA ZigZag splits every sequence across both devices.
  BaselineResult cp = PlanBaseline(BaselineKind::kRfaZigZag, seqlens, MaskSpec::Causal(),
                                   cluster, options);
  // (b) Pure DP.
  BatchPlan dp = PureDpPlan(seqlens, masks, cluster, options);
  // (c) DCP.
  BatchPlan dcp = PlanBatch(seqlens, masks, cluster, options);

  Table table({"Config", "Comm (MiB)", "Dev0 GFLOPs", "Dev1 GFLOPs", "Imbalance (max/avg)",
               "Sim time (ms)"});
  auto add = [&](const std::string& name, const ConfigResult& r) {
    const double imbalance = std::max(r.dev0, r.dev1) / ((r.dev0 + r.dev1) / 2.0);
    table.AddRow({name, Table::Num(static_cast<double>(r.comm) / (1 << 20), 1),
                  Table::Num(r.dev0 / 1e9, 1), Table::Num(r.dev1 / 1e9, 1),
                  Table::Num(imbalance) + "x", Table::Num(r.sim_ms, 3)});
  };
  add("(a) static CP", Evaluate(cp.plan, cluster));
  add("(b) pure DP", Evaluate(dp, cluster));
  add("(c) DCP (CP long + DP short)", Evaluate(dcp, cluster));
  table.Print();
  std::printf("\nPaper reference: (a) balances compute but communicates every sequence's "
              "KV; (b) eliminates communication but leaves compute 3x imbalanced; (c) "
              "balances compute with roughly half of (a)'s communication.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
