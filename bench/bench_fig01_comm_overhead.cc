// Figure 1: context-parallel communication overhead of the static baseline (Megatron +
// TransformerEngine CP) when training the 8B GPT on LongAlign-like data, for three setups:
// 4 nodes @ max 65536, 8 nodes @ max 65536, 8 nodes @ max 131072. Reports the iteration
// time decomposition and the communication-overhead fraction the paper annotates above
// each bar.
#include <cstdio>

#include "baselines/static_planner.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/batching.h"
#include "e2e/iteration_model.h"

namespace dcp {
namespace {

struct Setup {
  std::string name;
  int num_nodes;
  int64_t max_seq_len;
};

void Run() {
  std::printf("Figure 1: CP communication overhead of static context parallelism\n");
  std::printf("(8B GPT, TP=4 within nodes, remaining GPUs in context parallelism, "
              "LongAlign-like data)\n\n");
  const ModelSpec model = ModelSpec::Gpt8B();
  Table table({"Setup", "Others (ms)", "Non-ovlp Attn (ms)", "Overlap (ms)",
               "Non-ovlp CP Comm (ms)", "Comm overhead frac"});
  const std::vector<Setup> setups = {
      {"4 nodes (32 GPUs), max 65536", 4, 65536},
      {"8 nodes (64 GPUs), max 65536", 8, 65536},
      {"8 nodes (64 GPUs), max 131072", 8, 131072},
  };
  for (const Setup& setup : setups) {
    ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
    cluster.num_nodes = setup.num_nodes;  // TP=4 => 2 CP ranks per node.
    PlannerOptions options;
    options.block_size = 2048;
    options.num_groups = 2;
    options.heads_per_group = 4;
    options.head_dim = 128;

    DatasetConfig data;
    data.kind = DatasetKind::kLongAlign;
    data.max_seq_len = setup.max_seq_len;
    BatchingConfig batching;
    batching.token_budget = setup.max_seq_len;
    BatchStream stream{LengthSampler(data), batching};

    RunningStats others;
    RunningStats attn;
    RunningStats overlap;
    RunningStats exposed;
    for (const Batch& batch : stream.NextBatches(5)) {
      BaselineResult mlm = PlanBaseline(BaselineKind::kTransformerEngine, batch.seqlens,
                                        MaskSpec::Causal(), cluster, options);
      const IterationBreakdown breakdown = ModelIteration(model, cluster, mlm.plan);
      others.Add(breakdown.Others() * 1e3);
      attn.Add((breakdown.attn_compute + breakdown.attn_overhead) * 1e3);
      overlap.Add(breakdown.attn_overlap_comm * 1e3);
      exposed.Add(breakdown.attn_exposed_comm * 1e3);
    }
    const double total = others.mean() + attn.mean() + exposed.mean();
    table.AddRow({setup.name, Table::Num(others.mean(), 0), Table::Num(attn.mean(), 0),
                  Table::Num(overlap.mean(), 0), Table::Num(exposed.mean(), 0),
                  Table::Num(exposed.mean() / total * 100.0, 1) + "%"});
  }
  table.Print();
  std::printf("\nPaper reference: 27.7%% / 44.6%% / 36.7%% non-overlapped CP communication "
              "— overhead grows with cluster size.\n");
}

}  // namespace
}  // namespace dcp

int main() {
  dcp::Run();
  return 0;
}
