// Figure 15: end-to-end training performance on the LongAlign dataset.
#include "bench_e2e_common.h"

int main() {
  dcp::RunEndToEndFigure("Figure 15", dcp::DatasetKind::kLongAlign);
  return 0;
}
