// Shared setup for the figure-reproduction benches: the paper's micro-benchmark testbed
// (4x p4de = 32 A100s, all in context parallelism), attention-op spec (GQA, 8 query heads,
// 2 KV groups, head dim 128 — the per-TP-rank view of the 32-head model), 131072-token
// global batches, and dataset scaling knobs (§7.1).
#ifndef DCP_BENCH_BENCH_COMMON_H_
#define DCP_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "baselines/static_planner.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/planner.h"
#include "data/batching.h"
#include "data/dataset.h"
#include "runtime/sim_engine.h"

namespace dcp {

struct MicroBenchConfig {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  DatasetKind dataset = DatasetKind::kLongDataCollections;
  double length_scale = 1.0;
  int64_t token_budget = 131072;
  int64_t max_seq_len = 131072;
  int num_batches = 12;  // The paper averages over 200 batches; 12 keeps benches snappy
                         // while the skewed length distribution is already well covered.
  int64_t block_size = 2048;
  uint64_t seed = 42;

  PlannerOptions MakePlannerOptions() const {
    PlannerOptions options;
    options.block_size = block_size;
    options.num_groups = 2;
    options.heads_per_group = 4;
    options.head_dim = 128;
    return options;
  }

  std::vector<Batch> MakeBatches() const {
    DatasetConfig data;
    data.kind = dataset;
    data.length_scale = length_scale;
    data.max_seq_len = max_seq_len;
    data.seed = seed;
    BatchingConfig batching;
    batching.token_budget = token_budget;
    BatchStream stream{LengthSampler(data), batching};
    return stream.NextBatches(num_batches);
  }
};

struct FwBwTime {
  double fw_ms = 0.0;
  double bw_ms = 0.0;
  double total_ms() const { return fw_ms + bw_ms; }
};

// Average simulated attention time of DCP over the config's batches.
inline FwBwTime MeasureDcpAttention(const MicroBenchConfig& config,
                                    const MaskSpec& mask_spec) {
  const PlannerOptions options = config.MakePlannerOptions();
  SimEngine sim{CostModel(config.cluster)};
  RunningStats fw;
  RunningStats bw;
  for (const Batch& batch : config.MakeBatches()) {
    std::vector<SequenceMask> masks = BuildBatchMasks(mask_spec, batch.seqlens);
    BatchPlan plan = PlanBatch(batch.seqlens, masks, config.cluster, options);
    fw.Add(sim.Simulate(plan, false).makespan * 1e3);
    bw.Add(sim.Simulate(plan, true).makespan * 1e3);
  }
  return {fw.mean(), bw.mean()};
}

// Average simulated attention time of a static baseline. LoongTrain's padded batches
// execute as several sequential waves under the token budget; their times sum.
inline FwBwTime MeasureBaselineAttention(BaselineKind kind, const MicroBenchConfig& config,
                                         const MaskSpec& mask_spec) {
  const PlannerOptions options = config.MakePlannerOptions();
  SimEngine sim{CostModel(config.cluster)};
  RunningStats fw;
  RunningStats bw;
  for (const Batch& batch : config.MakeBatches()) {
    double batch_fw = 0.0;
    double batch_bw = 0.0;
    for (const BaselineResult& wave :
         PlanBaselineWaves(kind, batch.seqlens, mask_spec, config.cluster, options,
                           config.token_budget)) {
      batch_fw += sim.Simulate(wave.plan, false).makespan * 1e3;
      batch_bw += sim.Simulate(wave.plan, true).makespan * 1e3;
    }
    fw.Add(batch_fw);
    bw.Add(batch_bw);
  }
  return {fw.mean(), bw.mean()};
}

inline std::string ScaleName(double scale) {
  if (scale == 0.5) {
    return "0.5";
  }
  if (scale == 1.0) {
    return "1";
  }
  if (scale == 2.0) {
    return "2";
  }
  return Table::Num(scale, 1);
}

}  // namespace dcp

#endif  // DCP_BENCH_BENCH_COMMON_H_
