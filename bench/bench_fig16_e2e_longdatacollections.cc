// Figure 16: end-to-end training performance on the LongDataCollections dataset.
#include "bench_e2e_common.h"

int main() {
  dcp::RunEndToEndFigure("Figure 16", dcp::DatasetKind::kLongDataCollections);
  return 0;
}
