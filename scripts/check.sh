#!/usr/bin/env bash
# CI gate: build the strict (warnings-as-errors) preset, run the full test suite, then
# the tiny-config bench smoke label. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset strict
cmake --build --preset strict -j "$(nproc)"
ctest --test-dir build-strict -j "$(nproc)" --output-on-failure
# Explicit gate on the plan-store round-trip + corruption suites: malformed plan bytes
# must never abort a process, and store hits must stay bit-identical.
ctest --test-dir build-strict -R 'test_plan_store|test_instructions|test_property_plans' \
      --output-on-failure
# Explicit gate on the planning-service suites: wire framing/codec corruption handling,
# loopback end-to-end bit-identity, tenant isolation, and the multi-threaded stress run.
ctest --test-dir build-strict -R 'test_service_wire|test_plan_service' \
      --output-on-failure
# Chaos gate: re-run the replica-set suite (failover, hedging, fault injection, and the
# chaos workload that must lose zero requests) AND the plan-service suite (the epoll
# server under accept-pressure, torn non-blocking writes, and slow-reader shedding)
# under a fresh fault seed. The seed is clock-derived unless DCP_FAULT_SEED is already
# set, and echoed so any failure can be reproduced exactly with
# `DCP_FAULT_SEED=<seed> scripts/check.sh`.
DCP_FAULT_SEED="${DCP_FAULT_SEED:-$(date +%s)}"
export DCP_FAULT_SEED
echo "check.sh: chaos gate with DCP_FAULT_SEED=${DCP_FAULT_SEED}"
ctest --test-dir build-strict -R 'test_replica_set|test_plan_service' --output-on-failure
# bench_smoke includes the warm_start, service, service_scaling, and
# service_replicated rows: bench_report exits non-zero when the store-hit or remote
# server-cache-hit paths regress past the 10x bar, serve a non-identical plan, two
# tenants' signatures collide, a replica kill loses a request, hedging exceeds its
# budget, the hedged p99 stops beating the un-hedged p99, the server's thread count
# scales with connections, a warm serve copies the cached record, or p99 at 256
# connections leaves the single-connection envelope.
ctest --test-dir build-strict -L bench_smoke --output-on-failure
echo "check.sh: all green"
