#!/usr/bin/env bash
# CI gate: lint + cross-file semantic analysis, build the strict (warnings-as-errors)
# preset, run the full test suite, the tiny-config bench smoke label, a live-server
# metrics scrape validated against the Prometheus text format, then the
# sanitizer tiers (TSan on the concurrency suites, ASan/UBSan on a smoke subset), a
# gcc -fanalyzer pass over curated IO/codec targets, and — when clang tooling is
# available — the clang-strict thread-safety-analysis build and the .clang-tidy
# profile. Run from anywhere inside the repo. Set DCP_SKIP_SANITIZERS=1 for a quick
# lint+strict-only pass (also skips the -fanalyzer tier).
set -euo pipefail

cd "$(dirname "$0")/.."

# Determinism/concurrency lint: unordered-container iteration feeding serialized bytes,
# ad-hoc RNG outside common/rng, blocking socket IO on event-loop threads, and
# discarded Status/StatusOr. Self-test first so a regressed lint can't pass vacuously.
python3 scripts/dcp_lint.py --self-test
python3 scripts/dcp_lint.py

# Cross-file semantic analysis: lock-order cycles and undocumented nesting, plan-codec
# field completeness against the pinned inventory, PlanSignature coverage of every
# plan-affecting knob, and frame-dispatch exhaustiveness. Self-test first for the same
# reason as the lint: the seeded fixtures prove the analyses still catch what they
# claim to catch before the clean tree run means anything.
python3 scripts/dcp_analyze --self-test
python3 scripts/dcp_analyze

cmake --preset strict
cmake --build --preset strict -j "$(nproc)"
ctest --test-dir build-strict -j "$(nproc)" --output-on-failure
# Explicit gate on the plan-store round-trip + corruption suites: malformed plan bytes
# must never abort a process, and store hits must stay bit-identical.
ctest --test-dir build-strict -R 'test_plan_store|test_instructions|test_property_plans' \
      --output-on-failure
# Explicit gate on the planning-service suites: wire framing/codec corruption handling,
# loopback end-to-end bit-identity, tenant isolation, and the multi-threaded stress run.
ctest --test-dir build-strict -R 'test_service_wire|test_plan_service' \
      --output-on-failure
# Chaos gate: re-run the replica-set suite (failover, hedging, fault injection, and the
# chaos workload that must lose zero requests) AND the plan-service suite (the epoll
# server under accept-pressure, torn non-blocking writes, and slow-reader shedding)
# under a fresh fault seed. The seed is clock-derived unless DCP_FAULT_SEED is already
# set, and echoed so any failure can be reproduced exactly with
# `DCP_FAULT_SEED=<seed> scripts/check.sh`.
DCP_FAULT_SEED="${DCP_FAULT_SEED:-$(date +%s)}"
export DCP_FAULT_SEED
echo "check.sh: chaos gate with DCP_FAULT_SEED=${DCP_FAULT_SEED}"
ctest --test-dir build-strict -R 'test_replica_set|test_plan_service' --output-on-failure
# bench_smoke includes the warm_start, service, service_scaling, and
# service_replicated rows: bench_report exits non-zero when the store-hit or remote
# server-cache-hit paths regress past the 10x bar, serve a non-identical plan, two
# tenants' signatures collide, a replica kill loses a request, hedging exceeds its
# budget, the hedged p99 stops beating the un-hedged p99, the server's thread count
# scales with connections, a warm serve copies the cached record, or p99 at 256
# connections leaves the single-connection envelope.
ctest --test-dir build-strict -L bench_smoke --output-on-failure

# Metrics tier: scrape a live loopback server the way an operator would and validate
# the Prometheus exposition structurally (validator self-test first, same contract as
# the lint). The two plans force the planned + memory-cache serve paths into the
# per-tenant histograms, and the --require pins assert the serve-source histogram and
# the per-phase span counters actually appear on the wire — not just in unit tests.
python3 scripts/validate_prometheus.py --self-test
metrics_store="$(mktemp -d)"
# ServiceAddress rejects port 0 (no kernel auto-assign), so derive a high port from
# the script pid to dodge collisions between concurrent CI runs on one host.
metrics_port=$((21000 + $$ % 10000))
./build-strict/example_dcpctl serve --listen "tcp:127.0.0.1:${metrics_port}" \
  --store "${metrics_store}" &
metrics_server_pid=$!
trap 'kill "${metrics_server_pid}" 2>/dev/null || true; rm -rf "${metrics_store}"' EXIT
for _ in $(seq 1 50); do
  if ./build-strict/example_dcpctl remote stats \
       --connect "tcp:127.0.0.1:${metrics_port}" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
./build-strict/example_dcpctl remote plan \
  --connect "tcp:127.0.0.1:${metrics_port}" --seqlens 60,33,18 >/dev/null
./build-strict/example_dcpctl remote plan \
  --connect "tcp:127.0.0.1:${metrics_port}" --seqlens 60,33,18 >/dev/null
./build-strict/example_dcpctl remote metrics \
  --connect "tcp:127.0.0.1:${metrics_port}" \
  | python3 scripts/validate_prometheus.py \
      --require 'dcp_server_serve_latency_us_count\{source="planned"' \
      --require 'dcp_server_serve_latency_us_count\{source="memory-cache"' \
      --require 'dcp_phase_us_total\{phase="cache_probe"\}' \
      --require 'dcp_phase_us_total\{phase="encode"\}' \
      --require 'dcp_server_requests_received_total'
kill "${metrics_server_pid}" 2>/dev/null || true
wait "${metrics_server_pid}" 2>/dev/null || true
trap - EXIT
rm -rf "${metrics_store}"
echo "check.sh: metrics tier green (live scrape validated on port ${metrics_port})"

if [[ "${DCP_SKIP_SANITIZERS:-0}" != "1" ]]; then
  # ThreadSanitizer tier: every suite that spawns threads — the pool, the sharded
  # engine cache, dataloader look-ahead, the epoll service, replica failover/hedging,
  # and the dedicated contention stress test (Plan vs cache_stats vs eviction vs
  # shutdown). Any data race is a hard failure.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --test-dir build-tsan --output-on-failure \
        -R 'test_thread_pool|test_engine|test_dataloader_concurrency|test_plan_service|test_replica_set|test_concurrency_stress'
  # ASan/UBSan tier: smoke subset covering the codec/bounds-heavy paths (plan store
  # records and bundles, wire frames end-to-end) plus the engine and the stress test.
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure \
        -R 'test_plan_store|test_plan_service|test_engine|test_concurrency_stress'
else
  echo "check.sh: DCP_SKIP_SANITIZERS=1, skipping tsan/asan-ubsan tiers"
fi

# gcc -fanalyzer tier: interprocedural path analysis (leaks, use-after-free, NULL
# derefs) over the curated IO/codec/allocator targets where it is both fast and
# signal-rich — whole-tree -fanalyzer is too slow and too noisy to gate on. Known
# false positives live in scripts/fanalyzer_suppressions.txt with reasons; anything
# unsuppressed fails the gate.
if [[ "${DCP_SKIP_SANITIZERS:-0}" != "1" ]]; then
  FANALYZER_TARGETS=(
    src/common/arena.cc
    src/common/crc32.cc
    src/common/status.cc
    src/core/plan_store.cc
    src/runtime/instructions.cc
    src/service/event_loop.cc
    src/service/fault_injection.cc
    src/service/frame.cc
    src/service/transport.cc
  )
  fanalyzer_log="$(mktemp)"
  for target in "${FANALYZER_TARGETS[@]}"; do
    g++ -std=c++20 -Isrc -fanalyzer -fsyntax-only "$target" 2>>"$fanalyzer_log" || {
      cat "$fanalyzer_log"
      echo "check.sh: gcc -fanalyzer failed to compile $target"
      exit 1
    }
  done
  suppressions="$(grep -Ev '^(#|$)' scripts/fanalyzer_suppressions.txt || true)"
  if [[ -n "$suppressions" ]]; then
    residual="$(grep 'warning:' "$fanalyzer_log" | grep -Ev "$suppressions" || true)"
  else
    residual="$(grep 'warning:' "$fanalyzer_log" || true)"
  fi
  rm -f "$fanalyzer_log"
  if [[ -n "$residual" ]]; then
    echo "$residual"
    echo "check.sh: gcc -fanalyzer found unsuppressed issues (waive in" \
         "scripts/fanalyzer_suppressions.txt with a reason, or fix)"
    exit 1
  fi
  echo "check.sh: gcc -fanalyzer clean on ${#FANALYZER_TARGETS[@]} curated targets"
else
  echo "check.sh: DCP_SKIP_SANITIZERS=1, skipping gcc -fanalyzer tier"
fi

# Clang thread-safety analysis (-Wthread-safety -Werror over the DCP_GUARDED_BY /
# DCP_REQUIRES annotations). GCC compiles the annotations to no-ops, so this gate only
# has teeth under clang; skip with a notice when no clang is installed.
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset clang-strict
  cmake --build --preset clang-strict -j "$(nproc)"
else
  echo "check.sh: clang++ not found, skipping clang-strict thread-safety analysis"
fi

# clang-tidy tier: the curated .clang-tidy profile (bugprone-*, concurrency-*,
# performance-* with documented opt-outs) over the same curated targets as the
# -fanalyzer tier, using the strict preset's compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON). Gcc-only CI images skip with a notice.
if command -v clang-tidy >/dev/null 2>&1; then
  clang-tidy -p build-strict --quiet \
    src/common/arena.cc src/common/crc32.cc src/common/status.cc \
    src/core/plan_store.cc src/runtime/instructions.cc \
    src/service/event_loop.cc src/service/fault_injection.cc \
    src/service/frame.cc src/service/transport.cc
else
  echo "check.sh: clang-tidy not found (gcc-only image), skipping .clang-tidy tier"
fi
echo "check.sh: all green"
