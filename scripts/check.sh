#!/usr/bin/env bash
# CI gate: build the strict (warnings-as-errors) preset, run the full test suite, then
# the tiny-config bench smoke label. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset strict
cmake --build --preset strict -j "$(nproc)"
ctest --test-dir build-strict -j "$(nproc)" --output-on-failure
# Explicit gate on the plan-store round-trip + corruption suites: malformed plan bytes
# must never abort a process, and store hits must stay bit-identical.
ctest --test-dir build-strict -R 'test_plan_store|test_instructions|test_property_plans' \
      --output-on-failure
# Explicit gate on the planning-service suites: wire framing/codec corruption handling,
# loopback end-to-end bit-identity, tenant isolation, and the multi-threaded stress run.
ctest --test-dir build-strict -R 'test_service_wire|test_plan_service' \
      --output-on-failure
# bench_smoke includes the warm_start and service rows: bench_report exits non-zero
# when the store-hit or remote server-cache-hit paths regress past the 10x bar, serve a
# non-identical plan, or two tenants' signatures collide.
ctest --test-dir build-strict -L bench_smoke --output-on-failure
echo "check.sh: all green"
