#!/usr/bin/env bash
# CI gate: build the strict (warnings-as-errors) preset, run the full test suite, then
# the tiny-config bench smoke label. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset strict
cmake --build --preset strict -j "$(nproc)"
ctest --test-dir build-strict -j "$(nproc)" --output-on-failure
ctest --test-dir build-strict -L bench_smoke --output-on-failure
echo "check.sh: all green"
