#!/usr/bin/env python3
"""dcp_lint — repo invariants the compiler cannot enforce.

Rules:
  determinism   No unordered-container iteration in plan-serialization /
                signature paths. Plan bytes, record bytes, and signatures must be
                bit-identical across processes; unordered_map/set iteration order
                is not (it varies with hashed pointers and per-process seeds), so
                any range-for over an unordered container in those files is a bug
                waiting to feed nondeterministic bytes onto the wire or disk.
  rng           No rand()/srand()/std::random_device/std::mt19937/time()-seeded
                randomness outside src/common/rng.* — every draw in the planner
                and the fault injector must come from the seeded deterministic
                streams, or plans and fault schedules stop replaying.
  blocking-io   No blocking connect/send/recv (ConnectSocket, SendAll, RecvAll,
                WriteFrame, ReadFrame) from event-loop code (plan_server.cc,
                event_loop.cc). A loop thread that blocks on one peer starves
                every connection it multiplexes. Threads the server owns that are
                NOT loop callbacks (gossip) annotate each call site.
  nodiscard     Status and StatusOr in src/common/status.h must stay
                [[nodiscard]] — that attribute is what turns a silently dropped
                error into a compile error under -Werror.
  timing        No ad-hoc std::chrono clock reads (steady_clock::now etc.) in
                src/ or examples/ outside src/common/metrics.* — timing spans
                go through metrics::MonotonicNanos/Micros/Millis and the scoped
                timers so every span is scrapeable, consistent, and greppable
                in one place. Benches and tests are exempt by location.

Suppression: a finding is waived when its line, or the line directly above,
contains `dcp-lint: allow(<rule>)` with a reason.

Exit 0 when clean, 1 with file:line findings otherwise.
`--self-test` seeds one violation of each rule in a temp tree and verifies the
linter catches all of them (and that a clean snippet passes).
"""

import argparse
import os
import re
import sys
import tempfile

# Files whose output bytes must be deterministic: signature computation, plan
# binary serialization, store record encoding, and wire framing.
DETERMINISM_FILES = [
    "src/core/plan_signature.cc",
    "src/core/plan_signature.h",
    "src/core/plan_store.cc",
    "src/core/plan_store.h",
    "src/runtime/instructions.cc",
    "src/runtime/instructions.h",
    "src/service/frame.cc",
    "src/service/frame.h",
]

# Event-loop code: blocking transport calls here stall every multiplexed
# connection on the loop thread.
EVENT_LOOP_FILES = [
    "src/service/plan_server.cc",
    "src/service/event_loop.cc",
]

RNG_EXEMPT = ("src/common/rng.h", "src/common/rng.cc")

# The one blessed home of raw clock reads; everything else uses its helpers.
TIMING_EXEMPT = ("src/common/metrics.h", "src/common/metrics.cc")

TIMING_RE = re.compile(
    r"\b(?:steady_clock|high_resolution_clock|system_clock)\s*::\s*now\s*\("
)

ALLOW_RE = re.compile(r"dcp-lint:\s*allow\(([a-z-]+)\)")

BLOCKING_CALL_RE = re.compile(
    r"\b(ConnectSocket|SendAll|RecvAll|WriteFrame|ReadFrame)\s*\("
)

RNG_PATTERNS = [
    (re.compile(r"\brand\s*\("), "rand() (unseeded global RNG)"),
    (re.compile(r"\bsrand\s*\("), "srand() (global RNG seeding)"),
    (re.compile(r"std::random_device"), "std::random_device (nondeterministic)"),
    (re.compile(r"std::mt19937"), "std::mt19937 (use common/rng streams)"),
    (re.compile(r"std::default_random_engine"), "std::default_random_engine"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()-derived value (wall clock as a seed/input)"),
]

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*\*?([A-Za-z_][\w.\->\[\]]*)\s*\)")


def strip_comments_and_strings(text):
    """Blank out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed(lines, lineno, rule):
    """True when line `lineno` (1-based) or the one above carries the waiver."""
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(lines):
            m = ALLOW_RE.search(lines[idx])
            if m and m.group(1) == rule:
                return True
    return False


def unordered_variable_names(code):
    """Names of variables declared with an unordered container type."""
    names = set()
    # Statement-wise scan: declarations may span lines (template args, GUARDED_BY).
    for stmt in code.split(";"):
        if not UNORDERED_DECL_RE.search(stmt):
            continue
        tail = stmt[stmt.rfind(">") + 1:]
        m = re.search(r"\b([A-Za-z_]\w*)\b", tail)
        if not m:
            continue
        name = m.group(1)
        after = tail[m.end():].lstrip()
        # Skip function declarations/definitions and qualified names: those are
        # return types, not iterable locals/members.
        if after.startswith("(") or after.startswith("::"):
            continue
        if name in ("DCP_GUARDED_BY", "const", "mutable", "static"):
            continue
        names.add(name)
    return names


def check_determinism(path, raw_lines, code, extra_names=()):
    findings = []
    names = unordered_variable_names(code) | set(extra_names)
    for lineno, line in enumerate(code.splitlines(), start=1):
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1)
            base = re.split(r"\.|->", expr)[-1].rstrip("[]")
            direct = "unordered_" in expr
            if (base in names or direct) and not allowed(raw_lines, lineno,
                                                         "unordered-iteration"):
                findings.append(
                    (path, lineno, "determinism",
                     f"range-for over unordered container '{expr}' in a "
                     "serialization/signature path — iteration order is not "
                     "deterministic across processes"))
    return findings


def check_rng(path, raw_lines, code):
    findings = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        for pattern, what in RNG_PATTERNS:
            if pattern.search(line) and not allowed(raw_lines, lineno, "rng"):
                findings.append(
                    (path, lineno, "rng",
                     f"{what} outside src/common/rng — use the seeded "
                     "deterministic streams"))
    return findings


def check_blocking_io(path, raw_lines, code):
    findings = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = BLOCKING_CALL_RE.search(line)
        if m and not allowed(raw_lines, lineno, "blocking-io"):
            findings.append(
                (path, lineno, "blocking-io",
                 f"blocking {m.group(1)}() in event-loop code — loop threads "
                 "must stay non-blocking (annotate gossip/background threads "
                 "with dcp-lint: allow(blocking-io))"))
    return findings


def check_timing(path, raw_lines, code):
    findings = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = TIMING_RE.search(line)
        if m and not allowed(raw_lines, lineno, "timing"):
            findings.append(
                (path, lineno, "timing",
                 "ad-hoc chrono clock read outside src/common/metrics — use "
                 "metrics::MonotonicNanos/Micros/Millis or a scoped timer "
                 "(dcp-lint: allow(timing) with a reason to waive)"))
    return findings


def check_nodiscard(root):
    findings = []
    status_h = os.path.join(root, "src/common/status.h")
    try:
        with open(status_h, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return [("src/common/status.h", 1, "nodiscard", "file missing")]
    for cls in ("Status", "StatusOr"):
        if not re.search(r"class\s*\[\[nodiscard\]\]\s*" + cls + r"\b", text):
            findings.append(
                ("src/common/status.h", 1, "nodiscard",
                 f"class {cls} must be declared [[nodiscard]] so dropped "
                 "errors fail the strict build"))
    return findings


def iter_source_files(root):
    for sub in ("src", "tests", "examples", "benchmarks", "tools"):
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".cc", ".h")):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root)


def lint_tree(root):
    findings = []
    for rel in iter_source_files(root):
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError):
            continue
        raw_lines = text.splitlines()
        code = strip_comments_and_strings(text)
        posix = rel.replace(os.sep, "/")
        if posix in DETERMINISM_FILES:
            # Members are declared in the paired header; a .cc iterating one must
            # still be caught, so merge the sibling header's declarations.
            extra = set()
            if posix.endswith(".cc"):
                sibling = os.path.join(root, posix[:-3] + ".h")
                try:
                    with open(sibling, encoding="utf-8") as f:
                        extra = unordered_variable_names(
                            strip_comments_and_strings(f.read()))
                except OSError:
                    pass
            findings.extend(check_determinism(posix, raw_lines, code, extra))
        if posix.startswith("src/") and posix not in RNG_EXEMPT:
            findings.extend(check_rng(posix, raw_lines, code))
        if posix in EVENT_LOOP_FILES:
            findings.extend(check_blocking_io(posix, raw_lines, code))
        if (posix.startswith(("src/", "examples/"))
                and posix not in TIMING_EXEMPT):
            findings.extend(check_timing(posix, raw_lines, code))
    findings.extend(check_nodiscard(root))
    return findings


def self_test():
    """Seed one violation per rule; the linter must flag each, and a clean
    equivalent of each snippet must pass."""
    failures = []
    with tempfile.TemporaryDirectory(prefix="dcp_lint_selftest_") as tmp:
        def write(rel, content):
            full = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(content)

        # Rule: determinism (seeded into a serialization-path file).
        write("src/core/plan_signature.cc",
              "#include <unordered_map>\n"
              "std::unordered_map<int, int> table_;\n"
              "void Emit() {\n"
              "  for (const auto& kv : table_) { Append(kv); }\n"
              "}\n")
        # Rule: rng (any src/ file outside common/rng).
        write("src/core/planner.cc",
              "#include <cstdlib>\n"
              "int Draw() { return rand() % 7; }\n")
        # Rule: blocking-io (event-loop file, no allow annotation).
        write("src/service/event_loop.cc",
              "void Loop::OnReadable(Connection* conn) {\n"
              "  auto frame = ReadFrame(conn->socket, kMax);\n"
              "}\n")
        # Rule: nodiscard (Status present but unannotated).
        write("src/common/status.h",
              "class Status {};\n"
              "template <typename T> class StatusOr {};\n")
        # Rule: timing (ad-hoc clock read in a src/ file outside metrics).
        write("src/service/transport.cc",
              "#include <chrono>\n"
              "int64_t NowMs() {\n"
              "  return std::chrono::duration_cast<std::chrono::milliseconds>(\n"
              "      std::chrono::steady_clock::now().time_since_epoch())"
              ".count();\n"
              "}\n")

        findings = lint_tree(tmp)
        rules_hit = {f[2] for f in findings}
        for rule in ("determinism", "rng", "blocking-io", "nodiscard",
                     "timing"):
            if rule not in rules_hit:
                failures.append(f"seeded {rule} violation was NOT flagged")

        # Clean equivalents must pass: sorted iteration, seeded rng usage,
        # annotated gossip call, annotated classes.
        write("src/core/plan_signature.cc",
              "#include <vector>\n"
              "std::vector<int> keys_;\n"
              "void Emit() {\n"
              "  for (int k : keys_) { Append(k); }\n"
              "}\n")
        write("src/core/planner.cc",
              "#include \"common/rng.h\"\n"
              "int Draw(dcp::Rng& rng) { return rng.Next() % 7; }\n")
        write("src/service/event_loop.cc",
              "void Server::Gossip() {\n"
              "  // dcp-lint: allow(blocking-io) — background thread.\n"
              "  auto frame = ReadFrame(sock_, kMax);\n"
              "}\n")
        write("src/common/status.h",
              "class [[nodiscard]] Status {};\n"
              "template <typename T> class [[nodiscard]] StatusOr {};\n")
        # Clean timing: the metrics helper everywhere, the raw clock only
        # inside the exempt src/common/metrics.cc, and one annotated waiver.
        write("src/service/transport.cc",
              "#include \"common/metrics.h\"\n"
              "int64_t NowMs() { return dcp::metrics::MonotonicMillis(); }\n")
        write("src/common/metrics.cc",
              "#include <chrono>\n"
              "int64_t Raw() {\n"
              "  return std::chrono::steady_clock::now()"
              ".time_since_epoch().count();\n"
              "}\n")
        write("src/core/engine.cc",
              "#include <chrono>\n"
              "// dcp-lint: allow(timing) — calibration needs the raw clock.\n"
              "auto Raw() { return std::chrono::steady_clock::now(); }\n")
        residue = lint_tree(tmp)
        if residue:
            for f in residue:
                failures.append(f"clean snippet still flagged: {f}")

    if failures:
        for msg in failures:
            print(f"dcp_lint self-test FAILED: {msg}", file=sys.stderr)
        return 1
    print("dcp_lint self-test passed: all seeded violations flagged, "
          "clean snippets pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: the checkout containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter flags seeded violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    if findings:
        for path, lineno, rule, message in findings:
            print(f"{path}:{lineno}: [{rule}] {message}")
        print(f"dcp_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("dcp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
