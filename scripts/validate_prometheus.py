#!/usr/bin/env python3
"""validate_prometheus — structural checks on a Prometheus text exposition.

Validates the output of `dcp::metrics::Registry::RenderPrometheus` (as served by
the kMetricsRequest frame and `dcpctl remote metrics`) the way a scraper would:

  grammar       Every line is `# HELP <name> <text>`, `# TYPE <name> <kind>`,
                or `<name>[{labels}] <number>`. Metric and label names match
                [a-zA-Z_:][a-zA-Z0-9_:]*; label values are double-quoted.
  families      Every sample belongs to a family that declared HELP and TYPE
                first (histogram samples resolve via their _bucket/_sum/_count
                suffix); TYPE is one of counter|gauge|histogram; no family
                declares HELP or TYPE twice; no duplicate series.
  naming        Counters end in `_total` (repo convention: every counter is a
                monotone event count) and counter/histogram values never go
                negative.
  labels        Non-`le` labels within a series are alphabetically sorted —
                the renderer guarantees it, and sorted labels are what make
                text diffs of two scrapes line up.
  histograms    Per series: bucket counts are cumulative (non-decreasing in
                `le` order), exactly one `+Inf` bucket, the `+Inf` cumulative
                equals the `_count` sample, and `_sum`/`_count` are present.

Usage: validate_prometheus.py [--self-test] [--require REGEX ...] [PATH]
Reads PATH (or stdin) and exits 0 when valid, 1 with findings otherwise.
`--require REGEX` (repeatable) additionally fails unless some sample line
matches REGEX — check.sh uses it to pin down series that must exist on a live
server. `--self-test` runs the validator against embedded good and broken
expositions and verifies each defect is caught before the real input means
anything.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(raw, line_no, errors):
    """'a="x",le="+Inf"' -> list of (key, value); appends findings to errors."""
    labels = []
    if not raw:
        return labels
    for part in raw.split(","):
        match = LABEL_RE.match(part)
        if match is None:
            errors.append(f"line {line_no}: bad label pair {part!r}")
            continue
        labels.append((match.group(1), match.group(2)))
    keys = [k for k, _ in labels]
    if len(set(keys)) != len(keys):
        errors.append(f"line {line_no}: duplicate label key in {raw!r}")
    non_le = [k for k in keys if k != "le"]
    if non_le != sorted(non_le):
        errors.append(f"line {line_no}: labels not sorted: {non_le}")
    return labels


def family_of(sample_name, types):
    """Resolve a sample to its declared family, honoring histogram suffixes."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def validate(text, require=()):
    """Returns a list of finding strings; empty means the exposition is valid."""
    errors = []
    helps = {}
    types = {}
    # histograms[(family, labels-without-le)] accumulates bucket/sum/count facts.
    histograms = {}
    seen_series = set()
    sample_lines = []

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            if not NAME_RE.match(name):
                errors.append(f"line {line_no}: bad metric name {name!r}")
            if name in helps:
                errors.append(f"line {line_no}: duplicate HELP for {name}")
            helps[name] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            if len(parts) != 2:
                errors.append(f"line {line_no}: malformed TYPE line")
                continue
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"line {line_no}: unknown TYPE {kind!r} for {name}")
            if name in types:
                errors.append(f"line {line_no}: duplicate TYPE for {name}")
            if name not in helps:
                errors.append(f"line {line_no}: TYPE for {name} precedes its HELP")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # Free-form comment: legal, carries no structure.

        match = SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        sample_lines.append(line)
        name, _, raw_labels, raw_value = match.groups()
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"line {line_no}: non-numeric value {raw_value!r}")
            continue
        labels = parse_labels(raw_labels or "", line_no, errors)

        family = family_of(name, types)
        if family is None:
            errors.append(f"line {line_no}: sample {name} has no TYPE declaration")
            continue
        if family not in helps:
            errors.append(f"line {line_no}: sample {name} has no HELP declaration")
        kind = types[family]

        series_key = (name, tuple(labels))
        if series_key in seen_series:
            errors.append(f"line {line_no}: duplicate series {name}{dict(labels)}")
        seen_series.add(series_key)

        if kind == "counter":
            if not family.endswith("_total"):
                errors.append(
                    f"line {line_no}: counter {family} does not end in _total"
                )
            if value < 0:
                errors.append(f"line {line_no}: counter {name} is negative")
        elif kind == "histogram":
            if name == family:
                errors.append(
                    f"line {line_no}: bare sample {name} on histogram family"
                )
                continue
            le = dict(labels).get("le")
            base_labels = tuple(l for l in labels if l[0] != "le")
            hist = histograms.setdefault(
                (family, base_labels),
                {"buckets": [], "sum": None, "count": None, "line": line_no},
            )
            if name.endswith("_bucket"):
                if le is None:
                    errors.append(f"line {line_no}: _bucket sample without le")
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                hist["buckets"].append((bound, value, line_no))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value
                if value < 0:
                    errors.append(f"line {line_no}: histogram count is negative")

    for (family, base_labels), hist in histograms.items():
        where = f"{family}{{{','.join(k + '=' + v for k, v in base_labels)}}}"
        buckets = hist["buckets"]
        if not buckets:
            errors.append(f"{where}: histogram series has no _bucket samples")
            continue
        bounds = [b for b, _, _ in buckets]
        if bounds != sorted(bounds):
            errors.append(f"{where}: bucket le bounds out of order")
        if sum(1 for b in bounds if b == float("inf")) != 1:
            errors.append(f"{where}: expected exactly one +Inf bucket")
        counts = [c for _, c, _ in buckets]
        for prev, cur in zip(counts, counts[1:]):
            if cur < prev:
                errors.append(f"{where}: bucket counts not cumulative")
                break
        if hist["count"] is None:
            errors.append(f"{where}: missing _count sample")
        elif bounds and bounds[-1] == float("inf") and counts[-1] != hist["count"]:
            errors.append(
                f"{where}: +Inf cumulative {counts[-1]:.0f} != _count "
                f"{hist['count']:.0f}"
            )
        if hist["sum"] is None:
            errors.append(f"{where}: missing _sum sample")

    for pattern in require:
        if not any(re.search(pattern, line) for line in sample_lines):
            errors.append(f"required series not found: {pattern!r}")
    return errors


GOOD = """\
# HELP dcp_server_requests_total requests admitted
# TYPE dcp_server_requests_total counter
dcp_server_requests_total{tenant="prod"} 42
dcp_server_requests_total{tenant="test"} 7
# HELP dcp_server_queue_depth worker queue depth
# TYPE dcp_server_queue_depth gauge
dcp_server_queue_depth{loop="0"} -1
# HELP dcp_server_serve_latency_us serve latency
# TYPE dcp_server_serve_latency_us histogram
dcp_server_serve_latency_us_bucket{source="planned",tenant="prod",le="1"} 0
dcp_server_serve_latency_us_bucket{source="planned",tenant="prod",le="2"} 3
dcp_server_serve_latency_us_bucket{source="planned",tenant="prod",le="+Inf"} 5
dcp_server_serve_latency_us_sum{source="planned",tenant="prod"} 11
dcp_server_serve_latency_us_count{source="planned",tenant="prod"} 5
"""

# Each entry: (defect description, broken exposition, expected finding substring).
BROKEN = [
    (
        "sample with no TYPE",
        "dcp_orphan_total 3\n",
        "no TYPE declaration",
    ),
    (
        "counter without _total",
        "# HELP dcp_hits hits\n# TYPE dcp_hits counter\ndcp_hits 3\n",
        "does not end in _total",
    ),
    (
        "negative counter",
        "# HELP dcp_x_total x\n# TYPE dcp_x_total counter\ndcp_x_total -2\n",
        "is negative",
    ),
    (
        "non-cumulative buckets",
        "# HELP dcp_l_us l\n# TYPE dcp_l_us histogram\n"
        'dcp_l_us_bucket{le="1"} 5\ndcp_l_us_bucket{le="+Inf"} 3\n'
        "dcp_l_us_sum 9\ndcp_l_us_count 3\n",
        "not cumulative",
    ),
    (
        "+Inf disagrees with _count",
        "# HELP dcp_l_us l\n# TYPE dcp_l_us histogram\n"
        'dcp_l_us_bucket{le="1"} 1\ndcp_l_us_bucket{le="+Inf"} 4\n'
        "dcp_l_us_sum 9\ndcp_l_us_count 5\n",
        "!= _count",
    ),
    (
        "missing +Inf bucket",
        "# HELP dcp_l_us l\n# TYPE dcp_l_us histogram\n"
        'dcp_l_us_bucket{le="1"} 1\ndcp_l_us_sum 9\ndcp_l_us_count 1\n',
        "exactly one +Inf",
    ),
    (
        "missing _count",
        "# HELP dcp_l_us l\n# TYPE dcp_l_us histogram\n"
        'dcp_l_us_bucket{le="+Inf"} 1\ndcp_l_us_sum 9\n',
        "missing _count",
    ),
    (
        "unsorted labels",
        "# HELP dcp_x_total x\n# TYPE dcp_x_total counter\n"
        'dcp_x_total{tenant="a",source="b"} 1\n',
        "labels not sorted",
    ),
    (
        "duplicate series",
        "# HELP dcp_x_total x\n# TYPE dcp_x_total counter\n"
        "dcp_x_total 1\ndcp_x_total 2\n",
        "duplicate series",
    ),
    (
        "non-numeric value",
        "# HELP dcp_x_total x\n# TYPE dcp_x_total counter\ndcp_x_total NaNish\n",
        "non-numeric value",
    ),
    (
        "unknown TYPE kind",
        "# HELP dcp_x x\n# TYPE dcp_x summary\ndcp_x 1\n",
        "unknown TYPE",
    ),
    (
        "missing required series",
        GOOD,
        "required series not found",
    ),
]


def self_test():
    failures = []
    good_errors = validate(GOOD, require=[r'dcp_server_requests_total\{tenant="prod"'])
    if good_errors:
        failures.append(f"valid exposition rejected: {good_errors}")
    for description, text, expected in BROKEN:
        require = (
            [r"dcp_does_not_exist_total"]
            if expected == "required series not found"
            else []
        )
        errors = validate(text, require=require)
        if not any(expected in e for e in errors):
            failures.append(
                f"defect not caught: {description} (expected {expected!r}, "
                f"got {errors})"
            )
    if failures:
        for failure in failures:
            print(f"validate_prometheus self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"validate_prometheus self-test: {len(BROKEN)} defects caught, clean passes")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--require", action="append", default=[])
    parser.add_argument("path", nargs="?")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.path:
        with open(args.path, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    errors = validate(text, require=args.require)
    if errors:
        for error in errors:
            print(f"validate_prometheus: {error}", file=sys.stderr)
        return 1
    samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"validate_prometheus: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
