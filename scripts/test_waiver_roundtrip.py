#!/usr/bin/env python3
"""Pins the waiver contract shared by dcp_lint and dcp_analyze.

Both tools promise the same mental model: a finding is suppressed when its own
line — or the line directly above it — carries `// <tool>: allow(<rule>)`, and
the marker must name the exact rule.  dcp_analyze/waivers.py's docstring points
here; if either tool drifts (different placement window, cross-tool markers
accepted, prose breaking the match) this test fails before a waiver silently
stops working in the tree.
"""

import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent
sys.path.insert(0, str(SCRIPTS))
sys.path.insert(0, str(SCRIPTS / "dcp_analyze"))

import dcp_lint  # noqa: E402
import waivers  # noqa: E402

FAILURES = []


def check(name, cond):
    if not cond:
        FAILURES.append(name)
        print(f"FAIL {name}")


def contract(tool_name, allowed, marker):
    """Exercise one tool's allowed(lines, lineno, rule) against its marker."""
    rule = "some-rule"
    waived_same = [f"  doit();  // {marker}: allow({rule}): reason."]
    waived_above = [f"  // {marker}: allow({rule}): reason in prose.", "  doit();"]
    too_far = [f"  // {marker}: allow({rule})", "", "  doit();"]
    check(f"{tool_name}: same-line waiver accepted",
          allowed(waived_same, 1, rule))
    check(f"{tool_name}: line-above waiver accepted",
          allowed(waived_above, 2, rule))
    check(f"{tool_name}: two-lines-above waiver rejected",
          not allowed(too_far, 3, rule))
    check(f"{tool_name}: wrong rule rejected",
          not allowed(waived_same, 1, "other-rule"))
    check(f"{tool_name}: bare line rejected",
          not allowed(["  doit();"], 1, rule))


def main():
    contract("dcp_lint", dcp_lint.allowed, "dcp-lint")
    contract("dcp_analyze", waivers.allowed, "dcp-analyze")

    # The markers are tool-scoped: one tool's waiver must never silence the
    # other's finding, or a lock-order suppression could hide a lint bug.
    cross_lint = ["  doit();  // dcp-analyze: allow(blocking-io)"]
    cross_analyze = ["  doit();  // dcp-lint: allow(lock-order)"]
    check("dcp_lint ignores dcp-analyze markers",
          not dcp_lint.allowed(cross_lint, 1, "blocking-io"))
    check("dcp_analyze ignores dcp-lint markers",
          not waivers.allowed(cross_analyze, 1, "lock-order"))

    # Same grammar: `<tool>: allow(<kebab-rule>)`, prose after the marker is
    # free-form.  Pin the extracted group so a regex rewrite keeps rule names.
    m_lint = dcp_lint.ALLOW_RE.search("// dcp-lint: allow(ad-hoc-rng) — why.")
    m_ana = waivers.ALLOW_RE.search("// dcp-analyze: allow(lock-order): why.")
    check("dcp_lint extracts the rule name",
          m_lint is not None and m_lint.group(1) == "ad-hoc-rng")
    check("dcp_analyze extracts the rule name",
          m_ana is not None and m_ana.group(1) == "lock-order")

    if FAILURES:
        print(f"waiver round-trip: {len(FAILURES)} failure(s)")
        return 1
    print("waiver round-trip: both tools share the waiver contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
