"""Findings and the waiver contract shared with dcp_lint.

A finding is suppressed when its line — or the line directly above it —
carries `// dcp-analyze: allow(<rule>)`.  The comment should say *why* in
prose after the marker; the analyzer only matches the marker itself.  This is
the exact contract dcp_lint uses for `dcp-lint: allow(...)`, so one mental
model covers both tools (scripts/test_waiver_roundtrip.py pins that).
"""

from __future__ import annotations

import dataclasses
import re

ALLOW_RE = re.compile(r"dcp-analyze:\s*allow\(([a-z-]+)\)")


@dataclasses.dataclass
class Finding:
    file: str      # repo-relative path
    line: int      # 1-based; 0 = whole-file/whole-tree finding (not waivable)
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self):
        return (self.file, self.line, self.rule, self.message)


def allowed(lines: list[str], lineno: int, rule: str) -> bool:
    """True if `lines` (1-based indexing) waives `rule` at `lineno`."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines):
            m = ALLOW_RE.search(lines[ln - 1])
            if m and m.group(1) == rule:
                return True
    return False


def split_waived(findings: list[Finding],
                 files: dict[str, "object"]) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (active, waived) using per-file source lines."""
    active, waived = [], []
    for f in findings:
        sf = files.get(f.file)
        if f.line > 0 and sf is not None and allowed(sf.lines, f.line, f.rule):
            waived.append(f)
        else:
            active.append(f)
    return active, waived
