"""Codec-completeness analysis: every declared field, both directions, every flavor.

For each registered (struct set, serialize fn, deserialize fn) group, the
analysis diffs the struct's declared fields against the member names the codec
function — plus every helper it calls, transitively — actually touches.  A
field the serializer never reads, or the deserializer never writes, is the
"added a field, forgot one codec" drift that today only fuzzing can catch.

The check is name-based: a mention of `.total_flops` anywhere in the codec's
call closure covers `total_flops` in every group struct declaring it.  That is
deliberate — codecs here are monolithic functions writing nested structs
inline, so per-struct receiver typing would be guesswork.  The limitation is
harmless unless two group structs share a field name and only one is encoded;
keep wire-struct field names distinct (they all are today).

The analysis also emits a machine-readable field inventory
(scripts/dcp_analyze/field_inventory.json).  When the pinned file drifts from
the headers, the run fails until `--update-inventory` is rerun — so adding a
wire field is always a conscious, reviewed act.

Rules: codec-drift (field missed by one codec direction; waivable at the field
declaration line), codec-inventory (unregistered Serialize*/Deserialize*
function, or a stale pinned inventory).
"""

from __future__ import annotations

import dataclasses
import json

from cpp_model import SourceTree, MEMBER_MENTION_RE, CALL_RE
from waivers import Finding


@dataclasses.dataclass(frozen=True)
class Group:
    name: str                 # flavor label used in messages ("text", "binary"...)
    structs: tuple[str, ...]  # structs whose every field must round-trip
    serialize: str
    deserialize: str


# The plan codec ships every struct reachable from BatchPlan; service messages
# are flat.  PlanSignature rides in the PlanStore record header.
GROUPS = (
    Group("plan-text",
          ("BatchPlan", "BatchLayout", "PlanStats", "DevicePlan", "LocalChunk",
           "Instruction", "AttentionWorkItem", "ReduceItem", "CopyItem",
           "TransferBlock", "BlockRef"),
          "SerializePlan", "DeserializePlan"),
    Group("plan-binary",
          ("BatchPlan", "BatchLayout", "PlanStats", "DevicePlan", "LocalChunk",
           "Instruction", "AttentionWorkItem", "ReduceItem", "CopyItem",
           "TransferBlock", "BlockRef"),
          "SerializePlanBinary", "DeserializePlanBinary"),
    Group("service-request", ("PlanServiceRequest", "MaskSpec"),
          "SerializePlanServiceRequest", "DeserializePlanServiceRequest"),
    Group("service-response", ("PlanServiceResponse",),
          "SerializePlanServiceResponse", "DeserializePlanServiceResponse"),
    Group("stats-request", ("PlanServiceStatsRequest",),
          "SerializePlanServiceStatsRequest",
          "DeserializePlanServiceStatsRequest"),
    Group("stats-response",
          ("PlanServiceStatsResponse", "PlanServiceTenantStats"),
          "SerializePlanServiceStatsResponse",
          "DeserializePlanServiceStatsResponse"),
    Group("metrics-request", ("PlanServiceMetricsRequest",),
          "SerializePlanServiceMetricsRequest",
          "DeserializePlanServiceMetricsRequest"),
    Group("metrics-response", ("PlanServiceMetricsResponse",),
          "SerializePlanServiceMetricsResponse",
          "DeserializePlanServiceMetricsResponse"),
    Group("sync-request", ("PlanSyncRequest",),
          "SerializePlanSyncRequest", "DeserializePlanSyncRequest"),
    Group("sync-response", ("PlanSyncResponse",),
          "SerializePlanSyncResponse", "DeserializePlanSyncResponse"),
    Group("store-record", ("PlanSignature",), "EncodeRecord", "DecodeRecord"),
)

# Codec-shaped functions that are deliberately not groups of their own.
EXEMPT_CODECS = {
    # Convenience wrapper over DeserializePlan; no fields of its own.
    "DeserializePlanOrDie",
    # Zero-copy mirror of DeserializePlanServiceRequest; byte-for-byte
    # equivalence is pinned by test_service_wire.
    "DeserializePlanServiceRequestView",
    # Partial by contract: writes everything except the record bytes, which
    # the server splices from the store; equivalence with the full serializer
    # is pinned by test_service_wire.
    "SerializePlanServiceResponseHead",
}

# Files whose Serialize*/Deserialize*/EncodeRecord/DecodeRecord definitions
# must all be registered above (the discovery check).
CODEC_FILES = ("src/runtime/instructions.cc", "src/core/plan_store.cc")


def _closure_mentions(tree: SourceTree, fn_name: str) -> set[str] | None:
    """Member names mentioned by fn and every function it transitively calls."""
    if fn_name not in tree.defs:
        return None
    mentions: set[str] = set()
    seen: set[str] = set()
    work = [fn_name]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        for fn in tree.defs.get(name, ()):
            if not fn.body_span:
                continue
            body = tree.body_text(fn)
            mentions |= {m.group(1) for m in MEMBER_MENTION_RE.finditer(body)}
            for c in CALL_RE.finditer(body):
                if c.group(1) in tree.defs:
                    work.append(c.group(1))
    return mentions


def compute_inventory(tree: SourceTree) -> dict:
    inv: dict[str, dict] = {}
    for g in GROUPS:
        for sname in g.structs:
            s = tree.struct(sname)
            if s is None:
                continue
            entry = inv.setdefault(sname, {"fields": [], "codecs": []})
            entry["fields"] = sorted(f.name for f in s.fields)
            if g.name not in entry["codecs"]:
                entry["codecs"].append(g.name)
    return dict(sorted(inv.items()))


def run(tree: SourceTree, notes: list[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for g in GROUPS:
        ser = _closure_mentions(tree, g.serialize)
        de = _closure_mentions(tree, g.deserialize)
        if ser is None or de is None:
            continue  # codec pair absent from this tree (fixture subsets)
        for sname in g.structs:
            s = tree.struct(sname)
            if s is None:
                continue
            for f in s.fields:
                for direction, touched, fn in (("serialize", ser, g.serialize),
                                               ("deserialize", de,
                                                g.deserialize)):
                    if f.name not in touched:
                        findings.append(Finding(
                            s.file, f.line, "codec-drift",
                            f"{sname}.{f.name} is never touched by {fn} "
                            f"({g.name} {direction}); the {g.name} codec "
                            f"drops this field"))
    # Discovery: codec-shaped definitions must be registered or exempted.
    registered = {g.serialize for g in GROUPS} | {g.deserialize for g in GROUPS}
    for rel in CODEC_FILES:
        sf = tree.files.get(rel)
        if sf is None:
            continue
        for fn in tree.functions:
            if fn.file != rel or not fn.body_span:
                continue
            looks_codec = (fn.name.startswith(("Serialize", "Deserialize"))
                           or fn.name in ("EncodeRecord", "DecodeRecord"))
            if looks_codec and fn.name not in registered and \
               fn.name not in EXEMPT_CODECS:
                findings.append(Finding(
                    rel, fn.line, "codec-inventory",
                    f"{fn.qualname} looks like a codec but is not registered "
                    f"in dcp_analyze codec GROUPS (or EXEMPT_CODECS)"))
    return findings


def check_inventory(tree: SourceTree, pinned_path) -> list[Finding]:
    """Diff the recomputed inventory against the pinned JSON file."""
    current = compute_inventory(tree)
    try:
        pinned = json.loads(pinned_path.read_text())
    except FileNotFoundError:
        return [Finding(str(pinned_path), 0, "codec-inventory",
                        "pinned field inventory missing; run "
                        "`python3 scripts/dcp_analyze --update-inventory`")]
    findings = []
    for sname in sorted(set(current) | set(pinned)):
        if current.get(sname) != pinned.get(sname):
            was = (pinned.get(sname) or {}).get("fields", [])
            now = (current.get(sname) or {}).get("fields", [])
            findings.append(Finding(
                "scripts/dcp_analyze/field_inventory.json", 0,
                "codec-inventory",
                f"wire-field inventory for {sname} drifted (pinned "
                f"{was} vs declared {now}); update the codecs and tests, "
                f"then rerun with --update-inventory"))
    return findings
