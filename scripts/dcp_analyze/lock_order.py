"""Lock-order analysis: acquisition graph over every dcp::Mutex in the tree.

Harvests mutex members (and file-scope/local mutexes), MutexLock sites, raw
Lock()/Unlock() calls, and the DCP_REQUIRES / DCP_ACQUIRED_BEFORE /
DCP_ACQUIRED_AFTER annotation set.  A body walker tracks the held-lock set
through scopes (including MutexLock's Unlock()/Lock() relock protocol) and a
call-graph fixed point propagates "locks acquired during this call" summaries,
so nesting through helper calls is seen too.  Call targets are resolved by
typing the receiver (parameters, locals, `auto`/range-for roots, member
fields), so `fallback_engine_->PlanDetailed(...)` contributes Engine's locks
and nobody else's.  Emitted rules:

  lock-order   An observed nesting edge A -> B that the annotation set does not
               document (via DCP_ACQUIRED_BEFORE/AFTER, transitively).
               Same-class edges should be documented with a real annotation on
               the mutex declaration (clang checks those too); cross-class
               edges — which clang attributes cannot express — are waived at
               the acquiring site with the protocol spelled out.  A waiver on
               B's *declaration* line marks B a leaf lock: it may be acquired
               while holding anything because nothing is ever acquired under
               it (the analyzer still sees edges out of B, so a leaf that
               grows a nested acquisition loses the exemption's premise and
               shows up as new findings).
  lock-cycle   A cycle in the union of observed + documented edges, or a lock
               re-acquired while already held.
  lock-native  A `.native()` escape-hatch use outside the wrapper header; every
               such site must carry a waiver explaining its protocol
               (Engine::cache_stats()'s N-shard snapshot is the canonical one).
"""

from __future__ import annotations

import re

from cpp_model import SourceTree, Function, find_matching
from waivers import Finding, allowed

_MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+([A-Za-z_]\w*)\s*[({]([^;{}]*?)[)}]\s*;")
_RAW_LOCK_RE = re.compile(r"\.\s*(Lock|Unlock)\s*\(\s*\)")
_CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)(?:\[[^\]]*\])?\s*(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\(")
_GLOBAL_MUTEX_RE = re.compile(
    r"^\s*(?:static\s+)?(?:dcp::)?Mutex\s+([A-Za-z_]\w*)\s*;", re.M)
_NATIVE_RE = re.compile(r"\.\s*native\s*\(\s*\)")
# Callables whose lambda argument runs on another thread: the lambda's
# acquisitions are NOT nested under locks the caller holds at the call site.
_ASYNC_SINK_RE = re.compile(
    r"std::thread\s*\(|(?:\.|->)\s*(?:Submit|Schedule)\s*\(")


def _base_expr_before(text: str, idx: int) -> str:
    """Extract the expression ending just before text[idx] (a '.')."""
    i = idx
    while i > 0:
        c = text[i - 1]
        if c.isalnum() or c in "_.]":
            i -= 1
        elif c == ">" and i > 1 and text[i - 2] == "-":
            i -= 2
        elif c == "[":
            i -= 1
        else:
            break
    return text[i:idx]


class LockAnalysis:
    def __init__(self, tree: SourceTree):
        self.tree = tree
        self.notes: set[str] = set()
        # member name -> [class names that declare a mutex member of that name]
        self.member_owner: dict[str, list[str]] = {}
        # class -> {field name -> declared type}, every field of every struct
        self.class_fields: dict[str, dict[str, str]] = {}
        # field name -> [class names declaring it] (any type, for base typing)
        self.field_owner: dict[str, list[str]] = {}
        self.node_sites: dict[str, tuple[str, int]] = {}
        self.global_mutexes: dict[str, tuple[str, int]] = {}
        self.documented: set[tuple[str, str]] = set()
        self.doc_sites: dict[tuple[str, str], tuple[str, int]] = {}
        self.observed: dict[tuple[str, str], tuple[str, int, str]] = {}
        self._callee_cache: dict = {}
        # Classes defined inside a function body: their mutexes are born and
        # die with one call, so they are leaves by construction — tracked for
        # cycles but exempt from the ordering-documentation requirement.
        self.local_structs: set[str] = set()
        self._collect()

    # ---- harvesting -----------------------------------------------------

    def _collect(self):
        for fn in self.tree.functions:
            if not fn.body_span:
                continue
            for s in self.tree._file_structs[fn.file]:
                if fn.body_span[0] < s.span[0] and s.span[1] < fn.body_span[1]:
                    self.local_structs.add(s.name)
        # Pass 1: register every field and mutex node, so that pass 2 can
        # resolve DCP_ACQUIRED_BEFORE/AFTER arguments that name a mutex
        # declared later in the class (or in another class entirely).
        for name, structs in self.tree.structs.items():
            for s in structs:
                cf = self.class_fields.setdefault(name, {})
                for f in s.fields:
                    cf[f.name] = f.type
                    self.field_owner.setdefault(f.name, [])
                    if name not in self.field_owner[f.name]:
                        self.field_owner[f.name].append(name)
                    if not f.is_mutex():
                        continue
                    self.member_owner.setdefault(f.name, [])
                    if name not in self.member_owner[f.name]:
                        self.member_owner[f.name].append(name)
                    self.node_sites.setdefault(f"{name}::{f.name}",
                                               (s.file, f.line))
        for rel, sf in self.tree.files.items():
            structs = self.tree._file_structs[rel]
            for m in _GLOBAL_MUTEX_RE.finditer(sf.stripped):
                if any(s.span[0] < m.start() < s.span[1] for s in structs):
                    continue
                name = m.group(1)
                if name not in self.global_mutexes:
                    # Anchor to the declared name, not m.start(): ^\s* can
                    # swallow blank lines above the declaration.
                    self.global_mutexes[name] = (rel, sf.line_of(m.start(1)))
                    self.node_sites[f"::{name}"] = self.global_mutexes[name]
        # Pass 2: documented ordering edges (all nodes are registered now).
        for name, structs in self.tree.structs.items():
            for s in structs:
                for f in s.fields:
                    if not f.is_mutex():
                        continue
                    me = f"{name}::{f.name}"
                    for arg in f.acquired_before:
                        other = self._resolve_in_class(arg, name)
                        if other:
                            self.documented.add((me, other))
                            self.doc_sites[(me, other)] = (s.file, f.line)
                    for arg in f.acquired_after:
                        other = self._resolve_in_class(arg, name)
                        if other:
                            self.documented.add((other, me))
                            self.doc_sites[(other, me)] = (s.file, f.line)

    def _resolve_in_class(self, arg: str, cls: str) -> str | None:
        arg = arg.strip()
        if "::" in arg:
            return arg
        owners = self.member_owner.get(arg, [])
        if cls in owners:
            return f"{cls}::{arg}"
        if len(owners) == 1:
            return f"{owners[0]}::{arg}"
        if arg in self.global_mutexes:
            return f"::{arg}"
        return None

    # ---- typing ---------------------------------------------------------

    def _classes_in(self, type_str: str) -> list[str]:
        return [w for w in re.findall(r"[A-Za-z_]\w*", type_str)
                if w in self.tree.structs]

    def _type_candidates(self, base: str, fn: Function, body: str) -> list[str]:
        """Known struct types the variable `base` may have, best guess first."""
        b = re.escape(base)
        out: list[str] = []

        def add(types):
            for t in types:
                if t not in out:
                    out.append(t)

        for m in re.finditer(
                r"([A-Za-z_][\w:]*(?:<[^;()]*>)?)\s*(?:const\s*)?[\*&\s]+%s\b"
                % b, fn.params):
            add(self._classes_in(m.group(1)))
        m = re.search(r"%s\s*=\s*static_cast<\s*(?:const\s+)?([A-Za-z_]\w*)"
                      % b, body)
        if m and m.group(1) in self.tree.structs:
            add([m.group(1)])
        for m in re.finditer(
                r"\b([A-Za-z_][\w:]*(?:<[^;()]*>)?)\s*[\*&]?\s+%s\s*[=;({:]"
                % b, body):
            add(self._classes_in(m.group(1)))
        for m in re.finditer(
                r"\b%s\s*=\s*std::make_(?:shared|unique)<\s*([A-Za-z_]\w*)"
                % b, body):
            if m.group(1) in self.tree.structs:
                add([m.group(1)])
        # `auto x = root...`, `for (auto& x : root...)`, and lambda
        # init-captures `[x = root]`: type the root.
        roots = [m.group(1) for m in re.finditer(
            r"auto[^=;:(){]*[\s\*&]%s\s*=\s*[&\*\s]*([A-Za-z_]\w*)" % b, body)]
        roots += [m.group(1) for m in re.finditer(
            r"for\s*\(\s*(?:const\s+)?auto[^:;){]*[\s\*&]%s\s*:\s*"
            r"[&\*\s]*([A-Za-z_]\w*)" % b, body)]
        roots += [m.group(1) for m in re.finditer(
            r"[\[,]\s*%s\s*=\s*[&\*\s]*([A-Za-z_]\w*)\s*[,\]]" % b, body)]
        for root in roots:
            if fn.cls and root in self.class_fields.get(fn.cls, {}):
                add(self._classes_in(self.class_fields[fn.cls][root]))
            for owner in self.field_owner.get(root, ()):
                add(self._classes_in(self.class_fields[owner][root]))
        # `base` itself a member field of the enclosing (or any) class.
        if fn.cls and base in self.class_fields.get(fn.cls, {}):
            add(self._classes_in(self.class_fields[fn.cls][base]))
        for owner in self.field_owner.get(base, ()):
            add(self._classes_in(self.class_fields[owner][base]))
        return out

    def _resolve_expr(self, expr: str, fn: Function, body: str) -> str | None:
        expr = expr.strip().lstrip("*&").strip().strip("()")
        parts = re.split(r"\.|->", expr)
        member = re.sub(r"\[.*\]", "", parts[-1]).strip()
        if not re.fullmatch(r"[A-Za-z_]\w*", member):
            return None
        base = parts[-2].strip() if len(parts) > 1 else None
        base = re.sub(r"\[.*\]", "", base).strip() if base else None
        owners = self.member_owner.get(member, [])
        if not owners:
            if member in self.global_mutexes:
                return f"::{member}"
            # A function-local Mutex.
            if re.search(r"\bMutex\s+%s\b" % re.escape(member), body) or \
               re.search(r"\bMutex\s+%s\b" % re.escape(member), fn.params):
                return f"{fn.qualname}()::{member}"
            return None
        if base is None or base == "this":
            if fn.cls in owners:
                return f"{fn.cls}::{member}"
            return f"{owners[0]}::{member}" if len(owners) == 1 else None
        for t in self._type_candidates(base, fn, body):
            if t in owners:
                return f"{t}::{member}"
        if len(owners) == 1:
            return f"{owners[0]}::{member}"
        self.notes.add(
            f"{fn.file}:{fn.line}: cannot type `{expr}` in {fn.qualname}; "
            f"candidates {owners}; acquisition not tracked")
        return None

    def _callee_defs(self, receiver: str | None, method: str,
                     fn: Function, body: str) -> list[Function]:
        """Function definitions a call site may reach."""
        key = (id(fn), receiver, method)
        if key in self._callee_cache:
            return self._callee_cache[key]
        defs = self.tree.defs
        result: list[Function] = []
        if receiver:
            cands = self._type_candidates(receiver, fn, body)
            for t in cands:
                result += defs.get(f"{t}::{method}", [])
            if not result and cands:
                # Receiver typed, but that class has no such definition: the
                # method acquires nothing we know about.  Precise no-op.
                result = []
            elif not result:
                result = [d for d in defs.get(method, []) if d.cls]
        else:
            result = defs.get(f"{fn.cls}::{method}", []) if fn.cls else []
            if not result:
                free = [d for d in defs.get(method, []) if not d.cls]
                result = free or defs.get(method, [])
        self._callee_cache[key] = result
        return result

    # ---- body walking ---------------------------------------------------

    def _entry_held(self, fn: Function, body: str) -> list[str]:
        held = []
        for macro, args in self.tree.merged_annotations(fn):
            if macro in ("DCP_REQUIRES", "DCP_ACQUIRE", "DCP_ACQUIRE_SHARED"):
                for a in args.split(","):
                    a = a.strip().rstrip("&")
                    if not a:
                        continue
                    node = self._resolve_expr(a, fn, body)
                    if node:
                        held.append(node)
        return held

    def _detach_async_lambdas(self, body: str):
        """Mask bodies of lambdas handed to async sinks out of `body`.

        Returns (masked_body, [(open_brace_off, close_brace_off)]).  The
        masked text drives the synchronous walk; each lambda body is walked
        separately with an empty held set, since it runs on another thread.
        """
        masked = list(body)
        spans = []
        for m in _ASYNC_SINK_RE.finditer(body):
            open_p = m.end() - 1
            close_p = find_matching(body, open_p, "(", ")")
            if close_p == -1:
                continue
            i = open_p + 1
            while i < close_p:
                if body[i] != "[":
                    i += 1
                    continue
                cb = find_matching(body, i, "[", "]")
                if cb == -1:
                    break
                j = cb + 1
                while j < close_p and body[j].isspace():
                    j += 1
                if j < close_p and body[j] == "(":
                    pc = find_matching(body, j, "(", ")")
                    if pc == -1:
                        break
                    j = pc + 1
                while j < close_p and body[j] not in "{,)":
                    j += 1
                if j >= close_p or body[j] != "{":
                    i = cb + 1
                    continue
                bc = find_matching(body, j)
                if bc == -1 or bc > close_p:
                    i = cb + 1
                    continue
                spans.append((j, bc))
                for k in range(j, bc + 1):
                    if masked[k] != "\n":
                        masked[k] = " "
                i = bc + 1
        return "".join(masked), spans

    def _walk(self, fn: Function, record_edges: bool) -> set[str]:
        """Walk one body; optionally record edges.

        Returns the nodes the function acquires *synchronously* (async lambda
        acquisitions excluded — they don't nest under the caller's locks).
        """
        full = self.tree.body_text(fn)
        masked, lambda_spans = self._detach_async_lambdas(full)
        base = fn.body_span[0] + 1
        acquired = self._walk_span(fn, masked, base, full,
                                   self._entry_held(fn, full), record_edges)
        if record_edges:
            for (j, bc) in lambda_spans:
                self._walk_span(fn, full[j + 1:bc], base + j + 1, full, [],
                                record_edges)
        return acquired

    def _walk_span(self, fn: Function, body: str, base_off: int,
                   type_body: str, entry_held: list[str],
                   record_edges: bool) -> set[str]:
        sf = self.tree.files[fn.file]
        events = []  # (offset, kind, payload)
        for i, c in enumerate(body):
            if c == "{":
                events.append((i, "open", None))
            elif c == "}":
                events.append((i, "close", None))
        for m in _MUTEXLOCK_RE.finditer(body):
            events.append((m.start(), "mutexlock", (m.group(1), m.group(2))))
        for m in _RAW_LOCK_RE.finditer(body):
            events.append((m.start(), "rawlock",
                           (_base_expr_before(body, m.start()), m.group(1))))
        if record_edges:
            for m in _CALL_RE.finditer(body):
                recv, name = m.group(1), m.group(2)
                if name in ("MutexLock", "Lock", "Unlock", "native"):
                    continue
                if name in self.tree.defs:
                    events.append((m.start(), "call", (recv, name)))
        events.sort(key=lambda e: e[0])

        held: list[str] = list(entry_held)
        scopes: list[list[str]] = [[]]
        lock_vars: dict[str, str] = {}
        acquired: set[str] = set()

        def acquire(node: str, off: int):
            if record_edges:
                line = sf.line_of(base_off + off)
                for h in held:
                    key = (h, node)
                    if key not in self.observed:
                        self.observed[key] = (fn.file, line, fn.qualname)
            held.append(node)
            scopes[-1].append(node)
            acquired.add(node)

        for off, kind, payload in events:
            if kind == "open":
                scopes.append([])
            elif kind == "close":
                for node in scopes.pop() if len(scopes) > 1 else []:
                    if node in held:
                        held.remove(node)
            elif kind == "mutexlock":
                var, expr = payload
                node = self._resolve_expr(expr, fn, type_body)
                if node:
                    lock_vars[var] = node
                    acquire(node, off)
            elif kind == "rawlock":
                expr, op = payload
                parts = re.split(r"\.|->", expr)
                if parts and parts[-1] in lock_vars:
                    node = lock_vars[parts[-1]]
                    if op == "Lock":
                        acquire(node, off)
                    elif node in held:
                        held.remove(node)
                    continue
                node = self._resolve_expr(expr, fn, type_body)
                if node is None:
                    continue
                if op == "Lock":
                    acquire(node, off)
                elif node in held:
                    held.remove(node)
            elif kind == "call":
                if not held:
                    continue
                recv, name = payload
                line = sf.line_of(base_off + off)
                summary: set[str] = set()
                for target in self._callee_defs(recv, name, fn, type_body):
                    summary |= self._summaries.get(id(target), set())
                for node in summary:
                    for h in held:
                        if h == node:
                            continue  # re-entry checked at direct sites
                        key = (h, node)
                        if key not in self.observed:
                            self.observed[key] = (fn.file, line,
                                                  f"{fn.qualname} -> {name}")
        # Locks a function acquires on behalf of callers exclude what it
        # already required held at entry.
        return acquired - set(entry_held)

    # ---- the analysis ---------------------------------------------------

    def run(self) -> list[Finding]:
        defs = [f for f in self.tree.functions
                if f.body_span and f.file != "src/common/thread_annotations.h"]
        # Fixed-point call summaries with receiver-typed callee resolution.
        self._summaries = {}
        resolved_calls: dict[int, list[Function]] = {}
        for fn in defs:
            self._summaries[id(fn)] = self._walk(fn, record_edges=False)
            body = self.tree.body_text(fn)
            # Calls made inside detached async lambdas don't count toward the
            # caller's synchronous summary either.
            masked, _ = self._detach_async_lambdas(body)
            targets = []
            for m in _CALL_RE.finditer(masked):
                recv, name = m.group(1), m.group(2)
                if name in ("MutexLock", "Lock", "Unlock", "native"):
                    continue
                if name in self.tree.defs:
                    targets += self._callee_defs(recv, name, fn, body)
            resolved_calls[id(fn)] = targets
        for _ in range(20):
            changed = False
            for fn in defs:
                s = self._summaries[id(fn)]
                before = len(s)
                for target in resolved_calls[id(fn)]:
                    s |= self._summaries.get(id(target), set())
                if len(s) != before:
                    changed = True
            if not changed:
                break

        for fn in defs:
            self._walk(fn, record_edges=True)

        findings: list[Finding] = []
        # Undocumented nesting: observed edge not implied by the documented
        # partial order (transitive closure).
        closure = set(self.documented)
        for _ in range(len(closure) + 1):
            new = {(a, d) for (a, b) in closure for (c, d) in closure if b == c}
            if new <= closure:
                break
            closure |= new
        for (a, b), (file, line, where) in sorted(self.observed.items()):
            if a == b:
                findings.append(Finding(
                    file, line, "lock-cycle",
                    f"{b} acquired in {where} while already held "
                    f"(self-deadlock)"))
                continue
            if (a, b) in closure:
                continue
            if self._leaf_waived(b):
                continue
            if b.split("::")[0] in self.local_structs:
                continue
            findings.append(Finding(
                file, line, "lock-order",
                f"{b} acquired in {where} while holding {a}, but no "
                f"DCP_ACQUIRED_BEFORE/AFTER annotation documents that "
                f"order"))
        # Cycles in documented + observed edges.
        graph: dict[str, set[str]] = {}
        for (a, b) in set(self.observed) | self.documented:
            if a != b:
                graph.setdefault(a, set()).add(b)
        for cycle in _find_cycles(graph):
            edge = None
            for i in range(len(cycle)):
                key = (cycle[i], cycle[(i + 1) % len(cycle)])
                if key in self.observed:
                    edge = self.observed[key][:2]
                    break
                if key in self.doc_sites:
                    edge = self.doc_sites[key]
            file, line = edge if edge else ("src", 0)
            path = " -> ".join(cycle + [cycle[0]])
            findings.append(Finding(
                file, line, "lock-cycle",
                f"lock acquisition cycle (potential deadlock): {path}"))
        # native() escape hatch.
        for rel, sf in self.tree.files.items():
            if rel.endswith("common/thread_annotations.h"):
                continue
            for m in _NATIVE_RE.finditer(sf.stripped):
                findings.append(Finding(
                    rel, sf.line_of(m.start()), "lock-native",
                    "Mutex::native() bypasses the lock model; waive with the "
                    "locking protocol spelled out"))
        return findings

    def _leaf_waived(self, node: str) -> bool:
        site = self.node_sites.get(node)
        if not site:
            return False
        sf = self.tree.files.get(site[0])
        return sf is not None and allowed(sf.lines, site[1], "lock-order")


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Every elementary cycle's node set, deduplicated (DFS back-edge based)."""
    cycles, seen = [], set()
    state: dict[str, int] = {}
    stack: list[str] = []

    def dfs(v: str):
        state[v] = 1
        stack.append(v)
        for w in sorted(graph.get(v, ())):
            if state.get(w, 0) == 0:
                dfs(w)
            elif state.get(w) == 1:
                cyc = stack[stack.index(w):]
                key = frozenset(cyc)
                if key not in seen:
                    seen.add(key)
                    cycles.append(list(cyc))
        stack.pop()
        state[v] = 2

    for v in sorted(graph):
        if state.get(v, 0) == 0:
            dfs(v)
    return cycles


def run(tree: SourceTree, notes: list[str] | None = None) -> list[Finding]:
    a = LockAnalysis(tree)
    findings = a.run()
    if notes is not None:
        notes.extend(sorted(a.notes))
    return findings
