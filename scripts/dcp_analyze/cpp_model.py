"""Lightweight C++ source model for dcp_analyze.

Not a real parser: a tokenizer plus brace-matching declaration indexer tuned to
this repo's style (Google-ish C++20, one class per header, out-of-line
definitions as `Ret Class::Name(args) SUFFIX... {`).  It extracts exactly what
the four analyses need — struct fields with their DCP_* annotations, enum
enumerators, function definitions with bodies, and member/call mentions — and
nothing more.  Where C++ is ambiguous the model is deliberately conservative
and the analyses layer waivers on top.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

# Keywords and macro-ish names that look like `name(` but are never function
# definitions we want to index.
_NOT_A_FUNCTION = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "else", "do", "case", "throw", "static_assert", "alignas",
    "alignof", "decltype", "defined", "assert", "co_return", "co_await",
}

_SUFFIX_WORDS = {"const", "noexcept", "override", "final", "mutable", "try"}


def strip_comments_and_strings(text: str) -> str:
    """Blank comment and string/char-literal interiors with spaces.

    Line structure (every newline) is preserved so offsets and line numbers in
    the stripped text match the original.  Mirrors dcp_lint's helper; kept
    separate so the two tools stay independently runnable.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            elif c == "\n":  # unterminated (macro line continuation); bail out
                state = "code"
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def find_matching(text: str, open_idx: int, open_ch: str = "{",
                  close_ch: str = "}") -> int:
    """Index of the bracket matching text[open_idx], or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def blank_nested_braces(body: str) -> str:
    """Blank everything inside nested {...} groups of a struct/function body.

    Each closing brace becomes ';' so an in-class method definition terminates
    like a declaration and never glues onto the next field.  Newlines survive.
    """
    out = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
            out.append(" ")
        elif c == "}":
            depth -= 1
            out.append(";" if depth == 0 else " ")
        elif depth > 0:
            out.append("\n" if c == "\n" else " ")
        else:
            out.append(c)
    return "".join(out)


_ANNOTATION_RE = re.compile(r"\b(DCP_[A-Z_]+)\s*\(([^()]*)\)")
_FIELD_SKIP_RE = re.compile(
    r"^\s*(static|constexpr|using|typedef|friend|template|public|private|"
    r"protected|enum|struct|class|explicit|virtual|operator)\b")
_FIELD_RE = re.compile(
    r"^(?:mutable\s+)?(?P<type>[\w:]+(?:\s*<.*>)?"
    r"(?:\s+[\w:]+(?:\s*<.*>)?)*?(?:\s*[\*&]+)?)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:\[[^\]]*\])?$")


@dataclasses.dataclass
class Field:
    name: str
    type: str
    line: int
    guards: list[str]            # DCP_GUARDED_BY / DCP_PT_GUARDED_BY args
    acquired_before: list[str]   # DCP_ACQUIRED_BEFORE args
    acquired_after: list[str]    # DCP_ACQUIRED_AFTER args

    def is_mutex(self) -> bool:
        base = self.type.split("<")[0].strip().rstrip("*& ")
        return base.split("::")[-1] == "Mutex"


@dataclasses.dataclass
class Struct:
    name: str
    file: str
    line: int
    span: tuple[int, int]  # offsets into the stripped text: '{' .. '}'
    fields: list[Field]


@dataclasses.dataclass
class Function:
    cls: str            # enclosing/qualifying class name, "" for free functions
    name: str
    file: str
    line: int
    params: str         # raw parameter list text
    annotations: list[tuple[str, str]]  # (macro, args) suffix annotations
    body_span: tuple[int, int] | None   # '{' .. '}' offsets, None = declaration

    @property
    def qualname(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


_STRUCT_RE = re.compile(
    r"\b(enum\s+)?(?:struct|class)\s+([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*"
    r"(?:final\s*)?(?::[^:{;][^{;]*)?\{")
_ENUM_RE = re.compile(
    r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)\s*(?::\s*[\w:]+\s*)?\{")
_DEF_RE = re.compile(
    r"^[^\S\n]*((?:[\w:~]+(?:<[^;()\n]*>)?[\s\*&]+)*)"
    r"((?:[A-Za-z_]\w*::)*)(~?[A-Za-z_]\w*)\s*\(",
    re.M)
MEMBER_MENTION_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\b(?!\s*\()")
CALL_RE = re.compile(r"(?:\.|->|\b)([A-Za-z_]\w*)\s*\(")


class SourceFile:
    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.stripped = strip_comments_and_strings(text)

    def line_of(self, offset: int) -> int:
        return self.stripped.count("\n", 0, offset) + 1


def parse_fields(sf: SourceFile, body_start: int, body_end: int) -> list[Field]:
    body = blank_nested_braces(sf.stripped[body_start + 1:body_end])
    fields = []
    chunk_start = 0
    for m in re.finditer(";", body):
        chunk = body[chunk_start:m.start()]
        offset = body_start + 1 + chunk_start
        chunk_start = m.end()
        anns = _ANNOTATION_RE.findall(chunk)
        decl = _ANNOTATION_RE.sub(" ", chunk)
        decl = re.sub(r"=\s*[^=].*$", " ", decl.strip(), flags=re.S)
        decl = re.sub(r"\{[^{}]*\}\s*$", " ", decl)
        decl = " ".join(decl.split())
        # An access label shares its chunk with the member that follows it
        # (`private: Mutex mu_`): peel labels off before classifying.
        decl = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", decl)
        if not decl or "(" in decl or _FIELD_SKIP_RE.match(decl):
            continue
        fm = _FIELD_RE.match(decl)
        if not fm:
            continue
        name_off = sf.stripped.find(fm.group("name"), offset)
        line = sf.line_of(name_off if name_off != -1 else offset)
        guards, before, after = [], [], []
        for macro, args in anns:
            arglist = [a.strip() for a in args.split(",") if a.strip()]
            if macro in ("DCP_GUARDED_BY", "DCP_PT_GUARDED_BY"):
                guards += arglist
            elif macro == "DCP_ACQUIRED_BEFORE":
                before += arglist
            elif macro == "DCP_ACQUIRED_AFTER":
                after += arglist
        fields.append(Field(fm.group("name"), fm.group("type").strip(), line,
                            guards, before, after))
    return fields


def parse_structs(sf: SourceFile) -> list[Struct]:
    structs = []
    for m in _STRUCT_RE.finditer(sf.stripped):
        if m.group(1):  # enum class
            continue
        open_idx = m.end() - 1
        close_idx = find_matching(sf.stripped, open_idx)
        if close_idx == -1:
            continue
        # `struct Outer::Inner { ... }` definitions index under the inner name.
        name = m.group(2).split("::")[-1]
        structs.append(Struct(name, sf.rel, sf.line_of(m.start()),
                              (open_idx, close_idx),
                              parse_fields(sf, open_idx, close_idx)))
    return structs


def parse_enums(sf: SourceFile) -> dict[str, list[tuple[str, int]]]:
    enums = {}
    for m in _ENUM_RE.finditer(sf.stripped):
        open_idx = m.end() - 1
        close_idx = find_matching(sf.stripped, open_idx)
        if close_idx == -1:
            continue
        body = blank_nested_braces(sf.stripped[open_idx + 1:close_idx])
        names = []
        pos = 0
        for part in body.split(","):
            tok = part.split("=")[0].strip()
            if re.fullmatch(r"[A-Za-z_]\w*", tok):
                off = sf.stripped.find(tok, open_idx + 1 + pos)
                names.append((tok, sf.line_of(off)))
            pos += len(part) + 1
        enums[m.group(1)] = names
    return enums


def _scan_suffix(text: str, i: int):
    """Classify what follows a parameter list's ')'.

    Returns (kind, body_open, annotations) where kind is 'def', 'decl' or None.
    """
    anns = []
    n = len(text)
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            return None, -1, anns
        c = text[i]
        if c in ";,)":
            return "decl", -1, anns
        if c == "{":
            return "def", i, anns
        if c == "=":
            return "decl", -1, anns
        if c == ":":
            # Constructor init list: skip `name(args)` / `name{args}` items.
            i += 1
            while i < n:
                while i < n and text[i].isspace():
                    i += 1
                w = re.match(r"[\w:]+", text[i:])
                if not w:
                    return None, -1, anns
                i += w.end()
                while i < n and text[i].isspace():
                    i += 1
                if i >= n or text[i] not in "({":
                    return None, -1, anns
                close = find_matching(text, i, text[i],
                                      ")" if text[i] == "(" else "}")
                if close == -1:
                    return None, -1, anns
                i = close + 1
                while i < n and text[i].isspace():
                    i += 1
                if i < n and text[i] == ",":
                    i += 1
                    continue
                if i < n and text[i] == "{":
                    return "def", i, anns
                return None, -1, anns
            return None, -1, anns
        if text[i:i + 2] == "->":
            # Trailing return type: scan to '{' or ';' outside <> and ().
            i += 2
            depth = 0
            while i < n:
                c = text[i]
                if c in "<(":
                    depth += 1
                elif c in ">)":
                    depth -= 1
                elif depth <= 0 and c == "{":
                    return "def", i, anns
                elif depth <= 0 and c == ";":
                    return "decl", -1, anns
                i += 1
            return None, -1, anns
        w = re.match(r"[A-Za-z_]\w*", text[i:])
        if w:
            word = w.group(0)
            i += w.end()
            if word.startswith("DCP_"):
                while i < n and text[i].isspace():
                    i += 1
                args = ""
                if i < n and text[i] == "(":
                    close = find_matching(text, i, "(", ")")
                    if close == -1:
                        return None, -1, anns
                    args = text[i + 1:close]
                    anns.append((word, args))
                    i = close + 1
                else:
                    anns.append((word, ""))
                continue
            if word in _SUFFIX_WORDS:
                if word == "noexcept":
                    while i < n and text[i].isspace():
                        i += 1
                    if i < n and text[i] == "(":
                        close = find_matching(text, i, "(", ")")
                        if close == -1:
                            return None, -1, anns
                        i = close + 1
                continue
            return None, -1, anns
        if c == "&":
            i += 1
            continue
        return None, -1, anns
    return None, -1, anns


def parse_functions(sf: SourceFile, structs: list[Struct]) -> list[Function]:
    text = sf.stripped
    funcs = []
    for m in _DEF_RE.finditer(text):
        name = m.group(3)
        if name in _NOT_A_FUNCTION or name.startswith("DCP_"):
            continue
        open_paren = m.end() - 1
        close_paren = find_matching(text, open_paren, "(", ")")
        if close_paren == -1:
            continue
        kind, body_open, anns = _scan_suffix(text, close_paren + 1)
        if kind is None:
            continue
        qual = m.group(2).rstrip(":")
        cls = qual.split("::")[-1] if qual else ""
        if not cls:
            for s in structs:
                if s.span[0] < m.start() < s.span[1]:
                    cls = s.name
                    break
        body_span = None
        if kind == "def":
            body_close = find_matching(text, body_open)
            if body_close == -1:
                continue
            body_span = (body_open, body_close)
        funcs.append(Function(cls, name.lstrip("~"), sf.rel,
                              sf.line_of(m.start(3)),
                              text[open_paren + 1:close_paren], anns,
                              body_span))
    return funcs


class SourceTree:
    """Index of every .h/.cc under <root>/src."""

    def __init__(self, root: Path, subdir: str = "src"):
        self.root = Path(root)
        self.files: dict[str, SourceFile] = {}
        base = self.root / subdir
        for p in sorted(base.rglob("*")):
            if p.suffix in (".h", ".cc") and p.is_file():
                rel = str(p.relative_to(self.root))
                self.files[rel] = SourceFile(rel, p.read_text(errors="replace"))
        self.structs: dict[str, list[Struct]] = {}
        self.enums: dict[str, list[tuple[str, int]]] = {}
        self.functions: list[Function] = []
        self._file_structs: dict[str, list[Struct]] = {}
        for rel, sf in self.files.items():
            structs = parse_structs(sf)
            self._file_structs[rel] = structs
            for s in structs:
                self.structs.setdefault(s.name, []).append(s)
            for name, vals in parse_enums(sf).items():
                self.enums.setdefault(name, vals)
            self.functions += parse_functions(sf, structs)
        # Definitions (with bodies) indexed by qualified and bare name.
        self.defs: dict[str, list[Function]] = {}
        self.decl_annotations: dict[str, list[tuple[str, str]]] = {}
        for f in self.functions:
            if f.body_span:
                self.defs.setdefault(f.qualname, []).append(f)
                self.defs.setdefault(f.name, []).append(f)
            elif f.annotations:
                self.decl_annotations.setdefault(f.qualname, []).extend(
                    f.annotations)

    def struct(self, name: str) -> Struct | None:
        lst = self.structs.get(name)
        return lst[0] if lst else None

    def body_text(self, f: Function) -> str:
        sf = self.files[f.file]
        return sf.stripped[f.body_span[0] + 1:f.body_span[1]]

    def merged_annotations(self, f: Function) -> list[tuple[str, str]]:
        """Definition-site annotations plus any from the header declaration."""
        return f.annotations + self.decl_annotations.get(f.qualname, [])
