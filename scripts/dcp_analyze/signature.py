"""Signature-coverage analysis: every plan-affecting knob must be hashed.

DCP's correctness story is that a plan is a pure function of its
PlanSignature.  This analysis makes that mechanical: any member of a tracked
knob/cost-model struct (PlannerOptions, PlacementOptions, ClusterSpec,
MaskSpec) that planning code *reads* must be either

  hashed   — mentioned through a tracked-typed parameter inside
             src/core/plan_signature.cc, or
  derived  — assigned (transitively) from a hashed field, e.g.
             `placement_options.eps_inter = options.eps_inter` in planner.cc,

otherwise two different configurations can collide on one signature and the
cache serves a wrong plan.  Rule: signature-coverage, reported at the first
read site; waivable there or at the field's declaration line.

Reads are member mentions that are not plain assignments' left-hand sides;
attribution prefers parameter/local variable typing and falls back to "every
tracked struct declaring that name" (safe: over-attribution can only make the
check stricter, and shared names are hashed on all owners today).
"""

from __future__ import annotations

import re

from cpp_model import SourceTree, Function
from waivers import Finding, allowed

TRACKED = ("PlannerOptions", "PlacementOptions", "ClusterSpec", "MaskSpec")
SIGNATURE_FILE = "src/core/plan_signature.cc"
# Planning paths: where a read of an unhashed knob can change the plan.
READ_SCOPES = ("src/core/", "src/hypergraph/", "src/masks/",
               "src/runtime/cost_model")

# A mention that is read (excludes `x.f = ...` plain stores; `+=` etc. still
# read the old value and count).
_READ_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\b(?!\s*\()(?!\s*=[^=])")
_ASSIGN_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*=\s*"
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*;")


def _tracked_vars(fn: Function, body: str) -> dict[str, str]:
    """Map variable name -> tracked struct type, from params and locals."""
    out: dict[str, str] = {}
    for t in TRACKED:
        for m in re.finditer(
                r"\b%s\b(?:\s*const)?\s*[\*&]*\s+([A-Za-z_]\w*)" % t,
                fn.params):
            out[m.group(1)] = t
        for m in re.finditer(
                r"\b%s\b\s*[\*&]?\s+([A-Za-z_]\w*)\s*[;={(]" % t, body):
            out[m.group(1)] = t
    return out


def run(tree: SourceTree, notes: list[str] | None = None) -> list[Finding]:
    field_index: dict[str, dict] = {}   # struct -> {field -> Field}
    owners: dict[str, list[str]] = {}   # field name -> tracked structs
    for t in TRACKED:
        s = tree.struct(t)
        if s is None:
            continue
        field_index[t] = {f.name: (f, s.file) for f in s.fields}
        for f in s.fields:
            owners.setdefault(f.name, []).append(t)

    # 1. Hashed set: tracked-typed parameter mentions in plan_signature.cc.
    hashed: set[tuple[str, str]] = set()
    for fn in tree.functions:
        if fn.file != SIGNATURE_FILE or not fn.body_span:
            continue
        body = tree.body_text(fn)
        tvars = _tracked_vars(fn, body)
        for m in re.finditer(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)",
                             body):
            var, member = m.group(1), m.group(2)
            t = tvars.get(var)
            if t and member in field_index.get(t, {}):
                hashed.add((t, member))

    # 2. Derived set: fixed point over `a.f = b.g;` where (type(b), g) covered.
    covered = set(hashed)
    assigns = []
    for rel, sf in tree.files.items():
        if not rel.startswith(READ_SCOPES) or rel == SIGNATURE_FILE:
            continue
        for fn in tree.functions:
            if fn.file != rel or not fn.body_span:
                continue
            body = tree.body_text(fn)
            tvars = _tracked_vars(fn, body)
            for m in _ASSIGN_RE.finditer(body):
                lt, rt = tvars.get(m.group(1)), tvars.get(m.group(3))
                if lt and rt:
                    assigns.append(((lt, m.group(2)), (rt, m.group(4))))
    for _ in range(len(assigns) + 1):
        grew = False
        for dst, src in assigns:
            if src in covered and dst not in covered and \
               dst[1] in field_index.get(dst[0], {}):
                covered.add(dst)
                grew = True
        if not grew:
            break

    # 3. Read sites on planning paths.
    reads: dict[tuple[str, str], tuple[str, int]] = {}
    for rel, sf in tree.files.items():
        if not rel.startswith(READ_SCOPES) or rel == SIGNATURE_FILE:
            continue
        per_file_vars: list[tuple[Function, dict[str, str], int, int]] = []
        for fn in tree.functions:
            if fn.file == rel and fn.body_span:
                per_file_vars.append(
                    (fn, _tracked_vars(fn, tree.body_text(fn)),
                     fn.body_span[0], fn.body_span[1]))
        for m in _READ_RE.finditer(sf.stripped):
            member = m.group(1)
            cands = owners.get(member)
            if not cands:
                continue
            base = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$",
                             sf.stripped[:m.start()])
            attributed = None
            if base:
                for fn, tvars, lo, hi in per_file_vars:
                    if lo < m.start() < hi and base.group(1) in tvars:
                        attributed = tvars[base.group(1)]
                        break
            targets = [attributed] if attributed in cands else cands
            line = sf.line_of(m.start())
            for t in targets:
                if member in field_index.get(t, {}):
                    reads.setdefault((t, member), (rel, line))

    findings = []
    for (t, member), (rel, line) in sorted(reads.items()):
        if (t, member) in covered:
            continue
        field, decl_file = field_index[t][member]
        decl_sf = tree.files.get(decl_file)
        if decl_sf and allowed(decl_sf.lines, field.line, "signature-coverage"):
            continue
        findings.append(Finding(
            rel, line, "signature-coverage",
            f"{t}.{member} is read on a planning path but never hashed by "
            f"PlanSignatureBuilder in {SIGNATURE_FILE} (nor derived from a "
            f"hashed field): two configs differing only in this knob collide "
            f"on one signature and the cache serves a wrong plan"))
    return findings
