"""dcp_analyze — cross-file semantic analyses the compiler and dcp_lint cannot do.

dcp_lint (scripts/dcp_lint.py) checks single lines against repo invariants; the
clang thread-safety build checks single translation units against lock
annotations.  Neither reasons *across* files: nothing proves two locks are never
taken in opposite orders, that a serialized struct's every field round-trips
through every codec flavor, that every planner knob the planner reads is folded
into the PlanSignature, or that every FrameType has a server-side handler.
This package does, with four analyses over a lightweight C++ declaration index:

  lock-order       Harvests dcp::Mutex members, MutexLock sites and
                   DCP_REQUIRES/DCP_ACQUIRED_BEFORE annotations into a lock
                   acquisition graph; flags cycles and undocumented nesting.
  codec            Diffs declared struct fields against the fields each codec
                   direction/flavor actually touches, and pins the inventory.
  signature        Cross-references planner-knob/cost-model fields read on
                   planning paths against PlanSignatureBuilder calls.
  frame-dispatch   Every FrameType enumerator must be dispatched (requests) or
                   sent (responses) by plan_server.cc.

Waiver syntax is shared with dcp_lint: a finding is suppressed when its line or
the line directly above carries `// dcp-analyze: allow(<rule>)` with a reason.
`--self-test` runs every analysis over seeded-bug and clean fixture trees.
"""

ANALYSES = ("lock-order", "codec", "signature", "frame-dispatch")
