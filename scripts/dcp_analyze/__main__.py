"""CLI: `python3 scripts/dcp_analyze [--root DIR] [--self-test] ...`.

Exit code 0 when every analysis is clean (or waived), 1 otherwise — same
contract as dcp_lint, so check.sh and ctest can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import codec
import dispatch
import lock_order
import signature
from cpp_model import SourceTree
from waivers import split_waived

PACKAGE_DIR = Path(__file__).resolve().parent
ANALYSES = {
    "lock-order": lock_order.run,
    "codec": codec.run,
    "signature": signature.run,
    "frame-dispatch": dispatch.run,
}


def analyze(root: Path, only: str | None = None, verbose: bool = False,
            update_inventory: bool = False) -> int:
    tree = SourceTree(root)
    notes: list[str] = []
    findings = []
    for name, run in ANALYSES.items():
        if only and name != only:
            continue
        findings += run(tree, notes)
    # The pinned wire-field inventory only exists for the real repo; fixture
    # trees (and bare checkouts before the first --update-inventory) skip it.
    inv_path = root / "scripts" / "dcp_analyze" / "field_inventory.json"
    if update_inventory:
        inv_path.write_text(
            json.dumps(codec.compute_inventory(tree), indent=2) + "\n")
        print(f"dcp_analyze: wrote {inv_path}")
    elif inv_path.exists() and (only is None or only == "codec"):
        findings += codec.check_inventory(tree, inv_path)
    active, waived = split_waived(findings, tree.files)
    active.sort(key=lambda f: f.sort_key())
    for f in active:
        print(f)
    if verbose:
        for f in waived:
            print(f"waived: {f}")
        for n in notes:
            print(f"note: {n}")
    if active:
        print(f"dcp_analyze: {len(active)} finding(s) "
              f"({len(waived)} waived)", file=sys.stderr)
        return 1
    print(f"dcp_analyze: clean ({len(waived)} finding(s) waived)")
    return 0


def self_test(verbose: bool = False) -> int:
    """Run every analysis over the fixture trees under fixtures/.

    A fixture is a directory with a src/ tree and an expect.txt of
    `<rule> <file>` lines (one per expected active finding; empty or missing
    for clean fixtures).  Seeded fixtures must produce exactly the expected
    multiset; clean fixtures must produce nothing.
    """
    fixtures = sorted((PACKAGE_DIR / "fixtures").iterdir())
    failures = 0
    for fx in fixtures:
        if not (fx / "src").is_dir():
            continue
        tree = SourceTree(fx)
        findings = []
        for run in ANALYSES.values():
            findings += run(tree, None)
        active, waived = split_waived(findings, tree.files)
        got = sorted((f.rule, f.file) for f in active)
        expect_path = fx / "expect.txt"
        expected = []
        if expect_path.exists():
            for line in expect_path.read_text().splitlines():
                line = line.split("#")[0].strip()
                if line:
                    rule, file = line.split(None, 1)
                    expected.append((rule, file.strip()))
        expected.sort()
        if got == expected:
            print(f"dcp_analyze self-test: {fx.name}: OK "
                  f"({len(got)} finding(s), {len(waived)} waived)")
            if verbose:
                for f in active:
                    print(f"    {f}")
        else:
            failures += 1
            print(f"dcp_analyze self-test: {fx.name}: FAIL", file=sys.stderr)
            for r in sorted(set(expected) - set(got)):
                print(f"    missing expected finding: {r}", file=sys.stderr)
            for r in sorted(set(got) - set(expected)):
                print(f"    unexpected finding: {r}", file=sys.stderr)
            for f in active:
                print(f"    got: {f}", file=sys.stderr)
    if failures:
        print(f"dcp_analyze self-test: {failures} fixture(s) FAILED",
              file=sys.stderr)
        return 1
    print("dcp_analyze self-test: all fixtures OK")
    return 0


def main() -> int:
    p = argparse.ArgumentParser(
        prog="dcp_analyze",
        description="Cross-file semantic analyses for the DCP tree.")
    p.add_argument("--root", default=None,
                   help="repo root (default: the checkout containing this "
                        "script)")
    p.add_argument("--self-test", action="store_true",
                   help="run the seeded-bug and clean fixtures")
    p.add_argument("--only", choices=sorted(ANALYSES),
                   help="run a single analysis")
    p.add_argument("--update-inventory", action="store_true",
                   help="rewrite the pinned wire-field inventory JSON")
    p.add_argument("--verbose", action="store_true",
                   help="also print waived findings and resolution notes")
    args = p.parse_args()
    if args.self_test:
        return self_test(args.verbose)
    root = Path(args.root) if args.root else PACKAGE_DIR.parent.parent
    return analyze(root, args.only, args.verbose, args.update_inventory)


if __name__ == "__main__":
    sys.exit(main())
