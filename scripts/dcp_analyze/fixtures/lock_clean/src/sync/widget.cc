#include "sync/widget.h"

#include <thread>

namespace dcp {

void Widget::Refresh() {
  MutexLock lock(plan_mu_);
  MutexLock stats(stats_mu_);  // Documented: plan_mu_ before stats_mu_.
  ++stats_;
}

int Widget::Snapshot() {
  MutexLock lock(plan_mu_);
  MutexLock debug(debug_mu_);  // Leaf waiver on debug_mu_'s declaration.
  ++debug_hits_;
  return stats_;
}

void Widget::Background() {
  MutexLock lock(stats_mu_);
  ++stats_;
  // The lambda runs on its own thread: its plan_mu_ acquisition is NOT
  // nested under stats_mu_ (that would invert the documented order).
  std::thread([this] {
    MutexLock lock(plan_mu_);
    ++stats_;
  }).detach();
}

void Widget::Trace() {
  // dcp-analyze: allow(lock-native): fixture for the site-waiver path.
  void* raw = stats_mu_.native();
  (void)raw;
}

}  // namespace dcp
