// Clean lock-order fixture: every nesting edge documented, every escape
// hatch waived.  Exercises DCP_ACQUIRED_BEFORE, the leaf-lock declaration
// waiver, the lock-native site waiver, and async-lambda detachment.
#pragma once

#include "common/thread_annotations.h"

namespace dcp {

class Widget {
 public:
  void Refresh();
  int Snapshot();
  void Background();
  void Trace();

 private:
  Mutex plan_mu_ DCP_ACQUIRED_BEFORE(stats_mu_);
  Mutex stats_mu_;
  // dcp-analyze: allow(lock-order): leaf — debug counter, nothing nests under it.
  Mutex debug_mu_;
  int stats_ = 0;
  int debug_hits_ = 0;
};

}  // namespace dcp
