#include "sync/pair.h"

namespace dcp {

void Alpha::Forward() {
  MutexLock first(a_mu_);
  MutexLock second(b_mu_);
  ++v_;
}

void Alpha::Backward() {
  MutexLock first(b_mu_);
  MutexLock second(a_mu_);  // Inverted: deadlocks against Forward().
  ++v_;
}

void Alpha::Escape() {
  void* raw = a_mu_.native();  // No waiver: must be flagged.
  (void)raw;
}

void Beta::Outer() {
  MutexLock lock(outer_mu_);
  Inner();  // Nesting through a helper: outer_mu_ -> inner_mu_.
}

void Beta::Inner() {
  MutexLock lock(inner_mu_);
  ++n_;
}

}  // namespace dcp
