// Seeded lock-order fixture: an inversion cycle, nesting hidden behind a
// helper call, and an unwaived native() escape hatch.
#pragma once

#include "common/thread_annotations.h"

namespace dcp {

class Alpha {
 public:
  void Forward();
  void Backward();
  void Escape();

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int v_ = 0;
};

class Beta {
 public:
  void Outer();

 private:
  void Inner();
  Mutex outer_mu_;
  Mutex inner_mu_;
  int n_ = 0;
};

}  // namespace dcp
