// Clean signature fixture: every knob read on a planning path is hashed,
// derived from a hashed field, or waived at its declaration.
#pragma once

#include <cstdint>

namespace dcp {

struct PlannerOptions {
  int64_t block_size = 128;
  double eps_inter = 0.05;
  // dcp-analyze: allow(signature-coverage): debug-only; never affects the plan.
  bool verbose = false;
};

struct PlacementOptions {
  double eps_inter = 0.0;
};

}  // namespace dcp
