#include "hypergraph/planner.h"

namespace dcp {

PlacementOptions Lower(const PlannerOptions& options) {
  PlacementOptions placement;
  placement.eps_inter = options.eps_inter;  // Derived from a hashed field.
  return placement;
}

double Cost(const PlannerOptions& options, const PlacementOptions& placement) {
  double c = static_cast<double>(options.block_size) * placement.eps_inter;
  if (options.verbose) {  // Waived at the field's declaration.
    c += 0.0;
  }
  return c;
}

}  // namespace dcp
