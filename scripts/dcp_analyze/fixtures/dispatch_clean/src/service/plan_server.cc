#include "service/frame.h"

namespace dcp {

void Handle(FrameType type) {
  switch (type) {
    case FrameType::kPlanRequest:
      Send(FrameType::kPlanResponse);
      break;
    case FrameType::kStatsRequest:
      Send(FrameType::kStatsResponse);
      break;
    default:
      Send(FrameType::kError);
      break;
  }
}

}  // namespace dcp
