// Clean dispatch fixture: every request has an arm and a produced reply;
// every non-request enumerator is produced somewhere.
#pragma once

#include <cstdint>

namespace dcp {

enum class FrameType : uint8_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kError = 5,
};

}  // namespace dcp
