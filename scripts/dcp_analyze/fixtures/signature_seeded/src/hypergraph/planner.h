// Seeded signature fixture: `window` changes planning decisions but is not
// hashed — two configs differing only in window collide on one signature.
#pragma once

#include <cstdint>

namespace dcp {

struct PlannerOptions {
  int64_t block_size = 128;
  int64_t window = 0;
};

}  // namespace dcp
