#include "hypergraph/planner.h"

namespace dcp {

uint64_t BuildSignature(const PlannerOptions& options) {
  uint64_t h = 14695981039346656037ull;
  h = h * 31 + static_cast<uint64_t>(options.block_size);
  // Seeded bug: options.window is read by the planner but never mixed in.
  return h;
}

}  // namespace dcp
