#include "hypergraph/planner.h"

namespace dcp {

double Cost(const PlannerOptions& options) {
  double c = static_cast<double>(options.block_size);
  if (options.window > 0) {
    c /= static_cast<double>(options.window);
  }
  return c;
}

}  // namespace dcp
