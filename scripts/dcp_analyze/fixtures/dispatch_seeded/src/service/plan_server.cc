#include "service/frame.h"

namespace dcp {

void Handle(FrameType type) {
  switch (type) {
    case FrameType::kPlanRequest:
      Send(FrameType::kPlanResponse);
      break;
    // Seeded bug: no arm for kSyncRequest, no kSyncResponse ever sent.
    default:
      Send(FrameType::kError);
      break;
  }
}

}  // namespace dcp
