// Seeded dispatch fixture: kSyncRequest has no dispatch arm and its reply
// type kSyncResponse is never produced by the server.
#pragma once

#include <cstdint>

namespace dcp {

enum class FrameType : uint8_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
  kSyncRequest = 3,
  kSyncResponse = 4,
  kError = 5,
};

}  // namespace dcp
