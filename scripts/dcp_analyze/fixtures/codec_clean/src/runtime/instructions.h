// Clean codec fixture: every PlanStats field is touched by both directions
// of both codec flavors.
#pragma once

#include <cstdint>
#include <string>

namespace dcp {

struct PlanStats {
  int64_t total_bytes = 0;
  int64_t num_chunks = 0;
};

struct BatchPlan {
  PlanStats stats;
};

std::string SerializePlan(const BatchPlan& plan);
bool DeserializePlan(const std::string& text, BatchPlan* plan);
std::string SerializePlanBinary(const BatchPlan& plan);
bool DeserializePlanBinary(const std::string& bytes, BatchPlan* plan);

}  // namespace dcp
