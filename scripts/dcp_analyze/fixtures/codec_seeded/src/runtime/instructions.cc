#include "runtime/instructions.h"

namespace dcp {

std::string SerializePlan(const BatchPlan& plan) {
  std::string out;
  out += std::to_string(plan.stats.total_bytes);
  out += std::to_string(plan.stats.num_chunks);
  return out;
}

bool DeserializePlan(const std::string& text, BatchPlan* plan) {
  plan->stats.total_bytes = 0;  // Seeded drift: num_chunks never restored.
  (void)text;
  return true;
}

std::string SerializePlanBinary(const BatchPlan& plan) {
  std::string out;
  out += std::to_string(plan.stats.num_chunks);  // Seeded drift: total_bytes never written.
  return out;
}

bool DeserializePlanBinary(const std::string& bytes, BatchPlan* plan) {
  plan->stats.total_bytes = 0;
  plan->stats.num_chunks = 0;
  (void)bytes;
  return true;
}

}  // namespace dcp
