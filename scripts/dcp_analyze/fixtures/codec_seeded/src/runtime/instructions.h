// Seeded codec fixture: the text deserializer drops num_chunks and the
// binary serializer drops total_bytes — each direction must be flagged
// independently, anchored at the field's declaration line.
#pragma once

#include <cstdint>
#include <string>

namespace dcp {

struct PlanStats {
  int64_t total_bytes = 0;
  int64_t num_chunks = 0;
};

struct BatchPlan {
  PlanStats stats;
};

std::string SerializePlan(const BatchPlan& plan);
bool DeserializePlan(const std::string& text, BatchPlan* plan);
std::string SerializePlanBinary(const BatchPlan& plan);
bool DeserializePlanBinary(const std::string& bytes, BatchPlan* plan);

}  // namespace dcp
