"""Frame-dispatch exhaustiveness: every FrameType has a server-side story.

PR 7 once fixed a missing dispatch arm by hand; this makes it mechanical.
For every enumerator of `FrameType` (src/service/frame.h):

  * `k<X>Request` must be dispatched by src/service/plan_server.cc — a
    `case FrameType::k<X>Request` arm or an `== FrameType::k<X>Request`
    comparison — and its paired `k<X>Response` must exist in the enum and be
    produced (mentioned) by the server, so every request type gets a
    type-matched reply.
  * Every other enumerator (responses, error frames) must be produced by the
    server somewhere; a frame type nothing ever sends is dead wire surface or
    a forgotten handler.

Rule: frame-dispatch, reported at the enumerator's declaration line in
frame.h (waivable there).
"""

from __future__ import annotations

import re

from cpp_model import SourceTree
from waivers import Finding

ENUM_NAME = "FrameType"
ENUM_FILE = "src/service/frame.h"
SERVER_FILE = "src/service/plan_server.cc"


def run(tree: SourceTree, notes: list[str] | None = None) -> list[Finding]:
    enumerators = tree.enums.get(ENUM_NAME)
    server = tree.files.get(SERVER_FILE)
    if not enumerators or server is None:
        return []
    text = server.stripped
    findings = []
    names = {n for n, _ in enumerators}

    def dispatched(e: str) -> bool:
        return bool(re.search(
            r"case\s+FrameType::%s\b|==\s*FrameType::%s\b|FrameType::%s\s*=="
            % (e, e, e), text))

    def produced(e: str) -> bool:
        return bool(re.search(r"\bFrameType::%s\b" % e, text))

    for name, line in enumerators:
        if name.startswith("k") and name.endswith("Request"):
            if not dispatched(name):
                findings.append(Finding(
                    ENUM_FILE, line, "frame-dispatch",
                    f"FrameType::{name} has no dispatch arm in {SERVER_FILE}; "
                    f"a client sending it gets no type-matched handling"))
                continue  # the reply checks below would only restate this
            pair = name[:-len("Request")] + "Response"
            if pair not in names:
                findings.append(Finding(
                    ENUM_FILE, line, "frame-dispatch",
                    f"FrameType::{name} has no paired FrameType::{pair} "
                    f"enumerator"))
            elif not produced(pair):
                findings.append(Finding(
                    ENUM_FILE, line, "frame-dispatch",
                    f"FrameType::{name} is handled but {SERVER_FILE} never "
                    f"produces its reply type FrameType::{pair}"))
        elif not produced(name):
            findings.append(Finding(
                ENUM_FILE, line, "frame-dispatch",
                f"FrameType::{name} is never produced by {SERVER_FILE}; "
                f"dead frame type or forgotten handler"))
    return findings
