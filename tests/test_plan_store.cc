// The persistent plan store and the hardened (de)serialization under it: randomized
// binary round-trips, corruption injection (bit flips, truncation at every boundary —
// error Status, never a crash, never a silently corrupt plan), cross-process warm start
// (a second Engine on the same path serves store hits bit-identical to fresh PlanBatch),
// and the dcpctl bundle export/import path.
#include "core/plan_store.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/planner.h"
#include "tests/plan_test_util.h"

namespace fs = std::filesystem;

namespace dcp {
namespace {

using plan_test::GeneratedCase;
using plan_test::GenerateCase;
using plan_test::MakeOptions;
using plan_test::SmallMaskSpec;

class PlanStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("dcp_plan_store_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string StorePath(const char* sub = "store") const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

std::string CanonicalSerialized(BatchPlan plan) {
  plan.stats.planning_seconds = 0.0;  // The only legitimately run-dependent field.
  return SerializePlan(plan);
}

struct PlannedCase {
  GeneratedCase c;
  ClusterSpec cluster;
  MaskSpec spec;
  PlannerOptions options;
  BatchPlan plan;
};

PlannedCase PlanRandomCase(Rng& rng) {
  PlannedCase p;
  p.c = GenerateCase(rng);
  p.cluster.num_nodes = p.c.num_nodes;
  p.cluster.devices_per_node = p.c.devices_per_node;
  p.spec = SmallMaskSpec(p.c.mask_kind);
  p.options = MakeOptions(p.c);
  std::vector<SequenceMask> masks = BuildBatchMasks(p.spec, p.c.seqlens);
  p.plan = PlanBatch(p.c.seqlens, masks, p.cluster, p.options);
  return p;
}

TEST(Crc32, MatchesTheIeeeCheckValueAtEveryLengthSplit) {
  // The standard CRC-32 check value pins the polynomial, reflection, and the final
  // inversion — guarding the slicing-by-8 kernel against any drift from the byte-wise
  // definition (which would silently invalidate every existing plan record).
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check), 0xCBF43926u);
  // Incremental updates across every split point, exercising both the 8-byte kernel
  // and the byte-at-a-time tail, must agree with the one-shot value.
  std::string longer;
  for (int i = 0; i < 100; ++i) {
    longer += static_cast<char>(i * 37 + 11);
  }
  const uint32_t whole = Crc32(longer);
  for (size_t split = 0; split <= longer.size(); ++split) {
    uint32_t crc = Crc32Update(0, longer.data(), split);
    crc = Crc32Update(crc, longer.data() + split, longer.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(PlanBinaryCodec, RandomizedPlansRoundTripBitIdentical) {
  Rng rng(20260728);
  for (int iteration = 0; iteration < 6; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    const PlannedCase p = PlanRandomCase(rng);
    const std::string bytes = SerializePlanBinary(p.plan);
    StatusOr<BatchPlan> restored = DeserializePlanBinary(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    // Bit-identical through the canonical text serialization, and the binary form
    // itself re-serializes byte-identically.
    EXPECT_EQ(SerializePlan(restored.value()), SerializePlan(p.plan));
    EXPECT_EQ(SerializePlanBinary(restored.value()), bytes);
  }
}

TEST(PlanBinaryCodec, EveryTruncationFailsCleanly) {
  Rng rng(7);
  const PlannedCase p = PlanRandomCase(rng);
  const std::string bytes = SerializePlanBinary(p.plan);
  ASSERT_GT(bytes.size(), 64u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<BatchPlan> truncated = DeserializePlanBinary(
        std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(truncated.ok()) << "prefix of " << len << " bytes was accepted";
    ASSERT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DeserializePlanBinary(bytes + "x").ok());
}

TEST(PlanBinaryCodec, CorruptCountsAndEnumsAreRejectedWithoutAllocating) {
  Rng rng(8);
  const PlannedCase p = PlanRandomCase(rng);
  std::string bytes = SerializePlanBinary(p.plan);
  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(DeserializePlanBinary(bad).ok());
  }
  // Bad version.
  {
    std::string bad = bytes;
    bad[4] = 0x7F;
    EXPECT_FALSE(DeserializePlanBinary(bad).ok());
  }
  // A hand-crafted stream whose sequence count claims 2^32 - 1 entries: must be
  // rejected by the count-vs-remaining-payload bound, not by an OOM.
  {
    std::string bad("DCPB", 4);
    bad += std::string("\x01\x00\x00\x00", 4);  // Version 1.
    auto zig = [&bad](int64_t v) {
      uint64_t u = (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
      while (u >= 0x80) {
        bad.push_back(static_cast<char>(0x80 | (u & 0x7F)));
        u >>= 7;
      }
      bad.push_back(static_cast<char>(u));
    };
    zig(16);  // block_size
    zig(2);   // num_groups
    zig(2);   // heads_per_group
    zig(8);   // head_dim
    zig(2);   // bytes_per_element
    bad += std::string("\xFF\xFF\xFF\xFF\x0F", 5);  // Varint 0xFFFFFFFF sequence count.
    StatusOr<BatchPlan> parsed = DeserializePlanBinary(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  }
  // A varint whose 10th byte carries payload bits past bit 63 is an encoding error,
  // not a silent truncation: craft one as the first field (block_size).
  {
    std::string bad("DCPB", 4);
    bad += std::string("\x01\x00\x00\x00", 4);  // Version 1.
    bad += std::string(9, '\x80');
    bad += '\x7E';  // 10th byte with overflowing payload bits.
    StatusOr<BatchPlan> parsed = DeserializePlanBinary(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  }
}

TEST_F(PlanStoreTest, RecordSurvivesRoundTripAndRejectsEveryBitFlip) {
  Rng rng(11);
  const PlannedCase p = PlanRandomCase(rng);
  const PlanSignature sig =
      ComputePlanSignature(p.c.seqlens, p.spec, p.cluster, p.options);
  const std::string record = PlanStore::EncodeRecord(sig, p.plan);

  StatusOr<std::pair<PlanSignature, BatchPlan>> decoded = PlanStore::DecodeRecord(record);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().first, sig);
  EXPECT_EQ(SerializePlan(decoded.value().second), SerializePlan(p.plan));

  // Every single-bit flip anywhere in the record — header, sections, payload, or the
  // CRC trailer itself — must be caught (the checksum covers everything else, and the
  // trailer flip breaks the checksum comparison). One flip per byte covers the record;
  // all 8 bit positions are cycled through as the offset advances.
  for (size_t byte = 0; byte < record.size(); ++byte) {
    std::string corrupt = record;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << (byte % 8)));
    StatusOr<std::pair<PlanSignature, BatchPlan>> flipped =
        PlanStore::DecodeRecord(corrupt);
    ASSERT_FALSE(flipped.ok()) << "bit flip at byte " << byte << " was accepted";
    ASSERT_EQ(flipped.status().code(), StatusCode::kDataLoss);
  }

  // Truncation at every byte boundary fails cleanly.
  for (size_t len = 0; len < record.size(); len += 1) {
    ASSERT_FALSE(PlanStore::DecodeRecord(std::string_view(record).substr(0, len)).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST_F(PlanStoreTest, UnknownSectionsAreSkippedForForwardCompatibility) {
  Rng rng(12);
  const PlannedCase p = PlanRandomCase(rng);
  const PlanSignature sig =
      ComputePlanSignature(p.c.seqlens, p.spec, p.cluster, p.options);
  const std::string record = PlanStore::EncodeRecord(sig, p.plan);

  // Rebuild the record with an extra unknown section ahead of the plan section: header
  // (28 bytes) + unknown section + original sections (everything up to the CRC trailer)
  // + fresh CRC.
  std::string extended = record.substr(0, 28);
  const uint32_t unknown_tag = 0x7E57;
  const std::string unknown_payload = "future-section";
  for (int i = 0; i < 4; ++i) {
    extended.push_back(static_cast<char>((unknown_tag >> (8 * i)) & 0xFF));
  }
  const uint64_t unknown_len = unknown_payload.size();
  for (int i = 0; i < 8; ++i) {
    extended.push_back(static_cast<char>((unknown_len >> (8 * i)) & 0xFF));
  }
  extended += unknown_payload;
  extended += record.substr(28, record.size() - 28 - 4);
  const uint32_t crc = Crc32(extended);
  for (int i = 0; i < 4; ++i) {
    extended.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }

  StatusOr<std::pair<PlanSignature, BatchPlan>> decoded =
      PlanStore::DecodeRecord(extended);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(SerializePlan(decoded.value().second), SerializePlan(p.plan));
}

TEST_F(PlanStoreTest, PutLoadContainsAndReopen) {
  Rng rng(13);
  const PlannedCase p = PlanRandomCase(rng);
  const PlanSignature sig =
      ComputePlanSignature(p.c.seqlens, p.spec, p.cluster, p.options);

  {
    StatusOr<std::unique_ptr<PlanStore>> store = PlanStore::Open(StorePath());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE(store.value()->Contains(sig));
    StatusOr<BatchPlan> missing = store.value()->Load(sig);
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
    ASSERT_TRUE(store.value()->Put(sig, p.plan).ok());
    EXPECT_TRUE(store.value()->Contains(sig));
  }
  // A fresh store on the same directory (fresh process in miniature) indexes and serves
  // the record.
  StatusOr<std::unique_ptr<PlanStore>> reopened = PlanStore::Open(StorePath());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->Signatures().size(), 1u);
  ASSERT_TRUE(reopened.value()->Contains(sig));
  StatusOr<BatchPlan> loaded = reopened.value()->Load(sig);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializePlan(loaded.value()), SerializePlan(p.plan));
  EXPECT_EQ(reopened.value()->stats().hits, 1);

  // Storing under the zero signature is rejected (it is the "no signature" sentinel).
  EXPECT_FALSE(reopened.value()->Put(PlanSignature{}, p.plan).ok());
}

TEST_F(PlanStoreTest, CorruptRecordOnDiskIsCountedSkippedAndReplannedAround) {
  Rng rng(14);
  const PlannedCase p = PlanRandomCase(rng);
  const PlanSignature sig =
      ComputePlanSignature(p.c.seqlens, p.spec, p.cluster, p.options);
  {
    StatusOr<std::unique_ptr<PlanStore>> store = PlanStore::Open(StorePath());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put(sig, p.plan).ok());
  }
  // Flip one byte in the middle of the record file.
  const fs::path record_path =
      fs::path(StorePath()) / (sig.ToHex() + ".dcpplan");
  ASSERT_TRUE(fs::exists(record_path));
  {
    std::fstream f(record_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    f.seekp(size / 2);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }

  StatusOr<std::unique_ptr<PlanStore>> store = PlanStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Contains(sig));
  StatusOr<BatchPlan> loaded = store.value()->Load(sig);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.value()->stats().corrupt_skipped, 1);
  // The bad record is dropped from the index; a rewrite heals it.
  EXPECT_FALSE(store.value()->Contains(sig));
  ASSERT_TRUE(store.value()->Put(sig, p.plan).ok());
  EXPECT_TRUE(store.value()->Load(sig).ok());
}

TEST_F(PlanStoreTest, MismatchedSignatureFilenameIsRejected) {
  Rng rng(15);
  const PlannedCase p = PlanRandomCase(rng);
  const PlanSignature sig =
      ComputePlanSignature(p.c.seqlens, p.spec, p.cluster, p.options);
  PlanSignature other = sig;
  other.lo ^= 0xDEADBEEFULL;
  {
    StatusOr<std::unique_ptr<PlanStore>> store = PlanStore::Open(StorePath());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put(sig, p.plan).ok());
  }
  // Rename the record to another signature's filename: the embedded signature no longer
  // matches the key, so serving it would hand back the wrong plan.
  fs::rename(fs::path(StorePath()) / (sig.ToHex() + ".dcpplan"),
             fs::path(StorePath()) / (other.ToHex() + ".dcpplan"));
  StatusOr<std::unique_ptr<PlanStore>> store = PlanStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Contains(other));
  StatusOr<BatchPlan> loaded = store.value()->Load(other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.value()->stats().corrupt_skipped, 1);
}

TEST_F(PlanStoreTest, SecondEngineOnSamePathServesStoreHitsBitIdenticalToFreshPlans) {
  Rng rng(16);
  const GeneratedCase c = GenerateCase(rng);
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  const MaskSpec spec = SmallMaskSpec(c.mask_kind);

  EngineOptions engine_options;
  engine_options.planner = MakeOptions(c);
  engine_options.planner_threads = 1;
  engine_options.plan_store_path = StorePath();

  std::string first_canonical;
  {
    Engine writer(cluster, engine_options);
    ASSERT_TRUE(writer.store_status().ok()) << writer.store_status().ToString();
    StatusOr<PlanHandle> handle = writer.Plan(c.seqlens, spec);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    first_canonical = CanonicalSerialized(handle.value()->plan);
    const PlanCacheStats stats = writer.cache_stats();
    EXPECT_EQ(stats.store_writes, 1);
    EXPECT_EQ(stats.store_hits, 0);
  }

  // Fresh engine, fresh in-memory cache, same store path: the plan comes from disk
  // (counted as a store hit) and matches a freshly computed PlanBatch bit for bit.
  Engine reader(cluster, engine_options);
  StatusOr<PlanHandle> warm = reader.Plan(c.seqlens, spec);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  {
    const PlanCacheStats stats = reader.cache_stats();
    EXPECT_EQ(stats.store_hits, 1);
    EXPECT_EQ(stats.store_writes, 0);
    EXPECT_EQ(stats.misses, 1);
  }
  EXPECT_EQ(CanonicalSerialized(warm.value()->plan), first_canonical);

  std::vector<SequenceMask> masks = BuildBatchMasks(spec, c.seqlens);
  BatchPlan fresh = PlanBatch(c.seqlens, masks, cluster, engine_options.planner);
  EXPECT_EQ(CanonicalSerialized(warm.value()->plan), CanonicalSerialized(fresh));

  // The store-served handle carries usable masks (derived, not persisted).
  ASSERT_EQ(warm.value()->masks.size(), c.seqlens.size());
  for (size_t s = 0; s < c.seqlens.size(); ++s) {
    EXPECT_EQ(warm.value()->masks[s].length(), c.seqlens[s]);
  }

  // Replanning the same signature is now an in-memory hit, not another disk read.
  StatusOr<PlanHandle> again = reader.Plan(c.seqlens, spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), warm.value().get());
  EXPECT_EQ(reader.cache_stats().store_hits, 1);
  EXPECT_EQ(reader.cache_stats().hits, 1);
}

TEST_F(PlanStoreTest, EngineSkipsCorruptStoreRecordAndRecovers) {
  Rng rng(17);
  const GeneratedCase c = GenerateCase(rng);
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 2;
  const MaskSpec spec = SmallMaskSpec(c.mask_kind);

  EngineOptions engine_options;
  engine_options.planner = MakeOptions(c);
  engine_options.planner_threads = 1;
  engine_options.plan_store_path = StorePath();

  std::string canonical;
  {
    Engine writer(cluster, engine_options);
    StatusOr<PlanHandle> handle = writer.Plan(c.seqlens, spec);
    ASSERT_TRUE(handle.ok());
    canonical = CanonicalSerialized(handle.value()->plan);
  }
  // Truncate the record to simulate a torn write under an old (pre-atomic) writer.
  const PlanSignature sig = ComputePlanSignature(c.seqlens, spec, cluster,
                                                 engine_options.planner);
  const fs::path record_path = fs::path(StorePath()) / (sig.ToHex() + ".dcpplan");
  ASSERT_TRUE(fs::exists(record_path));
  fs::resize_file(record_path, fs::file_size(record_path) / 2);

  Engine reader(cluster, engine_options);
  StatusOr<PlanHandle> replanned = reader.Plan(c.seqlens, spec);
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
  const PlanCacheStats stats = reader.cache_stats();
  EXPECT_EQ(stats.store_corrupt_skipped, 1);
  EXPECT_EQ(stats.store_hits, 0);
  // The replanned result is correct and was written back, healing the store.
  EXPECT_EQ(CanonicalSerialized(replanned.value()->plan), canonical);
  EXPECT_EQ(stats.store_writes, 1);

  Engine healed(cluster, engine_options);
  StatusOr<PlanHandle> warm = healed.Plan(c.seqlens, spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(healed.cache_stats().store_hits, 1);
  EXPECT_EQ(CanonicalSerialized(warm.value()->plan), canonical);
}

TEST_F(PlanStoreTest, BundleExportImportMovesRecordsBetweenStores) {
  Rng rng(18);
  const PlannedCase a = PlanRandomCase(rng);
  const PlannedCase b = PlanRandomCase(rng);
  const PlanSignature sig_a =
      ComputePlanSignature(a.c.seqlens, a.spec, a.cluster, a.options);
  const PlanSignature sig_b =
      ComputePlanSignature(b.c.seqlens, b.spec, b.cluster, b.options);
  ASSERT_FALSE(sig_a == sig_b);

  const std::string bundle = (dir_ / "plans.bundle").string();
  {
    StatusOr<std::unique_ptr<PlanStore>> src = PlanStore::Open(StorePath("src"));
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(src.value()->Put(sig_a, a.plan).ok());
    ASSERT_TRUE(src.value()->Put(sig_b, b.plan).ok());
    StatusOr<int> exported = src.value()->ExportBundle(bundle);
    ASSERT_TRUE(exported.ok()) << exported.status().ToString();
    EXPECT_EQ(exported.value(), 2);
  }

  StatusOr<std::unique_ptr<PlanStore>> dst = PlanStore::Open(StorePath("dst"));
  ASSERT_TRUE(dst.ok());
  StatusOr<int> imported = dst.value()->ImportBundle(bundle);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported.value(), 2);
  StatusOr<BatchPlan> loaded_a = dst.value()->Load(sig_a);
  StatusOr<BatchPlan> loaded_b = dst.value()->Load(sig_b);
  ASSERT_TRUE(loaded_a.ok());
  ASSERT_TRUE(loaded_b.ok());
  EXPECT_EQ(SerializePlan(loaded_a.value()), SerializePlan(a.plan));
  EXPECT_EQ(SerializePlan(loaded_b.value()), SerializePlan(b.plan));

  // A truncated bundle is a clean DATA_LOSS error.
  fs::resize_file(bundle, fs::file_size(bundle) - 5);
  StatusOr<std::unique_ptr<PlanStore>> dst2 = PlanStore::Open(StorePath("dst2"));
  ASSERT_TRUE(dst2.ok());
  StatusOr<int> truncated = dst2.value()->ImportBundle(bundle);
  EXPECT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace dcp
