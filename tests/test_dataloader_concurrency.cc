// DcpDataLoader concurrency invariants (paper §6.1): look-ahead planning on a thread
// pool must be invisible in the results. For any planner_threads setting the loader
// must deliver the identical sequence of PlannedIterations (same batches, same plans,
// byte-for-byte), and the look-ahead window must never be exceeded — planning overlaps
// execution, it does not run ahead of the configured kappa.
#include "core/dataloader.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dcp {
namespace {

DatasetConfig SmallDataset() {
  DatasetConfig config;
  config.kind = DatasetKind::kLongDataCollections;
  config.max_seq_len = 1024;
  config.min_seq_len = 64;
  config.seed = 91;
  return config;
}

PlannerOptions SmallPlanner() {
  PlannerOptions options;
  options.block_size = 128;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 16;
  return options;
}

// One loader's first `iterations` results, as (seqlens, serialized plan) pairs.
struct IterationRecord {
  std::vector<int64_t> seqlens;
  std::string plan;

  bool operator==(const IterationRecord&) const = default;
};

std::vector<IterationRecord> Drain(int planner_threads, int lookahead, int iterations) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 2048;
  DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                       MaskSpec::Causal(), cluster, SmallPlanner(), lookahead,
                       planner_threads);
  std::vector<IterationRecord> records;
  for (int i = 0; i < iterations; ++i) {
    // The window is full after construction and refilled after every Next(): pending
    // plans never exceed lookahead + 1 (the +1 being the iteration about to be consumed).
    EXPECT_LE(loader.PendingPlans(), lookahead + 1)
        << "lookahead window exceeded at iteration " << i;
    PlannedIteration it = loader.Next();
    BatchPlan plan = it.plan();            // Copy: handles are immutable.
    plan.stats.planning_seconds = 0.0;     // Wall clock is the one legitimately
                                           // thread-dependent field.
    records.push_back({it.batch.seqlens, SerializePlan(plan)});
    EXPECT_LE(loader.PendingPlans(), lookahead + 1);
  }
  return records;
}

TEST(DcpDataLoaderConcurrency, IdenticalIterationsForAnyPlannerThreads) {
  const int kIterations = 5;
  const std::vector<IterationRecord> one = Drain(/*planner_threads=*/1, /*lookahead=*/2,
                                                 kIterations);
  ASSERT_EQ(static_cast<int>(one.size()), kIterations);
  for (int threads : {2, 4}) {
    const std::vector<IterationRecord> many = Drain(threads, /*lookahead=*/2, kIterations);
    ASSERT_EQ(one.size(), many.size());
    for (size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(one[i].seqlens, many[i].seqlens)
          << "batch diverged at iteration " << i << " with " << threads << " threads";
      EXPECT_EQ(one[i].plan, many[i].plan)
          << "plan diverged at iteration " << i << " with " << threads << " threads";
    }
  }
}

TEST(DcpDataLoaderConcurrency, LookaheadWindowIsExactAndBounded) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 1024;
  for (int lookahead : {0, 1, 3}) {
    DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                         MaskSpec::Causal(), cluster, SmallPlanner(), lookahead,
                         /*planner_threads=*/2);
    EXPECT_EQ(loader.PendingPlans(), lookahead + 1);
    for (int i = 0; i < 3; ++i) {
      (void)loader.Next();
      EXPECT_EQ(loader.PendingPlans(), lookahead + 1) << "after Next() " << i;
    }
  }
}

}  // namespace
}  // namespace dcp
