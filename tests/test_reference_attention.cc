#include "runtime/reference_attention.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcp {
namespace {

TEST(ReferenceAttention, RowsAreConvexCombinationsOfValues) {
  Rng rng(7);
  SeqTensors inputs = SeqTensors::Random(2, 1, 16, 8, rng);
  // Make V constant per position so the output of a softmax-weighted average of a constant
  // vector equals that vector.
  inputs.v.Fill(0.5f);
  SequenceMask mask = SequenceMask::Build(MaskSpec::Causal(), MakeSequenceInfo(MaskSpec::Causal(), 16));
  Tensor out = ReferenceAttentionForward(inputs, mask);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.data()[i], 0.5f, 1e-5f);
  }
}

TEST(ReferenceAttention, FirstTokenCopiesFirstValueUnderCausalMask) {
  Rng rng(11);
  SeqTensors inputs = SeqTensors::Random(4, 2, 12, 16, rng);
  SequenceMask mask = SequenceMask::Build(MaskSpec::Causal(), MakeSequenceInfo(MaskSpec::Causal(), 12));
  Tensor out = ReferenceAttentionForward(inputs, mask);
  // Token 0 attends only to kv position 0: output == V[g, 0, :].
  for (int64_t h = 0; h < 4; ++h) {
    const int64_t g = h / 2;
    for (int64_t c = 0; c < 16; ++c) {
      EXPECT_FLOAT_EQ(out.at({h, 0, c}), inputs.v.at({g, 0, c}));
    }
  }
}

TEST(ReferenceAttention, BackwardMatchesFiniteDifferences) {
  Rng rng(23);
  const int64_t len = 6;
  const int head_dim = 4;
  SeqTensors inputs = SeqTensors::Random(2, 1, len, head_dim, rng);
  MaskSpec spec = MaskSpec::Lambda(/*sink=*/2, /*window=*/3);
  SequenceMask mask = SequenceMask::Build(spec, MakeSequenceInfo(spec, len));

  Tensor out = ReferenceAttentionForward(inputs, mask);
  Tensor dout = Tensor::Random({2, len, head_dim}, rng);
  SeqGrads grads = ReferenceAttentionBackward(inputs, mask, out, dout);

  // Scalar loss L = sum(O * dout); check dL/dq against central differences.
  auto loss = [&](const SeqTensors& in) {
    Tensor o = ReferenceAttentionForward(in, mask);
    double total = 0.0;
    for (int64_t i = 0; i < o.numel(); ++i) {
      total += static_cast<double>(o.data()[i]) * static_cast<double>(dout.data()[i]);
    }
    return total;
  };

  const float eps = 1e-3f;
  for (int64_t idx : {int64_t{0}, int64_t{5}, int64_t{17}, int64_t{2 * len * head_dim - 1}}) {
    SeqTensors probe = inputs;
    probe.q.data()[idx] += eps;
    const double up = loss(probe);
    probe.q.data()[idx] -= 2 * eps;
    const double down = loss(probe);
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grads.dq.data()[idx], numeric, 5e-3)
        << "dq mismatch at flat index " << idx;
  }
  for (int64_t idx : {int64_t{0}, int64_t{7}, int64_t{len * head_dim - 1}}) {
    SeqTensors probe = inputs;
    probe.k.data()[idx] += eps;
    const double up = loss(probe);
    probe.k.data()[idx] -= 2 * eps;
    const double down = loss(probe);
    EXPECT_NEAR(grads.dk.data()[idx], (up - down) / (2 * eps), 5e-3)
        << "dk mismatch at flat index " << idx;
    probe = inputs;
    probe.v.data()[idx] += eps;
    const double vup = loss(probe);
    probe.v.data()[idx] -= 2 * eps;
    const double vdown = loss(probe);
    EXPECT_NEAR(grads.dv.data()[idx], (vup - vdown) / (2 * eps), 5e-3)
        << "dv mismatch at flat index " << idx;
  }
}

}  // namespace
}  // namespace dcp
