#include "runtime/sim_engine.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "masks/mask.h"

namespace dcp {
namespace {

BatchPlan PlanFor(const ClusterSpec& cluster, const std::vector<int64_t>& seqlens,
                  MaskKind kind, int64_t block_size) {
  MaskSpec spec = MaskSpec::ForKind(kind);
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
  PlannerOptions options;
  options.block_size = block_size;
  return PlanBatch(seqlens, masks, cluster, options);
}

TEST(SimEngine, MakespanCoversComputeLowerBound) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  BatchPlan plan = PlanFor(cluster, {65536, 32768, 16384, 17408}, MaskKind::kCausal, 2048);
  CostModel cost(cluster);
  SimEngine sim(cost);
  SimResult result = sim.Simulate(plan, /*backward=*/false);

  // Makespan is at least the pure compute time of the most loaded device.
  const double compute_lower_bound = cost.AttentionSeconds(plan.stats.max_device_flops);
  EXPECT_GE(result.makespan, compute_lower_bound);
  EXPECT_GT(result.makespan, 0.0);
  // And not absurdly larger than compute + full serialized comm.
  const double comm_upper =
      static_cast<double>(plan.stats.total_comm_bytes) / (cluster.node_nic_gbps * 1e9);
  EXPECT_LT(result.makespan, compute_lower_bound + comm_upper + 1.0);
}

TEST(SimEngine, BackwardIsSlowerThanForward) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  BatchPlan plan = PlanFor(cluster, {65536, 65536}, MaskKind::kCausal, 2048);
  SimEngine sim{CostModel(cluster)};
  const double fw = sim.Simulate(plan, false).makespan;
  const double bw = sim.Simulate(plan, true).makespan;
  EXPECT_GT(bw, fw);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  BatchPlan plan = PlanFor(cluster, {32768, 8192, 24576}, MaskKind::kLambda, 2048);
  SimEngine sim{CostModel(cluster)};
  EXPECT_DOUBLE_EQ(sim.Simulate(plan, false).makespan, sim.Simulate(plan, false).makespan);
}

TEST(SimEngine, SparseMaskReducesSimulatedTime) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  BatchPlan causal = PlanFor(cluster, {65536, 65536}, MaskKind::kCausal, 2048);
  BatchPlan lambda = PlanFor(cluster, {65536, 65536}, MaskKind::kLambda, 2048);
  SimEngine sim{CostModel(cluster)};
  EXPECT_LT(sim.Simulate(lambda, false).makespan, sim.Simulate(causal, false).makespan);
}

TEST(SimEngine, FwBwCombinesBreakdowns) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  BatchPlan plan = PlanFor(cluster, {16384, 16384}, MaskKind::kCausal, 2048);
  SimEngine sim{CostModel(cluster)};
  SimResult fw = sim.Simulate(plan, false);
  SimResult bw = sim.Simulate(plan, true);
  SimResult both = sim.SimulateFwBw(plan);
  EXPECT_DOUBLE_EQ(both.makespan, fw.makespan + bw.makespan);
  EXPECT_NEAR(both.MeanAttentionCompute(),
              fw.MeanAttentionCompute() + bw.MeanAttentionCompute(), 1e-12);
}

TEST(CostModel, TransferTimesScaleWithDistanceAndSize) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  CostModel cost(cluster);
  // Intra-node is faster than inter-node for the same payload.
  EXPECT_LT(cost.TransferSeconds(1 << 20, 0, 1), cost.TransferSeconds(1 << 20, 0, 8));
  // Twice the bytes, more time.
  EXPECT_LT(cost.TransferSeconds(1 << 20, 0, 8), cost.TransferSeconds(2 << 20, 0, 8));
  // Zero bytes or self-transfer is free.
  EXPECT_EQ(cost.TransferSeconds(0, 0, 1), 0.0);
  EXPECT_EQ(cost.TransferSeconds(1 << 20, 3, 3), 0.0);
}

}  // namespace
}  // namespace dcp
