#include "data/batching.h"
#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dcp {
namespace {

TEST(LengthSampler, DeterministicForSameConfig) {
  DatasetConfig config;
  config.seed = 99;
  LengthSampler a(config);
  LengthSampler b(config);
  EXPECT_EQ(a.Sample(100), b.Sample(100));
}

TEST(LengthSampler, RespectsBoundsAndScale) {
  DatasetConfig config;
  config.max_seq_len = 4096;
  config.min_seq_len = 128;
  LengthSampler sampler(config);
  for (int64_t len : sampler.Sample(500)) {
    EXPECT_GE(len, 128);
    EXPECT_LE(len, 4096);
  }
}

TEST(LengthSampler, ScaleShiftsTheDistribution) {
  DatasetConfig small;
  small.length_scale = 0.5;
  DatasetConfig large = small;
  large.length_scale = 4.0;
  RunningStats s_small;
  RunningStats s_large;
  LengthSampler a(small);
  LengthSampler b(large);
  for (int i = 0; i < 2000; ++i) {
    s_small.Add(static_cast<double>(a.Next()));
    s_large.Add(static_cast<double>(b.Next()));
  }
  EXPECT_GT(s_large.mean(), 2.0 * s_small.mean());
}

TEST(LengthSampler, LongAlignHasLongerMeanThanLongDataCollections) {
  DatasetConfig la;
  la.kind = DatasetKind::kLongAlign;
  DatasetConfig ldc;
  ldc.kind = DatasetKind::kLongDataCollections;
  RunningStats s_la;
  RunningStats s_ldc;
  LengthSampler a(la);
  LengthSampler b(ldc);
  for (int i = 0; i < 5000; ++i) {
    s_la.Add(static_cast<double>(a.Next()));
    s_ldc.Add(static_cast<double>(b.Next()));
  }
  EXPECT_GT(s_la.mean(), 1.5 * s_ldc.mean());
  // Both are skewed: mean well above median territory; check long tails exist.
  EXPECT_GT(s_la.max(), 60000);
  EXPECT_GT(s_ldc.max(), 60000);
}

TEST(BatchStream, BatchesRespectTokenBudget) {
  DatasetConfig config;
  config.max_seq_len = 8192;
  BatchingConfig batching;
  batching.token_budget = 16384;
  BatchStream stream{LengthSampler(config), batching};
  for (const Batch& batch : stream.NextBatches(50)) {
    EXPECT_LE(batch.TotalTokens(), batching.token_budget);
    EXPECT_GE(batch.NumSequences(), 1);
    EXPECT_LE(batch.MaxSeqLen(), batching.token_budget);
  }
}

TEST(BatchStream, NoSequenceIsLostAcrossBatchBoundaries) {
  // The carried-over sequence must appear in the following batch: compare the batched
  // stream against a raw sample of the same sampler.
  DatasetConfig config;
  config.seed = 7;
  config.max_seq_len = 4096;
  BatchingConfig batching;
  batching.token_budget = 8192;
  BatchStream stream{LengthSampler(config), batching};
  std::vector<int64_t> from_batches;
  for (const Batch& batch : stream.NextBatches(20)) {
    from_batches.insert(from_batches.end(), batch.seqlens.begin(), batch.seqlens.end());
  }
  LengthSampler raw(config);
  std::vector<int64_t> direct = raw.Sample(static_cast<int>(from_batches.size()));
  EXPECT_EQ(from_batches, direct);
}

TEST(Batch, Aggregates) {
  Batch batch;
  batch.seqlens = {100, 300, 50};
  EXPECT_EQ(batch.TotalTokens(), 450);
  EXPECT_EQ(batch.MaxSeqLen(), 300);
  EXPECT_EQ(batch.NumSequences(), 3);
}

}  // namespace
}  // namespace dcp
