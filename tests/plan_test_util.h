// Shared randomized-plan generators for the property-based test suites: seeded random
// (seqlens, mask, cluster shape, block size) cases whose plans exercise every mask kind,
// multi-node clusters, and ragged chunk boundaries. Used by test_property_plans.cc (plan
// validity + numeric equivalence) and test_plan_store.cc (serialization round-trips and
// corruption injection).
#ifndef DCP_TESTS_PLAN_TEST_UTIL_H_
#define DCP_TESTS_PLAN_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "core/planner.h"
#include "masks/mask.h"

namespace dcp {
namespace plan_test {

struct GeneratedCase {
  std::vector<int64_t> seqlens;
  MaskKind mask_kind = MaskKind::kCausal;
  int64_t block_size = 16;
  int num_nodes = 1;
  int devices_per_node = 1;
  int divisions = 3;
  uint64_t planner_seed = 1;
};

inline GeneratedCase GenerateCase(Rng& rng) {
  GeneratedCase c;
  const int num_seqs = 1 + static_cast<int>(rng.NextBounded(4));
  for (int s = 0; s < num_seqs; ++s) {
    c.seqlens.push_back(8 + static_cast<int64_t>(rng.NextBounded(73)));  // 8..80.
  }
  const auto& kinds = AllMaskKinds();
  c.mask_kind = kinds[static_cast<size_t>(rng.NextBounded(kinds.size()))];
  const int64_t block_sizes[] = {8, 16, 24};
  c.block_size = block_sizes[rng.NextBounded(3)];
  c.num_nodes = 1 + static_cast<int>(rng.NextBounded(2));
  c.devices_per_node = 1 + static_cast<int>(rng.NextBounded(3));
  c.divisions = 2 + static_cast<int>(rng.NextBounded(3));
  c.planner_seed = 1 + rng.NextU64() % 1000;
  return c;
}

inline PlannerOptions MakeOptions(const GeneratedCase& c) {
  PlannerOptions options;
  options.block_size = c.block_size;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  options.divisions = c.divisions;
  options.seed = c.planner_seed;
  return options;
}

inline MaskSpec SmallMaskSpec(MaskKind kind) {
  MaskSpec spec = MaskSpec::ForKind(kind);
  // Shrink mask parameters so short test sequences still exercise sparsity.
  spec.sink_tokens = 4;
  spec.window_tokens = 13;
  spec.icl_block_tokens = 8;
  return spec;
}

}  // namespace plan_test
}  // namespace dcp

#endif  // DCP_TESTS_PLAN_TEST_UTIL_H_
