// Refinement invariants: the incrementally-maintained FM gain cache must agree with a
// brute-force recomputation after every move, and the parallel partitioner portfolio must
// stay bit-deterministic for a fixed seed regardless of thread scheduling.
#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hypergraph/gain_state.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"

namespace dcp {
namespace {

Hypergraph MakeRandom(int n, int edges, int max_pins, Rng& rng) {
  Hypergraph hg;
  for (int v = 0; v < n; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int e = 0; e < edges; ++e) {
    const int size = 2 + static_cast<int>(rng.NextBounded(
                             static_cast<uint64_t>(max_pins - 1)));
    std::vector<VertexId> pins;
    for (int p = 0; p < size; ++p) {
      pins.push_back(static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(n))));
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) {
      hg.AddEdge(0.5 + rng.NextDouble() * 4.0, pins);
    }
  }
  hg.Finalize();
  return hg;
}

// Reference pin counts recomputed from scratch.
std::vector<int32_t> BruteForcePhi(const Hypergraph& hg, const Partition& part, int k) {
  std::vector<int32_t> phi(static_cast<size_t>(hg.num_edges()) * static_cast<size_t>(k),
                           0);
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    auto [pb, pe] = hg.EdgePins(e);
    for (const VertexId* p = pb; p != pe; ++p) {
      ++phi[static_cast<size_t>(e) * static_cast<size_t>(k) +
            static_cast<size_t>(part[static_cast<size_t>(*p)])];
    }
  }
  return phi;
}

// Reference connectivity gain of moving v to b, recomputed from scratch (the formula the
// pre-incremental refinement evaluated per candidate move).
double BruteForceGain(const Hypergraph& hg, const Partition& part,
                      const std::vector<int32_t>& phi, int k, VertexId v, PartId b) {
  const PartId a = part[static_cast<size_t>(v)];
  double gain = 0.0;
  auto [eb, ee] = hg.VertexEdges(v);
  for (const EdgeId* ep = eb; ep != ee; ++ep) {
    const double w = hg.edge_weight(*ep);
    const int32_t pa = phi[static_cast<size_t>(*ep) * static_cast<size_t>(k) +
                           static_cast<size_t>(a)];
    const int32_t pb = phi[static_cast<size_t>(*ep) * static_cast<size_t>(k) +
                           static_cast<size_t>(b)];
    if (pa == 1 && pb > 0) {
      gain += w;
    } else if (pa > 1 && pb == 0) {
      gain -= w;
    }
  }
  return gain;
}

bool BruteForceBoundary(const Hypergraph& hg, const Partition& part, VertexId v) {
  auto [eb, ee] = hg.VertexEdges(v);
  for (const EdgeId* ep = eb; ep != ee; ++ep) {
    auto [pb, pe] = hg.EdgePins(*ep);
    for (const VertexId* p = pb; p != pe; ++p) {
      if (part[static_cast<size_t>(*p)] != part[static_cast<size_t>(v)]) {
        return true;
      }
    }
  }
  return false;
}

TEST(GainState, MatchesBruteForceAfterEveryApply) {
  for (uint64_t instance = 0; instance < 4; ++instance) {
    Rng rng(100 + instance);
    const int n = 40 + static_cast<int>(rng.NextBounded(40));
    const int k = 2 + static_cast<int>(rng.NextBounded(5));
    Hypergraph hg = MakeRandom(n, n * 3, 6, rng);
    Partition part(static_cast<size_t>(hg.num_vertices()));
    for (PartId& p : part) {
      p = static_cast<PartId>(rng.NextBounded(static_cast<uint64_t>(k)));
    }
    KWayGainState state(hg, k, part);

    for (int move = 0; move < 120; ++move) {
      // Random legal move, applied through the incremental state.
      const VertexId v =
          static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(n)));
      PartId b = static_cast<PartId>(rng.NextBounded(static_cast<uint64_t>(k)));
      if (b == part[static_cast<size_t>(v)]) {
        b = (b + 1) % k;
      }
      state.Apply(v, b);
      ASSERT_EQ(part[static_cast<size_t>(v)], b);

      // Cross-check phi, lambda, boundary flags, and every (vertex, part) gain against a
      // from-scratch recomputation.
      const std::vector<int32_t> phi = BruteForcePhi(hg, part, k);
      for (EdgeId e = 0; e < hg.num_edges(); ++e) {
        int32_t lambda = 0;
        for (PartId p = 0; p < k; ++p) {
          const int32_t expected =
              phi[static_cast<size_t>(e) * static_cast<size_t>(k) +
                  static_cast<size_t>(p)];
          ASSERT_EQ(state.Phi(e, p), expected)
              << "phi mismatch at edge " << e << " part " << p << " move " << move;
          lambda += expected > 0 ? 1 : 0;
        }
        ASSERT_EQ(state.Lambda(e), lambda) << "lambda mismatch at edge " << e;
      }
      for (VertexId u = 0; u < hg.num_vertices(); ++u) {
        ASSERT_EQ(state.IsBoundary(u), BruteForceBoundary(hg, part, u))
            << "boundary mismatch at vertex " << u << " move " << move;
        for (PartId p = 0; p < k; ++p) {
          if (p == part[static_cast<size_t>(u)]) {
            continue;
          }
          const double expected = BruteForceGain(hg, part, phi, k, u, p);
          ASSERT_NEAR(state.Gain(u, p), expected, 1e-6)
              << "gain mismatch at vertex " << u << " -> part " << p << " move " << move;
        }
      }
    }
  }
}

TEST(GainState, FreshStateAgreesWithMutatedState) {
  // After a long random move sequence, a state rebuilt from the final partition must
  // agree exactly with the mutated state (no drift in the integer structures).
  Rng rng(7);
  const int k = 4;
  Hypergraph hg = MakeRandom(60, 200, 5, rng);
  Partition part(static_cast<size_t>(hg.num_vertices()), 0);
  KWayGainState state(hg, k, part);
  for (int move = 0; move < 500; ++move) {
    const VertexId v = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(hg.num_vertices())));
    PartId b = static_cast<PartId>(rng.NextBounded(k));
    if (b == part[static_cast<size_t>(v)]) {
      b = (b + 1) % k;
    }
    state.Apply(v, b);
  }
  Partition copy = part;
  KWayGainState fresh(hg, k, copy);
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    for (PartId p = 0; p < k; ++p) {
      ASSERT_EQ(state.Phi(e, p), fresh.Phi(e, p));
    }
    ASSERT_EQ(state.Lambda(e), fresh.Lambda(e));
  }
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    ASSERT_EQ(state.IsBoundary(v), fresh.IsBoundary(v));
    for (PartId p = 0; p < k; ++p) {
      if (p != part[static_cast<size_t>(v)]) {
        ASSERT_NEAR(state.Gain(v, p), fresh.Gain(v, p), 1e-6);
      }
    }
  }
}

// Clustered instance shared by the determinism tests (same generator family as
// test_partitioner.cc).
Hypergraph MakeClustered(int k, int per_group, uint64_t seed) {
  Rng rng(seed);
  Hypergraph hg;
  for (int v = 0; v < k * per_group; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int g = 0; g < k; ++g) {
    for (int e = 0; e < per_group * 2; ++e) {
      std::vector<VertexId> pins;
      const int size = 2 + static_cast<int>(rng.NextBounded(4));
      const bool cross = rng.NextDouble() < 0.15;
      for (int p = 0; p < size; ++p) {
        const int group = cross && p == 0 ? (g + 1) % k : g;
        pins.push_back(group * per_group + static_cast<int>(rng.NextBounded(
                                               static_cast<uint64_t>(per_group))));
      }
      std::sort(pins.begin(), pins.end());
      pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
      if (pins.size() >= 2) {
        hg.AddEdge(1.0 + rng.NextDouble() * 3.0, pins);
      }
    }
  }
  hg.Finalize();
  return hg;
}

TEST(ParallelPortfolio, DeterministicAcrossRunsAndSchedules) {
  // The portfolio fans out on the global thread pool; the result must be bit-identical
  // for a fixed seed no matter how the tasks interleave. Repeated runs — including runs
  // racing each other from several threads to perturb pool scheduling — must agree.
  Hypergraph hg = MakeClustered(8, 48, 13);
  PartitionConfig config;
  config.k = 8;
  config.eps = {0.25, 0.25};
  config.seed = 99;
  auto partitioner = MakeMultilevelPartitioner();
  const PartitionResult reference = partitioner->Run(hg, config);
  ASSERT_EQ(static_cast<int>(reference.part.size()), hg.num_vertices());

  for (int repeat = 0; repeat < 3; ++repeat) {
    PartitionResult again = partitioner->Run(hg, config);
    ASSERT_EQ(reference.part, again.part) << "sequential repeat " << repeat;
    ASSERT_DOUBLE_EQ(reference.connectivity_cost, again.connectivity_cost);
  }

  std::vector<PartitionResult> results(4);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i]() { results[i] = partitioner->Run(hg, config); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(reference.part, results[i].part) << "racing run " << i;
    ASSERT_DOUBLE_EQ(reference.connectivity_cost, results[i].connectivity_cost);
  }
}

TEST(ParallelPortfolio, HandlesUncoarsenableGraphs) {
  // A graph with no usable clustering signal (here: no edges at all) makes CoarsenOnce
  // bail with zero merges. The V-cycles and the iterated polish must detect the empty
  // mapping and fall through to flat partitioning instead of touching an empty,
  // never-finalized coarse graph. Regression test for the no-contraction sentinel.
  Hypergraph hg;
  for (int v = 0; v < 200; ++v) {
    hg.AddVertex(1.0, 1.0);
  }
  hg.Finalize();
  PartitionConfig config;
  config.k = 2;
  config.eps = {0.1, 0.1};
  PartitionResult result = MakeMultilevelPartitioner()->Run(hg, config);
  ASSERT_EQ(static_cast<int>(result.part.size()), 200);
  EXPECT_TRUE(result.balanced);
  EXPECT_DOUBLE_EQ(result.connectivity_cost, 0.0);

  // Same shape with only oversized edges (> 512 pins), which coarsening skips as noise.
  Hypergraph wide;
  std::vector<VertexId> all;
  for (int v = 0; v < 600; ++v) {
    wide.AddVertex(1.0, 1.0);
    all.push_back(v);
  }
  wide.AddEdge(1.0, all);
  wide.Finalize();
  PartitionResult wide_result = MakeMultilevelPartitioner()->Run(wide, config);
  ASSERT_EQ(static_cast<int>(wide_result.part.size()), 600);
  EXPECT_TRUE(wide_result.balanced);
}

TEST(ParallelPortfolio, SeedsProduceIndependentStreams) {
  // Different seeds should (generically) explore different solutions — a smoke check
  // that the pre-forked candidate streams actually depend on the seed.
  Hypergraph hg = MakeClustered(4, 32, 17);
  PartitionConfig config;
  config.k = 4;
  config.eps = {0.25, 0.25};
  auto partitioner = MakeMultilevelPartitioner();
  config.seed = 1;
  const PartitionResult a = partitioner->Run(hg, config);
  bool any_different = false;
  for (uint64_t seed = 2; seed <= 6 && !any_different; ++seed) {
    config.seed = seed;
    any_different = partitioner->Run(hg, config).part != a.part;
  }
  EXPECT_TRUE(any_different) << "all seeds produced identical partitions";
}

}  // namespace
}  // namespace dcp
