// Refinement invariants: the incrementally-maintained FM gain cache must agree with a
// brute-force recomputation after every move, the bucketed gain queue must pop the exact
// argmax and never surface lazily-invalidated (stale) keys, and the parallel partitioner
// portfolio must stay bit-deterministic for a fixed seed regardless of thread scheduling
// AND thread count.
#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "hypergraph/gain_bucket_queue.h"
#include "hypergraph/gain_state.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"

namespace dcp {
namespace {

Hypergraph MakeRandom(int n, int edges, int max_pins, Rng& rng) {
  Hypergraph hg;
  for (int v = 0; v < n; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int e = 0; e < edges; ++e) {
    const int size = 2 + static_cast<int>(rng.NextBounded(
                             static_cast<uint64_t>(max_pins - 1)));
    std::vector<VertexId> pins;
    for (int p = 0; p < size; ++p) {
      pins.push_back(static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(n))));
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) {
      hg.AddEdge(0.5 + rng.NextDouble() * 4.0, pins);
    }
  }
  hg.Finalize();
  return hg;
}

// Reference pin counts recomputed from scratch.
std::vector<int32_t> BruteForcePhi(const Hypergraph& hg, const Partition& part, int k) {
  std::vector<int32_t> phi(static_cast<size_t>(hg.num_edges()) * static_cast<size_t>(k),
                           0);
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    auto [pb, pe] = hg.EdgePins(e);
    for (const VertexId* p = pb; p != pe; ++p) {
      ++phi[static_cast<size_t>(e) * static_cast<size_t>(k) +
            static_cast<size_t>(part[static_cast<size_t>(*p)])];
    }
  }
  return phi;
}

// Reference connectivity gain of moving v to b, recomputed from scratch (the formula the
// pre-incremental refinement evaluated per candidate move).
double BruteForceGain(const Hypergraph& hg, const Partition& part,
                      const std::vector<int32_t>& phi, int k, VertexId v, PartId b) {
  const PartId a = part[static_cast<size_t>(v)];
  double gain = 0.0;
  auto [eb, ee] = hg.VertexEdges(v);
  for (const EdgeId* ep = eb; ep != ee; ++ep) {
    const double w = hg.edge_weight(*ep);
    const int32_t pa = phi[static_cast<size_t>(*ep) * static_cast<size_t>(k) +
                           static_cast<size_t>(a)];
    const int32_t pb = phi[static_cast<size_t>(*ep) * static_cast<size_t>(k) +
                           static_cast<size_t>(b)];
    if (pa == 1 && pb > 0) {
      gain += w;
    } else if (pa > 1 && pb == 0) {
      gain -= w;
    }
  }
  return gain;
}

bool BruteForceBoundary(const Hypergraph& hg, const Partition& part, VertexId v) {
  auto [eb, ee] = hg.VertexEdges(v);
  for (const EdgeId* ep = eb; ep != ee; ++ep) {
    auto [pb, pe] = hg.EdgePins(*ep);
    for (const VertexId* p = pb; p != pe; ++p) {
      if (part[static_cast<size_t>(*p)] != part[static_cast<size_t>(v)]) {
        return true;
      }
    }
  }
  return false;
}

TEST(GainState, MatchesBruteForceAfterEveryApply) {
  for (uint64_t instance = 0; instance < 4; ++instance) {
    Rng rng(100 + instance);
    const int n = 40 + static_cast<int>(rng.NextBounded(40));
    const int k = 2 + static_cast<int>(rng.NextBounded(5));
    Hypergraph hg = MakeRandom(n, n * 3, 6, rng);
    Partition part(static_cast<size_t>(hg.num_vertices()));
    for (PartId& p : part) {
      p = static_cast<PartId>(rng.NextBounded(static_cast<uint64_t>(k)));
    }
    KWayGainState state(hg, k, part);

    for (int move = 0; move < 120; ++move) {
      // Random legal move, applied through the incremental state.
      const VertexId v =
          static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(n)));
      PartId b = static_cast<PartId>(rng.NextBounded(static_cast<uint64_t>(k)));
      if (b == part[static_cast<size_t>(v)]) {
        b = (b + 1) % k;
      }
      state.Apply(v, b);
      ASSERT_EQ(part[static_cast<size_t>(v)], b);

      // Cross-check phi, lambda, boundary flags, and every (vertex, part) gain against a
      // from-scratch recomputation.
      const std::vector<int32_t> phi = BruteForcePhi(hg, part, k);
      for (EdgeId e = 0; e < hg.num_edges(); ++e) {
        int32_t lambda = 0;
        for (PartId p = 0; p < k; ++p) {
          const int32_t expected =
              phi[static_cast<size_t>(e) * static_cast<size_t>(k) +
                  static_cast<size_t>(p)];
          ASSERT_EQ(state.Phi(e, p), expected)
              << "phi mismatch at edge " << e << " part " << p << " move " << move;
          lambda += expected > 0 ? 1 : 0;
        }
        ASSERT_EQ(state.Lambda(e), lambda) << "lambda mismatch at edge " << e;
      }
      for (VertexId u = 0; u < hg.num_vertices(); ++u) {
        ASSERT_EQ(state.IsBoundary(u), BruteForceBoundary(hg, part, u))
            << "boundary mismatch at vertex " << u << " move " << move;
        for (PartId p = 0; p < k; ++p) {
          if (p == part[static_cast<size_t>(u)]) {
            continue;
          }
          const double expected = BruteForceGain(hg, part, phi, k, u, p);
          ASSERT_NEAR(state.Gain(u, p), expected, 1e-6)
              << "gain mismatch at vertex " << u << " -> part " << p << " move " << move;
        }
      }
    }
  }
}

TEST(GainState, FreshStateAgreesWithMutatedState) {
  // After a long random move sequence, a state rebuilt from the final partition must
  // agree exactly with the mutated state (no drift in the integer structures).
  Rng rng(7);
  const int k = 4;
  Hypergraph hg = MakeRandom(60, 200, 5, rng);
  Partition part(static_cast<size_t>(hg.num_vertices()), 0);
  KWayGainState state(hg, k, part);
  for (int move = 0; move < 500; ++move) {
    const VertexId v = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(hg.num_vertices())));
    PartId b = static_cast<PartId>(rng.NextBounded(k));
    if (b == part[static_cast<size_t>(v)]) {
      b = (b + 1) % k;
    }
    state.Apply(v, b);
  }
  Partition copy = part;
  KWayGainState fresh(hg, k, copy);
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    for (PartId p = 0; p < k; ++p) {
      ASSERT_EQ(state.Phi(e, p), fresh.Phi(e, p));
    }
    ASSERT_EQ(state.Lambda(e), fresh.Lambda(e));
  }
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    ASSERT_EQ(state.IsBoundary(v), fresh.IsBoundary(v));
    for (PartId p = 0; p < k; ++p) {
      if (p != part[static_cast<size_t>(v)]) {
        ASSERT_NEAR(state.Gain(v, p), fresh.Gain(v, p), 1e-6);
      }
    }
  }
}

// Mirror of the queue's contract, maintained with plain data structures: the live key
// per vertex and its push order.
struct QueueMirror {
  std::vector<char> live;
  std::vector<double> gain;
  std::vector<uint64_t> pushed_at;
  uint64_t next_seq = 0;

  explicit QueueMirror(int n) : live(n, 0), gain(n, 0.0), pushed_at(n, 0) {}

  void Push(VertexId v, double g) {
    live[static_cast<size_t>(v)] = 1;
    gain[static_cast<size_t>(v)] = g;
    pushed_at[static_cast<size_t>(v)] = next_seq++;
  }
  void Invalidate(VertexId v) { live[static_cast<size_t>(v)] = 0; }

  // Brute-force argmax over live keys: maximum gain, ties to the earliest push.
  VertexId Argmax() const {
    VertexId best = -1;
    for (VertexId v = 0; v < static_cast<VertexId>(live.size()); ++v) {
      if (!live[static_cast<size_t>(v)]) {
        continue;
      }
      if (best < 0 || gain[static_cast<size_t>(v)] > gain[static_cast<size_t>(best)] ||
          (gain[static_cast<size_t>(v)] == gain[static_cast<size_t>(best)] &&
           pushed_at[static_cast<size_t>(v)] < pushed_at[static_cast<size_t>(best)])) {
        best = v;
      }
    }
    return best;
  }
};

TEST(GainBucketQueue, ExactArgmaxPopsAndNoStaleGainsUnderChurn) {
  // Random pushes (including re-keys of queued vertices), invalidations, and pops.
  // Every pop must return the brute-force argmax of the CURRENT live keys, with the
  // current gain — a lazily-invalidated (stale) entry must never surface, even though
  // stale entries physically stay in the buckets until compaction touches them. Gains
  // deliberately overflow the configured [-10, 10] range to exercise the clamped
  // boundary buckets, where exactness must come from the in-bucket scan.
  Rng rng(42);
  const int n = 160;
  GainBucketQueue queue;
  queue.Reset(n, 10.0);
  QueueMirror mirror(n);
  int pops = 0;
  for (int op = 0; op < 20000; ++op) {
    const uint64_t what = rng.NextBounded(10);
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (what < 6) {
      const double gain = rng.NextUniform(-14.0, 14.0);
      const PartId to = static_cast<PartId>(rng.NextBounded(8));
      queue.Push(v, to, gain);
      mirror.Push(v, gain);
      ASSERT_TRUE(queue.HasLive(v));
      ASSERT_EQ(queue.KeyOf(v), gain);
      ASSERT_EQ(queue.TargetOf(v), to);
    } else if (what < 8) {
      queue.Invalidate(v);
      mirror.Invalidate(v);
      ASSERT_FALSE(queue.HasLive(v));
    } else {
      GainBucketQueue::Entry entry;
      const VertexId expected = mirror.Argmax();
      const bool popped = queue.Pop(&entry);
      ASSERT_EQ(popped, expected >= 0);
      if (popped) {
        ++pops;
        ASSERT_EQ(entry.v, expected) << "pop is not the brute-force argmax at op " << op;
        ASSERT_EQ(entry.gain, mirror.gain[static_cast<size_t>(expected)])
            << "stale gain surfaced at op " << op;
        mirror.Invalidate(entry.v);
        ASSERT_FALSE(queue.HasLive(entry.v));
      }
    }
  }
  ASSERT_GT(pops, 1000) << "churn test degenerated; invariants barely exercised";
}

TEST(GainBucketQueue, PoppedMoveMatchesBruteForceArgmaxAfterEveryApply) {
  // Integration with the gain state, mimicking the refinement loop: keys are each
  // boundary vertex's best adjacent-part gain. After every applied move the test
  // recomputes ALL keys from scratch (the brute force), re-keys the queue accordingly,
  // and the next pop must hand back exactly the brute-force argmax.
  Rng rng(9);
  Hypergraph hg = MakeRandom(80, 240, 5, rng);
  const int k = 8;
  Partition part(static_cast<size_t>(hg.num_vertices()));
  for (PartId& p : part) {
    p = static_cast<PartId>(rng.NextBounded(k));
  }
  KWayGainState state(hg, k, part);

  auto best_adjacent_gain = [&](VertexId v, PartId* to) {
    double best = -1.0;
    PartId best_part = -1;
    for (PartId b = 0; b < k; ++b) {  // Brute force over ALL parts, not adjacency lists.
      if (b == part[static_cast<size_t>(v)]) {
        continue;
      }
      const double gain = state.Gain(v, b);
      if (gain > best || (gain == best && best_part >= 0 && b < best_part)) {
        best = gain;
        best_part = b;
      }
    }
    *to = best_part;
    return best;
  };

  GainBucketQueue queue;
  QueueMirror mirror(hg.num_vertices());
  auto rekey_all = [&]() {
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      PartId to = -1;
      const double gain = best_adjacent_gain(v, &to);
      if (state.IsBoundary(v) && to >= 0) {
        queue.Push(v, to, gain);
        mirror.Push(v, gain);
      } else {
        queue.Invalidate(v);
        mirror.Invalidate(v);
      }
    }
  };

  queue.Reset(hg.num_vertices(), state.MaxAbsGain());
  rekey_all();
  for (int move = 0; move < 60; ++move) {
    GainBucketQueue::Entry entry;
    const VertexId expected = mirror.Argmax();
    ASSERT_TRUE(queue.Pop(&entry));
    ASSERT_EQ(entry.v, expected) << "move " << move;
    PartId to = -1;
    ASSERT_EQ(entry.gain, best_adjacent_gain(entry.v, &to)) << "move " << move;
    state.Apply(entry.v, entry.to);
    state.ClearEvents();
    state.activated().clear();
    rekey_all();
  }
}

// Clustered instance shared by the determinism tests (same generator family as
// test_partitioner.cc).
Hypergraph MakeClustered(int k, int per_group, uint64_t seed) {
  Rng rng(seed);
  Hypergraph hg;
  for (int v = 0; v < k * per_group; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int g = 0; g < k; ++g) {
    for (int e = 0; e < per_group * 2; ++e) {
      std::vector<VertexId> pins;
      const int size = 2 + static_cast<int>(rng.NextBounded(4));
      const bool cross = rng.NextDouble() < 0.15;
      for (int p = 0; p < size; ++p) {
        const int group = cross && p == 0 ? (g + 1) % k : g;
        pins.push_back(group * per_group + static_cast<int>(rng.NextBounded(
                                               static_cast<uint64_t>(per_group))));
      }
      std::sort(pins.begin(), pins.end());
      pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
      if (pins.size() >= 2) {
        hg.AddEdge(1.0 + rng.NextDouble() * 3.0, pins);
      }
    }
  }
  hg.Finalize();
  return hg;
}

TEST(ParallelPortfolio, BitIdenticalAcrossThreadCounts) {
  // The acceptance bar for the parallel coarsening + portfolio work: for a fixed seed,
  // the partition must be BIT-identical no matter how many threads the global pool has.
  // Chunked work splits by fixed grain, never by pool size, so 1, 2, and 5 threads must
  // agree exactly — at small k and in the large-k regime (k >= 32), with a grain small
  // enough that the instance spans several coarsening chunks.
  for (int k : {8, 64}) {
    Hypergraph hg = MakeClustered(k, k == 8 ? 48 : 8, 21);
    PartitionConfig config;
    config.k = k;
    config.eps = {0.25, 0.25};
    config.seed = 5;
    config.coarsening_grain = 64;  // Force multiple chunks even on these small graphs.
    auto partitioner = MakeMultilevelPartitioner();

    ThreadPool single(1);
    Partition reference;
    double reference_cost = 0.0;
    {
      ScopedThreadPoolOverride override_pool(&single);
      PartitionResult result = partitioner->Run(hg, config);
      reference = result.part;
      reference_cost = result.connectivity_cost;
    }
    for (int threads : {2, 5}) {
      ThreadPool pool(threads);
      ScopedThreadPoolOverride override_pool(&pool);
      PartitionResult result = partitioner->Run(hg, config);
      ASSERT_EQ(reference, result.part)
          << "partition diverged at k=" << k << " with " << threads << " threads";
      ASSERT_DOUBLE_EQ(reference_cost, result.connectivity_cost);
    }
  }
}

TEST(ParallelPortfolio, DeterministicAcrossRunsAndSchedules) {
  // The portfolio fans out on the global thread pool; the result must be bit-identical
  // for a fixed seed no matter how the tasks interleave. Repeated runs — including runs
  // racing each other from several threads to perturb pool scheduling — must agree.
  Hypergraph hg = MakeClustered(8, 48, 13);
  PartitionConfig config;
  config.k = 8;
  config.eps = {0.25, 0.25};
  config.seed = 99;
  auto partitioner = MakeMultilevelPartitioner();
  const PartitionResult reference = partitioner->Run(hg, config);
  ASSERT_EQ(static_cast<int>(reference.part.size()), hg.num_vertices());

  for (int repeat = 0; repeat < 3; ++repeat) {
    PartitionResult again = partitioner->Run(hg, config);
    ASSERT_EQ(reference.part, again.part) << "sequential repeat " << repeat;
    ASSERT_DOUBLE_EQ(reference.connectivity_cost, again.connectivity_cost);
  }

  std::vector<PartitionResult> results(4);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i]() { results[i] = partitioner->Run(hg, config); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(reference.part, results[i].part) << "racing run " << i;
    ASSERT_DOUBLE_EQ(reference.connectivity_cost, results[i].connectivity_cost);
  }
}

TEST(ParallelPortfolio, HandlesUncoarsenableGraphs) {
  // A graph with no usable clustering signal (here: no edges at all) makes CoarsenOnce
  // bail with zero merges. The V-cycles and the iterated polish must detect the empty
  // mapping and fall through to flat partitioning instead of touching an empty,
  // never-finalized coarse graph. Regression test for the no-contraction sentinel.
  Hypergraph hg;
  for (int v = 0; v < 200; ++v) {
    hg.AddVertex(1.0, 1.0);
  }
  hg.Finalize();
  PartitionConfig config;
  config.k = 2;
  config.eps = {0.1, 0.1};
  PartitionResult result = MakeMultilevelPartitioner()->Run(hg, config);
  ASSERT_EQ(static_cast<int>(result.part.size()), 200);
  EXPECT_TRUE(result.balanced);
  EXPECT_DOUBLE_EQ(result.connectivity_cost, 0.0);

  // Same shape with only oversized edges (> 512 pins), which coarsening skips as noise.
  Hypergraph wide;
  std::vector<VertexId> all;
  for (int v = 0; v < 600; ++v) {
    wide.AddVertex(1.0, 1.0);
    all.push_back(v);
  }
  wide.AddEdge(1.0, all);
  wide.Finalize();
  PartitionResult wide_result = MakeMultilevelPartitioner()->Run(wide, config);
  ASSERT_EQ(static_cast<int>(wide_result.part.size()), 600);
  EXPECT_TRUE(wide_result.balanced);
}

TEST(ParallelPortfolio, SeedsProduceIndependentStreams) {
  // Different seeds should (generically) explore different solutions — a smoke check
  // that the pre-forked candidate streams actually depend on the seed. Uses a random
  // (unclustered) instance: planted-cluster instances are easy enough that exact-argmax
  // refinement recovers the same solution for every seed, which is convergence, not a
  // stream-independence failure.
  Rng gen_rng(17);
  Hypergraph hg = MakeRandom(160, 480, 6, gen_rng);
  PartitionConfig config;
  config.k = 4;
  config.eps = {0.25, 0.25};
  auto partitioner = MakeMultilevelPartitioner();
  config.seed = 1;
  const PartitionResult a = partitioner->Run(hg, config);
  bool any_different = false;
  for (uint64_t seed = 2; seed <= 6 && !any_different; ++seed) {
    config.seed = seed;
    any_different = partitioner->Run(hg, config).part != a.part;
  }
  EXPECT_TRUE(any_different) << "all seeds produced identical partitions";
}

TEST(ParallelCoarsening, DedupSortBitIdenticalAcrossThreadCounts) {
  // Heavy duplicate-edge instance: merge-magnet pairs plus thousands of parallel cross
  // edges whose fine pin pairs all collapse onto identical coarse pin sets. This drives
  // the parallel chunk-sort + merge-tree dedup in CoarsenOnce across many chunks; the
  // coarse graph (mapping, pins, AND summed duplicate weights — floating point, so
  // summation order matters) must be bit-identical for any thread count.
  Rng build_rng(99);
  Hypergraph hg;
  constexpr int kPairs = 600;
  for (int v = 0; v < 2 * kPairs; ++v) {
    hg.AddVertex(1.0, 1.0);
  }
  for (VertexId p = 0; p < kPairs; ++p) {
    hg.AddEdge(8.0, {2 * p, 2 * p + 1});
  }
  for (int e = 0; e < 4000; ++e) {
    const auto a = static_cast<VertexId>(build_rng.NextBounded(kPairs));
    const auto b = static_cast<VertexId>(build_rng.NextBounded(kPairs));
    if (a == b) {
      continue;
    }
    // Random parity endpoints: all four fine pin combinations dedupe to coarse {a, b}.
    hg.AddEdge(0.25 + 0.5 * build_rng.NextDouble(),
               {2 * a + static_cast<VertexId>(build_rng.NextBounded(2)),
                2 * b + static_cast<VertexId>(build_rng.NextBounded(2))});
  }
  hg.Finalize();

  PartitionConfig config;
  config.k = 4;
  config.eps = {0.25, 0.25};
  config.coarsening_grain = 64;  // Many chunks in both scoring and the dedup sort.

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    ScopedThreadPoolOverride override_pool(&pool);
    Rng rng(7);
    CoarseningScratch scratch;
    return CoarsenOnce(hg, config, rng, scratch);
  };

  CoarseLevel reference = run(1);
  ASSERT_GT(reference.coarse.num_vertices(), 0);
  ASSERT_LT(reference.coarse.num_edges(), hg.num_edges()) << "no dedup happened";
  for (int threads : {2, 5}) {
    CoarseLevel level = run(threads);
    ASSERT_EQ(reference.fine_to_coarse, level.fine_to_coarse)
        << "clustering diverged with " << threads << " threads";
    ASSERT_EQ(reference.coarse.num_edges(), level.coarse.num_edges());
    for (EdgeId e = 0; e < reference.coarse.num_edges(); ++e) {
      auto [rb, re] = reference.coarse.EdgePins(e);
      auto [lb, le] = level.coarse.EdgePins(e);
      ASSERT_EQ(re - rb, le - lb) << "edge " << e;
      ASSERT_TRUE(std::equal(rb, re, lb)) << "edge " << e;
      // Exact double equality: duplicate weights must sum in the same order.
      ASSERT_EQ(reference.coarse.edge_weight(e), level.coarse.edge_weight(e))
          << "edge " << e;
    }
  }
}

}  // namespace
}  // namespace dcp
