#include "runtime/plan_validate.h"

#include <gtest/gtest.h>

#include "baselines/static_planner.h"
#include "core/planner.h"

namespace dcp {
namespace {

BatchPlan MakeValidPlan() {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  const std::vector<int64_t> seqlens = {60, 35, 48};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Lambda(4, 12), seqlens);
  return PlanBatch(seqlens, masks, cluster, options);
}

TEST(ValidatePlan, AcceptsPlannerOutput) {
  BatchPlan plan = MakeValidPlan();
  const PlanValidation validation = ValidatePlan(plan);
  EXPECT_TRUE(validation.ok) << validation.Summary();
  EXPECT_EQ(validation.Summary(), "plan valid");
}

TEST(ValidatePlan, AcceptsBaselinePlans) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  for (BaselineKind kind : AllBaselineKinds()) {
    BaselineResult baseline =
        PlanBaseline(kind, {64, 32}, MaskSpec::Causal(), cluster, options);
    const PlanValidation validation = ValidatePlan(baseline.plan);
    EXPECT_TRUE(validation.ok) << BaselineKindName(kind) << ": " << validation.Summary();
  }
}

TEST(ValidatePlan, DetectsOutOfRangeSlot) {
  BatchPlan plan = MakeValidPlan();
  for (DevicePlan& dev : plan.devices) {
    for (Instruction& instr : dev.instructions) {
      if (instr.kind == InstrKind::kBlockwiseAttention && !instr.attn_items.empty()) {
        instr.attn_items[0].q.slot = 10000;
        const PlanValidation validation = ValidatePlan(plan);
        EXPECT_FALSE(validation.ok);
        EXPECT_NE(validation.Summary().find("out of"), std::string::npos);
        return;
      }
    }
  }
  FAIL() << "no attention instruction found";
}

TEST(ValidatePlan, DetectsDroppedSend) {
  BatchPlan plan = MakeValidPlan();
  bool dropped = false;
  for (DevicePlan& dev : plan.devices) {
    auto& instrs = dev.instructions;
    for (auto it = instrs.begin(); it != instrs.end(); ++it) {
      if (it->kind == InstrKind::kCommLaunch && it->is_send) {
        instrs.erase(it);
        dropped = true;
        break;
      }
    }
    if (dropped) {
      break;
    }
  }
  ASSERT_TRUE(dropped);
  const PlanValidation validation = ValidatePlan(plan);
  EXPECT_FALSE(validation.ok);
  EXPECT_NE(validation.Summary().find("sends"), std::string::npos);
}

TEST(ValidatePlan, DetectsDuplicatedTile) {
  BatchPlan plan = MakeValidPlan();
  for (DevicePlan& dev : plan.devices) {
    for (Instruction& instr : dev.instructions) {
      if (instr.kind == InstrKind::kBlockwiseAttention && !instr.attn_items.empty()) {
        instr.attn_items.push_back(instr.attn_items[0]);
        const PlanValidation validation = ValidatePlan(plan);
        EXPECT_FALSE(validation.ok);
        EXPECT_NE(validation.Summary().find("computed twice"), std::string::npos);
        return;
      }
    }
  }
  FAIL() << "no attention instruction found";
}

TEST(ValidatePlan, DetectsChunkOwnershipGaps) {
  BatchPlan plan = MakeValidPlan();
  bool removed = false;
  for (DevicePlan& dev : plan.devices) {
    if (!dev.local_chunks.empty()) {
      dev.local_chunks.pop_back();
      removed = true;
      break;
    }
  }
  ASSERT_TRUE(removed);
  const PlanValidation validation = ValidatePlan(plan);
  EXPECT_FALSE(validation.ok);
}

TEST(SearchBlockSize, PicksTheFastestCandidateAndReturnsItsPlan) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  PlannerOptions options;
  options.num_groups = 2;
  options.heads_per_group = 4;
  options.head_dim = 128;
  const std::vector<int64_t> seqlens = {32768, 16384, 8192, 8192};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  const BlockSizeSearchResult result =
      SearchBlockSize(seqlens, masks, cluster, options, {1024, 2048, 4096});
  ASSERT_EQ(result.candidates.size(), 3u);
  double best = result.candidates[0].second;
  for (const auto& [block, seconds] : result.candidates) {
    best = std::min(best, seconds);
    EXPECT_GT(seconds, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.best_fwbw_seconds, best);
  EXPECT_EQ(result.best_plan.layout.block_size, result.best_block_size);
}

}  // namespace
}  // namespace dcp
