#include "core/dataloader.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

DatasetConfig SmallDataset() {
  DatasetConfig config;
  config.kind = DatasetKind::kLongDataCollections;
  config.max_seq_len = 2048;
  config.min_seq_len = 64;
  config.seed = 42;
  return config;
}

PlannerOptions SmallPlanner() {
  PlannerOptions options;
  options.block_size = 256;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 16;
  return options;
}

TEST(DcpDataLoader, ProducesPlansMatchingDirectPlanning) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 4096;

  DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                       MaskSpec::Causal(), cluster, SmallPlanner(), /*lookahead=*/2,
                       /*planner_threads=*/3);
  // Reference stream with identical config.
  BatchStream reference{LengthSampler(SmallDataset()), batching};

  for (int iter = 0; iter < 6; ++iter) {
    PlannedIteration it = loader.Next();
    Batch expect = reference.NextBatch();
    EXPECT_EQ(it.batch.seqlens, expect.seqlens) << "iteration " << iter;
    EXPECT_EQ(static_cast<int>(it.masks().size()), expect.NumSequences());
    EXPECT_EQ(it.plan().layout.seqlens, expect.seqlens);
    EXPECT_EQ(it.plan().num_devices(), 4);
    // Deterministic planning: replanning the same batch gives the same configuration.
    BatchPlan replanned = PlanBatch(expect.seqlens, it.masks(), cluster, SmallPlanner());
    EXPECT_EQ(replanned.chunk_home, it.plan().chunk_home);
    EXPECT_EQ(replanned.stats.total_comm_bytes, it.plan().stats.total_comm_bytes);
  }
}

TEST(DcpDataLoader, AutoTunesBlockSizePerBatchSignature) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 2048;

  EngineOptions engine_options;
  engine_options.planner = SmallPlanner();
  engine_options.auto_tune_block_size = true;
  engine_options.tune_block_sizes = {128, 256};
  auto engine = std::make_shared<Engine>(cluster, engine_options);

  DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                       MaskSpec::Causal(), engine, /*lookahead=*/1);
  for (int iter = 0; iter < 4; ++iter) {
    PlannedIteration it = loader.Next();
    // The loader path went through the tuner: the plan's block size is one of the
    // candidates and matches what AutoTune (now a tune-cache hit) picks for this batch.
    const AutoTuneResult tuned =
        engine->AutoTune(it.batch.seqlens, MaskSpec::Causal()).value();
    EXPECT_TRUE(tuned.tuned_from_cache) << "iteration " << iter;
    EXPECT_EQ(it.plan().layout.block_size, tuned.best_block_size);
    EXPECT_TRUE(it.plan().layout.block_size == 128 || it.plan().layout.block_size == 256);
  }
  const PlanCacheStats stats = engine->cache_stats();
  EXPECT_GT(stats.tune_misses, 0);
  EXPECT_GT(stats.tune_hits, 0);  // The assertions above replay every batch through the tuner.
}

TEST(DcpDataLoader, MaintainsLookaheadWindow) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 2048;
  DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                       MaskSpec::Lambda(), cluster, SmallPlanner(), /*lookahead=*/3);
  EXPECT_EQ(loader.PendingPlans(), 4);  // lookahead + 1 in flight.
  (void)loader.Next();
  EXPECT_EQ(loader.PendingPlans(), 4);  // Refilled.
}

}  // namespace
}  // namespace dcp
