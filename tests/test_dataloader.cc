#include "core/dataloader.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

DatasetConfig SmallDataset() {
  DatasetConfig config;
  config.kind = DatasetKind::kLongDataCollections;
  config.max_seq_len = 2048;
  config.min_seq_len = 64;
  config.seed = 42;
  return config;
}

PlannerOptions SmallPlanner() {
  PlannerOptions options;
  options.block_size = 256;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 16;
  return options;
}

TEST(DcpDataLoader, ProducesPlansMatchingDirectPlanning) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 4096;

  DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                       MaskSpec::Causal(), cluster, SmallPlanner(), /*lookahead=*/2,
                       /*planner_threads=*/3);
  // Reference stream with identical config.
  BatchStream reference{LengthSampler(SmallDataset()), batching};

  for (int iter = 0; iter < 6; ++iter) {
    PlannedIteration it = loader.Next();
    Batch expect = reference.NextBatch();
    EXPECT_EQ(it.batch.seqlens, expect.seqlens) << "iteration " << iter;
    EXPECT_EQ(static_cast<int>(it.masks.size()), expect.NumSequences());
    EXPECT_EQ(it.plan.layout.seqlens, expect.seqlens);
    EXPECT_EQ(it.plan.num_devices(), 4);
    // Deterministic planning: replanning the same batch gives the same configuration.
    BatchPlan replanned = PlanBatch(expect.seqlens, it.masks, cluster, SmallPlanner());
    EXPECT_EQ(replanned.chunk_home, it.plan.chunk_home);
    EXPECT_EQ(replanned.stats.total_comm_bytes, it.plan.stats.total_comm_bytes);
  }
}

TEST(DcpDataLoader, MaintainsLookaheadWindow) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 2;
  BatchingConfig batching;
  batching.token_budget = 2048;
  DcpDataLoader loader(BatchStream{LengthSampler(SmallDataset()), batching},
                       MaskSpec::Lambda(), cluster, SmallPlanner(), /*lookahead=*/3);
  EXPECT_EQ(loader.PendingPlans(), 4);  // lookahead + 1 in flight.
  (void)loader.Next();
  EXPECT_EQ(loader.PendingPlans(), 4);  // Refilled.
}

}  // namespace
}  // namespace dcp
