// TSan-targeted stress tests for the races the ordinary suites never provoke under
// contention: concurrent Engine::Plan against cache_stats() snapshots and ClearCache()
// eviction churn, server stats polled across Start()/Stop(), and a ReplicaSet destroyed
// while hedge/failover attempt threads are still straggling. These tests assert only
// basic liveness/consistency — their real assertion is a clean ThreadSanitizer run
// (`cmake --preset tsan && ctest --preset tsan -R concurrency_stress`). Sizes are kept
// small so TSan's ~10x slowdown stays in budget on a 1-core CI box.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "masks/mask.h"
#include "service/plan_client.h"
#include "service/plan_server.h"
#include "service/replica_set.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

namespace dcp {
namespace {

ClusterSpec SmallCluster() {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  return cluster;
}

EngineOptions TinyEngineOptions(int cache_capacity) {
  EngineOptions options;
  options.planner.block_size = 16;
  options.planner.num_groups = 2;
  options.planner.heads_per_group = 2;
  options.planner.head_dim = 8;
  options.planner.divisions = 3;
  options.planner.seed = 7;
  options.planner_threads = 1;
  options.plan_cache_capacity = cache_capacity;
  options.plan_cache_shards = 2;
  return options;
}

// Distinct batch shapes so planners churn the cache instead of all hitting one entry.
std::vector<int64_t> ShapeFor(int i) {
  return {48 + (i % 7) * 8, 24 + (i % 5) * 8, 16 + (i % 3) * 8};
}

// Engine::Plan from several threads racing cache_stats() snapshots, CachedPlans()
// enumeration, and ClearCache() wipes, with a capacity small enough that insertions
// evict constantly. The coherent-snapshot contract must hold throughout: hits+misses
// can never exceed completed lookups, and entries never exceeds capacity.
TEST(ConcurrencyStress, EnginePlanVsStatsVsEvictionChurn) {
  constexpr int kPlanners = 3;
  constexpr int kPlansPerThread = 24;
  Engine engine(SmallCluster(), TinyEngineOptions(/*cache_capacity=*/4));

  std::atomic<bool> stop{false};
  std::atomic<int> plans_done{0};

  std::vector<std::thread> planners;
  planners.reserve(kPlanners);
  for (int t = 0; t < kPlanners; ++t) {
    planners.emplace_back([&engine, &plans_done, t] {
      for (int i = 0; i < kPlansPerThread; ++i) {
        StatusOr<PlanHandle> plan =
            engine.Plan(ShapeFor(t * kPlansPerThread + i), MaskSpec::Causal());
        ASSERT_TRUE(plan.ok()) << plan.status().ToString();
        plans_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread snapshotter([&engine, &stop, &plans_done] {
    while (!stop.load(std::memory_order_acquire)) {
      const PlanCacheStats stats = engine.cache_stats();
      // Coherent snapshot: totals may trail the done-counter read afterwards but can
      // never exceed it, and entries is bounded by the exact capacity.
      const int64_t lookups = stats.hits + stats.misses;
      EXPECT_LE(lookups, plans_done.load(std::memory_order_acquire) + kPlanners);
      EXPECT_LE(stats.entries, 4);
      (void)engine.CachedPlans();
      std::this_thread::yield();
    }
  });

  std::thread wiper([&engine, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      engine.ClearCache();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& t : planners) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  wiper.join();
  EXPECT_EQ(plans_done.load(), kPlanners * kPlansPerThread);
}

// Server stats/io_thread_count/poller_backend polled continuously across Stop():
// the poller thread must never touch freed loop state (this raced loops_.clear()
// before the counters were published atomically in Start/Stop).
TEST(ConcurrencyStress, ServerStatsVsShutdown) {
  auto registry = std::make_shared<TenantRegistry>();
  ASSERT_TRUE(
      registry->Register({"prod", SmallCluster(), TinyEngineOptions(8)}).ok());

  PlanServerOptions options;
  options.workers = 2;
  options.io_threads = 2;
  PlanServer server(registry, options);
  ASSERT_TRUE(server.Start(ServiceAddress::Tcp("127.0.0.1", 0)).ok());

  std::atomic<bool> stop{false};
  std::thread poller([&server, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)server.stats();
      (void)server.BuildStatsResponse("");
      const int io_threads = server.io_thread_count();
      EXPECT_GE(io_threads, 0);
      EXPECT_LE(io_threads, 2);
      (void)server.poller_backend();
      std::this_thread::yield();
    }
  });

  // Drive a little traffic so the stats are not all zeros, then stop the server while
  // the poller keeps hammering the accessors.
  {
    PlanClientOptions client_options;
    client_options.tenant = "prod";
    StatusOr<std::unique_ptr<PlanClient>> client =
        PlanClient::Connect(server.bound_address(), client_options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (int i = 0; i < 4; ++i) {
      StatusOr<PlanHandle> plan =
          client.value()->Plan(ShapeFor(i), MaskSpec::Causal());
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    }
  }
  server.Stop();
  EXPECT_EQ(server.io_thread_count(), 0);
  // Accessors must stay safe (and answer zeros) after shutdown.
  for (int i = 0; i < 100; ++i) {
    (void)server.stats();
    (void)server.poller_backend();
  }
  stop.store(true, std::memory_order_release);
  poller.join();
}

// ReplicaSet teardown vs straggling attempt threads: requests aimed at a dead address
// spawn attempt threads that lose the race with the set's destructor. The destructor's
// outstanding-count wait must fence every late counter/cooldown update.
TEST(ConcurrencyStress, ReplicaSetDestructionVsStragglingAttempts) {
  // A listener that never accepts: connects hang until the timeout, keeping attempt
  // threads alive while the set is destroyed.
  StatusOr<Listener> parked = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0), 1);
  ASSERT_TRUE(parked.ok());

  for (int round = 0; round < 4; ++round) {
    ReplicaSetOptions options;
    options.tenant = "prod";
    options.connect_timeout_ms = 50;
    options.request_timeout_ms = 50;
    options.hedging = true;
    options.hedge_min_delay_ms = 1;
    options.hedge_max_delay_ms = 2;
    StatusOr<std::unique_ptr<ReplicaSet>> set = ReplicaSet::Create(
        {parked.value().bound_address(), parked.value().bound_address()}, options);
    ASSERT_TRUE(set.ok());

    std::vector<std::thread> callers;
    for (int t = 0; t < 2; ++t) {
      callers.emplace_back([&set, t] {
        StatusOr<PlanHandle> plan =
            set.value()->Plan(ShapeFor(t), MaskSpec::Causal());
        EXPECT_FALSE(plan.ok());  // Nothing answers; must fail, not crash.
      });
    }
    for (std::thread& t : callers) {
      t.join();
    }
    set.value().reset();  // Destructor waits out any straggling attempt threads.
  }
}

}  // namespace
}  // namespace dcp
