#include "masks/mask.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

// Brute-force predicates restating each mask's definition independently of the RangePair
// lowering, used as oracles.
bool CausalAttends(int64_t q, int64_t k) { return k <= q; }

bool LambdaAttends(const MaskSpec& spec, int64_t q, int64_t k) {
  if (k > q) {
    return false;
  }
  return k < spec.sink_tokens || k > q - spec.window_tokens;
}

bool BlockwiseAttends(const MaskSpec& spec, int64_t len, int64_t q, int64_t k) {
  if (k > q) {
    return false;
  }
  const int64_t bt = spec.icl_block_tokens;
  const int64_t num_blocks = (len + bt - 1) / bt;
  const int64_t qb = q / bt;
  if (qb >= num_blocks - spec.test_blocks) {
    return true;
  }
  const int64_t kb = k / bt;
  return kb < spec.sink_blocks || kb > qb - spec.window_blocks;
}

bool SharedQuestionAttends(const SequenceInfo& info, int64_t q, int64_t k) {
  if (k > q) {
    return false;
  }
  const int64_t qlen = info.question_len;
  if (q < qlen) {
    return true;  // Question region: causal, k <= q < qlen.
  }
  if (k < qlen) {
    return true;  // Everyone attends the question.
  }
  // Same answer?
  int64_t pos = qlen;
  for (int64_t alen : info.answer_lens) {
    const int64_t end = pos + alen;
    if (q >= pos && q < end) {
      return k >= pos && k < end;
    }
    pos = end;
  }
  return false;
}

class MaskOracleTest : public ::testing::TestWithParam<std::tuple<MaskKind, int64_t>> {};

TEST_P(MaskOracleTest, PointQueriesMatchBruteForceDefinition) {
  const auto [kind, len] = GetParam();
  MaskSpec spec = MaskSpec::ForKind(kind);
  spec.sink_tokens = 3;
  spec.window_tokens = 7;
  spec.icl_block_tokens = 5;
  const SequenceInfo info = MakeSequenceInfo(spec, len);
  const SequenceMask mask = SequenceMask::Build(spec, info);
  ASSERT_EQ(mask.length(), len);
  for (int64_t q = 0; q < len; ++q) {
    for (int64_t k = 0; k < len; ++k) {
      bool expect = false;
      switch (kind) {
        case MaskKind::kCausal:
          expect = CausalAttends(q, k);
          break;
        case MaskKind::kLambda:
          expect = LambdaAttends(spec, q, k);
          break;
        case MaskKind::kCausalBlockwise:
          expect = BlockwiseAttends(spec, len, q, k);
          break;
        case MaskKind::kSharedQuestion:
          expect = info.answer_lens.empty() ? CausalAttends(q, k)
                                            : SharedQuestionAttends(info, q, k);
          break;
      }
      ASSERT_EQ(mask.Attends(q, k), expect) << MaskKindName(kind) << " q=" << q
                                            << " k=" << k << " len=" << len;
    }
  }
}

TEST_P(MaskOracleTest, CountPairsMatchesPointQueries) {
  const auto [kind, len] = GetParam();
  MaskSpec spec = MaskSpec::ForKind(kind);
  spec.sink_tokens = 3;
  spec.window_tokens = 7;
  spec.icl_block_tokens = 5;
  const SequenceMask mask = SequenceMask::Build(spec, MakeSequenceInfo(spec, len));
  // A few representative tiles, including ragged edges.
  const int64_t step = std::max<int64_t>(1, len / 3);
  for (int64_t qb = 0; qb < len; qb += step) {
    const int64_t qe = std::min(len, qb + step);
    for (int64_t kb = 0; kb < len; kb += step) {
      const int64_t ke = std::min(len, kb + step);
      int64_t expect = 0;
      for (int64_t q = qb; q < qe; ++q) {
        for (int64_t k = kb; k < ke; ++k) {
          expect += mask.Attends(q, k) ? 1 : 0;
        }
      }
      int64_t pairs = 0;
      const BlockCoverage coverage = mask.Classify(qb, qe, kb, ke, &pairs);
      EXPECT_EQ(pairs, expect);
      if (expect == 0) {
        EXPECT_EQ(coverage, BlockCoverage::kEmpty);
      } else if (expect == (qe - qb) * (ke - kb)) {
        EXPECT_EQ(coverage, BlockCoverage::kFull);
      } else {
        EXPECT_EQ(coverage, BlockCoverage::kPartial);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLengths, MaskOracleTest,
    ::testing::Combine(::testing::Values(MaskKind::kCausal, MaskKind::kLambda,
                                         MaskKind::kCausalBlockwise,
                                         MaskKind::kSharedQuestion),
                       ::testing::Values<int64_t>(1, 7, 20, 64)),
    [](const ::testing::TestParamInfo<std::tuple<MaskKind, int64_t>>& info) {
      return MaskKindName(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NormalizeRanges, MergesOverlappingAndSortsAndDropsEmpty) {
  RangePair r = NormalizeRanges(5, 9, 0, 3);
  EXPECT_EQ(r.begin0, 0);
  EXPECT_EQ(r.end0, 3);
  EXPECT_EQ(r.begin1, 5);
  EXPECT_EQ(r.end1, 9);

  r = NormalizeRanges(0, 5, 3, 9);  // Overlap: merge.
  EXPECT_EQ(r.begin0, 0);
  EXPECT_EQ(r.end0, 9);
  EXPECT_EQ(r.begin1, r.end1);

  r = NormalizeRanges(4, 4, 2, 6);  // First empty.
  EXPECT_EQ(r.begin0, 2);
  EXPECT_EQ(r.end0, 6);

  r = NormalizeRanges(0, 3, 3, 7);  // Adjacent: merge.
  EXPECT_EQ(r.begin0, 0);
  EXPECT_EQ(r.end0, 7);
}

TEST(MaskSparsity, CausalIsOneAndSparseMasksAreBelowOne) {
  const int64_t len = 512;
  const SequenceMask causal =
      SequenceMask::Build(MaskSpec::Causal(), MakeSequenceInfo(MaskSpec::Causal(), len));
  EXPECT_NEAR(causal.SparsityVsCausal(), 1.0, 1e-12);

  MaskSpec lambda = MaskSpec::Lambda(/*sink=*/8, /*window=*/32);
  const SequenceMask lambda_mask =
      SequenceMask::Build(lambda, MakeSequenceInfo(lambda, len));
  EXPECT_LT(lambda_mask.SparsityVsCausal(), 0.35);

  MaskSpec sq = MaskSpec::SharedQuestion();
  const SequenceMask sq_mask = SequenceMask::Build(sq, MakeSequenceInfo(sq, len));
  EXPECT_LT(sq_mask.SparsityVsCausal(), 1.0);
  EXPECT_GT(sq_mask.SparsityVsCausal(), 0.3);
}

TEST(SharedQuestionInfo, SplitsLengthIntoQuestionAndAnswers) {
  MaskSpec spec = MaskSpec::SharedQuestion(4, 0.2);
  SequenceInfo info = MakeSequenceInfo(spec, 1000);
  EXPECT_EQ(info.answer_lens.size(), 4u);
  EXPECT_EQ(info.answer_lens[0], 200);
  EXPECT_EQ(info.question_len, 200);
  // Degenerate tiny sequence still valid.
  info = MakeSequenceInfo(spec, 3);
  int64_t total = info.question_len;
  for (int64_t a : info.answer_lens) {
    total += a;
  }
  EXPECT_EQ(total, 3);
}

TEST(RangePairOverlap, CountsIntersection) {
  RangePair r = NormalizeRanges(2, 5, 8, 11);
  EXPECT_EQ(r.OverlapWith(0, 20), 6);
  EXPECT_EQ(r.OverlapWith(3, 9), 3);   // {3,4} + {8}
  EXPECT_EQ(r.OverlapWith(5, 8), 0);
  EXPECT_EQ(r.TotalLength(), 6);
}

}  // namespace
}  // namespace dcp
