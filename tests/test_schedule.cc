#include "core/schedule.h"

#include <set>

#include <gtest/gtest.h>

namespace dcp {
namespace {

struct Scheduled {
  BlockGraph graph;
  PlacementResult placement;
  ScheduleResult schedule;
  int num_devices = 0;
};

Scheduled MakeScheduled(std::vector<int64_t> seqlens, int64_t block_size, int num_devices,
                        int divisions, MaskKind kind = MaskKind::kCausal) {
  BatchLayout layout;
  layout.seqlens = std::move(seqlens);
  layout.block_size = block_size;
  layout.num_groups = 2;
  layout.heads_per_group = 2;
  layout.head_dim = 16;
  std::vector<SequenceMask> masks =
      BuildBatchMasks(MaskSpec::ForKind(kind), layout.seqlens);
  Scheduled s;
  s.graph = GenerateBlocks(layout, masks);
  BuiltHypergraph built = BuildPlacementHypergraph(s.graph);
  PlacementOptions options;
  options.num_nodes = 1;
  options.devices_per_node = num_devices;
  s.placement = PlaceBlocks(s.graph, built, options);
  ScheduleOptions sched;
  sched.divisions = divisions;
  s.schedule = ScheduleBlocks(s.graph, s.placement, num_devices, sched);
  s.num_devices = num_devices;
  return s;
}

TEST(Schedule, EveryBlockScheduledExactlyOnceOnItsDevice) {
  Scheduled s = MakeScheduled({3000, 1500, 800}, 256, 4, 4);
  std::set<int> seen;
  for (int d = 0; d < s.num_devices; ++d) {
    for (const auto& division : s.schedule.divisions[static_cast<size_t>(d)]) {
      for (int i : division) {
        EXPECT_TRUE(seen.insert(i).second) << "block " << i << " scheduled twice";
        EXPECT_EQ(s.placement.comp_device[static_cast<size_t>(i)], d)
            << "block scheduled on wrong device";
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), s.graph.num_comp_blocks());
}

TEST(Schedule, DivisionZeroIsCommunicationFree) {
  Scheduled s = MakeScheduled({4096, 2048}, 256, 4, 4);
  const BatchLayout& layout = s.graph.layout;
  for (int d = 0; d < s.num_devices; ++d) {
    for (int i : s.schedule.divisions[static_cast<size_t>(d)][0]) {
      const CompBlock& block = s.graph.comp_blocks[static_cast<size_t>(i)];
      const int q_gc = layout.GlobalChunkId(block.seq, block.q_chunk);
      const int kv_gc = layout.GlobalChunkId(block.seq, block.kv_chunk);
      EXPECT_EQ(s.placement.chunk_device[static_cast<size_t>(q_gc)], d);
      EXPECT_EQ(s.placement.chunk_device[static_cast<size_t>(kv_gc)], d);
    }
  }
}

TEST(Schedule, SingleDivisionTakesEverything) {
  Scheduled s = MakeScheduled({2048, 1024}, 256, 3, 1);
  int total = 0;
  for (int d = 0; d < s.num_devices; ++d) {
    ASSERT_EQ(s.schedule.divisions[static_cast<size_t>(d)].size(), 1u);
    total += static_cast<int>(s.schedule.divisions[static_cast<size_t>(d)][0].size());
  }
  EXPECT_EQ(total, s.graph.num_comp_blocks());
}

TEST(Schedule, MiddleDivisionsRespectPerSourceCommBudget) {
  Scheduled s = MakeScheduled({8192, 4096, 2048}, 512, 4, 4);
  const BatchLayout& layout = s.graph.layout;
  const int t_count = 4;
  for (int d = 0; d < s.num_devices; ++d) {
    // Replay the fetch-dedup in division order to compute per-division new bytes.
    std::set<int64_t> fetched;
    std::vector<std::vector<double>> div_bytes(
        static_cast<size_t>(t_count),
        std::vector<double>(static_cast<size_t>(s.num_devices), 0.0));
    std::vector<double> total_bytes(static_cast<size_t>(s.num_devices), 0.0);
    for (int t = 0; t < t_count; ++t) {
      for (int i : s.schedule.divisions[static_cast<size_t>(d)][static_cast<size_t>(t)]) {
        const CompBlock& block = s.graph.comp_blocks[static_cast<size_t>(i)];
        const int q_gc = layout.GlobalChunkId(block.seq, block.q_chunk);
        const int kv_gc = layout.GlobalChunkId(block.seq, block.kv_chunk);
        const DeviceId q_home = s.placement.chunk_device[static_cast<size_t>(q_gc)];
        const DeviceId kv_home = s.placement.chunk_device[static_cast<size_t>(kv_gc)];
        const int64_t q_key = (static_cast<int64_t>(q_gc) * 2 + block.group) * 2;
        const int64_t kv_key = (static_cast<int64_t>(kv_gc) * 2 + block.group) * 2 + 1;
        if (q_home != d && fetched.insert(q_key).second) {
          const double bytes = static_cast<double>(layout.QBlockBytes(
              s.graph.chunks[static_cast<size_t>(q_gc)].length()));
          div_bytes[static_cast<size_t>(t)][static_cast<size_t>(q_home)] += bytes;
          total_bytes[static_cast<size_t>(q_home)] += bytes;
        }
        if (kv_home != d && fetched.insert(kv_key).second) {
          const double bytes = static_cast<double>(layout.KvBlockBytes(
              s.graph.chunks[static_cast<size_t>(kv_gc)].length()));
          div_bytes[static_cast<size_t>(t)][static_cast<size_t>(kv_home)] += bytes;
          total_bytes[static_cast<size_t>(kv_home)] += bytes;
        }
      }
    }
    // Division 0 has no communication; middle divisions respect the per-source budget.
    for (int src = 0; src < s.num_devices; ++src) {
      EXPECT_EQ(div_bytes[0][static_cast<size_t>(src)], 0.0);
      for (int t = 1; t < t_count - 1; ++t) {
        EXPECT_LE(div_bytes[static_cast<size_t>(t)][static_cast<size_t>(src)],
                  total_bytes[static_cast<size_t>(src)] / t_count + 2.0)
            << "device " << d << " div " << t << " src " << src;
      }
    }
  }
}

TEST(Schedule, SparseMaskSchedulesConcentrateWork) {
  // Smoke check on a sparse mask: schedule remains a partition of all blocks.
  Scheduled s = MakeScheduled({4096}, 256, 4, 4, MaskKind::kLambda);
  int total = 0;
  for (int d = 0; d < s.num_devices; ++d) {
    for (const auto& division : s.schedule.divisions[static_cast<size_t>(d)]) {
      total += static_cast<int>(division.size());
    }
  }
  EXPECT_EQ(total, s.graph.num_comp_blocks());
}

}  // namespace
}  // namespace dcp
