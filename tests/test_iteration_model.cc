#include "e2e/iteration_model.h"

#include <gtest/gtest.h>

#include "baselines/static_planner.h"
#include "core/planner.h"

namespace dcp {
namespace {

PlannerOptions E2eOptions() {
  PlannerOptions options;
  options.block_size = 2048;
  options.num_groups = 8;   // Full model: 8 KV groups (TP=4 divides 32 heads -> 8 per rank,
  options.heads_per_group = 1;  // but CP sees hidden/TP; spec-level proportions suffice).
  options.head_dim = 128;
  return options;
}

TEST(ModelSpec, Gpt8BHasRoughly8BParams) {
  const ModelSpec model = ModelSpec::Gpt8B();
  EXPECT_GT(model.TotalParams(), 7'000'000'000);
  EXPECT_LT(model.TotalParams(), 9'000'000'000);
}

TEST(IterationModel, BreakdownComponentsArePositiveAndSumToTotal) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  PlannerOptions options = E2eOptions();
  std::vector<int64_t> seqlens = {65536, 32768, 16384, 16384};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);
  const IterationBreakdown breakdown = ModelIteration(ModelSpec::Gpt8B(), cluster, plan);
  EXPECT_GT(breakdown.attn_compute, 0.0);
  EXPECT_GT(breakdown.dense_compute, 0.0);
  EXPECT_GT(breakdown.grad_sync, 0.0);
  EXPECT_GT(breakdown.optimizer, 0.0);
  EXPECT_NEAR(breakdown.Total(), breakdown.AttentionTotal() + breakdown.Others(), 1e-12);
  // Iteration times land in the paper's ballpark (hundreds of ms to seconds).
  EXPECT_GT(breakdown.Total(), 0.05);
  EXPECT_LT(breakdown.Total(), 30.0);
}

TEST(IterationModel, MaxDeviceTokensMatchesPlacement) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  std::vector<int64_t> seqlens = {16384, 16384};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, E2eOptions());
  const int64_t max_tokens = MaxDeviceTokens(plan);
  EXPECT_GE(max_tokens, (16384 + 16384) / cluster.num_devices());
  EXPECT_LE(max_tokens, 32768);
}

TEST(IterationModel, SparseMasksShrinkAttentionNotOthers) {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  std::vector<int64_t> seqlens = {65536, 65536};
  PlannerOptions options = E2eOptions();
  std::vector<SequenceMask> causal = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  std::vector<SequenceMask> lambda = BuildBatchMasks(MaskSpec::Lambda(), seqlens);
  const IterationBreakdown dense_case = ModelIteration(
      ModelSpec::Gpt8B(), cluster, PlanBatch(seqlens, causal, cluster, options));
  const IterationBreakdown sparse_case = ModelIteration(
      ModelSpec::Gpt8B(), cluster, PlanBatch(seqlens, lambda, cluster, options));
  EXPECT_LT(sparse_case.AttentionTotal(), dense_case.AttentionTotal());
  EXPECT_NEAR(sparse_case.grad_sync, dense_case.grad_sync, 1e-9);
  EXPECT_NEAR(sparse_case.optimizer, dense_case.optimizer, 1e-9);
}

}  // namespace
}  // namespace dcp
