// Randomized stress sweep of the full pipeline, plus plan-portability checks: a plan can
// be serialized, deserialized, and executed with identical numerics (the paper ships
// serialized plans from planner machines to workers), and hand-broken plans are rejected.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/planner.h"
#include "runtime/executor.h"
#include "runtime/reference_attention.h"

namespace dcp {
namespace {

class ExecutorRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorRandomSweep, RandomBatchesMatchReference) {
  Rng rng(GetParam());
  // Random geometry.
  ClusterSpec cluster;
  cluster.num_nodes = 1 + static_cast<int>(rng.NextBounded(3));
  cluster.devices_per_node = 1 + static_cast<int>(rng.NextBounded(3));
  PlannerOptions options;
  options.block_size = static_cast<int64_t>(4 + rng.NextBounded(29));
  options.num_groups = 1 + static_cast<int>(rng.NextBounded(2));
  options.heads_per_group = 1 + static_cast<int>(rng.NextBounded(3));
  options.head_dim = 4 + static_cast<int>(rng.NextBounded(3)) * 4;
  options.divisions = 1 + static_cast<int>(rng.NextBounded(5));
  const int num_seqs = 1 + static_cast<int>(rng.NextBounded(5));
  std::vector<int64_t> seqlens;
  for (int s = 0; s < num_seqs; ++s) {
    seqlens.push_back(rng.NextInt(3, 90));
  }
  // Random mask with random parameters.
  MaskSpec spec = MaskSpec::ForKind(
      AllMaskKinds()[static_cast<size_t>(rng.NextBounded(AllMaskKinds().size()))]);
  spec.sink_tokens = rng.NextInt(1, 6);
  spec.window_tokens = rng.NextInt(2, 20);
  spec.icl_block_tokens = rng.NextInt(3, 12);
  spec.num_answers = static_cast<int>(rng.NextInt(1, 4));

  std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);

  std::vector<SeqTensors> inputs;
  std::vector<Tensor> douts;
  const int heads = options.num_groups * options.heads_per_group;
  for (int64_t len : seqlens) {
    inputs.push_back(
        SeqTensors::Random(heads, options.num_groups, len, options.head_dim, rng));
    douts.push_back(Tensor::Random({heads, len, options.head_dim}, rng));
  }
  NumericExecutor executor(&plan, &masks);
  executor.LoadInputs(inputs);
  executor.RunForward();
  std::vector<Tensor> outputs = executor.GatherOutputs();
  executor.LoadOutputGrads(douts);
  executor.RunBackward();
  std::vector<SeqGrads> grads = executor.GatherInputGrads();
  for (size_t s = 0; s < seqlens.size(); ++s) {
    Tensor ref_out = ReferenceAttentionForward(inputs[s], masks[s]);
    ASSERT_LT(Tensor::MaxAbsDiff(outputs[s], ref_out), 1e-4f)
        << "seed " << GetParam() << " seq " << s;
    SeqGrads ref_grads = ReferenceAttentionBackward(inputs[s], masks[s], ref_out, douts[s]);
    ASSERT_LT(Tensor::MaxAbsDiff(grads[s].dq, ref_grads.dq), 3e-4f);
    ASSERT_LT(Tensor::MaxAbsDiff(grads[s].dk, ref_grads.dk), 3e-4f);
    ASSERT_LT(Tensor::MaxAbsDiff(grads[s].dv, ref_grads.dv), 3e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorRandomSweep,
                         ::testing::Range<uint64_t>(1, 21),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(PlanPortability, DeserializedPlanExecutesIdentically) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  const std::vector<int64_t> seqlens = {55, 32, 20};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Lambda(4, 12), seqlens);
  BatchPlan original = PlanBatch(seqlens, masks, cluster, options);
  BatchPlan restored = DeserializePlanOrDie(SerializePlan(original));

  Rng rng(17);
  std::vector<SeqTensors> inputs;
  for (int64_t len : seqlens) {
    inputs.push_back(SeqTensors::Random(4, 2, len, options.head_dim, rng));
  }
  NumericExecutor a(&original, &masks);
  a.LoadInputs(inputs);
  a.RunForward();
  NumericExecutor b(&restored, &masks);
  b.LoadInputs(inputs);
  b.RunForward();
  std::vector<Tensor> out_a = a.GatherOutputs();
  std::vector<Tensor> out_b = b.GatherOutputs();
  for (size_t s = 0; s < seqlens.size(); ++s) {
    EXPECT_EQ(Tensor::MaxAbsDiff(out_a[s], out_b[s]), 0.0f);
  }
}

TEST(ExecutorFailureInjection, MissingSendIsDetectedAsDeadlock) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 1;
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 1;
  options.heads_per_group = 1;
  options.head_dim = 8;
  const std::vector<int64_t> seqlens = {64};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);
  // Break the plan: drop every send-side CommLaunch.
  bool dropped = false;
  for (DevicePlan& dev : plan.devices) {
    auto& instrs = dev.instructions;
    for (auto it = instrs.begin(); it != instrs.end();) {
      if (it->kind == InstrKind::kCommLaunch && it->is_send) {
        it = instrs.erase(it);
        dropped = true;
      } else {
        ++it;
      }
    }
  }
  ASSERT_TRUE(dropped) << "plan unexpectedly has no communication";
  NumericExecutor executor(&plan, &masks);
  Rng rng(5);
  std::vector<SeqTensors> inputs = {SeqTensors::Random(1, 1, 64, 8, rng)};
  executor.LoadInputs(inputs);
  EXPECT_DEATH(executor.RunForward(), "deadlock");
}

TEST(PlanStats, OwnedBytesBalanceIsReported) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  const std::vector<int64_t> seqlens = {64, 64, 64, 64};
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);
  EXPECT_GT(plan.stats.min_device_owned_bytes, 0);
  EXPECT_GE(plan.stats.max_device_owned_bytes, plan.stats.min_device_owned_bytes);
  // Four equal sequences over four devices: near-perfect memory balance.
  EXPECT_LE(static_cast<double>(plan.stats.max_device_owned_bytes),
            1.5 * static_cast<double>(plan.stats.min_device_owned_bytes));
}

}  // namespace
}  // namespace dcp
