#include "baselines/static_planner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/executor.h"
#include "runtime/reference_attention.h"
#include "runtime/sim_engine.h"

namespace dcp {
namespace {

PlannerOptions SmallOptions() {
  PlannerOptions options;
  options.block_size = 8;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  return options;
}

// Baselines are numerically exact too: they compile to the same ISA and run on the same
// executor, so their outputs must match the reference attention (on their padded lengths).
class BaselineCorrectness : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineCorrectness, ForwardMatchesReference) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  const std::vector<int64_t> seqlens = {64, 40, 25};
  const PlannerOptions options = SmallOptions();
  BaselineResult baseline = PlanBaseline(GetParam(), seqlens, MaskSpec::Causal(), cluster,
                                         options);

  Rng rng(99);
  std::vector<SeqTensors> inputs;
  for (int64_t len : baseline.planned_seqlens) {
    inputs.push_back(SeqTensors::Random(4, 2, len, options.head_dim, rng));
  }
  NumericExecutor executor(&baseline.plan, &baseline.masks);
  executor.LoadInputs(inputs);
  executor.RunForward();
  std::vector<Tensor> outputs = executor.GatherOutputs();
  for (size_t s = 0; s < inputs.size(); ++s) {
    Tensor reference = ReferenceAttentionForward(inputs[s], baseline.masks[s]);
    EXPECT_LT(Tensor::MaxAbsDiff(outputs[s], reference), 1e-4f)
        << BaselineKindName(GetParam()) << " sequence " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineCorrectness,
                         ::testing::ValuesIn(AllBaselineKinds()),
                         [](const ::testing::TestParamInfo<BaselineKind>& info) {
                           std::string name = BaselineKindName(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Baselines, LoongTrainPadsToMax) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 4;
  BaselineResult lt = PlanBaseline(BaselineKind::kLoongTrain, {64, 16, 32},
                                   MaskSpec::Causal(), cluster, SmallOptions());
  EXPECT_EQ(lt.planned_seqlens, (std::vector<int64_t>{64, 64, 64}));
  BaselineResult te = PlanBaseline(BaselineKind::kTransformerEngine, {64, 16, 32},
                                   MaskSpec::Causal(), cluster, SmallOptions());
  EXPECT_EQ(te.planned_seqlens, (std::vector<int64_t>{64, 16, 32}));
}

TEST(Baselines, RfaCommunicatesMoreThanHeadParallelBaselines) {
  // RFA exchanges all KV groups each step; TE splits heads 2-way, halving KV traffic.
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  PlannerOptions options;
  options.block_size = 2048;
  const std::vector<int64_t> seqlens = {65536, 32768, 32768};
  BaselineResult rfa = PlanBaseline(BaselineKind::kRfaZigZag, seqlens, MaskSpec::Causal(),
                                    cluster, options);
  BaselineResult te = PlanBaseline(BaselineKind::kTransformerEngine, seqlens,
                                   MaskSpec::Causal(), cluster, options);
  EXPECT_GT(rfa.plan.stats.total_comm_bytes, te.plan.stats.total_comm_bytes);
}

TEST(Baselines, DcpCommunicatesLessThanTeOnShortSequenceBatches) {
  // Batches of short sequences: DCP places whole sequences per device (DP-like), static CP
  // still rotates KV — the core claim of the paper's Fig. 5/13.
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  PlannerOptions options;
  options.block_size = 1024;
  std::vector<int64_t> seqlens(32, 4096);  // 32 short sequences.
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), seqlens);
  BatchPlan dcp = PlanBatch(seqlens, masks, cluster, options);
  BaselineResult te = PlanBaseline(BaselineKind::kTransformerEngine, seqlens,
                                   MaskSpec::Causal(), cluster, options);
  EXPECT_LT(dcp.stats.total_comm_bytes, te.plan.stats.total_comm_bytes / 4);
}

TEST(Baselines, SimulatedTimesAreFiniteAndOrdered) {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();
  PlannerOptions options;
  options.block_size = 2048;
  const std::vector<int64_t> seqlens = {65536, 16384, 16384, 8192, 8192, 8192, 8192};
  SimEngine sim{CostModel(cluster)};
  for (BaselineKind kind : AllBaselineKinds()) {
    BaselineResult baseline =
        PlanBaseline(kind, seqlens, MaskSpec::Causal(), cluster, options);
    SimResult result = sim.Simulate(baseline.plan, false);
    EXPECT_GT(result.makespan, 0.0) << BaselineKindName(kind);
    EXPECT_LT(result.makespan, 10.0) << BaselineKindName(kind);
  }
}

TEST(Baselines, ZigZagBalancesCausalComputeBetterThanRing) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 8;
  PlannerOptions options;
  options.block_size = 1024;
  const std::vector<int64_t> seqlens = {65536};
  BaselineResult ring =
      PlanBaseline(BaselineKind::kRfaRing, seqlens, MaskSpec::Causal(), cluster, options);
  BaselineResult zigzag = PlanBaseline(BaselineKind::kRfaZigZag, seqlens,
                                       MaskSpec::Causal(), cluster, options);
  // Max per-device flops: zigzag should be closer to the mean than ring.
  EXPECT_LT(zigzag.plan.stats.max_device_flops, ring.plan.stats.max_device_flops);
}

}  // namespace
}  // namespace dcp
