#include "common/table.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

TEST(Table, RendersHeaderSeparatorAndRows) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1.00"});
  table.AddRow({"beta", "12.50"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("|----"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace dcp
