#include "runtime/attention_kernel.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/reference_attention.h"

namespace dcp {
namespace {

constexpr int kHeads = 2;
constexpr int kDim = 8;

// Builds a single-chunk tile setup where the whole sequence fits one block, so one forward
// tile + finalize must equal the reference attention.
class SingleTileTest : public ::testing::TestWithParam<MaskKind> {};

TEST_P(SingleTileTest, OneTileMatchesReference) {
  const int64_t len = 24;
  Rng rng(101);
  SeqTensors inputs = SeqTensors::Random(kHeads, 1, len, kDim, rng);
  MaskSpec spec = MaskSpec::ForKind(GetParam());
  spec.sink_tokens = 3;
  spec.window_tokens = 6;
  spec.icl_block_tokens = 4;
  SequenceMask mask = SequenceMask::Build(spec, MakeSequenceInfo(spec, len));

  // Pack q/kv in slot layout: q [heads, bs, d], kv [2, bs, d], bs == len.
  std::vector<float> q(static_cast<size_t>(kHeads * len * kDim));
  std::vector<float> kv(static_cast<size_t>(2 * len * kDim));
  for (int h = 0; h < kHeads; ++h) {
    for (int64_t t = 0; t < len; ++t) {
      for (int c = 0; c < kDim; ++c) {
        q[static_cast<size_t>((h * len + t) * kDim + c)] = inputs.q.at({h, t, c});
      }
    }
  }
  for (int64_t t = 0; t < len; ++t) {
    for (int c = 0; c < kDim; ++c) {
      kv[static_cast<size_t>((0 * len + t) * kDim + c)] = inputs.k.at({0, t, c});
      kv[static_cast<size_t>((1 * len + t) * kDim + c)] = inputs.v.at({0, t, c});
    }
  }
  std::vector<float> acc(static_cast<size_t>(kHeads * len * kDim + 2 * kHeads * len), 0.0f);
  // Initialize m to -inf.
  for (int64_t i = kHeads * len * kDim; i < kHeads * len * kDim + kHeads * len; ++i) {
    acc[static_cast<size_t>(i)] = -std::numeric_limits<float>::infinity();
  }

  TileArgs args;
  args.heads = kHeads;
  args.block_size = len;
  args.head_dim = kDim;
  args.q_begin = 0;
  args.q_end = len;
  args.kv_begin = 0;
  args.kv_end = len;
  args.full = false;
  AttentionTileForward(mask, args, q, kv, acc);

  std::vector<float> out(static_cast<size_t>(kHeads * len * kDim), 0.0f);
  FinalizeOutput(acc, out, kHeads, len, kDim, len);

  Tensor reference = ReferenceAttentionForward(inputs, mask);
  for (int h = 0; h < kHeads; ++h) {
    for (int64_t t = 0; t < len; ++t) {
      for (int c = 0; c < kDim; ++c) {
        EXPECT_NEAR(out[static_cast<size_t>((h * len + t) * kDim + c)],
                    reference.at({h, t, c}), 2e-5f)
            << "h=" << h << " t=" << t << " c=" << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMasks, SingleTileTest,
                         ::testing::Values(MaskKind::kCausal, MaskKind::kLambda,
                                           MaskKind::kCausalBlockwise,
                                           MaskKind::kSharedQuestion),
                         [](const ::testing::TestParamInfo<MaskKind>& info) {
                           return MaskKindName(info.param);
                         });

TEST(AttentionKernel, SplitKvTilesMergeToSameResultAsOneTile) {
  const int64_t len = 32;
  Rng rng(55);
  SeqTensors inputs = SeqTensors::Random(1, 1, len, kDim, rng);
  MaskSpec spec = MaskSpec::Causal();
  SequenceMask mask = SequenceMask::Build(spec, MakeSequenceInfo(spec, len));

  auto pack_kv = [&](int64_t kb, int64_t ke, int64_t bs) {
    std::vector<float> kv(static_cast<size_t>(2 * bs * kDim), 0.0f);
    for (int64_t t = kb; t < ke; ++t) {
      for (int c = 0; c < kDim; ++c) {
        kv[static_cast<size_t>((t - kb) * kDim + c)] = inputs.k.at({0, t, c});
        kv[static_cast<size_t>((bs + (t - kb)) * kDim + c)] = inputs.v.at({0, t, c});
      }
    }
    return kv;
  };
  std::vector<float> q(static_cast<size_t>(len * kDim));
  for (int64_t t = 0; t < len; ++t) {
    for (int c = 0; c < kDim; ++c) {
      q[static_cast<size_t>(t * kDim + c)] = inputs.q.at({0, t, c});
    }
  }

  auto make_acc = [&]() {
    std::vector<float> acc(static_cast<size_t>(len * kDim + 2 * len), 0.0f);
    for (int64_t i = len * kDim; i < len * kDim + len; ++i) {
      acc[static_cast<size_t>(i)] = -std::numeric_limits<float>::infinity();
    }
    return acc;
  };

  // Path A: one tile over all KV.
  auto acc_a = make_acc();
  TileArgs args{1, len, kDim, 0, len, 0, len, false};
  AttentionTileForward(mask, args, q, pack_kv(0, len, len), acc_a);

  // Path B: two half tiles into two accumulators merged afterwards (simulating partials
  // computed on different devices).
  auto acc_b0 = make_acc();
  auto acc_b1 = make_acc();
  TileArgs args0{1, len, kDim, 0, len, 0, len / 2, false};
  TileArgs args1{1, len, kDim, 0, len, len / 2, len, false};
  AttentionTileForward(mask, args0, q, pack_kv(0, len / 2, len), acc_b0);
  AttentionTileForward(mask, args1, q, pack_kv(len / 2, len, len), acc_b1);
  MergeSoftmaxAccumulators(acc_b0, acc_b1, 1, len, kDim, len);

  std::vector<float> out_a(static_cast<size_t>(len * kDim));
  std::vector<float> out_b(static_cast<size_t>(len * kDim));
  FinalizeOutput(acc_a, out_a, 1, len, kDim, len);
  FinalizeOutput(acc_b0, out_b, 1, len, kDim, len);
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_NEAR(out_a[i], out_b[i], 3e-6f);
  }
}

TEST(AttentionKernel, MergeIsCommutative) {
  const int64_t len = 8;
  Rng rng(77);
  auto random_acc = [&]() {
    std::vector<float> acc(static_cast<size_t>(len * kDim + 2 * len));
    for (int64_t i = 0; i < len * kDim; ++i) {
      acc[static_cast<size_t>(i)] = static_cast<float>(rng.NextUniform(-1, 1));
    }
    for (int64_t i = len * kDim; i < len * kDim + len; ++i) {
      acc[static_cast<size_t>(i)] = static_cast<float>(rng.NextUniform(-2, 2));  // m
    }
    for (int64_t i = len * kDim + len; i < len * kDim + 2 * len; ++i) {
      acc[static_cast<size_t>(i)] = static_cast<float>(rng.NextUniform(0.1, 3));  // l
    }
    return acc;
  };
  auto a = random_acc();
  auto b = random_acc();
  auto ab = a;
  MergeSoftmaxAccumulators(ab, b, 1, len, kDim, len);
  auto ba = b;
  MergeSoftmaxAccumulators(ba, a, 1, len, kDim, len);
  std::vector<float> out_ab(static_cast<size_t>(len * kDim));
  std::vector<float> out_ba(static_cast<size_t>(len * kDim));
  FinalizeOutput(ab, out_ab, 1, len, kDim, len);
  FinalizeOutput(ba, out_ba, 1, len, kDim, len);
  for (size_t i = 0; i < out_ab.size(); ++i) {
    EXPECT_NEAR(out_ab[i], out_ba[i], 1e-5f);
  }
}

TEST(AttentionKernel, ComputeDeltaMatchesManualRowSum) {
  const int64_t len = 5;
  Rng rng(31);
  std::vector<float> dout(static_cast<size_t>(kHeads * len * kDim));
  std::vector<float> out(static_cast<size_t>(kHeads * len * kDim));
  for (auto* vec : {&dout, &out}) {
    for (float& v : *vec) {
      v = static_cast<float>(rng.NextUniform(-1, 1));
    }
  }
  std::vector<float> delta(static_cast<size_t>(kHeads * len), 0.0f);
  ComputeDelta(dout, out, delta, kHeads, len, kDim, len);
  for (int h = 0; h < kHeads; ++h) {
    for (int64_t t = 0; t < len; ++t) {
      float expect = 0.0f;
      for (int c = 0; c < kDim; ++c) {
        expect += dout[static_cast<size_t>((h * len + t) * kDim + c)] *
                  out[static_cast<size_t>((h * len + t) * kDim + c)];
      }
      EXPECT_FLOAT_EQ(delta[static_cast<size_t>(h * len + t)], expect);
    }
  }
}

TEST(AttentionKernel, BackwardTileMatchesReferenceGradients) {
  const int64_t len = 16;
  Rng rng(202);
  SeqTensors inputs = SeqTensors::Random(1, 1, len, kDim, rng);
  MaskSpec spec = MaskSpec::Causal();
  SequenceMask mask = SequenceMask::Build(spec, MakeSequenceInfo(spec, len));

  std::vector<float> q(static_cast<size_t>(len * kDim));
  std::vector<float> kv(static_cast<size_t>(2 * len * kDim));
  for (int64_t t = 0; t < len; ++t) {
    for (int c = 0; c < kDim; ++c) {
      q[static_cast<size_t>(t * kDim + c)] = inputs.q.at({0, t, c});
      kv[static_cast<size_t>(t * kDim + c)] = inputs.k.at({0, t, c});
      kv[static_cast<size_t>((len + t) * kDim + c)] = inputs.v.at({0, t, c});
    }
  }
  std::vector<float> acc(static_cast<size_t>(len * kDim + 2 * len), 0.0f);
  for (int64_t i = len * kDim; i < len * kDim + len; ++i) {
    acc[static_cast<size_t>(i)] = -std::numeric_limits<float>::infinity();
  }
  TileArgs args{1, len, kDim, 0, len, 0, len, false};
  AttentionTileForward(mask, args, q, kv, acc);
  std::vector<float> out(static_cast<size_t>(len * kDim));
  FinalizeOutput(acc, out, 1, len, kDim, len);

  Tensor dout_tensor = Tensor::Random({1, len, kDim}, rng);
  std::vector<float> dout(dout_tensor.data(), dout_tensor.data() + dout_tensor.numel());
  std::vector<float> delta(static_cast<size_t>(len), 0.0f);
  ComputeDelta(dout, out, delta, 1, len, kDim, len);

  std::vector<float> dq(static_cast<size_t>(len * kDim), 0.0f);
  std::vector<float> dkv(static_cast<size_t>(2 * len * kDim), 0.0f);
  AttentionTileBackward(mask, args, q, kv, acc, dout, delta, dq, dkv);

  Tensor out_t = ReferenceAttentionForward(inputs, mask);
  SeqGrads reference = ReferenceAttentionBackward(inputs, mask, out_t, dout_tensor);
  for (int64_t t = 0; t < len; ++t) {
    for (int c = 0; c < kDim; ++c) {
      EXPECT_NEAR(dq[static_cast<size_t>(t * kDim + c)], reference.dq.at({0, t, c}), 1e-4f);
      EXPECT_NEAR(dkv[static_cast<size_t>(t * kDim + c)], reference.dk.at({0, t, c}), 1e-4f);
      EXPECT_NEAR(dkv[static_cast<size_t>((len + t) * kDim + c)],
                  reference.dv.at({0, t, c}), 1e-4f);
    }
  }
}

}  // namespace
}  // namespace dcp
