#include "core/hypergraph_build.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

TEST(HypergraphBuild, VertexAndEdgeStructure) {
  BatchLayout layout;
  layout.seqlens = {32};  // 2 chunks of 16.
  layout.block_size = 16;
  layout.num_groups = 1;
  layout.heads_per_group = 2;
  layout.head_dim = 8;
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  // Causal, 2 chunks, 1 group: tiles (0,0), (1,0), (1,1).
  ASSERT_EQ(graph.num_comp_blocks(), 3);
  BuiltHypergraph built = BuildPlacementHypergraph(graph);

  EXPECT_EQ(built.num_chunk_vertices, 2);
  EXPECT_EQ(built.hg.num_vertices(), 2 + 3);
  // Chunk 0: one Q/O edge (tile (0,0)), one KV edge (tiles (0,0) and (1,0)).
  // Chunk 1: one Q/O edge (tiles (1,0), (1,1)), one KV edge (tile (1,1)).
  EXPECT_EQ(built.hg.num_edges(), 4);

  // Chunk vertices carry data weight only; comp vertices carry flops only.
  for (int gc = 0; gc < 2; ++gc) {
    EXPECT_DOUBLE_EQ(built.hg.vertex_weight(built.ChunkVertex(gc))[0], 0.0);
    EXPECT_GT(built.hg.vertex_weight(built.ChunkVertex(gc))[1], 0.0);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(built.hg.vertex_weight(built.CompVertex(i))[0], 0.0);
    EXPECT_DOUBLE_EQ(built.hg.vertex_weight(built.CompVertex(i))[1], 0.0);
  }

  // Q/O edges weigh Q+O bytes; KV edges weigh KV bytes.
  const double qo = static_cast<double>(layout.QBlockBytes(16) + layout.OBlockBytes(16));
  const double kv = static_cast<double>(layout.KvBlockBytes(16));
  int qo_edges = 0;
  int kv_edges = 0;
  for (EdgeId e = 0; e < built.hg.num_edges(); ++e) {
    if (built.hg.edge_weight(e) == qo) {
      ++qo_edges;
    } else if (built.hg.edge_weight(e) == kv) {
      ++kv_edges;
    }
  }
  EXPECT_EQ(qo_edges, 2);
  EXPECT_EQ(kv_edges, 2);
}

TEST(HypergraphBuild, ConnectivityCostEqualsCommVolumeForAManualPlacement) {
  BatchLayout layout;
  layout.seqlens = {32};
  layout.block_size = 16;
  layout.num_groups = 1;
  layout.heads_per_group = 2;
  layout.head_dim = 8;
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  BuiltHypergraph built = BuildPlacementHypergraph(graph);

  // Place chunk0 + tile(0,0) on device 0; chunk1 + tiles (1,0),(1,1) on device 1.
  // Only chunk0's KV block crosses (tile (1,0) needs it): cost == KV bytes.
  Partition part = {0, 1, 0, 1, 1};
  double cost = 0.0;
  for (EdgeId e = 0; e < built.hg.num_edges(); ++e) {
    auto [pb, pe] = built.hg.EdgePins(e);
    bool has0 = false;
    bool has1 = false;
    for (const VertexId* p = pb; p != pe; ++p) {
      (part[static_cast<size_t>(*p)] == 0 ? has0 : has1) = true;
    }
    if (has0 && has1) {
      cost += built.hg.edge_weight(e);
    }
  }
  EXPECT_DOUBLE_EQ(cost, static_cast<double>(layout.KvBlockBytes(16)));
}

}  // namespace
}  // namespace dcp
