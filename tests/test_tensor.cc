#include "common/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcp {
namespace {

TEST(Tensor, ShapeAndIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3);
  t.at({1, 2, 3}) = 7.0f;
  EXPECT_FLOAT_EQ(t.at({1, 2, 3}), 7.0f);
  EXPECT_FLOAT_EQ(t.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
}

TEST(Tensor, FillAddScale) {
  Tensor a = Tensor::Full({4}, 2.0f);
  Tensor b = Tensor::Full({4}, 3.0f);
  a.Add(b);
  a.Scale(2.0f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], 10.0f);
  }
}

TEST(Tensor, RandomIsDeterministicPerSeed) {
  Rng r1(5);
  Rng r2(5);
  Tensor a = Tensor::Random({16}, r1);
  Tensor b = Tensor::Random({16}, r2);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
}

TEST(Tensor, DiffMetrics) {
  Tensor a = Tensor::Full({4}, 1.0f);
  Tensor b = Tensor::Full({4}, 1.5f);
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 0.5f);
  EXPECT_NEAR(Tensor::RelativeL2(a, b), 0.5 / 1.5, 1e-6);
}

}  // namespace
}  // namespace dcp
