#include "core/plan_compile.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "masks/mask.h"

namespace dcp {
namespace {

struct PlanFixture {
  ClusterSpec cluster;
  std::vector<int64_t> seqlens;
  std::vector<SequenceMask> masks;
  BatchPlan plan;
};

PlanFixture MakeFixture(MaskKind kind, std::vector<int64_t> seqlens, int64_t block_size,
                        int nodes = 2, int devs = 2) {
  PlanFixture f;
  f.cluster.num_nodes = nodes;
  f.cluster.devices_per_node = devs;
  f.seqlens = std::move(seqlens);
  MaskSpec spec = MaskSpec::ForKind(kind);
  spec.sink_tokens = 4;
  spec.window_tokens = 12;
  spec.icl_block_tokens = 8;
  f.masks = BuildBatchMasks(spec, f.seqlens);
  PlannerOptions options;
  options.block_size = block_size;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  f.plan = PlanBatch(f.seqlens, f.masks, f.cluster, options);
  return f;
}

TEST(PlanCompile, EveryTransferHasMatchedSendAndRecvWithEqualPayload) {
  PlanFixture f = MakeFixture(MaskKind::kCausal, {60, 33, 47}, 12);
  struct Ends {
    int sends = 0;
    int recvs = 0;
    size_t send_blocks = 0;
    size_t recv_blocks = 0;
    Bytes send_bytes = 0;
    Bytes recv_bytes = 0;
    int waits = 0;
  };
  std::map<int32_t, Ends> transfers;
  for (const DevicePlan& dev : f.plan.devices) {
    for (const auto* stream : {&dev.instructions, &dev.backward_instructions}) {
      for (const Instruction& instr : *stream) {
        if (instr.kind == InstrKind::kCommLaunch) {
          Ends& ends = transfers[instr.transfer_id];
          if (instr.is_send) {
            ++ends.sends;
            ends.send_blocks += instr.blocks.size();
            ends.send_bytes = instr.comm_bytes;
          } else {
            ++ends.recvs;
            ends.recv_blocks += instr.blocks.size();
            ends.recv_bytes = instr.comm_bytes;
          }
        } else if (instr.kind == InstrKind::kCommWait) {
          ++transfers[instr.transfer_id].waits;
        }
      }
    }
  }
  EXPECT_FALSE(transfers.empty());
  for (const auto& [id, ends] : transfers) {
    EXPECT_EQ(ends.sends, 1) << "transfer " << id;
    EXPECT_EQ(ends.recvs, 1) << "transfer " << id;
    EXPECT_EQ(ends.send_blocks, ends.recv_blocks) << "transfer " << id;
    EXPECT_EQ(ends.send_bytes, ends.recv_bytes) << "transfer " << id;
    EXPECT_GE(ends.waits, 1) << "transfer " << id;
  }
}

TEST(PlanCompile, EveryCompBlockTileAppearsExactlyOnce) {
  PlanFixture f = MakeFixture(MaskKind::kSharedQuestion, {64, 40, 28}, 8);
  // Count tiles per (seq, group, q_begin, kv_begin) across all devices.
  std::map<std::tuple<SeqId, GroupId, int64_t, int64_t>, int> tiles;
  for (const DevicePlan& dev : f.plan.devices) {
    for (const Instruction& instr : dev.instructions) {
      if (instr.kind != InstrKind::kBlockwiseAttention) {
        continue;
      }
      for (const AttentionWorkItem& item : instr.attn_items) {
        ++tiles[{item.seq, item.group, item.q_begin, item.kv_begin}];
      }
    }
  }
  for (const auto& [key, count] : tiles) {
    EXPECT_EQ(count, 1);
  }
  // Tile count matches what the masks say should exist (non-empty tiles x groups).
  size_t expected = 0;
  const BatchLayout& layout = f.plan.layout;
  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    for (ChunkId qc = 0; qc < layout.NumChunks(s); ++qc) {
      for (ChunkId kc = 0; kc <= qc; ++kc) {
        int64_t pairs = 0;
        f.masks[static_cast<size_t>(s)].Classify(
            layout.ChunkBegin(s, qc), layout.ChunkEnd(s, qc), layout.ChunkBegin(s, kc),
            layout.ChunkEnd(s, kc), &pairs);
        if (pairs > 0) {
          expected += static_cast<size_t>(layout.num_groups);
        }
      }
    }
  }
  EXPECT_EQ(tiles.size(), expected);
}

TEST(PlanCompile, SlotReferencesAreInBounds) {
  PlanFixture f = MakeFixture(MaskKind::kLambda, {96, 50}, 10, 2, 3);
  for (const DevicePlan& dev : f.plan.devices) {
    auto check_ref = [&](const BlockRef& ref) {
      EXPECT_GE(ref.slot, 0);
      EXPECT_LT(ref.slot, dev.num_slots[static_cast<size_t>(ref.kind)])
          << BufKindName(ref.kind);
    };
    for (const auto* stream : {&dev.instructions, &dev.backward_instructions}) {
      for (const Instruction& instr : *stream) {
        for (const AttentionWorkItem& item : instr.attn_items) {
          check_ref(item.q);
          check_ref(item.kv);
          check_ref(item.acc);
          if (instr.backward) {
            check_ref(item.dout);
            check_ref(item.delta);
            check_ref(item.dq);
            check_ref(item.dkv);
          }
        }
        for (const ReduceItem& item : instr.reduce_items) {
          check_ref(item.dst);
          check_ref(item.src0);
          if (item.mode == ReduceMode::kComputeDelta) {
            check_ref(item.src1);
          }
        }
        for (const TransferBlock& block : instr.blocks) {
          check_ref(block.ref);
        }
      }
    }
  }
}

TEST(PlanCompile, LocalChunksPartitionTheBatch) {
  PlanFixture f = MakeFixture(MaskKind::kCausal, {37, 64, 20}, 16);
  const BatchLayout& layout = f.plan.layout;
  std::set<std::tuple<SeqId, ChunkId, GroupId>> seen;
  for (const DevicePlan& dev : f.plan.devices) {
    for (const LocalChunk& chunk : dev.local_chunks) {
      auto key = std::make_tuple(chunk.seq, chunk.chunk, chunk.group);
      EXPECT_TRUE(seen.insert(key).second) << "chunk owned twice";
    }
  }
  size_t expected = 0;
  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    expected += static_cast<size_t>(layout.NumChunks(s)) *
                static_cast<size_t>(layout.num_groups);
  }
  EXPECT_EQ(seen.size(), expected);
}

TEST(PlanCompile, CommStatsAreConsistent) {
  PlanFixture f = MakeFixture(MaskKind::kCausal, {128, 40}, 16);
  // Re-derive forward comm volume from the instruction streams (each transfer counted once
  // via its send side).
  Bytes total = 0;
  for (const DevicePlan& dev : f.plan.devices) {
    for (const Instruction& instr : dev.instructions) {
      if (instr.kind == InstrKind::kCommLaunch && instr.is_send) {
        total += instr.comm_bytes;
      }
    }
  }
  EXPECT_EQ(total, f.plan.stats.total_comm_bytes);
  EXPECT_LE(f.plan.stats.inter_node_comm_bytes, f.plan.stats.total_comm_bytes);
}

TEST(PlanCompile, SingleDivisionPlansStillExecute) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 4;
  const std::vector<int64_t> seqlens = {64, 32};
  MaskSpec spec = MaskSpec::Causal();
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  options.divisions = 1;
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);
  int attn_instrs = 0;
  for (const DevicePlan& dev : plan.devices) {
    for (const Instruction& instr : dev.instructions) {
      attn_instrs += instr.kind == InstrKind::kBlockwiseAttention ? 1 : 0;
    }
  }
  EXPECT_GT(attn_instrs, 0);
}

}  // namespace
}  // namespace dcp
