// Tests for dcp::ReplicaSet and the fault-injection harness: failover off a replica
// that dies mid-frame (bit-identical plan from the secondary), hedged requests with
// exactly one valid winner and a bounded hedge volume, the cooldown/backoff state
// machine under a fake clock, deterministic fault schedules per seed, local fallback on
// total fleet loss, and a chaos workload (seeded from DCP_FAULT_SEED, as scripts/
// check.sh drives it) that must lose zero requests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "masks/mask.h"
#include "service/fault_injection.h"
#include "service/frame.h"
#include "service/plan_server.h"
#include "service/replica_set.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

namespace dcp {
namespace {

ClusterSpec SmallCluster(int nodes, int devices) {
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.devices_per_node = devices;
  return cluster;
}

EngineOptions SmallEngineOptions(int64_t block_size, uint64_t seed = 7) {
  EngineOptions options;
  options.planner.block_size = block_size;
  options.planner.num_groups = 2;
  options.planner.heads_per_group = 2;
  options.planner.head_dim = 8;
  options.planner.divisions = 3;
  options.planner.seed = seed;
  return options;
}

std::string SerializeTimeless(const BatchPlan& plan) {
  BatchPlan copy = plan;
  copy.stats.planning_seconds = 0.0;
  return SerializePlan(copy);
}

// One member of a loopback fleet: a PlanServer with the shared tenant config.
struct Member {
  std::shared_ptr<TenantRegistry> registry = std::make_shared<TenantRegistry>();
  std::unique_ptr<PlanServer> server;

  Member(const ClusterSpec& cluster, const EngineOptions& options,
         PlanServerOptions server_options = {}) {
    EXPECT_TRUE(registry->Register({"prod", cluster, options}).ok());
    server = std::make_unique<PlanServer>(registry, server_options);
    Status started = server->Start(ServiceAddress::Tcp("127.0.0.1", 0));
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

// A server that accepts, reads one request frame, then tears the response mid-header:
// the exact failure a replica dying mid-write produces on the wire.
class TornFrameServer {
 public:
  TornFrameServer() {
    listener_ = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0)).value();
    thread_ = std::thread([this] { Loop(); });
  }
  ~TornFrameServer() { Stop(); }

  void Stop() {
    if (!stopped_.exchange(true)) {
      listener_.Interrupt();
      thread_.join();
      listener_.Close();
    }
  }
  const ServiceAddress& address() const { return listener_.bound_address(); }
  int64_t frames_torn() const { return torn_.load(); }

 private:
  void Loop() {
    while (!stopped_.load()) {
      StatusOr<Socket> accepted = listener_.Accept(/*timeout_ms=*/100);
      if (!accepted.ok()) {
        if (accepted.status().code() == StatusCode::kNotFound) {
          continue;  // Timeout: poll the stop flag.
        }
        return;
      }
      Socket socket = std::move(accepted).value();
      socket.set_io_timeout_ms(2000);
      if (!ReadFrame(socket).ok()) {
        continue;
      }
      const std::string frame = EncodeFrame(FrameType::kPlanResponse, "never-sent");
      (void)socket.SendAll(std::string_view(frame).substr(0, 10));
      socket.Close();
      ++torn_;
    }
  }

  Listener listener_;
  std::thread thread_;
  std::atomic<bool> stopped_{false};
  std::atomic<int64_t> torn_{0};
};

// A batch shape whose rendezvous order ranks `want_primary` first. Ephemeral ports
// randomize the address hashes per run, so the shape is searched, not hardcoded.
std::vector<int64_t> ShapeRoutedTo(const ReplicaSet& set, size_t want_primary,
                                   const MaskSpec& mask) {
  for (int64_t k = 0; k < 512; ++k) {
    std::vector<int64_t> seqlens = {64 + k, 32};
    if (set.RouteOrder(seqlens, mask)[0] == want_primary) {
      return seqlens;
    }
  }
  ADD_FAILURE() << "no shape routed to replica " << want_primary << " in 512 tries";
  return {64, 32};
}

TEST(ReplicaCooldown, BacksOffExponentiallyAndRecoversOnSuccess) {
  CooldownPolicy policy;
  policy.initial_ms = 100;
  policy.max_ms = 1000;
  policy.multiplier = 2.0;
  ReplicaCooldown cooldown(policy, /*salt=*/42);

  // Healthy until the first failure, whatever the clock says.
  EXPECT_TRUE(cooldown.Available(0));
  EXPECT_TRUE(cooldown.Available(1'000'000));

  cooldown.RecordFailure(/*now_ms=*/1000);
  EXPECT_EQ(cooldown.consecutive_failures(), 1);
  EXPECT_EQ(cooldown.backoff_ms(), 100);
  // Probe time = now + backoff +/- backoff/4 jitter.
  EXPECT_GE(cooldown.next_probe_ms(), 1000 + 75);
  EXPECT_LE(cooldown.next_probe_ms(), 1000 + 125);
  EXPECT_FALSE(cooldown.Available(1000));
  EXPECT_FALSE(cooldown.Available(cooldown.next_probe_ms() - 1));
  EXPECT_TRUE(cooldown.Available(cooldown.next_probe_ms()));

  // Repeated failures double the backoff up to the cap.
  cooldown.RecordFailure(2000);
  EXPECT_EQ(cooldown.backoff_ms(), 200);
  cooldown.RecordFailure(3000);
  cooldown.RecordFailure(4000);
  cooldown.RecordFailure(5000);
  EXPECT_EQ(cooldown.backoff_ms(), 1000);  // 100 -> 200 -> 400 -> 800 -> capped.
  cooldown.RecordFailure(6000);
  EXPECT_EQ(cooldown.backoff_ms(), 1000);

  // Deterministic: an identically-salted machine replays the identical schedule.
  ReplicaCooldown replay(policy, /*salt=*/42);
  for (int64_t now : {1000, 2000, 3000, 4000, 5000, 6000}) {
    replay.RecordFailure(now);
  }
  EXPECT_EQ(replay.next_probe_ms(), cooldown.next_probe_ms());

  cooldown.RecordSuccess();
  EXPECT_EQ(cooldown.consecutive_failures(), 0);
  EXPECT_TRUE(cooldown.Available(6000));
}

TEST(ReplicaSet, RendezvousRoutingIsDeterministicAndSpreadsShapes) {
  std::vector<ServiceAddress> addresses = {ServiceAddress::Tcp("127.0.0.1", 7001),
                                           ServiceAddress::Tcp("127.0.0.1", 7002),
                                           ServiceAddress::Tcp("127.0.0.1", 7003)};
  ReplicaSetOptions options;
  auto set_a = ReplicaSet::Create(addresses, options).value();
  auto set_b = ReplicaSet::Create(addresses, options).value();

  std::vector<int> primary_seen(3, 0);
  for (int64_t k = 0; k < 64; ++k) {
    const std::vector<int64_t> seqlens = {48 + k, 32};
    const std::vector<size_t> order = set_a->RouteOrder(seqlens, MaskSpec::Causal());
    // A full permutation, identical across independently-constructed sets.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, set_b->RouteOrder(seqlens, MaskSpec::Causal()));
    std::vector<bool> seen(3, false);
    for (size_t index : order) {
      ASSERT_LT(index, 3u);
      seen[index] = true;
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
    ++primary_seen[order[0]];
  }
  // Affinity spreads load: every replica is primary for some shapes.
  EXPECT_GT(primary_seen[0], 0);
  EXPECT_GT(primary_seen[1], 0);
  EXPECT_GT(primary_seen[2], 0);

  // The same shape keeps the same primary (cache affinity), run after run.
  const std::vector<int64_t> shape = {99, 32};
  EXPECT_EQ(set_a->RouteOrder(shape, MaskSpec::Causal())[0],
            set_a->RouteOrder(shape, MaskSpec::Causal())[0]);
}

TEST(ReplicaSet, FailsOverMidFrameToBitIdenticalSecondary) {
  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions engine_options = SmallEngineOptions(16);
  TornFrameServer torn;                    // Replica 0: dies mid-response-frame.
  Member healthy(cluster, engine_options); // Replica 1: serves correctly.

  ReplicaSetOptions options;
  options.tenant = "prod";
  options.hedging = false;  // Pure failover under test; hedging has its own test.
  auto set = ReplicaSet::Create(
                 {torn.address(), healthy.server->bound_address()}, options)
                 .value();

  const MaskSpec mask = MaskSpec::Causal();
  const std::vector<int64_t> seqlens = ShapeRoutedTo(*set, /*want_primary=*/0, mask);

  StatusOr<PlanHandle> plan = set->Plan(seqlens, mask);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(torn.frames_torn(), 1);  // The primary really was tried and really tore.

  // The failed-over response is bit-identical to in-process planning.
  Engine local(cluster, engine_options);
  const PlanHandle expected = local.Plan(seqlens, mask).value();
  EXPECT_TRUE(plan.value()->signature == expected->signature);
  EXPECT_EQ(SerializeTimeless(plan.value()->plan), SerializeTimeless(expected->plan));

  const ReplicaSetStats stats = set->stats();
  EXPECT_GE(stats.failovers, 1);
  EXPECT_GE(stats.cooldowns_entered, 1);
  EXPECT_FALSE(set->health(0).available);  // The torn replica is cooling down.
  EXPECT_TRUE(set->health(1).available);

  // Subsequent requests route around the cooled-down primary without a failover.
  const int64_t failovers_before = set->stats().failovers;
  StatusOr<PlanHandle> routed_around = set->Plan({seqlens[0] + 1000, 32}, mask);
  ASSERT_TRUE(routed_around.ok()) << routed_around.status().ToString();
  EXPECT_EQ(set->stats().failovers, failovers_before);
}

TEST(ReplicaSet, KillingThePrimaryMidRunLosesZeroRequests) {
  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions engine_options = SmallEngineOptions(16);
  std::vector<std::unique_ptr<Member>> fleet;
  std::vector<ServiceAddress> addresses;
  for (int i = 0; i < 3; ++i) {
    fleet.push_back(std::make_unique<Member>(cluster, engine_options));
    addresses.push_back(fleet.back()->server->bound_address());
  }

  ReplicaSetOptions options;
  options.tenant = "prod";
  options.cache_capacity = 0;  // Every request crosses the wire.
  options.hedging = false;
  // The final health check asserts the victim is still cooling down; the default 50ms
  // cooldown can expire mid-test under sanitizer slowdown, so pin it far out.
  options.cooldown.initial_ms = 60000;
  auto set = ReplicaSet::Create(addresses, options).value();

  const MaskSpec mask = MaskSpec::Causal();
  std::vector<std::vector<int64_t>> shapes;
  for (int64_t k = 0; k < 6; ++k) {
    shapes.push_back({64 + 8 * k, 32 + k});
  }
  Engine local(cluster, engine_options);
  for (const auto& shape : shapes) {
    StatusOr<PlanHandle> warm = set->Plan(shape, mask);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }

  // Kill shape[0]'s primary — with live connections and warm caches — mid-run.
  const size_t victim = set->RouteOrder(shapes[0], mask)[0];
  fleet[victim]->server->Stop();

  // Zero lost requests: every shape (including those routed to the dead primary)
  // is served by failover, bit-identical to in-process planning.
  for (const auto& shape : shapes) {
    StatusOr<PlanHandle> plan = set->Plan(shape, mask);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(SerializeTimeless(plan.value()->plan),
              SerializeTimeless(local.Plan(shape, mask).value()->plan));
  }
  EXPECT_GE(set->stats().failovers, 1);
  EXPECT_FALSE(set->health(victim).available);
}

TEST(ReplicaSet, HedgedRequestBeatsAStragglingPrimary) {
  const ClusterSpec cluster = SmallCluster(1, 2);
  const EngineOptions engine_options = SmallEngineOptions(16);

  // Replica 0 straggles on every serve; replica 1 is fast.
  auto straggle = std::make_shared<FaultInjector>(7);
  FaultRates slow;
  slow.every_n = 1;
  slow.periodic_action = FaultAction::kDelay;
  slow.delay_ms = 400;
  straggle->SetRates(FaultPoint::kServe, slow);
  PlanServerOptions slow_options;
  slow_options.fault_injector = straggle;
  Member straggler(cluster, engine_options, slow_options);
  Member fast(cluster, engine_options);

  ReplicaSetOptions options;
  options.tenant = "prod";
  options.hedging = true;
  options.hedge_min_delay_ms = 2;
  options.hedge_max_delay_ms = 10;  // No latency history yet: hedges fire at max.
  auto set = ReplicaSet::Create(
                 {straggler.server->bound_address(), fast.server->bound_address()},
                 options)
                 .value();

  const MaskSpec mask = MaskSpec::Causal();
  const std::vector<int64_t> seqlens = ShapeRoutedTo(*set, /*want_primary=*/0, mask);

  const auto started = std::chrono::steady_clock::now();
  StatusOr<PlanHandle> plan = set->Plan(seqlens, mask);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // The hedge won: exactly one hedge fired, its response was the one returned, and the
  // request resolved far below the straggler's 400ms stall.
  const ReplicaSetStats stats = set->stats();
  EXPECT_EQ(stats.hedges_sent, 1);
  EXPECT_EQ(stats.hedge_wins, 1);
  EXPECT_LT(elapsed.count(), 300);
  Engine local(cluster, engine_options);
  EXPECT_EQ(SerializeTimeless(plan.value()->plan),
            SerializeTimeless(local.Plan(seqlens, mask).value()->plan));
}

TEST(ReplicaSet, HedgeBudgetBoundsHedgeVolume) {
  const ClusterSpec cluster = SmallCluster(1, 2);
  const EngineOptions engine_options = SmallEngineOptions(16);

  // Both replicas stall on every serve, so every request would love to hedge; the
  // budget (burst 2, fraction 0) must allow at most two.
  std::vector<std::unique_ptr<Member>> fleet;
  std::vector<ServiceAddress> addresses;
  for (int i = 0; i < 2; ++i) {
    auto injector = std::make_shared<FaultInjector>(11 + static_cast<uint64_t>(i));
    FaultRates slow;
    slow.every_n = 1;
    slow.periodic_action = FaultAction::kDelay;
    slow.delay_ms = 30;
    injector->SetRates(FaultPoint::kServe, slow);
    PlanServerOptions server_options;
    server_options.fault_injector = injector;
    fleet.push_back(std::make_unique<Member>(cluster, engine_options, server_options));
    addresses.push_back(fleet.back()->server->bound_address());
  }

  ReplicaSetOptions options;
  options.tenant = "prod";
  options.cache_capacity = 0;
  options.hedge_min_delay_ms = 1;
  options.hedge_max_delay_ms = 1;
  options.hedge_budget_fraction = 0.0;
  options.hedge_budget_burst = 2;
  auto set = ReplicaSet::Create(addresses, options).value();

  for (int64_t k = 0; k < 8; ++k) {
    StatusOr<PlanHandle> plan = set->Plan({64 + 8 * k, 32}, MaskSpec::Causal());
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  }
  const ReplicaSetStats stats = set->stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_LE(stats.hedges_sent, 2);
}

TEST(ReplicaSet, FallsBackToLocalPlanningOnTotalFleetLoss) {
  // Two addresses nothing listens on: bind-then-close guarantees refusals.
  std::vector<ServiceAddress> dead;
  for (int i = 0; i < 2; ++i) {
    Listener placeholder = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0)).value();
    dead.push_back(placeholder.bound_address());
    placeholder.Close();
  }
  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions engine_options = SmallEngineOptions(16);

  ReplicaSetOptions options;
  options.tenant = "prod";
  options.connect_timeout_ms = 500;
  options.hedging = false;
  options.local_fallback = true;
  options.fallback_cluster = cluster;
  options.fallback_options = engine_options;
  auto set = ReplicaSet::Create(dead, options).value();

  const std::vector<int64_t> seqlens = {60, 33, 18};
  const MaskSpec mask = MaskSpec::Lambda(4, 13);
  StatusOr<PlanHandle> plan = set->Plan(seqlens, mask);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Engine local(cluster, engine_options);
  EXPECT_EQ(SerializeTimeless(plan.value()->plan),
            SerializeTimeless(local.Plan(seqlens, mask).value()->plan));
  const ReplicaSetStats stats = set->stats();
  EXPECT_GE(stats.local_fallbacks, 1);
  EXPECT_FALSE(set->health(0).available);
  EXPECT_FALSE(set->health(1).available);

  // Without the fallback, the same fleet loss surfaces as UNAVAILABLE.
  ReplicaSetOptions no_fallback = options;
  no_fallback.local_fallback = false;
  auto bare = ReplicaSet::Create(dead, no_fallback).value();
  StatusOr<PlanHandle> refused = bare->Plan(seqlens, mask);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().code() == StatusCode::kUnavailable ||
              refused.status().code() == StatusCode::kDeadlineExceeded)
      << refused.status().ToString();
}

TEST(FaultInjection, SchedulesAreDeterministicPerSeedAndDivergeAcrossSeeds) {
  FaultRates rates;
  rates.fail = 0.2;
  rates.tear = 0.1;
  rates.delay = 0.15;

  const auto schedule = [&rates](uint64_t seed) {
    FaultInjector injector(seed);
    injector.SetRates(FaultPoint::kSend, rates);
    injector.SetRates(FaultPoint::kRecv, rates);
    std::vector<int> actions;
    for (int i = 0; i < 256; ++i) {
      actions.push_back(static_cast<int>(
          injector.Decide(i % 2 == 0 ? FaultPoint::kSend : FaultPoint::kRecv)
              .action));
    }
    return actions;
  };

  EXPECT_EQ(schedule(1234), schedule(1234));  // Same seed: identical schedule.
  EXPECT_NE(schedule(1234), schedule(1235));  // Different seed: different schedule.

  // Periodic injection is exact, independent of the seed: every 5th op, no others.
  for (uint64_t seed : {uint64_t{1}, uint64_t{999}}) {
    FaultInjector periodic(seed);
    FaultRates every5;
    every5.every_n = 5;
    every5.periodic_action = FaultAction::kDelay;
    periodic.SetRates(FaultPoint::kServe, every5);
    for (int op = 1; op <= 20; ++op) {
      const FaultDecision decision = periodic.Decide(FaultPoint::kServe);
      EXPECT_EQ(decision.action,
                op % 5 == 0 ? FaultAction::kDelay : FaultAction::kNone)
          << "op " << op << " seed " << seed;
    }
  }
}

// The chaos gate scripts/check.sh runs: transport-level faults injected process-wide
// at the DCP_FAULT_SEED schedule, and the replicated client must still lose zero
// requests (failover, retry, or local fallback — all bit-identical).
TEST(ReplicaSet, ChaosWorkloadLosesZeroRequests) {
  const uint64_t seed = FaultSeedFromEnv(/*fallback=*/0x646370ULL);
  SCOPED_TRACE("DCP_FAULT_SEED=" + std::to_string(seed));

  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions engine_options = SmallEngineOptions(16);
  std::vector<std::unique_ptr<Member>> fleet;
  std::vector<ServiceAddress> addresses;
  for (int i = 0; i < 3; ++i) {
    fleet.push_back(std::make_unique<Member>(cluster, engine_options));
    addresses.push_back(fleet.back()->server->bound_address());
  }

  // Armed only after the fleet is up, disarmed on every exit path.
  struct ChaosGuard {
    explicit ChaosGuard(uint64_t seed)
        : injector(std::make_shared<FaultInjector>(seed)) {
      FaultRates transport;
      transport.fail = 0.05;
      transport.tear = 0.05;
      transport.tear_bytes = 6;
      injector->SetRates(FaultPoint::kSend, transport);
      injector->SetRates(FaultPoint::kRecv, transport);
      FaultRates connect;
      connect.fail = 0.05;
      injector->SetRates(FaultPoint::kConnect, connect);
      InstallGlobalFaultInjector(injector);
    }
    ~ChaosGuard() { InstallGlobalFaultInjector(nullptr); }
    std::shared_ptr<FaultInjector> injector;
  } chaos(seed);

  ReplicaSetOptions options;
  options.tenant = "prod";
  options.cache_capacity = 0;       // Every request re-runs the full fault gauntlet.
  options.connect_timeout_ms = 500;
  options.request_timeout_ms = 2000;
  options.retry.max_attempts = 2;   // Per-replica retry underneath set-level failover.
  options.local_fallback = true;    // The last-resort guarantee under test.
  options.fallback_cluster = cluster;
  options.fallback_options = engine_options;
  auto set = ReplicaSet::Create(addresses, options).value();

  Engine local(cluster, engine_options);
  int served = 0;
  for (int i = 0; i < 40; ++i) {
    const std::vector<int64_t> seqlens = {48 + 4 * (i % 5), 32 + (i % 3)};
    const MaskSpec mask = MaskSpec::Causal();
    StatusOr<PlanHandle> plan = set->Plan(seqlens, mask);
    ASSERT_TRUE(plan.ok()) << "request " << i << " lost under chaos seed " << seed
                           << ": " << plan.status().ToString();
    EXPECT_EQ(SerializeTimeless(plan.value()->plan),
              SerializeTimeless(local.Plan(seqlens, mask).value()->plan))
        << "request " << i << " diverged under chaos seed " << seed;
    ++served;
  }
  EXPECT_EQ(served, 40);
  EXPECT_GT(chaos.injector->decisions(), 0);
}

}  // namespace
}  // namespace dcp
