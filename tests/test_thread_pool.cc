#include "common/thread_pool.h"

#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

namespace dcp {
namespace {

TEST(ThreadPool, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter, i]() {
      counter.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, JobsRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> inflight{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&]() {
      const int now = inflight.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      inflight.fetch_sub(1);
    }));
  }
  for (auto& fut : futures) {
    fut.wait();
  }
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&counter]() { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 16);
}

}  // namespace
}  // namespace dcp
