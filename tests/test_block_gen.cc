#include "core/block_gen.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

BatchLayout SmallLayout(std::vector<int64_t> seqlens, int64_t block_size) {
  BatchLayout layout;
  layout.seqlens = std::move(seqlens);
  layout.block_size = block_size;
  layout.num_groups = 2;
  layout.heads_per_group = 2;
  layout.head_dim = 8;
  return layout;
}

class BlockGenMaskTest : public ::testing::TestWithParam<MaskKind> {};

TEST_P(BlockGenMaskTest, CompBlockPairsSumToMaskTotal) {
  const BatchLayout layout = SmallLayout({50, 33, 64}, 16);
  MaskSpec spec = MaskSpec::ForKind(GetParam());
  spec.sink_tokens = 4;
  spec.window_tokens = 12;
  spec.icl_block_tokens = 8;
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);

  // Per (sequence, group): the comp-block pair counts must sum to the mask's total pairs
  // (coverage is exact: nothing lost, nothing double-counted).
  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    for (GroupId g = 0; g < layout.num_groups; ++g) {
      int64_t pairs = 0;
      for (const CompBlock& block : graph.comp_blocks) {
        if (block.seq == s && block.group == g) {
          pairs += block.pairs;
        }
      }
      EXPECT_EQ(pairs, masks[static_cast<size_t>(s)].TotalPairs())
          << MaskKindName(GetParam()) << " seq " << s << " group " << g;
    }
  }
}

TEST_P(BlockGenMaskTest, NoEmptyBlocksAndFullFlagsAreExact) {
  const BatchLayout layout = SmallLayout({64}, 8);
  MaskSpec spec = MaskSpec::ForKind(GetParam());
  spec.sink_tokens = 4;
  spec.window_tokens = 12;
  spec.icl_block_tokens = 8;
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  for (const CompBlock& block : graph.comp_blocks) {
    EXPECT_GT(block.pairs, 0);
    const int64_t qb = layout.ChunkBegin(block.seq, block.q_chunk);
    const int64_t qe = layout.ChunkEnd(block.seq, block.q_chunk);
    const int64_t kb = layout.ChunkBegin(block.seq, block.kv_chunk);
    const int64_t ke = layout.ChunkEnd(block.seq, block.kv_chunk);
    EXPECT_EQ(block.full, block.pairs == (qe - qb) * (ke - kb));
    EXPECT_GT(block.flops, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMasks, BlockGenMaskTest,
                         ::testing::ValuesIn(AllMaskKinds()),
                         [](const ::testing::TestParamInfo<MaskKind>& info) {
                           return MaskKindName(info.param);
                         });

TEST(BlockGen, ChunkGeometryCoversSequencesExactly) {
  const BatchLayout layout = SmallLayout({37, 16, 9}, 16);
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  ASSERT_EQ(graph.num_chunks(), 3 + 1 + 1);  // ceil(37/16)=3, 1, 1.
  int64_t covered = 0;
  for (const TokenChunk& chunk : graph.chunks) {
    EXPECT_GT(chunk.length(), 0);
    EXPECT_LE(chunk.length(), 16);
    covered += chunk.length();
    EXPECT_EQ(chunk.bytes, layout.TokenChunkBytes(chunk.length()));
  }
  EXPECT_EQ(covered, 37 + 16 + 9);
}

TEST(BlockGen, CausalMaskTileCountIsTriangular) {
  const BatchLayout layout = SmallLayout({64}, 16);  // 4 chunks.
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  // Causal: 4+3+2+1 = 10 tiles per group, x2 groups.
  EXPECT_EQ(graph.num_comp_blocks(), 20);
}

TEST(BlockGen, SparseMaskGeneratesFewerBlocksThanCausal) {
  const BatchLayout layout = SmallLayout({256}, 16);
  std::vector<SequenceMask> causal = BuildBatchMasks(MaskSpec::Causal(), layout.seqlens);
  MaskSpec lambda = MaskSpec::Lambda(/*sink=*/8, /*window=*/24);
  std::vector<SequenceMask> sparse = BuildBatchMasks(lambda, layout.seqlens);
  EXPECT_LT(GenerateBlocks(layout, sparse).num_comp_blocks(),
            GenerateBlocks(layout, causal).num_comp_blocks());
}

TEST(BlockGen, TotalFlopsMatchesPairCount) {
  const BatchLayout layout = SmallLayout({40}, 8);
  std::vector<SequenceMask> masks = BuildBatchMasks(MaskSpec::Causal(), layout.seqlens);
  BlockGraph graph = GenerateBlocks(layout, masks);
  const double expected_pairs = 40 * 41 / 2.0;
  // flops = pairs * 4 * head_dim * heads_per_group, summed over both groups.
  EXPECT_DOUBLE_EQ(graph.TotalFlops(),
                   expected_pairs * 4 * layout.head_dim * layout.heads_per_group *
                       layout.num_groups);
}

}  // namespace
}  // namespace dcp
