#include "runtime/instructions.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "masks/mask.h"

namespace dcp {
namespace {

BatchPlan MakeTestPlan() {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  const std::vector<int64_t> seqlens = {40, 23, 64};
  MaskSpec spec = MaskSpec::SharedQuestion();
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  return PlanBatch(seqlens, masks, cluster, options);
}

TEST(PlanSerialization, RoundTripPreservesEverything) {
  BatchPlan plan = MakeTestPlan();
  const std::string text = SerializePlan(plan);
  BatchPlan restored = DeserializePlan(text);

  EXPECT_EQ(restored.layout.seqlens, plan.layout.seqlens);
  EXPECT_EQ(restored.layout.block_size, plan.layout.block_size);
  EXPECT_EQ(restored.chunk_home, plan.chunk_home);
  EXPECT_EQ(restored.stats.total_comm_bytes, plan.stats.total_comm_bytes);
  ASSERT_EQ(restored.devices.size(), plan.devices.size());
  for (size_t d = 0; d < plan.devices.size(); ++d) {
    const DevicePlan& a = plan.devices[d];
    const DevicePlan& b = restored.devices[d];
    EXPECT_EQ(a.num_slots, b.num_slots);
    ASSERT_EQ(a.local_chunks.size(), b.local_chunks.size());
    ASSERT_EQ(a.instructions.size(), b.instructions.size());
    ASSERT_EQ(a.backward_instructions.size(), b.backward_instructions.size());
    for (size_t i = 0; i < a.instructions.size(); ++i) {
      const Instruction& x = a.instructions[i];
      const Instruction& y = b.instructions[i];
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.attn_items.size(), y.attn_items.size());
      EXPECT_EQ(x.reduce_items.size(), y.reduce_items.size());
      EXPECT_EQ(x.blocks.size(), y.blocks.size());
      EXPECT_EQ(x.transfer_id, y.transfer_id);
      EXPECT_EQ(x.comm_bytes, y.comm_bytes);
      EXPECT_DOUBLE_EQ(x.flops, y.flops);
      for (size_t j = 0; j < x.attn_items.size(); ++j) {
        EXPECT_EQ(x.attn_items[j].q, y.attn_items[j].q);
        EXPECT_EQ(x.attn_items[j].kv, y.attn_items[j].kv);
        EXPECT_EQ(x.attn_items[j].acc, y.attn_items[j].acc);
        EXPECT_EQ(x.attn_items[j].q_begin, y.attn_items[j].q_begin);
        EXPECT_EQ(x.attn_items[j].kv_end, y.attn_items[j].kv_end);
        EXPECT_EQ(x.attn_items[j].full, y.attn_items[j].full);
      }
    }
  }
  // Serializing the restored plan reproduces the text exactly.
  EXPECT_EQ(SerializePlan(restored), text);
}

TEST(PlanToString, MentionsDevicesAndInstructionKinds) {
  BatchPlan plan = MakeTestPlan();
  const std::string text = PlanToString(plan);
  EXPECT_NE(text.find("BatchPlan: 4 devices"), std::string::npos);
  EXPECT_NE(text.find("device 0"), std::string::npos);
  EXPECT_NE(text.find("BlockwiseAttention"), std::string::npos);
}

TEST(Names, AllEnumsHaveNames) {
  EXPECT_EQ(BufKindName(BufKind::kQ), "Q");
  EXPECT_EQ(BufKindName(BufKind::kDKV), "dKV");
  EXPECT_EQ(InstrKindName(InstrKind::kCommLaunch), "CommLaunch");
  EXPECT_EQ(ReduceModeName(ReduceMode::kFinalize), "Finalize");
}

}  // namespace
}  // namespace dcp
