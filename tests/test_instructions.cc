#include "runtime/instructions.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "masks/mask.h"

namespace dcp {
namespace {

BatchPlan MakeTestPlan() {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  const std::vector<int64_t> seqlens = {40, 23, 64};
  MaskSpec spec = MaskSpec::SharedQuestion();
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
  PlannerOptions options;
  options.block_size = 16;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  return PlanBatch(seqlens, masks, cluster, options);
}

TEST(PlanSerialization, RoundTripPreservesEverything) {
  BatchPlan plan = MakeTestPlan();
  const std::string text = SerializePlan(plan);
  BatchPlan restored = DeserializePlanOrDie(text);

  EXPECT_EQ(restored.layout.seqlens, plan.layout.seqlens);
  EXPECT_EQ(restored.layout.block_size, plan.layout.block_size);
  EXPECT_EQ(restored.chunk_home, plan.chunk_home);
  EXPECT_EQ(restored.stats.total_comm_bytes, plan.stats.total_comm_bytes);
  ASSERT_EQ(restored.devices.size(), plan.devices.size());
  for (size_t d = 0; d < plan.devices.size(); ++d) {
    const DevicePlan& a = plan.devices[d];
    const DevicePlan& b = restored.devices[d];
    EXPECT_EQ(a.num_slots, b.num_slots);
    ASSERT_EQ(a.local_chunks.size(), b.local_chunks.size());
    ASSERT_EQ(a.instructions.size(), b.instructions.size());
    ASSERT_EQ(a.backward_instructions.size(), b.backward_instructions.size());
    for (size_t i = 0; i < a.instructions.size(); ++i) {
      const Instruction& x = a.instructions[i];
      const Instruction& y = b.instructions[i];
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.attn_items.size(), y.attn_items.size());
      EXPECT_EQ(x.reduce_items.size(), y.reduce_items.size());
      EXPECT_EQ(x.blocks.size(), y.blocks.size());
      EXPECT_EQ(x.transfer_id, y.transfer_id);
      EXPECT_EQ(x.comm_bytes, y.comm_bytes);
      EXPECT_DOUBLE_EQ(x.flops, y.flops);
      for (size_t j = 0; j < x.attn_items.size(); ++j) {
        EXPECT_EQ(x.attn_items[j].q, y.attn_items[j].q);
        EXPECT_EQ(x.attn_items[j].kv, y.attn_items[j].kv);
        EXPECT_EQ(x.attn_items[j].acc, y.attn_items[j].acc);
        EXPECT_EQ(x.attn_items[j].q_begin, y.attn_items[j].q_begin);
        EXPECT_EQ(x.attn_items[j].kv_end, y.attn_items[j].kv_end);
        EXPECT_EQ(x.attn_items[j].full, y.attn_items[j].full);
      }
    }
  }
  // Serializing the restored plan reproduces the text exactly.
  EXPECT_EQ(SerializePlan(restored), text);
}

// The text format dropped the owned-bytes pair until v2; pin all nine
// PlanStats fields through the text round trip so no direction drifts again.
TEST(PlanSerialization, TextRoundTripPreservesAllStatsFields) {
  BatchPlan plan = MakeTestPlan();
  plan.stats.max_device_owned_bytes = 12345;
  plan.stats.min_device_owned_bytes = 678;
  BatchPlan restored = DeserializePlanOrDie(SerializePlan(plan));
  EXPECT_EQ(restored.stats.total_comm_bytes, plan.stats.total_comm_bytes);
  EXPECT_EQ(restored.stats.inter_node_comm_bytes, plan.stats.inter_node_comm_bytes);
  EXPECT_EQ(restored.stats.max_device_comm_bytes, plan.stats.max_device_comm_bytes);
  EXPECT_DOUBLE_EQ(restored.stats.total_flops, plan.stats.total_flops);
  EXPECT_DOUBLE_EQ(restored.stats.max_device_flops, plan.stats.max_device_flops);
  EXPECT_EQ(restored.stats.max_device_owned_bytes, 12345);
  EXPECT_EQ(restored.stats.min_device_owned_bytes, 678);
  EXPECT_DOUBLE_EQ(restored.stats.planning_seconds, plan.stats.planning_seconds);
  EXPECT_DOUBLE_EQ(restored.stats.partition_cost, plan.stats.partition_cost);
}

// Version 1 text (no owned-bytes pair on the STATS line) must keep parsing:
// stored plans outlive codec bumps.
TEST(PlanSerialization, TextVersion1StillParses) {
  std::string v2 = SerializePlan(MakeTestPlan());
  const size_t stats_pos = v2.find("STATS ");
  ASSERT_NE(stats_pos, std::string::npos);
  const size_t stats_end = v2.find('\n', stats_pos);
  // Drop the last two numbers of the STATS line and downgrade the header.
  size_t cut = stats_end;
  for (int spaces = 0; spaces < 2; ++spaces) {
    cut = v2.rfind(' ', cut - 1);
    ASSERT_NE(cut, std::string::npos);
  }
  std::string v1 = v2.substr(0, cut) + v2.substr(stats_end);
  const size_t header = v1.find("DCPPLAN 2");
  ASSERT_EQ(header, 0u);
  v1[std::string("DCPPLAN ").size()] = '1';

  StatusOr<BatchPlan> parsed = DeserializePlan(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().stats.max_device_owned_bytes, 0);
  EXPECT_EQ(parsed.value().stats.min_device_owned_bytes, 0);
  EXPECT_EQ(parsed.value().stats.total_comm_bytes,
            MakeTestPlan().stats.total_comm_bytes);
}

// Malformed text must come back as a recoverable DATA_LOSS Status — never an abort,
// never a silently zero-filled plan.
TEST(PlanSerialization, MalformedTextReturnsErrorStatusInsteadOfAborting) {
  const std::string good = SerializePlan(MakeTestPlan());

  // Truncation at every line boundary (the text format's natural section boundaries).
  for (size_t pos = good.find('\n'); pos != std::string::npos;
       pos = good.find('\n', pos + 1)) {
    if (pos + 1 == good.size()) {
      break;  // Full text: valid by construction.
    }
    StatusOr<BatchPlan> truncated = DeserializePlan(good.substr(0, pos));
    EXPECT_FALSE(truncated.ok()) << "truncation at byte " << pos << " was accepted";
    EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  }

  const struct {
    const char* name;
    std::string text;
  } cases[] = {
      {"empty", ""},
      {"bad header", "NOTAPLAN 1\n"},
      {"bad version", "DCPPLAN 7\n"},
      {"header only", "DCPPLAN 1\n"},
      {"wrong section tag", "DCPPLAN 1\nWRONG 16 2 2 8 2 1\n"},
      {"non-numeric field", "DCPPLAN 1\nLAYOUT banana 2 2 8 2 1\n"},
      {"implausible count", "DCPPLAN 1\nLAYOUT 16 2 2 8 2 999999999999\nSEQLENS"},
      {"trailing garbage", good + "EXTRA\n"},
  };
  for (const auto& c : cases) {
    StatusOr<BatchPlan> parsed = DeserializePlan(c.text);
    EXPECT_FALSE(parsed.ok()) << c.name;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << c.name;
  }

  // Out-of-range enums are rejected even when the stream stays well-formed: corrupt a
  // block-ref kind digit inside an instruction item line.
  std::string bad_enum = good;
  const size_t attn = bad_enum.find("\nA ");
  ASSERT_NE(attn, std::string::npos);
  bad_enum[attn + 3] = '9';  // First digit of the BufKind: 9 is out of range.
  StatusOr<BatchPlan> parsed = DeserializePlan(bad_enum);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(PlanSerialization, BinaryRoundTripAndCompactness) {
  const BatchPlan plan = MakeTestPlan();
  const std::string bytes = SerializePlanBinary(plan);
  StatusOr<BatchPlan> restored = DeserializePlanBinary(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SerializePlan(restored.value()), SerializePlan(plan));
  // Binary re-serializes bit-identically and beats the text encoding on size.
  EXPECT_EQ(SerializePlanBinary(restored.value()), bytes);
  EXPECT_LT(bytes.size(), SerializePlan(plan).size());
}

TEST(PlanToString, MentionsDevicesAndInstructionKinds) {
  BatchPlan plan = MakeTestPlan();
  const std::string text = PlanToString(plan);
  EXPECT_NE(text.find("BatchPlan: 4 devices"), std::string::npos);
  EXPECT_NE(text.find("device 0"), std::string::npos);
  EXPECT_NE(text.find("BlockwiseAttention"), std::string::npos);
}

TEST(Names, AllEnumsHaveNames) {
  EXPECT_EQ(BufKindName(BufKind::kQ), "Q");
  EXPECT_EQ(BufKindName(BufKind::kDKV), "dKV");
  EXPECT_EQ(InstrKindName(InstrKind::kCommLaunch), "CommLaunch");
  EXPECT_EQ(ReduceModeName(ReduceMode::kFinalize), "Finalize");
}

}  // namespace
}  // namespace dcp
