// Wire-level tests for the planning service: ServiceAddress parsing, the
// length-prefixed CRC32 framing over real sockets, and the request/response message
// codecs — round-trips, truncation at every prefix, and bit-flip robustness. The
// invariant under test is the same one the plan store enforces on disk: malformed
// bytes are a recoverable DATA_LOSS, never an abort and never a silently-wrong message.
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "service/frame.h"
#include "service/plan_server.h"
#include "service/transport.h"

namespace dcp {
namespace {

TEST(ServiceAddress, ParsesTcpAndUnix) {
  StatusOr<ServiceAddress> tcp = ServiceAddress::Parse("tcp:127.0.0.1:7070");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().kind, ServiceAddress::Kind::kTcp);
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 7070);
  EXPECT_EQ(tcp.value().ToString(), "tcp:127.0.0.1:7070");

  StatusOr<ServiceAddress> unix_addr = ServiceAddress::Parse("unix:/tmp/dcp.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_EQ(unix_addr.value().kind, ServiceAddress::Kind::kUnix);
  EXPECT_EQ(unix_addr.value().path, "/tmp/dcp.sock");
  EXPECT_EQ(unix_addr.value().ToString(), "unix:/tmp/dcp.sock");
}

TEST(ServiceAddress, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "tcp:", "tcp:127.0.0.1", "tcp:127.0.0.1:", "tcp::7070", "tcp:host:badport",
        "tcp:127.0.0.1:99999999", "unix:", "http://x", "127.0.0.1:7070"}) {
    EXPECT_FALSE(ServiceAddress::Parse(spec).ok()) << spec;
  }
}

PlanServiceRequest MakeRequest() {
  PlanServiceRequest request;
  request.tenant = "prod";
  request.seqlens = {64, 32, 17};
  request.mask_spec = MaskSpec::Lambda(4, 13);
  request.block_size = 16;
  return request;
}

void ExpectRequestsEqual(const PlanServiceRequest& a, const PlanServiceRequest& b) {
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.seqlens, b.seqlens);
  EXPECT_EQ(a.mask_spec.kind, b.mask_spec.kind);
  EXPECT_EQ(a.mask_spec.sink_tokens, b.mask_spec.sink_tokens);
  EXPECT_EQ(a.mask_spec.window_tokens, b.mask_spec.window_tokens);
  EXPECT_EQ(a.mask_spec.icl_block_tokens, b.mask_spec.icl_block_tokens);
  EXPECT_EQ(a.mask_spec.num_answers, b.mask_spec.num_answers);
  EXPECT_DOUBLE_EQ(a.mask_spec.answer_fraction, b.mask_spec.answer_fraction);
  EXPECT_EQ(a.block_size, b.block_size);
}

TEST(ServiceMessages, PlanRequestRoundTripsForEveryMaskKind) {
  for (MaskKind kind : AllMaskKinds()) {
    PlanServiceRequest request = MakeRequest();
    request.mask_spec = MaskSpec::ForKind(kind);
    const std::string bytes = SerializePlanServiceRequest(request);
    StatusOr<PlanServiceRequest> decoded = DeserializePlanServiceRequest(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectRequestsEqual(request, decoded.value());
  }
}

TEST(ServiceMessages, PlanRequestTruncationAlwaysRejected) {
  const std::string bytes = SerializePlanServiceRequest(MakeRequest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<PlanServiceRequest> decoded =
        DeserializePlanServiceRequest(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DeserializePlanServiceRequest(bytes + "x").ok());
}

TEST(ServiceMessages, PlanRequestBitFlipsNeverCrash) {
  const std::string bytes = SerializePlanServiceRequest(MakeRequest());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      // Must return (ok or not), never abort; a flip that survives decoding must be a
      // flip that changed a value, not the structure.
      (void)DeserializePlanServiceRequest(corrupt);
    }
  }
}

TEST(ServiceMessages, PlanResponseRoundTripsAndValidates) {
  PlanServiceResponse response;
  response.code = StatusCode::kOk;
  response.source = PlanServeSource::kStoreCache;
  response.signature_lo = 0x1234567890abcdefULL;
  response.signature_hi = 0xfedcba0987654321ULL;
  response.record = std::string("record-bytes\x00\x7f\xff", 15);
  const std::string bytes = SerializePlanServiceResponse(response);
  StatusOr<PlanServiceResponse> decoded = DeserializePlanServiceResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().code, response.code);
  EXPECT_EQ(decoded.value().source, response.source);
  EXPECT_EQ(decoded.value().signature_lo, response.signature_lo);
  EXPECT_EQ(decoded.value().signature_hi, response.signature_hi);
  EXPECT_EQ(decoded.value().record, response.record);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializePlanServiceResponse(bytes.substr(0, len)).ok());
  }
  EXPECT_FALSE(DeserializePlanServiceResponse(bytes + "y").ok());

  // Error responses carry the status code + message through the codec.
  PlanServiceResponse error;
  error.code = StatusCode::kUnavailable;
  error.message = "server overloaded";
  StatusOr<PlanServiceResponse> decoded_error =
      DeserializePlanServiceResponse(SerializePlanServiceResponse(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded_error.value().message, "server overloaded");
}

TEST(ServiceMessages, StatsResponseRoundTrips) {
  PlanServiceStatsResponse response;
  response.connections_accepted = 3;
  response.requests_received = 41;
  response.responses_sent = 40;
  response.rejected_overload = 1;
  response.malformed_frames = 2;
  for (int t = 0; t < 3; ++t) {
    PlanServiceTenantStats tenant;
    tenant.tenant = "tenant-" + std::to_string(t);
    tenant.requests = 10 + t;
    tenant.cache_hits = 5 * t;
    tenant.cache_misses = 7 - t;
    tenant.store_writes = t;
    response.tenants.push_back(tenant);
  }
  const std::string bytes = SerializePlanServiceStatsResponse(response);
  StatusOr<PlanServiceStatsResponse> decoded =
      DeserializePlanServiceStatsResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().requests_received, 41);
  ASSERT_EQ(decoded.value().tenants.size(), 3u);
  EXPECT_EQ(decoded.value().tenants[1].tenant, "tenant-1");
  EXPECT_EQ(decoded.value().tenants[1].requests, 11);
  EXPECT_EQ(decoded.value().tenants[2].cache_hits, 10);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializePlanServiceStatsResponse(bytes.substr(0, len)).ok());
  }

  const std::string stats_req =
      SerializePlanServiceStatsRequest(PlanServiceStatsRequest{"prod"});
  StatusOr<PlanServiceStatsRequest> req = DeserializePlanServiceStatsRequest(stats_req);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().tenant, "prod");
}

// A connected AF_UNIX socket pair wrapped in the transport's Socket class, for framing
// tests without a listener.
std::pair<Socket, Socket> MakeSocketPair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(ServiceFrame, RoundTripsOverSocket) {
  auto [a, b] = MakeSocketPair();
  const std::string payload = "hello plan service \x01\x02\x00 frame";
  ASSERT_TRUE(WriteFrame(a, FrameType::kPlanRequest, payload).ok());
  StatusOr<Frame> frame = ReadFrame(b);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().type, FrameType::kPlanRequest);
  EXPECT_EQ(frame.value().payload, payload);

  // Empty payloads frame fine too.
  ASSERT_TRUE(WriteFrame(b, FrameType::kStatsRequest, "").ok());
  StatusOr<Frame> empty = ReadFrame(a);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().payload, "");
}

TEST(ServiceFrame, CorruptFramesRejectedAsDataLoss) {
  const std::string encoded = EncodeFrame(FrameType::kPlanRequest, "payload-bytes");
  // Flip every bit of the frame: the reader must reject (header damage) or fail the
  // CRC (payload damage) — it must never return a frame with altered bytes.
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = encoded;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto [a, b] = MakeSocketPair();
      ASSERT_TRUE(a.SendAll(corrupt).ok());
      a.Close();  // Flush + EOF so length-extending flips read as truncation.
      StatusOr<Frame> frame = ReadFrame(b);
      EXPECT_FALSE(frame.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(ServiceFrame, TruncationAndCleanCloseDistinguished) {
  const std::string encoded = EncodeFrame(FrameType::kPlanRequest, "payload");
  // Close mid-frame at every prefix: DATA_LOSS (torn frame).
  for (size_t len = 1; len < encoded.size(); ++len) {
    auto [a, b] = MakeSocketPair();
    ASSERT_TRUE(a.SendAll(encoded.substr(0, len)).ok());
    a.Close();
    StatusOr<Frame> frame = ReadFrame(b);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss) << "prefix " << len;
  }
  // Clean close between frames: UNAVAILABLE (peer hung up, nothing torn).
  auto [a, b] = MakeSocketPair();
  a.Close();
  StatusOr<Frame> frame = ReadFrame(b);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(ServiceFrame, OversizedLengthRejectedBeforeAllocation) {
  // Hand-build a header claiming a 1 EiB payload; the reader must reject on the
  // length field without trying to read or allocate it.
  std::string header = EncodeFrame(FrameType::kPlanRequest, "");
  header.resize(16);  // Keep only the header (drop the CRC).
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<char>(0xff);
  }
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(a.SendAll(header).ok());
  StatusOr<Frame> frame = ReadFrame(b);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
}

TEST(ServiceTransport, ListenerRoundTripAndEphemeralPort) {
  StatusOr<Listener> listener = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0));
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener.value().bound_address().port, 0);

  StatusOr<Socket> client = ConnectSocket(listener.value().bound_address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  StatusOr<Socket> served = listener.value().Accept(/*timeout_ms=*/2000);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  ASSERT_TRUE(WriteFrame(client.value(), FrameType::kStatsRequest, "ping").ok());
  StatusOr<Frame> frame = ReadFrame(served.value());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, "ping");
}

TEST(ServiceAddress, PortZeroRejectedAtParseWithActionableMessage) {
  // tcp:host:0 used to parse fine and then bind an ephemeral port the operator never
  // learns (or dial port 0 and fail deep in connect); it must die at parse instead.
  const StatusOr<ServiceAddress> port0 = ServiceAddress::Parse("tcp:127.0.0.1:0");
  ASSERT_FALSE(port0.ok());
  EXPECT_EQ(port0.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(port0.status().message().find("1..65535"), std::string::npos)
      << port0.status().message();
}

TEST(ServiceAddress, PortRangeBoundaries) {
  StatusOr<ServiceAddress> top = ServiceAddress::Parse("tcp:127.0.0.1:65535");
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(top.value().port, 65535);
  EXPECT_FALSE(ServiceAddress::Parse("tcp:127.0.0.1:65536").ok());
  EXPECT_FALSE(ServiceAddress::Parse("tcp:127.0.0.1:-1").ok());
}

TEST(ServiceFrame, FramePartsMatchContiguousEncodingWithoutCopyingTheBody) {
  const std::string head_payload = "response-head";
  auto body = std::make_shared<const std::string>("shared record bytes \x00\x7f", 22);
  FrameParts parts = EncodeFrameParts(FrameType::kPlanResponse, head_payload, body);
  // The body rides by reference: same string object, not a copy.
  EXPECT_EQ(parts.body.get(), body.get());
  // head ++ *body ++ crc is bit-identical to the contiguous encoder on the
  // concatenated payload, so readers cannot tell the two writers apart.
  EXPECT_EQ(FlattenFrameParts(parts),
            EncodeFrame(FrameType::kPlanResponse, head_payload + *body));
  // Body-less parts (error responses) flatten correctly too.
  FrameParts head_only = EncodeFrameParts(FrameType::kErrorResponse, head_payload);
  EXPECT_EQ(FlattenFrameParts(head_only),
            EncodeFrame(FrameType::kErrorResponse, head_payload));
}

TEST(ServiceMessages, ResponseHeadPlusRecordMatchesFullSerialization) {
  PlanServiceResponse full;
  full.code = StatusCode::kOk;
  full.source = PlanServeSource::kMemoryCache;
  full.signature_lo = 0x1122334455667788ULL;
  full.signature_hi = 0x99aabbccddeeff00ULL;
  full.record = std::string("record\x00\xff payload", 16);

  PlanServiceResponse head_response = full;
  head_response.record.clear();
  const std::string head =
      SerializePlanServiceResponseHead(head_response, full.record.size());
  EXPECT_EQ(head + full.record, SerializePlanServiceResponse(full));
}

TEST(ServiceMessages, RequestViewDecodesIdenticallyInOneArenaBlock) {
  PlanServiceRequest request = MakeRequest();
  request.seqlens = {4096, 1, 777, 65536, 3};
  request.deadline_ms = 250;
  const std::string bytes = SerializePlanServiceRequest(request);

  Arena arena;
  StatusOr<PlanServiceRequestView> view =
      DeserializePlanServiceRequestView(bytes, &arena);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().tenant, request.tenant);
  EXPECT_EQ(std::vector<int64_t>(view.value().seqlens.begin(),
                                 view.value().seqlens.end()),
            request.seqlens);
  EXPECT_EQ(view.value().mask_spec.kind, request.mask_spec.kind);
  EXPECT_EQ(view.value().block_size, request.block_size);
  EXPECT_EQ(view.value().deadline_ms, request.deadline_ms);
  // Zero-copy decode: the tenant aliases the wire bytes and the seqlens are one
  // exactly-sized arena array — one block, no per-field heap allocations.
  EXPECT_GE(view.value().tenant.data(), bytes.data());
  EXPECT_LT(view.value().tenant.data(), bytes.data() + bytes.size());
  EXPECT_EQ(arena.block_count(), 1u);

  // Same validation as the owning decoder: every truncation rejected.
  for (size_t len = 0; len < bytes.size(); ++len) {
    Arena scratch;
    EXPECT_FALSE(
        DeserializePlanServiceRequestView(bytes.substr(0, len), &scratch).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(ServiceFrame, AssemblerReassemblesFramesFedByteByByte) {
  const std::string first = EncodeFrame(FrameType::kPlanRequest, "alpha");
  const std::string second = EncodeFrame(FrameType::kStatsRequest, "");
  const std::string third =
      EncodeFrame(FrameType::kPlanResponse, std::string(1000, 'r'));
  const std::string stream = first + second + third;

  FrameAssembler assembler;
  std::vector<Frame> frames;
  for (size_t i = 0; i < stream.size(); ++i) {
    assembler.Append(stream.data() + i, 1);
    while (true) {
      StatusOr<Frame> frame = assembler.Next();
      if (!frame.ok()) {
        EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
        break;
      }
      frames.push_back(std::move(frame).value());
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kPlanRequest);
  EXPECT_EQ(frames[0].payload, "alpha");
  EXPECT_EQ(frames[1].type, FrameType::kStatsRequest);
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].payload, std::string(1000, 'r'));
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  EXPECT_FALSE(assembler.failed());
}

TEST(ServiceFrame, AssemblerFailureIsSticky) {
  std::string corrupt = EncodeFrame(FrameType::kPlanRequest, "payload");
  corrupt[corrupt.size() - 1] ^= 0x01;  // Break the CRC.
  FrameAssembler assembler;
  assembler.Append(corrupt.data(), corrupt.size());
  StatusOr<Frame> frame = assembler.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(assembler.failed());
  // A desynced stream stays failed: even appending a pristine frame cannot recover.
  const std::string good = EncodeFrame(FrameType::kPlanRequest, "good");
  assembler.Append(good.data(), good.size());
  StatusOr<Frame> after = assembler.Next();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kDataLoss);
}

TEST(ServiceFrame, AssemblerRejectsBadHeaderBeforePayloadArrives) {
  // 16 header bytes claiming an oversized payload must fail immediately — the
  // assembler must not wait for (or buffer toward) a petabyte that never comes.
  std::string header = EncodeFrame(FrameType::kPlanRequest, "");
  header.resize(16);
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<char>(0xff);
  }
  FrameAssembler assembler(/*max_payload_bytes=*/1 << 20);
  assembler.Append(header.data(), header.size());
  StatusOr<Frame> frame = assembler.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
}

TEST(ServiceMessages, PlanRequestTraceIdRoundTripsAndV2StillParses) {
  PlanServiceRequest request = MakeRequest();
  request.trace_id = 0xabcdef0123456789ULL;
  const std::string bytes = SerializePlanServiceRequest(request);
  StatusOr<PlanServiceRequest> decoded = DeserializePlanServiceRequest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().trace_id, request.trace_id);

  // A v2 peer's encoding is exactly the v3 body minus the trailing trace id,
  // with the leading version word patched down. It must still parse, with
  // trace_id defaulting to 0 (= "untraced").
  ASSERT_GT(bytes.size(), 12u);
  std::string v2 = bytes.substr(0, bytes.size() - 8);
  v2[0] = 2;
  v2[1] = v2[2] = v2[3] = 0;
  StatusOr<PlanServiceRequest> old = DeserializePlanServiceRequest(v2);
  ASSERT_TRUE(old.ok()) << old.status().ToString();
  ExpectRequestsEqual(request, old.value());
  EXPECT_EQ(old.value().trace_id, 0u);

  // The zero-copy view decoder applies the same version gate.
  Arena arena;
  StatusOr<PlanServiceRequestView> view =
      DeserializePlanServiceRequestView(v2, &arena);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().trace_id, 0u);
  Arena arena_v3;
  StatusOr<PlanServiceRequestView> view_v3 =
      DeserializePlanServiceRequestView(bytes, &arena_v3);
  ASSERT_TRUE(view_v3.ok());
  EXPECT_EQ(view_v3.value().trace_id, request.trace_id);

  // A message claiming v2 but carrying the v3 trailer has trailing garbage.
  std::string v2_with_trailer = bytes;
  v2_with_trailer[0] = 2;
  EXPECT_FALSE(DeserializePlanServiceRequest(v2_with_trailer).ok());

  // Versions outside [min, current] are rejected in both directions.
  std::string v1 = v2;
  v1[0] = 1;
  EXPECT_FALSE(DeserializePlanServiceRequest(v1).ok());
  std::string v4 = bytes;
  v4[0] = 4;
  EXPECT_FALSE(DeserializePlanServiceRequest(v4).ok());
}

TEST(ServiceMessages, MetricsMessagesRoundTripAndRejectTruncation) {
  PlanServiceMetricsRequest request;
  request.name_prefix = "dcp_server_";
  const std::string request_bytes = SerializePlanServiceMetricsRequest(request);
  StatusOr<PlanServiceMetricsRequest> decoded_request =
      DeserializePlanServiceMetricsRequest(request_bytes);
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status().ToString();
  EXPECT_EQ(decoded_request.value().name_prefix, request.name_prefix);
  for (size_t len = 0; len < request_bytes.size(); ++len) {
    EXPECT_FALSE(
        DeserializePlanServiceMetricsRequest(request_bytes.substr(0, len)).ok());
  }
  EXPECT_FALSE(DeserializePlanServiceMetricsRequest(request_bytes + "x").ok());
  // The prefix is a metric name, not a document: oversized prefixes rejected.
  PlanServiceMetricsRequest oversized;
  oversized.name_prefix.assign(10000, 'a');
  EXPECT_FALSE(DeserializePlanServiceMetricsRequest(
                   SerializePlanServiceMetricsRequest(oversized))
                   .ok());

  PlanServiceMetricsResponse response;
  response.code = StatusCode::kOk;
  response.text = "# HELP dcp_x_total x\n# TYPE dcp_x_total counter\ndcp_x_total 7\n";
  const std::string response_bytes = SerializePlanServiceMetricsResponse(response);
  StatusOr<PlanServiceMetricsResponse> decoded_response =
      DeserializePlanServiceMetricsResponse(response_bytes);
  ASSERT_TRUE(decoded_response.ok()) << decoded_response.status().ToString();
  EXPECT_EQ(decoded_response.value().code, StatusCode::kOk);
  EXPECT_EQ(decoded_response.value().text, response.text);
  for (size_t len = 0; len < response_bytes.size(); ++len) {
    EXPECT_FALSE(
        DeserializePlanServiceMetricsResponse(response_bytes.substr(0, len)).ok());
  }
  EXPECT_FALSE(DeserializePlanServiceMetricsResponse(response_bytes + "y").ok());

  // Error shape: a non-OK code with a message and no text.
  PlanServiceMetricsResponse error;
  error.code = StatusCode::kFailedPrecondition;
  error.message = "metrics disabled";
  StatusOr<PlanServiceMetricsResponse> decoded_error =
      DeserializePlanServiceMetricsResponse(
          SerializePlanServiceMetricsResponse(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded_error.value().message, "metrics disabled");
  EXPECT_TRUE(decoded_error.value().text.empty());
}

TEST(ServiceTransport, ConnectToDeadEndpointIsUnavailable) {
  // Bind (grabbing a port) and immediately close, then connect to the dead port.
  StatusOr<Listener> listener = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0));
  ASSERT_TRUE(listener.ok());
  const ServiceAddress address = listener.value().bound_address();
  listener.value().Close();
  StatusOr<Socket> client = ConnectSocket(address);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace dcp
