// Wire-level tests for the planning service: ServiceAddress parsing, the
// length-prefixed CRC32 framing over real sockets, and the request/response message
// codecs — round-trips, truncation at every prefix, and bit-flip robustness. The
// invariant under test is the same one the plan store enforces on disk: malformed
// bytes are a recoverable DATA_LOSS, never an abort and never a silently-wrong message.
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/frame.h"
#include "service/plan_server.h"
#include "service/transport.h"

namespace dcp {
namespace {

TEST(ServiceAddress, ParsesTcpAndUnix) {
  StatusOr<ServiceAddress> tcp = ServiceAddress::Parse("tcp:127.0.0.1:7070");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().kind, ServiceAddress::Kind::kTcp);
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 7070);
  EXPECT_EQ(tcp.value().ToString(), "tcp:127.0.0.1:7070");

  StatusOr<ServiceAddress> unix_addr = ServiceAddress::Parse("unix:/tmp/dcp.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_EQ(unix_addr.value().kind, ServiceAddress::Kind::kUnix);
  EXPECT_EQ(unix_addr.value().path, "/tmp/dcp.sock");
  EXPECT_EQ(unix_addr.value().ToString(), "unix:/tmp/dcp.sock");
}

TEST(ServiceAddress, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "tcp:", "tcp:127.0.0.1", "tcp:127.0.0.1:", "tcp::7070", "tcp:host:badport",
        "tcp:127.0.0.1:99999999", "unix:", "http://x", "127.0.0.1:7070"}) {
    EXPECT_FALSE(ServiceAddress::Parse(spec).ok()) << spec;
  }
}

PlanServiceRequest MakeRequest() {
  PlanServiceRequest request;
  request.tenant = "prod";
  request.seqlens = {64, 32, 17};
  request.mask_spec = MaskSpec::Lambda(4, 13);
  request.block_size = 16;
  return request;
}

void ExpectRequestsEqual(const PlanServiceRequest& a, const PlanServiceRequest& b) {
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.seqlens, b.seqlens);
  EXPECT_EQ(a.mask_spec.kind, b.mask_spec.kind);
  EXPECT_EQ(a.mask_spec.sink_tokens, b.mask_spec.sink_tokens);
  EXPECT_EQ(a.mask_spec.window_tokens, b.mask_spec.window_tokens);
  EXPECT_EQ(a.mask_spec.icl_block_tokens, b.mask_spec.icl_block_tokens);
  EXPECT_EQ(a.mask_spec.num_answers, b.mask_spec.num_answers);
  EXPECT_DOUBLE_EQ(a.mask_spec.answer_fraction, b.mask_spec.answer_fraction);
  EXPECT_EQ(a.block_size, b.block_size);
}

TEST(ServiceMessages, PlanRequestRoundTripsForEveryMaskKind) {
  for (MaskKind kind : AllMaskKinds()) {
    PlanServiceRequest request = MakeRequest();
    request.mask_spec = MaskSpec::ForKind(kind);
    const std::string bytes = SerializePlanServiceRequest(request);
    StatusOr<PlanServiceRequest> decoded = DeserializePlanServiceRequest(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectRequestsEqual(request, decoded.value());
  }
}

TEST(ServiceMessages, PlanRequestTruncationAlwaysRejected) {
  const std::string bytes = SerializePlanServiceRequest(MakeRequest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<PlanServiceRequest> decoded =
        DeserializePlanServiceRequest(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DeserializePlanServiceRequest(bytes + "x").ok());
}

TEST(ServiceMessages, PlanRequestBitFlipsNeverCrash) {
  const std::string bytes = SerializePlanServiceRequest(MakeRequest());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      // Must return (ok or not), never abort; a flip that survives decoding must be a
      // flip that changed a value, not the structure.
      (void)DeserializePlanServiceRequest(corrupt);
    }
  }
}

TEST(ServiceMessages, PlanResponseRoundTripsAndValidates) {
  PlanServiceResponse response;
  response.code = StatusCode::kOk;
  response.source = PlanServeSource::kStoreCache;
  response.signature_lo = 0x1234567890abcdefULL;
  response.signature_hi = 0xfedcba0987654321ULL;
  response.record = std::string("record-bytes\x00\x7f\xff", 15);
  const std::string bytes = SerializePlanServiceResponse(response);
  StatusOr<PlanServiceResponse> decoded = DeserializePlanServiceResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().code, response.code);
  EXPECT_EQ(decoded.value().source, response.source);
  EXPECT_EQ(decoded.value().signature_lo, response.signature_lo);
  EXPECT_EQ(decoded.value().signature_hi, response.signature_hi);
  EXPECT_EQ(decoded.value().record, response.record);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializePlanServiceResponse(bytes.substr(0, len)).ok());
  }
  EXPECT_FALSE(DeserializePlanServiceResponse(bytes + "y").ok());

  // Error responses carry the status code + message through the codec.
  PlanServiceResponse error;
  error.code = StatusCode::kUnavailable;
  error.message = "server overloaded";
  StatusOr<PlanServiceResponse> decoded_error =
      DeserializePlanServiceResponse(SerializePlanServiceResponse(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded_error.value().message, "server overloaded");
}

TEST(ServiceMessages, StatsResponseRoundTrips) {
  PlanServiceStatsResponse response;
  response.connections_accepted = 3;
  response.requests_received = 41;
  response.responses_sent = 40;
  response.rejected_overload = 1;
  response.malformed_frames = 2;
  for (int t = 0; t < 3; ++t) {
    PlanServiceTenantStats tenant;
    tenant.tenant = "tenant-" + std::to_string(t);
    tenant.requests = 10 + t;
    tenant.cache_hits = 5 * t;
    tenant.cache_misses = 7 - t;
    tenant.store_writes = t;
    response.tenants.push_back(tenant);
  }
  const std::string bytes = SerializePlanServiceStatsResponse(response);
  StatusOr<PlanServiceStatsResponse> decoded =
      DeserializePlanServiceStatsResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().requests_received, 41);
  ASSERT_EQ(decoded.value().tenants.size(), 3u);
  EXPECT_EQ(decoded.value().tenants[1].tenant, "tenant-1");
  EXPECT_EQ(decoded.value().tenants[1].requests, 11);
  EXPECT_EQ(decoded.value().tenants[2].cache_hits, 10);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializePlanServiceStatsResponse(bytes.substr(0, len)).ok());
  }

  const std::string stats_req =
      SerializePlanServiceStatsRequest(PlanServiceStatsRequest{"prod"});
  StatusOr<PlanServiceStatsRequest> req = DeserializePlanServiceStatsRequest(stats_req);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().tenant, "prod");
}

// A connected AF_UNIX socket pair wrapped in the transport's Socket class, for framing
// tests without a listener.
std::pair<Socket, Socket> MakeSocketPair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(ServiceFrame, RoundTripsOverSocket) {
  auto [a, b] = MakeSocketPair();
  const std::string payload = "hello plan service \x01\x02\x00 frame";
  ASSERT_TRUE(WriteFrame(a, FrameType::kPlanRequest, payload).ok());
  StatusOr<Frame> frame = ReadFrame(b);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().type, FrameType::kPlanRequest);
  EXPECT_EQ(frame.value().payload, payload);

  // Empty payloads frame fine too.
  ASSERT_TRUE(WriteFrame(b, FrameType::kStatsRequest, "").ok());
  StatusOr<Frame> empty = ReadFrame(a);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().payload, "");
}

TEST(ServiceFrame, CorruptFramesRejectedAsDataLoss) {
  const std::string encoded = EncodeFrame(FrameType::kPlanRequest, "payload-bytes");
  // Flip every bit of the frame: the reader must reject (header damage) or fail the
  // CRC (payload damage) — it must never return a frame with altered bytes.
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = encoded;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto [a, b] = MakeSocketPair();
      ASSERT_TRUE(a.SendAll(corrupt).ok());
      a.Close();  // Flush + EOF so length-extending flips read as truncation.
      StatusOr<Frame> frame = ReadFrame(b);
      EXPECT_FALSE(frame.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(ServiceFrame, TruncationAndCleanCloseDistinguished) {
  const std::string encoded = EncodeFrame(FrameType::kPlanRequest, "payload");
  // Close mid-frame at every prefix: DATA_LOSS (torn frame).
  for (size_t len = 1; len < encoded.size(); ++len) {
    auto [a, b] = MakeSocketPair();
    ASSERT_TRUE(a.SendAll(encoded.substr(0, len)).ok());
    a.Close();
    StatusOr<Frame> frame = ReadFrame(b);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss) << "prefix " << len;
  }
  // Clean close between frames: UNAVAILABLE (peer hung up, nothing torn).
  auto [a, b] = MakeSocketPair();
  a.Close();
  StatusOr<Frame> frame = ReadFrame(b);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(ServiceFrame, OversizedLengthRejectedBeforeAllocation) {
  // Hand-build a header claiming a 1 EiB payload; the reader must reject on the
  // length field without trying to read or allocate it.
  std::string header = EncodeFrame(FrameType::kPlanRequest, "");
  header.resize(16);  // Keep only the header (drop the CRC).
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<char>(0xff);
  }
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(a.SendAll(header).ok());
  StatusOr<Frame> frame = ReadFrame(b);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
}

TEST(ServiceTransport, ListenerRoundTripAndEphemeralPort) {
  StatusOr<Listener> listener = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0));
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener.value().bound_address().port, 0);

  StatusOr<Socket> client = ConnectSocket(listener.value().bound_address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  StatusOr<Socket> served = listener.value().Accept(/*timeout_ms=*/2000);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  ASSERT_TRUE(WriteFrame(client.value(), FrameType::kStatsRequest, "ping").ok());
  StatusOr<Frame> frame = ReadFrame(served.value());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, "ping");
}

TEST(ServiceTransport, ConnectToDeadEndpointIsUnavailable) {
  // Bind (grabbing a port) and immediately close, then connect to the dead port.
  StatusOr<Listener> listener = Listener::Bind(ServiceAddress::Tcp("127.0.0.1", 0));
  ASSERT_TRUE(listener.ok());
  const ServiceAddress address = listener.value().bound_address();
  listener.value().Close();
  StatusOr<Socket> client = ConnectSocket(address);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace dcp
