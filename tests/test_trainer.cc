#include "e2e/trainer.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

TrainerConfig QuickConfig(MaskKind kind, int iterations = 40) {
  TrainerConfig config;
  config.iterations = iterations;
  config.mask = MaskSpec::ForKind(kind);
  config.mask.sink_tokens = 4;
  config.mask.window_tokens = 12;
  config.mask.icl_block_tokens = 8;
  return config;
}

TEST(Trainer, LossDecreasesWithReferenceEngine) {
  const std::vector<double> losses =
      TrainLossCurve(QuickConfig(MaskKind::kCausal, 60), AttentionEngineKind::kReference);
  ASSERT_EQ(losses.size(), 60u);
  EXPECT_LT(losses.back(), losses.front() * 0.8);
}

class TrainerParity : public ::testing::TestWithParam<MaskKind> {};

TEST_P(TrainerParity, DcpLossCurveTracksReference) {
  const TrainerConfig config = QuickConfig(GetParam());
  const std::vector<double> reference =
      TrainLossCurve(config, AttentionEngineKind::kReference);
  const std::vector<double> dcp = TrainLossCurve(config, AttentionEngineKind::kDcp);
  ASSERT_EQ(reference.size(), dcp.size());
  // Same data, same init, same updates: curves must coincide up to kernel-order float
  // error, which compounds slowly over iterations (paper Fig. 21 "small deviations").
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(dcp[i], reference[i], 0.02 + 0.02 * reference[i])
        << "iteration " << i;
  }
  EXPECT_NEAR(dcp.front(), reference.front(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, TrainerParity, ::testing::ValuesIn(AllMaskKinds()),
                         [](const ::testing::TestParamInfo<MaskKind>& info) {
                           return MaskKindName(info.param);
                         });

}  // namespace
}  // namespace dcp
