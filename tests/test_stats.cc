#include "common/stats.h"

#include <gtest/gtest.h>

namespace dcp {
namespace {

TEST(RunningStats, KnownSeries) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bin 0
  hist.Add(3.0);   // bin 1
  hist.Add(9.99);  // bin 4
  hist.Add(-5.0);  // clamped to bin 0
  hist.Add(42.0);  // clamped to bin 4
  EXPECT_EQ(hist.total(), 5);
  EXPECT_EQ(hist.bin_count(0), 2);
  EXPECT_EQ(hist.bin_count(1), 1);
  EXPECT_EQ(hist.bin_count(2), 0);
  EXPECT_EQ(hist.bin_count(4), 2);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(1), 4.0);
}

TEST(Histogram, AsciiRenderingHasOneRowPerBin) {
  Histogram hist(0.0, 4.0, 4);
  hist.Add(1.0);
  hist.Add(1.5);
  const std::string art = hist.ToAscii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 2.5);
}

}  // namespace
}  // namespace dcp
