#include "hypergraph/partitioner.h"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

// Random hypergraph with planted cluster structure: `k` groups of vertices, most edges
// internal to a group, a few crossing. A good partitioner should recover low cost.
Hypergraph MakeClustered(int k, int per_group, int edges_per_group, double cross_fraction,
                         Rng& rng) {
  Hypergraph hg;
  for (int v = 0; v < k * per_group; ++v) {
    hg.AddVertex(1.0 + rng.NextDouble(), 1.0 + rng.NextDouble());
  }
  for (int g = 0; g < k; ++g) {
    for (int e = 0; e < edges_per_group; ++e) {
      std::vector<VertexId> pins;
      const int size = 2 + static_cast<int>(rng.NextBounded(4));
      const bool cross = rng.NextDouble() < cross_fraction;
      for (int p = 0; p < size; ++p) {
        const int group = cross && p == 0 ? (g + 1) % k : g;
        pins.push_back(group * per_group + static_cast<int>(rng.NextBounded(
                                               static_cast<uint64_t>(per_group))));
      }
      std::sort(pins.begin(), pins.end());
      pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
      if (pins.size() >= 2) {
        hg.AddEdge(1.0 + rng.NextDouble() * 3.0, pins);
      }
    }
  }
  hg.Finalize();
  return hg;
}

class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(PartitionerProperty, MultilevelIsBalancedAndValid) {
  const auto [k, per_group, seed] = GetParam();
  Rng rng(seed);
  Hypergraph hg = MakeClustered(k, per_group, per_group * 2, 0.15, rng);
  PartitionConfig config;
  config.k = k;
  config.eps = {0.25, 0.25};
  config.seed = seed;
  auto partitioner = MakeMultilevelPartitioner();
  PartitionResult result = partitioner->Run(hg, config);
  ASSERT_EQ(static_cast<int>(result.part.size()), hg.num_vertices());
  for (PartId p : result.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, k);
  }
  EXPECT_TRUE(result.balanced) << "imbalance " << MaxImbalance(hg, result.part, k);
  EXPECT_DOUBLE_EQ(result.connectivity_cost, ConnectivityMinusOne(hg, result.part, k));
}

TEST_P(PartitionerProperty, MultilevelBeatsOrMatchesGreedy) {
  const auto [k, per_group, seed] = GetParam();
  Rng rng(seed + 1000);
  Hypergraph hg = MakeClustered(k, per_group, per_group * 2, 0.2, rng);
  PartitionConfig config;
  config.k = k;
  config.eps = {0.3, 0.3};
  config.seed = seed;
  const double multilevel =
      MakeMultilevelPartitioner()->Run(hg, config).connectivity_cost;
  const double greedy = MakeGreedyPartitioner()->Run(hg, config).connectivity_cost;
  EXPECT_LE(multilevel, greedy * 1.05 + 1e-9)
      << "multilevel much worse than greedy: " << multilevel << " vs " << greedy;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionerProperty,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(16, 64),
                       ::testing::Values<uint64_t>(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, uint64_t>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Partitioner, RecoversPlantedClustersWhenCrossTrafficIsZero) {
  Rng rng(5);
  Hypergraph hg = MakeClustered(4, 32, 80, 0.0, rng);
  PartitionConfig config;
  config.k = 4;
  config.eps = {0.3, 0.3};
  PartitionResult result = MakeMultilevelPartitioner()->Run(hg, config);
  // With zero cross edges a perfect partition has zero cost; accept near-zero.
  EXPECT_LE(result.connectivity_cost, 0.05 * hg.TotalEdgeWeight());
}

TEST(Partitioner, KEqualsOneIsTrivial) {
  Rng rng(6);
  Hypergraph hg = MakeClustered(2, 8, 10, 0.2, rng);
  PartitionConfig config;
  config.k = 1;
  PartitionResult result = MakeMultilevelPartitioner()->Run(hg, config);
  EXPECT_DOUBLE_EQ(result.connectivity_cost, 0.0);
  EXPECT_TRUE(result.balanced);
}

TEST(Partitioner, DeterministicForFixedSeed) {
  Rng rng(7);
  Hypergraph hg = MakeClustered(4, 24, 50, 0.2, rng);
  PartitionConfig config;
  config.k = 4;
  config.seed = 77;
  auto partitioner = MakeMultilevelPartitioner();
  PartitionResult a = partitioner->Run(hg, config);
  PartitionResult b = partitioner->Run(hg, config);
  EXPECT_EQ(a.part, b.part);
}

TEST(Partitioner, GreedyHandlesVerticesLargerThanTarget) {
  // One vertex holds most of the weight: cannot balance, but must not crash and must
  // produce a valid assignment.
  Hypergraph hg;
  hg.AddVertex(100.0, 100.0);
  hg.AddVertex(1.0, 1.0);
  hg.AddVertex(1.0, 1.0);
  hg.AddEdge(1.0, {0, 1, 2});
  hg.Finalize();
  PartitionConfig config;
  config.k = 2;
  config.eps = {0.1, 0.1};
  PartitionResult result = MakeGreedyPartitioner()->Run(hg, config);
  EXPECT_EQ(static_cast<int>(result.part.size()), 3);
  EXPECT_FALSE(result.balanced);  // Honestly reported as infeasible.
}

}  // namespace
}  // namespace dcp
