#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace dcp {
namespace metrics {
namespace {

TEST(HistogramBuckets, BoundariesAreHalfOpenPowersOfTwo) {
  // Bucket i holds (2^(i-1), 2^i]; bucket 0 additionally absorbs v <= 1.
  EXPECT_EQ(HistogramBucketFor(-5), 0);
  EXPECT_EQ(HistogramBucketFor(0), 0);
  EXPECT_EQ(HistogramBucketFor(1), 0);
  EXPECT_EQ(HistogramBucketFor(2), 1);
  EXPECT_EQ(HistogramBucketFor(3), 2);
  EXPECT_EQ(HistogramBucketFor(4), 2);
  EXPECT_EQ(HistogramBucketFor(5), 3);
  EXPECT_EQ(HistogramBucketFor(1024), 10);
  EXPECT_EQ(HistogramBucketFor(1025), 11);
  // Everything past the last finite bound lands in the +Inf bucket.
  EXPECT_EQ(HistogramBucketFor(int64_t{1} << 40), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketUpperMicros(0), 1);
  EXPECT_EQ(HistogramBucketUpperMicros(10), 1024);
}

TEST(Histogram, SnapshotCountsAndSum) {
  Histogram hist;
  hist.Record(1);
  hist.Record(3);
  hist.Record(3);
  hist.Record(100);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 4);
  EXPECT_EQ(snap.sum_micros, 107);
  EXPECT_EQ(snap.buckets[0], 1);
  EXPECT_EQ(snap.buckets[2], 2);
  EXPECT_EQ(snap.buckets[HistogramBucketFor(100)], 1);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram hist;
  // 100 samples uniformly "at" 3us: all land in bucket 2 = (2, 4].
  for (int i = 0; i < 100; ++i) hist.Record(3);
  const HistogramSnapshot snap = hist.Snapshot();
  const double p50 = snap.PercentileMicros(50);
  EXPECT_GT(p50, 2.0);
  EXPECT_LE(p50, 4.0);
  // p100 must be the bucket's upper edge, p~0 near its lower edge.
  EXPECT_DOUBLE_EQ(snap.PercentileMicros(100), 4.0);
  EXPECT_LE(snap.PercentileMicros(0.0001), 2.1);
}

TEST(Histogram, PercentileOrderingAcrossBuckets) {
  Histogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(3);     // bucket (2,4]
  for (int i = 0; i < 9; ++i) hist.Record(100);    // bucket (64,128]
  hist.Record(5000);                               // bucket (4096,8192]
  const HistogramSnapshot snap = hist.Snapshot();
  const double p50 = snap.PercentileMicros(50);
  const double p95 = snap.PercentileMicros(95);
  const double p99 = snap.PercentileMicros(99);
  EXPECT_LE(p50, 4.0);
  EXPECT_GT(p95, 64.0);
  EXPECT_LE(p95, 128.0);
  EXPECT_LE(p99, 128.0);
  EXPECT_GT(snap.PercentileMicros(99.9), 4096.0);
  EXPECT_EQ(snap.PercentileMicros(0), snap.PercentileMicros(0.0001));
}

TEST(Histogram, EmptyPercentileIsZero) {
  HistogramSnapshot snap;
  EXPECT_EQ(snap.PercentileMicros(99), 0.0);
  EXPECT_EQ(snap.count(), 0);
}

TEST(Histogram, MergeIsElementWise) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.Record(3);
  for (int i = 0; i < 20; ++i) b.Record(300);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count(), 30);
  EXPECT_EQ(merged.sum_micros, 10 * 3 + 20 * 300);
  // Merged distribution's p50 sits in b's bucket (20 of 30 samples).
  EXPECT_GT(merged.PercentileMicros(50), 256.0);
}

TEST(Registry, SamePointerForSameNameAndLabels) {
  Registry registry;
  Counter* a = registry.GetCounter("x_total", {{"t", "a"}});
  Counter* b = registry.GetCounter("x_total", {{"t", "a"}});
  Counter* c = registry.GetCounter("x_total", {{"t", "b"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order must not matter: labels are sorted at registration.
  Counter* d = registry.GetCounter("y_total", {{"k1", "v"}, {"k2", "w"}});
  Counter* e = registry.GetCounter("y_total", {{"k2", "w"}, {"k1", "v"}});
  EXPECT_EQ(d, e);
}

TEST(Registry, CountersGaugesRecord) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  counter->Increment();
  counter->Add(4);
  EXPECT_EQ(counter->value(), 5);
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(7);
  gauge->Add(-2);
  EXPECT_EQ(gauge->value(), 5);
}

TEST(Registry, RenderPrometheusBasics) {
  Registry registry;
  registry.GetCounter("dcp_test_requests_total", {{"tenant", "alpha"}},
                      "requests")->Add(3);
  registry.GetGauge("dcp_test_depth", {}, "queue depth")->Set(2);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP dcp_test_requests_total requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dcp_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dcp_test_requests_total{tenant=\"alpha\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dcp_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("dcp_test_depth 2"), std::string::npos);
}

TEST(Registry, RenderPrometheusHistogramInvariants) {
  Registry registry;
  Histogram* hist =
      registry.GetHistogram("dcp_test_lat_us", {{"source", "planned"}}, "lat");
  hist->Record(3);
  hist->Record(3);
  hist->Record(1000);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE dcp_test_lat_us histogram"), std::string::npos);
  // Cumulative buckets: le="4" already holds both 3us samples.
  EXPECT_NE(text.find("dcp_test_lat_us_bucket{source=\"planned\",le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dcp_test_lat_us_bucket{source=\"planned\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dcp_test_lat_us_count{source=\"planned\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dcp_test_lat_us_sum{source=\"planned\"} 1006"),
            std::string::npos);
}

TEST(Registry, ChildrenMergeWithConstLabels) {
  Registry parent;
  auto child_a = std::make_shared<Registry>(
      std::vector<Label>{{"tenant", "a"}});
  auto child_b = std::make_shared<Registry>(
      std::vector<Label>{{"tenant", "b"}});
  parent.Attach(child_a);
  parent.Attach(child_b);
  child_a->GetCounter("dcp_test_hits_total")->Add(2);
  child_b->GetCounter("dcp_test_hits_total")->Add(5);
  const std::string text = parent.RenderPrometheus();
  EXPECT_NE(text.find("dcp_test_hits_total{tenant=\"a\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dcp_test_hits_total{tenant=\"b\"} 5"), std::string::npos);

  // Identical (name, labels) series from two children merge by summing.
  auto twin = std::make_shared<Registry>(std::vector<Label>{{"tenant", "a"}});
  parent.Attach(twin);
  twin->GetCounter("dcp_test_hits_total")->Add(10);
  const std::string merged = parent.RenderPrometheus();
  EXPECT_NE(merged.find("dcp_test_hits_total{tenant=\"a\"} 12"),
            std::string::npos);

  // Dropping the only strong ref removes the child from future scrapes.
  child_b.reset();
  const std::string after = parent.RenderPrometheus();
  EXPECT_EQ(after.find("tenant=\"b\""), std::string::npos);
}

TEST(Registry, NameFilterIsPrefixMatch) {
  Registry registry;
  registry.GetCounter("dcp_server_requests_total")->Add(1);
  registry.GetCounter("dcp_engine_hits_total")->Add(1);
  const std::string text = registry.RenderPrometheus("dcp_server");
  EXPECT_NE(text.find("dcp_server_requests_total"), std::string::npos);
  EXPECT_EQ(text.find("dcp_engine_hits_total"), std::string::npos);
}

TEST(Registry, LabelValuesAreEscaped) {
  Registry registry;
  registry.GetCounter("dcp_test_esc_total", {{"k", "a\"b\\c\nd"}})->Add(1);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("k=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(RecordingFlag, DisabledTimerRecordsNothing) {
  Registry registry;
  Histogram* hist = registry.GetHistogram("dcp_test_t_us");
  SetRecordingEnabled(false);
  { ScopedLatencyTimer timer(hist); }
  EXPECT_EQ(hist->Snapshot().count(), 0);
  SetRecordingEnabled(true);
  { ScopedLatencyTimer timer(hist); }
  EXPECT_EQ(hist->Snapshot().count(), 1);
  // Null histogram is always a no-op.
  { ScopedLatencyTimer timer(nullptr); }
}

TEST(TraceIds, NonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  EXPECT_EQ(TraceContext::Current(), nullptr);
  Trace outer;
  {
    TraceContext::Scope scope(&outer);
    EXPECT_EQ(TraceContext::Current(), &outer);
    Trace inner;
    {
      TraceContext::Scope nested(&inner);
      EXPECT_EQ(TraceContext::Current(), &inner);
    }
    EXPECT_EQ(TraceContext::Current(), &outer);
  }
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

TEST(TraceContext, RecordPhaseFeedsTraceAndGlobalCounter) {
  Trace trace;
  const std::string before =
      Registry::Global().RenderPrometheus("dcp_phase_us_total");
  {
    TraceContext::Scope scope(&trace);
    RecordPhase(TracePhase::kCacheProbe, 25);
    RecordPhase(TracePhase::kCacheProbe, 5);
  }
  EXPECT_EQ(trace.phase_us[static_cast<int>(TracePhase::kCacheProbe)], 30);
  const std::string after =
      Registry::Global().RenderPrometheus("dcp_phase_us_total");
  EXPECT_NE(after.find("phase=\"cache_probe\""), std::string::npos);
  EXPECT_NE(after, before);
}

TEST(TraceContext, ScopedPhaseTimesIntoCurrentTrace) {
  Trace trace;
  TraceContext::Scope scope(&trace);
  {
    ScopedPhase span(TracePhase::kEncode);
    const int64_t begin = MonotonicMicros();
    while (MonotonicMicros() - begin < 2) {
    }
  }
  EXPECT_GE(trace.phase_us[static_cast<int>(TracePhase::kEncode)], 1);
}

TEST(TraceFormat, OneLineWithNonZeroPhases) {
  Trace trace;
  trace.trace_id = 0xabcdef;
  trace.tenant = "alpha";
  trace.source = "memory_cache";
  trace.total_us = 1234;
  trace.AddPhase(TracePhase::kQueueWait, 200);
  const std::string line = FormatTrace(trace);
  EXPECT_NE(line.find("trace=0000000000abcdef"), std::string::npos);
  EXPECT_NE(line.find("tenant=alpha"), std::string::npos);
  EXPECT_NE(line.find("source=memory_cache"), std::string::npos);
  EXPECT_NE(line.find("total_us=1234"), std::string::npos);
  EXPECT_NE(line.find("queue_wait_us=200"), std::string::npos);
  EXPECT_EQ(line.find("encode_us"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(TraceRing, KeepsNewestUpToCapacity) {
  TraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    Trace trace;
    trace.trace_id = i;
    ring.Push(trace);
  }
  EXPECT_EQ(ring.total_pushed(), 10);
  const std::vector<Trace> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].trace_id, 10u);
  EXPECT_EQ(snap[1].trace_id, 9u);
  EXPECT_EQ(snap[3].trace_id, 7u);
}

TEST(Clocks, MonotonicAndConsistentUnits) {
  const int64_t ns = MonotonicNanos();
  const int64_t us = MonotonicMicros();
  const int64_t ms = MonotonicMillis();
  EXPECT_GT(ns, 0);
  EXPECT_GE(us, ms * 1000 - 1000000);
  EXPECT_GE(MonotonicNanos(), ns);
}

TEST(MetricsStress, ConcurrentRecordingSnapshotScrapeAndToggle) {
  // TSan target: recorders, snapshotters, scrapers, trace pushers, and the
  // recording toggle all race on one registry. Correctness bar: no data race,
  // and the one countable invariant — the counter ends at exactly the sum of
  // increments — holds despite everything else churning.
  auto child = Registry::NewAttached({{"tenant", "stress"}});
  Counter* counter = child->GetCounter("dcp_stress_ops_total", {}, "stress ops");
  Gauge* gauge = child->GetGauge("dcp_stress_depth", {}, "stress depth");
  Histogram* hist = child->GetHistogram("dcp_stress_lat_us", {}, "stress latency");
  TraceRing ring(16);
  constexpr int kRecorders = 4;
  constexpr int kOpsPerRecorder = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerRecorder; ++i) {
        counter->Increment();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        hist->Record(i % 257);
        if (i % 64 == 0) {
          Trace trace;
          trace.trace_id = NextTraceId();
          trace.tenant = "stress";
          TraceContext::Scope scope(&trace);
          RecordPhase(TracePhase::kCacheProbe, i % 31);
          ring.Push(trace);
        }
      }
    });
  }
  threads.emplace_back([&] {  // Scraper: full renders + snapshots.
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = Registry::Global().RenderPrometheus("dcp_stress");
      EXPECT_NE(text.find("dcp_stress_ops_total"), std::string::npos);
      const HistogramSnapshot snap = hist->Snapshot();
      int64_t bucket_total = 0;
      for (int64_t b : snap.buckets) {
        bucket_total += b;
      }
      EXPECT_EQ(bucket_total, snap.count());  // +Inf-cumulative == _count.
      (void)ring.Snapshot();
    }
  });
  threads.emplace_back([&] {  // Toggle: latency recording flips on and off.
    while (!stop.load(std::memory_order_relaxed)) {
      SetRecordingEnabled(false);
      std::this_thread::yield();
      SetRecordingEnabled(true);
    }
  });
  for (int t = 0; t < kRecorders; ++t) {
    threads[static_cast<size_t>(t)].join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kRecorders; t < threads.size(); ++t) {
    threads[t].join();
  }
  SetRecordingEnabled(true);
  EXPECT_EQ(counter->value(), int64_t{kRecorders} * kOpsPerRecorder);
  EXPECT_EQ(hist->Snapshot().count(), int64_t{kRecorders} * kOpsPerRecorder);
}

}  // namespace
}  // namespace metrics
}  // namespace dcp
