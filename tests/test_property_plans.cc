// Property-based differential harness for the whole planning stack: generate seeded
// random (seqlens, masks, cluster shapes, block sizes), plan each batch, and check the
// two properties every plan must satisfy regardless of what the partitioner/refinement
// internals do:
//   1. structural validity — ValidatePlan accepts the plan (block refs in range, comm
//      pairs matched, chunks partition the batch, attention tiles unique), and
//   2. numerical equivalence — executing the plan across simulated devices reproduces
//      the single-device reference attention, forward and backward.
// This is the oracle the large-k partitioner work (bucketed gain queues, parallel
// coarsening, SIMD scans) is validated against: any placement the planner emits must
// execute to the same numbers.
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/planner.h"
#include "runtime/executor.h"
#include "runtime/plan_validate.h"
#include "runtime/reference_attention.h"
#include "tests/plan_test_util.h"

namespace dcp {
namespace {

using plan_test::GeneratedCase;
using plan_test::GenerateCase;
using plan_test::MakeOptions;
using plan_test::SmallMaskSpec;

TEST(PropertyPlans, RandomizedPlansValidateAndMatchReference) {
  Rng rng(20240707);
  for (int iteration = 0; iteration < 8; ++iteration) {
    const GeneratedCase c = GenerateCase(rng);
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " mask " +
                 MaskKindName(c.mask_kind) + " block " + std::to_string(c.block_size) +
                 " cluster " + std::to_string(c.num_nodes) + "x" +
                 std::to_string(c.devices_per_node) + " seqs " +
                 std::to_string(c.seqlens.size()));

    ClusterSpec cluster;
    cluster.num_nodes = c.num_nodes;
    cluster.devices_per_node = c.devices_per_node;
    const MaskSpec spec = SmallMaskSpec(c.mask_kind);
    std::vector<SequenceMask> masks = BuildBatchMasks(spec, c.seqlens);
    const PlannerOptions options = MakeOptions(c);

    BatchPlan plan = PlanBatch(c.seqlens, masks, cluster, options);

    // Property 1: structural validity, re-checked through the public validator.
    const PlanValidation validation = ValidatePlan(plan);
    ASSERT_TRUE(validation.ok) << validation.Summary();
    ASSERT_EQ(plan.num_devices(), cluster.num_devices());
    for (DeviceId home : plan.chunk_home) {
      ASSERT_GE(home, 0);
      ASSERT_LT(home, cluster.num_devices());
    }

    // Property 2: the numeric executor reproduces the single-device reference.
    Rng data_rng(1000 + static_cast<uint64_t>(iteration));
    std::vector<SeqTensors> inputs;
    std::vector<Tensor> douts;
    for (int64_t len : c.seqlens) {
      inputs.push_back(SeqTensors::Random(options.num_groups * options.heads_per_group,
                                          options.num_groups, len, options.head_dim,
                                          data_rng));
      douts.push_back(Tensor::Random(
          {options.num_groups * options.heads_per_group, len, options.head_dim},
          data_rng));
    }

    NumericExecutor executor(&plan, &masks);
    executor.LoadInputs(inputs);
    executor.RunForward();
    std::vector<Tensor> outputs = executor.GatherOutputs();
    ASSERT_EQ(outputs.size(), c.seqlens.size());
    for (size_t s = 0; s < c.seqlens.size(); ++s) {
      Tensor reference = ReferenceAttentionForward(inputs[s], masks[s]);
      EXPECT_LT(Tensor::MaxAbsDiff(outputs[s], reference), 1e-4f)
          << "forward mismatch on sequence " << s;
    }

    executor.LoadOutputGrads(douts);
    executor.RunBackward();
    std::vector<SeqGrads> grads = executor.GatherInputGrads();
    for (size_t s = 0; s < c.seqlens.size(); ++s) {
      Tensor reference = ReferenceAttentionForward(inputs[s], masks[s]);
      SeqGrads expect =
          ReferenceAttentionBackward(inputs[s], masks[s], reference, douts[s]);
      EXPECT_LT(Tensor::MaxAbsDiff(grads[s].dq, expect.dq), 2e-4f) << "dq seq " << s;
      EXPECT_LT(Tensor::MaxAbsDiff(grads[s].dk, expect.dk), 2e-4f) << "dk seq " << s;
      EXPECT_LT(Tensor::MaxAbsDiff(grads[s].dv, expect.dv), 2e-4f) << "dv seq " << s;
    }
  }
}

TEST(PropertyPlans, PlansAreDeterministicAndSerializable) {
  // Same inputs => byte-identical serialized plan, and the round trip preserves it.
  Rng rng(77);
  const GeneratedCase c = GenerateCase(rng);
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  std::vector<SequenceMask> masks = BuildBatchMasks(SmallMaskSpec(c.mask_kind), c.seqlens);
  const PlannerOptions options = MakeOptions(c);

  BatchPlan first = PlanBatch(c.seqlens, masks, cluster, options);
  BatchPlan second = PlanBatch(c.seqlens, masks, cluster, options);
  first.stats.planning_seconds = 0.0;  // The only legitimately run-dependent field.
  second.stats.planning_seconds = 0.0;
  EXPECT_EQ(SerializePlan(first), SerializePlan(second));

  BatchPlan round_trip = DeserializePlanOrDie(SerializePlan(first));
  EXPECT_EQ(SerializePlan(round_trip), SerializePlan(first));
  EXPECT_TRUE(ValidatePlan(round_trip).ok);

  // The binary codec round-trips to the same plan (compared through the canonical text
  // form) and is substantially more compact than the text form.
  StatusOr<BatchPlan> binary_trip = DeserializePlanBinary(SerializePlanBinary(first));
  ASSERT_TRUE(binary_trip.ok()) << binary_trip.status().ToString();
  EXPECT_EQ(SerializePlan(binary_trip.value()), SerializePlan(first));
  EXPECT_LT(SerializePlanBinary(first).size(), SerializePlan(first).size());
}

}  // namespace
}  // namespace dcp
