#include "core/api.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/reference_attention.h"

namespace dcp {
namespace {

TEST(DcpApi, ListingTwoWorkflowRunsEndToEnd) {
  // Mirrors the paper's Listing 2: loader -> executor.Prepare -> DCPAttn per iteration.
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  DatasetConfig dataset;
  dataset.max_seq_len = 512;
  dataset.min_seq_len = 32;
  BatchingConfig batching;
  batching.token_budget = 1024;
  PlannerOptions options;
  options.block_size = 64;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;

  DcpDataLoader loader(BatchStream{LengthSampler(dataset), batching},
                       MaskSpec::SharedQuestion(), cluster, options);
  DcpExecutor executor;
  EXPECT_FALSE(executor.ready());

  Rng rng(3);
  for (int iteration = 0; iteration < 3; ++iteration) {
    PlannedIteration it = loader.Next();
    executor.Prepare(it.handle);
    ASSERT_TRUE(executor.ready());

    std::vector<SeqTensors> inputs;
    for (int64_t len : it.batch.seqlens) {
      inputs.push_back(SeqTensors::Random(4, 2, len, options.head_dim, rng));
    }
    std::vector<Tensor> outputs = DcpAttention::Forward(executor, inputs);
    ASSERT_EQ(outputs.size(), inputs.size());
    for (size_t s = 0; s < inputs.size(); ++s) {
      Tensor reference = ReferenceAttentionForward(inputs[s], it.masks()[s]);
      EXPECT_LT(Tensor::MaxAbsDiff(outputs[s], reference), 1e-4f);
    }
    // Backward through the same executor.
    std::vector<Tensor> douts;
    for (const Tensor& out : outputs) {
      douts.push_back(Tensor::Random(out.shape(), rng));
    }
    std::vector<SeqGrads> grads = DcpAttention::Backward(executor, douts);
    ASSERT_EQ(grads.size(), inputs.size());
  }
}

}  // namespace
}  // namespace dcp
