#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dcp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, LogNormalMedianNearExpMu) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) {
    samples.push_back(rng.NextLogNormal(std::log(100.0), 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(samples[5000], 100.0, 5.0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) {
    values[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(values);
  std::set<int> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // Child differs from parent continuation.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace dcp
