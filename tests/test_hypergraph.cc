#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include "hypergraph/metrics.h"

namespace dcp {
namespace {

// The running example: 4 vertices, 3 edges.
Hypergraph MakeSmall() {
  Hypergraph hg;
  hg.AddVertex(1.0, 10.0);
  hg.AddVertex(2.0, 0.0);
  hg.AddVertex(3.0, 5.0);
  hg.AddVertex(4.0, 0.0);
  hg.AddEdge(2.0, {0, 1});
  hg.AddEdge(3.0, {1, 2, 3});
  hg.AddEdge(5.0, {0, 3});
  hg.Finalize();
  return hg;
}

TEST(Hypergraph, StructureQueries) {
  Hypergraph hg = MakeSmall();
  EXPECT_EQ(hg.num_vertices(), 4);
  EXPECT_EQ(hg.num_edges(), 3);
  EXPECT_EQ(hg.EdgeSize(1), 3);
  EXPECT_EQ(hg.VertexDegree(0), 2);
  EXPECT_EQ(hg.VertexDegree(2), 1);
  auto [pins_begin, pins_end] = hg.EdgePins(1);
  EXPECT_EQ(pins_end - pins_begin, 3);
  const VertexWeight total = hg.TotalWeight();
  EXPECT_DOUBLE_EQ(total[0], 10.0);
  EXPECT_DOUBLE_EQ(total[1], 15.0);
  EXPECT_DOUBLE_EQ(hg.TotalEdgeWeight(), 10.0);
}

TEST(Metrics, ConnectivityMinusOneByHand) {
  Hypergraph hg = MakeSmall();
  // Partition {0,1} | {2,3}: edge0 internal (lambda 1), edge1 spans both (lambda 2),
  // edge2 spans both (lambda 2) => cost 3 + 5 = 8.
  Partition part = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ConnectivityMinusOne(hg, part, 2), 8.0);
  EXPECT_EQ(EdgeConnectivity(hg, part, 2, 0), 1);
  EXPECT_EQ(EdgeConnectivity(hg, part, 2, 1), 2);

  // All on one part: zero cost.
  Partition all_one = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ConnectivityMinusOne(hg, all_one, 2), 0.0);
}

TEST(Metrics, PartWeightsAndBalance) {
  Hypergraph hg = MakeSmall();
  Partition part = {0, 0, 1, 1};
  auto weights = PartWeights(hg, part, 2);
  EXPECT_DOUBLE_EQ(weights[0][0], 3.0);
  EXPECT_DOUBLE_EQ(weights[1][0], 7.0);
  EXPECT_DOUBLE_EQ(weights[0][1], 10.0);
  EXPECT_DOUBLE_EQ(weights[1][1], 5.0);
  // Compute dim: max part 7 vs target 5 -> imbalance 1.4.
  auto per_dim = MaxImbalancePerDim(hg, part, 2);
  EXPECT_NEAR(per_dim[0], 1.4, 1e-12);
  EXPECT_NEAR(per_dim[1], 10.0 / 7.5, 1e-12);
  EXPECT_TRUE(IsBalanced(hg, part, 2, {0.5, 0.5}));
  EXPECT_FALSE(IsBalanced(hg, part, 2, {0.1, 0.5}));
}

}  // namespace
}  // namespace dcp
