#include "runtime/buffers.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dcp {
namespace {

BatchLayout SmallLayout() {
  BatchLayout layout;
  layout.seqlens = {64};
  layout.block_size = 16;
  layout.num_groups = 2;
  layout.heads_per_group = 3;
  layout.head_dim = 8;
  return layout;
}

TEST(DeviceBuffers, SlotSizesFollowTheLayout) {
  const BatchLayout layout = SmallLayout();
  std::array<int32_t, kNumBufKinds> slots = {};
  slots.fill(2);
  DeviceBuffers buffers(layout, slots);
  const int64_t hg = layout.heads_per_group;
  const int64_t bs = layout.block_size;
  const int64_t d = layout.head_dim;
  EXPECT_EQ(buffers.SlotElems(BufKind::kQ), hg * bs * d);
  EXPECT_EQ(buffers.SlotElems(BufKind::kKV), 2 * bs * d);
  EXPECT_EQ(buffers.SlotElems(BufKind::kAcc), hg * bs * d + 2 * hg * bs);
  EXPECT_EQ(buffers.SlotElems(BufKind::kDelta), hg * bs);
  EXPECT_EQ(buffers.SlotElems(BufKind::kDQ), buffers.SlotElems(BufKind::kQ));
  EXPECT_EQ(buffers.SlotElems(BufKind::kDKV), buffers.SlotElems(BufKind::kKV));
}

TEST(DeviceBuffers, SlotsAreDisjointAndAddressable) {
  const BatchLayout layout = SmallLayout();
  std::array<int32_t, kNumBufKinds> slots = {};
  slots.fill(3);
  DeviceBuffers buffers(layout, slots);
  std::span<float> a = buffers.Slot({BufKind::kQ, 0});
  std::span<float> b = buffers.Slot({BufKind::kQ, 1});
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.data() + a.size(), b.data());  // Contiguous arena.
  a[0] = 7.0f;
  EXPECT_EQ(buffers.Slot({BufKind::kQ, 0})[0], 7.0f);
  EXPECT_EQ(buffers.Slot({BufKind::kQ, 1})[0], 0.0f);
}

TEST(DeviceBuffers, ResetAccumulatorsRestoresSoftmaxIdentity) {
  const BatchLayout layout = SmallLayout();
  std::array<int32_t, kNumBufKinds> slots = {};
  slots.fill(1);
  DeviceBuffers buffers(layout, slots);
  std::span<float> acc = buffers.Slot({BufKind::kAcc, 0});
  // Dirty everything, then reset.
  for (float& v : acc) {
    v = 42.0f;
  }
  buffers.ResetAccumulators();
  const int64_t m_off = buffers.AccStatsOffsetM();
  const int64_t l_off = buffers.AccStatsOffsetL();
  for (int64_t i = 0; i < m_off; ++i) {
    EXPECT_EQ(acc[static_cast<size_t>(i)], 0.0f) << "U not cleared at " << i;
  }
  for (int64_t i = m_off; i < l_off; ++i) {
    EXPECT_TRUE(std::isinf(acc[static_cast<size_t>(i)]) && acc[static_cast<size_t>(i)] < 0)
        << "m not -inf at " << i;
  }
  for (int64_t i = l_off; i < static_cast<int64_t>(acc.size()); ++i) {
    EXPECT_EQ(acc[static_cast<size_t>(i)], 0.0f) << "l not cleared at " << i;
  }
}

TEST(DeviceBuffers, ResetGradientsOnlyTouchesGradientKinds) {
  const BatchLayout layout = SmallLayout();
  std::array<int32_t, kNumBufKinds> slots = {};
  slots.fill(1);
  DeviceBuffers buffers(layout, slots);
  buffers.Slot({BufKind::kQ, 0})[0] = 5.0f;
  buffers.Slot({BufKind::kDQ, 0})[0] = 5.0f;
  buffers.Slot({BufKind::kDKV, 0})[0] = 5.0f;
  buffers.Slot({BufKind::kDelta, 0})[0] = 5.0f;
  buffers.ResetGradients();
  EXPECT_EQ(buffers.Slot({BufKind::kQ, 0})[0], 5.0f);
  EXPECT_EQ(buffers.Slot({BufKind::kDQ, 0})[0], 0.0f);
  EXPECT_EQ(buffers.Slot({BufKind::kDKV, 0})[0], 0.0f);
  EXPECT_EQ(buffers.Slot({BufKind::kDelta, 0})[0], 0.0f);
}

}  // namespace
}  // namespace dcp
