// The session Engine: plan signatures (canonical fingerprints never alias across
// distinct requests), the sharded LRU compiled-plan cache (hit/miss/eviction accounting,
// cached plans bit-identical to fresh ones), recoverable Status errors on user-input
// paths, AutoTune's per-signature winner table, and the executor's incremental prepare
// (device buffers reused across equal signatures).
#include "core/engine.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/api.h"
#include "runtime/reference_attention.h"

namespace dcp {
namespace {

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.planner.block_size = 16;
  options.planner.num_groups = 2;
  options.planner.heads_per_group = 2;
  options.planner.head_dim = 8;
  options.planner_threads = 1;
  return options;
}

ClusterSpec SmallCluster() {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  return cluster;
}

std::string CanonicalSerialized(BatchPlan plan) {
  plan.stats.planning_seconds = 0.0;  // The only legitimately run-dependent field.
  return SerializePlan(plan);
}

TEST(PlanSignature, DistinctMaskKindsWithIdenticalSeqlensNeverAlias) {
  const std::vector<int64_t> seqlens = {48, 33, 24};
  const ClusterSpec cluster = SmallCluster();
  const PlannerOptions options = SmallEngineOptions().planner;

  std::vector<PlanSignature> signatures;
  for (MaskKind kind : AllMaskKinds()) {
    signatures.push_back(
        ComputePlanSignature(seqlens, MaskSpec::ForKind(kind), cluster, options));
  }
  for (size_t a = 0; a < signatures.size(); ++a) {
    EXPECT_FALSE(signatures[a].IsZero());
    for (size_t b = a + 1; b < signatures.size(); ++b) {
      EXPECT_FALSE(signatures[a] == signatures[b])
          << MaskKindName(AllMaskKinds()[a]) << " vs " << MaskKindName(AllMaskKinds()[b]);
    }
  }
}

TEST(PlanSignature, NanAndSignedZeroCanonicalizeBeforeHashing) {
  // Semantically identical configs must share a signature even when a cost-model field
  // is NaN: every NaN payload (and sign) folds to one canonical bit pattern, and -0.0
  // folds to 0.0. Distinct real values still hash apart.
  const std::vector<int64_t> seqlens = {48, 33, 24};
  const PlannerOptions options = SmallEngineOptions().planner;
  auto sig_with_hbm = [&](double hbm_gbps) {
    ClusterSpec cluster = SmallCluster();
    cluster.hbm_gbps = hbm_gbps;
    return ComputePlanSignature(seqlens, MaskSpec::Causal(), cluster, options);
  };

  const PlanSignature nan_a = sig_with_hbm(std::nan("1"));
  const PlanSignature nan_b = sig_with_hbm(std::nan("0x7ffff"));
  const PlanSignature nan_c = sig_with_hbm(-std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(nan_a, nan_b);
  EXPECT_EQ(nan_a, nan_c);
  EXPECT_FALSE(nan_a == sig_with_hbm(1555.0));

  EXPECT_EQ(sig_with_hbm(0.0), sig_with_hbm(-0.0));
  EXPECT_FALSE(sig_with_hbm(0.0) == sig_with_hbm(1.0));
}

TEST(PlanSignature, EveryIdentityFieldChangesTheDigest) {
  const std::vector<int64_t> seqlens = {48, 33, 24};
  const ClusterSpec cluster = SmallCluster();
  const PlannerOptions options = SmallEngineOptions().planner;
  const PlanSignature base =
      ComputePlanSignature(seqlens, MaskSpec::Causal(), cluster, options);

  // Same spec => same signature (the cache key is a pure function of the request).
  EXPECT_EQ(base, ComputePlanSignature(seqlens, MaskSpec::Causal(), cluster, options));

  // Sequence order is identity: plans index sequences positionally.
  EXPECT_FALSE(base == ComputePlanSignature({33, 48, 24}, MaskSpec::Causal(), cluster,
                                            options));

  // Mask parameters beyond the kind are identity.
  EXPECT_FALSE(ComputePlanSignature(seqlens, MaskSpec::Lambda(4, 13), cluster, options) ==
               ComputePlanSignature(seqlens, MaskSpec::Lambda(4, 14), cluster, options));

  PlannerOptions other_block = options;
  other_block.block_size = 24;
  EXPECT_FALSE(base == ComputePlanSignature(seqlens, MaskSpec::Causal(), cluster,
                                            other_block));

  PlannerOptions other_seed = options;
  other_seed.seed = 2;
  EXPECT_FALSE(base == ComputePlanSignature(seqlens, MaskSpec::Causal(), cluster,
                                            other_seed));

  ClusterSpec other_cluster = cluster;
  other_cluster.devices_per_node = 4;
  EXPECT_FALSE(base == ComputePlanSignature(seqlens, MaskSpec::Causal(), other_cluster,
                                            options));

  // The tune signature keys the search, not one block size: it must differ from every
  // fixed-block signature and react to the candidate list.
  const PlanSignature tune = ComputeTuneSignature(seqlens, MaskSpec::Causal(), cluster,
                                                  options, {16, 24});
  EXPECT_FALSE(tune == base);
  EXPECT_FALSE(tune == ComputeTuneSignature(seqlens, MaskSpec::Causal(), cluster, options,
                                            {16, 32}));
}

TEST(Engine, CacheHitReturnsTheSameHandleAndCountsAccounting) {
  Engine engine(SmallCluster(), SmallEngineOptions());
  const std::vector<int64_t> seqlens = {40, 25};

  const PlanHandle first = engine.Plan(seqlens, MaskSpec::Causal()).value();
  const PlanHandle second = engine.Plan(seqlens, MaskSpec::Causal()).value();
  EXPECT_EQ(first.get(), second.get()) << "repeat plan must be served from the cache";

  // Distinct mask, same seqlens: distinct signature, so a miss — and its plan differs.
  const PlanHandle lambda = engine.Plan(seqlens, MaskSpec::Lambda(4, 13)).value();
  EXPECT_NE(first.get(), lambda.get());

  const PlanCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0 / 3.0);
}

TEST(Engine, CachedPlansAreBitIdenticalToFreshPlans) {
  Engine engine(SmallCluster(), SmallEngineOptions());
  const std::vector<int64_t> seqlens = {48, 33, 24, 17};

  for (MaskKind kind : AllMaskKinds()) {
    const MaskSpec spec = MaskSpec::ForKind(kind);
    const PlanHandle cold = engine.Plan(seqlens, spec).value();
    const PlanHandle hit = engine.Plan(seqlens, spec).value();
    ASSERT_EQ(cold.get(), hit.get());

    // Differential check against the paper-facade free function (the cold path the
    // Engine wraps): the cached plan serializes byte-for-byte like a fresh plan.
    const std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
    const BatchPlan fresh =
        PlanBatch(seqlens, masks, SmallCluster(), SmallEngineOptions().planner);
    EXPECT_EQ(CanonicalSerialized(hit->plan), CanonicalSerialized(fresh))
        << "cached plan diverged from fresh plan for mask " << MaskKindName(kind);
  }
}

TEST(Engine, LruEvictsOldestAndRecountsThemAsMisses) {
  EngineOptions options = SmallEngineOptions();
  options.plan_cache_capacity = 2;
  options.plan_cache_shards = 1;  // One shard so the LRU order is globally observable.
  Engine engine(SmallCluster(), options);

  const std::vector<int64_t> a = {40}, b = {41}, c = {42};
  const PlanHandle first_a = engine.Plan(a, MaskSpec::Causal()).value();
  (void)engine.Plan(b, MaskSpec::Causal()).value();
  (void)engine.Plan(c, MaskSpec::Causal()).value();  // Evicts a.

  PlanCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.misses, 3);

  // `a` was evicted: replanning it is a miss and yields a fresh (but equal) handle.
  const PlanHandle again_a = engine.Plan(a, MaskSpec::Causal()).value();
  EXPECT_NE(first_a.get(), again_a.get());
  EXPECT_EQ(CanonicalSerialized(first_a->plan), CanonicalSerialized(again_a->plan));
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.evictions, 2);  // Planting `a` again evicted `b`.

  // `c` stayed resident through all of it.
  const int64_t hits_before = stats.hits;
  (void)engine.Plan(c, MaskSpec::Causal()).value();
  EXPECT_EQ(engine.cache_stats().hits, hits_before + 1);
}

TEST(Engine, CapacityIsAnExactBoundAcrossShards) {
  EngineOptions options = SmallEngineOptions();
  options.plan_cache_capacity = 2;
  options.plan_cache_shards = 4;  // More shards than capacity: clamped, never overshoots.
  Engine engine(SmallCluster(), options);
  for (int64_t len = 40; len < 48; ++len) {
    (void)engine.Plan({len}, MaskSpec::Causal()).value();
    EXPECT_LE(engine.cache_stats().entries, 2) << "after planning length " << len;
  }
}

TEST(Engine, DisabledCacheStillCountsMisses) {
  EngineOptions options = SmallEngineOptions();
  options.plan_cache_capacity = 0;
  Engine engine(SmallCluster(), options);
  const PlanHandle a = engine.Plan({40}, MaskSpec::Causal()).value();
  const PlanHandle b = engine.Plan({40}, MaskSpec::Causal()).value();
  EXPECT_NE(a.get(), b.get()) << "nothing may be cached at capacity 0";
  EXPECT_EQ(CanonicalSerialized(a->plan), CanonicalSerialized(b->plan));
  const PlanCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);  // Truthful accounting even when the cache is disabled.
  EXPECT_EQ(stats.entries, 0);
}

TEST(Engine, TuneWinnerTableIsBounded) {
  EngineOptions options = SmallEngineOptions();
  options.tune_block_sizes = {8, 16};
  options.tune_cache_capacity = 2;
  Engine engine(SmallCluster(), options);
  // Three distinct tune signatures through a capacity-2 table: the first is evicted.
  (void)engine.AutoTune({40}, MaskSpec::Causal()).value();
  (void)engine.AutoTune({41}, MaskSpec::Causal()).value();
  (void)engine.AutoTune({42}, MaskSpec::Causal()).value();
  EXPECT_EQ(engine.cache_stats().tune_misses, 3);
  const AutoTuneResult evicted = engine.AutoTune({40}, MaskSpec::Causal()).value();
  EXPECT_FALSE(evicted.tuned_from_cache);
  EXPECT_EQ(engine.cache_stats().tune_misses, 4);
  const AutoTuneResult resident = engine.AutoTune({42}, MaskSpec::Causal()).value();
  EXPECT_TRUE(resident.tuned_from_cache);
}

TEST(Engine, UserInputErrorsAreRecoverableStatuses) {
  Engine engine(SmallCluster(), SmallEngineOptions());

  StatusOr<PlanHandle> empty = engine.Plan({}, MaskSpec::Causal());
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  StatusOr<PlanHandle> negative = engine.Plan({32, -5}, MaskSpec::Causal());
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("seqlens[1]"), std::string::npos)
      << negative.status().ToString();

  StatusOr<PlanHandle> bad_block = engine.PlanWithBlockSize({32}, MaskSpec::Causal(), 0);
  ASSERT_FALSE(bad_block.ok());
  EXPECT_EQ(bad_block.status().code(), StatusCode::kInvalidArgument);

  MaskSpec bad_shared = MaskSpec::SharedQuestion(/*num_answers=*/4,
                                                 /*answer_fraction=*/0.5);
  StatusOr<PlanHandle> bad_mask = engine.Plan({32}, bad_shared);
  ASSERT_FALSE(bad_mask.ok());
  EXPECT_EQ(bad_mask.status().code(), StatusCode::kInvalidArgument);

  ClusterSpec bad_cluster;
  bad_cluster.num_nodes = 0;
  Engine bad_engine(bad_cluster, SmallEngineOptions());
  StatusOr<PlanHandle> bad = bad_engine.Plan({32}, MaskSpec::Causal());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Errors never touch the cache.
  EXPECT_EQ(engine.cache_stats().hits + engine.cache_stats().misses, 0);
}

TEST(Engine, AutoTunePicksACandidateAndCachesTheWinner) {
  EngineOptions options = SmallEngineOptions();
  options.tune_block_sizes = {8, 16, 32};
  Engine engine(SmallCluster(), options);
  const std::vector<int64_t> seqlens = {48, 33, 24};

  const AutoTuneResult cold = engine.AutoTune(seqlens, MaskSpec::Causal()).value();
  EXPECT_FALSE(cold.tuned_from_cache);
  ASSERT_EQ(cold.candidates.size(), 3u);
  EXPECT_TRUE(cold.best_block_size == 8 || cold.best_block_size == 16 ||
              cold.best_block_size == 32);
  EXPECT_EQ(cold.plan->plan.layout.block_size, cold.best_block_size);
  // The winner sits in the plan cache under its fixed-block signature.
  const PlanHandle replanned =
      engine.PlanWithBlockSize(seqlens, MaskSpec::Causal(), cold.best_block_size).value();
  EXPECT_EQ(cold.plan.get(), replanned.get());

  const AutoTuneResult warm = engine.AutoTune(seqlens, MaskSpec::Causal()).value();
  EXPECT_TRUE(warm.tuned_from_cache);
  EXPECT_EQ(warm.best_block_size, cold.best_block_size);
  EXPECT_EQ(warm.plan.get(), cold.plan.get());

  const PlanCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.tune_misses, 1);
  EXPECT_EQ(stats.tune_hits, 1);
}

TEST(DcpExecutorIncremental, ReusesBuffersAcrossEqualSignaturesAndStaysCorrect) {
  Engine engine(SmallCluster(), SmallEngineOptions());
  const std::vector<int64_t> seqlens = {40, 25, 18};
  const PlanHandle handle = engine.Plan(seqlens, MaskSpec::Causal()).value();

  DcpExecutor executor;
  executor.Prepare(handle);
  EXPECT_EQ(executor.prepare_count(), 1);
  EXPECT_EQ(executor.buffer_reuse_count(), 0);

  Rng rng(9);
  auto run_and_check = [&]() {
    std::vector<SeqTensors> inputs;
    for (int64_t len : seqlens) {
      inputs.push_back(SeqTensors::Random(4, 2, len, 8, rng));
    }
    std::vector<Tensor> outputs = DcpAttention::Forward(executor, inputs);
    for (size_t s = 0; s < inputs.size(); ++s) {
      Tensor reference = ReferenceAttentionForward(inputs[s], handle->masks[s]);
      EXPECT_LT(Tensor::MaxAbsDiff(outputs[s], reference), 1e-4f) << "sequence " << s;
    }
  };
  run_and_check();

  // Same signature (cache hit of the same batch): buffers reused, results still exact.
  executor.Prepare(engine.Plan(seqlens, MaskSpec::Causal()).value());
  EXPECT_EQ(executor.buffer_reuse_count(), 1);
  run_and_check();

  // A different signature (new block size) must rebuild the buffers.
  const PlanHandle other =
      engine.PlanWithBlockSize(seqlens, MaskSpec::Causal(), 24).value();
  executor.Prepare(other);
  EXPECT_EQ(executor.buffer_reuse_count(), 1);
  EXPECT_EQ(executor.prepare_count(), 3);

  // The paper-facade Prepare carries no signature: never reused, still correct.
  executor.Prepare(handle->plan, handle->masks);
  executor.Prepare(handle->plan, handle->masks);
  EXPECT_EQ(executor.buffer_reuse_count(), 1);
  run_and_check();
}

TEST(DcpExecutorIncremental, HandlesOutliveTheEngineAndTheCache) {
  // Plans are shared immutable values: a handle stays valid after eviction and even
  // after the engine itself is gone (the lookahead queue depends on this).
  PlanHandle handle;
  {
    EngineOptions options = SmallEngineOptions();
    options.plan_cache_capacity = 1;
    options.plan_cache_shards = 1;
    Engine engine(SmallCluster(), options);
    handle = engine.Plan({40, 25}, MaskSpec::Causal()).value();
    (void)engine.Plan({41}, MaskSpec::Causal()).value();  // Evicts the first plan.
  }
  EXPECT_TRUE(ValidatePlanRequest({40, 25}, MaskSpec::Causal(), SmallCluster(),
                                  SmallEngineOptions().planner)
                  .ok());
  DcpExecutor executor;
  executor.Prepare(handle);
  EXPECT_TRUE(executor.ready());
  EXPECT_EQ(executor.plan().layout.seqlens, (std::vector<int64_t>{40, 25}));
}

TEST(EngineCacheStats, CoherentUnderConcurrentPlanCallers) {
  // Service worker threads hammer Plan() while another thread polls cache_stats().
  // The snapshot must be coherent (all shard locks held at once): lookups never run
  // backwards between snapshots, entries never exceed capacity, and the final counters
  // account for every call exactly.
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.devices_per_node = 2;
  EngineOptions options = SmallEngineOptions();
  options.plan_cache_capacity = 8;
  options.plan_cache_shards = 4;
  Engine engine(cluster, options);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 40;
  constexpr int kDistinctShapes = 12;  // > capacity: constant eviction churn.

  std::atomic<bool> stop{false};
  std::atomic<int> poll_failures{0};
  std::thread poller([&] {
    int64_t last_lookups = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const PlanCacheStats stats = engine.cache_stats();
      const int64_t lookups = stats.hits + stats.misses;
      if (lookups < last_lookups || stats.entries < 0 ||
          stats.entries > options.plan_cache_capacity || stats.hits < 0 ||
          stats.misses < 0 || stats.evictions < 0) {
        ++poll_failures;
      }
      last_lookups = lookups;
    }
  });

  std::vector<std::thread> planners;
  for (int t = 0; t < kThreads; ++t) {
    planners.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int shape = (t * kItersPerThread + i) % kDistinctShapes;
        const std::vector<int64_t> seqlens = {48 + 8 * shape, 32};
        StatusOr<PlanHandle> plan = engine.Plan(seqlens, MaskSpec::Causal());
        ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      }
    });
  }
  for (std::thread& thread : planners) {
    thread.join();
  }
  stop.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(poll_failures.load(), 0);
  const PlanCacheStats final_stats = engine.cache_stats();
  EXPECT_EQ(final_stats.hits + final_stats.misses, kThreads * kItersPerThread);
  EXPECT_LE(final_stats.entries, options.plan_cache_capacity);
  // Every cached-then-evicted plan came from a miss that won its insert race.
  EXPECT_LE(final_stats.entries + final_stats.evictions, final_stats.misses);
}

}  // namespace
}  // namespace dcp
