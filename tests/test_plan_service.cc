// End-to-end tests for dcp::PlanService: a real PlanServer on a loopback TCP socket,
// real PlanClients, and the acceptance bar from the subsystem's introduction —
// responses bit-identical to in-process Engine::Plan (asserted via SerializePlan),
// tenants never observing each other's plans, malformed frames never killing the
// server, and overload rejected with UNAVAILABLE instead of queued without bound.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/dataloader.h"
#include "core/engine.h"
#include "masks/mask.h"
#include "service/fault_injection.h"
#include "service/frame.h"
#include "service/plan_client.h"
#include "service/plan_server.h"
#include "service/tenant_registry.h"
#include "service/transport.h"
#include "tests/plan_test_util.h"

namespace dcp {
namespace {

ClusterSpec SmallCluster(int nodes, int devices) {
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.devices_per_node = devices;
  return cluster;
}

EngineOptions SmallEngineOptions(int64_t block_size, uint64_t seed = 7) {
  EngineOptions options;
  options.planner.block_size = block_size;
  options.planner.num_groups = 2;
  options.planner.heads_per_group = 2;
  options.planner.head_dim = 8;
  options.planner.divisions = 3;
  options.planner.seed = seed;
  return options;
}

// Serialization for bit-identity assertions between independent planning runs:
// everything in a plan is deterministic except stats.planning_seconds, which is a
// wall-clock measurement of the run that produced it — zeroed before comparing.
std::string SerializeTimeless(const BatchPlan& plan) {
  BatchPlan copy = plan;
  copy.stats.planning_seconds = 0.0;
  return SerializePlan(copy);
}

// A server over loopback TCP with the given tenants, torn down on destruction.
struct ServiceFixture {
  std::shared_ptr<TenantRegistry> registry = std::make_shared<TenantRegistry>();
  std::unique_ptr<PlanServer> server;

  explicit ServiceFixture(const std::vector<TenantConfig>& tenants,
                          PlanServerOptions options = {}) {
    for (const TenantConfig& tenant : tenants) {
      Status registered = registry->Register(tenant);
      EXPECT_TRUE(registered.ok()) << registered.ToString();
    }
    server = std::make_unique<PlanServer>(registry, options);
    Status started = server->Start(ServiceAddress::Tcp("127.0.0.1", 0));
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<PlanClient> Client(const std::string& tenant,
                                     int cache_capacity = 64) {
    PlanClientOptions options;
    options.tenant = tenant;
    options.cache_capacity = cache_capacity;
    StatusOr<std::unique_ptr<PlanClient>> client =
        PlanClient::Connect(server->bound_address(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }
};

TEST(PlanService, LoopbackResponsesBitIdenticalToInProcessPlanning) {
  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions options = SmallEngineOptions(16);
  ServiceFixture service({{"prod", cluster, options}});

  const std::vector<int64_t> seqlens = {60, 33, 18};
  const MaskSpec mask = MaskSpec::Lambda(4, 13);

  // In-process reference engine with the identical tenant configuration.
  Engine local(cluster, options);
  const PlanHandle expected = local.Plan(seqlens, mask).value();

  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> remote = client->Plan(seqlens, mask);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(client->last_source(), PlanServeSource::kPlanned);
  EXPECT_TRUE(remote.value()->signature == expected->signature);
  EXPECT_EQ(SerializeTimeless(remote.value()->plan), SerializeTimeless(expected->plan));
  ASSERT_EQ(remote.value()->masks.size(), expected->masks.size());

  // Same request again on the SAME client: served locally, no RPC.
  const int64_t rpcs_before = client->stats().rpcs_sent;
  StatusOr<PlanHandle> local_hit = client->Plan(seqlens, mask);
  ASSERT_TRUE(local_hit.ok());
  EXPECT_EQ(client->last_source(), PlanServeSource::kClientCache);
  EXPECT_EQ(client->stats().rpcs_sent, rpcs_before);
  EXPECT_EQ(local_hit.value().get(), remote.value().get());

  // A FRESH client (a second process's worth of state) is served from the server's
  // plan cache — still bit-identical.
  std::unique_ptr<PlanClient> fresh = service.Client("prod");
  StatusOr<PlanHandle> server_hit = fresh->Plan(seqlens, mask);
  ASSERT_TRUE(server_hit.ok()) << server_hit.status().ToString();
  EXPECT_EQ(fresh->last_source(), PlanServeSource::kMemoryCache);
  EXPECT_EQ(SerializeTimeless(server_hit.value()->plan), SerializeTimeless(expected->plan));
}

TEST(PlanService, TenantsNeverObserveEachOthersPlans) {
  const ClusterSpec cluster = SmallCluster(1, 4);
  // Same cluster, different planner configuration => different plans and signatures.
  const EngineOptions options_a = SmallEngineOptions(16, /*seed=*/7);
  const EngineOptions options_b = SmallEngineOptions(24, /*seed=*/11);
  ServiceFixture service({{"team-a", cluster, options_a}, {"team-b", cluster, options_b}});

  const std::vector<int64_t> seqlens = {70, 41};
  const MaskSpec mask = MaskSpec::Causal();

  std::unique_ptr<PlanClient> client_a = service.Client("team-a");
  std::unique_ptr<PlanClient> client_b = service.Client("team-b");
  const PlanHandle plan_a = client_a->Plan(seqlens, mask).value();
  const PlanHandle plan_b = client_b->Plan(seqlens, mask).value();

  // Distinct signatures: one tenant's cache can never serve the other's request.
  EXPECT_FALSE(plan_a->signature == plan_b->signature);
  EXPECT_NE(SerializeTimeless(plan_a->plan), SerializeTimeless(plan_b->plan));

  // And each matches its own in-process reference exactly.
  Engine local_a(cluster, options_a);
  Engine local_b(cluster, options_b);
  EXPECT_EQ(SerializeTimeless(plan_a->plan),
            SerializeTimeless(local_a.Plan(seqlens, mask).value()->plan));
  EXPECT_EQ(SerializeTimeless(plan_b->plan),
            SerializeTimeless(local_b.Plan(seqlens, mask).value()->plan));
}

TEST(PlanService, ErrorsPropagateAsStatuses) {
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}});
  std::unique_ptr<PlanClient> client = service.Client("prod");

  // Invalid user input: recoverable INVALID_ARGUMENT from the tenant engine.
  StatusOr<PlanHandle> empty = client->Plan({}, MaskSpec::Causal());
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  StatusOr<PlanHandle> negative = client->Plan({64, -3}, MaskSpec::Causal());
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  // Unknown tenant: NOT_FOUND, and the connection keeps working afterwards.
  PlanClientOptions unknown_options;
  unknown_options.tenant = "nobody";
  std::unique_ptr<PlanClient> unknown =
      PlanClient::Connect(service.server->bound_address(), unknown_options).value();
  StatusOr<PlanHandle> missing = unknown->Plan({64}, MaskSpec::Causal());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  StatusOr<PlanHandle> ok_after = client->Plan({64, 32}, MaskSpec::Causal());
  EXPECT_TRUE(ok_after.ok()) << ok_after.status().ToString();
}

TEST(PlanService, OverloadRejectedWithUnavailable) {
  PlanServerOptions drained;
  drained.max_queue = 0;  // Maintenance mode: every request rejected immediately.
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}},
                         drained);
  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> rejected = client->Plan({64, 32}, MaskSpec::Causal());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(service.server->stats().rejected_overload, 1);
}

TEST(PlanService, MalformedFramesNeverKillTheServer) {
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}});
  const ServiceAddress address = service.server->bound_address();

  {  // Raw garbage bytes.
    Socket raw = ConnectSocket(address).value();
    ASSERT_TRUE(raw.SendAll("this is definitely not a DCP frame, not even close")
                    .ok());
    raw.Close();
  }
  {  // A truncated but valid frame prefix (torn mid-payload).
    Socket raw = ConnectSocket(address).value();
    const std::string frame = EncodeFrame(
        FrameType::kPlanRequest,
        SerializePlanServiceRequest({"prod", {64, 32}, MaskSpec::Causal(), 0}));
    ASSERT_TRUE(raw.SendAll(std::string_view(frame).substr(0, frame.size() / 2)).ok());
    raw.Close();
  }
  {  // Every byte of a valid frame bit-flipped, one connection per corruption.
    const std::string frame = EncodeFrame(
        FrameType::kPlanRequest,
        SerializePlanServiceRequest({"prod", {64, 32}, MaskSpec::Causal(), 0}));
    for (size_t byte = 0; byte < frame.size(); byte += 7) {  // Stride keeps it fast.
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x20);
      Socket raw = ConnectSocket(address).value();
      ASSERT_TRUE(raw.SendAll(corrupt).ok());
      raw.Close();
    }
  }
  {  // A well-framed payload that is not a valid request message.
    Socket raw = ConnectSocket(address).value();
    ASSERT_TRUE(WriteFrame(raw, FrameType::kPlanRequest, "not-a-request").ok());
    StatusOr<Frame> reply = ReadFrame(raw);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    StatusOr<PlanServiceResponse> decoded =
        DeserializePlanServiceResponse(reply.value().payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().code, StatusCode::kDataLoss);
  }

  // After all of that, the server still serves well-formed traffic.
  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> plan = client->Plan({64, 32}, MaskSpec::Causal());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(service.server->stats().malformed_frames, 1);
}

// The subsystem's stress bar: N client threads x M tenants hammering one server, every
// response asserted bit-identical (via SerializePlan) to a fresh in-process plan.
TEST(PlanService, StressManyClientThreadsManyTenants) {
  constexpr int kTenants = 3;
  constexpr int kThreadsPerTenant = 2;
  constexpr int kCasesPerThread = 6;

  std::vector<TenantConfig> tenants;
  std::vector<ClusterSpec> clusters;
  std::vector<EngineOptions> options;
  for (int t = 0; t < kTenants; ++t) {
    clusters.push_back(SmallCluster(1 + t % 2, 2));
    options.push_back(SmallEngineOptions(16, /*seed=*/100 + static_cast<uint64_t>(t)));
    tenants.push_back({"tenant-" + std::to_string(t), clusters[static_cast<size_t>(t)],
                       options[static_cast<size_t>(t)]});
  }
  PlanServerOptions server_options;
  server_options.workers = 4;
  ServiceFixture service(tenants, server_options);

  struct Observed {
    std::string tenant;
    std::vector<int64_t> seqlens;
    MaskSpec mask;
    int64_t block_size = 0;
    std::string serialized;
  };
  std::vector<std::vector<Observed>> per_thread(kTenants * kThreadsPerTenant);
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kTenants; ++t) {
    for (int w = 0; w < kThreadsPerTenant; ++w) {
      const int slot = t * kThreadsPerTenant + w;
      threads.emplace_back([&, t, w, slot] {
        // Each thread owns its connection; disable the client LRU so every request
        // actually crosses the wire.
        std::unique_ptr<PlanClient> client =
            service.Client("tenant-" + std::to_string(t), /*cache_capacity=*/0);
        Rng rng(1000 + static_cast<uint64_t>(slot));
        for (int c = 0; c < kCasesPerThread; ++c) {
          plan_test::GeneratedCase generated = plan_test::GenerateCase(rng);
          Observed obs;
          obs.tenant = "tenant-" + std::to_string(t);
          obs.seqlens = generated.seqlens;
          obs.mask = plan_test::SmallMaskSpec(generated.mask_kind);
          obs.block_size = generated.block_size;
          StatusOr<PlanHandle> plan =
              client->PlanWithBlockSize(obs.seqlens, obs.mask, obs.block_size);
          if (!plan.ok()) {
            ++failures;
            continue;
          }
          obs.serialized = SerializeTimeless(plan.value()->plan);
          per_thread[static_cast<size_t>(slot)].push_back(std::move(obs));
        }
        (void)w;
      });
    }
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Verify serially against fresh in-process engines (one per tenant, fresh caches:
  // planning is deterministic, so cold plans must equal whatever the service served).
  for (int t = 0; t < kTenants; ++t) {
    Engine local(clusters[static_cast<size_t>(t)], options[static_cast<size_t>(t)]);
    for (int w = 0; w < kThreadsPerTenant; ++w) {
      for (const Observed& obs :
           per_thread[static_cast<size_t>(t * kThreadsPerTenant + w)]) {
        StatusOr<PlanHandle> expected =
            local.PlanWithBlockSize(obs.seqlens, obs.mask, obs.block_size);
        ASSERT_TRUE(expected.ok()) << expected.status().ToString();
        EXPECT_EQ(obs.serialized, SerializeTimeless(expected.value()->plan))
            << "tenant " << obs.tenant;
      }
    }
  }

  const PlanServerStats stats = service.server->stats();
  EXPECT_GE(stats.requests_received, kTenants * kThreadsPerTenant * kCasesPerThread);
  EXPECT_EQ(stats.rejected_overload, 0);
}

TEST(PlanService, StatsRpcReportsServiceAndTenantCounters) {
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)},
                          {"dev", SmallCluster(1, 2), SmallEngineOptions(24)}});
  std::unique_ptr<PlanClient> client = service.Client("prod");
  ASSERT_TRUE(client->Plan({64, 32}, MaskSpec::Causal()).ok());
  ASSERT_TRUE(client->Plan({64, 32}, MaskSpec::Causal()).ok());  // Client-cache hit.
  client->ClearCache();
  ASSERT_TRUE(client->Plan({64, 32}, MaskSpec::Causal()).ok());  // Server-cache hit.

  StatusOr<PlanServiceStatsResponse> stats = client->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().code, StatusCode::kOk);
  EXPECT_GE(stats.value().requests_received, 3);  // 2 plans + the stats RPC itself.
  ASSERT_EQ(stats.value().tenants.size(), 2u);  // Sorted: dev, prod.
  EXPECT_EQ(stats.value().tenants[0].tenant, "dev");
  EXPECT_EQ(stats.value().tenants[1].tenant, "prod");
  EXPECT_EQ(stats.value().tenants[1].requests, 2);
  EXPECT_EQ(stats.value().tenants[1].cache_hits, 1);    // The server-cache hit.
  EXPECT_EQ(stats.value().tenants[1].cache_misses, 1);  // The cold plan.
  EXPECT_EQ(stats.value().tenants[0].requests, 0);

  // Filtered stats: one tenant; unknown tenant is NOT_FOUND.
  StatusOr<PlanServiceStatsResponse> filtered = client->ServerStats("prod");
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered.value().tenants.size(), 1u);
  EXPECT_EQ(filtered.value().tenants[0].tenant, "prod");
  StatusOr<PlanServiceStatsResponse> missing = client->ServerStats("nobody");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().code, StatusCode::kNotFound);
}

TEST(PlanService, DataLoaderRunsTransparentlyOverRemotePlanner) {
  const ClusterSpec cluster = SmallCluster(2, 2);
  EngineOptions options = SmallEngineOptions(256);
  options.planner.head_dim = 16;
  ServiceFixture service({{"prod", cluster, options}});

  DatasetConfig dataset;
  dataset.kind = DatasetKind::kLongDataCollections;
  dataset.max_seq_len = 1024;
  dataset.min_seq_len = 64;
  dataset.seed = 42;
  BatchingConfig batching;
  batching.token_budget = 2048;

  PlanClientOptions client_options;
  client_options.tenant = "prod";
  std::shared_ptr<PlanClient> client =
      PlanClient::Connect(service.server->bound_address(), client_options).value();

  DcpDataLoader remote_loader(BatchStream{LengthSampler(dataset), batching},
                              MaskSpec::Causal(), client, /*lookahead=*/1);
  auto engine = std::make_shared<Engine>(cluster, options);
  DcpDataLoader local_loader(BatchStream{LengthSampler(dataset), batching},
                             MaskSpec::Causal(), engine, /*lookahead=*/1);

  for (int iter = 0; iter < 4; ++iter) {
    PlannedIteration remote = remote_loader.Next();
    PlannedIteration local = local_loader.Next();
    EXPECT_EQ(remote.batch.seqlens, local.batch.seqlens) << "iteration " << iter;
    EXPECT_EQ(SerializeTimeless(remote.plan()), SerializeTimeless(local.plan()))
        << "iteration " << iter;
  }
}

TEST(PlanService, PerTenantQuotaShedsOnlyTheNoisyTenant) {
  // Every serve stalls 300ms (deterministic periodic injection), so the first request
  // of tenant "noisy" pins its single quota slot long enough for a second request to
  // arrive while it is in flight.
  auto injector = std::make_shared<FaultInjector>(1);
  FaultRates stall;
  stall.every_n = 1;
  stall.periodic_action = FaultAction::kDelay;
  stall.delay_ms = 300;
  injector->SetRates(FaultPoint::kServe, stall);

  PlanServerOptions options;
  options.workers = 4;
  options.max_inflight_per_tenant = 1;
  options.fault_injector = injector;
  ServiceFixture service({{"noisy", SmallCluster(1, 2), SmallEngineOptions(16)},
                          {"quiet", SmallCluster(1, 2), SmallEngineOptions(24)}},
                         options);

  std::thread burst([&service] {
    std::unique_ptr<PlanClient> first = service.Client("noisy");
    StatusOr<PlanHandle> held = first->Plan({64, 32}, MaskSpec::Causal());
    EXPECT_TRUE(held.ok()) << held.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Second request for the same tenant while the first holds the slot: shed.
  std::unique_ptr<PlanClient> second = service.Client("noisy");
  StatusOr<PlanHandle> over_quota = second->Plan({48, 24}, MaskSpec::Causal());
  ASSERT_FALSE(over_quota.ok());
  EXPECT_EQ(over_quota.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(over_quota.status().message().find("over quota"), std::string::npos)
      << over_quota.status().message();

  // The other tenant is unaffected (slow, but admitted).
  std::unique_ptr<PlanClient> quiet = service.Client("quiet");
  StatusOr<PlanHandle> fine = quiet->Plan({64, 32}, MaskSpec::Causal());
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
  burst.join();

  EXPECT_GE(service.server->stats().shed_quota, 1);
  // Per-tenant shed counts surface through the stats RPC.
  StatusOr<PlanServiceStatsResponse> stats = quiet->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().tenants.size(), 2u);  // Sorted: noisy, quiet.
  EXPECT_GE(stats.value().tenants[0].shed_quota, 1);
  EXPECT_EQ(stats.value().tenants[1].shed_quota, 0);
}

TEST(PlanService, ExpiredDeadlinesAreShedUnplanned) {
  // Serve-side stall of 150ms against a 50ms request deadline: by the time a worker
  // picks the request up its budget is gone, and the server must not plan it.
  auto injector = std::make_shared<FaultInjector>(2);
  FaultRates stall;
  stall.every_n = 1;
  stall.periodic_action = FaultAction::kDelay;
  stall.delay_ms = 150;
  injector->SetRates(FaultPoint::kServe, stall);
  PlanServerOptions options;
  options.fault_injector = injector;
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}},
                         options);

  PlanClientOptions client_options;
  client_options.tenant = "prod";
  client_options.deadline_ms = 50;
  client_options.retry.max_attempts = 1;  // The shed status is the assertion target.
  std::unique_ptr<PlanClient> client =
      PlanClient::Connect(service.server->bound_address(), client_options).value();
  StatusOr<PlanHandle> shed = client->Plan({64, 32}, MaskSpec::Causal());
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(service.server->stats().shed_deadline, 1);
  EXPECT_GE(service.server->BuildStatsResponse("").shed_deadline, 1);
}

TEST(PlanService, GossipReplicatesRecordsAcrossPeers) {
  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions options = SmallEngineOptions(16);

  // Replica A plans; replica B (peered with A, same tenant config) must adopt the
  // record via anti-entropy and serve it without planning.
  ServiceFixture replica_a({{"prod", cluster, options}});
  PlanServerOptions b_options;
  b_options.peers = {replica_a.server->bound_address()};
  b_options.gossip_interval_ms = 20;
  ServiceFixture replica_b({{"prod", cluster, options}}, b_options);

  const std::vector<int64_t> seqlens = {60, 33, 18};
  const MaskSpec mask = MaskSpec::Lambda(4, 13);
  std::unique_ptr<PlanClient> client_a = replica_a.Client("prod");
  const PlanHandle planned_on_a = client_a->Plan(seqlens, mask).value();

  // Wait for one successful gossip round (bounded; typically one interval).
  bool adopted = false;
  for (int i = 0; i < 250 && !adopted; ++i) {
    adopted = replica_b.server->stats().sync_records_adopted >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(adopted) << "replica B never adopted A's record";
  EXPECT_GE(replica_a.server->stats().sync_records_shipped, 1);

  // B serves the shape from the adopted record — no planning, bit-identical bytes.
  std::unique_ptr<PlanClient> client_b = replica_b.Client("prod");
  StatusOr<PlanHandle> from_b = client_b->Plan(seqlens, mask);
  ASSERT_TRUE(from_b.ok()) << from_b.status().ToString();
  EXPECT_EQ(client_b->last_source(), PlanServeSource::kReplicaCache);
  EXPECT_TRUE(from_b.value()->signature == planned_on_a->signature);
  EXPECT_EQ(SerializeTimeless(from_b.value()->plan),
            SerializeTimeless(planned_on_a->plan));
  EXPECT_GE(replica_b.server->stats().replica_cache_hits, 1);
  EXPECT_EQ(replica_b.registry->Find("prod")->cache_stats().misses, 0);
}

TEST(PlanService, StaleGossipRecordsAreRejectedByValidation) {
  const ClusterSpec cluster = SmallCluster(1, 2);
  const EngineOptions options = SmallEngineOptions(16);

  // Replica A ships corrupted ("stale") records on every sync; B must reject every one
  // of them at validation and adopt nothing.
  auto stale = std::make_shared<FaultInjector>(3);
  FaultRates corrupt;
  corrupt.stale = 1.0;
  stale->SetRates(FaultPoint::kSyncRecord, corrupt);
  PlanServerOptions a_options;
  a_options.fault_injector = stale;
  ServiceFixture replica_a({{"prod", cluster, options}}, a_options);

  PlanServerOptions b_options;
  b_options.peers = {replica_a.server->bound_address()};
  b_options.gossip_interval_ms = 20;
  ServiceFixture replica_b({{"prod", cluster, options}}, b_options);

  std::unique_ptr<PlanClient> client_a = replica_a.Client("prod");
  ASSERT_TRUE(client_a->Plan({64, 32}, MaskSpec::Causal()).ok());

  bool rejected = false;
  for (int i = 0; i < 250 && !rejected; ++i) {
    rejected = replica_b.server->stats().sync_records_rejected >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(rejected) << "replica B never saw (and rejected) a stale record";
  EXPECT_EQ(replica_b.server->stats().sync_records_adopted, 0);
}

TEST(PlanService, ClientReconnectsAfterServerRestart) {
  const ClusterSpec cluster = SmallCluster(1, 2);
  const EngineOptions options = SmallEngineOptions(16);
  auto registry = std::make_shared<TenantRegistry>();
  ASSERT_TRUE(registry->Register({"prod", cluster, options}).ok());

  auto server = std::make_unique<PlanServer>(registry, PlanServerOptions{});
  ASSERT_TRUE(server->Start(ServiceAddress::Tcp("127.0.0.1", 0)).ok());
  const ServiceAddress address = server->bound_address();

  std::unique_ptr<PlanClient> client =
      PlanClient::Connect(address, PlanClientOptions{.tenant = "prod"}).value();
  ASSERT_TRUE(client->Plan({64, 32}, MaskSpec::Causal()).ok());

  // Restart the server on the same port (new engines, same tenant config).
  server->Stop();
  server = std::make_unique<PlanServer>(registry, PlanServerOptions{});
  ASSERT_TRUE(server->Start(address).ok());

  // A different request (the first is in the client LRU): one transparent reconnect.
  StatusOr<PlanHandle> replanned = client->Plan({48, 24}, MaskSpec::Causal());
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
  EXPECT_GE(client->stats().reconnects, 1);
}

// A raw TCP client socket with NO fault injector attached (ConnectSocket would attach
// the global one), for tests that arm server-side-only faults.
Socket RawTcpConnect(const ServiceAddress& address) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(static_cast<uint16_t>(address.port));
  EXPECT_EQ(::inet_pton(AF_INET, address.host.c_str(), &sin.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)), 0);
  return Socket(fd);
}

TEST(PlanService, TransientAcceptFailuresRetriedNeverFatal) {
  // Every accept attempt fails (injected EMFILE/ECONNABORTED-style pressure) without
  // consuming the pending connection. The old accept loop exited on the first such
  // error, leaving a permanently deaf server; the event loop must back off and retry.
  auto injector = std::make_shared<FaultInjector>(11);
  FaultRates accept_pressure;
  accept_pressure.fail = 1.0;
  injector->SetRates(FaultPoint::kAccept, accept_pressure);
  PlanServerOptions options;
  options.fault_injector = injector;
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}},
                         options);

  // The TCP handshake completes regardless (the kernel backlog holds the connection);
  // the server just never accept(2)s it while the pressure lasts.
  Socket pending = RawTcpConnect(service.server->bound_address());
  bool retried = false;
  for (int i = 0; i < 250 && !retried; ++i) {
    retried = service.server->stats().accept_soft_errors >= 2;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(retried) << "accept path did not keep retrying under pressure";
  EXPECT_TRUE(service.server->running());

  // Pressure ends: the retry must drain the backlog and serve the waiting connection.
  injector->SetRates(FaultPoint::kAccept, FaultRates{});
  pending.set_io_timeout_ms(5000);
  ASSERT_TRUE(WriteFrame(pending, FrameType::kPlanRequest,
                         SerializePlanServiceRequest(
                             {"prod", {64, 32}, MaskSpec::Causal(), 0}))
                  .ok());
  StatusOr<Frame> reply = ReadFrame(pending);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  StatusOr<PlanServiceResponse> response =
      DeserializePlanServiceResponse(reply.value().payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, StatusCode::kOk);
}

TEST(PlanService, OverloadedNonPlanRequestsGetTypeMatchedReplies) {
  PlanServerOptions drained;
  drained.max_queue = 0;  // Reject everything.
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}},
                         drained);

  // A sync request rejected under overload used to come back as a kPlanResponse the
  // gossip client cannot decode; the rejection must be a parseable kSyncResponse.
  {
    Socket raw = ConnectSocket(service.server->bound_address()).value();
    PlanSyncRequest sync;
    sync.tenant = "prod";
    ASSERT_TRUE(WriteFrame(raw, FrameType::kSyncRequest,
                           SerializePlanSyncRequest(sync))
                    .ok());
    StatusOr<Frame> reply = ReadFrame(raw);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().type, FrameType::kSyncResponse);
    StatusOr<PlanSyncResponse> response =
        DeserializePlanSyncResponse(reply.value().payload);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().code, StatusCode::kUnavailable);
  }
  // Stats rejections stay type-matched too.
  {
    Socket raw = ConnectSocket(service.server->bound_address()).value();
    ASSERT_TRUE(WriteFrame(raw, FrameType::kStatsRequest,
                           SerializePlanServiceStatsRequest({""}))
                    .ok());
    StatusOr<Frame> reply = ReadFrame(raw);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().type, FrameType::kStatsResponse);
    StatusOr<PlanServiceStatsResponse> response =
        DeserializePlanServiceStatsResponse(reply.value().payload);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().code, StatusCode::kUnavailable);
  }
  EXPECT_GE(service.server->stats().rejected_overload, 2);
}

TEST(PlanService, SlowReadersAreShedWholeConnectionsOnly) {
  PlanServerOptions options;
  options.max_output_queue_bytes = 8 * 1024;  // Tiny outbox bound for the test.
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}},
                         options);

  // A client that pipelines hundreds of requests and never reads a byte: once the
  // kernel buffers fill, responses accumulate in the server outbox until the bound
  // sheds the connection. The server itself must stay healthy throughout.
  {
    Socket slow = RawTcpConnect(service.server->bound_address());
    const std::string request = SerializePlanServiceRequest(
        {"prod", {64, 32}, MaskSpec::Causal(), 0});
    for (int i = 0; i < 400; ++i) {
      if (!WriteFrame(slow, FrameType::kPlanRequest, request).ok()) {
        break;  // The server already shed us mid-pipeline; that is the point.
      }
    }
    bool shed = false;
    for (int i = 0; i < 500 && !shed; ++i) {
      shed = service.server->stats().slow_reader_closes >= 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(shed) << "outbox bound never shed the unread connection";
  }
  // Shedding was per-connection: a well-behaved client is completely unaffected.
  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> plan = client->Plan({64, 32}, MaskSpec::Causal());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST(PlanService, PeerCloseWithResponsesInFlightNeverKillsTheServer) {
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}});
  const std::string request = SerializePlanServiceRequest(
      {"prod", {64, 32}, MaskSpec::Causal(), 0});

  // Fire a request and slam the connection shut before the response can be written:
  // the server's queued non-blocking write lands on a closed peer (RST/EPIPE).
  for (int i = 0; i < 8; ++i) {
    Socket hit_and_run = RawTcpConnect(service.server->bound_address());
    ASSERT_TRUE(WriteFrame(hit_and_run, FrameType::kPlanRequest, request).ok());
    hit_and_run.Close();
  }
  // Half-close variant: the peer shuts down its write side mid-frame (a torn request)
  // while the read side is already gone.
  for (int i = 0; i < 8; ++i) {
    Socket torn = RawTcpConnect(service.server->bound_address());
    const std::string frame = EncodeFrame(FrameType::kPlanRequest, request);
    ASSERT_TRUE(
        torn.SendAll(std::string_view(frame).substr(0, frame.size() - 3)).ok());
    torn.Close();
  }

  // The server survived every variant and still serves.
  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> plan = client->Plan({64, 32}, MaskSpec::Causal());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(service.server->running());
}

TEST(PlanService, ServerSideTearOnNonBlockingWriteIsRecoverable) {
  // Arm the global injector so the server's ACCEPTED sockets (which attach it) tear
  // every send mid-frame; the client connects raw, so only the server side faults.
  auto tearing = std::make_shared<FaultInjector>(17);
  FaultRates tear;
  tear.tear = 1.0;
  tear.tear_bytes = 10;  // Mid-frame-header: the client sees a torn response.
  tearing->SetRates(FaultPoint::kSend, tear);
  InstallGlobalFaultInjector(tearing);

  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}});
  {
    Socket raw = RawTcpConnect(service.server->bound_address());
    raw.set_io_timeout_ms(5000);
    ASSERT_TRUE(WriteFrame(raw, FrameType::kPlanRequest,
                           SerializePlanServiceRequest(
                               {"prod", {64, 32}, MaskSpec::Causal(), 0}))
                    .ok());
    StatusOr<Frame> reply = ReadFrame(raw);
    ASSERT_FALSE(reply.ok());  // Torn mid-response.
    EXPECT_EQ(reply.status().code(), StatusCode::kDataLoss);
  }
  // Disarm: the same server must serve the next connection cleanly.
  InstallGlobalFaultInjector(nullptr);
  EXPECT_TRUE(service.server->running());
  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> plan = client->Plan({64, 32}, MaskSpec::Causal());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST(PlanService, PollBackendServesIdenticallyToEpoll) {
  const ClusterSpec cluster = SmallCluster(2, 2);
  const EngineOptions options = SmallEngineOptions(16);
  PlanServerOptions poll_options;
  poll_options.force_poll_backend = true;
  poll_options.io_threads = 1;
  ServiceFixture service({{"prod", cluster, options}}, poll_options);
  EXPECT_EQ(service.server->poller_backend(), Poller::Backend::kPoll);
  EXPECT_EQ(service.server->io_thread_count(), 1);

  const std::vector<int64_t> seqlens = {60, 33, 18};
  const MaskSpec mask = MaskSpec::Lambda(4, 13);
  Engine local(cluster, options);
  std::unique_ptr<PlanClient> client = service.Client("prod");
  StatusOr<PlanHandle> remote = client->Plan(seqlens, mask);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(SerializeTimeless(remote.value()->plan),
            SerializeTimeless(local.Plan(seqlens, mask).value()->plan));
}

TEST(PlanService, WarmServesAreZeroCopy) {
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}});
  // Two fresh clients, same shape: both responses carry the record, and both frames
  // point at the shared cached bytes instead of copying them.
  for (int i = 0; i < 2; ++i) {
    std::unique_ptr<PlanClient> client = service.Client("prod");
    ASSERT_TRUE(client->Plan({64, 32}, MaskSpec::Causal()).ok());
  }
  EXPECT_GE(service.server->stats().zero_copy_serves, 2);
}

TEST(PlanService, MetricsScrapeShowsEverySourceAndPhaseTotals) {
  // The tentpole acceptance check, in-process: drive a request through every serve
  // source reachable here, then take ONE wire scrape and assert each source shows
  // up as a labeled per-tenant serve-latency series, alongside per-phase totals.
  // All servers stay alive until the scrape — a dead server's child registry
  // (correctly) drops out of the global render.
  namespace fs = std::filesystem;
  const fs::path store_dir =
      fs::path(::testing::TempDir()) / "dcp_metrics_e2e_store";
  fs::remove_all(store_dir);
  fs::create_directories(store_dir);
  const ClusterSpec cluster = SmallCluster(2, 2);
  EngineOptions options = SmallEngineOptions(16);
  options.plan_store_path = store_dir.string();
  const std::vector<int64_t> warm = {60, 33, 18};
  const std::vector<int64_t> fresh_shape = {44, 21};
  const MaskSpec mask = MaskSpec::Lambda(4, 13);

  // Seed the store from a throwaway server, so the live one can store-hit.
  {
    ServiceFixture seeder({{"metrics-e2e", cluster, options}});
    ASSERT_TRUE(seeder.Client("metrics-e2e")->Plan(warm, mask).ok());
  }

  ServiceFixture service({{"metrics-e2e", cluster, options}});
  std::unique_ptr<PlanClient> client = service.Client("metrics-e2e");
  // Memory cache is cold but the store is warm: store-cache.
  ASSERT_TRUE(client->Plan(warm, mask).ok());
  EXPECT_EQ(client->last_source(), PlanServeSource::kStoreCache);
  // A shape the fleet has never seen: planned.
  ASSERT_TRUE(client->Plan(fresh_shape, mask).ok());
  EXPECT_EQ(client->last_source(), PlanServeSource::kPlanned);
  // Same client, same shape: client-cache (no RPC — only the client can see it).
  ASSERT_TRUE(client->Plan(fresh_shape, mask).ok());
  EXPECT_EQ(client->last_source(), PlanServeSource::kClientCache);
  // Fresh client, warm server: memory-cache.
  std::unique_ptr<PlanClient> second = service.Client("metrics-e2e");
  ASSERT_TRUE(second->Plan(fresh_shape, mask).ok());
  EXPECT_EQ(second->last_source(), PlanServeSource::kMemoryCache);

  // Replica-cache: a peer adopts the record via anti-entropy and serves from it.
  PlanServerOptions peer_options;
  peer_options.peers = {service.server->bound_address()};
  peer_options.gossip_interval_ms = 20;
  ServiceFixture peer({{"metrics-e2e", cluster, SmallEngineOptions(16)}},
                      peer_options);
  bool adopted = false;
  for (int i = 0; i < 250 && !adopted; ++i) {
    adopted = peer.server->stats().sync_records_adopted >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(adopted) << "peer never adopted a gossip record";
  std::unique_ptr<PlanClient> peer_client = peer.Client("metrics-e2e");
  ASSERT_TRUE(peer_client->Plan(fresh_shape, mask).ok());
  EXPECT_EQ(peer_client->last_source(), PlanServeSource::kReplicaCache);

  StatusOr<PlanServiceMetricsResponse> scrape = client->ServerMetrics("dcp_");
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  ASSERT_EQ(scrape.value().code, StatusCode::kOk);
  const std::string& text = scrape.value().text;
  // Server-observed sources, per tenant (labels render alphabetically).
  for (const char* source : {"planned", "memory-cache", "store-cache",
                             "replica-cache"}) {
    const std::string needle = std::string(
        "dcp_server_serve_latency_us_count{source=\"") + source +
        "\",tenant=\"metrics-e2e\"}";
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // Client-cache never reaches a server; the client-side histogram carries it.
  EXPECT_NE(
      text.find("dcp_client_plan_latency_us_count{source=\"client-cache\","
                "tenant=\"metrics-e2e\"}"),
      std::string::npos);
  // Per-phase totals accumulated across the requests above.
  for (const char* phase : {"queue_wait", "cache_probe", "store_read",
                            "plan_initial", "encode", "write_drain"}) {
    const std::string needle =
        std::string("dcp_phase_us_total{phase=\"") + phase + "\"}";
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // The server kept per-request traces: the ring holds completed plan serves
  // carrying the tenant and a non-zero trace id (stamped client-side).
  const std::vector<metrics::Trace> traces = service.server->recent_traces();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces.front().tenant, "metrics-e2e");
  EXPECT_NE(traces.front().trace_id, 0u);
}

TEST(PlanService, MetricsScrapeSurvivesConcurrentTrafficAndStop) {
  // TSan target: scraping (registry snapshot + render) races real recording
  // (workers planning, IO loops draining, gauges moving) and finally Stop().
  // Nothing here asserts counts — the assertion is "no data race, no torn
  // scrape, no crash".
  ServiceFixture service({{"prod", SmallCluster(1, 2), SmallEngineOptions(16)}});
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      std::unique_ptr<PlanClient> client = service.Client("prod");
      Rng rng(0x5ca1ab1eULL + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<int64_t> seqlens = {rng.NextInt(16, 80), rng.NextInt(16, 80)};
        (void)client->Plan(seqlens, MaskSpec::Causal());
      }
    });
  }
  threads.emplace_back([&] {
    std::unique_ptr<PlanClient> scraper = service.Client("prod");
    while (!stop.load(std::memory_order_relaxed)) {
      StatusOr<PlanServiceMetricsResponse> scrape = scraper->ServerMetrics("dcp_");
      if (scrape.ok()) {
        EXPECT_EQ(scrape.value().code, StatusCode::kOk);
        EXPECT_FALSE(scrape.value().text.empty());
      }
      (void)service.server->recent_traces();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Stop the server while clients and the scraper are still firing; they see
  // clean transport errors, never torn state.
  service.server->Stop();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) {
    thread.join();
  }
}

}  // namespace
}  // namespace dcp
