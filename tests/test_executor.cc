// End-to-end correctness of the DCP pipeline: plan a batch, execute it numerically across
// simulated devices, and compare outputs and gradients against the single-device reference
// attention — across masks, batch shapes, block sizes and cluster geometries.
#include "runtime/executor.h"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/planner.h"
#include "runtime/reference_attention.h"

namespace dcp {
namespace {

struct ExecutorCase {
  MaskKind mask;
  std::vector<int64_t> seqlens;
  int64_t block_size;
  int num_nodes;
  int devices_per_node;
  std::string name;
};

class ExecutorCorrectness : public ::testing::TestWithParam<ExecutorCase> {};

PlannerOptions SmallOptions(int64_t block_size) {
  PlannerOptions options;
  options.block_size = block_size;
  options.num_groups = 2;
  options.heads_per_group = 2;
  options.head_dim = 8;
  options.divisions = 3;
  return options;
}

MaskSpec SmallMaskSpec(MaskKind kind) {
  MaskSpec spec = MaskSpec::ForKind(kind);
  // Shrink mask parameters so short test sequences still exercise sparsity.
  spec.sink_tokens = 4;
  spec.window_tokens = 13;
  spec.icl_block_tokens = 8;
  return spec;
}

TEST_P(ExecutorCorrectness, ForwardAndBackwardMatchReference) {
  const ExecutorCase& c = GetParam();
  ClusterSpec cluster;
  cluster.num_nodes = c.num_nodes;
  cluster.devices_per_node = c.devices_per_node;

  const MaskSpec spec = SmallMaskSpec(c.mask);
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, c.seqlens);
  const PlannerOptions options = SmallOptions(c.block_size);
  BatchPlan plan = PlanBatch(c.seqlens, masks, cluster, options);

  // Every chunk must be assigned a device within range.
  for (DeviceId home : plan.chunk_home) {
    ASSERT_GE(home, 0);
    ASSERT_LT(home, cluster.num_devices());
  }

  Rng rng(1234);
  std::vector<SeqTensors> inputs;
  std::vector<Tensor> douts;
  for (int64_t len : c.seqlens) {
    inputs.push_back(SeqTensors::Random(options.num_groups * options.heads_per_group,
                                        options.num_groups, len, options.head_dim, rng));
    douts.push_back(Tensor::Random(
        {options.num_groups * options.heads_per_group, len, options.head_dim}, rng));
  }

  NumericExecutor executor(&plan, &masks);
  executor.LoadInputs(inputs);
  executor.RunForward();
  std::vector<Tensor> outputs = executor.GatherOutputs();

  ASSERT_EQ(outputs.size(), c.seqlens.size());
  for (size_t s = 0; s < c.seqlens.size(); ++s) {
    Tensor reference = ReferenceAttentionForward(inputs[s], masks[s]);
    EXPECT_LT(Tensor::MaxAbsDiff(outputs[s], reference), 1e-4f)
        << "forward mismatch on sequence " << s;
  }

  executor.LoadOutputGrads(douts);
  executor.RunBackward();
  std::vector<SeqGrads> grads = executor.GatherInputGrads();
  for (size_t s = 0; s < c.seqlens.size(); ++s) {
    Tensor reference = ReferenceAttentionForward(inputs[s], masks[s]);
    SeqGrads expect = ReferenceAttentionBackward(inputs[s], masks[s], reference, douts[s]);
    EXPECT_LT(Tensor::MaxAbsDiff(grads[s].dq, expect.dq), 2e-4f) << "dq seq " << s;
    EXPECT_LT(Tensor::MaxAbsDiff(grads[s].dk, expect.dk), 2e-4f) << "dk seq " << s;
    EXPECT_LT(Tensor::MaxAbsDiff(grads[s].dv, expect.dv), 2e-4f) << "dv seq " << s;
  }
}

std::vector<ExecutorCase> MakeCases() {
  std::vector<ExecutorCase> cases;
  int index = 0;
  for (MaskKind mask : AllMaskKinds()) {
    // Variable-length batch on a 2x2 cluster, ragged chunks included.
    cases.push_back({mask, {37, 16, 64, 9}, 16, 2, 2,
                     MaskKindName(mask) + "_VarLen2x2"});
    // Single long sequence across 4 devices in one node.
    cases.push_back({mask, {96}, 16, 1, 4, MaskKindName(mask) + "_OneSeq1x4"});
    // Many short sequences, DP-like placement expected.
    cases.push_back({mask, {24, 24, 24, 24, 24, 24}, 24, 2, 2,
                     MaskKindName(mask) + "_ManyShort2x2"});
    // Single device: degenerate (no communication at all).
    cases.push_back({mask, {50, 30}, 16, 1, 1, MaskKindName(mask) + "_SingleDev"});
    ++index;
  }
  // Block size not dividing sequence lengths (heavily ragged).
  cases.push_back({MaskKind::kCausal, {33, 47}, 10, 2, 2, "Causal_Ragged"});
  // Block size 1 stress (every token its own chunk).
  cases.push_back({MaskKind::kLambda, {18}, 1, 1, 3, "Lambda_TinyBlocks"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ExecutorCorrectness, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<ExecutorCase>& info) {
                           return info.param.name;
                         });

TEST(ExecutorDeterminism, RepeatedRunsProduceIdenticalOutputs) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;
  const std::vector<int64_t> seqlens = {40, 24};
  const MaskSpec spec = MaskSpec::Causal();
  std::vector<SequenceMask> masks = BuildBatchMasks(spec, seqlens);
  PlannerOptions options = SmallOptions(8);
  BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);

  Rng rng(5);
  std::vector<SeqTensors> inputs;
  for (int64_t len : seqlens) {
    inputs.push_back(SeqTensors::Random(4, 2, len, options.head_dim, rng));
  }
  NumericExecutor executor(&plan, &masks);
  executor.LoadInputs(inputs);
  executor.RunForward();
  std::vector<Tensor> first = executor.GatherOutputs();
  executor.RunForward();
  std::vector<Tensor> second = executor.GatherOutputs();
  for (size_t s = 0; s < seqlens.size(); ++s) {
    EXPECT_EQ(Tensor::MaxAbsDiff(first[s], second[s]), 0.0f);
  }
}

}  // namespace
}  // namespace dcp
