#include "core/placement.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcp {
namespace {

struct Built {
  BlockGraph graph;
  BuiltHypergraph hyper;
};

Built MakeBatch(std::vector<int64_t> seqlens, int64_t block_size, MaskKind kind) {
  BatchLayout layout;
  layout.seqlens = std::move(seqlens);
  layout.block_size = block_size;
  layout.num_groups = 2;
  layout.heads_per_group = 2;
  layout.head_dim = 16;
  std::vector<SequenceMask> masks =
      BuildBatchMasks(MaskSpec::ForKind(kind), layout.seqlens);
  Built built;
  built.graph = GenerateBlocks(layout, masks);
  built.hyper = BuildPlacementHypergraph(built.graph);
  return built;
}

TEST(Placement, AssignsEverythingWithinDeviceRange) {
  Built built = MakeBatch({4096, 2048, 1024, 3072}, 512, MaskKind::kCausal);
  PlacementOptions options;
  options.num_nodes = 2;
  options.devices_per_node = 4;
  PlacementResult result = PlaceBlocks(built.graph, built.hyper, options);
  ASSERT_EQ(static_cast<int>(result.chunk_device.size()), built.graph.num_chunks());
  ASSERT_EQ(static_cast<int>(result.comp_device.size()), built.graph.num_comp_blocks());
  for (DeviceId d : result.chunk_device) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 8);
  }
  for (DeviceId d : result.comp_device) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 8);
  }
}

TEST(Placement, SingleDeviceMapsEverythingToZero) {
  Built built = MakeBatch({1024}, 256, MaskKind::kCausal);
  PlacementOptions options;
  options.num_nodes = 1;
  options.devices_per_node = 1;
  PlacementResult result = PlaceBlocks(built.graph, built.hyper, options);
  for (DeviceId d : result.chunk_device) {
    EXPECT_EQ(d, 0);
  }
}

// Re-derives the inter-node communication volume for a placement: edges spanning devices
// of different nodes contribute weight x (nodes spanned - 1).
double InterNodeCost(const BuiltHypergraph& built, const PlacementResult& placement,
                     int devices_per_node) {
  double cost = 0.0;
  auto device_of = [&](VertexId v) {
    return built.IsChunkVertex(v)
               ? placement.chunk_device[static_cast<size_t>(v)]
               : placement.comp_device[static_cast<size_t>(v - built.num_chunk_vertices)];
  };
  for (EdgeId e = 0; e < built.hg.num_edges(); ++e) {
    uint64_t nodes_seen = 0;
    auto [pb, pe] = built.hg.EdgePins(e);
    for (const VertexId* p = pb; p != pe; ++p) {
      nodes_seen |= uint64_t{1} << (device_of(*p) / devices_per_node);
    }
    const int lambda = __builtin_popcountll(nodes_seen);
    if (lambda > 1) {
      cost += built.hg.edge_weight(e) * (lambda - 1);
    }
  }
  return cost;
}

TEST(Placement, HierarchicalReducesInterNodeTrafficVsFlat) {
  Built built = MakeBatch({8192, 4096, 4096, 2048, 6144}, 512, MaskKind::kCausal);
  PlacementOptions options;
  options.num_nodes = 4;
  options.devices_per_node = 2;
  options.seed = 3;
  PlacementResult hierarchical = PlaceBlocks(built.graph, built.hyper, options);
  options.hierarchical = false;
  PlacementResult flat = PlaceBlocks(built.graph, built.hyper, options);
  const double h_cost = InterNodeCost(built.hyper, hierarchical, 2);
  const double f_cost = InterNodeCost(built.hyper, flat, 2);
  // The two-level scheme should not be (much) worse on the metric it optimizes first.
  EXPECT_LE(h_cost, f_cost * 1.25 + 1e-9)
      << "hierarchical " << h_cost << " vs flat " << f_cost;
}

TEST(Placement, ShortSequencesAvoidCommunicationEntirely) {
  // Many short single-chunk sequences on 2 devices: the optimizer can always place each
  // sequence's chunk and tiles together => zero communication.
  Built built = MakeBatch({512, 512, 512, 512, 512, 512, 512, 512}, 512,
                          MaskKind::kCausal);
  PlacementOptions options;
  options.num_nodes = 1;
  options.devices_per_node = 2;
  PlacementResult result = PlaceBlocks(built.graph, built.hyper, options);
  EXPECT_DOUBLE_EQ(result.device_level_cost, 0.0);
  // And it should still balance: both devices get some chunks.
  std::array<int, 2> counts = {0, 0};
  for (DeviceId d : result.chunk_device) {
    ++counts[static_cast<size_t>(d)];
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
}

TEST(Placement, GreedyModeWorksAsAblation) {
  Built built = MakeBatch({4096, 1024}, 512, MaskKind::kLambda);
  PlacementOptions options;
  options.num_nodes = 2;
  options.devices_per_node = 2;
  options.use_multilevel = false;
  PlacementResult result = PlaceBlocks(built.graph, built.hyper, options);
  EXPECT_EQ(static_cast<int>(result.chunk_device.size()), built.graph.num_chunks());
}

}  // namespace
}  // namespace dcp
