// RingFlashAttention traits (paper baseline (i), [49]): sequence-dimension-only context
// parallelism. Ring places the r-th contiguous band of every sequence on device r; ZigZag
// splits each sequence into 2R bands and pairs band i with band 2R-1-i so causal compute
// balances. No head parallelism: every device exchanges the KV of *all* head groups each
// ring step, which is why RFA carries the highest communication volume of the baselines.
#include "baselines/static_planner.h"

namespace dcp {

BaselineTraits RfaRingTraits() {
  BaselineTraits traits;
  traits.head_parallel = 1;
  traits.zigzag = false;
  return traits;
}

BaselineTraits RfaZigZagTraits() {
  BaselineTraits traits;
  traits.head_parallel = 1;
  traits.zigzag = true;
  return traits;
}

}  // namespace dcp
