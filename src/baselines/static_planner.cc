#include "baselines/static_planner.h"

#include <algorithm>

#include "common/check.h"
#include "core/block_gen.h"
#include "core/plan_compile.h"
#include "core/schedule.h"

namespace dcp {

std::string BaselineKindName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kRfaRing:
      return "RFA(Ring)";
    case BaselineKind::kRfaZigZag:
      return "RFA(ZigZag)";
    case BaselineKind::kLoongTrain:
      return "LoongTrain";
    case BaselineKind::kTransformerEngine:
      return "TransformerEngine";
  }
  return "Unknown";
}

const std::vector<BaselineKind>& AllBaselineKinds() {
  static const std::vector<BaselineKind> kinds = {
      BaselineKind::kRfaRing, BaselineKind::kRfaZigZag, BaselineKind::kLoongTrain,
      BaselineKind::kTransformerEngine};
  return kinds;
}

namespace {

// Band (= ring position) of chunk c out of n chunks, over `columns` ring positions.
int RingColumn(int c, int n, int columns) {
  return std::min(static_cast<int>(static_cast<int64_t>(c) * columns / n), columns - 1);
}

// Zig-zag: 2*columns bands; band i and band 2*columns-1-i both map to column i, so every
// column gets one early and one late band of each sequence (causal balance, paper §2.2).
int ZigZagColumn(int c, int n, int columns) {
  const int band =
      std::min(static_cast<int>(static_cast<int64_t>(c) * 2 * columns / n), 2 * columns - 1);
  return std::min(band, 2 * columns - 1 - band);
}

}  // namespace

BaselineResult PlanBaseline(BaselineKind kind, const std::vector<int64_t>& seqlens,
                            const MaskSpec& mask_spec, const ClusterSpec& cluster,
                            const PlannerOptions& options) {
  const BaselineTraits traits = TraitsFor(kind, options.num_groups);
  const int num_devices = cluster.num_devices();
  const int hp = traits.head_parallel;
  DCP_CHECK_EQ(num_devices % hp, 0);
  DCP_CHECK_EQ(options.num_groups % hp, 0);
  const int columns = num_devices / hp;  // Ring length in the sequence dimension.

  BaselineResult result;
  result.planned_seqlens = seqlens;
  if (traits.pad_to_max) {
    int64_t longest = 0;
    for (int64_t len : seqlens) {
      longest = std::max(longest, len);
    }
    for (int64_t& len : result.planned_seqlens) {
      len = longest;
    }
  }
  result.masks = BuildBatchMasks(mask_spec, result.planned_seqlens);

  const BatchLayout layout = options.MakeLayout(result.planned_seqlens);
  const BlockGraph graph = GenerateBlocks(layout, result.masks);

  // --- Static placement. ---
  PlacementResult placement;
  placement.chunk_device.resize(static_cast<size_t>(graph.num_chunks()));
  std::vector<int> chunk_column(static_cast<size_t>(graph.num_chunks()));
  for (int gc = 0; gc < graph.num_chunks(); ++gc) {
    const TokenChunk& chunk = graph.chunks[static_cast<size_t>(gc)];
    const int n = layout.NumChunks(chunk.seq);
    const int col = traits.zigzag ? ZigZagColumn(chunk.chunk, n, columns)
                                  : RingColumn(chunk.chunk, n, columns);
    chunk_column[static_cast<size_t>(gc)] = col;
    // Within a column the hp devices share the tokens round-robin (they all need every
    // chunk's data for their own head groups; the home only decides who stores it).
    placement.chunk_device[static_cast<size_t>(gc)] = col * hp + gc % hp;
  }
  placement.comp_device.resize(static_cast<size_t>(graph.num_comp_blocks()));
  for (int i = 0; i < graph.num_comp_blocks(); ++i) {
    const CompBlock& block = graph.comp_blocks[static_cast<size_t>(i)];
    const int q_gc = layout.GlobalChunkId(block.seq, block.q_chunk);
    const int col = chunk_column[static_cast<size_t>(q_gc)];
    placement.comp_device[static_cast<size_t>(i)] = col * hp + block.group % hp;
  }
  placement.balanced = true;
  placement.device_level_cost = 0.0;

  // --- Ring-step schedule: division = ring distance between q and kv columns. ---
  ScheduleResult schedule;
  schedule.divisions.assign(
      static_cast<size_t>(num_devices),
      std::vector<std::vector<int>>(static_cast<size_t>(columns)));
  for (int i = 0; i < graph.num_comp_blocks(); ++i) {
    const CompBlock& block = graph.comp_blocks[static_cast<size_t>(i)];
    const int q_col = chunk_column[static_cast<size_t>(
        layout.GlobalChunkId(block.seq, block.q_chunk))];
    const int kv_col = chunk_column[static_cast<size_t>(
        layout.GlobalChunkId(block.seq, block.kv_chunk))];
    const int step = (q_col - kv_col + columns) % columns;
    const DeviceId device = placement.comp_device[static_cast<size_t>(i)];
    schedule.divisions[static_cast<size_t>(device)][static_cast<size_t>(step)].push_back(i);
  }

  // Static rings circulate every KV partition through every ring position, whether or not
  // the local mask needs it — the redundant communication of the paper's Fig. 7. Force
  // those fetches: at step s, device (col, h) receives the KV of column (col - s) for its
  // head groups.
  schedule.forced_kv_keys.assign(
      static_cast<size_t>(num_devices),
      std::vector<std::vector<int64_t>>(static_cast<size_t>(columns)));
  for (int d = 0; d < num_devices; ++d) {
    const int col = d / hp;
    const int head_slot = d % hp;
    for (int step = 1; step < columns; ++step) {
      const int src_col = (col - step + columns) % columns;
      auto& keys = schedule.forced_kv_keys[static_cast<size_t>(d)][static_cast<size_t>(step)];
      for (int gc = 0; gc < graph.num_chunks(); ++gc) {
        if (chunk_column[static_cast<size_t>(gc)] != src_col) {
          continue;
        }
        for (GroupId g = 0; g < layout.num_groups; ++g) {
          if (g % hp == head_slot) {
            keys.push_back(static_cast<int64_t>(gc) * layout.num_groups + g);
          }
        }
      }
    }
  }

  result.plan = CompilePlan(graph, placement, schedule, cluster);
  // Charge the baseline's per-step host overhead (varlen argument construction, tensor
  // reordering) on every attention step.
  if (traits.per_step_seq_overhead_us > 0.0) {
    const double overhead =
        traits.per_step_seq_overhead_us * 1e-6 * static_cast<double>(seqlens.size());
    for (DevicePlan& dev : result.plan.devices) {
      for (auto* stream : {&dev.instructions, &dev.backward_instructions}) {
        for (Instruction& instr : *stream) {
          if (instr.kind == InstrKind::kBlockwiseAttention) {
            instr.host_overhead = overhead;
          }
        }
      }
    }
  }
  result.plan.stats.planning_seconds = 0.0;
  return result;
}

std::vector<BaselineResult> PlanBaselineWaves(BaselineKind kind,
                                              const std::vector<int64_t>& seqlens,
                                              const MaskSpec& mask_spec,
                                              const ClusterSpec& cluster,
                                              const PlannerOptions& options,
                                              int64_t token_budget) {
  const BaselineTraits traits = TraitsFor(kind, options.num_groups);
  if (!traits.pad_to_max) {
    return {PlanBaseline(kind, seqlens, mask_spec, cluster, options)};
  }
  // Greedy wave packing in arrival order: a wave's footprint is (max length so far) x
  // (sequences so far); open a new wave when adding the next sequence would overflow.
  std::vector<std::vector<int64_t>> waves;
  std::vector<int64_t> current;
  int64_t current_max = 0;
  for (int64_t len : seqlens) {
    const int64_t new_max = std::max(current_max, len);
    const int64_t padded =
        new_max * (static_cast<int64_t>(current.size()) + 1);
    if (!current.empty() && padded > token_budget) {
      waves.push_back(current);
      current.clear();
      current_max = 0;
    }
    current.push_back(len);
    current_max = std::max(current_max, len);
  }
  if (!current.empty()) {
    waves.push_back(current);
  }
  std::vector<BaselineResult> results;
  results.reserve(waves.size());
  for (const auto& wave : waves) {
    results.push_back(PlanBaseline(kind, wave, mask_spec, cluster, options));
  }
  return results;
}

}  // namespace dcp
