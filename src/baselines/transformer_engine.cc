// TransformerEngine traits (paper baseline (iii), [30]), as enhanced by the paper: 2D
// head + zigzag-sequence parallelism with variable-length support and per-step local
// masks (the paper adds mask support using DCP's kernels without changing TE's
// communication pattern — which is exactly what this construction does). TE's per-step
// host work (reordering tensors between head and ring parallelism, building varlen
// arguments) scales with the number of sequences; the paper observes it dominating at
// small sequence-length scales (§7.1), modelled here as a per-step, per-sequence fixed
// overhead.
#include "baselines/static_planner.h"

namespace dcp {

BaselineTraits TransformerEngineTraits(int num_groups) {
  BaselineTraits traits;
  traits.head_parallel = num_groups;
  traits.zigzag = true;
  traits.pad_to_max = false;
  traits.per_step_seq_overhead_us = 6.0;
  return traits;
}

// Dispatch lives here so each baseline's description stays in its own translation unit.
BaselineTraits RfaRingTraits();
BaselineTraits RfaZigZagTraits();
BaselineTraits LoongTrainTraits(int num_groups);

BaselineTraits TraitsFor(BaselineKind kind, int num_groups) {
  switch (kind) {
    case BaselineKind::kRfaRing:
      return RfaRingTraits();
    case BaselineKind::kRfaZigZag:
      return RfaZigZagTraits();
    case BaselineKind::kLoongTrain:
      return LoongTrainTraits(num_groups);
    case BaselineKind::kTransformerEngine:
      return TransformerEngineTraits(num_groups);
  }
  return BaselineTraits{};
}

}  // namespace dcp
