// Static context-parallel baselines (paper §7.1): RingFlashAttention with Ring and ZigZag
// placements, LoongTrain-style 2D head+sequence parallelism with padding, and
// TransformerEngine-style head+zigzag-ring with variable-length support.
//
// Each baseline is expressed as a *static* placement + ring-step schedule over the same
// block/ISA machinery DCP uses, then compiled by the same plan compiler. This means every
// baseline runs on the same numeric executor (correctness-checked against the reference)
// and the same discrete-event simulator (timing), exactly mirroring the paper's setup where
// all systems execute on the same GPUs. Ring communication is modelled as fetch-from-owner
// per ring step: per step each device still sends one KV partition and receives one, so
// per-step and total volumes match the ring; only the link choice differs, which the
// node-level NIC contention model absorbs.
#ifndef DCP_BASELINES_STATIC_PLANNER_H_
#define DCP_BASELINES_STATIC_PLANNER_H_

#include <string>
#include <vector>

#include "core/planner.h"
#include "masks/mask.h"
#include "runtime/cluster.h"
#include "runtime/instructions.h"

namespace dcp {

enum class BaselineKind {
  kRfaRing,             // RingFlashAttention, contiguous ring placement.
  kRfaZigZag,           // RingFlashAttention, zig-zag placement (causal load balance).
  kLoongTrain,          // Head x sequence 2D, double-ring; pads to the batch max length.
  kTransformerEngine,   // Head x sequence 2D, zigzag; variable-length capable.
};

std::string BaselineKindName(BaselineKind kind);
const std::vector<BaselineKind>& AllBaselineKinds();

// Structural description of a baseline's parallelization.
struct BaselineTraits {
  int head_parallel = 1;   // Devices splitting the KV-group dimension.
  bool zigzag = false;     // Zig-zag (vs contiguous) band placement.
  bool pad_to_max = false; // Pad every sequence to the batch max (LoongTrain).
  // Extra per-attention-step host overhead per sequence (TransformerEngine's tensor
  // reordering and varlen argument construction, paper §7.1 discussion).
  double per_step_seq_overhead_us = 0.0;
};
BaselineTraits TraitsFor(BaselineKind kind, int num_groups);

struct BaselineResult {
  BatchPlan plan;
  // Masks the plan was built against (rebuilt on padded lengths for LoongTrain).
  std::vector<SequenceMask> masks;
  std::vector<int64_t> planned_seqlens;
};

// Builds the baseline's static plan for a batch. `options` supplies the attention-op spec
// (groups/heads/dim) and the chunk granularity used to form bands.
BaselineResult PlanBaseline(BaselineKind kind, const std::vector<int64_t>& seqlens,
                            const MaskSpec& mask_spec, const ClusterSpec& cluster,
                            const PlannerOptions& options);

// Padding-aware variant: LoongTrain pads every sequence to the longest in the batch, and
// padded tokens count against the token budget — so one logical batch executes as several
// sequential "waves", each holding the sequences whose padded lengths fit the budget.
// Non-padding baselines return a single wave. The measured batch time is the sum over
// waves.
std::vector<BaselineResult> PlanBaselineWaves(BaselineKind kind,
                                              const std::vector<int64_t>& seqlens,
                                              const MaskSpec& mask_spec,
                                              const ClusterSpec& cluster,
                                              const PlannerOptions& options,
                                              int64_t token_budget);

}  // namespace dcp

#endif  // DCP_BASELINES_STATIC_PLANNER_H_
