// LoongTrain traits (paper baseline (ii), [20]): 2D head + sequence parallelism with the
// double-ring communication schedule. Head-parallel degree is set to the number of KV
// groups (the paper's choice minimizing its communication). LoongTrain does not support
// variable-length inputs, so every sequence is padded to the batch's maximum length —
// the padding cost the paper observes at small sequence-length scales emerges from this.
// The inner/outer ring split is a NIC-utilization refinement of the same volume; the
// node-level NIC contention model absorbs its effect, so it is not modelled separately.
#include "baselines/static_planner.h"

namespace dcp {

BaselineTraits LoongTrainTraits(int num_groups) {
  BaselineTraits traits;
  traits.head_parallel = num_groups;
  traits.zigzag = true;
  traits.pad_to_max = true;
  return traits;
}

}  // namespace dcp
