// Batch block layout: how a batch of variable-length sequences is cut into token chunks and
// per-KV-group data blocks (paper §4.1). Shared vocabulary between the planner (which
// assigns blocks) and the runtime (which sizes buffers and interprets block references).
#ifndef DCP_RUNTIME_LAYOUT_H_
#define DCP_RUNTIME_LAYOUT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace dcp {

struct BatchLayout {
  std::vector<int64_t> seqlens;
  int64_t block_size = 1024;  // Tokens per chunk (the paper's hyper-parameter B).
  int num_groups = 2;         // KV head groups (GQA: 8 query heads, 2 KV groups).
  int heads_per_group = 4;    // Query heads served by one KV group.
  int head_dim = 128;
  int bytes_per_element = 2;  // bf16 on the wire, matching the paper's training dtype.

  int num_sequences() const { return static_cast<int>(seqlens.size()); }

  int NumChunks(SeqId s) const {
    return static_cast<int>(CeilDiv(seqlens[static_cast<size_t>(s)], block_size));
  }
  int64_t ChunkBegin(SeqId /*s*/, ChunkId c) const {
    return static_cast<int64_t>(c) * block_size;
  }
  int64_t ChunkEnd(SeqId s, ChunkId c) const {
    return std::min(seqlens[static_cast<size_t>(s)], ChunkBegin(s, c) + block_size);
  }
  int64_t ChunkLen(SeqId s, ChunkId c) const { return ChunkEnd(s, c) - ChunkBegin(s, c); }

  int TotalChunks() const {
    int total = 0;
    for (SeqId s = 0; s < num_sequences(); ++s) {
      total += NumChunks(s);
    }
    return total;
  }

  // Dense index over (sequence, chunk) pairs.
  int GlobalChunkId(SeqId s, ChunkId c) const {
    int base = 0;
    for (SeqId i = 0; i < s; ++i) {
      base += NumChunks(i);
    }
    return base + c;
  }

  int64_t TotalTokens() const {
    int64_t total = 0;
    for (int64_t len : seqlens) {
      total += len;
    }
    return total;
  }

  // --- Wire sizes (bytes, in the training dtype) of the per-group data blocks. ---
  Bytes QBlockBytes(int64_t chunk_len) const {
    return static_cast<Bytes>(heads_per_group) * chunk_len * head_dim * bytes_per_element;
  }
  Bytes KvBlockBytes(int64_t chunk_len) const {
    return static_cast<Bytes>(2) * chunk_len * head_dim * bytes_per_element;
  }
  Bytes OBlockBytes(int64_t chunk_len) const { return QBlockBytes(chunk_len); }
  // Partial-output accumulator: unnormalized output plus per-(head, token) m and l stats.
  Bytes AccBlockBytes(int64_t chunk_len) const {
    return QBlockBytes(chunk_len) +
           static_cast<Bytes>(heads_per_group) * chunk_len * 2 * bytes_per_element;
  }
  // All data blocks of one token chunk, every group and tensor (Q, K, V, O): the placement
  // unit's total footprint.
  Bytes TokenChunkBytes(int64_t chunk_len) const {
    return static_cast<Bytes>(num_groups) *
           (QBlockBytes(chunk_len) + KvBlockBytes(chunk_len) + OBlockBytes(chunk_len));
  }

  int num_query_heads() const { return num_groups * heads_per_group; }
};

}  // namespace dcp

#endif  // DCP_RUNTIME_LAYOUT_H_
