// CPU blockwise attention kernels: the numeric backend of the DCP executor. Forward uses
// the online-softmax update of FlashAttention; backward uses the saved (m, l) statistics
// and the delta = rowsum(dO * O) trick, so partial results from different devices combine
// exactly like the fused GPU kernels the paper builds on.
#ifndef DCP_RUNTIME_ATTENTION_KERNEL_H_
#define DCP_RUNTIME_ATTENTION_KERNEL_H_

#include <span>

#include "masks/mask.h"
#include "runtime/layout.h"

namespace dcp {

// Geometry of one tile invocation; spans index [heads_per_group, block_size, head_dim].
struct TileArgs {
  int heads = 0;            // heads_per_group
  int64_t block_size = 0;   // Slot stride in tokens.
  int head_dim = 0;
  int64_t q_begin = 0;      // Global token ranges within the sequence.
  int64_t q_end = 0;
  int64_t kv_begin = 0;
  int64_t kv_end = 0;
  bool full = false;        // No masked entries inside the tile.
};

// Forward tile: acc (U, m, l) += attention(q, kv) under the mask. `acc` has the kAcc slot
// layout (see buffers.h). Token t of the chunk lives at local row (t - q_begin).
void AttentionTileForward(const SequenceMask& mask, const TileArgs& args,
                          std::span<const float> q, std::span<const float> kv,
                          std::span<float> acc);

// Merge a partial accumulator `src` into `dst` (both kAcc layout, token_count valid rows).
void MergeSoftmaxAccumulators(std::span<float> dst, std::span<const float> src, int heads,
                              int64_t block_size, int head_dim, int64_t token_count);

// O = U / l for the first token_count rows; rows with l == 0 produce zeros.
void FinalizeOutput(std::span<const float> acc, std::span<float> out, int heads,
                    int64_t block_size, int head_dim, int64_t token_count);

// delta[h, t] = sum_d dout[h, t, d] * out[h, t, d].
void ComputeDelta(std::span<const float> dout, std::span<const float> out,
                  std::span<float> delta, int heads, int64_t block_size, int head_dim,
                  int64_t token_count);

// Backward tile: accumulates dq (q chunk) and dkv (kv chunk) given dout/delta and the
// *final* softmax stats (m, l) of the q chunk, recomputing probabilities on the fly.
void AttentionTileBackward(const SequenceMask& mask, const TileArgs& args,
                           std::span<const float> q, std::span<const float> kv,
                           std::span<const float> acc_stats,  // kAcc slot with final m, l.
                           std::span<const float> dout, std::span<const float> delta,
                           std::span<float> dq, std::span<float> dkv);

}  // namespace dcp

#endif  // DCP_RUNTIME_ATTENTION_KERNEL_H_
