#include "runtime/plan_validate.h"

#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace dcp {

std::string PlanValidation::Summary() const {
  if (ok) {
    return "plan valid";
  }
  std::ostringstream out;
  out << errors.size() << " error(s):";
  for (const std::string& error : errors) {
    out << "\n  " << error;
  }
  return out.str();
}

namespace {

struct TransferEnds {
  int sends = 0;
  int recvs = 0;
  size_t send_blocks = 0;
  size_t recv_blocks = 0;
  Bytes send_bytes = 0;
  Bytes recv_bytes = 0;
  DeviceId send_device = kInvalidDevice;
  DeviceId recv_device = kInvalidDevice;
  DeviceId send_peer = kInvalidDevice;
  DeviceId recv_peer = kInvalidDevice;
  int waits = 0;
};

}  // namespace

PlanValidation ValidatePlan(const BatchPlan& plan) {
  PlanValidation result;
  const BatchLayout& layout = plan.layout;

  // Chunk homes.
  size_t expected_chunks = 0;
  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    expected_chunks += static_cast<size_t>(layout.NumChunks(s));
  }
  if (plan.chunk_home.size() != expected_chunks) {
    result.Fail("chunk_home size " + std::to_string(plan.chunk_home.size()) +
                " != expected " + std::to_string(expected_chunks));
  }
  for (DeviceId home : plan.chunk_home) {
    if (home < 0 || home >= plan.num_devices()) {
      result.Fail("chunk home device " + std::to_string(home) + " out of range");
      break;
    }
  }

  // Local chunks partition the batch (per group).
  std::set<std::tuple<SeqId, ChunkId, GroupId>> owned;
  for (const DevicePlan& dev : plan.devices) {
    for (const LocalChunk& chunk : dev.local_chunks) {
      if (!owned.insert({chunk.seq, chunk.chunk, chunk.group}).second) {
        result.Fail("chunk (" + std::to_string(chunk.seq) + "," +
                    std::to_string(chunk.chunk) + "," + std::to_string(chunk.group) +
                    ") owned by multiple devices");
      }
    }
  }
  if (owned.size() != expected_chunks * static_cast<size_t>(layout.num_groups)) {
    result.Fail("local chunks cover " + std::to_string(owned.size()) + " of " +
                std::to_string(expected_chunks * static_cast<size_t>(layout.num_groups)) +
                " (chunk, group) pairs");
  }

  // Instruction-level checks.
  std::map<int32_t, TransferEnds> transfers;
  std::set<std::tuple<SeqId, GroupId, int64_t, int64_t>> forward_tiles;
  for (int d = 0; d < plan.num_devices(); ++d) {
    const DevicePlan& dev = plan.devices[static_cast<size_t>(d)];
    auto check_ref = [&](const BlockRef& ref, const char* where) {
      if (ref.slot < 0 || ref.slot >= dev.num_slots[static_cast<size_t>(ref.kind)]) {
        result.Fail(std::string(where) + ": " + BufKindName(ref.kind) + " slot " +
                    std::to_string(ref.slot) + " out of [0, " +
                    std::to_string(dev.num_slots[static_cast<size_t>(ref.kind)]) +
                    ") on device " + std::to_string(d));
      }
    };
    bool forward_stream = true;
    for (const auto* stream : {&dev.instructions, &dev.backward_instructions}) {
      for (const Instruction& instr : *stream) {
        switch (instr.kind) {
          case InstrKind::kBlockwiseAttention:
            for (const AttentionWorkItem& item : instr.attn_items) {
              check_ref(item.q, "attention q");
              check_ref(item.kv, "attention kv");
              check_ref(item.acc, "attention acc");
              if (instr.backward) {
                check_ref(item.dout, "attention dout");
                check_ref(item.delta, "attention delta");
                check_ref(item.dq, "attention dq");
                check_ref(item.dkv, "attention dkv");
              }
              if (forward_stream && !instr.backward) {
                if (!forward_tiles
                         .insert({item.seq, item.group, item.q_begin, item.kv_begin})
                         .second) {
                  result.Fail("tile (seq " + std::to_string(item.seq) + ", group " +
                              std::to_string(item.group) + ", q " +
                              std::to_string(item.q_begin) + ", kv " +
                              std::to_string(item.kv_begin) + ") computed twice");
                }
              }
            }
            break;
          case InstrKind::kBlockwiseReduction:
            for (const ReduceItem& item : instr.reduce_items) {
              check_ref(item.dst, "reduce dst");
              check_ref(item.src0, "reduce src0");
              if (item.mode == ReduceMode::kComputeDelta) {
                check_ref(item.src1, "reduce src1");
              }
            }
            break;
          case InstrKind::kBlockwiseCopy:
            for (const CopyItem& item : instr.copy_items) {
              check_ref(item.dst, "copy dst");
              check_ref(item.src, "copy src");
            }
            break;
          case InstrKind::kCommLaunch: {
            TransferEnds& ends = transfers[instr.transfer_id];
            for (const TransferBlock& block : instr.blocks) {
              check_ref(block.ref, instr.is_send ? "send block" : "recv block");
            }
            if (instr.is_send) {
              ++ends.sends;
              ends.send_blocks += instr.blocks.size();
              ends.send_bytes = instr.comm_bytes;
              ends.send_device = d;
              ends.send_peer = instr.peer;
            } else {
              ++ends.recvs;
              ends.recv_blocks += instr.blocks.size();
              ends.recv_bytes = instr.comm_bytes;
              ends.recv_device = d;
              ends.recv_peer = instr.peer;
            }
            break;
          }
          case InstrKind::kCommWait:
            ++transfers[instr.transfer_id].waits;
            break;
        }
      }
      forward_stream = false;
    }
  }

  for (const auto& [id, ends] : transfers) {
    const std::string tag = "transfer " + std::to_string(id);
    if (ends.sends != 1 || ends.recvs != 1) {
      result.Fail(tag + ": " + std::to_string(ends.sends) + " sends, " +
                  std::to_string(ends.recvs) + " recvs (want 1/1)");
      continue;
    }
    if (ends.send_blocks != ends.recv_blocks) {
      result.Fail(tag + ": block count mismatch");
    }
    if (ends.send_bytes != ends.recv_bytes) {
      result.Fail(tag + ": byte annotation mismatch");
    }
    if (ends.send_peer != ends.recv_device || ends.recv_peer != ends.send_device) {
      result.Fail(tag + ": peer fields inconsistent");
    }
    if (ends.waits == 0) {
      result.Fail(tag + ": never waited on");
    }
  }
  return result;
}

}  // namespace dcp
