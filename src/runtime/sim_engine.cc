#include "runtime/sim_engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace dcp {
namespace {

struct TransferState {
  double send_ready = -1.0;  // Time the sender posted the launch (< 0: not yet).
  double recv_ready = -1.0;
  Bytes bytes = 0;
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  bool scheduled = false;
  double start = 0.0;
  double finish = 0.0;
};

// Channel key: intra-node transfers contend per (src, dst) device pair (NVSwitch gives
// every pair its own bandwidth); inter-node transfers serialize on the source node's NIC.
int64_t ChannelKey(const ClusterSpec& cluster, DeviceId src, DeviceId dst) {
  if (cluster.SameNode(src, dst)) {
    return (static_cast<int64_t>(src) << 24) | static_cast<int64_t>(dst);
  }
  return (int64_t{1} << 60) | static_cast<int64_t>(cluster.NodeOf(src));
}

}  // namespace

double SimResult::MeanExposedComm() const {
  double total = 0.0;
  for (const auto& dev : devices) {
    total += dev.comm_exposed;
  }
  return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

double SimResult::MeanOverlappedComm() const {
  double total = 0.0;
  for (const auto& dev : devices) {
    total += std::max(0.0, dev.comm_busy - dev.comm_exposed);
  }
  return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

double SimResult::MeanAttentionCompute() const {
  double total = 0.0;
  for (const auto& dev : devices) {
    total += dev.attention;
  }
  return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

double SimResult::MaxComputeBusy() const {
  double worst = 0.0;
  for (const auto& dev : devices) {
    worst = std::max(worst, dev.attention + dev.reduction + dev.copy + dev.overhead);
  }
  return worst;
}

SimResult SimEngine::Simulate(const BatchPlan& plan, bool backward) const {
  const ClusterSpec& cluster = cost_.cluster();
  const int num_devices = plan.num_devices();
  DCP_CHECK_LE(num_devices, cluster.num_devices());

  std::vector<double> clock(static_cast<size_t>(num_devices), 0.0);
  std::vector<size_t> pc(static_cast<size_t>(num_devices), 0);
  SimResult result;
  result.devices.assign(static_cast<size_t>(num_devices), DeviceTimeBreakdown{});
  std::unordered_map<int32_t, TransferState> transfers;
  std::unordered_map<int64_t, double> channel_free;

  std::vector<const std::vector<Instruction>*> programs;
  programs.reserve(static_cast<size_t>(num_devices));
  int done = 0;
  for (const DevicePlan& dev : plan.devices) {
    programs.push_back(backward ? &dev.backward_instructions : &dev.instructions);
    if (programs.back()->empty()) {
      ++done;
    }
  }

  auto try_schedule = [&](TransferState& t) {
    if (t.scheduled || t.send_ready < 0.0 || t.recv_ready < 0.0) {
      return;
    }
    const int64_t key = ChannelKey(cluster, t.src, t.dst);
    double& free_at = channel_free[key];
    t.start = std::max({t.send_ready, t.recv_ready, free_at});
    t.finish = t.start + cost_.ChannelLatencySeconds(t.src, t.dst) +
               static_cast<double>(t.bytes) / cost_.ChannelBandwidth(t.src, t.dst);
    free_at = t.finish;
    t.scheduled = true;
    if (t.dst >= 0 && t.dst < num_devices) {
      result.devices[static_cast<size_t>(t.dst)].comm_busy += t.finish - t.start;
    }
  };

  while (done < num_devices) {
    bool progress = false;
    for (int dev = 0; dev < num_devices; ++dev) {
      const auto& program = *programs[static_cast<size_t>(dev)];
      size_t& counter = pc[static_cast<size_t>(dev)];
      auto& breakdown = result.devices[static_cast<size_t>(dev)];
      double& now = clock[static_cast<size_t>(dev)];
      while (counter < program.size()) {
        const Instruction& instr = program[counter];
        bool executed = true;
        switch (instr.kind) {
          case InstrKind::kBlockwiseAttention: {
            const double launch = cost_.KernelLaunchSeconds() +
                                  cost_.AttnStepOverheadSeconds(instr.backward) +
                                  instr.host_overhead;
            // Roofline: compute plus the HBM traffic of re-reading tile operands.
            const double compute =
                cost_.AttentionSeconds(instr.flops) +
                static_cast<double>(instr.mem_bytes) / (cluster.hbm_gbps * 1e9);
            breakdown.overhead += launch;
            breakdown.attention += compute;
            now += launch + compute;
            break;
          }
          case InstrKind::kBlockwiseReduction: {
            const double launch = cost_.KernelLaunchSeconds();
            const double compute =
                static_cast<double>(instr.mem_bytes) / (cluster.hbm_gbps * 1e9);
            breakdown.overhead += launch;
            breakdown.reduction += compute;
            now += launch + compute;
            break;
          }
          case InstrKind::kBlockwiseCopy: {
            const double launch = cost_.KernelLaunchSeconds();
            const double compute =
                static_cast<double>(instr.mem_bytes) / (cluster.hbm_gbps * 1e9);
            breakdown.overhead += launch;
            breakdown.copy += compute;
            now += launch + compute;
            break;
          }
          case InstrKind::kCommLaunch: {
            const double post = cluster.comm_launch_us * 1e-6;
            breakdown.overhead += post;
            now += post;
            TransferState& t = transfers[instr.transfer_id];
            if (instr.is_send) {
              t.send_ready = now;
              t.src = dev;
              t.bytes = instr.comm_bytes;
            } else {
              t.recv_ready = now;
              t.dst = dev;
            }
            try_schedule(t);
            break;
          }
          case InstrKind::kCommWait: {
            auto it = transfers.find(instr.transfer_id);
            if (it == transfers.end() || !it->second.scheduled) {
              executed = false;  // Peer has not posted its side yet.
              break;
            }
            const double stall = std::max(0.0, it->second.finish - now);
            breakdown.comm_exposed += stall;
            now += stall;
            break;
          }
        }
        if (!executed) {
          break;
        }
        ++counter;
        progress = true;
        if (counter == program.size()) {
          ++done;
        }
      }
    }
    DCP_CHECK(progress || done >= num_devices)
        << "simulator deadlock (backward=" << backward << ")";
  }

  result.makespan = 0.0;
  for (int dev = 0; dev < num_devices; ++dev) {
    result.devices[static_cast<size_t>(dev)].end_time = clock[static_cast<size_t>(dev)];
    result.makespan = std::max(result.makespan, clock[static_cast<size_t>(dev)]);
  }
  return result;
}

SimResult SimEngine::SimulateFwBw(const BatchPlan& plan) const {
  SimResult fw = Simulate(plan, /*backward=*/false);
  SimResult bw = Simulate(plan, /*backward=*/true);
  SimResult combined;
  combined.makespan = fw.makespan + bw.makespan;
  combined.devices = fw.devices;
  for (size_t d = 0; d < combined.devices.size(); ++d) {
    auto& out = combined.devices[d];
    const auto& add = bw.devices[d];
    out.attention += add.attention;
    out.reduction += add.reduction;
    out.copy += add.copy;
    out.overhead += add.overhead;
    out.comm_exposed += add.comm_exposed;
    out.comm_busy += add.comm_busy;
    out.end_time += add.end_time;
  }
  return combined;
}

}  // namespace dcp
