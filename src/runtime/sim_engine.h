// Discrete-event simulator: prices a BatchPlan on the cluster cost model. Devices execute
// their instruction streams in order; transfers start once both endpoints have posted their
// CommLaunch and the channel is free (intra-node transfers contend per device pair, inter-
// node transfers serialize on the source node's NIC). CommWait stalls are the *exposed*
// (non-overlapped) communication the paper's figures decompose.
#ifndef DCP_RUNTIME_SIM_ENGINE_H_
#define DCP_RUNTIME_SIM_ENGINE_H_

#include <vector>

#include "runtime/cost_model.h"
#include "runtime/instructions.h"

namespace dcp {

struct DeviceTimeBreakdown {
  double attention = 0.0;     // Attention kernel busy time.
  double reduction = 0.0;     // Reduction kernel busy time.
  double copy = 0.0;          // Copy kernel busy time.
  double overhead = 0.0;      // Kernel-launch / comm-post fixed overheads.
  double comm_exposed = 0.0;  // Stall time at CommWait (non-overlapped communication).
  double comm_busy = 0.0;     // Total wire time of transfers received by this device.
  double end_time = 0.0;
};

struct SimResult {
  double makespan = 0.0;
  std::vector<DeviceTimeBreakdown> devices;

  // Aggregates used by the figure benches.
  double MeanExposedComm() const;
  double MeanOverlappedComm() const;  // comm_busy - comm_exposed, clamped at 0, averaged.
  double MeanAttentionCompute() const;
  double MaxComputeBusy() const;
};

class SimEngine {
 public:
  explicit SimEngine(const CostModel& cost) : cost_(cost) {}

  // Simulates the forward (or backward) instruction streams of `plan`.
  SimResult Simulate(const BatchPlan& plan, bool backward) const;
  // Convenience: forward + backward makespans summed, with breakdowns merged.
  SimResult SimulateFwBw(const BatchPlan& plan) const;

 private:
  CostModel cost_;
};

}  // namespace dcp

#endif  // DCP_RUNTIME_SIM_ENGINE_H_
