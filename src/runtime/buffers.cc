#include "runtime/buffers.h"

#include <limits>

#include "common/check.h"

namespace dcp {

DeviceBuffers::DeviceBuffers(const BatchLayout& layout,
                             const std::array<int32_t, kNumBufKinds>& num_slots)
    : layout_(layout), num_slots_(num_slots) {
  for (int k = 0; k < kNumBufKinds; ++k) {
    const auto kind = static_cast<BufKind>(k);
    arenas_[static_cast<size_t>(k)].assign(
        static_cast<size_t>(SlotElems(kind)) * static_cast<size_t>(num_slots[static_cast<size_t>(k)]),
        0.0f);
  }
  ResetAccumulators();
}

int64_t DeviceBuffers::SlotElems(BufKind kind) const {
  const int64_t hg = layout_.heads_per_group;
  const int64_t b = layout_.block_size;
  const int64_t d = layout_.head_dim;
  switch (kind) {
    case BufKind::kQ:
    case BufKind::kO:
    case BufKind::kDO:
    case BufKind::kDQ:
      return hg * b * d;
    case BufKind::kKV:
    case BufKind::kDKV:
      return 2 * b * d;
    case BufKind::kAcc:
      return hg * b * d + 2 * hg * b;
    case BufKind::kDelta:
      return hg * b;
    case BufKind::kNumKinds:
      break;
  }
  DCP_CHECK(false) << "bad buffer kind";
  return 0;
}

int32_t DeviceBuffers::NumSlots(BufKind kind) const {
  return num_slots_[static_cast<size_t>(kind)];
}

std::span<float> DeviceBuffers::Slot(const BlockRef& ref) {
  DCP_CHECK(ref.slot >= 0 && ref.slot < NumSlots(ref.kind))
      << BufKindName(ref.kind) << " slot " << ref.slot << " of " << NumSlots(ref.kind);
  const int64_t elems = SlotElems(ref.kind);
  auto& arena = arenas_[static_cast<size_t>(ref.kind)];
  return std::span<float>(arena.data() + static_cast<int64_t>(ref.slot) * elems,
                          static_cast<size_t>(elems));
}

std::span<const float> DeviceBuffers::Slot(const BlockRef& ref) const {
  return const_cast<DeviceBuffers*>(this)->Slot(ref);
}

int64_t DeviceBuffers::AccStatsOffsetM() const {
  return static_cast<int64_t>(layout_.heads_per_group) * layout_.block_size *
         layout_.head_dim;
}

int64_t DeviceBuffers::AccStatsOffsetL() const {
  return AccStatsOffsetM() +
         static_cast<int64_t>(layout_.heads_per_group) * layout_.block_size;
}

void DeviceBuffers::ResetAccumulators() {
  auto& acc = arenas_[static_cast<size_t>(BufKind::kAcc)];
  const int64_t elems = SlotElems(BufKind::kAcc);
  const int64_t m_off = AccStatsOffsetM();
  const int64_t l_off = AccStatsOffsetL();
  for (int32_t s = 0; s < NumSlots(BufKind::kAcc); ++s) {
    float* base = acc.data() + static_cast<int64_t>(s) * elems;
    std::fill(base, base + m_off, 0.0f);  // U
    std::fill(base + m_off, base + l_off, -std::numeric_limits<float>::infinity());  // m
    std::fill(base + l_off, base + elems, 0.0f);  // l
  }
}

void DeviceBuffers::ResetGradients() {
  for (BufKind kind : {BufKind::kDQ, BufKind::kDKV, BufKind::kDelta}) {
    auto& arena = arenas_[static_cast<size_t>(kind)];
    std::fill(arena.begin(), arena.end(), 0.0f);
  }
}

}  // namespace dcp
