#include "runtime/executor.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "runtime/attention_kernel.h"

namespace dcp {

NumericExecutor::NumericExecutor(const BatchPlan* plan,
                                 const std::vector<SequenceMask>* masks)
    : plan_(plan), masks_(masks) {
  DCP_CHECK(plan != nullptr && masks != nullptr);
  DCP_CHECK_EQ(static_cast<int>(masks->size()), plan->layout.num_sequences());
  buffers_.reserve(plan->devices.size());
  for (const DevicePlan& dev : plan->devices) {
    buffers_.emplace_back(plan->layout, dev.num_slots);
  }
}

void NumericExecutor::Rebind(const BatchPlan* plan,
                             const std::vector<SequenceMask>* masks) {
  DCP_CHECK(plan != nullptr && masks != nullptr);
  DCP_CHECK_EQ(static_cast<int>(masks->size()), plan->layout.num_sequences());
  DCP_CHECK_EQ(plan->num_devices(), static_cast<int>(buffers_.size()));
  DCP_CHECK(!buffers_.empty());
  // Slot geometry (and LoadInputs strides) are functions of the layout: the incoming
  // plan must address buffers exactly like the one they were allocated for.
  const BatchLayout& installed = buffers_.front().layout();
  DCP_CHECK(plan->layout.seqlens == installed.seqlens);
  DCP_CHECK_EQ(plan->layout.block_size, installed.block_size);
  DCP_CHECK_EQ(plan->layout.num_groups, installed.num_groups);
  DCP_CHECK_EQ(plan->layout.heads_per_group, installed.heads_per_group);
  DCP_CHECK_EQ(plan->layout.head_dim, installed.head_dim);
  for (int dev = 0; dev < plan->num_devices(); ++dev) {
    const DevicePlan& device = plan->devices[static_cast<size_t>(dev)];
    const DeviceBuffers& buf = buffers_[static_cast<size_t>(dev)];
    for (int k = 0; k < kNumBufKinds; ++k) {
      DCP_CHECK_EQ(device.num_slots[static_cast<size_t>(k)],
                   buf.NumSlots(static_cast<BufKind>(k)))
          << "Rebind with mismatched buffer geometry on device " << dev;
    }
  }
  plan_ = plan;
  masks_ = masks;
  wire_.clear();
}

void NumericExecutor::LoadInputs(const std::vector<SeqTensors>& sequences) {
  const BatchLayout& layout = plan_->layout;
  DCP_CHECK_EQ(static_cast<int>(sequences.size()), layout.num_sequences());
  const int hg = layout.heads_per_group;
  const int64_t bs = layout.block_size;
  const int d = layout.head_dim;
  for (int dev = 0; dev < plan_->num_devices(); ++dev) {
    DeviceBuffers& buf = buffers_[static_cast<size_t>(dev)];
    for (const LocalChunk& chunk : plan_->devices[static_cast<size_t>(dev)].local_chunks) {
      const SeqTensors& seq = sequences[static_cast<size_t>(chunk.seq)];
      const int64_t begin = layout.ChunkBegin(chunk.seq, chunk.chunk);
      const int64_t len = layout.ChunkLen(chunk.seq, chunk.chunk);
      const int64_t seq_len = seq.length();
      std::span<float> q_slot = buf.Slot({BufKind::kQ, chunk.q_slot});
      for (int h = 0; h < hg; ++h) {
        const int64_t global_head = static_cast<int64_t>(chunk.group) * hg + h;
        const float* src = seq.q.data() + (global_head * seq_len + begin) * d;
        float* dst = q_slot.data() + static_cast<int64_t>(h) * bs * d;
        std::memcpy(dst, src, static_cast<size_t>(len * d) * sizeof(float));
      }
      std::span<float> kv_slot = buf.Slot({BufKind::kKV, chunk.kv_slot});
      const float* k_src =
          seq.k.data() + (static_cast<int64_t>(chunk.group) * seq_len + begin) * d;
      const float* v_src =
          seq.v.data() + (static_cast<int64_t>(chunk.group) * seq_len + begin) * d;
      std::memcpy(kv_slot.data(), k_src, static_cast<size_t>(len * d) * sizeof(float));
      std::memcpy(kv_slot.data() + bs * d, v_src,
                  static_cast<size_t>(len * d) * sizeof(float));
    }
  }
}

void NumericExecutor::RunForward() {
  for (DeviceBuffers& buf : buffers_) {
    buf.ResetAccumulators();
  }
  RunProgram(/*backward=*/false);
}

void NumericExecutor::RunBackward() {
  for (DeviceBuffers& buf : buffers_) {
    buf.ResetGradients();
  }
  RunProgram(/*backward=*/true);
}

void NumericExecutor::RunProgram(bool backward) {
  wire_.clear();
  const int num_devices = plan_->num_devices();
  std::vector<size_t> pc(static_cast<size_t>(num_devices), 0);
  int done = 0;
  std::vector<const std::vector<Instruction>*> programs;
  programs.reserve(static_cast<size_t>(num_devices));
  for (const DevicePlan& dev : plan_->devices) {
    programs.push_back(backward ? &dev.backward_instructions : &dev.instructions);
    if (programs.back()->empty()) {
      ++done;
    }
  }
  while (done < num_devices) {
    bool progress = false;
    for (int dev = 0; dev < num_devices; ++dev) {
      const auto& program = *programs[static_cast<size_t>(dev)];
      size_t& counter = pc[static_cast<size_t>(dev)];
      while (counter < program.size()) {
        if (!TryExecute(dev, program[counter])) {
          break;  // Blocked on a transfer; try other devices.
        }
        ++counter;
        progress = true;
        if (counter == program.size()) {
          ++done;
        }
      }
    }
    DCP_CHECK(progress || done >= num_devices)
        << "executor deadlock: no device can make progress (backward=" << backward << ")";
  }
}

bool NumericExecutor::TryExecute(DeviceId device, const Instruction& instr) {
  switch (instr.kind) {
    case InstrKind::kBlockwiseAttention:
      ExecuteAttention(device, instr);
      return true;
    case InstrKind::kBlockwiseReduction:
      ExecuteReduction(device, instr);
      return true;
    case InstrKind::kBlockwiseCopy:
      ExecuteCopy(device, instr);
      return true;
    case InstrKind::kCommLaunch:
      ExecuteCommLaunch(device, instr);
      return true;
    case InstrKind::kCommWait:
      return TryCommWait(device, instr);
  }
  DCP_CHECK(false) << "bad instruction kind";
  return false;
}

void NumericExecutor::ExecuteAttention(DeviceId device, const Instruction& instr) {
  const BatchLayout& layout = plan_->layout;
  DeviceBuffers& buf = buffers_[static_cast<size_t>(device)];
  for (const AttentionWorkItem& item : instr.attn_items) {
    const SequenceMask& mask = (*masks_)[static_cast<size_t>(item.seq)];
    TileArgs args;
    args.heads = layout.heads_per_group;
    args.block_size = layout.block_size;
    args.head_dim = layout.head_dim;
    args.q_begin = item.q_begin;
    args.q_end = item.q_end;
    args.kv_begin = item.kv_begin;
    args.kv_end = item.kv_end;
    args.full = item.full;
    if (!instr.backward) {
      AttentionTileForward(mask, args, buf.Slot(item.q), buf.Slot(item.kv),
                           buf.Slot(item.acc));
    } else {
      AttentionTileBackward(mask, args, buf.Slot(item.q), buf.Slot(item.kv),
                            buf.Slot(item.acc), buf.Slot(item.dout), buf.Slot(item.delta),
                            buf.Slot(item.dq), buf.Slot(item.dkv));
    }
  }
}

void NumericExecutor::ExecuteReduction(DeviceId device, const Instruction& instr) {
  const BatchLayout& layout = plan_->layout;
  DeviceBuffers& buf = buffers_[static_cast<size_t>(device)];
  const int hg = layout.heads_per_group;
  const int64_t bs = layout.block_size;
  const int d = layout.head_dim;
  for (const ReduceItem& item : instr.reduce_items) {
    switch (item.mode) {
      case ReduceMode::kMergeSoftmax:
        MergeSoftmaxAccumulators(buf.Slot(item.dst), buf.Slot(item.src0), hg, bs, d,
                                 item.token_count);
        break;
      case ReduceMode::kFinalize:
        FinalizeOutput(buf.Slot(item.src0), buf.Slot(item.dst), hg, bs, d,
                       item.token_count);
        break;
      case ReduceMode::kSum: {
        std::span<float> dst = buf.Slot(item.dst);
        std::span<const float> src = buf.Slot(item.src0);
        DCP_CHECK_EQ(dst.size(), src.size());
        for (size_t i = 0; i < dst.size(); ++i) {
          dst[i] += src[i];
        }
        break;
      }
      case ReduceMode::kComputeDelta:
        ComputeDelta(buf.Slot(item.src0), buf.Slot(item.src1), buf.Slot(item.dst), hg, bs,
                     d, item.token_count);
        break;
    }
  }
}

void NumericExecutor::ExecuteCopy(DeviceId device, const Instruction& instr) {
  DeviceBuffers& buf = buffers_[static_cast<size_t>(device)];
  for (const CopyItem& item : instr.copy_items) {
    std::span<float> dst = buf.Slot(item.dst);
    std::span<const float> src = buf.Slot(item.src);
    DCP_CHECK_EQ(dst.size(), src.size());
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
}

void NumericExecutor::ExecuteCommLaunch(DeviceId device, const Instruction& instr) {
  WireMessage& msg = wire_[instr.transfer_id];
  if (instr.is_send) {
    DCP_CHECK(!msg.sent) << "transfer " << instr.transfer_id << " sent twice";
    DeviceBuffers& buf = buffers_[static_cast<size_t>(device)];
    for (const TransferBlock& block : instr.blocks) {
      std::span<const float> slot = buf.Slot(block.ref);
      msg.payload.insert(msg.payload.end(), slot.begin(), slot.end());
    }
    msg.sent = true;
  } else {
    DCP_CHECK(!msg.recv_launched) << "transfer " << instr.transfer_id << " recv twice";
    msg.recv_launched = true;
    msg.recv_device = device;
    msg.recv_blocks = instr.blocks;
  }
}

bool NumericExecutor::TryCommWait(DeviceId device, const Instruction& instr) {
  auto it = wire_.find(instr.transfer_id);
  DCP_CHECK(it != wire_.end()) << "CommWait before any CommLaunch for transfer "
                               << instr.transfer_id;
  WireMessage& msg = it->second;
  if (msg.recv_device != device) {
    // Sender-side wait: our cooperative sends complete instantly once launched.
    return msg.sent;
  }
  if (!msg.sent) {
    return false;  // Peer has not produced the payload yet.
  }
  if (!msg.delivered) {
    DeviceBuffers& buf = buffers_[static_cast<size_t>(device)];
    size_t offset = 0;
    for (const TransferBlock& block : msg.recv_blocks) {
      std::span<float> slot = buf.Slot(block.ref);
      DCP_CHECK_LE(offset + slot.size(), msg.payload.size());
      std::memcpy(slot.data(), msg.payload.data() + offset, slot.size() * sizeof(float));
      offset += slot.size();
    }
    DCP_CHECK_EQ(offset, msg.payload.size());
    msg.delivered = true;
  }
  return true;
}

std::vector<Tensor> NumericExecutor::GatherOutputs() const {
  const BatchLayout& layout = plan_->layout;
  const int hg = layout.heads_per_group;
  const int64_t bs = layout.block_size;
  const int d = layout.head_dim;
  std::vector<Tensor> outputs;
  outputs.reserve(layout.seqlens.size());
  for (int64_t len : layout.seqlens) {
    outputs.push_back(Tensor::Zeros({layout.num_query_heads(), len, d}));
  }
  for (int dev = 0; dev < plan_->num_devices(); ++dev) {
    const DeviceBuffers& buf = buffers_[static_cast<size_t>(dev)];
    for (const LocalChunk& chunk : plan_->devices[static_cast<size_t>(dev)].local_chunks) {
      const int64_t begin = layout.ChunkBegin(chunk.seq, chunk.chunk);
      const int64_t len = layout.ChunkLen(chunk.seq, chunk.chunk);
      const int64_t seq_len = layout.seqlens[static_cast<size_t>(chunk.seq)];
      std::span<const float> o_slot = buf.Slot({BufKind::kO, chunk.q_slot});
      Tensor& out = outputs[static_cast<size_t>(chunk.seq)];
      for (int h = 0; h < hg; ++h) {
        const int64_t global_head = static_cast<int64_t>(chunk.group) * hg + h;
        float* dst = out.data() + (global_head * seq_len + begin) * d;
        const float* src = o_slot.data() + static_cast<int64_t>(h) * bs * d;
        std::memcpy(dst, src, static_cast<size_t>(len * d) * sizeof(float));
      }
    }
  }
  return outputs;
}

void NumericExecutor::LoadOutputGrads(const std::vector<Tensor>& douts) {
  const BatchLayout& layout = plan_->layout;
  DCP_CHECK_EQ(douts.size(), layout.seqlens.size());
  const int hg = layout.heads_per_group;
  const int64_t bs = layout.block_size;
  const int d = layout.head_dim;
  for (int dev = 0; dev < plan_->num_devices(); ++dev) {
    DeviceBuffers& buf = buffers_[static_cast<size_t>(dev)];
    for (const LocalChunk& chunk : plan_->devices[static_cast<size_t>(dev)].local_chunks) {
      const int64_t begin = layout.ChunkBegin(chunk.seq, chunk.chunk);
      const int64_t len = layout.ChunkLen(chunk.seq, chunk.chunk);
      const int64_t seq_len = layout.seqlens[static_cast<size_t>(chunk.seq)];
      std::span<float> do_slot = buf.Slot({BufKind::kDO, chunk.q_slot});
      const Tensor& dout = douts[static_cast<size_t>(chunk.seq)];
      for (int h = 0; h < hg; ++h) {
        const int64_t global_head = static_cast<int64_t>(chunk.group) * hg + h;
        const float* src = dout.data() + (global_head * seq_len + begin) * d;
        float* dst = do_slot.data() + static_cast<int64_t>(h) * bs * d;
        std::memcpy(dst, src, static_cast<size_t>(len * d) * sizeof(float));
      }
    }
  }
}

std::vector<SeqGrads> NumericExecutor::GatherInputGrads() const {
  const BatchLayout& layout = plan_->layout;
  const int hg = layout.heads_per_group;
  const int64_t bs = layout.block_size;
  const int d = layout.head_dim;
  std::vector<SeqGrads> grads;
  grads.reserve(layout.seqlens.size());
  for (int64_t len : layout.seqlens) {
    SeqGrads g;
    g.dq = Tensor::Zeros({layout.num_query_heads(), len, d});
    g.dk = Tensor::Zeros({layout.num_groups, len, d});
    g.dv = Tensor::Zeros({layout.num_groups, len, d});
    grads.push_back(std::move(g));
  }
  for (int dev = 0; dev < plan_->num_devices(); ++dev) {
    const DeviceBuffers& buf = buffers_[static_cast<size_t>(dev)];
    for (const LocalChunk& chunk : plan_->devices[static_cast<size_t>(dev)].local_chunks) {
      const int64_t begin = layout.ChunkBegin(chunk.seq, chunk.chunk);
      const int64_t len = layout.ChunkLen(chunk.seq, chunk.chunk);
      const int64_t seq_len = layout.seqlens[static_cast<size_t>(chunk.seq)];
      SeqGrads& g = grads[static_cast<size_t>(chunk.seq)];
      std::span<const float> dq_slot = buf.Slot({BufKind::kDQ, chunk.q_slot});
      for (int h = 0; h < hg; ++h) {
        const int64_t global_head = static_cast<int64_t>(chunk.group) * hg + h;
        float* dst = g.dq.data() + (global_head * seq_len + begin) * d;
        const float* src = dq_slot.data() + static_cast<int64_t>(h) * bs * d;
        std::memcpy(dst, src, static_cast<size_t>(len * d) * sizeof(float));
      }
      std::span<const float> dkv_slot = buf.Slot({BufKind::kDKV, chunk.kv_slot});
      float* dk_dst =
          g.dk.data() + (static_cast<int64_t>(chunk.group) * seq_len + begin) * d;
      float* dv_dst =
          g.dv.data() + (static_cast<int64_t>(chunk.group) * seq_len + begin) * d;
      std::memcpy(dk_dst, dkv_slot.data(), static_cast<size_t>(len * d) * sizeof(float));
      std::memcpy(dv_dst, dkv_slot.data() + bs * d,
                  static_cast<size_t>(len * d) * sizeof(float));
    }
  }
  return grads;
}

}  // namespace dcp
