// Single-device O(L^2) masked attention with exact softmax, plus its analytic backward.
// This is the correctness oracle for the DCP executor and every baseline, and the "MLM
// baseline" attention engine of the loss-parity experiment (paper Fig. 21).
#ifndef DCP_RUNTIME_REFERENCE_ATTENTION_H_
#define DCP_RUNTIME_REFERENCE_ATTENTION_H_

#include <vector>

#include "common/tensor.h"
#include "masks/mask.h"

namespace dcp {

// One sequence's attention operands. GQA layout: q is [H, L, D]; k and v are [G, L, D]
// with H = G * heads_per_group; query head h reads KV group h / heads_per_group.
struct SeqTensors {
  Tensor q;
  Tensor k;
  Tensor v;

  int64_t num_heads() const { return q.dim(0); }
  int64_t num_groups() const { return k.dim(0); }
  int64_t length() const { return q.dim(1); }
  int64_t head_dim() const { return q.dim(2); }

  static SeqTensors Random(int heads, int groups, int64_t length, int head_dim, Rng& rng);
};

// Returns O with shape [H, L, D].
Tensor ReferenceAttentionForward(const SeqTensors& inputs, const SequenceMask& mask);

struct SeqGrads {
  Tensor dq;  // [H, L, D]
  Tensor dk;  // [G, L, D]
  Tensor dv;  // [G, L, D]
};

SeqGrads ReferenceAttentionBackward(const SeqTensors& inputs, const SequenceMask& mask,
                                    const Tensor& out, const Tensor& dout);

}  // namespace dcp

#endif  // DCP_RUNTIME_REFERENCE_ATTENTION_H_
