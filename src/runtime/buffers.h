// Per-device block buffers (paper §5): one contiguous fp32 arena per buffer kind, addressed
// by slot index. Slot geometry is fixed by the batch layout; ragged (last) chunks use a
// prefix of their slot.
//
// Slot layouts (row-major):
//   kQ / kO / kDO / kDQ : [heads_per_group, block_size, head_dim]
//   kKV / kDKV          : [2, block_size, head_dim]          (K then V)
//   kAcc                : [heads_per_group, block_size, head_dim] unnormalized output U,
//                         then [heads_per_group, block_size] m, then same for l
//   kDelta              : [heads_per_group, block_size]
#ifndef DCP_RUNTIME_BUFFERS_H_
#define DCP_RUNTIME_BUFFERS_H_

#include <span>
#include <vector>

#include "common/tensor.h"
#include "runtime/instructions.h"
#include "runtime/layout.h"

namespace dcp {

class DeviceBuffers {
 public:
  DeviceBuffers(const BatchLayout& layout,
                const std::array<int32_t, kNumBufKinds>& num_slots);

  std::span<float> Slot(const BlockRef& ref);
  std::span<const float> Slot(const BlockRef& ref) const;
  int64_t SlotElems(BufKind kind) const;
  int32_t NumSlots(BufKind kind) const;

  // Resets accumulators to the online-softmax identity (U=0, m=-inf, l=0) and gradient
  // buffers to zero. Called by the executor before each forward/backward run.
  void ResetAccumulators();
  void ResetGradients();

  const BatchLayout& layout() const { return layout_; }

  // Offsets into a kAcc slot.
  int64_t AccStatsOffsetM() const;  // Start of the m array.
  int64_t AccStatsOffsetL() const;  // Start of the l array.

 private:
  BatchLayout layout_;
  std::array<int32_t, kNumBufKinds> num_slots_;
  std::array<std::vector<float>, kNumBufKinds> arenas_;
};

}  // namespace dcp

#endif  // DCP_RUNTIME_BUFFERS_H_
