// Static plan validation: structural checks a BatchPlan must pass before execution.
// Used by tests, by the planner in debug builds, and available to downstream users who
// construct or deserialize plans from external sources.
#ifndef DCP_RUNTIME_PLAN_VALIDATE_H_
#define DCP_RUNTIME_PLAN_VALIDATE_H_

#include <string>
#include <vector>

#include "runtime/instructions.h"

namespace dcp {

struct PlanValidation {
  bool ok = true;
  std::vector<std::string> errors;

  void Fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
  std::string Summary() const;
};

// Checks, across all devices and both instruction streams:
//  - every BlockRef is within its buffer's slot count;
//  - every transfer id has exactly one send and one recv launch, with matching block
//    counts, byte totals and consistent peer fields;
//  - every CommWait refers to a transfer that is launched somewhere;
//  - every chunk home is a valid device and local chunks partition the batch exactly;
//  - forward attention tiles are unique across the cluster (each computed exactly once).
PlanValidation ValidatePlan(const BatchPlan& plan);

}  // namespace dcp

#endif  // DCP_RUNTIME_PLAN_VALIDATE_H_
