#include "runtime/cluster.h"

namespace dcp {

ClusterSpec ClusterSpec::MicroBenchTestbed() {
  ClusterSpec spec;
  spec.num_nodes = 4;
  spec.devices_per_node = 8;
  return spec;
}

ClusterSpec ClusterSpec::EndToEndTestbed() {
  // 8 nodes x 8 GPUs with 4-way tensor parallelism: each CP rank is one TP group, so the
  // context-parallel "devices" seen by DCP are 16 ranks, 2 per node. A TP group aggregates
  // the NVSwitch bandwidth of its GPUs for CP transfers, but the node NIC is still shared.
  ClusterSpec spec;
  spec.num_nodes = 8;
  spec.devices_per_node = 2;
  spec.device_tflops = 150.0 * 4;  // 4 GPUs per TP rank work on the same attention op.
  spec.dense_tflops = 220.0 * 4;
  spec.intra_node_gbps = 250.0;
  spec.node_nic_gbps = 50.0;
  return spec;
}

}  // namespace dcp
