#include "runtime/reference_attention.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace dcp {

SeqTensors SeqTensors::Random(int heads, int groups, int64_t length, int head_dim,
                              Rng& rng) {
  DCP_CHECK_EQ(heads % groups, 0);
  SeqTensors t;
  t.q = Tensor::Random({heads, length, head_dim}, rng, -0.5f, 0.5f);
  t.k = Tensor::Random({groups, length, head_dim}, rng, -0.5f, 0.5f);
  t.v = Tensor::Random({groups, length, head_dim}, rng, -0.5f, 0.5f);
  return t;
}

Tensor ReferenceAttentionForward(const SeqTensors& inputs, const SequenceMask& mask) {
  const int64_t heads = inputs.num_heads();
  const int64_t groups = inputs.num_groups();
  const int64_t length = inputs.length();
  const int64_t d = inputs.head_dim();
  DCP_CHECK_EQ(length, mask.length());
  const int64_t heads_per_group = heads / groups;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  Tensor out = Tensor::Zeros({heads, length, d});
  std::vector<float> probs(static_cast<size_t>(length));
  for (int64_t h = 0; h < heads; ++h) {
    const int64_t g = h / heads_per_group;
    for (int64_t t = 0; t < length; ++t) {
      const RangePair& ranges = mask.ranges(t);
      const float* q_row = inputs.q.data() + (h * length + t) * d;
      float max_score = -std::numeric_limits<float>::infinity();
      auto for_each_k = [&](auto&& fn) {
        for (int64_t j = ranges.begin0; j < ranges.end0; ++j) {
          fn(j);
        }
        for (int64_t j = ranges.begin1; j < ranges.end1; ++j) {
          fn(j);
        }
      };
      for_each_k([&](int64_t j) {
        const float* k_row = inputs.k.data() + (g * length + j) * d;
        float dot = 0.0f;
        for (int64_t c = 0; c < d; ++c) {
          dot += q_row[c] * k_row[c];
        }
        probs[static_cast<size_t>(j)] = dot * scale;
        max_score = std::max(max_score, dot * scale);
      });
      float denom = 0.0f;
      for_each_k([&](int64_t j) {
        probs[static_cast<size_t>(j)] =
            std::exp(probs[static_cast<size_t>(j)] - max_score);
        denom += probs[static_cast<size_t>(j)];
      });
      if (denom <= 0.0f) {
        continue;
      }
      float* o_row = out.data() + (h * length + t) * d;
      const float inv = 1.0f / denom;
      for_each_k([&](int64_t j) {
        const float p = probs[static_cast<size_t>(j)] * inv;
        const float* v_row = inputs.v.data() + (g * length + j) * d;
        for (int64_t c = 0; c < d; ++c) {
          o_row[c] += p * v_row[c];
        }
      });
    }
  }
  return out;
}

SeqGrads ReferenceAttentionBackward(const SeqTensors& inputs, const SequenceMask& mask,
                                    const Tensor& out, const Tensor& dout) {
  const int64_t heads = inputs.num_heads();
  const int64_t groups = inputs.num_groups();
  const int64_t length = inputs.length();
  const int64_t d = inputs.head_dim();
  const int64_t heads_per_group = heads / groups;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  SeqGrads grads;
  grads.dq = Tensor::Zeros({heads, length, d});
  grads.dk = Tensor::Zeros({groups, length, d});
  grads.dv = Tensor::Zeros({groups, length, d});

  std::vector<float> probs(static_cast<size_t>(length));
  for (int64_t h = 0; h < heads; ++h) {
    const int64_t g = h / heads_per_group;
    for (int64_t t = 0; t < length; ++t) {
      const RangePair& ranges = mask.ranges(t);
      const float* q_row = inputs.q.data() + (h * length + t) * d;
      const float* do_row = dout.data() + (h * length + t) * d;
      const float* o_row = out.data() + (h * length + t) * d;
      auto for_each_k = [&](auto&& fn) {
        for (int64_t j = ranges.begin0; j < ranges.end0; ++j) {
          fn(j);
        }
        for (int64_t j = ranges.begin1; j < ranges.end1; ++j) {
          fn(j);
        }
      };
      // Recompute softmax probabilities exactly.
      float max_score = -std::numeric_limits<float>::infinity();
      for_each_k([&](int64_t j) {
        const float* k_row = inputs.k.data() + (g * length + j) * d;
        float dot = 0.0f;
        for (int64_t c = 0; c < d; ++c) {
          dot += q_row[c] * k_row[c];
        }
        probs[static_cast<size_t>(j)] = dot * scale;
        max_score = std::max(max_score, dot * scale);
      });
      float denom = 0.0f;
      for_each_k([&](int64_t j) {
        probs[static_cast<size_t>(j)] =
            std::exp(probs[static_cast<size_t>(j)] - max_score);
        denom += probs[static_cast<size_t>(j)];
      });
      if (denom <= 0.0f) {
        continue;
      }
      const float inv = 1.0f / denom;
      float delta = 0.0f;
      for (int64_t c = 0; c < d; ++c) {
        delta += do_row[c] * o_row[c];
      }
      float* dq_row = grads.dq.data() + (h * length + t) * d;
      for_each_k([&](int64_t j) {
        const float p = probs[static_cast<size_t>(j)] * inv;
        const float* k_row = inputs.k.data() + (g * length + j) * d;
        const float* v_row = inputs.v.data() + (g * length + j) * d;
        float dp = 0.0f;
        for (int64_t c = 0; c < d; ++c) {
          dp += do_row[c] * v_row[c];
        }
        const float ds = p * (dp - delta) * scale;
        float* dk_row = grads.dk.data() + (g * length + j) * d;
        float* dv_row = grads.dv.data() + (g * length + j) * d;
        for (int64_t c = 0; c < d; ++c) {
          dq_row[c] += ds * k_row[c];
          dk_row[c] += ds * q_row[c];
          dv_row[c] += p * do_row[c];
        }
      });
    }
  }
  return grads;
}

}  // namespace dcp
