#include "runtime/cost_model.h"

namespace dcp {

double CostModel::ChannelBandwidth(DeviceId src, DeviceId dst) const {
  if (cluster_.SameNode(src, dst)) {
    return cluster_.intra_node_gbps * 1e9;
  }
  // A single P2P stream between nodes can use the full node NIC if uncontended; the
  // simulator serializes concurrent transfers on the NIC.
  return cluster_.node_nic_gbps * 1e9;
}

double CostModel::ChannelLatencySeconds(DeviceId src, DeviceId dst) const {
  return (cluster_.SameNode(src, dst) ? cluster_.intra_latency_us
                                      : cluster_.inter_latency_us) *
         1e-6;
}

double CostModel::TransferSeconds(Bytes bytes, DeviceId src, DeviceId dst) const {
  if (src == dst || bytes == 0) {
    return 0.0;
  }
  return ChannelLatencySeconds(src, dst) +
         static_cast<double>(bytes) / ChannelBandwidth(src, dst);
}

}  // namespace dcp
