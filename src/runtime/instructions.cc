#include "runtime/instructions.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace dcp {

std::string BufKindName(BufKind kind) {
  switch (kind) {
    case BufKind::kQ:
      return "Q";
    case BufKind::kKV:
      return "KV";
    case BufKind::kO:
      return "O";
    case BufKind::kAcc:
      return "Acc";
    case BufKind::kDO:
      return "dO";
    case BufKind::kDQ:
      return "dQ";
    case BufKind::kDKV:
      return "dKV";
    case BufKind::kDelta:
      return "Delta";
    case BufKind::kNumKinds:
      break;
  }
  return "?";
}

std::string InstrKindName(InstrKind kind) {
  switch (kind) {
    case InstrKind::kBlockwiseAttention:
      return "BlockwiseAttention";
    case InstrKind::kBlockwiseReduction:
      return "BlockwiseReduction";
    case InstrKind::kBlockwiseCopy:
      return "BlockwiseCopy";
    case InstrKind::kCommLaunch:
      return "CommLaunch";
    case InstrKind::kCommWait:
      return "CommWait";
  }
  return "?";
}

std::string ReduceModeName(ReduceMode mode) {
  switch (mode) {
    case ReduceMode::kMergeSoftmax:
      return "MergeSoftmax";
    case ReduceMode::kFinalize:
      return "Finalize";
    case ReduceMode::kSum:
      return "Sum";
    case ReduceMode::kComputeDelta:
      return "ComputeDelta";
  }
  return "?";
}

std::string PlanToString(const BatchPlan& plan, int max_instructions_per_device) {
  std::ostringstream out;
  out << "BatchPlan: " << plan.num_devices() << " devices, "
      << plan.layout.num_sequences() << " sequences, block_size=" << plan.layout.block_size
      << ", comm=" << plan.stats.total_comm_bytes / (1 << 20) << "MiB ("
      << plan.stats.inter_node_comm_bytes / (1 << 20) << "MiB inter-node)\n";
  for (int d = 0; d < plan.num_devices(); ++d) {
    const DevicePlan& dev = plan.devices[static_cast<size_t>(d)];
    out << "  device " << d << ": " << dev.local_chunks.size() << " local chunks, "
        << dev.instructions.size() << " fw instrs, " << dev.backward_instructions.size()
        << " bw instrs\n";
    int shown = 0;
    for (const Instruction& instr : dev.instructions) {
      if (shown++ >= max_instructions_per_device) {
        out << "    ...\n";
        break;
      }
      out << "    " << InstrKindName(instr.kind);
      switch (instr.kind) {
        case InstrKind::kBlockwiseAttention:
          out << " tiles=" << instr.attn_items.size() << " flops=" << instr.flops;
          break;
        case InstrKind::kBlockwiseReduction:
          out << " items=" << instr.reduce_items.size();
          break;
        case InstrKind::kBlockwiseCopy:
          out << " items=" << instr.copy_items.size();
          break;
        case InstrKind::kCommLaunch:
          out << (instr.is_send ? " send" : " recv") << " id=" << instr.transfer_id
              << " peer=" << instr.peer << " bytes=" << instr.comm_bytes;
          break;
        case InstrKind::kCommWait:
          out << " id=" << instr.transfer_id;
          break;
      }
      out << "\n";
    }
  }
  return out.str();
}

namespace {

void WriteRef(std::ostream& out, const BlockRef& ref) {
  out << " " << static_cast<int>(ref.kind) << " " << ref.slot;
}

// Item-count sanity bound for both decoders: far above any real plan, low enough that a
// corrupt count can never drive a pathological allocation loop.
constexpr uint64_t kMaxPlanItems = uint64_t{1} << 26;

constexpr int kMaxInstrKind = static_cast<int>(InstrKind::kCommWait);
constexpr int kMaxReduceMode = static_cast<int>(ReduceMode::kComputeDelta);

// Validating whitespace-token reader over the text format. Every read checks the stream
// state so truncation surfaces as DATA_LOSS at the field where it happened instead of
// zero-filling the rest of the plan.
struct TextReader {
  std::istringstream in;

  explicit TextReader(const std::string& text) : in(text) {}

  Status Fail(const std::string& what) { return Status::DataLoss("plan text: " + what); }

  Status Expect(const char* tag) {
    std::string got;
    if (!(in >> got)) {
      return Fail(std::string("truncated input, expected '") + tag + "' tag");
    }
    if (got != tag) {
      return Fail(std::string("expected '") + tag + "' tag, got '" + got + "'");
    }
    return Status::Ok();
  }

  template <typename T>
  Status Read(T* out, const char* what) {
    if (!(in >> *out)) {
      return Fail(std::string("truncated or malformed ") + what);
    }
    return Status::Ok();
  }

  Status ReadCount(uint64_t* out, const char* what) {
    DCP_RETURN_IF_ERROR(Read(out, what));
    if (*out > kMaxPlanItems) {
      return Fail(std::string(what) + " is implausibly large");
    }
    return Status::Ok();
  }

  Status ReadRef(BlockRef* ref) {
    int kind = 0;
    DCP_RETURN_IF_ERROR(Read(&kind, "block-ref kind"));
    if (kind < 0 || kind >= kNumBufKinds) {
      return Fail("block-ref kind out of range");
    }
    ref->kind = static_cast<BufKind>(kind);
    return Read(&ref->slot, "block-ref slot");
  }
};

void WriteInstruction(std::ostream& out, const Instruction& instr) {
  out << "I " << static_cast<int>(instr.kind) << " " << (instr.backward ? 1 : 0) << " "
      << instr.flops << " " << instr.comm_bytes << " " << instr.mem_bytes << " "
      << instr.host_overhead << " " << instr.transfer_id << " " << instr.peer << " "
      << (instr.is_send ? 1 : 0) << " " << instr.attn_items.size() << " "
      << instr.reduce_items.size() << " " << instr.copy_items.size() << " "
      << instr.blocks.size() << "\n";
  for (const AttentionWorkItem& item : instr.attn_items) {
    out << "A";
    WriteRef(out, item.q);
    WriteRef(out, item.kv);
    WriteRef(out, item.acc);
    out << " " << item.seq << " " << item.group << " " << item.q_begin << " " << item.q_end
        << " " << item.kv_begin << " " << item.kv_end << " " << (item.full ? 1 : 0);
    WriteRef(out, item.dout);
    WriteRef(out, item.delta);
    WriteRef(out, item.dq);
    WriteRef(out, item.dkv);
    out << "\n";
  }
  for (const ReduceItem& item : instr.reduce_items) {
    out << "R " << static_cast<int>(item.mode);
    WriteRef(out, item.dst);
    WriteRef(out, item.src0);
    WriteRef(out, item.src1);
    out << " " << item.token_count << "\n";
  }
  for (const CopyItem& item : instr.copy_items) {
    out << "C";
    WriteRef(out, item.dst);
    WriteRef(out, item.src);
    out << " " << item.token_count << "\n";
  }
  for (const TransferBlock& block : instr.blocks) {
    out << "T";
    WriteRef(out, block.ref);
    out << " " << block.bytes << " " << block.token_count << "\n";
  }
}

Status ReadInstructionText(TextReader& r, Instruction* instr) {
  DCP_RETURN_IF_ERROR(r.Expect("I"));
  int kind = 0;
  int backward = 0;
  int is_send = 0;
  uint64_t num_attn = 0;
  uint64_t num_reduce = 0;
  uint64_t num_copy = 0;
  uint64_t num_blocks = 0;
  DCP_RETURN_IF_ERROR(r.Read(&kind, "instruction kind"));
  if (kind < 0 || kind > kMaxInstrKind) {
    return r.Fail("instruction kind out of range");
  }
  DCP_RETURN_IF_ERROR(r.Read(&backward, "instruction backward flag"));
  DCP_RETURN_IF_ERROR(r.Read(&instr->flops, "instruction flops"));
  DCP_RETURN_IF_ERROR(r.Read(&instr->comm_bytes, "instruction comm_bytes"));
  DCP_RETURN_IF_ERROR(r.Read(&instr->mem_bytes, "instruction mem_bytes"));
  DCP_RETURN_IF_ERROR(r.Read(&instr->host_overhead, "instruction host_overhead"));
  DCP_RETURN_IF_ERROR(r.Read(&instr->transfer_id, "instruction transfer_id"));
  DCP_RETURN_IF_ERROR(r.Read(&instr->peer, "instruction peer"));
  DCP_RETURN_IF_ERROR(r.Read(&is_send, "instruction is_send flag"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_attn, "attention item count"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_reduce, "reduce item count"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_copy, "copy item count"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_blocks, "transfer block count"));
  instr->kind = static_cast<InstrKind>(kind);
  instr->backward = backward != 0;
  instr->is_send = is_send != 0;
  // Grow incrementally: a corrupt count fails at the first missing item instead of
  // provoking a giant up-front allocation.
  for (uint64_t i = 0; i < num_attn; ++i) {
    AttentionWorkItem item;
    DCP_RETURN_IF_ERROR(r.Expect("A"));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.q));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.kv));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.acc));
    int full = 0;
    DCP_RETURN_IF_ERROR(r.Read(&item.seq, "attention item seq"));
    DCP_RETURN_IF_ERROR(r.Read(&item.group, "attention item group"));
    DCP_RETURN_IF_ERROR(r.Read(&item.q_begin, "attention item q_begin"));
    DCP_RETURN_IF_ERROR(r.Read(&item.q_end, "attention item q_end"));
    DCP_RETURN_IF_ERROR(r.Read(&item.kv_begin, "attention item kv_begin"));
    DCP_RETURN_IF_ERROR(r.Read(&item.kv_end, "attention item kv_end"));
    DCP_RETURN_IF_ERROR(r.Read(&full, "attention item full flag"));
    item.full = full != 0;
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.dout));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.delta));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.dq));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.dkv));
    instr->attn_items.push_back(item);
  }
  for (uint64_t i = 0; i < num_reduce; ++i) {
    ReduceItem item;
    int mode = 0;
    DCP_RETURN_IF_ERROR(r.Expect("R"));
    DCP_RETURN_IF_ERROR(r.Read(&mode, "reduce mode"));
    if (mode < 0 || mode > kMaxReduceMode) {
      return r.Fail("reduce mode out of range");
    }
    item.mode = static_cast<ReduceMode>(mode);
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.dst));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.src0));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.src1));
    DCP_RETURN_IF_ERROR(r.Read(&item.token_count, "reduce token_count"));
    instr->reduce_items.push_back(item);
  }
  for (uint64_t i = 0; i < num_copy; ++i) {
    CopyItem item;
    DCP_RETURN_IF_ERROR(r.Expect("C"));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.dst));
    DCP_RETURN_IF_ERROR(r.ReadRef(&item.src));
    DCP_RETURN_IF_ERROR(r.Read(&item.token_count, "copy token_count"));
    instr->copy_items.push_back(item);
  }
  for (uint64_t i = 0; i < num_blocks; ++i) {
    TransferBlock block;
    DCP_RETURN_IF_ERROR(r.Expect("T"));
    DCP_RETURN_IF_ERROR(r.ReadRef(&block.ref));
    DCP_RETURN_IF_ERROR(r.Read(&block.bytes, "transfer bytes"));
    DCP_RETURN_IF_ERROR(r.Read(&block.token_count, "transfer token_count"));
    instr->blocks.push_back(block);
  }
  return Status::Ok();
}

}  // namespace

std::string SerializePlan(const BatchPlan& plan) {
  std::ostringstream out;
  out.precision(17);
  const BatchLayout& layout = plan.layout;
  out << "DCPPLAN 2\n";
  out << "LAYOUT " << layout.block_size << " " << layout.num_groups << " "
      << layout.heads_per_group << " " << layout.head_dim << " " << layout.bytes_per_element
      << " " << layout.seqlens.size() << "\n";
  out << "SEQLENS";
  for (int64_t len : layout.seqlens) {
    out << " " << len;
  }
  out << "\n";
  out << "HOME " << plan.chunk_home.size();
  for (DeviceId d : plan.chunk_home) {
    out << " " << d;
  }
  out << "\n";
  out << "STATS " << plan.stats.total_comm_bytes << " " << plan.stats.inter_node_comm_bytes
      << " " << plan.stats.max_device_comm_bytes << " " << plan.stats.total_flops << " "
      << plan.stats.max_device_flops << " " << plan.stats.planning_seconds << " "
      << plan.stats.partition_cost << " " << plan.stats.max_device_owned_bytes << " "
      << plan.stats.min_device_owned_bytes << "\n";
  out << "DEVICES " << plan.devices.size() << "\n";
  for (const DevicePlan& dev : plan.devices) {
    out << "DEVICE";
    for (int32_t slots : dev.num_slots) {
      out << " " << slots;
    }
    out << " " << dev.local_chunks.size() << " " << dev.instructions.size() << " "
        << dev.backward_instructions.size() << "\n";
    for (const LocalChunk& chunk : dev.local_chunks) {
      out << "L " << chunk.seq << " " << chunk.chunk << " " << chunk.group << " "
          << chunk.q_slot << " " << chunk.kv_slot << "\n";
    }
    for (const Instruction& instr : dev.instructions) {
      WriteInstruction(out, instr);
    }
    for (const Instruction& instr : dev.backward_instructions) {
      WriteInstruction(out, instr);
    }
  }
  return out.str();
}

StatusOr<BatchPlan> DeserializePlan(const std::string& text) {
  TextReader r(text);
  int version = 0;
  DCP_RETURN_IF_ERROR(r.Expect("DCPPLAN"));
  DCP_RETURN_IF_ERROR(r.Read(&version, "format version"));
  if (version != 1 && version != 2) {
    return r.Fail("unsupported format version " + std::to_string(version));
  }
  BatchPlan plan;
  BatchLayout& layout = plan.layout;
  uint64_t num_seqs = 0;
  DCP_RETURN_IF_ERROR(r.Expect("LAYOUT"));
  DCP_RETURN_IF_ERROR(r.Read(&layout.block_size, "layout block_size"));
  DCP_RETURN_IF_ERROR(r.Read(&layout.num_groups, "layout num_groups"));
  DCP_RETURN_IF_ERROR(r.Read(&layout.heads_per_group, "layout heads_per_group"));
  DCP_RETURN_IF_ERROR(r.Read(&layout.head_dim, "layout head_dim"));
  DCP_RETURN_IF_ERROR(r.Read(&layout.bytes_per_element, "layout bytes_per_element"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_seqs, "sequence count"));
  DCP_RETURN_IF_ERROR(r.Expect("SEQLENS"));
  for (uint64_t s = 0; s < num_seqs; ++s) {
    int64_t len = 0;
    DCP_RETURN_IF_ERROR(r.Read(&len, "sequence length"));
    layout.seqlens.push_back(len);
  }
  uint64_t num_chunks = 0;
  DCP_RETURN_IF_ERROR(r.Expect("HOME"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_chunks, "chunk count"));
  for (uint64_t c = 0; c < num_chunks; ++c) {
    DeviceId d = 0;
    DCP_RETURN_IF_ERROR(r.Read(&d, "chunk home device"));
    plan.chunk_home.push_back(d);
  }
  DCP_RETURN_IF_ERROR(r.Expect("STATS"));
  DCP_RETURN_IF_ERROR(r.Read(&plan.stats.total_comm_bytes, "stats total_comm_bytes"));
  DCP_RETURN_IF_ERROR(
      r.Read(&plan.stats.inter_node_comm_bytes, "stats inter_node_comm_bytes"));
  DCP_RETURN_IF_ERROR(
      r.Read(&plan.stats.max_device_comm_bytes, "stats max_device_comm_bytes"));
  DCP_RETURN_IF_ERROR(r.Read(&plan.stats.total_flops, "stats total_flops"));
  DCP_RETURN_IF_ERROR(r.Read(&plan.stats.max_device_flops, "stats max_device_flops"));
  DCP_RETURN_IF_ERROR(r.Read(&plan.stats.planning_seconds, "stats planning_seconds"));
  DCP_RETURN_IF_ERROR(r.Read(&plan.stats.partition_cost, "stats partition_cost"));
  if (version >= 2) {
    DCP_RETURN_IF_ERROR(
        r.Read(&plan.stats.max_device_owned_bytes, "stats max_device_owned_bytes"));
    DCP_RETURN_IF_ERROR(
        r.Read(&plan.stats.min_device_owned_bytes, "stats min_device_owned_bytes"));
  }  // Version 1 predates the owned-bytes pair: both stay zero.
  uint64_t num_devices = 0;
  DCP_RETURN_IF_ERROR(r.Expect("DEVICES"));
  DCP_RETURN_IF_ERROR(r.ReadCount(&num_devices, "device count"));
  for (uint64_t d = 0; d < num_devices; ++d) {
    DevicePlan dev;
    DCP_RETURN_IF_ERROR(r.Expect("DEVICE"));
    for (int32_t& slots : dev.num_slots) {
      DCP_RETURN_IF_ERROR(r.Read(&slots, "device slot count"));
    }
    uint64_t num_local = 0;
    uint64_t num_fw = 0;
    uint64_t num_bw = 0;
    DCP_RETURN_IF_ERROR(r.ReadCount(&num_local, "local chunk count"));
    DCP_RETURN_IF_ERROR(r.ReadCount(&num_fw, "forward instruction count"));
    DCP_RETURN_IF_ERROR(r.ReadCount(&num_bw, "backward instruction count"));
    for (uint64_t i = 0; i < num_local; ++i) {
      LocalChunk chunk;
      DCP_RETURN_IF_ERROR(r.Expect("L"));
      DCP_RETURN_IF_ERROR(r.Read(&chunk.seq, "local chunk seq"));
      DCP_RETURN_IF_ERROR(r.Read(&chunk.chunk, "local chunk index"));
      DCP_RETURN_IF_ERROR(r.Read(&chunk.group, "local chunk group"));
      DCP_RETURN_IF_ERROR(r.Read(&chunk.q_slot, "local chunk q_slot"));
      DCP_RETURN_IF_ERROR(r.Read(&chunk.kv_slot, "local chunk kv_slot"));
      dev.local_chunks.push_back(chunk);
    }
    for (uint64_t i = 0; i < num_fw; ++i) {
      Instruction instr;
      DCP_RETURN_IF_ERROR(ReadInstructionText(r, &instr));
      dev.instructions.push_back(std::move(instr));
    }
    for (uint64_t i = 0; i < num_bw; ++i) {
      Instruction instr;
      DCP_RETURN_IF_ERROR(ReadInstructionText(r, &instr));
      dev.backward_instructions.push_back(std::move(instr));
    }
    plan.devices.push_back(std::move(dev));
  }
  std::string rest;
  if (r.in >> rest) {
    return r.Fail("trailing garbage after plan ('" + rest + "')");
  }
  return plan;
}

BatchPlan DeserializePlanOrDie(const std::string& text) {
  StatusOr<BatchPlan> plan = DeserializePlan(text);
  DCP_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

// --- Binary encoding -------------------------------------------------------
//
// Compact byte-oriented encoding, assembled byte by byte so it is identical on any
// host: integers are LEB128 varints (signed values zigzag-folded first, so the small
// positive-or-negative ids real plans are full of take one byte), doubles are bit_cast
// to fixed 8-byte little-endian words (exact, no decimal round-trip). Layout:
//
//   "DCPB" u32 version
//   layout   block_size, num_groups/heads_per_group/head_dim/bytes_per_element,
//            num_seqs, seqlens[]
//   home     num_chunks, devices[]
//   stats    all nine PlanStats fields (text format v2 carries them all too)
//   devices  count, then per device: num_slots[kNumBufKinds],
//            num_local/num_fw/num_bw, local chunks, fw instrs, bw instrs

namespace {

constexpr char kBinaryMagic[4] = {'D', 'C', 'P', 'B'};
constexpr uint32_t kPlanBinaryVersion = 1;

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      U8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      U8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  // Unsigned LEB128.
  void Var(uint64_t v) {
    while (v >= 0x80) {
      U8(static_cast<uint8_t>(0x80 | (v & 0x7F)));
      v >>= 7;
    }
    U8(static_cast<uint8_t>(v));
  }
  // Zigzag-folded varint for signed values.
  void Zig(int64_t v) {
    Var((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Count(size_t v) {
    DCP_CHECK_LE(v, kMaxPlanItems);
    Var(v);
  }
  // Length-prefixed byte string (service wire messages).
  void Str(std::string_view s) {
    Count(s.size());
    buf_.append(s);
  }

  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked cursor over the binary form. Reads return values directly and latch
// the FIRST failure (with its offset) instead of threading a Status through every field
// read — the decoder checks `failed()` at item granularity, which keeps full validation
// while running several times faster than a Status-per-byte design (the store hit path
// decodes ~100KB records; this is its inner loop). After a failure every further read
// returns 0, so a checkpoint per loop iteration bounds the garbage work to one item.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  bool failed() const { return failed_; }

  void SetFail(const char* what) {
    if (!failed_) {
      failed_ = true;
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
  }
  // The latched failure as a Status (DATA_LOSS); only meaningful when failed().
  Status TakeStatus() const { return Status::DataLoss("plan binary: " + error_); }
  Status Fail(const std::string& what) {
    return Status::DataLoss("plan binary: " + what + " at offset " +
                            std::to_string(pos_));
  }

  uint8_t U8() {
    if (pos_ >= data_.size()) {
      SetFail("truncated byte");
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (remaining() < 4) {
      SetFail("truncated u32");
      pos_ = data_.size();
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (remaining() < 8) {
      SetFail("truncated u64");
      pos_ = data_.size();
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  uint64_t Var() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift >= 64) {
        SetFail("varint too long");
        return 0;
      }
      const uint8_t b = U8();
      if (failed_) {
        return 0;
      }
      // The 10th byte of a 64-bit varint only has room for bit 0; payload bits that
      // would shift past bit 63 are an encoding error, not silently droppable.
      if (shift == 63 && (b & 0x7E) != 0) {
        SetFail("varint overflows 64 bits");
        return 0;
      }
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        return v;
      }
      shift += 7;
    }
  }
  int64_t Zig() {
    const uint64_t v = Var();
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }
  int32_t Zig32(const char* what) {
    const int64_t v = Zig();
    if (v < INT32_MIN || v > INT32_MAX) {
      SetFail(what);
      return 0;
    }
    return static_cast<int32_t>(v);
  }
  double F64() {
    if (remaining() < 8) {
      SetFail("truncated f64");
      pos_ = data_.size();
      return 0.0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return std::bit_cast<double>(v);
  }
  // Length-prefixed byte string, bounded both by the caller's limit and the remaining
  // payload before any allocation.
  std::string Str(size_t max_len, const char* what) {
    const uint64_t len = Var();
    if (failed_) {
      return {};
    }
    if (len > max_len || len > remaining()) {
      SetFail(what);
      return {};
    }
    std::string out(data_.substr(pos_, static_cast<size_t>(len)));
    pos_ += static_cast<size_t>(len);
    return out;
  }
  // Like Str, but aliases the input instead of copying — the zero-copy request decode.
  std::string_view StrView(size_t max_len, const char* what) {
    const uint64_t len = Var();
    if (failed_) {
      return {};
    }
    if (len > max_len || len > remaining()) {
      SetFail(what);
      return {};
    }
    std::string_view out = data_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return out;
  }
  // Reads a count and proves `count * min_item_bytes` fits in the remaining payload, so
  // a corrupt count can neither drive a huge allocation nor a long parse loop.
  uint32_t BoundedCount(size_t min_item_bytes, const char* what) {
    const uint64_t v = Var();
    if (failed_) {
      return 0;
    }
    if (v > kMaxPlanItems || v * min_item_bytes > remaining()) {
      SetFail(what);
      return 0;
    }
    return static_cast<uint32_t>(v);
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

// Minimum encoded sizes (every varint is at least one byte), used to bound counts
// before allocating.
constexpr size_t kRefBytes = 2;                            // u8 kind + varint slot.
constexpr size_t kAttnItemBytes = 7 * kRefBytes + 2 + 4 + 1;
constexpr size_t kReduceItemBytes = 1 + 3 * kRefBytes + 1;
constexpr size_t kCopyItemBytes = 2 * kRefBytes + 1;
constexpr size_t kTransferBlockBytes = kRefBytes + 2;
constexpr size_t kLocalChunkBytes = 5;
constexpr size_t kInstrHeaderBytes = 2 + 8 + 2 + 8 + 2 + 4;
constexpr size_t kDeviceHeaderBytes = kNumBufKinds + 3;

void WriteRefBin(ByteWriter& w, const BlockRef& ref) {
  w.U8(static_cast<uint8_t>(ref.kind));
  w.Zig(ref.slot);
}

BlockRef ReadRefBin(ByteReader& r) {
  BlockRef ref;
  const uint8_t kind = r.U8();
  if (kind >= kNumBufKinds) {
    r.SetFail("block-ref kind out of range");
    return ref;
  }
  ref.kind = static_cast<BufKind>(kind);
  ref.slot = r.Zig32("block-ref slot out of range");
  return ref;
}

void WriteInstructionBin(ByteWriter& w, const Instruction& instr) {
  w.U8(static_cast<uint8_t>(instr.kind));
  w.U8(static_cast<uint8_t>((instr.backward ? 1 : 0) | (instr.is_send ? 2 : 0)));
  w.F64(instr.flops);
  w.Zig(instr.comm_bytes);
  w.Zig(instr.mem_bytes);
  w.F64(instr.host_overhead);
  w.Zig(instr.transfer_id);
  w.Zig(instr.peer);
  w.Count(instr.attn_items.size());
  w.Count(instr.reduce_items.size());
  w.Count(instr.copy_items.size());
  w.Count(instr.blocks.size());
  for (const AttentionWorkItem& item : instr.attn_items) {
    WriteRefBin(w, item.q);
    WriteRefBin(w, item.kv);
    WriteRefBin(w, item.acc);
    w.Zig(item.seq);
    w.Zig(item.group);
    w.Zig(item.q_begin);
    w.Zig(item.q_end);
    w.Zig(item.kv_begin);
    w.Zig(item.kv_end);
    w.U8(item.full ? 1 : 0);
    WriteRefBin(w, item.dout);
    WriteRefBin(w, item.delta);
    WriteRefBin(w, item.dq);
    WriteRefBin(w, item.dkv);
  }
  for (const ReduceItem& item : instr.reduce_items) {
    w.U8(static_cast<uint8_t>(item.mode));
    WriteRefBin(w, item.dst);
    WriteRefBin(w, item.src0);
    WriteRefBin(w, item.src1);
    w.Zig(item.token_count);
  }
  for (const CopyItem& item : instr.copy_items) {
    WriteRefBin(w, item.dst);
    WriteRefBin(w, item.src);
    w.Zig(item.token_count);
  }
  for (const TransferBlock& block : instr.blocks) {
    WriteRefBin(w, block.ref);
    w.Zig(block.bytes);
    w.Zig(block.token_count);
  }
}

Status ReadInstructionBin(ByteReader& r, Instruction* instr) {
  const uint8_t kind = r.U8();
  if (kind > kMaxInstrKind) {
    return r.Fail("instruction kind out of range");
  }
  const uint8_t flags = r.U8();
  if (flags > 3) {
    return r.Fail("instruction flags out of range");
  }
  instr->kind = static_cast<InstrKind>(kind);
  instr->backward = (flags & 1) != 0;
  instr->is_send = (flags & 2) != 0;
  instr->flops = r.F64();
  instr->comm_bytes = r.Zig();
  instr->mem_bytes = r.Zig();
  instr->host_overhead = r.F64();
  instr->transfer_id = r.Zig32("transfer id out of range");
  instr->peer = r.Zig32("peer device out of range");
  const uint32_t num_attn = r.BoundedCount(kAttnItemBytes, "attention item count");
  const uint32_t num_reduce = r.BoundedCount(kReduceItemBytes, "reduce item count");
  const uint32_t num_copy = r.BoundedCount(kCopyItemBytes, "copy item count");
  const uint32_t num_blocks = r.BoundedCount(kTransferBlockBytes, "transfer count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  instr->attn_items.reserve(num_attn);
  for (uint32_t i = 0; i < num_attn; ++i) {
    AttentionWorkItem item;
    item.q = ReadRefBin(r);
    item.kv = ReadRefBin(r);
    item.acc = ReadRefBin(r);
    item.seq = r.Zig32("attention seq out of range");
    item.group = r.Zig32("attention group out of range");
    item.q_begin = r.Zig();
    item.q_end = r.Zig();
    item.kv_begin = r.Zig();
    item.kv_end = r.Zig();
    const uint8_t full = r.U8();
    if (full > 1) {
      return r.Fail("attention item full flag out of range");
    }
    item.full = full != 0;
    item.dout = ReadRefBin(r);
    item.delta = ReadRefBin(r);
    item.dq = ReadRefBin(r);
    item.dkv = ReadRefBin(r);
    if (r.failed()) {
      return r.TakeStatus();
    }
    instr->attn_items.push_back(item);
  }
  instr->reduce_items.reserve(num_reduce);
  for (uint32_t i = 0; i < num_reduce; ++i) {
    ReduceItem item;
    const uint8_t mode = r.U8();
    if (mode > kMaxReduceMode) {
      return r.Fail("reduce mode out of range");
    }
    item.mode = static_cast<ReduceMode>(mode);
    item.dst = ReadRefBin(r);
    item.src0 = ReadRefBin(r);
    item.src1 = ReadRefBin(r);
    item.token_count = r.Zig();
    if (r.failed()) {
      return r.TakeStatus();
    }
    instr->reduce_items.push_back(item);
  }
  instr->copy_items.reserve(num_copy);
  for (uint32_t i = 0; i < num_copy; ++i) {
    CopyItem item;
    item.dst = ReadRefBin(r);
    item.src = ReadRefBin(r);
    item.token_count = r.Zig();
    if (r.failed()) {
      return r.TakeStatus();
    }
    instr->copy_items.push_back(item);
  }
  instr->blocks.reserve(num_blocks);
  for (uint32_t i = 0; i < num_blocks; ++i) {
    TransferBlock block;
    block.ref = ReadRefBin(r);
    block.bytes = r.Zig();
    block.token_count = r.Zig();
    if (r.failed()) {
      return r.TakeStatus();
    }
    instr->blocks.push_back(block);
  }
  return Status::Ok();
}

}  // namespace

std::string SerializePlanBinary(const BatchPlan& plan) {
  ByteWriter w;
  for (char c : kBinaryMagic) {
    w.U8(static_cast<uint8_t>(c));
  }
  w.U32(kPlanBinaryVersion);
  const BatchLayout& layout = plan.layout;
  w.Zig(layout.block_size);
  w.Zig(layout.num_groups);
  w.Zig(layout.heads_per_group);
  w.Zig(layout.head_dim);
  w.Zig(layout.bytes_per_element);
  w.Count(layout.seqlens.size());
  for (int64_t len : layout.seqlens) {
    w.Zig(len);
  }
  w.Count(plan.chunk_home.size());
  for (DeviceId d : plan.chunk_home) {
    w.Zig(d);
  }
  w.Zig(plan.stats.total_comm_bytes);
  w.Zig(plan.stats.inter_node_comm_bytes);
  w.Zig(plan.stats.max_device_comm_bytes);
  w.F64(plan.stats.total_flops);
  w.F64(plan.stats.max_device_flops);
  w.Zig(plan.stats.max_device_owned_bytes);
  w.Zig(plan.stats.min_device_owned_bytes);
  w.F64(plan.stats.planning_seconds);
  w.F64(plan.stats.partition_cost);
  w.Count(plan.devices.size());
  for (const DevicePlan& dev : plan.devices) {
    for (int32_t slots : dev.num_slots) {
      w.Zig(slots);
    }
    w.Count(dev.local_chunks.size());
    w.Count(dev.instructions.size());
    w.Count(dev.backward_instructions.size());
    for (const LocalChunk& chunk : dev.local_chunks) {
      w.Zig(chunk.seq);
      w.Zig(chunk.chunk);
      w.Zig(chunk.group);
      w.Zig(chunk.q_slot);
      w.Zig(chunk.kv_slot);
    }
    for (const Instruction& instr : dev.instructions) {
      WriteInstructionBin(w, instr);
    }
    for (const Instruction& instr : dev.backward_instructions) {
      WriteInstructionBin(w, instr);
    }
  }
  return w.Take();
}

StatusOr<BatchPlan> DeserializePlanBinary(std::string_view bytes) {
  ByteReader r(bytes);
  for (char expected : kBinaryMagic) {
    if (r.U8() != static_cast<uint8_t>(expected)) {
      return r.Fail("bad magic");
    }
  }
  const uint32_t version = r.U32();
  if (r.failed()) {
    return r.TakeStatus();
  }
  if (version != kPlanBinaryVersion) {
    return r.Fail("unsupported format version " + std::to_string(version));
  }
  BatchPlan plan;
  BatchLayout& layout = plan.layout;
  layout.block_size = r.Zig();
  layout.num_groups = r.Zig32("layout num_groups out of range");
  layout.heads_per_group = r.Zig32("layout heads_per_group out of range");
  layout.head_dim = r.Zig32("layout head_dim out of range");
  layout.bytes_per_element = r.Zig32("layout bytes_per_element out of range");
  const uint32_t num_seqs = r.BoundedCount(1, "sequence count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  layout.seqlens.reserve(num_seqs);
  for (uint32_t s = 0; s < num_seqs; ++s) {
    layout.seqlens.push_back(r.Zig());
  }
  const uint32_t num_chunks = r.BoundedCount(1, "chunk home count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  plan.chunk_home.reserve(num_chunks);
  for (uint32_t c = 0; c < num_chunks; ++c) {
    plan.chunk_home.push_back(r.Zig32("chunk home device out of range"));
  }
  plan.stats.total_comm_bytes = r.Zig();
  plan.stats.inter_node_comm_bytes = r.Zig();
  plan.stats.max_device_comm_bytes = r.Zig();
  plan.stats.total_flops = r.F64();
  plan.stats.max_device_flops = r.F64();
  plan.stats.max_device_owned_bytes = r.Zig();
  plan.stats.min_device_owned_bytes = r.Zig();
  plan.stats.planning_seconds = r.F64();
  plan.stats.partition_cost = r.F64();
  const uint32_t num_devices = r.BoundedCount(kDeviceHeaderBytes, "device count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  plan.devices.reserve(num_devices);
  for (uint32_t d = 0; d < num_devices; ++d) {
    DevicePlan dev;
    for (int32_t& slots : dev.num_slots) {
      slots = r.Zig32("device slot count out of range");
    }
    const uint32_t num_local = r.BoundedCount(kLocalChunkBytes, "local chunk count");
    const uint32_t num_fw = r.BoundedCount(kInstrHeaderBytes, "fw instruction count");
    const uint32_t num_bw = r.BoundedCount(kInstrHeaderBytes, "bw instruction count");
    if (r.failed()) {
      return r.TakeStatus();
    }
    dev.local_chunks.reserve(num_local);
    for (uint32_t i = 0; i < num_local; ++i) {
      LocalChunk chunk;
      chunk.seq = r.Zig32("local chunk seq out of range");
      chunk.chunk = r.Zig32("local chunk index out of range");
      chunk.group = r.Zig32("local chunk group out of range");
      chunk.q_slot = r.Zig32("local chunk q_slot out of range");
      chunk.kv_slot = r.Zig32("local chunk kv_slot out of range");
      if (r.failed()) {
        return r.TakeStatus();
      }
      dev.local_chunks.push_back(chunk);
    }
    dev.instructions.reserve(num_fw);
    for (uint32_t i = 0; i < num_fw; ++i) {
      Instruction instr;
      DCP_RETURN_IF_ERROR(ReadInstructionBin(r, &instr));
      dev.instructions.push_back(std::move(instr));
    }
    dev.backward_instructions.reserve(num_bw);
    for (uint32_t i = 0; i < num_bw; ++i) {
      Instruction instr;
      DCP_RETURN_IF_ERROR(ReadInstructionBin(r, &instr));
      dev.backward_instructions.push_back(std::move(instr));
    }
    plan.devices.push_back(std::move(dev));
  }
  if (r.failed()) {
    return r.TakeStatus();
  }
  if (!r.AtEnd()) {
    return r.Fail("trailing garbage after plan (" + std::to_string(r.remaining()) +
                  " bytes)");
  }
  return plan;
}

// --- Planning-service wire messages -----------------------------------------------

namespace {

// v2 added the request deadline, the replica-sync (anti-entropy) messages, and the
// shed/sync counters in the stats response. v3 added the plan request's trailing
// trace_id and the metrics scrape messages; every v2 body parses unchanged under v3
// (the request reader treats the trace_id as optional), so old clients keep working.
constexpr uint32_t kServiceMessageVersion = 3;
constexpr uint32_t kMinServiceMessageVersion = 2;
constexpr uint8_t kMaxMaskKind = static_cast<uint8_t>(MaskKind::kSharedQuestion);
constexpr uint8_t kMaxServeSource =
    static_cast<uint8_t>(PlanServeSource::kReplicaCache);
constexpr size_t kMaxTenantNameBytes = 256;
constexpr size_t kMaxStatusMessageBytes = 1 << 14;
constexpr size_t kMaxMetricNameBytes = 256;
// One tenant stats entry is at least a 1-byte name length plus ten 1-byte varints.
constexpr size_t kMinTenantStatsBytes = 11;
// One signature in a sync request is two fixed-width u64 lanes.
constexpr size_t kSyncSignatureBytes = 16;

void WriteMaskSpecBin(ByteWriter& w, const MaskSpec& spec) {
  w.U8(static_cast<uint8_t>(spec.kind));
  w.Zig(spec.sink_tokens);
  w.Zig(spec.window_tokens);
  w.Zig(spec.icl_block_tokens);
  w.Zig(spec.window_blocks);
  w.Zig(spec.sink_blocks);
  w.Zig(spec.test_blocks);
  w.Zig(spec.num_answers);
  w.F64(spec.answer_fraction);
}

Status ReadMaskSpecBin(ByteReader& r, MaskSpec* spec) {
  const uint8_t kind = r.U8();
  if (kind > kMaxMaskKind) {
    return r.Fail("mask kind out of range");
  }
  spec->kind = static_cast<MaskKind>(kind);
  spec->sink_tokens = r.Zig();
  spec->window_tokens = r.Zig();
  spec->icl_block_tokens = r.Zig();
  spec->window_blocks = r.Zig();
  spec->sink_blocks = r.Zig();
  spec->test_blocks = r.Zig();
  spec->num_answers = r.Zig32("mask num_answers out of range");
  spec->answer_fraction = r.F64();
  return r.failed() ? r.TakeStatus() : Status::Ok();
}

// Every message body leads with the shared wire version; requests and responses evolve
// in lockstep with the service.
Status ReadMessageVersion(ByteReader& r, const char* what,
                          uint32_t* version_out = nullptr) {
  const uint32_t version = r.U32();
  if (r.failed()) {
    return r.TakeStatus();
  }
  if (version < kMinServiceMessageVersion || version > kServiceMessageVersion) {
    return Status::DataLoss(std::string(what) + ": unsupported message version " +
                            std::to_string(version));
  }
  if (version_out != nullptr) {
    *version_out = version;
  }
  return Status::Ok();
}

Status ReadStatusCodeBin(ByteReader& r, StatusCode* code) {
  const uint8_t raw = r.U8();
  if (r.failed()) {
    return r.TakeStatus();
  }
  if (!IsValidStatusCode(raw)) {
    return r.Fail("status code out of range");
  }
  *code = static_cast<StatusCode>(raw);
  return Status::Ok();
}

Status RejectTrailing(ByteReader& r, const char* what) {
  if (r.failed()) {
    return r.TakeStatus();
  }
  if (!r.AtEnd()) {
    return r.Fail(std::string("trailing garbage after ") + what);
  }
  return Status::Ok();
}

}  // namespace

std::string PlanServeSourceName(PlanServeSource source) {
  switch (source) {
    case PlanServeSource::kPlanned:
      return "planned";
    case PlanServeSource::kMemoryCache:
      return "memory-cache";
    case PlanServeSource::kStoreCache:
      return "store-cache";
    case PlanServeSource::kClientCache:
      return "client-cache";
    case PlanServeSource::kReplicaCache:
      return "replica-cache";
  }
  return "unknown";
}

std::string SerializePlanServiceRequest(const PlanServiceRequest& request) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.Str(request.tenant);
  w.Count(request.seqlens.size());
  for (int64_t len : request.seqlens) {
    w.Zig(len);
  }
  WriteMaskSpecBin(w, request.mask_spec);
  w.Zig(request.block_size);
  w.Zig(request.deadline_ms);
  w.U64(request.trace_id);
  return w.Take();
}

StatusOr<PlanServiceRequest> DeserializePlanServiceRequest(std::string_view bytes) {
  ByteReader r(bytes);
  uint32_t version = 0;
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "plan request", &version));
  PlanServiceRequest request;
  request.tenant = r.Str(kMaxTenantNameBytes, "tenant name too long");
  const uint32_t num_seqs = r.BoundedCount(1, "request sequence count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  request.seqlens.reserve(num_seqs);
  for (uint32_t s = 0; s < num_seqs; ++s) {
    request.seqlens.push_back(r.Zig());
  }
  DCP_RETURN_IF_ERROR(ReadMaskSpecBin(r, &request.mask_spec));
  request.block_size = r.Zig();
  request.deadline_ms = r.Zig();
  if (!r.failed() && request.deadline_ms < 0) {
    return r.Fail("negative request deadline");
  }
  if (version >= 3) {
    request.trace_id = r.U64();
  }
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "plan request"));
  return request;
}

StatusOr<PlanServiceRequestView> DeserializePlanServiceRequestView(
    std::string_view bytes, Arena* arena) {
  ByteReader r(bytes);
  uint32_t version = 0;
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "plan request", &version));
  PlanServiceRequestView request;
  request.tenant = r.StrView(kMaxTenantNameBytes, "tenant name too long");
  const uint32_t num_seqs = r.BoundedCount(1, "request sequence count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  // The count precedes the elements, so the whole array is one exact-size arena
  // allocation — the "one allocation per plan deserialization" contract.
  int64_t* seqlens = arena->AllocateArray<int64_t>(num_seqs);
  for (uint32_t s = 0; s < num_seqs; ++s) {
    seqlens[s] = r.Zig();
  }
  request.seqlens = std::span<const int64_t>(seqlens, num_seqs);
  DCP_RETURN_IF_ERROR(ReadMaskSpecBin(r, &request.mask_spec));
  request.block_size = r.Zig();
  request.deadline_ms = r.Zig();
  if (!r.failed() && request.deadline_ms < 0) {
    return r.Fail("negative request deadline");
  }
  if (version >= 3) {
    request.trace_id = r.U64();
  }
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "plan request"));
  return request;
}

std::string SerializePlanServiceResponse(const PlanServiceResponse& response) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.message);
  w.U8(static_cast<uint8_t>(response.source));
  w.U64(response.signature_lo);
  w.U64(response.signature_hi);
  w.Str(response.record);
  return w.Take();
}

std::string SerializePlanServiceResponseHead(const PlanServiceResponse& response,
                                             size_t record_size) {
  // Everything up to and including the record's length prefix; the record bytes
  // themselves ride as a separate iovec (FrameParts::body), so appending them here
  // yields exactly SerializePlanServiceResponse's output.
  DCP_CHECK(response.record.empty())
      << "record bytes must travel via FrameParts::body, not the head";
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.message);
  w.U8(static_cast<uint8_t>(response.source));
  w.U64(response.signature_lo);
  w.U64(response.signature_hi);
  w.Count(record_size);
  return w.Take();
}

StatusOr<PlanServiceResponse> DeserializePlanServiceResponse(std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "plan response"));
  PlanServiceResponse response;
  DCP_RETURN_IF_ERROR(ReadStatusCodeBin(r, &response.code));
  response.message = r.Str(kMaxStatusMessageBytes, "status message too long");
  const uint8_t source = r.U8();
  if (r.failed()) {
    return r.TakeStatus();
  }
  if (source > kMaxServeSource) {
    return r.Fail("serve source out of range");
  }
  response.source = static_cast<PlanServeSource>(source);
  response.signature_lo = r.U64();
  response.signature_hi = r.U64();
  // The record is CRC-guarded internally (PlanStore::DecodeRecord); here it only needs
  // to fit in the remaining payload.
  response.record = r.Str(bytes.size(), "plan record exceeds message");
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "plan response"));
  return response;
}

std::string SerializePlanServiceStatsRequest(const PlanServiceStatsRequest& request) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.Str(request.tenant);
  return w.Take();
}

StatusOr<PlanServiceStatsRequest> DeserializePlanServiceStatsRequest(
    std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "stats request"));
  PlanServiceStatsRequest request;
  request.tenant = r.Str(kMaxTenantNameBytes, "tenant name too long");
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "stats request"));
  return request;
}

std::string SerializePlanServiceStatsResponse(const PlanServiceStatsResponse& response) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.message);
  w.Zig(response.connections_accepted);
  w.Zig(response.requests_received);
  w.Zig(response.responses_sent);
  w.Zig(response.rejected_overload);
  w.Zig(response.malformed_frames);
  w.Zig(response.shed_deadline);
  w.Zig(response.sync_records_shipped);
  w.Zig(response.sync_records_adopted);
  w.Count(response.tenants.size());
  for (const PlanServiceTenantStats& t : response.tenants) {
    w.Str(t.tenant);
    w.Zig(t.requests);
    w.Zig(t.plan_errors);
    w.Zig(t.shed_quota);
    w.Zig(t.cache_hits);
    w.Zig(t.cache_misses);
    w.Zig(t.cache_evictions);
    w.Zig(t.cache_entries);
    w.Zig(t.store_hits);
    w.Zig(t.store_writes);
    w.Zig(t.store_corrupt_skipped);
  }
  return w.Take();
}

StatusOr<PlanServiceStatsResponse> DeserializePlanServiceStatsResponse(
    std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "stats response"));
  PlanServiceStatsResponse response;
  DCP_RETURN_IF_ERROR(ReadStatusCodeBin(r, &response.code));
  response.message = r.Str(kMaxStatusMessageBytes, "status message too long");
  response.connections_accepted = r.Zig();
  response.requests_received = r.Zig();
  response.responses_sent = r.Zig();
  response.rejected_overload = r.Zig();
  response.malformed_frames = r.Zig();
  response.shed_deadline = r.Zig();
  response.sync_records_shipped = r.Zig();
  response.sync_records_adopted = r.Zig();
  const uint32_t num_tenants = r.BoundedCount(kMinTenantStatsBytes, "tenant count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  response.tenants.reserve(num_tenants);
  for (uint32_t i = 0; i < num_tenants; ++i) {
    PlanServiceTenantStats t;
    t.tenant = r.Str(kMaxTenantNameBytes, "tenant name too long");
    t.requests = r.Zig();
    t.plan_errors = r.Zig();
    t.shed_quota = r.Zig();
    t.cache_hits = r.Zig();
    t.cache_misses = r.Zig();
    t.cache_evictions = r.Zig();
    t.cache_entries = r.Zig();
    t.store_hits = r.Zig();
    t.store_writes = r.Zig();
    t.store_corrupt_skipped = r.Zig();
    if (r.failed()) {
      return r.TakeStatus();
    }
    response.tenants.push_back(std::move(t));
  }
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "stats response"));
  return response;
}

std::string SerializePlanServiceMetricsRequest(
    const PlanServiceMetricsRequest& request) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.Str(request.name_prefix);
  return w.Take();
}

StatusOr<PlanServiceMetricsRequest> DeserializePlanServiceMetricsRequest(
    std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "metrics request"));
  PlanServiceMetricsRequest request;
  request.name_prefix = r.Str(kMaxMetricNameBytes, "metric name prefix too long");
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "metrics request"));
  return request;
}

std::string SerializePlanServiceMetricsResponse(
    const PlanServiceMetricsResponse& response) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.message);
  w.Str(response.text);
  return w.Take();
}

StatusOr<PlanServiceMetricsResponse> DeserializePlanServiceMetricsResponse(
    std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "metrics response"));
  PlanServiceMetricsResponse response;
  DCP_RETURN_IF_ERROR(ReadStatusCodeBin(r, &response.code));
  response.message = r.Str(kMaxStatusMessageBytes, "status message too long");
  // The rendered exposition only needs to fit in the frame payload.
  response.text = r.Str(bytes.size(), "metrics text exceeds message");
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "metrics response"));
  return response;
}

std::string SerializePlanSyncRequest(const PlanSyncRequest& request) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.Str(request.tenant);
  w.Count(request.have.size());
  for (const auto& sig : request.have) {
    w.U64(sig.first);
    w.U64(sig.second);
  }
  return w.Take();
}

StatusOr<PlanSyncRequest> DeserializePlanSyncRequest(std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "sync request"));
  PlanSyncRequest request;
  request.tenant = r.Str(kMaxTenantNameBytes, "tenant name too long");
  const uint32_t num_have = r.BoundedCount(kSyncSignatureBytes, "sync signature count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  request.have.reserve(num_have);
  for (uint32_t i = 0; i < num_have; ++i) {
    const uint64_t lo = r.U64();
    const uint64_t hi = r.U64();
    request.have.emplace_back(lo, hi);
  }
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "sync request"));
  return request;
}

std::string SerializePlanSyncResponse(const PlanSyncResponse& response) {
  ByteWriter w;
  w.U32(kServiceMessageVersion);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.message);
  w.Count(response.records.size());
  for (const std::string& record : response.records) {
    w.Str(record);
  }
  return w.Take();
}

StatusOr<PlanSyncResponse> DeserializePlanSyncResponse(std::string_view bytes) {
  ByteReader r(bytes);
  DCP_RETURN_IF_ERROR(ReadMessageVersion(r, "sync response"));
  PlanSyncResponse response;
  DCP_RETURN_IF_ERROR(ReadStatusCodeBin(r, &response.code));
  response.message = r.Str(kMaxStatusMessageBytes, "status message too long");
  const uint32_t num_records = r.BoundedCount(1, "sync record count");
  if (r.failed()) {
    return r.TakeStatus();
  }
  response.records.reserve(num_records);
  for (uint32_t i = 0; i < num_records; ++i) {
    // Each record is CRC-guarded internally (PlanStore::DecodeRecord validates before
    // adoption); here it only needs to fit in the remaining payload.
    response.records.push_back(r.Str(bytes.size(), "sync record exceeds message"));
    if (r.failed()) {
      return r.TakeStatus();
    }
  }
  DCP_RETURN_IF_ERROR(RejectTrailing(r, "sync response"));
  return response;
}

}  // namespace dcp
