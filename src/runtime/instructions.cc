#include "runtime/instructions.h"

#include <sstream>

#include "common/check.h"

namespace dcp {

std::string BufKindName(BufKind kind) {
  switch (kind) {
    case BufKind::kQ:
      return "Q";
    case BufKind::kKV:
      return "KV";
    case BufKind::kO:
      return "O";
    case BufKind::kAcc:
      return "Acc";
    case BufKind::kDO:
      return "dO";
    case BufKind::kDQ:
      return "dQ";
    case BufKind::kDKV:
      return "dKV";
    case BufKind::kDelta:
      return "Delta";
    case BufKind::kNumKinds:
      break;
  }
  return "?";
}

std::string InstrKindName(InstrKind kind) {
  switch (kind) {
    case InstrKind::kBlockwiseAttention:
      return "BlockwiseAttention";
    case InstrKind::kBlockwiseReduction:
      return "BlockwiseReduction";
    case InstrKind::kBlockwiseCopy:
      return "BlockwiseCopy";
    case InstrKind::kCommLaunch:
      return "CommLaunch";
    case InstrKind::kCommWait:
      return "CommWait";
  }
  return "?";
}

std::string ReduceModeName(ReduceMode mode) {
  switch (mode) {
    case ReduceMode::kMergeSoftmax:
      return "MergeSoftmax";
    case ReduceMode::kFinalize:
      return "Finalize";
    case ReduceMode::kSum:
      return "Sum";
    case ReduceMode::kComputeDelta:
      return "ComputeDelta";
  }
  return "?";
}

std::string PlanToString(const BatchPlan& plan, int max_instructions_per_device) {
  std::ostringstream out;
  out << "BatchPlan: " << plan.num_devices() << " devices, "
      << plan.layout.num_sequences() << " sequences, block_size=" << plan.layout.block_size
      << ", comm=" << plan.stats.total_comm_bytes / (1 << 20) << "MiB ("
      << plan.stats.inter_node_comm_bytes / (1 << 20) << "MiB inter-node)\n";
  for (int d = 0; d < plan.num_devices(); ++d) {
    const DevicePlan& dev = plan.devices[static_cast<size_t>(d)];
    out << "  device " << d << ": " << dev.local_chunks.size() << " local chunks, "
        << dev.instructions.size() << " fw instrs, " << dev.backward_instructions.size()
        << " bw instrs\n";
    int shown = 0;
    for (const Instruction& instr : dev.instructions) {
      if (shown++ >= max_instructions_per_device) {
        out << "    ...\n";
        break;
      }
      out << "    " << InstrKindName(instr.kind);
      switch (instr.kind) {
        case InstrKind::kBlockwiseAttention:
          out << " tiles=" << instr.attn_items.size() << " flops=" << instr.flops;
          break;
        case InstrKind::kBlockwiseReduction:
          out << " items=" << instr.reduce_items.size();
          break;
        case InstrKind::kBlockwiseCopy:
          out << " items=" << instr.copy_items.size();
          break;
        case InstrKind::kCommLaunch:
          out << (instr.is_send ? " send" : " recv") << " id=" << instr.transfer_id
              << " peer=" << instr.peer << " bytes=" << instr.comm_bytes;
          break;
        case InstrKind::kCommWait:
          out << " id=" << instr.transfer_id;
          break;
      }
      out << "\n";
    }
  }
  return out.str();
}

namespace {

void WriteRef(std::ostream& out, const BlockRef& ref) {
  out << " " << static_cast<int>(ref.kind) << " " << ref.slot;
}

BlockRef ReadRef(std::istream& in) {
  int kind = 0;
  BlockRef ref;
  in >> kind >> ref.slot;
  DCP_CHECK(kind >= 0 && kind < kNumBufKinds);
  ref.kind = static_cast<BufKind>(kind);
  return ref;
}

void WriteInstruction(std::ostream& out, const Instruction& instr) {
  out << "I " << static_cast<int>(instr.kind) << " " << (instr.backward ? 1 : 0) << " "
      << instr.flops << " " << instr.comm_bytes << " " << instr.mem_bytes << " "
      << instr.host_overhead << " " << instr.transfer_id << " " << instr.peer << " "
      << (instr.is_send ? 1 : 0) << " " << instr.attn_items.size() << " "
      << instr.reduce_items.size() << " " << instr.copy_items.size() << " "
      << instr.blocks.size() << "\n";
  for (const AttentionWorkItem& item : instr.attn_items) {
    out << "A";
    WriteRef(out, item.q);
    WriteRef(out, item.kv);
    WriteRef(out, item.acc);
    out << " " << item.seq << " " << item.group << " " << item.q_begin << " " << item.q_end
        << " " << item.kv_begin << " " << item.kv_end << " " << (item.full ? 1 : 0);
    WriteRef(out, item.dout);
    WriteRef(out, item.delta);
    WriteRef(out, item.dq);
    WriteRef(out, item.dkv);
    out << "\n";
  }
  for (const ReduceItem& item : instr.reduce_items) {
    out << "R " << static_cast<int>(item.mode);
    WriteRef(out, item.dst);
    WriteRef(out, item.src0);
    WriteRef(out, item.src1);
    out << " " << item.token_count << "\n";
  }
  for (const CopyItem& item : instr.copy_items) {
    out << "C";
    WriteRef(out, item.dst);
    WriteRef(out, item.src);
    out << " " << item.token_count << "\n";
  }
  for (const TransferBlock& block : instr.blocks) {
    out << "T";
    WriteRef(out, block.ref);
    out << " " << block.bytes << " " << block.token_count << "\n";
  }
}

Instruction ReadInstruction(std::istream& in) {
  std::string tag;
  in >> tag;
  DCP_CHECK(tag == "I") << "expected instruction tag, got '" << tag << "'";
  Instruction instr;
  int kind = 0;
  int backward = 0;
  int is_send = 0;
  size_t num_attn = 0;
  size_t num_reduce = 0;
  size_t num_copy = 0;
  size_t num_blocks = 0;
  in >> kind >> backward >> instr.flops >> instr.comm_bytes >> instr.mem_bytes >>
      instr.host_overhead >> instr.transfer_id >> instr.peer >> is_send >> num_attn >>
      num_reduce >> num_copy >> num_blocks;
  instr.kind = static_cast<InstrKind>(kind);
  instr.backward = backward != 0;
  instr.is_send = is_send != 0;
  instr.attn_items.resize(num_attn);
  for (AttentionWorkItem& item : instr.attn_items) {
    in >> tag;
    DCP_CHECK(tag == "A");
    item.q = ReadRef(in);
    item.kv = ReadRef(in);
    item.acc = ReadRef(in);
    int full = 0;
    in >> item.seq >> item.group >> item.q_begin >> item.q_end >> item.kv_begin >>
        item.kv_end >> full;
    item.full = full != 0;
    item.dout = ReadRef(in);
    item.delta = ReadRef(in);
    item.dq = ReadRef(in);
    item.dkv = ReadRef(in);
  }
  instr.reduce_items.resize(num_reduce);
  for (ReduceItem& item : instr.reduce_items) {
    int mode = 0;
    in >> tag;
    DCP_CHECK(tag == "R");
    in >> mode;
    item.mode = static_cast<ReduceMode>(mode);
    item.dst = ReadRef(in);
    item.src0 = ReadRef(in);
    item.src1 = ReadRef(in);
    in >> item.token_count;
  }
  instr.copy_items.resize(num_copy);
  for (CopyItem& item : instr.copy_items) {
    in >> tag;
    DCP_CHECK(tag == "C");
    item.dst = ReadRef(in);
    item.src = ReadRef(in);
    in >> item.token_count;
  }
  instr.blocks.resize(num_blocks);
  for (TransferBlock& block : instr.blocks) {
    in >> tag;
    DCP_CHECK(tag == "T");
    block.ref = ReadRef(in);
    in >> block.bytes >> block.token_count;
  }
  return instr;
}

}  // namespace

std::string SerializePlan(const BatchPlan& plan) {
  std::ostringstream out;
  out.precision(17);
  const BatchLayout& layout = plan.layout;
  out << "DCPPLAN 1\n";
  out << "LAYOUT " << layout.block_size << " " << layout.num_groups << " "
      << layout.heads_per_group << " " << layout.head_dim << " " << layout.bytes_per_element
      << " " << layout.seqlens.size() << "\n";
  out << "SEQLENS";
  for (int64_t len : layout.seqlens) {
    out << " " << len;
  }
  out << "\n";
  out << "HOME " << plan.chunk_home.size();
  for (DeviceId d : plan.chunk_home) {
    out << " " << d;
  }
  out << "\n";
  out << "STATS " << plan.stats.total_comm_bytes << " " << plan.stats.inter_node_comm_bytes
      << " " << plan.stats.max_device_comm_bytes << " " << plan.stats.total_flops << " "
      << plan.stats.max_device_flops << " " << plan.stats.planning_seconds << " "
      << plan.stats.partition_cost << "\n";
  out << "DEVICES " << plan.devices.size() << "\n";
  for (const DevicePlan& dev : plan.devices) {
    out << "DEVICE";
    for (int32_t slots : dev.num_slots) {
      out << " " << slots;
    }
    out << " " << dev.local_chunks.size() << " " << dev.instructions.size() << " "
        << dev.backward_instructions.size() << "\n";
    for (const LocalChunk& chunk : dev.local_chunks) {
      out << "L " << chunk.seq << " " << chunk.chunk << " " << chunk.group << " "
          << chunk.q_slot << " " << chunk.kv_slot << "\n";
    }
    for (const Instruction& instr : dev.instructions) {
      WriteInstruction(out, instr);
    }
    for (const Instruction& instr : dev.backward_instructions) {
      WriteInstruction(out, instr);
    }
  }
  return out.str();
}

BatchPlan DeserializePlan(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  int version = 0;
  in >> tag >> version;
  DCP_CHECK(tag == "DCPPLAN" && version == 1) << "bad plan header";
  BatchPlan plan;
  BatchLayout& layout = plan.layout;
  size_t num_seqs = 0;
  in >> tag;
  DCP_CHECK(tag == "LAYOUT");
  in >> layout.block_size >> layout.num_groups >> layout.heads_per_group >>
      layout.head_dim >> layout.bytes_per_element >> num_seqs;
  in >> tag;
  DCP_CHECK(tag == "SEQLENS");
  layout.seqlens.resize(num_seqs);
  for (int64_t& len : layout.seqlens) {
    in >> len;
  }
  size_t num_chunks = 0;
  in >> tag >> num_chunks;
  DCP_CHECK(tag == "HOME");
  plan.chunk_home.resize(num_chunks);
  for (DeviceId& d : plan.chunk_home) {
    in >> d;
  }
  in >> tag;
  DCP_CHECK(tag == "STATS");
  in >> plan.stats.total_comm_bytes >> plan.stats.inter_node_comm_bytes >>
      plan.stats.max_device_comm_bytes >> plan.stats.total_flops >>
      plan.stats.max_device_flops >> plan.stats.planning_seconds >>
      plan.stats.partition_cost;
  size_t num_devices = 0;
  in >> tag >> num_devices;
  DCP_CHECK(tag == "DEVICES");
  plan.devices.resize(num_devices);
  for (DevicePlan& dev : plan.devices) {
    in >> tag;
    DCP_CHECK(tag == "DEVICE");
    for (int32_t& slots : dev.num_slots) {
      in >> slots;
    }
    size_t num_local = 0;
    size_t num_fw = 0;
    size_t num_bw = 0;
    in >> num_local >> num_fw >> num_bw;
    dev.local_chunks.resize(num_local);
    for (LocalChunk& chunk : dev.local_chunks) {
      in >> tag;
      DCP_CHECK(tag == "L");
      in >> chunk.seq >> chunk.chunk >> chunk.group >> chunk.q_slot >> chunk.kv_slot;
    }
    dev.instructions.reserve(num_fw);
    for (size_t i = 0; i < num_fw; ++i) {
      dev.instructions.push_back(ReadInstruction(in));
    }
    dev.backward_instructions.reserve(num_bw);
    for (size_t i = 0; i < num_bw; ++i) {
      dev.backward_instructions.push_back(ReadInstruction(in));
    }
  }
  return plan;
}

}  // namespace dcp
