// Numeric executor: interprets a BatchPlan on real fp32 tensors, simulating every device of
// the cluster in one process. Device instruction streams run cooperatively; transfers are
// matched (send, recv) CommLaunch pairs moving slot payloads through an in-memory wire.
// This is the correctness backend — the paper's fused-kernel executor with the GPU swapped
// out for CPU math (see DESIGN.md, substitution table).
#ifndef DCP_RUNTIME_EXECUTOR_H_
#define DCP_RUNTIME_EXECUTOR_H_

#include <unordered_map>
#include <vector>

#include "masks/mask.h"
#include "runtime/buffers.h"
#include "runtime/instructions.h"
#include "runtime/reference_attention.h"

namespace dcp {

class NumericExecutor {
 public:
  // `plan` and `masks` must outlive the executor. masks[s] is sequence s's mask.
  NumericExecutor(const BatchPlan* plan, const std::vector<SequenceMask>* masks);

  // Swaps in a new plan whose buffer geometry matches the installed one (same device
  // count and per-device slot counts — guaranteed when the plans share a PlanSignature)
  // without reallocating device buffers. Pending transfer state is discarded; the next
  // RunForward/RunBackward resets accumulators as usual.
  void Rebind(const BatchPlan* plan, const std::vector<SequenceMask>* masks);

  // Scatters per-sequence Q/K/V into device buffers according to the plan's placement.
  void LoadInputs(const std::vector<SeqTensors>& sequences);
  // Runs every device's forward instruction stream to completion.
  void RunForward();
  // Collects the attention outputs, one [H, L, D] tensor per sequence.
  std::vector<Tensor> GatherOutputs() const;

  // Backward: scatter dO, run backward streams (requires RunForward state), gather grads.
  void LoadOutputGrads(const std::vector<Tensor>& douts);
  void RunBackward();
  std::vector<SeqGrads> GatherInputGrads() const;

 private:
  struct WireMessage {
    std::vector<float> payload;
    bool sent = false;
    bool recv_launched = false;
    bool delivered = false;
    DeviceId recv_device = kInvalidDevice;
    std::vector<TransferBlock> recv_blocks;
  };

  void RunProgram(bool backward);
  // Returns false if the instruction is a CommWait that cannot complete yet.
  bool TryExecute(DeviceId device, const Instruction& instr);
  void ExecuteAttention(DeviceId device, const Instruction& instr);
  void ExecuteReduction(DeviceId device, const Instruction& instr);
  void ExecuteCopy(DeviceId device, const Instruction& instr);
  void ExecuteCommLaunch(DeviceId device, const Instruction& instr);
  bool TryCommWait(DeviceId device, const Instruction& instr);

  const BatchPlan* plan_;
  const std::vector<SequenceMask>* masks_;
  std::vector<DeviceBuffers> buffers_;
  std::unordered_map<int32_t, WireMessage> wire_;
};

}  // namespace dcp

#endif  // DCP_RUNTIME_EXECUTOR_H_
