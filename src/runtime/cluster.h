// Cluster topology and cost-model parameters.
//
// Defaults model the paper's testbed: Amazon EC2 p4de.24xlarge instances — 8 A100-80GB per
// node on NVSwitch (600 GB/s bidirectional), nodes connected by 4x100 Gbps EFA NICs. The
// discrete-event simulator prices every instruction with these parameters; all experiments
// report ratios between schedules, which is what this substitution preserves.
#ifndef DCP_RUNTIME_CLUSTER_H_
#define DCP_RUNTIME_CLUSTER_H_

#include <cstdint>

#include "common/types.h"

namespace dcp {

struct ClusterSpec {
  int num_nodes = 4;
  int devices_per_node = 8;

  // Effective attention-kernel throughput per device. A100 peak is 312 TFLOPS (bf16);
  // fused attention kernels sustain roughly half of that.
  double device_tflops = 150.0;
  // Throughput for dense (GEMM-heavy) context-independent layers.
  double dense_tflops = 220.0;

  // Per-direction point-to-point bandwidth between two devices in the same node (NVSwitch).
  double intra_node_gbps = 250.0;
  // Aggregate inter-node NIC bandwidth per node (4 x 100 Gbps EFA = 50 GB/s), shared by all
  // devices of the node.
  double node_nic_gbps = 50.0;

  double intra_latency_us = 5.0;
  double inter_latency_us = 25.0;

  // Device memory bandwidth (A100-80GB HBM2e ~2 TB/s; effective ~1.6 TB/s); prices
  // memory-bound reductions and copies.
  double hbm_gbps = 1600.0;

  // Fixed overhead charged per compute instruction (kernel launch, argument setup).
  double kernel_launch_us = 15.0;
  // Fixed overhead of posting an async P2P send/recv.
  double comm_launch_us = 8.0;
  // Extra fixed overhead per attention step; the backward pass re-reads Q/KV, writes
  // gradients and reduces across blocks, so its per-step overhead is larger (paper §7.5).
  double attn_step_overhead_us = 40.0;
  double attn_bw_step_overhead_us = 110.0;

  int num_devices() const { return num_nodes * devices_per_node; }
  NodeId NodeOf(DeviceId device) const { return device / devices_per_node; }
  bool SameNode(DeviceId a, DeviceId b) const { return NodeOf(a) == NodeOf(b); }

  // The micro-benchmark testbed (§7.1): 4 p4de nodes, 32 GPUs, all in context parallelism.
  static ClusterSpec MicroBenchTestbed();
  // The end-to-end testbed (§7.2): 8 p4de nodes, 64 GPUs, TP=4 => 16-way context
  // parallelism with 2 CP ranks per node.
  static ClusterSpec EndToEndTestbed();
};

}  // namespace dcp

#endif  // DCP_RUNTIME_CLUSTER_H_
