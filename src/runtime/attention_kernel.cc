#include "runtime/attention_kernel.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace dcp {
namespace {

// Intersection of the attended kv set for token q with [kv_begin, kv_end), as up to two
// local index ranges relative to kv_begin.
struct LocalRanges {
  int64_t b0 = 0, e0 = 0, b1 = 0, e1 = 0;
};

LocalRanges IntersectRanges(const RangePair& ranges, int64_t kv_begin, int64_t kv_end) {
  LocalRanges out;
  out.b0 = std::max(ranges.begin0, kv_begin) - kv_begin;
  out.e0 = std::min(ranges.end0, kv_end) - kv_begin;
  if (out.e0 < out.b0) {
    out.e0 = out.b0;
  }
  out.b1 = std::max(ranges.begin1, kv_begin) - kv_begin;
  out.e1 = std::min(ranges.end1, kv_end) - kv_begin;
  if (out.e1 < out.b1) {
    out.e1 = out.b1;
  }
  return out;
}

}  // namespace

void AttentionTileForward(const SequenceMask& mask, const TileArgs& args,
                          std::span<const float> q, std::span<const float> kv,
                          std::span<float> acc) {
  const int h_count = args.heads;
  const int64_t bs = args.block_size;
  const int d = args.head_dim;
  const int64_t q_len = args.q_end - args.q_begin;
  const int64_t kv_len = args.kv_end - args.kv_begin;
  DCP_CHECK(q_len > 0 && kv_len > 0);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const int64_t m_off = static_cast<int64_t>(h_count) * bs * d;
  const int64_t l_off = m_off + static_cast<int64_t>(h_count) * bs;
  const float* k_base = kv.data();
  const float* v_base = kv.data() + bs * d;

  std::vector<float> scores(static_cast<size_t>(kv_len));
  for (int h = 0; h < h_count; ++h) {
    for (int64_t t = 0; t < q_len; ++t) {
      LocalRanges lr;
      if (args.full) {
        lr.b0 = 0;
        lr.e0 = kv_len;
      } else {
        lr = IntersectRanges(mask.ranges(args.q_begin + t), args.kv_begin, args.kv_end);
        if (lr.e0 == lr.b0 && lr.e1 == lr.b1) {
          continue;  // Token fully masked in this tile.
        }
      }
      const float* q_row = q.data() + (static_cast<int64_t>(h) * bs + t) * d;
      // Scores over allowed local kv indices; track tile max.
      float tile_max = -std::numeric_limits<float>::infinity();
      auto score_range = [&](int64_t jb, int64_t je) {
        for (int64_t j = jb; j < je; ++j) {
          const float* k_row = k_base + j * d;
          float dot = 0.0f;
          for (int c = 0; c < d; ++c) {
            dot += q_row[c] * k_row[c];
          }
          const float s = dot * scale;
          scores[static_cast<size_t>(j)] = s;
          tile_max = std::max(tile_max, s);
        }
      };
      score_range(lr.b0, lr.e0);
      score_range(lr.b1, lr.e1);

      float* u_row = acc.data() + (static_cast<int64_t>(h) * bs + t) * d;
      float& m_ref = acc[static_cast<size_t>(m_off + static_cast<int64_t>(h) * bs + t)];
      float& l_ref = acc[static_cast<size_t>(l_off + static_cast<int64_t>(h) * bs + t)];
      const float m_new = std::max(m_ref, tile_max);
      const float rescale =
          std::isinf(m_ref) ? 0.0f : std::exp(m_ref - m_new);
      if (rescale != 1.0f) {
        for (int c = 0; c < d; ++c) {
          u_row[c] *= rescale;
        }
        l_ref *= rescale;
      }
      auto accumulate_range = [&](int64_t jb, int64_t je) {
        for (int64_t j = jb; j < je; ++j) {
          const float p = std::exp(scores[static_cast<size_t>(j)] - m_new);
          l_ref += p;
          const float* v_row = v_base + j * d;
          for (int c = 0; c < d; ++c) {
            u_row[c] += p * v_row[c];
          }
        }
      };
      accumulate_range(lr.b0, lr.e0);
      accumulate_range(lr.b1, lr.e1);
      m_ref = m_new;
    }
  }
}

void MergeSoftmaxAccumulators(std::span<float> dst, std::span<const float> src, int heads,
                              int64_t block_size, int head_dim, int64_t token_count) {
  const int64_t m_off = static_cast<int64_t>(heads) * block_size * head_dim;
  const int64_t l_off = m_off + static_cast<int64_t>(heads) * block_size;
  for (int h = 0; h < heads; ++h) {
    for (int64_t t = 0; t < token_count; ++t) {
      const int64_t stat_idx = static_cast<int64_t>(h) * block_size + t;
      const float m_src = src[static_cast<size_t>(m_off + stat_idx)];
      const float l_src = src[static_cast<size_t>(l_off + stat_idx)];
      if (l_src == 0.0f) {
        continue;  // Empty partial.
      }
      float& m_dst = dst[static_cast<size_t>(m_off + stat_idx)];
      float& l_dst = dst[static_cast<size_t>(l_off + stat_idx)];
      const float m_new = std::max(m_dst, m_src);
      const float scale_dst = std::isinf(m_dst) ? 0.0f : std::exp(m_dst - m_new);
      const float scale_src = std::exp(m_src - m_new);
      float* u_dst = dst.data() + stat_idx * head_dim;
      const float* u_src = src.data() + stat_idx * head_dim;
      for (int c = 0; c < head_dim; ++c) {
        u_dst[c] = u_dst[c] * scale_dst + u_src[c] * scale_src;
      }
      l_dst = l_dst * scale_dst + l_src * scale_src;
      m_dst = m_new;
    }
  }
}

void FinalizeOutput(std::span<const float> acc, std::span<float> out, int heads,
                    int64_t block_size, int head_dim, int64_t token_count) {
  const int64_t l_off = static_cast<int64_t>(heads) * block_size * head_dim +
                        static_cast<int64_t>(heads) * block_size;
  for (int h = 0; h < heads; ++h) {
    for (int64_t t = 0; t < token_count; ++t) {
      const int64_t stat_idx = static_cast<int64_t>(h) * block_size + t;
      const float l = acc[static_cast<size_t>(l_off + stat_idx)];
      const float inv = l > 0.0f ? 1.0f / l : 0.0f;
      const float* u_row = acc.data() + stat_idx * head_dim;
      float* o_row = out.data() + stat_idx * head_dim;
      for (int c = 0; c < head_dim; ++c) {
        o_row[c] = u_row[c] * inv;
      }
    }
  }
}

void ComputeDelta(std::span<const float> dout, std::span<const float> out,
                  std::span<float> delta, int heads, int64_t block_size, int head_dim,
                  int64_t token_count) {
  for (int h = 0; h < heads; ++h) {
    for (int64_t t = 0; t < token_count; ++t) {
      const int64_t row = static_cast<int64_t>(h) * block_size + t;
      const float* do_row = dout.data() + row * head_dim;
      const float* o_row = out.data() + row * head_dim;
      float sum = 0.0f;
      for (int c = 0; c < head_dim; ++c) {
        sum += do_row[c] * o_row[c];
      }
      delta[static_cast<size_t>(row)] = sum;
    }
  }
}

void AttentionTileBackward(const SequenceMask& mask, const TileArgs& args,
                           std::span<const float> q, std::span<const float> kv,
                           std::span<const float> acc_stats, std::span<const float> dout,
                           std::span<const float> delta, std::span<float> dq,
                           std::span<float> dkv) {
  const int h_count = args.heads;
  const int64_t bs = args.block_size;
  const int d = args.head_dim;
  const int64_t q_len = args.q_end - args.q_begin;
  const int64_t kv_len = args.kv_end - args.kv_begin;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const int64_t m_off = static_cast<int64_t>(h_count) * bs * d;
  const int64_t l_off = m_off + static_cast<int64_t>(h_count) * bs;
  const float* k_base = kv.data();
  const float* v_base = kv.data() + bs * d;
  float* dk_base = dkv.data();
  float* dv_base = dkv.data() + bs * d;

  for (int h = 0; h < h_count; ++h) {
    for (int64_t t = 0; t < q_len; ++t) {
      LocalRanges lr;
      if (args.full) {
        lr.b0 = 0;
        lr.e0 = kv_len;
      } else {
        lr = IntersectRanges(mask.ranges(args.q_begin + t), args.kv_begin, args.kv_end);
        if (lr.e0 == lr.b0 && lr.e1 == lr.b1) {
          continue;
        }
      }
      const int64_t stat_idx = static_cast<int64_t>(h) * bs + t;
      const float m_final = acc_stats[static_cast<size_t>(m_off + stat_idx)];
      const float l_final = acc_stats[static_cast<size_t>(l_off + stat_idx)];
      if (l_final <= 0.0f) {
        continue;
      }
      const float inv_l = 1.0f / l_final;
      const float* q_row = q.data() + stat_idx * d;
      const float* do_row = dout.data() + stat_idx * d;
      const float delta_t = delta[static_cast<size_t>(stat_idx)];
      float* dq_row = dq.data() + stat_idx * d;

      auto backward_range = [&](int64_t jb, int64_t je) {
        for (int64_t j = jb; j < je; ++j) {
          const float* k_row = k_base + j * d;
          const float* v_row = v_base + j * d;
          float dot = 0.0f;
          float dp = 0.0f;
          for (int c = 0; c < d; ++c) {
            dot += q_row[c] * k_row[c];
            dp += do_row[c] * v_row[c];
          }
          const float p = std::exp(dot * scale - m_final) * inv_l;
          const float ds = p * (dp - delta_t) * scale;
          float* dk_row = dk_base + j * d;
          float* dv_row = dv_base + j * d;
          for (int c = 0; c < d; ++c) {
            dq_row[c] += ds * k_row[c];
            dk_row[c] += ds * q_row[c];
            dv_row[c] += p * do_row[c];
          }
        }
      };
      backward_range(lr.b0, lr.e0);
      backward_range(lr.b1, lr.e1);
    }
  }
}

}  // namespace dcp
