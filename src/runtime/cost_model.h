// Converts FLOPs and bytes into seconds under a ClusterSpec. Shared by the discrete-event
// simulator and the end-to-end iteration model.
#ifndef DCP_RUNTIME_COST_MODEL_H_
#define DCP_RUNTIME_COST_MODEL_H_

#include "common/types.h"
#include "runtime/cluster.h"

namespace dcp {

// FLOPs of one attended (query, key) pair per head: QK^T and PV are 2*D MACs = 4*D flops.
inline Flops AttentionPairFlops(int head_dim) { return 4.0 * head_dim; }
// Backward recomputes the score matrix and produces dQ/dK/dV: ~2.5x the forward matmuls.
inline constexpr double kBackwardFlopsFactor = 2.5;

class CostModel {
 public:
  explicit CostModel(const ClusterSpec& cluster) : cluster_(cluster) {}

  const ClusterSpec& cluster() const { return cluster_; }

  // Pure compute time for an attention tile batch (no fixed overheads).
  double AttentionSeconds(Flops flops) const {
    return flops / (cluster_.device_tflops * 1e12);
  }
  double DenseSeconds(Flops flops) const { return flops / (cluster_.dense_tflops * 1e12); }

  // Point-to-point message time, excluding queueing (the simulator adds contention).
  double TransferSeconds(Bytes bytes, DeviceId src, DeviceId dst) const;
  // Bandwidth of the channel between src and dst in bytes/second.
  double ChannelBandwidth(DeviceId src, DeviceId dst) const;
  double ChannelLatencySeconds(DeviceId src, DeviceId dst) const;

  double KernelLaunchSeconds() const { return cluster_.kernel_launch_us * 1e-6; }
  double AttnStepOverheadSeconds(bool backward) const {
    return (backward ? cluster_.attn_bw_step_overhead_us : cluster_.attn_step_overhead_us) *
           1e-6;
  }

 private:
  ClusterSpec cluster_;
};

}  // namespace dcp

#endif  // DCP_RUNTIME_COST_MODEL_H_
