// The DCP instruction set (paper §5): five instruction kinds operating on block buffers.
// Execution plans built from these instructions are consumed by both the numeric executor
// (real tensor math) and the discrete-event simulator (timing) — the same plan, two
// backends.
#ifndef DCP_RUNTIME_INSTRUCTIONS_H_
#define DCP_RUNTIME_INSTRUCTIONS_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/types.h"
#include "masks/mask_spec.h"
#include "runtime/layout.h"

namespace dcp {

// Buffer kinds a block reference can point into. Forward uses Q/KV/O/Acc; backward
// additionally uses the gradient and stats buffers.
enum class BufKind : uint8_t {
  kQ = 0,     // Query blocks (local + received remote).
  kKV,        // Key/value blocks (local + received remote).
  kO,         // Final normalized outputs (local chunks only).
  kAcc,       // Online-softmax accumulators: unnormalized O plus (m, l) stats.
  kDO,        // Incoming output gradients.
  kDQ,        // Query-gradient accumulators.
  kDKV,       // Key/value-gradient accumulators.
  kDelta,     // Per-(head, token) rowsum(dO * O), needed by the backward kernel.
  kNumKinds,
};
inline constexpr int kNumBufKinds = static_cast<int>(BufKind::kNumKinds);
std::string BufKindName(BufKind kind);

struct BlockRef {
  BufKind kind = BufKind::kQ;
  int32_t slot = 0;

  bool operator==(const BlockRef&) const = default;
};

enum class InstrKind : uint8_t {
  kBlockwiseAttention = 0,
  kBlockwiseReduction,
  kBlockwiseCopy,
  kCommLaunch,
  kCommWait,
};
std::string InstrKindName(InstrKind kind);

// One attention tile: Q block x KV block -> accumulator, with the mask evaluated through
// the sequence's range pairs. `backward` items additionally read dO/delta and accumulate
// into dQ/dKV accumulators.
struct AttentionWorkItem {
  BlockRef q;
  BlockRef kv;
  BlockRef acc;  // Forward: kAcc accumulator of the q chunk (on this device).
  SeqId seq = 0;
  GroupId group = 0;
  int64_t q_begin = 0;  // Token ranges in sequence coordinates.
  int64_t q_end = 0;
  int64_t kv_begin = 0;
  int64_t kv_end = 0;
  bool full = false;  // Dense tile: kernel may skip mask checks.

  // Backward-only operands (unused when the instruction's `backward` flag is false).
  BlockRef dout;   // kDO block of the q chunk.
  BlockRef delta;  // kDelta block of the q chunk.
  BlockRef dq;     // kDQ accumulator of the q chunk.
  BlockRef dkv;    // kDKV accumulator of the kv chunk.
};

enum class ReduceMode : uint8_t {
  kMergeSoftmax = 0,  // Merge a partial (U, m, l) accumulator into another.
  kFinalize,          // O = U / l from an accumulator into a kO block.
  kSum,               // Elementwise sum (gradient partials).
  kComputeDelta,      // delta = rowsum(dO * O) for one chunk.
};
std::string ReduceModeName(ReduceMode mode);

struct ReduceItem {
  ReduceMode mode = ReduceMode::kMergeSoftmax;
  BlockRef dst;
  BlockRef src0;
  BlockRef src1;          // kComputeDelta uses src0=dO, src1=O.
  int64_t token_count = 0;  // Valid tokens in the (possibly ragged) chunk.
};

struct CopyItem {
  BlockRef dst;
  BlockRef src;
  int64_t token_count = 0;
};

struct TransferBlock {
  BlockRef ref;
  Bytes bytes = 0;          // Wire size (training dtype).
  int64_t token_count = 0;  // Valid tokens, for numeric payload sizing.
};

struct Instruction {
  InstrKind kind = InstrKind::kBlockwiseAttention;

  // kBlockwiseAttention.
  std::vector<AttentionWorkItem> attn_items;
  bool backward = false;

  // kBlockwiseReduction.
  std::vector<ReduceItem> reduce_items;

  // kBlockwiseCopy.
  std::vector<CopyItem> copy_items;

  // kCommLaunch / kCommWait. A transfer is a matched (send, recv) CommLaunch pair sharing
  // `transfer_id`; CommWait blocks on that id.
  int32_t transfer_id = -1;
  DeviceId peer = kInvalidDevice;
  bool is_send = false;
  std::vector<TransferBlock> blocks;

  // Cost annotations for the simulator (numeric executor ignores them).
  Flops flops = 0.0;
  Bytes comm_bytes = 0;
  Bytes mem_bytes = 0;  // HBM traffic of reductions/copies (memory-bound ops).
  // Extra fixed host-side cost in seconds (e.g. TransformerEngine's per-step varlen
  // argument construction); added to the launch overhead by the simulator.
  double host_overhead = 0.0;
};

// Where a locally-owned data chunk lives in the device buffers, and which tokens it holds.
// Used to scatter model inputs into buffers and gather outputs back.
struct LocalChunk {
  SeqId seq = 0;
  ChunkId chunk = 0;
  GroupId group = 0;
  int32_t q_slot = 0;    // kQ (and same slot index in kO / kDQ / kDO / kDelta / kAcc).
  int32_t kv_slot = 0;   // kKV (and kDKV).
};

struct DevicePlan {
  std::vector<Instruction> instructions;
  std::vector<Instruction> backward_instructions;
  std::array<int32_t, kNumBufKinds> num_slots = {};
  std::vector<LocalChunk> local_chunks;
};

// Summary statistics the planner computes for a plan (used by benches and tests).
struct PlanStats {
  Bytes total_comm_bytes = 0;       // Forward, sum over transfers.
  Bytes inter_node_comm_bytes = 0;  // Forward, transfers crossing node boundaries.
  Bytes max_device_comm_bytes = 0;  // Max per-device send+recv volume (forward).
  Flops total_flops = 0.0;
  Flops max_device_flops = 0.0;
  // Memory balance (paper: data-block balance implies activation-memory balance): bytes of
  // locally-owned data blocks per device, max and min across devices.
  Bytes max_device_owned_bytes = 0;
  Bytes min_device_owned_bytes = 0;
  double planning_seconds = 0.0;
  double partition_cost = 0.0;  // Connectivity objective value at device level.
};

struct BatchPlan {
  BatchLayout layout;
  std::vector<DevicePlan> devices;
  std::vector<DeviceId> chunk_home;  // Per global chunk id: owning device.
  PlanStats stats;

  int num_devices() const { return static_cast<int>(devices.size()); }
};

// Human-readable dump (debugging aid, also exercised in tests).
std::string PlanToString(const BatchPlan& plan, int max_instructions_per_device = 16);

// Compact line-based serialization round-trip (paper §3.1: plans are serialized by the
// planner and shipped to devices). Deserialization validates every section tag, every
// stream read, and enum ranges, and rejects truncated input and trailing garbage:
// malformed bytes come back as a recoverable DATA_LOSS Status, never an abort and never
// a silently zero-filled plan.
std::string SerializePlan(const BatchPlan& plan);
StatusOr<BatchPlan> DeserializePlan(const std::string& text);
// Shim for internal callers holding text they themselves produced (tests, debugging):
// DCP_CHECK-aborts on malformed input instead of returning a Status.
BatchPlan DeserializePlanOrDie(const std::string& text);

// Fixed-width little-endian binary encoding of the same plan, used by PlanStore records
// and (per the ROADMAP) the future sharded planning service's wire format. Roughly 4x
// smaller than the text form and exact for doubles (bit_cast, no decimal round-trip).
// The decoder is bounds-checked end to end: item counts are validated against the
// remaining payload before any allocation, enums are range-checked, and trailing bytes
// are rejected.
std::string SerializePlanBinary(const BatchPlan& plan);
StatusOr<BatchPlan> DeserializePlanBinary(std::string_view bytes);

// --- Planning-service wire messages -----------------------------------------------
//
// Request/response bodies for dcp::PlanService (src/service/), encoded with the same
// varint/zigzag ByteWriter/ByteReader machinery as the binary plan codec above, and
// validated with the same rigor: every count is bounded against the remaining payload,
// enums are range-checked, and trailing bytes are rejected — a malformed message is a
// recoverable DATA_LOSS Status, never an abort. The compiled plan itself travels inside
// PlanServiceResponse as PlanStore record bytes (core/plan_store.h documents that
// layout), so the service's wire format is exactly the persistence format.

// Where the service found the plan it returned. The client adds a fourth tier (its own
// LRU) that never reaches the wire.
enum class PlanServeSource : uint8_t {
  kPlanned = 0,        // The tenant engine ran the full planner.
  kMemoryCache,        // Served from the tenant engine's in-memory LRU.
  kStoreCache,         // Served from the tenant engine's persistent plan store.
  kClientCache,        // Client-side only: served from the PlanClient LRU, no RPC.
  kReplicaCache,       // Served from records another replica shipped via anti-entropy.
};
std::string PlanServeSourceName(PlanServeSource source);

struct PlanServiceRequest {
  std::string tenant;
  std::vector<int64_t> seqlens;
  MaskSpec mask_spec;
  // Explicit block size, or 0 to plan under the tenant's configured policy (fixed
  // engine block size, or per-signature auto-tune when the tenant enables it).
  int64_t block_size = 0;
  // Remaining time budget in milliseconds, or 0 for no deadline. Relative on purpose:
  // client and server clocks need not agree. The server timestamps arrival and sheds
  // the request (DEADLINE_EXCEEDED, no planning) once the budget has already expired —
  // planning dead work would only steal workers from live requests.
  int64_t deadline_ms = 0;
  // Trace id for per-request phase tracing (v3 field, 0 = untraced). Written after
  // every v2 field so a v2 body is exactly a v3 body minus this trailer, and a v3
  // reader accepts both.
  uint64_t trace_id = 0;
};

struct PlanServiceResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;  // Error detail when code != kOk.
  PlanServeSource source = PlanServeSource::kPlanned;
  // The served plan's canonical signature (PlanSignature lanes) and its PlanStore
  // record bytes (magic + version + signature + sections + CRC32); both empty/zero on
  // error. The record's embedded signature is cross-checked against these lanes by the
  // client before the plan is trusted.
  uint64_t signature_lo = 0;
  uint64_t signature_hi = 0;
  std::string record;
};

// One tenant's cache counters as reported by the stats RPC (mirrors PlanCacheStats,
// which lives in core/ and is re-flattened here so the wire layer stays below it).
struct PlanServiceTenantStats {
  std::string tenant;
  int64_t requests = 0;       // Plan RPCs the service routed to this tenant.
  int64_t plan_errors = 0;    // Plan RPCs that returned a non-OK status.
  int64_t shed_quota = 0;     // Rejected over the tenant's in-flight admission quota.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_entries = 0;
  int64_t store_hits = 0;
  int64_t store_writes = 0;
  int64_t store_corrupt_skipped = 0;
};

struct PlanServiceStatsRequest {
  std::string tenant;  // Empty: report every tenant.
};

struct PlanServiceStatsResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  // Service-wide counters.
  int64_t connections_accepted = 0;
  int64_t requests_received = 0;
  int64_t responses_sent = 0;
  int64_t rejected_overload = 0;
  int64_t malformed_frames = 0;
  int64_t shed_deadline = 0;          // Requests dropped with an already-dead deadline.
  int64_t sync_records_shipped = 0;   // Records this replica sent to gossip peers.
  int64_t sync_records_adopted = 0;   // Peer records validated and adopted locally.
  std::vector<PlanServiceTenantStats> tenants;
};

// Anti-entropy exchange between replicas: the caller lists the plan signatures it
// already holds for one tenant, the callee replies with full PlanStore records (the
// wire format IS the persistence format) for a bounded number of signatures the caller
// lacks. Signatures travel as raw (lo, hi) lanes so this layer stays below core/.
struct PlanSyncRequest {
  std::string tenant;
  std::vector<std::pair<uint64_t, uint64_t>> have;
};

struct PlanSyncResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<std::string> records;  // Validated by the receiver before adoption.
};

// Live metrics scrape (v3): the caller optionally narrows the families by name
// prefix; the callee replies with its process-global registry rendered in Prometheus
// text exposition format. Text on purpose — the scrape format is the stable contract,
// so the wire layer needs no per-instrument schema.
struct PlanServiceMetricsRequest {
  std::string name_prefix;  // Empty: every family.
};

struct PlanServiceMetricsResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string text;  // Prometheus text exposition.
};

std::string SerializePlanServiceMetricsRequest(const PlanServiceMetricsRequest& request);
StatusOr<PlanServiceMetricsRequest> DeserializePlanServiceMetricsRequest(
    std::string_view bytes);
std::string SerializePlanServiceMetricsResponse(
    const PlanServiceMetricsResponse& response);
StatusOr<PlanServiceMetricsResponse> DeserializePlanServiceMetricsResponse(
    std::string_view bytes);

std::string SerializePlanSyncRequest(const PlanSyncRequest& request);
StatusOr<PlanSyncRequest> DeserializePlanSyncRequest(std::string_view bytes);
std::string SerializePlanSyncResponse(const PlanSyncResponse& response);
StatusOr<PlanSyncResponse> DeserializePlanSyncResponse(std::string_view bytes);

std::string SerializePlanServiceRequest(const PlanServiceRequest& request);
StatusOr<PlanServiceRequest> DeserializePlanServiceRequest(std::string_view bytes);
std::string SerializePlanServiceResponse(const PlanServiceResponse& response);
StatusOr<PlanServiceResponse> DeserializePlanServiceResponse(std::string_view bytes);

// Zero-copy view of a decoded plan request: `tenant` aliases the wire payload and
// `seqlens` lives in a caller-supplied arena, so decoding costs exactly one arena
// allocation (the seqlens array — its count is on the wire before its elements, so the
// array is sized exactly) instead of two heap strings plus a vector per request. The
// payload bytes and the arena must both outlive the view.
struct PlanServiceRequestView {
  std::string_view tenant;
  std::span<const int64_t> seqlens;
  MaskSpec mask_spec;
  int64_t block_size = 0;
  int64_t deadline_ms = 0;
  uint64_t trace_id = 0;  // v3 field; 0 when absent (v2 body) or untraced.
};

// Wire-compatible with DeserializePlanServiceRequest (same validation, same errors);
// only the ownership of the decoded fields differs.
StatusOr<PlanServiceRequestView> DeserializePlanServiceRequestView(
    std::string_view bytes, Arena* arena);

// Serializes every response field except the record bytes themselves, ending with the
// record-length prefix for a record of `record_size` bytes: head ++ record_bytes is
// byte-identical to SerializePlanServiceResponse on the same response carrying those
// bytes. The server writev's [frame header + this head][shared record][crc] so a cached
// record is framed without copying. `response.record` must be empty.
std::string SerializePlanServiceResponseHead(const PlanServiceResponse& response,
                                             size_t record_size);
std::string SerializePlanServiceStatsRequest(const PlanServiceStatsRequest& request);
StatusOr<PlanServiceStatsRequest> DeserializePlanServiceStatsRequest(
    std::string_view bytes);
std::string SerializePlanServiceStatsResponse(const PlanServiceStatsResponse& response);
StatusOr<PlanServiceStatsResponse> DeserializePlanServiceStatsResponse(
    std::string_view bytes);

}  // namespace dcp

#endif  // DCP_RUNTIME_INSTRUCTIONS_H_
