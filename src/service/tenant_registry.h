// The planning service's shard-per-tenant engine pool: each tenant (a training job, a
// team, an experiment) registers its own ClusterSpec + EngineOptions and gets a private
// dcp::Engine — its own planner knobs, plan cache, and optional persistent plan store.
// Tenants therefore never observe each other's plans: a signature computed under one
// tenant's options cannot collide with another's unless the configurations are truly
// identical, and even then the engines (and stores) are separate objects.
#ifndef DCP_SERVICE_TENANT_REGISTRY_H_
#define DCP_SERVICE_TENANT_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "runtime/cluster.h"

namespace dcp {

struct TenantConfig {
  std::string name;
  ClusterSpec cluster;
  EngineOptions options;
};

class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Constructs the tenant's Engine eagerly (warm-loading its plan store, if any), so
  // the first request pays no setup. Rejects empty and duplicate names.
  Status Register(const TenantConfig& config);

  // The tenant's engine, or nullptr when unknown. Engines are shared_ptr so in-flight
  // requests survive concurrent registry mutation.
  std::shared_ptr<Engine> Find(const std::string& name) const;

  std::vector<std::string> Names() const;  // Sorted, for deterministic stats output.

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Engine>> tenants_
      DCP_GUARDED_BY(mu_);
};

}  // namespace dcp

#endif  // DCP_SERVICE_TENANT_REGISTRY_H_
