#include "service/replica_set.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace dcp {
namespace {

int64_t NowMs() { return metrics::MonotonicMillis(); }

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashAddress(const ServiceAddress& address) {
  uint64_t h = 0x646370722d616464ULL;  // "dcpr-add"
  for (char c : address.ToString()) {
    h = SplitMix64(h ^ static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  return h;
}

constexpr size_t kLatencyRingSize = 64;
// Below this many samples the p99 estimate is noise; hedge at the configured max.
constexpr size_t kMinLatencySamples = 8;

// Nearest-rank quantile over a scratch copy of the latency ring (reorders it).
int64_t QuantileMs(std::vector<int64_t>& samples, double q) {
  if (samples.empty()) {
    return 0;
  }
  const size_t rank = std::min(
      samples.size() - 1, static_cast<size_t>(static_cast<double>(samples.size()) * q));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

bool ReplicaCooldown::Available(int64_t now_ms) const {
  return consecutive_failures_ == 0 || now_ms >= next_probe_ms_;
}

void ReplicaCooldown::RecordFailure(int64_t now_ms) {
  ++consecutive_failures_;
  if (consecutive_failures_ == 1) {
    backoff_ms_ = std::max(1, policy_.initial_ms);
  } else {
    const double next = static_cast<double>(backoff_ms_) *
                        std::max(1.0, policy_.multiplier);
    backoff_ms_ = std::min<int64_t>(static_cast<int64_t>(next),
                                    std::max(1, policy_.max_ms));
  }
  const int64_t quarter = std::max<int64_t>(1, backoff_ms_ / 4);
  const uint64_t draw =
      SplitMix64(policy_.jitter_seed ^ salt_ ^
                 static_cast<uint64_t>(consecutive_failures_)) %
      static_cast<uint64_t>(2 * quarter + 1);
  next_probe_ms_ = now_ms + backoff_ms_ - quarter + static_cast<int64_t>(draw);
}

void ReplicaCooldown::RecordSuccess() {
  consecutive_failures_ = 0;
  backoff_ms_ = 0;
  next_probe_ms_ = 0;
}

// One logical request's shared state: the main thread and every attempt thread it
// launched rendezvous here. Owned by shared_ptr so a slow loser attempt can finish
// after the main thread has already returned the winner.
struct ReplicaSet::HedgedCall {
  std::vector<int64_t> seqlens;
  MaskSpec mask_spec;
  int64_t block_size = 0;

  Mutex mu;
  CondVar cv;
  int launched DCP_GUARDED_BY(mu) = 0;
  int finished DCP_GUARDED_BY(mu) = 0;
  bool done DCP_GUARDED_BY(mu) = false;
  PlanHandle result DCP_GUARDED_BY(mu);  // Set by the first successful attempt.
  bool winner_was_hedge DCP_GUARDED_BY(mu) = false;
  // Non-retryable server rejection: stop everything.
  Status fatal DCP_GUARDED_BY(mu) = Status::Ok();
  // Most recent transport-level failure.
  Status last_error DCP_GUARDED_BY(mu) = Status::Ok();
};

// Count of attempt threads still running, shared so the last finisher may outlive the
// ReplicaSet object itself (the destructor waits for zero before tearing down, and the
// shared_ptr keeps this block alive regardless of destruction order).
struct ReplicaSet::Outstanding {
  Mutex mu;
  CondVar cv;
  int count DCP_GUARDED_BY(mu) = 0;
};

ReplicaSet::ReplicaSet(std::vector<ServiceAddress> addresses,
                       ReplicaSetOptions options)
    : options_(std::move(options)), outstanding_(std::make_shared<Outstanding>()) {
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.planner_threads));
  metrics_ = metrics::Registry::NewAttached(
      {{"tenant", options_.tenant}});
  const auto counter = [&](const char* name, const char* help) {
    return metrics_->GetCounter(name, {}, help);
  };
  counters_.requests = counter("dcp_replica_set_requests_total",
                               "Logical plan requests issued to the replica set.");
  counters_.cache_hits = counter("dcp_replica_set_cache_hits_total",
                                 "Requests served from the set's LRU without an RPC.");
  counters_.rpcs_sent = counter("dcp_replica_set_rpcs_sent_total",
                                "Attempts launched across all replicas.");
  counters_.failovers = counter("dcp_replica_set_failovers_total",
                                "Launches forced by a failed prior attempt.");
  counters_.hedges_sent = counter("dcp_replica_set_hedges_sent_total",
                                  "Hedge attempts fired after the p99 delay.");
  counters_.hedge_wins = counter("dcp_replica_set_hedge_wins_total",
                                 "Requests whose winning response came from a hedge.");
  counters_.hedge_waste = counter(
      "dcp_replica_set_hedge_waste_total",
      "Hedge attempts that finished without winning their request.");
  counters_.cooldowns_entered = counter("dcp_replica_set_cooldowns_entered_total",
                                        "Replica transitions into cooldown.");
  counters_.local_fallbacks = counter(
      "dcp_replica_set_local_fallbacks_total",
      "Requests planned by the in-process fallback engine.");
  replicas_.reserve(addresses.size());
  for (ServiceAddress& address : addresses) {
    auto replica = std::make_shared<Replica>();
    replica->address = std::move(address);
    replica->addr_hash = HashAddress(replica->address);
    replica->cooldown = ReplicaCooldown(options_.cooldown, replica->addr_hash);
    replica->rpc_latency_us = metrics_->GetHistogram(
        "dcp_replica_rpc_latency_us", {{"replica", replica->address.ToString()}},
        "Successful plan RPC latency per replica, microseconds.");
    replicas_.push_back(std::move(replica));
  }
}

StatusOr<std::unique_ptr<ReplicaSet>> ReplicaSet::Create(
    std::vector<ServiceAddress> addresses, ReplicaSetOptions options) {
  if (addresses.empty()) {
    return Status::InvalidArgument("a ReplicaSet needs at least one replica address");
  }
  if (options.hedge_min_delay_ms < 0 ||
      options.hedge_max_delay_ms < options.hedge_min_delay_ms) {
    return Status::InvalidArgument("hedge delay bounds must satisfy 0 <= min <= max");
  }
  if (options.hedge_budget_fraction < 0.0 || options.hedge_budget_burst < 0) {
    return Status::InvalidArgument("hedge budget must be non-negative");
  }
  return std::unique_ptr<ReplicaSet>(
      new ReplicaSet(std::move(addresses), std::move(options)));
}

ReplicaSet::~ReplicaSet() {
  // Wait out loser attempts: they hold shared_ptrs to replicas and to the call state,
  // but they also bump this set's counters, so none may run past this point. Each is
  // bounded by the connect/io timeouts, so this terminates.
  MutexLock lock(outstanding_->mu);
  while (outstanding_->count != 0) {
    outstanding_->cv.Wait(outstanding_->mu);
  }
}

std::vector<size_t> ReplicaSet::RouteOrder(const std::vector<int64_t>& seqlens,
                                           const MaskSpec& mask_spec,
                                           int64_t block_size) const {
  const PlanSignature key =
      PlanRequestCacheKey(options_.tenant, seqlens, mask_spec, block_size);
  // Rendezvous hashing: weight(request, replica) = mix(key, addr_hash); sort replicas
  // by weight. Every client computes the same order with no shared state, and removing
  // a replica only reroutes the requests that had ranked it first.
  std::vector<std::pair<uint64_t, size_t>> weighted;
  weighted.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const uint64_t weight =
        SplitMix64(key.lo ^ SplitMix64(key.hi ^ replicas_[i]->addr_hash));
    weighted.emplace_back(weight, i);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const std::pair<uint64_t, size_t>& a,
               const std::pair<uint64_t, size_t>& b) {
              return a.first > b.first || (a.first == b.first && a.second < b.second);
            });
  std::vector<size_t> order;
  order.reserve(weighted.size());
  for (const auto& entry : weighted) {
    order.push_back(entry.second);
  }
  return order;
}

int64_t ReplicaSet::HedgeDelayMs(const Replica& replica) const {
  std::vector<int64_t> samples;
  {
    MutexLock lock(replica.mu);
    samples = replica.latencies_ms;
  }
  if (samples.size() < kMinLatencySamples) {
    return options_.hedge_max_delay_ms;
  }
  const int64_t p99 = QuantileMs(samples, 0.99);
  return std::max<int64_t>(options_.hedge_min_delay_ms,
                           std::min<int64_t>(options_.hedge_max_delay_ms, p99));
}

bool ReplicaSet::HedgeBudgetAllows() {
  // Counter reads are independent relaxed loads; a hedge slipping in on a stale
  // read overshoots the budget by at most one, which the burst term already
  // tolerates.
  const double allowance =
      static_cast<double>(options_.hedge_budget_burst) +
      options_.hedge_budget_fraction *
          static_cast<double>(counters_.requests->value());
  return static_cast<double>(counters_.hedges_sent->value()) < allowance;
}

StatusOr<PlanHandle> ReplicaSet::AttemptOnReplica(Replica& replica,
                                                  const std::vector<int64_t>& seqlens,
                                                  const MaskSpec& mask_spec,
                                                  int64_t block_size) {
  const int64_t started_us = metrics::MonotonicMicros();
  // Lazy connect OUTSIDE the replica lock: PlanClient's constructor resolves metrics
  // instruments (the Registry mutex is a leaf, never taken under Replica::mu) and the
  // TCP connect can block for connect_timeout_ms — neither belongs under the lock
  // health snapshots take. Two attempts may race to connect; the loser's socket is
  // discarded after the lock is released.
  PlanClient* client = nullptr;
  {
    MutexLock lock(replica.mu);
    ++replica.rpcs;
    client = replica.client.get();
  }
  if (client == nullptr) {
    PlanClientOptions client_options;
    client_options.tenant = options_.tenant;
    client_options.cache_capacity = 0;  // The set's LRU is the only cache tier here.
    client_options.planner_threads = 1;
    client_options.connect_timeout_ms = options_.connect_timeout_ms;
    client_options.io_timeout_ms = options_.request_timeout_ms;
    client_options.deadline_ms = options_.request_timeout_ms;
    client_options.retry = options_.retry;
    StatusOr<std::unique_ptr<PlanClient>> connected =
        PlanClient::Connect(replica.address, std::move(client_options));
    if (!connected.ok()) {
      MutexLock lock(replica.mu);
      ++replica.failures;
      const bool entering = replica.cooldown.consecutive_failures() == 0;
      replica.cooldown.RecordFailure(NowMs());
      if (entering) {
        counters_.cooldowns_entered->Increment();
      }
      return connected.status();
    }
    std::unique_ptr<PlanClient> fresh = std::move(connected).value();
    {
      MutexLock lock(replica.mu);
      if (replica.client == nullptr) {
        replica.client = std::move(fresh);
      }
      client = replica.client.get();
    }
    // A lost race destroys `fresh` here, outside the lock (~PlanClient closes a
    // socket and drops its child registry).
  }

  StatusOr<PlanHandle> result =
      client->PlanWithBlockSize(seqlens, mask_spec, block_size);
  const int64_t elapsed_us = metrics::MonotonicMicros() - started_us;
  const int64_t elapsed_ms = elapsed_us / 1000;
  MutexLock lock(replica.mu);
  if (result.ok()) {
    replica.cooldown.RecordSuccess();
    replica.rpc_latency_us->Record(elapsed_us);
    if (replica.latencies_ms.size() < kLatencyRingSize) {
      replica.latencies_ms.push_back(elapsed_ms);
    } else {
      replica.latencies_ms[replica.latency_next] = elapsed_ms;
      replica.latency_next = (replica.latency_next + 1) % kLatencyRingSize;
    }
  } else if (IsRetryableStatus(result.status())) {
    // Transport-level: the replica (or the path to it) is sick — cool it down. An
    // application rejection deliberately skips this: the replica answered correctly.
    ++replica.failures;
    const bool entering = replica.cooldown.consecutive_failures() == 0;
    replica.cooldown.RecordFailure(NowMs());
    if (entering) {
      counters_.cooldowns_entered->Increment();
    }
  }
  return result;
}

void ReplicaSet::LaunchAttempt(const std::shared_ptr<HedgedCall>& call,
                               const std::shared_ptr<Replica>& replica,
                               bool is_hedge) {
  counters_.rpcs_sent->Increment();
  {
    MutexLock lock(outstanding_->mu);
    ++outstanding_->count;
  }
  std::thread([this, call, replica, is_hedge, outstanding = outstanding_] {
    StatusOr<PlanHandle> result = AttemptOnReplica(
        *replica, call->seqlens, call->mask_spec, call->block_size);
    bool won = false;
    {
      MutexLock lock(call->mu);
      ++call->finished;
      if (result.ok()) {
        if (!call->done) {
          call->done = true;
          call->result = std::move(result).value();
          call->winner_was_hedge = is_hedge;
          won = true;
        }
      } else if (!IsRetryableStatus(result.status())) {
        call->fatal = result.status();
      } else {
        call->last_error = result.status();
      }
      call->cv.NotifyAll();
    }
    if (is_hedge && !won) {
      // The hedge lost its race (or failed outright): pure extra load. `this` is
      // still valid — the destructor blocks on `outstanding` below.
      counters_.hedge_waste->Increment();
    }
    // Past this point only `outstanding` (shared_ptr) is touched: the set's destructor
    // may run as soon as count hits zero.
    MutexLock lock(outstanding->mu);
    --outstanding->count;
    outstanding->cv.NotifyAll();
  }).detach();
}

StatusOr<PlanHandle> ReplicaSet::LocalFallbackPlan(
    const std::vector<int64_t>& seqlens, const MaskSpec& mask_spec,
    int64_t block_size) {
  MutexLock lock(fallback_mu_);
  if (fallback_engine_ == nullptr) {
    fallback_engine_ = std::make_unique<Engine>(options_.fallback_cluster,
                                                options_.fallback_options);
  }
  counters_.local_fallbacks->Increment();
  // Fallback planning is deliberately serialized under fallback_mu_: the embedded
  // Engine's internal locks (tune/shard/store/pool) nest strictly under it and no
  // path acquires fallback_mu_ under any of them.
  // dcp-analyze: allow(lock-order): cross-class nesting documented above.
  StatusOr<Engine::PlannedOutcome> planned = fallback_engine_->PlanDetailed(
      seqlens, mask_spec, block_size);
  if (!planned.ok()) {
    return planned.status();
  }
  return std::move(planned).value().handle;
}

StatusOr<PlanHandle> ReplicaSet::PlanWithBlockSize(
    const std::vector<int64_t>& seqlens, const MaskSpec& mask_spec,
    int64_t block_size) {
  counters_.requests->Increment();
  const PlanSignature key =
      PlanRequestCacheKey(options_.tenant, seqlens, mask_spec, block_size);
  if (PlanHandle cached = CacheLookup(key)) {
    counters_.cache_hits->Increment();
    return cached;
  }

  const std::vector<size_t> order = RouteOrder(seqlens, mask_spec, block_size);
  const int64_t now = NowMs();
  std::vector<size_t> live;
  for (size_t index : order) {
    bool available;
    {
      MutexLock lock(replicas_[index]->mu);
      available = replicas_[index]->cooldown.Available(now);
    }
    if (available) {
      live.push_back(index);
    }
  }
  if (live.empty()) {
    // Everything is cooling: probe the whole fleet anyway rather than refusing — a
    // request in hand is the cheapest health probe there is.
    live = order;
  }

  auto call = std::make_shared<HedgedCall>();
  call->seqlens = seqlens;
  call->mask_spec = mask_spec;
  call->block_size = block_size;

  const int64_t hedge_delay = HedgeDelayMs(*replicas_[live[0]]);
  size_t cursor = 0;
  {
    MutexLock lock(call->mu);
    ++call->launched;
    // Hedging bookkeeping: LaunchAttempt bumps stats_mu_/outstanding_->mu in
    // their own scopes, and neither is ever held when a HedgedCall::mu is
    // acquired, so the nesting cannot invert.
    // dcp-analyze: allow(lock-order): cross-class nesting documented above.
    LaunchAttempt(call, replicas_[live[cursor]], /*is_hedge=*/false);
    ++cursor;
    // "Resolved" below means: a win, a fatal rejection, or every launched attempt has
    // reported back. Written as inline wait loops rather than a predicate lambda —
    // the thread-safety analysis cannot carry the held-lock fact into a lambda body.
    //
    // Hedge window: give the routed replica its p99 budget, then (once, budget
    // permitting) race the next replica in hash order.
    if (options_.hedging && cursor < live.size()) {
      const int64_t deadline_ms = metrics::MonotonicMillis() + hedge_delay;
      while (!call->done && call->fatal.ok() && call->finished != call->launched) {
        const int64_t remaining_ms = deadline_ms - metrics::MonotonicMillis();
        if (remaining_ms <= 0) {
          break;
        }
        call->cv.WaitFor(call->mu, std::chrono::milliseconds(remaining_ms));
      }
      const bool resolved =
          call->done || !call->fatal.ok() || call->finished == call->launched;
      if (!resolved && HedgeBudgetAllows()) {
        counters_.hedges_sent->Increment();
        ++call->launched;
        LaunchAttempt(call, replicas_[live[cursor]], /*is_hedge=*/true);
        ++cursor;
      }
    }
    // Failover loop: every time all launched attempts have failed, try the next
    // replica in hash order until a win, a fatal rejection, or fleet exhaustion.
    while (true) {
      while (!call->done && call->fatal.ok() && call->finished != call->launched) {
        call->cv.Wait(call->mu);
      }
      if (call->done || !call->fatal.ok()) {
        break;
      }
      if (cursor >= live.size()) {
        break;
      }
      counters_.failovers->Increment();
      ++call->launched;
      LaunchAttempt(call, replicas_[live[cursor]], /*is_hedge=*/false);
      ++cursor;
    }
    if (call->done) {
      if (call->winner_was_hedge) {
        counters_.hedge_wins->Increment();
      }
      PlanHandle handle = call->result;
      lock.Unlock();
      CacheInsert(key, handle);
      return handle;
    }
    if (!call->fatal.ok()) {
      return call->fatal;
    }
    if (!call->last_error.ok() && !options_.local_fallback) {
      return call->last_error;
    }
  }
  if (options_.local_fallback) {
    return LocalFallbackPlan(seqlens, mask_spec, block_size);
  }
  return Status::Unavailable("all " + std::to_string(replicas_.size()) +
                             " replicas unavailable");
}

StatusOr<PlanHandle> ReplicaSet::Plan(const std::vector<int64_t>& seqlens,
                                      const MaskSpec& mask_spec) {
  return PlanWithBlockSize(seqlens, mask_spec, /*block_size=*/0);
}

StatusOr<PlanHandle> ReplicaSet::PlanForLoader(const std::vector<int64_t>& seqlens,
                                               const MaskSpec& mask_spec) {
  return PlanWithBlockSize(seqlens, mask_spec, /*block_size=*/0);
}

PlanHandle ReplicaSet::CacheLookup(const PlanSignature& key) {
  MutexLock lock(cache_mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ReplicaSet::CacheInsert(const PlanSignature& key, PlanHandle handle) {
  if (options_.cache_capacity <= 0) {
    return;
  }
  MutexLock lock(cache_mu_);
  if (cache_.find(key) != cache_.end()) {
    return;
  }
  lru_.emplace_front(key, std::move(handle));
  cache_.emplace(key, lru_.begin());
  while (static_cast<int>(lru_.size()) > options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

ReplicaHealth ReplicaSet::health(size_t index) const {
  DCP_CHECK_LT(index, replicas_.size());
  const Replica& replica = *replicas_[index];
  ReplicaHealth health;
  health.address = replica.address;
  const int64_t now = NowMs();
  std::vector<int64_t> samples;
  {
    MutexLock lock(replica.mu);
    health.available = replica.cooldown.Available(now);
    health.consecutive_failures = replica.cooldown.consecutive_failures();
    health.backoff_ms = replica.cooldown.backoff_ms();
    health.rpcs = replica.rpcs;
    health.failures = replica.failures;
    samples = replica.latencies_ms;
  }
  health.latency_samples = static_cast<int64_t>(samples.size());
  health.p50_ms = QuantileMs(samples, 0.50);
  health.p95_ms = QuantileMs(samples, 0.95);
  health.p99_ms = QuantileMs(samples, 0.99);
  health.p99_estimate_ms = HedgeDelayMs(replica);  // Takes the lock itself.
  return health;
}

ReplicaSetStats ReplicaSet::stats() const {
  ReplicaSetStats snapshot;
  snapshot.requests = counters_.requests->value();
  snapshot.cache_hits = counters_.cache_hits->value();
  snapshot.rpcs_sent = counters_.rpcs_sent->value();
  snapshot.failovers = counters_.failovers->value();
  snapshot.hedges_sent = counters_.hedges_sent->value();
  snapshot.hedge_wins = counters_.hedge_wins->value();
  snapshot.hedge_waste = counters_.hedge_waste->value();
  snapshot.cooldowns_entered = counters_.cooldowns_entered->value();
  snapshot.local_fallbacks = counters_.local_fallbacks->value();
  return snapshot;
}

void ReplicaSet::ClearCache() {
  MutexLock lock(cache_mu_);
  lru_.clear();
  cache_.clear();
}

}  // namespace dcp
