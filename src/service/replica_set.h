// dcp::ReplicaSet — the fault-tolerant client layer above PlanClient: one Planner over
// N planning-service replicas. A single PlanClient turns a dead server into a dead
// training job; a ReplicaSet turns it into a failover.
//
//   auto set = ReplicaSet::Create({addr_a, addr_b, addr_c}, {.tenant = "prod"}).value();
//   DcpDataLoader loader(stream, MaskSpec::Causal(), std::move(set));  // unchanged loop
//
// Mechanisms, in request order:
//   - Signature-affinity routing: each request's cache key picks a deterministic replica
//     order by rendezvous (highest-random-weight) hashing, so identical batch shapes
//     keep landing on the same replica and its caches stay hot — and every other
//     replica is still a ranked fallback, with no routing table to rebuild when one
//     dies.
//   - Hedged requests: planning latency is occasionally heavy-tailed (a straggling
//     replica, a cold cache). After a per-replica p99-derived delay, the same request
//     is fired at the next replica in hash order and the first valid (CRC- and
//     signature-checked, in PlanClient) response wins. A hedge budget bounds the extra
//     request volume to a small fraction of traffic.
//   - Failover + cooldown: a transport-level failure (refused connect, timeout, torn
//     frame) demotes the replica into a cooldown with exponential backoff and
//     deterministic jitter; requests route around it until its next probe time.
//     Application-level rejections (invalid argument, unknown tenant) fail the request
//     immediately — every replica would answer identically.
//   - Local fallback: with every replica down and a fallback cluster configured, the
//     set plans in-process. Planning is deterministic, so the fallback's plans are
//     bit-identical to the fleet's (same cluster spec and planner options assumed).
#ifndef DCP_SERVICE_REPLICA_SET_H_
#define DCP_SERVICE_REPLICA_SET_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/plan_signature.h"
#include "service/plan_client.h"
#include "service/transport.h"

namespace dcp {

// Exponential-backoff cooldown for one replica. Pure state machine over caller-supplied
// timestamps (milliseconds on any monotonic clock), so tests drive it with a fake clock.
struct CooldownPolicy {
  int initial_ms = 50;
  int max_ms = 5000;
  double multiplier = 2.0;
  // Jitter is drawn deterministically from (seed, salt, failure count): reproducible
  // per replica, decorrelated across replicas so probes never synchronize.
  uint64_t jitter_seed = 0x646370722d636f6fULL;
};

class ReplicaCooldown {
 public:
  ReplicaCooldown() = default;
  ReplicaCooldown(CooldownPolicy policy, uint64_t salt)
      : policy_(policy), salt_(salt) {}

  // True when the replica may be tried: never failed, or its probe time has come.
  bool Available(int64_t now_ms) const;
  // One more transport-level failure: doubles the backoff (capped), schedules the next
  // probe at now + backoff +/- jitter (jitter within [-backoff/4, +backoff/4]).
  void RecordFailure(int64_t now_ms);
  // A successful exchange fully restores the replica.
  void RecordSuccess();

  int consecutive_failures() const { return consecutive_failures_; }
  int64_t backoff_ms() const { return backoff_ms_; }
  int64_t next_probe_ms() const { return next_probe_ms_; }

 private:
  CooldownPolicy policy_;
  uint64_t salt_ = 0;
  int consecutive_failures_ = 0;
  int64_t backoff_ms_ = 0;
  int64_t next_probe_ms_ = 0;
};

struct ReplicaSetOptions {
  std::string tenant = "default";
  // The set's own plan LRU (per-replica clients run cache-less so a failover never
  // consults a dead client's cache). 0 disables.
  int cache_capacity = 64;
  // Look-ahead pool threads when a DcpDataLoader drives this set.
  int planner_threads = 2;
  // Transport budgets applied to every per-replica client: bounded connects, bounded
  // send/recv, and an end-to-end deadline shipped with each request so a failed-over
  // request's abandoned twin is shed server-side.
  int connect_timeout_ms = 1000;
  int request_timeout_ms = 2000;
  // Per-replica RPC retry (RetryPolicy semantics from plan_client.h). Defaults to a
  // single attempt: the set prefers failing over to a healthy replica immediately over
  // retrying a sick one, and hedging already covers transient slowness.
  RetryPolicy retry{/*max_attempts=*/1, /*initial_backoff_ms=*/5,
                    /*max_backoff_ms=*/200};
  CooldownPolicy cooldown;

  // Hedging: after hedge delay ms (the routed replica's streaming p99 estimate,
  // clamped to [min, max]; max until enough samples exist) with no response, fire the
  // request at the next replica in hash order. At most one hedge per request, and at
  // most burst + fraction * requests hedges in total.
  bool hedging = true;
  int hedge_min_delay_ms = 2;
  int hedge_max_delay_ms = 100;
  double hedge_budget_fraction = 0.05;
  int hedge_budget_burst = 4;

  // Last resort on total fleet loss: plan in-process on this cluster/config. Only
  // consulted when local_fallback is true; must match the fleet's tenant config for
  // bit-identical plans.
  bool local_fallback = false;
  ClusterSpec fallback_cluster;
  EngineOptions fallback_options;
};

// Assembled on demand from the set's registry counters (dcp_replica_set_*_total),
// so callers keep a plain-struct snapshot while scrapers see the live series.
struct ReplicaSetStats {
  int64_t requests = 0;
  int64_t cache_hits = 0;       // Served from the set's LRU without any RPC.
  int64_t rpcs_sent = 0;        // Attempts launched across all replicas.
  int64_t failovers = 0;        // Launches forced by a failed prior attempt.
  int64_t hedges_sent = 0;
  int64_t hedge_wins = 0;       // Requests whose winning response came from a hedge.
  int64_t hedge_waste = 0;      // Hedges that finished without winning their request.
  int64_t cooldowns_entered = 0;
  int64_t local_fallbacks = 0;  // Requests planned by the in-process fallback engine.
};

// Health snapshot of one replica, for tests, benches, and dcpctl.
struct ReplicaHealth {
  ServiceAddress address;
  bool available = true;
  int consecutive_failures = 0;
  int64_t backoff_ms = 0;
  int64_t rpcs = 0;
  int64_t failures = 0;
  // Raw quantiles over the replica's latency ring (up to the last 64 successful
  // RPCs), in milliseconds; all zero until the first success lands.
  int64_t latency_samples = 0;
  int64_t p50_ms = 0;
  int64_t p95_ms = 0;
  int64_t p99_ms = 0;
  // The hedge delay this replica would get: ring p99 clamped to the configured
  // [min, max] window, or max until enough samples exist.
  int64_t p99_estimate_ms = 0;
};

class ReplicaSet : public Planner {
 public:
  // Validates and adopts the replica addresses; connections are made lazily per
  // replica on first use (a dead replica at construction time must not block startup).
  static StatusOr<std::unique_ptr<ReplicaSet>> Create(
      std::vector<ServiceAddress> addresses, ReplicaSetOptions options);
  ~ReplicaSet() override;

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  // Planner interface; block_size 0 defers to the tenant's server-side policy.
  StatusOr<PlanHandle> Plan(const std::vector<int64_t>& seqlens,
                            const MaskSpec& mask_spec) override;
  StatusOr<PlanHandle> PlanForLoader(const std::vector<int64_t>& seqlens,
                                     const MaskSpec& mask_spec) override;
  StatusOr<PlanHandle> PlanWithBlockSize(const std::vector<int64_t>& seqlens,
                                         const MaskSpec& mask_spec,
                                         int64_t block_size);
  ThreadPool& pool() override { return *pool_; }

  // The rendezvous order this request would route through (primary first). Exposed so
  // tests and benches can kill a known primary deterministically.
  std::vector<size_t> RouteOrder(const std::vector<int64_t>& seqlens,
                                 const MaskSpec& mask_spec,
                                 int64_t block_size = 0) const;

  size_t replica_count() const { return replicas_.size(); }
  ReplicaHealth health(size_t index) const;
  ReplicaSetStats stats() const;
  void ClearCache();

 private:
  // One replica: its lazily-connected client, cooldown state, and a latency ring for
  // the hedge-delay estimate. Held by shared_ptr — hedge loser threads outlive the
  // request that launched them (bounded by the socket timeouts) and may touch this
  // after the request returned.
  struct Replica {
    ServiceAddress address;      // Immutable after construction.
    uint64_t addr_hash = 0;      // Immutable after construction.
    // Registry series {replica=<address>}; resolved once at construction, then
    // only atomically recorded into (safe from detached attempt threads).
    metrics::Histogram* rpc_latency_us = nullptr;
    mutable Mutex mu;
    std::unique_ptr<PlanClient> client DCP_GUARDED_BY(mu);
    ReplicaCooldown cooldown DCP_GUARDED_BY(mu);
    // Ring buffer, newest overwrites oldest.
    std::vector<int64_t> latencies_ms DCP_GUARDED_BY(mu);
    size_t latency_next DCP_GUARDED_BY(mu) = 0;
    int64_t rpcs DCP_GUARDED_BY(mu) = 0;
    int64_t failures DCP_GUARDED_BY(mu) = 0;
  };

  // Shared state of one (possibly hedged, possibly failed-over) logical request.
  struct HedgedCall;

  ReplicaSet(std::vector<ServiceAddress> addresses, ReplicaSetOptions options);

  // Launches one attempt on `replica` in a detached thread. Callers bump
  // call->launched themselves (under call->mu — HedgedCall is .cc-local, so the
  // requirement cannot be annotated here).
  void LaunchAttempt(const std::shared_ptr<HedgedCall>& call,
                     const std::shared_ptr<Replica>& replica, bool is_hedge);
  // One blocking RPC on one replica (connects lazily); updates the replica's cooldown,
  // counters, and latency ring.
  StatusOr<PlanHandle> AttemptOnReplica(Replica& replica,
                                        const std::vector<int64_t>& seqlens,
                                        const MaskSpec& mask_spec, int64_t block_size);
  int64_t HedgeDelayMs(const Replica& replica) const;
  bool HedgeBudgetAllows();
  StatusOr<PlanHandle> LocalFallbackPlan(const std::vector<int64_t>& seqlens,
                                         const MaskSpec& mask_spec,
                                         int64_t block_size);

  PlanHandle CacheLookup(const PlanSignature& key);
  void CacheInsert(const PlanSignature& key, PlanHandle handle);

  const ReplicaSetOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::shared_ptr<Replica>> replicas_;

  // Attempt threads still running; the destructor waits for zero so no detached thread
  // can outlive the replicas it holds via shared_ptr while the set's stats are gone.
  struct Outstanding;
  std::shared_ptr<Outstanding> outstanding_;

  mutable Mutex cache_mu_;
  std::list<std::pair<PlanSignature, PlanHandle>> lru_ DCP_GUARDED_BY(cache_mu_);
  std::unordered_map<PlanSignature,
                     std::list<std::pair<PlanSignature, PlanHandle>>::iterator,
                     PlanSignatureHash>
      cache_ DCP_GUARDED_BY(cache_mu_);

  Mutex fallback_mu_;
  std::unique_ptr<Engine> fallback_engine_ DCP_GUARDED_BY(fallback_mu_);

  // Set-level counters, resolved once at construction from a child registry
  // labeled {tenant=<options.tenant>}. Plain atomics after that: attempt
  // threads bump them with no set-level lock, and stats() reads them back.
  std::shared_ptr<metrics::Registry> metrics_;
  struct SetCounters {
    metrics::Counter* requests = nullptr;
    metrics::Counter* cache_hits = nullptr;
    metrics::Counter* rpcs_sent = nullptr;
    metrics::Counter* failovers = nullptr;
    metrics::Counter* hedges_sent = nullptr;
    metrics::Counter* hedge_wins = nullptr;
    metrics::Counter* hedge_waste = nullptr;
    metrics::Counter* cooldowns_entered = nullptr;
    metrics::Counter* local_fallbacks = nullptr;
  };
  SetCounters counters_;
};

}  // namespace dcp

#endif  // DCP_SERVICE_REPLICA_SET_H_
