// Deterministic fault injection for the planning service: a seedable FaultInjector
// decides, per operation, whether a connect/send/recv/serve step fails, tears the
// connection after K bytes, or stalls — and the transport consults it on every call, so
// the exact failure modes a production fleet sees (refused connections, frames torn
// mid-payload, straggling replicas, stale gossip records) are reproducible in tests and
// in `dcpctl serve --chaos`.
//
// Determinism contract: every decision derives from (seed, per-point operation
// counter) through a splitmix64 stream — never from wall clock or global RNG state —
// so a single-threaded test replays the identical fault schedule for a given seed, and
// CI can run a *different* schedule per run simply by varying DCP_FAULT_SEED while
// keeping every run reproducible from its logged seed.
#ifndef DCP_SERVICE_FAULT_INJECTION_H_
#define DCP_SERVICE_FAULT_INJECTION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/thread_annotations.h"
#include "service/transport.h"

namespace dcp {

// Where in the request path a fault can strike.
enum class FaultPoint : uint8_t {
  kConnect = 0,  // Establishing a connection (ConnectSocket).
  kSend,         // One Socket::SendAll / Socket::Writev call.
  kRecv,         // One Socket::RecvAll / Socket::ReadSome call.
  kServe,        // Server-side request handling, before planning (straggler delays).
  kSyncRecord,   // One record shipped by anti-entropy gossip (stale-record corruption).
  kAccept,       // One server-side accept attempt (kFail simulates transient
                 // EMFILE/ECONNABORTED pressure without consuming the pending
                 // connection — it stays in the listen backlog for the retry).
};
constexpr int kNumFaultPoints = 6;

enum class FaultAction : uint8_t {
  kNone = 0,
  kFail,   // The operation fails outright (UNAVAILABLE), connection closed.
  kTear,   // Let `tear_bytes` through, then kill the connection: the peer sees a torn
           // frame (DATA_LOSS mid-payload) instead of a clean close.
  kDelay,  // Stall `delay_ms`, then proceed normally (straggler, not a failure).
  kStale,  // kSyncRecord only: corrupt the record bytes before shipping, so the
           // receiver's CRC validation must catch and reject it.
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int delay_ms = 0;
  size_t tear_bytes = 0;
};

// Per-point fault schedule. Probabilities draw from the seeded stream; `every_n`
// instead fires `periodic_action` on every Nth operation at the point — independent of
// the seed, which benches use for an exactly reproducible straggler pattern.
struct FaultRates {
  double fail = 0.0;
  double tear = 0.0;
  double delay = 0.0;
  double stale = 0.0;
  int delay_ms = 20;
  size_t tear_bytes = 8;  // Bytes let through before a kTear kills the connection.
  int every_n = 0;
  FaultAction periodic_action = FaultAction::kNone;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void SetRates(FaultPoint point, const FaultRates& rates);

  // One operation at `point`: returns what (if anything) should go wrong. Each point
  // owns an independent splitmix64 stream, so enabling faults at one point never
  // perturbs the schedule at another.
  FaultDecision Decide(FaultPoint point);

  uint64_t seed() const { return seed_; }
  int64_t decisions() const;
  int64_t injected() const;  // Decisions whose action was not kNone.

 private:
  const uint64_t seed_;
  // Decide() holds it only around its own counters/PRNG state; callers may hold
  // any lock when consulting the injector.
  // dcp-analyze: allow(lock-order): leaf lock.
  mutable Mutex mu_;
  std::array<FaultRates, kNumFaultPoints> rates_ DCP_GUARDED_BY(mu_);
  // splitmix64 state per point.
  std::array<uint64_t, kNumFaultPoints> streams_ DCP_GUARDED_BY(mu_);
  // Operation counter per point.
  std::array<int64_t, kNumFaultPoints> ops_ DCP_GUARDED_BY(mu_);
  int64_t decisions_ DCP_GUARDED_BY(mu_) = 0;
  int64_t injected_ DCP_GUARDED_BY(mu_) = 0;
};

// Process-global injector consulted by ConnectSocket and Listener::Accept: when
// installed, every new socket in the process carries it (dcpctl serve --chaos).
// Install nullptr to disarm. Tests that need isolation attach per-socket injectors via
// FaultInjectingSocket / per-server options instead.
void InstallGlobalFaultInjector(std::shared_ptr<FaultInjector> injector);
std::shared_ptr<FaultInjector> GlobalFaultInjector();

// Attaches `injector` to a connected socket: every subsequent SendAll/RecvAll consults
// it first. Returns the same socket (move-through), so call sites wrap in place:
//   Socket s = FaultInjectingSocket(std::move(plain), injector);
Socket FaultInjectingSocket(Socket base, std::shared_ptr<FaultInjector> injector);

// The CI chaos knob: DCP_FAULT_SEED parsed as an unsigned integer, or `fallback` when
// the variable is unset/empty/non-numeric.
uint64_t FaultSeedFromEnv(uint64_t fallback);

}  // namespace dcp

#endif  // DCP_SERVICE_FAULT_INJECTION_H_
