// Blocking socket transport for the planning service: a move-only Socket wrapper plus a
// Listener that accepts over TCP (127.0.0.1:port, port 0 picks an ephemeral one) or
// Unix-domain sockets. Everything returns Status — a refused connection, a closed peer,
// or a bind collision is an operational condition, never an abort. The accept loop
// polls with a short timeout so PlanServer::Stop() can stop it without signals.
#ifndef DCP_SERVICE_TRANSPORT_H_
#define DCP_SERVICE_TRANSPORT_H_

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dcp {

class FaultInjector;  // service/fault_injection.h — transport stays below it.

// "tcp:host:port" or "unix:/path/to.sock".
struct ServiceAddress {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  // kTcp.
  int port = 0;                    // kTcp; 0 binds an ephemeral port.
  std::string path;                // kUnix.

  static ServiceAddress Tcp(std::string host, int port);
  static ServiceAddress Unix(std::string path);
  // Parses "tcp:host:port" / "unix:/path". TCP ports must be 1..65535: port 0 is
  // rejected here because a parsed address names a peer to reach (connect to port 0
  // fails with a misleading errno) or a fixed bind (port 0 would silently bind an
  // ephemeral one). Code that *wants* an ephemeral bind asks for it explicitly with
  // ServiceAddress::Tcp(host, 0).
  static StatusOr<ServiceAddress> Parse(const std::string& spec);
  std::string ToString() const;
};

// Outcome of one non-blocking IO attempt (Socket::ReadSome / Socket::Writev).
struct IoResult {
  enum class Kind {
    kProgress,    // `bytes` were transferred (> 0).
    kWouldBlock,  // The socket is not ready; wait for readiness and retry.
    kEof,         // Reads only: the peer closed cleanly.
    kError,       // The connection is unusable; `status` says why. Caller closes.
  };
  Kind kind = Kind::kError;
  size_t bytes = 0;
  Status status = Status::Ok();
};

// A connected stream socket. Blocking; move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all of `bytes` (EINTR-safe, SIGPIPE suppressed). UNAVAILABLE when the peer
  // is gone; DEADLINE_EXCEEDED when an io timeout is set and the peer stops draining.
  Status SendAll(std::string_view bytes);
  // Reads exactly `n` bytes. UNAVAILABLE on a clean close before the first byte,
  // DATA_LOSS on a close mid-read (the peer tore a frame), DEADLINE_EXCEEDED when an
  // io timeout is set and no bytes arrive in time.
  Status RecvAll(void* buf, size_t n);

  // Poll-based time budget applied to each SendAll/RecvAll call as a whole: when the
  // peer cannot make progress within `timeout_ms`, the call fails with
  // DEADLINE_EXCEEDED instead of blocking forever. -1 (the default) blocks.
  void set_io_timeout_ms(int timeout_ms) { io_timeout_ms_ = timeout_ms; }
  int io_timeout_ms() const { return io_timeout_ms_; }

  // When set, every subsequent SendAll/RecvAll consults the injector first
  // (service/fault_injection.h). Sockets from ConnectSocket/Accept pick up the
  // process-global injector automatically when one is installed.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  // --- Non-blocking IO (the event-driven server path) ------------------------------
  //
  // These never close the fd themselves — the event loop owns the fd's registration in
  // its poller, so teardown must be one place (the loop), not a side effect of an IO
  // call. Injected faults therefore surface as kError (after an optional partial write
  // + shutdown for kTear, so the peer observes a genuinely torn frame) and leave the
  // close to the caller.

  Status SetNonBlocking(bool nonblocking);

  // One recv of up to `n` bytes.
  IoResult ReadSome(void* buf, size_t n);
  // One scatter-gather send (sendmsg, SIGPIPE suppressed). May transfer any prefix of
  // the iovecs' bytes; the caller tracks its own cursor.
  IoResult Writev(const iovec* iov, int iovcnt);

  // Unblocks any thread blocked in RecvAll/SendAll on this socket (server shutdown).
  void Shutdown();
  void Close();

 private:
  // Polls until fd_ is ready for `events` or the per-call deadline passes.
  Status WaitReady(short events, int64_t deadline_ms, const char* what);

  int fd_ = -1;
  int io_timeout_ms_ = -1;
  std::shared_ptr<FaultInjector> injector_;
};

// Connects to a listening service endpoint. With `timeout_ms` >= 0 the connect itself
// is bounded (non-blocking connect + poll): a black-holed address fails with
// DEADLINE_EXCEEDED instead of hanging for the kernel's SYN-retry minutes.
StatusOr<Socket> ConnectSocket(const ServiceAddress& address, int timeout_ms = -1);

class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens. For TCP with port 0, bound_address() reports the ephemeral port
  // actually chosen; for Unix sockets a stale socket file at the path is replaced.
  // `backlog` is the listen(2) queue depth; <= 0 uses SOMAXCONN (a connection burst
  // deeper than a small fixed backlog would otherwise be SYN-dropped and surface as
  // client connect timeouts).
  static StatusOr<Listener> Bind(const ServiceAddress& address, int backlog = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const ServiceAddress& bound_address() const { return bound_; }

  // Waits up to `timeout_ms` for a connection (-1: no timeout). NOT_FOUND on timeout
  // (poll again), UNAVAILABLE once the listener is closed or interrupted.
  StatusOr<Socket> Accept(int timeout_ms);

  // Wakes a Accept() blocked in another thread (it returns UNAVAILABLE). This is the
  // only cross-thread operation the Listener supports: the owner then joins the accept
  // thread and calls Close() from a single thread — closing the fd out from under a
  // concurrent poll would be a data race and an fd-reuse hazard.
  void Interrupt();

  void Close();

 private:
  int fd_ = -1;
  int wake_fd_ = -1;  // eventfd; written by Interrupt, polled by Accept.
  ServiceAddress bound_;
};

}  // namespace dcp

#endif  // DCP_SERVICE_TRANSPORT_H_
