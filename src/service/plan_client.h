// dcp::PlanClient — the trainer-side half of the planning service. Implements the same
// Planner interface as the in-process Engine, so a DcpDataLoader (or any other caller)
// can be pointed at a remote planning service transparently:
//
//   auto client = PlanClient::Connect(ServiceAddress::Parse("tcp:10.0.0.7:7070").value(),
//                                     {.tenant = "prod"}).value();
//   DcpDataLoader loader(stream, MaskSpec::Causal(), std::move(client));  // unchanged loop
//
// Each Plan() first consults a client-side LRU keyed by the full request content
// (tenant, seqlens, mask parameters, block size) — a hit never touches the network.
// Misses run one RPC: the response carries the plan as PlanStore record bytes, CRC
// verified and bounds-checked end to end before any field is trusted, and the decoded
// plan is bit-identical to what an in-process Engine::Plan would have produced. RPCs
// are serialized per client (one outstanding request per connection); share one client
// across loader lookahead threads, or create one per thread for pipelined planning.
#ifndef DCP_SERVICE_PLAN_CLIENT_H_
#define DCP_SERVICE_PLAN_CLIENT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/plan_signature.h"
#include "runtime/instructions.h"
#include "service/frame.h"
#include "service/transport.h"

namespace dcp {

// Bounded retry for transport-level failures, shared by PlanClient and ReplicaSet.
// Retries chase only "safe" errors — failures where resending cannot double-apply
// anything (plan RPCs are idempotent: planning is deterministic, so a replayed plan is
// bit-identical) and where a fresh attempt can plausibly succeed: a dropped or refused
// connection, a timeout, a torn response frame. Application-level rejections (invalid
// argument, unknown tenant) are surfaced immediately — they would fail identically on
// every retry.
struct RetryPolicy {
  int max_attempts = 3;        // Total tries per RPC; 1 disables retry.
  int initial_backoff_ms = 5;  // Doubled per retry, capped at max_backoff_ms.
  int max_backoff_ms = 200;
  // Retry k sleeps in [backoff/2, backoff], the offset drawn deterministically from
  // (jitter_seed, k) — reproducible in tests, still decorrelated across clients that
  // seed differently.
  uint64_t jitter_seed = 0x646370722d727472ULL;
};

// True for the statuses RetryPolicy may chase: UNAVAILABLE, DEADLINE_EXCEEDED, and
// DATA_LOSS (a torn/desynced response stream — the request is idempotent and the retry
// runs on a fresh connection).
bool IsRetryableStatus(const Status& status);

// The backoff before the `retry`-th retry (1-based), per `policy`. Exposed so
// ReplicaSet paces its reconnect probes identically.
int RetryBackoffMs(const RetryPolicy& policy, int retry);

// The client-side cache key for one plan request: a signature over the full request
// content (tenant name folded in, so distinct tenants can never alias). Shared by the
// PlanClient LRU and by ReplicaSet, whose rendezvous routing and its own LRU must
// agree with the per-replica clients on request identity.
PlanSignature PlanRequestCacheKey(const std::string& tenant,
                                  const std::vector<int64_t>& seqlens,
                                  const MaskSpec& mask_spec, int64_t block_size);

struct PlanClientOptions {
  std::string tenant = "default";
  // Client-side plan LRU capacity; 0 disables local caching (every Plan is an RPC).
  int cache_capacity = 64;
  // Look-ahead pool threads when a DcpDataLoader drives this client.
  int planner_threads = 2;
  uint64_t max_frame_payload_bytes = 0;  // 0: frame.h default.
  // Transport budgets: a bound on each (re)connect and on each send/recv (the whole
  // call, enforced by Socket's poll loop). -1 blocks indefinitely.
  int connect_timeout_ms = -1;
  int io_timeout_ms = -1;
  // End-to-end request budget shipped on every plan request (relative ms; 0 = none).
  // The server sheds the request unplanned once this has expired.
  int64_t deadline_ms = 0;
  // Transport-failure retry policy (replaces the old single transparent reconnect,
  // which retried exactly once and blindly — even on protocol desync).
  RetryPolicy retry{};
};

struct PlanClientStats {
  int64_t cache_hits = 0;      // Served from the client LRU without an RPC.
  int64_t rpcs_sent = 0;
  int64_t rpc_errors = 0;      // Transport/framing failures (not server-side statuses).
  int64_t reconnects = 0;
  int64_t retries = 0;         // Attempts beyond the first, across all RPCs.
};

class PlanClient : public Planner {
 public:
  static StatusOr<std::unique_ptr<PlanClient>> Connect(const ServiceAddress& address,
                                                       PlanClientOptions options);
  ~PlanClient() override;

  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;

  // Planner interface. Plan/PlanForLoader send block_size 0: the tenant's server-side
  // policy (fixed block or auto-tune) decides, exactly like the in-process engine.
  StatusOr<PlanHandle> Plan(const std::vector<int64_t>& seqlens,
                            const MaskSpec& mask_spec) override;
  StatusOr<PlanHandle> PlanForLoader(const std::vector<int64_t>& seqlens,
                                     const MaskSpec& mask_spec) override;
  StatusOr<PlanHandle> PlanWithBlockSize(const std::vector<int64_t>& seqlens,
                                         const MaskSpec& mask_spec, int64_t block_size);
  ThreadPool& pool() override { return *pool_; }

  // Where the most recent Plan() on this thread's call was served from (client cache,
  // server memory/store cache, or freshly planned). For benches and tests.
  PlanServeSource last_source() const;

  StatusOr<PlanServiceStatsResponse> ServerStats(const std::string& tenant_filter = "");

  // One metrics scrape from the server: Prometheus text for every series whose
  // name starts with `name_prefix` ("" for everything). Requires a v3 server.
  StatusOr<PlanServiceMetricsResponse> ServerMetrics(
      const std::string& name_prefix = "");

  const ServiceAddress& address() const { return address_; }
  const PlanClientOptions& options() const { return options_; }
  PlanClientStats stats() const;
  void ClearCache();

 private:
  PlanClient(ServiceAddress address, PlanClientOptions options);

  // One serialized request/response exchange, with optional reconnect-and-retry.
  // Returns the response frame: either `expected_response` or kErrorResponse (whose
  // payload is a PlanServiceResponse carrying only a status) — callers pick the codec
  // by the returned type.
  StatusOr<Frame> Roundtrip(FrameType request_type, const std::string& payload,
                            FrameType expected_response);
  // Decodes a kErrorResponse frame into the server's status.
  static Status DecodeErrorFrame(const Frame& frame);
  Status EnsureConnectedLocked() DCP_REQUIRES(io_mu_);

  // Client cache key: a signature over the full request content. Distinct tenants can
  // never alias (the tenant name is folded in), so one client reused across tenants
  // would still be safe.
  PlanSignature CacheKey(const std::vector<int64_t>& seqlens, const MaskSpec& mask_spec,
                         int64_t block_size) const;
  PlanHandle CacheLookup(const PlanSignature& key);
  void CacheInsert(const PlanSignature& key, PlanHandle handle);

  const ServiceAddress address_;
  const PlanClientOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  // Serializes RPCs on the single connection; stats are bumped under it.
  Mutex io_mu_ DCP_ACQUIRED_BEFORE(stats_mu_);
  Socket socket_ DCP_GUARDED_BY(io_mu_);
  bool connected_ DCP_GUARDED_BY(io_mu_) = false;

  mutable Mutex cache_mu_;
  std::list<std::pair<PlanSignature, PlanHandle>> lru_ DCP_GUARDED_BY(cache_mu_);
  std::unordered_map<PlanSignature,
                     std::list<std::pair<PlanSignature, PlanHandle>>::iterator,
                     PlanSignatureHash>
      cache_ DCP_GUARDED_BY(cache_mu_);
  PlanServeSource last_source_ DCP_GUARDED_BY(cache_mu_) = PlanServeSource::kPlanned;

  mutable Mutex stats_mu_;
  PlanClientStats stats_ DCP_GUARDED_BY(stats_mu_);

  // Client-observed plan latency per serve source, {tenant=, source=}. This is
  // the only place kClientCache can be measured (the server never sees those
  // requests), completing the per-source latency picture a scrape shows.
  std::shared_ptr<metrics::Registry> metrics_;
  metrics::Histogram* serve_latency_us_[5] = {};
};

}  // namespace dcp

#endif  // DCP_SERVICE_PLAN_CLIENT_H_
