// dcp::PlanClient — the trainer-side half of the planning service. Implements the same
// Planner interface as the in-process Engine, so a DcpDataLoader (or any other caller)
// can be pointed at a remote planning service transparently:
//
//   auto client = PlanClient::Connect(ServiceAddress::Parse("tcp:10.0.0.7:7070").value(),
//                                     {.tenant = "prod"}).value();
//   DcpDataLoader loader(stream, MaskSpec::Causal(), std::move(client));  // unchanged loop
//
// Each Plan() first consults a client-side LRU keyed by the full request content
// (tenant, seqlens, mask parameters, block size) — a hit never touches the network.
// Misses run one RPC: the response carries the plan as PlanStore record bytes, CRC
// verified and bounds-checked end to end before any field is trusted, and the decoded
// plan is bit-identical to what an in-process Engine::Plan would have produced. RPCs
// are serialized per client (one outstanding request per connection); share one client
// across loader lookahead threads, or create one per thread for pipelined planning.
#ifndef DCP_SERVICE_PLAN_CLIENT_H_
#define DCP_SERVICE_PLAN_CLIENT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/plan_signature.h"
#include "runtime/instructions.h"
#include "service/frame.h"
#include "service/transport.h"

namespace dcp {

struct PlanClientOptions {
  std::string tenant = "default";
  // Client-side plan LRU capacity; 0 disables local caching (every Plan is an RPC).
  int cache_capacity = 64;
  // Look-ahead pool threads when a DcpDataLoader drives this client.
  int planner_threads = 2;
  uint64_t max_frame_payload_bytes = 0;  // 0: frame.h default.
  // One transparent reconnect + resend per RPC when the connection dropped (server
  // restart); a second failure surfaces as UNAVAILABLE.
  bool reconnect = true;
};

struct PlanClientStats {
  int64_t cache_hits = 0;      // Served from the client LRU without an RPC.
  int64_t rpcs_sent = 0;
  int64_t rpc_errors = 0;      // Transport/framing failures (not server-side statuses).
  int64_t reconnects = 0;
};

class PlanClient : public Planner {
 public:
  static StatusOr<std::unique_ptr<PlanClient>> Connect(const ServiceAddress& address,
                                                       PlanClientOptions options);
  ~PlanClient() override;

  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;

  // Planner interface. Plan/PlanForLoader send block_size 0: the tenant's server-side
  // policy (fixed block or auto-tune) decides, exactly like the in-process engine.
  StatusOr<PlanHandle> Plan(const std::vector<int64_t>& seqlens,
                            const MaskSpec& mask_spec) override;
  StatusOr<PlanHandle> PlanForLoader(const std::vector<int64_t>& seqlens,
                                     const MaskSpec& mask_spec) override;
  StatusOr<PlanHandle> PlanWithBlockSize(const std::vector<int64_t>& seqlens,
                                         const MaskSpec& mask_spec, int64_t block_size);
  ThreadPool& pool() override { return *pool_; }

  // Where the most recent Plan() on this thread's call was served from (client cache,
  // server memory/store cache, or freshly planned). For benches and tests.
  PlanServeSource last_source() const;

  StatusOr<PlanServiceStatsResponse> ServerStats(const std::string& tenant_filter = "");

  const PlanClientOptions& options() const { return options_; }
  PlanClientStats stats() const;
  void ClearCache();

 private:
  PlanClient(ServiceAddress address, PlanClientOptions options);

  // One serialized request/response exchange, with optional reconnect-and-retry.
  // Returns the response frame: either `expected_response` or kErrorResponse (whose
  // payload is a PlanServiceResponse carrying only a status) — callers pick the codec
  // by the returned type.
  StatusOr<Frame> Roundtrip(FrameType request_type, const std::string& payload,
                            FrameType expected_response);
  // Decodes a kErrorResponse frame into the server's status.
  static Status DecodeErrorFrame(const Frame& frame);
  Status EnsureConnectedLocked();

  // Client cache key: a signature over the full request content. Distinct tenants can
  // never alias (the tenant name is folded in), so one client reused across tenants
  // would still be safe.
  PlanSignature CacheKey(const std::vector<int64_t>& seqlens, const MaskSpec& mask_spec,
                         int64_t block_size) const;
  PlanHandle CacheLookup(const PlanSignature& key);
  void CacheInsert(const PlanSignature& key, PlanHandle handle);

  const ServiceAddress address_;
  const PlanClientOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex io_mu_;  // Serializes RPCs on the single connection.
  Socket socket_;
  bool connected_ = false;

  mutable std::mutex cache_mu_;
  std::list<std::pair<PlanSignature, PlanHandle>> lru_;
  std::unordered_map<PlanSignature,
                     std::list<std::pair<PlanSignature, PlanHandle>>::iterator,
                     PlanSignatureHash>
      cache_;
  PlanServeSource last_source_ = PlanServeSource::kPlanned;

  mutable std::mutex stats_mu_;
  PlanClientStats stats_;
};

}  // namespace dcp

#endif  // DCP_SERVICE_PLAN_CLIENT_H_
