#include "service/plan_server.h"

#include <utility>

#include "common/check.h"
#include "core/plan_store.h"

namespace dcp {
namespace {

PlanServeSource SourceFromOrigin(PlanOrigin origin) {
  switch (origin) {
    case PlanOrigin::kFresh:
      return PlanServeSource::kPlanned;
    case PlanOrigin::kMemoryCache:
      return PlanServeSource::kMemoryCache;
    case PlanOrigin::kStoreCache:
      return PlanServeSource::kStoreCache;
  }
  return PlanServeSource::kPlanned;
}

PlanServiceResponse ErrorResponse(StatusCode code, std::string message) {
  PlanServiceResponse response;
  response.code = code;
  response.message = std::move(message);
  return response;
}

}  // namespace

PlanServer::PlanServer(std::shared_ptr<TenantRegistry> registry,
                       PlanServerOptions options)
    : registry_(std::move(registry)), options_(options) {
  DCP_CHECK(registry_ != nullptr);
  DCP_CHECK_GE(options_.max_queue, 0);
}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start(const ServiceAddress& address) {
  if (running()) {
    return Status::FailedPrecondition("server already running");
  }
  StatusOr<Listener> listener = Listener::Bind(address);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(listener).value();
  bound_ = listener_.bound_address();
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.workers));
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void PlanServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the accept thread first and only close the listener after joining it: closing
  // an fd another thread is polling is a data race, and a reused descriptor number
  // could silently redirect the accept loop onto an unrelated socket.
  listener_.Interrupt();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      conn->socket.Shutdown();  // Unblocks the reader's RecvAll.
    }
  }
  // Join readers outside conns_mu_ (ReadLoop briefly takes it via WriteResponse paths).
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
  }
  // ThreadPool teardown drains queued jobs; their response writes hit shutdown sockets
  // and fail harmlessly.
  pool_.reset();
}

void PlanServer::AcceptLoop() {
  while (running()) {
    StatusOr<Socket> accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) {
        ReapFinishedConnections();
        continue;  // Timeout: poll the running flag again.
      }
      break;  // Listener closed (Stop) or a fatal accept error.
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
    ReapFinishedConnections();
  }
}

void PlanServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire) &&
          (*it)->pending_jobs.load(std::memory_order_acquire) == 0) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
  }
}

void PlanServer::ReadLoop(Connection* conn) {
  while (running()) {
    StatusOr<Frame> frame = ReadFrame(conn->socket, options_.max_frame_payload_bytes);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDataLoss) {
        // Corrupt or torn frame: count it, answer if the stream can still carry bytes,
        // and drop the connection — resynchronizing a corrupt stream is guesswork.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.malformed_frames;
        }
        WriteResponse(conn, FrameType::kErrorResponse,
                      SerializePlanServiceResponse(ErrorResponse(
                          StatusCode::kDataLoss, frame.status().message())));
      }
      break;  // Clean close, shutdown, or corrupt stream: either way, stop reading.
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_received;
    }
    // Backpressure: admit the request only if the in-flight budget allows. The reader
    // answers overload itself so a saturated worker pool still rejects promptly.
    const int admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (admitted >= options_.max_queue) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_overload;
      }
      const FrameType reply_type = frame.value().type == FrameType::kStatsRequest
                                       ? FrameType::kStatsResponse
                                       : FrameType::kPlanResponse;
      PlanServiceResponse overload = ErrorResponse(
          StatusCode::kUnavailable,
          "server overloaded: " + std::to_string(options_.max_queue) +
              " requests already in flight");
      if (reply_type == FrameType::kStatsResponse) {
        PlanServiceStatsResponse stats_overload;
        stats_overload.code = overload.code;
        stats_overload.message = overload.message;
        WriteResponse(conn, reply_type,
                      SerializePlanServiceStatsResponse(stats_overload));
      } else {
        WriteResponse(conn, reply_type, SerializePlanServiceResponse(overload));
      }
      continue;
    }
    conn->pending_jobs.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, conn, frame = std::move(frame).value()]() mutable {
      HandleFrame(conn, std::move(frame));
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      conn->pending_jobs.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  conn->socket.Shutdown();
  conn->done.store(true, std::memory_order_release);
}

void PlanServer::HandleFrame(Connection* conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kPlanRequest: {
      StatusOr<PlanServiceRequest> request =
          DeserializePlanServiceRequest(frame.payload);
      PlanServiceResponse response;
      if (!request.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
        response = ErrorResponse(request.status().code(), request.status().message());
      } else {
        response = HandlePlanRequest(request.value());
      }
      WriteResponse(conn, FrameType::kPlanResponse,
                    SerializePlanServiceResponse(response));
      return;
    }
    case FrameType::kStatsRequest: {
      StatusOr<PlanServiceStatsRequest> request =
          DeserializePlanServiceStatsRequest(frame.payload);
      PlanServiceStatsResponse response;
      if (!request.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
        response.code = request.status().code();
        response.message = request.status().message();
      } else {
        response = BuildStatsResponse(request.value().tenant);
      }
      WriteResponse(conn, FrameType::kStatsResponse,
                    SerializePlanServiceStatsResponse(response));
      return;
    }
    default: {
      // Well-framed but not a request type: answer with an error and keep the
      // connection (framing is intact, the client just sent nonsense).
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
      }
      WriteResponse(conn, FrameType::kErrorResponse,
                    SerializePlanServiceResponse(ErrorResponse(
                        StatusCode::kInvalidArgument,
                        "frame type " +
                            std::to_string(static_cast<uint32_t>(frame.type)) +
                            " is not a request")));
      return;
    }
  }
}

PlanServiceResponse PlanServer::HandlePlanRequest(const PlanServiceRequest& request) {
  const std::shared_ptr<Engine> engine = registry_->Find(request.tenant);
  PlanServiceResponse response;
  if (engine == nullptr) {
    // Counted only in the service-wide plan_errors: keying tenant_counters_ on
    // arbitrary unknown names would let a client cycling bogus tenants grow server
    // memory without bound (and the entries would never surface in stats anyway).
    response = ErrorResponse(StatusCode::kNotFound,
                             "unknown tenant '" + request.tenant + "'");
  } else {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++tenant_counters_[request.tenant].requests;
    }
    StatusOr<Engine::PlannedOutcome> planned =
        engine->PlanDetailed(request.seqlens, request.mask_spec, request.block_size);
    if (!planned.ok()) {
      response = ErrorResponse(planned.status().code(), planned.status().message());
    } else {
      const PlanHandle& handle = planned.value().handle;
      response.source = SourceFromOrigin(planned.value().origin);
      response.signature_lo = handle->signature.lo;
      response.signature_hi = handle->signature.hi;
      // The wire carries the persistence format: one CRC-trailed PlanStore record,
      // encoded once per signature and replayed from the record LRU on later hits.
      response.record = *EncodedRecordFor(handle);
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (response.code == StatusCode::kOk) {
    ++stats_.plan_ok;
  } else {
    ++stats_.plan_errors;
    if (engine != nullptr) {
      ++tenant_counters_[request.tenant].plan_errors;
    }
  }
  return response;
}

std::shared_ptr<const std::string> PlanServer::EncodedRecordFor(
    const PlanHandle& handle) {
  if (options_.record_cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(record_cache_mu_);
    const auto it = record_cache_.find(handle->signature);
    if (it != record_cache_.end()) {
      record_lru_.splice(record_lru_.begin(), record_lru_, it->second);
      return it->second->second;
    }
  }
  // Encode outside the lock: it is the expensive part, and two racing encoders of the
  // same signature produce identical bytes anyway.
  auto record = std::make_shared<const std::string>(
      PlanStore::EncodeRecord(handle->signature, handle->plan));
  if (options_.record_cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(record_cache_mu_);
    if (record_cache_.find(handle->signature) == record_cache_.end()) {
      record_lru_.emplace_front(handle->signature, record);
      record_cache_.emplace(handle->signature, record_lru_.begin());
      while (static_cast<int>(record_lru_.size()) > options_.record_cache_capacity) {
        record_cache_.erase(record_lru_.back().first);
        record_lru_.pop_back();
      }
    }
  }
  return record;
}

void PlanServer::WriteResponse(Connection* conn, FrameType type,
                               std::string_view payload) {
  Status sent = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    sent = WriteFrame(conn->socket, type, payload);
  }
  if (sent.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses_sent;
  }
  // A failed write means the peer is gone; its reader will notice on the next read.
}

PlanServerStats PlanServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

PlanServiceStatsResponse PlanServer::BuildStatsResponse(
    const std::string& tenant_filter) const {
  PlanServiceStatsResponse response;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    response.connections_accepted = stats_.connections_accepted;
    response.requests_received = stats_.requests_received;
    response.responses_sent = stats_.responses_sent;
    response.rejected_overload = stats_.rejected_overload;
    response.malformed_frames = stats_.malformed_frames;
  }
  for (const std::string& name : registry_->Names()) {
    if (!tenant_filter.empty() && name != tenant_filter) {
      continue;
    }
    const std::shared_ptr<Engine> engine = registry_->Find(name);
    if (engine == nullptr) {
      continue;
    }
    const PlanCacheStats cache = engine->cache_stats();
    PlanServiceTenantStats tenant;
    tenant.tenant = name;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      const auto it = tenant_counters_.find(name);
      if (it != tenant_counters_.end()) {
        tenant.requests = it->second.requests;
        tenant.plan_errors = it->second.plan_errors;
      }
    }
    tenant.cache_hits = cache.hits;
    tenant.cache_misses = cache.misses;
    tenant.cache_evictions = cache.evictions;
    tenant.cache_entries = cache.entries;
    tenant.store_hits = cache.store_hits;
    tenant.store_writes = cache.store_writes;
    tenant.store_corrupt_skipped = cache.store_corrupt_skipped;
    response.tenants.push_back(std::move(tenant));
  }
  if (!tenant_filter.empty() && response.tenants.empty()) {
    response.code = StatusCode::kNotFound;
    response.message = "unknown tenant '" + tenant_filter + "'";
  }
  return response;
}

}  // namespace dcp
