#include "service/plan_server.h"

#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "core/plan_store.h"

namespace dcp {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PlanServeSource SourceFromOrigin(PlanOrigin origin) {
  switch (origin) {
    case PlanOrigin::kFresh:
      return PlanServeSource::kPlanned;
    case PlanOrigin::kMemoryCache:
      return PlanServeSource::kMemoryCache;
    case PlanOrigin::kStoreCache:
      return PlanServeSource::kStoreCache;
  }
  return PlanServeSource::kPlanned;
}

PlanServiceResponse ErrorResponse(StatusCode code, std::string message) {
  PlanServiceResponse response;
  response.code = code;
  response.message = std::move(message);
  return response;
}

}  // namespace

PlanServer::PlanServer(std::shared_ptr<TenantRegistry> registry,
                       PlanServerOptions options)
    : registry_(std::move(registry)), options_(options) {
  DCP_CHECK(registry_ != nullptr);
  DCP_CHECK_GE(options_.max_queue, 0);
}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start(const ServiceAddress& address) {
  if (running()) {
    return Status::FailedPrecondition("server already running");
  }
  StatusOr<Listener> listener = Listener::Bind(address);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(listener).value();
  bound_ = listener_.bound_address();
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.workers));
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (!options_.peers.empty() && options_.gossip_interval_ms > 0) {
    gossip_thread_ = std::thread([this] { GossipLoop(); });
  }
  return Status::Ok();
}

void PlanServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the accept thread first and only close the listener after joining it: closing
  // an fd another thread is polling is a data race, and a reused descriptor number
  // could silently redirect the accept loop onto an unrelated socket.
  listener_.Interrupt();
  gossip_cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      conn->socket.Shutdown();  // Unblocks the reader's RecvAll.
    }
  }
  // Join readers outside conns_mu_ (ReadLoop briefly takes it via WriteResponse paths).
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
  }
  // ThreadPool teardown drains queued jobs; their response writes hit shutdown sockets
  // and fail harmlessly.
  pool_.reset();
}

void PlanServer::AcceptLoop() {
  while (running()) {
    StatusOr<Socket> accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) {
        ReapFinishedConnections();
        continue;  // Timeout: poll the running flag again.
      }
      break;  // Listener closed (Stop) or a fatal accept error.
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
    ReapFinishedConnections();
  }
}

void PlanServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire) &&
          (*it)->pending_jobs.load(std::memory_order_acquire) == 0) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
  }
}

void PlanServer::ReadLoop(Connection* conn) {
  while (running()) {
    StatusOr<Frame> frame = ReadFrame(conn->socket, options_.max_frame_payload_bytes);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDataLoss) {
        // Corrupt or torn frame: count it, answer if the stream can still carry bytes,
        // and drop the connection — resynchronizing a corrupt stream is guesswork.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.malformed_frames;
        }
        WriteResponse(conn, FrameType::kErrorResponse,
                      SerializePlanServiceResponse(ErrorResponse(
                          StatusCode::kDataLoss, frame.status().message())));
      }
      break;  // Clean close, shutdown, or corrupt stream: either way, stop reading.
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_received;
    }
    // Backpressure: admit the request only if the in-flight budget allows. The reader
    // answers overload itself so a saturated worker pool still rejects promptly.
    const int admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (admitted >= options_.max_queue) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_overload;
      }
      const FrameType reply_type = frame.value().type == FrameType::kStatsRequest
                                       ? FrameType::kStatsResponse
                                       : FrameType::kPlanResponse;
      PlanServiceResponse overload = ErrorResponse(
          StatusCode::kUnavailable,
          "server overloaded: " + std::to_string(options_.max_queue) +
              " requests already in flight");
      if (reply_type == FrameType::kStatsResponse) {
        PlanServiceStatsResponse stats_overload;
        stats_overload.code = overload.code;
        stats_overload.message = overload.message;
        WriteResponse(conn, reply_type,
                      SerializePlanServiceStatsResponse(stats_overload));
      } else {
        WriteResponse(conn, reply_type, SerializePlanServiceResponse(overload));
      }
      continue;
    }
    if (frame.value().type == FrameType::kPlanRequest) {
      // Plan requests are decoded in the reader: per-tenant admission needs the tenant
      // name before a worker slot is committed, and deadline shedding needs the
      // arrival timestamp, not the (possibly much later) worker-pickup time.
      const int64_t arrival_ms = NowMs();
      StatusOr<PlanServiceRequest> request =
          DeserializePlanServiceRequest(frame.value().payload);
      if (!request.ok()) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.malformed_frames;
        }
        WriteResponse(conn, FrameType::kPlanResponse,
                      SerializePlanServiceResponse(ErrorResponse(
                          request.status().code(), request.status().message())));
        continue;
      }
      bool quota_held = false;
      if (options_.max_inflight_per_tenant > 0 &&
          registry_->Find(request.value().tenant) != nullptr) {
        std::lock_guard<std::mutex> lock(quota_mu_);
        int& inflight = tenant_inflight_[request.value().tenant];
        if (inflight >= options_.max_inflight_per_tenant) {
          in_flight_.fetch_sub(1, std::memory_order_acq_rel);
          {
            std::lock_guard<std::mutex> stats_lock(stats_mu_);
            ++stats_.shed_quota;
            ++tenant_counters_[request.value().tenant].shed_quota;
          }
          WriteResponse(
              conn, FrameType::kPlanResponse,
              SerializePlanServiceResponse(ErrorResponse(
                  StatusCode::kUnavailable,
                  "tenant '" + request.value().tenant + "' over quota: " +
                      std::to_string(options_.max_inflight_per_tenant) +
                      " requests already in flight")));
          continue;
        }
        ++inflight;
        quota_held = true;
      }
      conn->pending_jobs.fetch_add(1, std::memory_order_acq_rel);
      pool_->Submit([this, conn, request = std::move(request).value(), arrival_ms,
                     quota_held]() mutable {
        HandlePlanJob(conn, std::move(request), arrival_ms, quota_held);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        conn->pending_jobs.fetch_sub(1, std::memory_order_acq_rel);
      });
      continue;
    }
    conn->pending_jobs.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, conn, frame = std::move(frame).value()]() mutable {
      HandleFrame(conn, std::move(frame));
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      conn->pending_jobs.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  conn->socket.Shutdown();
  conn->done.store(true, std::memory_order_release);
}

void PlanServer::HandlePlanJob(Connection* conn, PlanServiceRequest request,
                               int64_t arrival_ms, bool quota_held) {
  if (options_.fault_injector != nullptr) {
    const FaultDecision fault = options_.fault_injector->Decide(FaultPoint::kServe);
    if (fault.action == FaultAction::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    } else if (fault.action == FaultAction::kFail) {
      WriteResponse(conn, FrameType::kPlanResponse,
                    SerializePlanServiceResponse(ErrorResponse(
                        StatusCode::kUnavailable, "fault injection: serve failed")));
      if (quota_held) {
        std::lock_guard<std::mutex> lock(quota_mu_);
        --tenant_inflight_[request.tenant];
      }
      return;
    }
  }
  PlanServiceResponse response;
  if (request.deadline_ms > 0 && NowMs() - arrival_ms >= request.deadline_ms) {
    // The caller's budget is already gone (it has timed out, failed over, or hedged
    // away); planning now would only steal workers from live requests.
    response = ErrorResponse(StatusCode::kDeadlineExceeded,
                             "deadline of " + std::to_string(request.deadline_ms) +
                                 "ms expired before planning started");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_deadline;
  } else {
    response = HandlePlanRequest(request);
  }
  WriteResponse(conn, FrameType::kPlanResponse,
                SerializePlanServiceResponse(response));
  if (quota_held) {
    std::lock_guard<std::mutex> lock(quota_mu_);
    --tenant_inflight_[request.tenant];
  }
}

void PlanServer::HandleFrame(Connection* conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kPlanRequest: {
      StatusOr<PlanServiceRequest> request =
          DeserializePlanServiceRequest(frame.payload);
      PlanServiceResponse response;
      if (!request.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
        response = ErrorResponse(request.status().code(), request.status().message());
      } else {
        response = HandlePlanRequest(request.value());
      }
      WriteResponse(conn, FrameType::kPlanResponse,
                    SerializePlanServiceResponse(response));
      return;
    }
    case FrameType::kSyncRequest: {
      StatusOr<PlanSyncRequest> request = DeserializePlanSyncRequest(frame.payload);
      PlanSyncResponse response;
      if (!request.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
        response.code = request.status().code();
        response.message = request.status().message();
      } else {
        response = HandleSyncRequest(request.value());
      }
      WriteResponse(conn, FrameType::kSyncResponse,
                    SerializePlanSyncResponse(response));
      return;
    }
    case FrameType::kStatsRequest: {
      StatusOr<PlanServiceStatsRequest> request =
          DeserializePlanServiceStatsRequest(frame.payload);
      PlanServiceStatsResponse response;
      if (!request.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
        response.code = request.status().code();
        response.message = request.status().message();
      } else {
        response = BuildStatsResponse(request.value().tenant);
      }
      WriteResponse(conn, FrameType::kStatsResponse,
                    SerializePlanServiceStatsResponse(response));
      return;
    }
    default: {
      // Well-framed but not a request type: answer with an error and keep the
      // connection (framing is intact, the client just sent nonsense).
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed_frames;
      }
      WriteResponse(conn, FrameType::kErrorResponse,
                    SerializePlanServiceResponse(ErrorResponse(
                        StatusCode::kInvalidArgument,
                        "frame type " +
                            std::to_string(static_cast<uint32_t>(frame.type)) +
                            " is not a request")));
      return;
    }
  }
}

PlanServiceResponse PlanServer::HandlePlanRequest(const PlanServiceRequest& request) {
  const std::shared_ptr<Engine> engine = registry_->Find(request.tenant);
  PlanServiceResponse response;
  if (engine == nullptr) {
    // Counted only in the service-wide plan_errors: keying tenant_counters_ on
    // arbitrary unknown names would let a client cycling bogus tenants grow server
    // memory without bound (and the entries would never surface in stats anyway).
    response = ErrorResponse(StatusCode::kNotFound,
                             "unknown tenant '" + request.tenant + "'");
  } else {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++tenant_counters_[request.tenant].requests;
    }
    // Gossip-adopted warm tier: a peer may have planned this exact shape already. The
    // signature is computable without planning, except under auto-tune with block 0
    // (the chosen block size — part of the signature — is only known after tuning).
    if (!(engine->options().auto_tune_block_size && request.block_size == 0)) {
      StatusOr<PlanSignature> sig = engine->RequestSignature(
          request.seqlens, request.mask_spec, request.block_size);
      if (sig.ok()) {
        if (std::shared_ptr<const std::string> record =
                ReplicaRecordLookup(sig.value())) {
          response.source = PlanServeSource::kReplicaCache;
          response.signature_lo = sig.value().lo;
          response.signature_hi = sig.value().hi;
          response.record = *record;
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.replica_cache_hits;
          ++stats_.plan_ok;
          return response;
        }
      }
    }
    StatusOr<Engine::PlannedOutcome> planned =
        engine->PlanDetailed(request.seqlens, request.mask_spec, request.block_size);
    if (!planned.ok()) {
      response = ErrorResponse(planned.status().code(), planned.status().message());
    } else {
      const PlanHandle& handle = planned.value().handle;
      response.source = SourceFromOrigin(planned.value().origin);
      response.signature_lo = handle->signature.lo;
      response.signature_hi = handle->signature.hi;
      // The wire carries the persistence format: one CRC-trailed PlanStore record,
      // encoded once per signature and replayed from the record LRU on later hits.
      response.record = *EncodedRecordFor(handle);
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (response.code == StatusCode::kOk) {
    ++stats_.plan_ok;
  } else {
    ++stats_.plan_errors;
    if (engine != nullptr) {
      ++tenant_counters_[request.tenant].plan_errors;
    }
  }
  return response;
}

std::shared_ptr<const std::string> PlanServer::EncodedRecordFor(
    const PlanHandle& handle) {
  if (options_.record_cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(record_cache_mu_);
    const auto it = record_cache_.find(handle->signature);
    if (it != record_cache_.end()) {
      record_lru_.splice(record_lru_.begin(), record_lru_, it->second);
      return it->second->second;
    }
  }
  // Encode outside the lock: it is the expensive part, and two racing encoders of the
  // same signature produce identical bytes anyway.
  auto record = std::make_shared<const std::string>(
      PlanStore::EncodeRecord(handle->signature, handle->plan));
  if (options_.record_cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(record_cache_mu_);
    if (record_cache_.find(handle->signature) == record_cache_.end()) {
      record_lru_.emplace_front(handle->signature, record);
      record_cache_.emplace(handle->signature, record_lru_.begin());
      while (static_cast<int>(record_lru_.size()) > options_.record_cache_capacity) {
        record_cache_.erase(record_lru_.back().first);
        record_lru_.pop_back();
      }
    }
  }
  return record;
}

std::shared_ptr<const std::string> PlanServer::ReplicaRecordLookup(
    const PlanSignature& sig) {
  std::lock_guard<std::mutex> lock(replica_cache_mu_);
  const auto it = replica_cache_.find(sig);
  if (it == replica_cache_.end()) {
    return nullptr;
  }
  replica_lru_.splice(replica_lru_.begin(), replica_lru_, it->second);
  return it->second->second;
}

void PlanServer::ReplicaRecordAdopt(const PlanSignature& sig,
                                    std::shared_ptr<const std::string> record) {
  if (options_.replica_record_cache_capacity <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(replica_cache_mu_);
  if (replica_cache_.find(sig) != replica_cache_.end()) {
    return;
  }
  replica_lru_.emplace_front(sig, std::move(record));
  replica_cache_.emplace(sig, replica_lru_.begin());
  while (static_cast<int>(replica_lru_.size()) >
         options_.replica_record_cache_capacity) {
    replica_cache_.erase(replica_lru_.back().first);
    replica_lru_.pop_back();
  }
}

PlanSyncResponse PlanServer::HandleSyncRequest(const PlanSyncRequest& request) {
  PlanSyncResponse response;
  const std::shared_ptr<Engine> engine = registry_->Find(request.tenant);
  if (engine == nullptr) {
    response.code = StatusCode::kNotFound;
    response.message = "unknown tenant '" + request.tenant + "'";
    return response;
  }
  std::unordered_set<PlanSignature, PlanSignatureHash> peer_has;
  peer_has.reserve(request.have.size());
  for (const auto& pair : request.have) {
    PlanSignature sig;
    sig.lo = pair.first;
    sig.hi = pair.second;
    peer_has.insert(sig);
  }
  // Ship what the peer lacks: this engine's own compiled plans first (the authoritative
  // copies), then records we ourselves adopted from other replicas — gossip is
  // transitive, so a plan computed once reaches replicas that never talk directly.
  std::unordered_set<PlanSignature, PlanSignatureHash> shipped;
  const int cap = std::max(0, options_.max_sync_records_per_exchange);
  for (const PlanHandle& handle : engine->CachedPlans()) {
    if (static_cast<int>(response.records.size()) >= cap) {
      break;
    }
    if (peer_has.count(handle->signature) != 0 ||
        !shipped.insert(handle->signature).second) {
      continue;
    }
    response.records.push_back(*EncodedRecordFor(handle));
  }
  {
    std::lock_guard<std::mutex> lock(replica_cache_mu_);
    for (const auto& entry : replica_lru_) {
      if (static_cast<int>(response.records.size()) >= cap) {
        break;
      }
      if (peer_has.count(entry.first) != 0 || !shipped.insert(entry.first).second) {
        continue;
      }
      response.records.push_back(*entry.second);
    }
  }
  if (options_.fault_injector != nullptr) {
    for (std::string& record : response.records) {
      const FaultDecision fault =
          options_.fault_injector->Decide(FaultPoint::kSyncRecord);
      if (fault.action == FaultAction::kStale && !record.empty()) {
        // A "stale" replica ships a record whose bytes no longer match its CRC — the
        // receiver must catch this in validation, never adopt it.
        record[record.size() / 2] ^= 0x20;
      }
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.sync_records_shipped += static_cast<int64_t>(response.records.size());
  return response;
}

std::vector<std::pair<uint64_t, uint64_t>> PlanServer::LocalSignatureIndex(
    Engine& engine) {
  std::vector<std::pair<uint64_t, uint64_t>> index;
  for (const PlanHandle& handle : engine.CachedPlans()) {
    index.emplace_back(handle->signature.lo, handle->signature.hi);
  }
  std::lock_guard<std::mutex> lock(replica_cache_mu_);
  for (const auto& entry : replica_lru_) {
    index.emplace_back(entry.first.lo, entry.first.hi);
  }
  return index;
}

void PlanServer::GossipLoop() {
  while (running()) {
    {
      std::unique_lock<std::mutex> lock(gossip_mu_);
      gossip_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.gossip_interval_ms),
                          [this] { return !running(); });
    }
    if (!running()) {
      return;
    }
    for (const ServiceAddress& peer : options_.peers) {
      if (!running()) {
        return;
      }
      GossipWithPeer(peer);
    }
  }
}

void PlanServer::GossipWithPeer(const ServiceAddress& peer) {
  // A dead or slow peer must not wedge the gossip thread: short connect budget, bounded
  // I/O, and any failure simply waits for the next round.
  StatusOr<Socket> socket = ConnectSocket(peer, /*timeout_ms=*/1000);
  if (!socket.ok()) {
    return;
  }
  socket.value().set_io_timeout_ms(2000);
  for (const std::string& tenant : registry_->Names()) {
    const std::shared_ptr<Engine> engine = registry_->Find(tenant);
    if (engine == nullptr) {
      continue;
    }
    PlanSyncRequest request;
    request.tenant = tenant;
    request.have = LocalSignatureIndex(*engine);
    if (!WriteFrame(socket.value(), FrameType::kSyncRequest,
                    SerializePlanSyncRequest(request))
             .ok()) {
      return;
    }
    StatusOr<Frame> reply = ReadFrame(socket.value(), kMaxFramePayloadBytes);
    if (!reply.ok() || reply.value().type != FrameType::kSyncResponse) {
      return;  // Torn exchange or a peer that doesn't speak sync: drop the round.
    }
    StatusOr<PlanSyncResponse> response =
        DeserializePlanSyncResponse(reply.value().payload);
    if (!response.ok() || response.value().code != StatusCode::kOk) {
      continue;  // E.g. the peer doesn't host this tenant; other tenants may still sync.
    }
    for (const std::string& record : response.value().records) {
      // Full validation before adoption: DecodeRecord re-checks the CRC and decodes
      // every field, so a stale/corrupt peer record is counted and dropped here.
      StatusOr<std::pair<PlanSignature, BatchPlan>> decoded =
          PlanStore::DecodeRecord(record);
      if (!decoded.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.sync_records_rejected;
        continue;
      }
      if (ReplicaRecordLookup(decoded.value().first) != nullptr) {
        continue;  // Raced another gossip round; already warm.
      }
      ReplicaRecordAdopt(decoded.value().first,
                         std::make_shared<const std::string>(record));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sync_records_adopted;
    }
  }
}

void PlanServer::WriteResponse(Connection* conn, FrameType type,
                               std::string_view payload) {
  Status sent = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    sent = WriteFrame(conn->socket, type, payload);
  }
  if (sent.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses_sent;
  }
  // A failed write means the peer is gone; its reader will notice on the next read.
}

PlanServerStats PlanServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

PlanServiceStatsResponse PlanServer::BuildStatsResponse(
    const std::string& tenant_filter) const {
  PlanServiceStatsResponse response;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    response.connections_accepted = stats_.connections_accepted;
    response.requests_received = stats_.requests_received;
    response.responses_sent = stats_.responses_sent;
    response.rejected_overload = stats_.rejected_overload;
    response.malformed_frames = stats_.malformed_frames;
    response.shed_deadline = stats_.shed_deadline;
    response.sync_records_shipped = stats_.sync_records_shipped;
    response.sync_records_adopted = stats_.sync_records_adopted;
  }
  for (const std::string& name : registry_->Names()) {
    if (!tenant_filter.empty() && name != tenant_filter) {
      continue;
    }
    const std::shared_ptr<Engine> engine = registry_->Find(name);
    if (engine == nullptr) {
      continue;
    }
    const PlanCacheStats cache = engine->cache_stats();
    PlanServiceTenantStats tenant;
    tenant.tenant = name;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      const auto it = tenant_counters_.find(name);
      if (it != tenant_counters_.end()) {
        tenant.requests = it->second.requests;
        tenant.plan_errors = it->second.plan_errors;
        tenant.shed_quota = it->second.shed_quota;
      }
    }
    tenant.cache_hits = cache.hits;
    tenant.cache_misses = cache.misses;
    tenant.cache_evictions = cache.evictions;
    tenant.cache_entries = cache.entries;
    tenant.store_hits = cache.store_hits;
    tenant.store_writes = cache.store_writes;
    tenant.store_corrupt_skipped = cache.store_corrupt_skipped;
    response.tenants.push_back(std::move(tenant));
  }
  if (!tenant_filter.empty() && response.tenants.empty()) {
    response.code = StatusCode::kNotFound;
    response.message = "unknown tenant '" + tenant_filter + "'";
  }
  return response;
}

}  // namespace dcp
