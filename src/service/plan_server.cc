#include "service/plan_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "core/plan_store.h"

namespace dcp {
namespace {

int64_t NowMs() { return metrics::MonotonicMillis(); }

PlanServeSource SourceFromOrigin(PlanOrigin origin) {
  switch (origin) {
    case PlanOrigin::kFresh:
      return PlanServeSource::kPlanned;
    case PlanOrigin::kMemoryCache:
      return PlanServeSource::kMemoryCache;
    case PlanOrigin::kStoreCache:
      return PlanServeSource::kStoreCache;
  }
  return PlanServeSource::kPlanned;
}

PlanServiceResponse ErrorResponse(StatusCode code, std::string message) {
  PlanServiceResponse response;
  response.code = code;
  response.message = std::move(message);
  return response;
}

// Longest accept backoff under sustained pressure (EMFILE storms): short enough that
// recovery is prompt, long enough that a full fd table doesn't spin the loop.
constexpr int64_t kMaxAcceptBackoffMs = 200;
// Frames gathered per writev: 3 iovecs each (head, record body, crc trailer).
constexpr size_t kMaxFramesPerWritev = 4;
constexpr int kMaxIovPerWritev = 12;

}  // namespace

struct PlanServer::PlanJob {
  std::string payload;  // Wire bytes; view.tenant / view.seqlens alias into these.
  Arena arena;
  PlanServiceRequestView view;
  std::string tenant;  // Owned copy: registry / quota / counter keys outlive payload.
  int64_t arrival_ms = 0;
  int64_t arrival_us = 0;  // Same instant as arrival_ms; trace/phase resolution.
  bool quota_held = false;
};

PlanServer::PlanServer(std::shared_ptr<TenantRegistry> registry,
                       PlanServerOptions options)
    : registry_(std::move(registry)),
      options_(options),
      trace_ring_(std::max(1, options.trace_ring_capacity)) {
  DCP_CHECK(registry_ != nullptr);
  DCP_CHECK_GE(options_.max_queue, 0);
  metrics_ = metrics::Registry::NewAttached({});
  const auto counter = [this](const char* name, const char* help) {
    return metrics_->GetCounter(name, {}, help);
  };
  counters_.connections_accepted =
      counter("dcp_server_connections_accepted_total", "Accepted connections");
  counters_.requests_received = counter("dcp_server_requests_received_total",
                                        "Well-formed request frames received");
  counters_.responses_sent =
      counter("dcp_server_responses_sent_total", "Response frames fully written");
  counters_.plan_ok = counter("dcp_server_plan_ok_total", "Plan requests served OK");
  counters_.plan_errors = counter("dcp_server_plan_errors_total",
                                  "Plan requests answered with a non-OK status");
  counters_.rejected_overload = counter("dcp_server_rejected_overload_total",
                                        "Requests rejected at the in-flight bound");
  counters_.malformed_frames =
      counter("dcp_server_malformed_frames_total", "Malformed or torn frames");
  counters_.shed_quota = counter("dcp_server_shed_quota_total",
                                 "Requests rejected over a tenant's quota");
  counters_.shed_deadline = counter("dcp_server_shed_deadline_total",
                                    "Requests dropped with an expired deadline");
  counters_.replica_cache_hits = counter(
      "dcp_server_replica_cache_hits_total", "Served from gossip-adopted records");
  counters_.sync_records_shipped = counter("dcp_server_sync_records_shipped_total",
                                           "Records shipped to gossip peers");
  counters_.sync_records_adopted = counter("dcp_server_sync_records_adopted_total",
                                           "Peer records validated and adopted");
  counters_.sync_records_rejected = counter("dcp_server_sync_records_rejected_total",
                                            "Peer records that failed validation");
  counters_.accept_soft_errors = counter("dcp_server_accept_soft_errors_total",
                                         "Transient accept failures (backoff+retry)");
  counters_.zero_copy_serves = counter("dcp_server_zero_copy_serves_total",
                                       "Responses written from shared record bytes");
  counters_.slow_reader_closes = counter("dcp_server_slow_reader_closes_total",
                                         "Connections shed at the outbox bound");
}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start(const ServiceAddress& address) {
  if (running()) {
    return Status::FailedPrecondition("server already running");
  }
  StatusOr<Listener> listener = Listener::Bind(address, options_.listen_backlog);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(listener).value();
  bound_ = listener_.bound_address();
  // The loops accept with non-blocking accept(2) + readiness events, not the
  // Listener's own blocking Accept().
  const int flags = ::fcntl(listener_.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(listener_.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    listener_.Close();
    return Status::Internal("cannot make listener non-blocking");
  }
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.workers));
  const int num_loops = std::max(1, options_.io_threads);
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<IoLoop>(!options_.force_poll_backend);
    loop->index = i;
    const std::vector<metrics::Label> loop_labels = {{"loop", std::to_string(i)}};
    loop->queue_depth = metrics_->GetGauge(
        "dcp_server_loop_queue_depth", loop_labels,
        "Response frames queued across this IO loop's connections");
    loop->output_queue_bytes = metrics_->GetGauge(
        "dcp_server_loop_output_queue_bytes", loop_labels,
        "Response bytes queued across this IO loop's connections");
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) {
      loops_.clear();
      pool_.reset();
      listener_.Close();
      return Status::Internal("cannot create IO loop eventfd");
    }
    Status added = loop->poller.Add(loop->wake_fd, /*want_read=*/true,
                                    /*want_write=*/false);
    if (added.ok() && i == 0) {
      added = loop->poller.Add(listener_.fd(), /*want_read=*/true,
                               /*want_write=*/false);
    }
    if (!added.ok()) {
      ::close(loop->wake_fd);
      loops_.clear();
      pool_.reset();
      listener_.Close();
      return added;
    }
    loops_.push_back(std::move(loop));
  }
  // Publish the loops_ facts stats pollers read, BEFORE running_ flips: a bench or
  // stats thread observing running() must never deref loops_ itself — Stop() clears
  // that vector concurrently with late pollers.
  io_thread_count_.store(static_cast<int>(loops_.size()), std::memory_order_release);
  poller_backend_.store(static_cast<int>(loops_[0]->poller.backend()),
                        std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    IoLoop* raw = loop.get();
    raw->thread = std::thread([this, raw] { IoLoopMain(*raw); });
  }
  if (!options_.peers.empty() && options_.gossip_interval_ms > 0) {
    gossip_thread_ = std::thread([this] { GossipLoop(); });
  }
  return Status::Ok();
}

void PlanServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  io_thread_count_.store(0, std::memory_order_release);
  for (auto& loop : loops_) {
    Wake(*loop);
  }
  gossip_cv_.NotifyAll();
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) {
      loop->thread.join();
    }
  }
  // ThreadPool teardown drains queued jobs; their responses land in outboxes nothing
  // will flush, which is harmless — the connections close right below. The pool must
  // drain BEFORE the connections are freed: jobs hold raw Connection pointers.
  pool_.reset();
  for (auto& loop : loops_) {
    loop->conns.clear();  // Closes every socket; blocked clients see EOF.
    loop->graveyard.clear();
    {
      MutexLock lock(loop->mu);
      loop->incoming.clear();
      loop->notify_queue.clear();
    }
    if (loop->wake_fd >= 0) {
      ::close(loop->wake_fd);
      loop->wake_fd = -1;
    }
  }
  loops_.clear();
  listener_.Close();
}

void PlanServer::Wake(IoLoop& loop) {
  if (loop.wake_fd < 0) {
    return;
  }
  const uint64_t one = 1;
  ssize_t written;
  do {
    written = ::write(loop.wake_fd, &one, sizeof(one));
  } while (written < 0 && errno == EINTR);
}

void PlanServer::DrainWake(IoLoop& loop) {
  uint64_t count = 0;
  while (::read(loop.wake_fd, &count, sizeof(count)) > 0) {
  }
}

void PlanServer::IoLoopMain(IoLoop& loop) {
  std::vector<Poller::Event> events;
  while (running()) {
    int timeout_ms = 50;
    if (loop.accept_paused) {
      const int64_t until = loop.accept_resume_ms - NowMs();
      timeout_ms = static_cast<int>(std::clamp<int64_t>(until, 1, timeout_ms));
    }
    (void)loop.poller.Wait(timeout_ms, &events);
    if (!running()) {
      break;
    }
    for (const Poller::Event& ev : events) {
      if (ev.fd == loop.wake_fd) {
        DrainWake(loop);
        continue;
      }
      if (loop.index == 0 && ev.fd == listener_.fd()) {
        DoAccept(loop);
        continue;
      }
      auto it = loop.conns.find(ev.fd);
      if (it == loop.conns.end()) {
        continue;  // Closed earlier in this batch.
      }
      Connection* conn = it->second.get();
      if (ev.writable) {
        FlushWrites(loop, conn);
        // FlushWrites may close the connection; re-check before reading.
        auto again = loop.conns.find(ev.fd);
        if (again == loop.conns.end() || again->second.get() != conn) {
          continue;
        }
      }
      if (ev.readable || ev.hangup) {
        if (conn->read_open) {
          OnReadable(loop, conn);
        } else if (ev.hangup) {
          // Peer fully gone (RST / both halves closed): pending responses are
          // undeliverable, so stop holding the connection for them.
          CloseConn(loop, conn);
        }
      }
    }
    if (loop.accept_paused && NowMs() >= loop.accept_resume_ms) {
      ResumeAccept(loop);
    }
    AdoptIncoming(loop);
    ProcessNotifies(loop);
    // Half-closed connections whose last worker job finished since the response was
    // flushed have no event left to trigger them; sweep them on the tick.
    std::vector<Connection*> lingering;
    for (auto& entry : loop.conns) {
      if (!entry.second->read_open || entry.second->close_after_drain) {
        lingering.push_back(entry.second.get());
      }
    }
    for (Connection* conn : lingering) {
      MaybeFinish(loop, conn);
    }
    Reap(loop);
  }
}

void PlanServer::DoAccept(IoLoop& loop) {
  while (running()) {
    if (options_.fault_injector != nullptr) {
      const FaultDecision fault = options_.fault_injector->Decide(FaultPoint::kAccept);
      if (fault.action == FaultAction::kFail || fault.action == FaultAction::kTear) {
        // Simulated transient accept-path pressure (EMFILE/ECONNABORTED). The pending
        // connection is NOT consumed — it stays in the backlog for the retry.
        counters_.accept_soft_errors->Increment();
        PauseAccept(loop);
        return;
      }
    }
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        loop.accept_backoff_ms = 1;  // Backlog drained: pressure (if any) is over.
        return;
      }
      // EMFILE, ENFILE, ECONNABORTED, ENOBUFS, ...: every real accept errno here is
      // transient operational pressure, not a programming error. Count it, back off,
      // retry — the one thing an accept loop must never do is exit and turn a full fd
      // table into a permanently deaf server.
      counters_.accept_soft_errors->Increment();
      PauseAccept(loop);
      return;
    }
    loop.accept_backoff_ms = 1;
    (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
    if (bound_.kind == ServiceAddress::Kind::kTcp) {
      // Plan RPCs are small request / large response; never trade latency for batching.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    counters_.connections_accepted->Increment();
    auto conn = std::make_unique<Connection>(options_.max_frame_payload_bytes);
    conn->socket = Socket(fd);
    // Chaos mode (dcpctl serve --chaos) faults server-side IO too.
    conn->socket.set_fault_injector(GlobalFaultInjector());
    conn->fd = fd;
    const int target =
        static_cast<int>(next_loop_.fetch_add(1, std::memory_order_relaxed) %
                         loops_.size());
    conn->loop_index = target;
    if (target == loop.index) {
      AdoptConnection(loop, std::move(conn));
    } else {
      IoLoop& peer = *loops_[target];
      {
        MutexLock lock(peer.mu);
        peer.incoming.push_back(std::move(conn));
      }
      Wake(peer);
    }
  }
}

void PlanServer::PauseAccept(IoLoop& loop) {
  if (!loop.accept_paused) {
    loop.poller.Remove(listener_.fd());
    loop.accept_paused = true;
  }
  loop.accept_resume_ms = NowMs() + loop.accept_backoff_ms;
  loop.accept_backoff_ms = std::min(loop.accept_backoff_ms * 2, kMaxAcceptBackoffMs);
}

void PlanServer::ResumeAccept(IoLoop& loop) {
  loop.accept_paused = false;
  (void)loop.poller.Add(listener_.fd(), /*want_read=*/true, /*want_write=*/false);
  DoAccept(loop);  // The backlog may already hold connections; no edge will fire.
}

void PlanServer::AdoptConnection(IoLoop& loop, std::unique_ptr<Connection> conn) {
  Connection* raw = conn.get();
  (void)raw->socket.SetNonBlocking(true);
  if (!loop.poller.Add(raw->fd, /*want_read=*/true, /*want_write=*/false).ok()) {
    return;  // Destroys (closes) the connection.
  }
  loop.conns.emplace(raw->fd, std::move(conn));
  // Bytes may already be waiting (level-triggered pollers would report them, but only
  // on the next Wait; serve them now).
  OnReadable(loop, raw);
}

void PlanServer::AdoptIncoming(IoLoop& loop) {
  std::vector<std::unique_ptr<Connection>> incoming;
  {
    MutexLock lock(loop.mu);
    incoming.swap(loop.incoming);
  }
  for (auto& conn : incoming) {
    AdoptConnection(loop, std::move(conn));
  }
}

void PlanServer::ProcessNotifies(IoLoop& loop) {
  std::vector<Connection*> pending;
  {
    MutexLock lock(loop.mu);
    pending.swap(loop.notify_queue);
  }
  for (Connection* conn : pending) {
    {
      MutexLock lock(conn->mu);
      conn->notified = false;
    }
    // The connection may have been closed (graveyarded) since the notify was queued;
    // only flush it if it is still this loop's live conn for that fd.
    auto it = loop.conns.find(conn->fd);
    if (it == loop.conns.end() || it->second.get() != conn) {
      continue;
    }
    FlushWrites(loop, conn);
  }
}

void PlanServer::OnReadable(IoLoop& loop, Connection* conn) {
  char buf[64 * 1024];
  while (conn->read_open) {
    const IoResult r = conn->socket.ReadSome(buf, sizeof(buf));
    switch (r.kind) {
      case IoResult::Kind::kProgress:
        conn->assembler.Append(buf, r.bytes);
        ProcessInbound(loop, conn);
        if (conn->close_after_drain) {
          conn->read_open = false;
          (void)loop.poller.Modify(conn->fd, /*want_read=*/false,
                                   conn->registered_write);
          MaybeFinish(loop, conn);
          return;
        }
        continue;
      case IoResult::Kind::kWouldBlock:
        return;
      case IoResult::Kind::kEof:
        if (conn->assembler.buffered_bytes() > 0 && !conn->assembler.failed()) {
          // The peer closed mid-frame: a torn frame, counted like any other.
          counters_.malformed_frames->Increment();
        }
        conn->read_open = false;
        (void)loop.poller.Modify(conn->fd, /*want_read=*/false,
                                 conn->registered_write);
        MaybeFinish(loop, conn);
        return;
      case IoResult::Kind::kError:
        CloseConn(loop, conn);
        return;
    }
  }
}

void PlanServer::ProcessInbound(IoLoop& loop, Connection* conn) {
  while (!conn->close_after_drain) {
    StatusOr<Frame> frame = conn->assembler.Next();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) {
        return;  // Need more bytes.
      }
      // Corrupt or oversized frame: count it, answer, and drain-then-close — framing
      // sync is gone, but queued responses still go out first.
      counters_.malformed_frames->Increment();
      QueueResponse(conn, EncodeFrameParts(FrameType::kErrorResponse,
                                           SerializePlanServiceResponse(ErrorResponse(
                                               StatusCode::kDataLoss,
                                               frame.status().message()))));
      conn->close_after_drain = true;
      return;
    }
    HandleInboundFrame(loop, conn, std::move(frame).value());
  }
}

void PlanServer::HandleInboundFrame(IoLoop& loop, Connection* conn, Frame frame) {
  (void)loop;
  counters_.requests_received->Increment();
  // Backpressure: admit the request only if the in-flight budget allows. The loop
  // answers overload itself so a saturated worker pool still rejects promptly. The
  // rejection frame matches the request's frame type — a kSyncRequest must never be
  // answered with a kPlanResponse the sync client cannot decode.
  const int admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= options_.max_queue) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    counters_.rejected_overload->Increment();
    const std::string message = "server overloaded: " +
                                std::to_string(options_.max_queue) +
                                " requests already in flight";
    switch (frame.type) {
      case FrameType::kStatsRequest: {
        PlanServiceStatsResponse overload;
        overload.code = StatusCode::kUnavailable;
        overload.message = message;
        QueueResponse(conn,
                      EncodeFrameParts(FrameType::kStatsResponse,
                                       SerializePlanServiceStatsResponse(overload)));
        break;
      }
      case FrameType::kSyncRequest: {
        PlanSyncResponse overload;
        overload.code = StatusCode::kUnavailable;
        overload.message = message;
        QueueResponse(conn, EncodeFrameParts(FrameType::kSyncResponse,
                                             SerializePlanSyncResponse(overload)));
        break;
      }
      case FrameType::kMetricsRequest: {
        PlanServiceMetricsResponse overload;
        overload.code = StatusCode::kUnavailable;
        overload.message = message;
        QueueResponse(
            conn, EncodeFrameParts(FrameType::kMetricsResponse,
                                   SerializePlanServiceMetricsResponse(overload)));
        break;
      }
      default:
        QueueResponse(conn,
                      EncodeFrameParts(FrameType::kPlanResponse,
                                       SerializePlanServiceResponse(ErrorResponse(
                                           StatusCode::kUnavailable, message))));
        break;
    }
    return;
  }
  if (frame.type == FrameType::kPlanRequest) {
    // Plan requests are decoded on the loop thread: per-tenant admission needs the
    // tenant name before a worker slot is committed, and deadline shedding needs the
    // arrival timestamp, not the (possibly much later) worker-pickup time. The decode
    // is views + one arena array over the payload — no per-field allocations.
    auto job = std::make_shared<PlanJob>();
    job->payload = std::move(frame.payload);
    job->arrival_us = metrics::MonotonicMicros();
    job->arrival_ms = job->arrival_us / 1000;
    StatusOr<PlanServiceRequestView> view =
        DeserializePlanServiceRequestView(job->payload, &job->arena);
    if (!view.ok()) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      counters_.malformed_frames->Increment();
      QueueResponse(conn, EncodeFrameParts(FrameType::kPlanResponse,
                                           SerializePlanServiceResponse(ErrorResponse(
                                               view.status().code(),
                                               view.status().message()))));
      return;
    }
    job->view = view.value();
    job->tenant = std::string(job->view.tenant);
    if (options_.max_inflight_per_tenant > 0 &&
        registry_->Find(job->tenant) != nullptr) {
      bool over_quota = false;
      {
        MutexLock lock(quota_mu_);
        int& inflight = tenant_inflight_[job->tenant];
        if (inflight >= options_.max_inflight_per_tenant) {
          over_quota = true;
        } else {
          ++inflight;
          job->quota_held = true;
        }
      }
      // Counters and the rejection frame run outside quota_mu_: the counter path
      // takes stats_mu_ and the registry mutex, and quota_mu_ stays a leaf.
      if (over_quota) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        counters_.shed_quota->Increment();
        TenantCountersFor(job->tenant).shed_quota->Increment();
        QueueResponse(
            conn, EncodeFrameParts(
                      FrameType::kPlanResponse,
                      SerializePlanServiceResponse(ErrorResponse(
                          StatusCode::kUnavailable,
                          "tenant '" + job->tenant + "' over quota: " +
                              std::to_string(options_.max_inflight_per_tenant) +
                              " requests already in flight"))));
        return;
      }
    }
    conn->pending_jobs.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, conn, job] {
      HandlePlanJob(conn, job);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      // Last touch of `conn`: the owning loop frees it only at pending_jobs == 0.
      conn->pending_jobs.fetch_sub(1, std::memory_order_acq_rel);
    });
    return;
  }
  conn->pending_jobs.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit([this, conn, frame = std::move(frame)]() mutable {
    HandleFrame(conn, std::move(frame));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    conn->pending_jobs.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void PlanServer::FlushWrites(IoLoop& loop, Connection* conn) {
  while (true) {
    iovec iov[kMaxIovPerWritev];
    int iovcnt = 0;
    bool dead = false;
    {
      MutexLock lock(conn->mu);
      dead = conn->dead;
      if (!dead) {
        // Gather up to kMaxFramesPerWritev frames' unwritten segments. Workers only
        // ever push_back and the loop thread alone pops, so the deque elements (and
        // the shared record bytes they point at) stay stable while writev runs
        // outside the lock.
        size_t offset = conn->front_offset;
        size_t frames = 0;
        for (auto it = conn->outbox.begin();
             it != conn->outbox.end() && frames < kMaxFramesPerWritev; ++it, ++frames) {
          const FrameParts& parts = *it;
          if (offset < parts.head.size()) {
            iov[iovcnt].iov_base = const_cast<char*>(parts.head.data()) + offset;
            iov[iovcnt].iov_len = parts.head.size() - offset;
            ++iovcnt;
            offset = 0;
          } else {
            offset -= parts.head.size();
          }
          const size_t body = parts.body_size();
          if (body > 0) {
            if (offset < body) {
              iov[iovcnt].iov_base = const_cast<char*>(parts.body->data()) + offset;
              iov[iovcnt].iov_len = body - offset;
              ++iovcnt;
              offset = 0;
            } else {
              offset -= body;
            }
          }
          if (offset < parts.crc.size()) {
            iov[iovcnt].iov_base = const_cast<char*>(parts.crc.data()) + offset;
            iov[iovcnt].iov_len = parts.crc.size() - offset;
            ++iovcnt;
            offset = 0;
          } else {
            offset -= parts.crc.size();
          }
        }
      }
    }
    if (dead) {
      CloseConn(loop, conn);
      return;
    }
    if (iovcnt == 0) {
      if (conn->registered_write) {
        conn->registered_write = false;
        (void)loop.poller.Modify(conn->fd, conn->read_open, /*want_write=*/false);
      }
      MaybeFinish(loop, conn);
      return;
    }
    const IoResult r = conn->socket.Writev(iov, iovcnt);
    switch (r.kind) {
      case IoResult::Kind::kProgress: {
        size_t completed = 0;
        size_t completed_bytes = 0;
        std::vector<PendingResponseTrace> drained_traces;
        {
          MutexLock lock(conn->mu);
          conn->front_offset += r.bytes;
          while (!conn->outbox.empty() &&
                 conn->front_offset >= conn->outbox.front().TotalBytes()) {
            conn->front_offset -= conn->outbox.front().TotalBytes();
            conn->outbox_bytes -= conn->outbox.front().TotalBytes();
            completed_bytes += conn->outbox.front().TotalBytes();
            conn->outbox.pop_front();
            if (conn->outbox_traces.front().armed()) {
              drained_traces.push_back(std::move(conn->outbox_traces.front()));
            }
            conn->outbox_traces.pop_front();
            ++completed;
          }
        }
        if (completed > 0) {
          counters_.responses_sent->Add(static_cast<int64_t>(completed));
          loop.queue_depth->Add(-static_cast<int64_t>(completed));
          loop.output_queue_bytes->Add(-static_cast<int64_t>(completed_bytes));
        }
        // Finalized outside conn->mu: the slow log and histogram lookups must not
        // ride under a lock QueueResponse contends for.
        for (PendingResponseTrace& pending : drained_traces) {
          FinalizeResponseTrace(pending, /*drained=*/true);
        }
        continue;
      }
      case IoResult::Kind::kWouldBlock:
        if (!conn->registered_write) {
          conn->registered_write = true;
          (void)loop.poller.Modify(conn->fd, conn->read_open, /*want_write=*/true);
        }
        return;
      case IoResult::Kind::kEof:
      case IoResult::Kind::kError:
        CloseConn(loop, conn);
        return;
    }
  }
}

void PlanServer::CloseConn(IoLoop& loop, Connection* conn) {
  std::vector<PendingResponseTrace> discarded;
  {
    MutexLock lock(conn->mu);
    conn->dead = true;
    if (!conn->outbox.empty()) {
      loop.queue_depth->Add(-static_cast<int64_t>(conn->outbox.size()));
      loop.output_queue_bytes->Add(-static_cast<int64_t>(conn->outbox_bytes));
    }
    conn->outbox.clear();
    for (PendingResponseTrace& pending : conn->outbox_traces) {
      if (pending.armed()) {
        discarded.push_back(std::move(pending));
      }
    }
    conn->outbox_traces.clear();
    conn->outbox_bytes = 0;
  }
  // Undelivered responses still leave a trace (ok stays as served; the write-drain
  // phase just ends at the close instant) so a shed request remains diagnosable.
  for (PendingResponseTrace& pending : discarded) {
    FinalizeResponseTrace(pending, /*drained=*/false);
  }
  auto it = loop.conns.find(conn->fd);
  if (it == loop.conns.end() || it->second.get() != conn) {
    return;  // Already closed.
  }
  loop.poller.Remove(conn->fd);
  conn->socket.Close();
  // Workers may still hold this pointer (pending_jobs > 0) or a notify for it may be
  // queued; park it in the graveyard until both drain.
  loop.graveyard.push_back(std::move(it->second));
  loop.conns.erase(it);
}

void PlanServer::MaybeFinish(IoLoop& loop, Connection* conn) {
  bool dead;
  bool drained;
  {
    MutexLock lock(conn->mu);
    dead = conn->dead;
    drained = conn->outbox.empty();
  }
  if (dead) {
    CloseConn(loop, conn);
    return;
  }
  if ((conn->close_after_drain || !conn->read_open) && drained &&
      conn->pending_jobs.load(std::memory_order_acquire) == 0) {
    CloseConn(loop, conn);
  }
}

void PlanServer::Reap(IoLoop& loop) {
  for (auto it = loop.graveyard.begin(); it != loop.graveyard.end();) {
    Connection* conn = it->get();
    bool notified;
    {
      MutexLock lock(conn->mu);
      notified = conn->notified;
    }
    if (!notified && conn->pending_jobs.load(std::memory_order_acquire) == 0) {
      it = loop.graveyard.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanServer::QueueResponse(Connection* conn, FrameParts parts,
                               PendingResponseTrace trace) {
  IoLoop& loop = *loops_[static_cast<size_t>(conn->loop_index)];
  const size_t total_bytes = parts.TotalBytes();
  bool notify = false;
  bool shed = false;
  bool queued = false;
  {
    MutexLock lock(conn->mu);
    if (conn->dead) {
      return;  // Closing; the response is undeliverable.
    }
    if (conn->outbox_bytes + total_bytes > options_.max_output_queue_bytes) {
      // Slow-reader shedding closes the whole connection rather than dropping one
      // response: the protocol is strictly request-response ordered, and a silently
      // missing response would desynchronize every later reply on the stream.
      conn->dead = true;
      shed = true;
    } else {
      conn->outbox_bytes += total_bytes;
      conn->outbox.push_back(std::move(parts));
      conn->outbox_traces.push_back(std::move(trace));
      queued = true;
    }
    if (!conn->notified) {
      conn->notified = true;
      notify = true;
    }
  }
  if (queued) {
    loop.queue_depth->Add(1);
    loop.output_queue_bytes->Add(static_cast<int64_t>(total_bytes));
  }
  if (shed) {
    counters_.slow_reader_closes->Increment();
  }
  if (notify) {
    {
      MutexLock lock(loop.mu);
      loop.notify_queue.push_back(conn);
    }
    Wake(loop);
  }
}

void PlanServer::QueuePlanResponse(Connection* conn,
                                   const PlanServiceResponse& response,
                                   std::shared_ptr<const std::string> record,
                                   std::shared_ptr<metrics::Trace> trace) {
  const size_t record_size = record == nullptr ? 0 : record->size();
  std::string head = SerializePlanServiceResponseHead(response, record_size);
  if (record_size > 0) {
    counters_.zero_copy_serves->Increment();
  }
  PendingResponseTrace pending{};
  if (trace != nullptr) {
    pending.trace = std::move(trace);
    // Resolved here on the worker thread, where tenant and serve source are both
    // known, so the loop thread finalizes with one histogram Record().
    pending.latency_hist =
        ServeHistogramFor(pending.trace->tenant, response.source);
    pending.enqueue_us = metrics::MonotonicMicros();
  }
  QueueResponse(conn, EncodeFrameParts(FrameType::kPlanResponse, head,
                                       std::move(record)),
                std::move(pending));
}

void PlanServer::FinalizeResponseTrace(PendingResponseTrace& pending, bool drained) {
  metrics::Trace& trace = *pending.trace;
  const int64_t end_us = metrics::MonotonicMicros();
  metrics::RecordPhase(&trace, metrics::TracePhase::kWriteDrain,
                       end_us - pending.enqueue_us);
  trace.total_us = end_us - trace.start_us;
  if (!drained) {
    trace.ok = false;  // The response never reached the peer.
  }
  if (pending.latency_hist != nullptr) {
    pending.latency_hist->Record(trace.total_us);
  }
  if (options_.slow_request_log_ms > 0 &&
      trace.total_us >= options_.slow_request_log_ms * 1000) {
    std::fprintf(stderr, "dcp::PlanServer: slow request: %s\n",
                 metrics::FormatTrace(trace).c_str());
  }
  trace_ring_.Push(trace);
}

void PlanServer::HandlePlanJob(Connection* conn,
                               const std::shared_ptr<PlanJob>& job) {
  const auto release_quota = [this, &job] {
    if (job->quota_held) {
      MutexLock lock(quota_mu_);
      --tenant_inflight_[job->tenant];
    }
  };
  // Every plan request gets a trace; the client's id (v3 wire field) keys it when
  // present so client and server logs line up, otherwise a fresh id is minted. The
  // scope makes it ambient for this worker thread: the engine's cache-probe /
  // store-read / plan-stage phases all land in it without further plumbing.
  auto trace = std::make_shared<metrics::Trace>();
  trace->trace_id =
      job->view.trace_id != 0 ? job->view.trace_id : metrics::NextTraceId();
  trace->tenant = job->tenant;
  trace->start_us = job->arrival_us;
  metrics::TraceContext::Scope scope(trace.get());
  metrics::RecordPhase(metrics::TracePhase::kQueueWait,
                       metrics::MonotonicMicros() - job->arrival_us);
  if (options_.fault_injector != nullptr) {
    const FaultDecision fault = options_.fault_injector->Decide(FaultPoint::kServe);
    if (fault.action == FaultAction::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    } else if (fault.action == FaultAction::kFail) {
      QueuePlanResponse(conn,
                        ErrorResponse(StatusCode::kUnavailable,
                                      "fault injection: serve failed"),
                        nullptr);
      release_quota();
      return;
    }
  }
  if (job->view.deadline_ms > 0 &&
      NowMs() - job->arrival_ms >= job->view.deadline_ms) {
    // The caller's budget is already gone (it has timed out, failed over, or hedged
    // away); planning now would only steal workers from live requests.
    counters_.shed_deadline->Increment();
    trace->ok = false;
    trace->source = "shed-deadline";
    QueuePlanResponse(
        conn,
        ErrorResponse(StatusCode::kDeadlineExceeded,
                      "deadline of " + std::to_string(job->view.deadline_ms) +
                          "ms expired before planning started"),
        nullptr, trace);
    release_quota();
    return;
  }
  ServeResult served = HandlePlanRequest(job->tenant, job->view.seqlens,
                                         job->view.mask_spec, job->view.block_size);
  trace->ok = served.response.code == StatusCode::kOk;
  trace->source = PlanServeSourceName(served.response.source);
  QueuePlanResponse(conn, served.response, std::move(served.record), trace);
  release_quota();
}

void PlanServer::HandleFrame(Connection* conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kSyncRequest: {
      StatusOr<PlanSyncRequest> request = DeserializePlanSyncRequest(frame.payload);
      PlanSyncResponse response;
      if (!request.ok()) {
        counters_.malformed_frames->Increment();
        response.code = request.status().code();
        response.message = request.status().message();
      } else {
        response = HandleSyncRequest(request.value());
      }
      QueueResponse(conn, EncodeFrameParts(FrameType::kSyncResponse,
                                           SerializePlanSyncResponse(response)));
      return;
    }
    case FrameType::kStatsRequest: {
      StatusOr<PlanServiceStatsRequest> request =
          DeserializePlanServiceStatsRequest(frame.payload);
      PlanServiceStatsResponse response;
      if (!request.ok()) {
        counters_.malformed_frames->Increment();
        response.code = request.status().code();
        response.message = request.status().message();
      } else {
        response = BuildStatsResponse(request.value().tenant);
      }
      QueueResponse(conn,
                    EncodeFrameParts(FrameType::kStatsResponse,
                                     SerializePlanServiceStatsResponse(response)));
      return;
    }
    case FrameType::kMetricsRequest: {
      StatusOr<PlanServiceMetricsRequest> request =
          DeserializePlanServiceMetricsRequest(frame.payload);
      PlanServiceMetricsResponse response;
      if (!request.ok()) {
        counters_.malformed_frames->Increment();
        response.code = request.status().code();
        response.message = request.status().message();
      } else {
        // The process-global registry, not just this server's child: one scrape
        // shows the engines, stores, replica sets, and server in one exposition.
        response.text = metrics::Registry::Global().RenderPrometheus(
            request.value().name_prefix);
      }
      QueueResponse(
          conn, EncodeFrameParts(FrameType::kMetricsResponse,
                                 SerializePlanServiceMetricsResponse(response)));
      return;
    }
    default: {
      // Well-framed but not a request type: answer with an error and keep the
      // connection (framing is intact, the client just sent nonsense).
      counters_.malformed_frames->Increment();
      QueueResponse(
          conn,
          EncodeFrameParts(
              FrameType::kErrorResponse,
              SerializePlanServiceResponse(ErrorResponse(
                  StatusCode::kInvalidArgument,
                  "frame type " + std::to_string(static_cast<uint32_t>(frame.type)) +
                      " is not a request"))));
      return;
    }
  }
}

PlanServer::ServeResult PlanServer::HandlePlanRequest(
    const std::string& tenant, std::span<const int64_t> seqlens,
    const MaskSpec& mask_spec, int64_t block_size) {
  ServeResult result;
  const std::shared_ptr<Engine> engine = registry_->Find(tenant);
  if (engine == nullptr) {
    // Counted only in the service-wide plan_errors: keying tenant_counters_ on
    // arbitrary unknown names would let a client cycling bogus tenants grow server
    // memory without bound (and the entries would never surface in stats anyway).
    result.response =
        ErrorResponse(StatusCode::kNotFound, "unknown tenant '" + tenant + "'");
  } else {
    TenantCountersFor(tenant).requests->Increment();
    // Gossip-adopted warm tier: a peer may have planned this exact shape already. The
    // signature is computable without planning, except under auto-tune with block 0
    // (the chosen block size — part of the signature — is only known after tuning).
    if (!(engine->options().auto_tune_block_size && block_size == 0)) {
      StatusOr<PlanSignature> sig =
          engine->RequestSignature(seqlens, mask_spec, block_size);
      if (sig.ok()) {
        if (std::shared_ptr<const std::string> record =
                ReplicaRecordLookup(sig.value())) {
          result.response.source = PlanServeSource::kReplicaCache;
          result.response.signature_lo = sig.value().lo;
          result.response.signature_hi = sig.value().hi;
          result.record = std::move(record);  // Shared bytes; never copied.
          counters_.replica_cache_hits->Increment();
          counters_.plan_ok->Increment();
          return result;
        }
      }
    }
    StatusOr<Engine::PlannedOutcome> planned =
        engine->PlanDetailed(seqlens, mask_spec, block_size);
    if (!planned.ok()) {
      result.response =
          ErrorResponse(planned.status().code(), planned.status().message());
    } else {
      const PlanHandle& handle = planned.value().handle;
      result.response.source = SourceFromOrigin(planned.value().origin);
      result.response.signature_lo = handle->signature.lo;
      result.response.signature_hi = handle->signature.hi;
      // The wire carries the persistence format: one CRC-trailed PlanStore record,
      // encoded once per signature and served as shared bytes from the record LRU on
      // later hits — the response path never copies them.
      result.record = EncodedRecordFor(handle);
    }
  }
  if (result.response.code == StatusCode::kOk) {
    counters_.plan_ok->Increment();
  } else {
    counters_.plan_errors->Increment();
    if (engine != nullptr) {
      TenantCountersFor(tenant).plan_errors->Increment();
    }
  }
  return result;
}

PlanServer::TenantCounters& PlanServer::TenantCountersFor(const std::string& tenant) {
  {
    MutexLock lock(stats_mu_);
    const auto it = tenant_counters_.find(tenant);
    if (it != tenant_counters_.end()) {
      return it->second;
    }
  }
  // Resolve outside stats_mu_ so the registry mutex never nests under it; racing
  // resolvers get identical pointers (GetCounter is idempotent) and emplace keeps
  // whichever entry landed first. References stay valid: unordered_map never
  // invalidates them on rehash.
  TenantCounters fresh;
  const std::vector<metrics::Label> labels = {{"tenant", tenant}};
  fresh.requests = metrics_->GetCounter("dcp_server_tenant_requests_total", labels,
                                        "Plan RPCs routed to the tenant");
  fresh.plan_errors =
      metrics_->GetCounter("dcp_server_tenant_plan_errors_total", labels,
                           "Plan RPCs answered non-OK for the tenant");
  fresh.shed_quota =
      metrics_->GetCounter("dcp_server_tenant_shed_quota_total", labels,
                           "Plan RPCs rejected over the tenant's quota");
  MutexLock lock(stats_mu_);
  return tenant_counters_.emplace(tenant, fresh).first->second;
}

metrics::Histogram* PlanServer::ServeHistogramFor(const std::string& tenant,
                                                  PlanServeSource source) {
  return metrics_->GetHistogram(
      "dcp_server_serve_latency_us",
      {{"tenant", tenant}, {"source", PlanServeSourceName(source)}},
      "Plan request latency, arrival to last response byte written");
}

std::shared_ptr<const std::string> PlanServer::EncodedRecordFor(
    const PlanHandle& handle) {
  if (options_.record_cache_capacity > 0) {
    MutexLock lock(record_cache_mu_);
    const auto it = record_cache_.find(handle->signature);
    if (it != record_cache_.end()) {
      record_lru_.splice(record_lru_.begin(), record_lru_, it->second);
      return it->second->second;
    }
  }
  // Encode outside the lock: it is the expensive part, and two racing encoders of the
  // same signature produce identical bytes anyway.
  std::shared_ptr<const std::string> record;
  {
    metrics::ScopedPhase encode_phase(metrics::TracePhase::kEncode);
    record = std::make_shared<const std::string>(
        PlanStore::EncodeRecord(handle->signature, handle->plan));
  }
  if (options_.record_cache_capacity > 0) {
    MutexLock lock(record_cache_mu_);
    if (record_cache_.find(handle->signature) == record_cache_.end()) {
      record_lru_.emplace_front(handle->signature, record);
      record_cache_.emplace(handle->signature, record_lru_.begin());
      while (static_cast<int>(record_lru_.size()) > options_.record_cache_capacity) {
        record_cache_.erase(record_lru_.back().first);
        record_lru_.pop_back();
      }
    }
  }
  return record;
}

std::shared_ptr<const std::string> PlanServer::ReplicaRecordLookup(
    const PlanSignature& sig) {
  MutexLock lock(replica_cache_mu_);
  const auto it = replica_cache_.find(sig);
  if (it == replica_cache_.end()) {
    return nullptr;
  }
  replica_lru_.splice(replica_lru_.begin(), replica_lru_, it->second);
  return it->second->second;
}

void PlanServer::ReplicaRecordAdopt(const PlanSignature& sig,
                                    std::shared_ptr<const std::string> record) {
  if (options_.replica_record_cache_capacity <= 0) {
    return;
  }
  MutexLock lock(replica_cache_mu_);
  if (replica_cache_.find(sig) != replica_cache_.end()) {
    return;
  }
  replica_lru_.emplace_front(sig, std::move(record));
  replica_cache_.emplace(sig, replica_lru_.begin());
  while (static_cast<int>(replica_lru_.size()) >
         options_.replica_record_cache_capacity) {
    replica_cache_.erase(replica_lru_.back().first);
    replica_lru_.pop_back();
  }
}

PlanSyncResponse PlanServer::HandleSyncRequest(const PlanSyncRequest& request) {
  PlanSyncResponse response;
  const std::shared_ptr<Engine> engine = registry_->Find(request.tenant);
  if (engine == nullptr) {
    response.code = StatusCode::kNotFound;
    response.message = "unknown tenant '" + request.tenant + "'";
    return response;
  }
  std::unordered_set<PlanSignature, PlanSignatureHash> peer_has;
  peer_has.reserve(request.have.size());
  for (const auto& pair : request.have) {
    PlanSignature sig;
    sig.lo = pair.first;
    sig.hi = pair.second;
    peer_has.insert(sig);
  }
  // Ship what the peer lacks: this engine's own compiled plans first (the authoritative
  // copies), then records we ourselves adopted from other replicas — gossip is
  // transitive, so a plan computed once reaches replicas that never talk directly.
  std::unordered_set<PlanSignature, PlanSignatureHash> shipped;
  const int cap = std::max(0, options_.max_sync_records_per_exchange);
  for (const PlanHandle& handle : engine->CachedPlans()) {
    if (static_cast<int>(response.records.size()) >= cap) {
      break;
    }
    if (peer_has.count(handle->signature) != 0 ||
        !shipped.insert(handle->signature).second) {
      continue;
    }
    response.records.push_back(*EncodedRecordFor(handle));
  }
  {
    MutexLock lock(replica_cache_mu_);
    for (const auto& entry : replica_lru_) {
      if (static_cast<int>(response.records.size()) >= cap) {
        break;
      }
      if (peer_has.count(entry.first) != 0 || !shipped.insert(entry.first).second) {
        continue;
      }
      response.records.push_back(*entry.second);
    }
  }
  if (options_.fault_injector != nullptr) {
    for (std::string& record : response.records) {
      const FaultDecision fault =
          options_.fault_injector->Decide(FaultPoint::kSyncRecord);
      if (fault.action == FaultAction::kStale && !record.empty()) {
        // A "stale" replica ships a record whose bytes no longer match its CRC — the
        // receiver must catch this in validation, never adopt it.
        record[record.size() / 2] ^= 0x20;
      }
    }
  }
  counters_.sync_records_shipped->Add(
      static_cast<int64_t>(response.records.size()));
  return response;
}

std::vector<std::pair<uint64_t, uint64_t>> PlanServer::LocalSignatureIndex(
    Engine& engine) {
  std::vector<std::pair<uint64_t, uint64_t>> index;
  for (const PlanHandle& handle : engine.CachedPlans()) {
    index.emplace_back(handle->signature.lo, handle->signature.hi);
  }
  MutexLock lock(replica_cache_mu_);
  for (const auto& entry : replica_lru_) {
    index.emplace_back(entry.first.lo, entry.first.hi);
  }
  return index;
}

void PlanServer::GossipLoop() {
  while (running()) {
    {
      // Interruptible interval sleep: Stop() flips running_ then notifies. Inline
      // deadline loop (not a predicate lambda) so the analysis follows the lock.
      MutexLock lock(gossip_mu_);
      const int64_t deadline_ms =
          metrics::MonotonicMillis() + options_.gossip_interval_ms;
      while (running()) {
        const int64_t remaining_ms = deadline_ms - metrics::MonotonicMillis();
        if (remaining_ms <= 0) {
          break;
        }
        gossip_cv_.WaitFor(gossip_mu_, std::chrono::milliseconds(remaining_ms));
      }
    }
    if (!running()) {
      return;
    }
    for (const ServiceAddress& peer : options_.peers) {
      if (!running()) {
        return;
      }
      GossipWithPeer(peer);
    }
  }
}

void PlanServer::GossipWithPeer(const ServiceAddress& peer) {
  // A dead or slow peer must not wedge the gossip thread: short connect budget, bounded
  // I/O, and any failure simply waits for the next round.
  // dcp-lint: allow(blocking-io) — gossip runs on its own thread, not a loop callback.
  StatusOr<Socket> socket = ConnectSocket(peer, /*timeout_ms=*/1000);
  if (!socket.ok()) {
    return;
  }
  socket.value().set_io_timeout_ms(2000);
  for (const std::string& tenant : registry_->Names()) {
    const std::shared_ptr<Engine> engine = registry_->Find(tenant);
    if (engine == nullptr) {
      continue;
    }
    PlanSyncRequest request;
    request.tenant = tenant;
    request.have = LocalSignatureIndex(*engine);
    // dcp-lint: allow(blocking-io) — gossip thread; bounded by the socket timeout.
    if (!WriteFrame(socket.value(), FrameType::kSyncRequest,
                    SerializePlanSyncRequest(request))
             .ok()) {
      return;
    }
    // dcp-lint: allow(blocking-io) — gossip thread; bounded by the socket timeout.
    StatusOr<Frame> reply = ReadFrame(socket.value(), kMaxFramePayloadBytes);
    if (!reply.ok() || reply.value().type != FrameType::kSyncResponse) {
      return;  // Torn exchange or a peer that doesn't speak sync: drop the round.
    }
    StatusOr<PlanSyncResponse> response =
        DeserializePlanSyncResponse(reply.value().payload);
    if (!response.ok() || response.value().code != StatusCode::kOk) {
      continue;  // E.g. the peer doesn't host this tenant; other tenants may still sync.
    }
    for (const std::string& record : response.value().records) {
      // Full validation before adoption: DecodeRecord re-checks the CRC and decodes
      // every field, so a stale/corrupt peer record is counted and dropped here.
      StatusOr<std::pair<PlanSignature, BatchPlan>> decoded =
          PlanStore::DecodeRecord(record);
      if (!decoded.ok()) {
        counters_.sync_records_rejected->Increment();
        continue;
      }
      if (ReplicaRecordLookup(decoded.value().first) != nullptr) {
        continue;  // Raced another gossip round; already warm.
      }
      ReplicaRecordAdopt(decoded.value().first,
                         std::make_shared<const std::string>(record));
      counters_.sync_records_adopted->Increment();
    }
  }
}

PlanServerStats PlanServer::stats() const {
  // Thin view over the registry counters: each read is an atomic load, so the
  // snapshot is exact at quiescence and never lies about any individual counter.
  PlanServerStats stats;
  stats.connections_accepted = counters_.connections_accepted->value();
  stats.requests_received = counters_.requests_received->value();
  stats.responses_sent = counters_.responses_sent->value();
  stats.plan_ok = counters_.plan_ok->value();
  stats.plan_errors = counters_.plan_errors->value();
  stats.rejected_overload = counters_.rejected_overload->value();
  stats.malformed_frames = counters_.malformed_frames->value();
  stats.shed_quota = counters_.shed_quota->value();
  stats.shed_deadline = counters_.shed_deadline->value();
  stats.replica_cache_hits = counters_.replica_cache_hits->value();
  stats.sync_records_shipped = counters_.sync_records_shipped->value();
  stats.sync_records_adopted = counters_.sync_records_adopted->value();
  stats.sync_records_rejected = counters_.sync_records_rejected->value();
  stats.accept_soft_errors = counters_.accept_soft_errors->value();
  stats.zero_copy_serves = counters_.zero_copy_serves->value();
  stats.slow_reader_closes = counters_.slow_reader_closes->value();
  return stats;
}

PlanServiceStatsResponse PlanServer::BuildStatsResponse(
    const std::string& tenant_filter) const {
  PlanServiceStatsResponse response;
  response.connections_accepted = counters_.connections_accepted->value();
  response.requests_received = counters_.requests_received->value();
  response.responses_sent = counters_.responses_sent->value();
  response.rejected_overload = counters_.rejected_overload->value();
  response.malformed_frames = counters_.malformed_frames->value();
  response.shed_deadline = counters_.shed_deadline->value();
  response.sync_records_shipped = counters_.sync_records_shipped->value();
  response.sync_records_adopted = counters_.sync_records_adopted->value();
  for (const std::string& name : registry_->Names()) {
    if (!tenant_filter.empty() && name != tenant_filter) {
      continue;
    }
    const std::shared_ptr<Engine> engine = registry_->Find(name);
    if (engine == nullptr) {
      continue;
    }
    const PlanCacheStats cache = engine->cache_stats();
    PlanServiceTenantStats tenant;
    tenant.tenant = name;
    {
      MutexLock lock(stats_mu_);
      const auto it = tenant_counters_.find(name);
      if (it != tenant_counters_.end()) {
        tenant.requests = it->second.requests->value();
        tenant.plan_errors = it->second.plan_errors->value();
        tenant.shed_quota = it->second.shed_quota->value();
      }
    }
    tenant.cache_hits = cache.hits;
    tenant.cache_misses = cache.misses;
    tenant.cache_evictions = cache.evictions;
    tenant.cache_entries = cache.entries;
    tenant.store_hits = cache.store_hits;
    tenant.store_writes = cache.store_writes;
    tenant.store_corrupt_skipped = cache.store_corrupt_skipped;
    response.tenants.push_back(std::move(tenant));
  }
  if (!tenant_filter.empty() && response.tenants.empty()) {
    response.code = StatusCode::kNotFound;
    response.message = "unknown tenant '" + tenant_filter + "'";
  }
  return response;
}

}  // namespace dcp
