#include "service/event_loop.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#define DCP_HAVE_EPOLL 1
#else
#define DCP_HAVE_EPOLL 0
#endif

namespace dcp {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

short PollMask(bool want_read, bool want_write) {
  short mask = 0;
  if (want_read) {
    mask |= POLLIN;
  }
  if (want_write) {
    mask |= POLLOUT;
  }
  return mask;
}

#if DCP_HAVE_EPOLL
uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) {
    mask |= EPOLLIN;
  }
  if (want_write) {
    mask |= EPOLLOUT;
  }
  return mask;
}
#endif

}  // namespace

Poller::Poller(bool prefer_epoll) {
#if DCP_HAVE_EPOLL
  if (prefer_epoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ >= 0) {
      backend_ = Backend::kEpoll;
      return;
    }
  }
#else
  (void)prefer_epoll;
#endif
  backend_ = Backend::kPoll;
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

Poller::Poller(Poller&& other) noexcept
    : backend_(other.backend_),
      epoll_fd_(other.epoll_fd_),
      interest_(std::move(other.interest_)) {
  other.epoll_fd_ = -1;
  other.interest_.clear();
}

Poller& Poller::operator=(Poller&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
    }
    backend_ = other.backend_;
    epoll_fd_ = other.epoll_fd_;
    interest_ = std::move(other.interest_);
    other.epoll_fd_ = -1;
    other.interest_.clear();
  }
  return *this;
}

Status Poller::Add(int fd, bool want_read, bool want_write) {
  if (fd < 0) {
    return Status::InvalidArgument("poller: add of invalid fd");
  }
  if (!interest_.emplace(fd, PollMask(want_read, want_write)).second) {
    return Status::FailedPrecondition("poller: fd " + std::to_string(fd) +
                                      " already registered");
  }
#if DCP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      interest_.erase(fd);
      return Status::Internal(Errno("epoll_ctl(ADD) failed"));
    }
  }
#endif
  return Status::Ok();
}

Status Poller::Modify(int fd, bool want_read, bool want_write) {
  const auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::FailedPrecondition("poller: modify of unregistered fd " +
                                      std::to_string(fd));
  }
  it->second = PollMask(want_read, want_write);
#if DCP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Status::Internal(Errno("epoll_ctl(MOD) failed"));
    }
  }
#endif
  return Status::Ok();
}

void Poller::Remove(int fd) {
  if (interest_.erase(fd) == 0) {
    return;
  }
#if DCP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    // Ignore failures: the fd may already be closed, which removed it implicitly.
    epoll_event ev{};
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }
#endif
}

Status Poller::Wait(int timeout_ms, std::vector<Event>* events) {
  events->clear();
#if DCP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ready[64];
    const int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        return Status::Ok();
      }
      return Status::Internal(Errno("epoll_wait failed"));
    }
    events->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = ready[i].data.fd;
      ev.readable = (ready[i].events & EPOLLIN) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.hangup = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(ev);
    }
    return Status::Ok();
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(interest_.size());
  for (const auto& [fd, mask] : interest_) {
    pfds.push_back({fd, mask, 0});
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      return Status::Ok();
    }
    return Status::Internal(Errno("poll failed"));
  }
  if (n == 0) {
    return Status::Ok();
  }
  for (const pollfd& pfd : pfds) {
    if (pfd.revents == 0) {
      continue;
    }
    Event ev;
    ev.fd = pfd.fd;
    ev.readable = (pfd.revents & POLLIN) != 0;
    ev.writable = (pfd.revents & POLLOUT) != 0;
    ev.hangup = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(ev);
  }
  return Status::Ok();
}

}  // namespace dcp
