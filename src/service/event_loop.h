// Readiness multiplexing for the planning service's IO threads: one Poller per IO
// thread watches every socket that thread owns. The primary backend is epoll
// (level-triggered — the server drains until EAGAIN, so level semantics are exact and
// re-arm free); a portable poll(2) backend backs it up and is selectable per server
// (PlanServerOptions::force_poll_backend) so the fallback stays tested, not bit-rotted.
//
// A Poller is single-threaded by design: Add/Modify/Remove/Wait are only ever called
// from the loop thread that owns it. Cross-thread wakeups go through an eventfd the
// owner registers like any other fd.
#ifndef DCP_SERVICE_EVENT_LOOP_H_
#define DCP_SERVICE_EVENT_LOOP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dcp {

class Poller {
 public:
  enum class Backend { kEpoll, kPoll };

  // `prefer_epoll` falls back to poll when epoll is unavailable (non-Linux builds, or
  // epoll_create failure); backend() reports what was actually chosen.
  explicit Poller(bool prefer_epoll = true);
  ~Poller();

  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  Backend backend() const { return backend_; }

  // Watches `fd`. want_read/want_write may both be false: the fd stays registered
  // (errors and hangups are still reported) but produces no readiness events.
  Status Add(int fd, bool want_read, bool want_write);
  Status Modify(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    // POLLERR/POLLHUP: the owner should attempt a read (to harvest the error or EOF)
    // and close.
    bool hangup = false;
  };

  // Blocks up to `timeout_ms` (-1: forever) and fills `events` (cleared first) with
  // every ready fd. EINTR returns OK with no events.
  Status Wait(int timeout_ms, std::vector<Event>* events);

 private:
  Backend backend_ = Backend::kPoll;
  int epoll_fd_ = -1;
  // Poll backend interest set; also the registration record both backends validate
  // against (double-add and modify-of-unknown are bugs worth catching in either).
  std::unordered_map<int, short> interest_;
};

}  // namespace dcp

#endif  // DCP_SERVICE_EVENT_LOOP_H_
