// Wire framing for the planning service: every message travels as one
// length-prefixed, CRC32-trailed frame,
//
//   offset 0   u32 magic       "DCPf" (0x66504344, little-endian)
//          4   u32 frame type  (FrameType below; unknown values are rejected)
//          8   u64 length      payload bytes (bounded before any allocation)
//         16   payload         message body (runtime/instructions.h service codecs)
//   16+len     u32 CRC32       over the 16-byte header + payload
//
// The same layered validation as PlanStore records: header bounds first, checksum
// before any payload byte is interpreted, then the bounds-checked message codec.
// A malformed frame is a recoverable DATA_LOSS — the server counts it, answers with an
// error frame when the stream still permits one, and drops the connection (framing sync
// is gone); it never aborts. Compiled plans inside kPlanResponse payloads are PlanStore
// record bytes, so the service wire format and the persistence format are one format.
#ifndef DCP_SERVICE_FRAME_H_
#define DCP_SERVICE_FRAME_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "service/transport.h"

namespace dcp {

enum class FrameType : uint32_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  // A connection-level failure (malformed frame, unknown type): payload is a
  // PlanServiceResponse carrying only the status. The sender closes afterwards.
  kErrorResponse = 5,
  // Anti-entropy gossip between replicas: a PlanSyncRequest listing held signatures,
  // answered with a PlanSyncResponse shipping the records the requester lacked.
  kSyncRequest = 6,
  kSyncResponse = 7,
  // Live observability scrape: a PlanServiceMetricsRequest (optional name-prefix
  // filter), answered with a PlanServiceMetricsResponse carrying the registry
  // rendered in Prometheus text exposition format.
  kMetricsRequest = 8,
  kMetricsResponse = 9,
};

struct Frame {
  FrameType type = FrameType::kErrorResponse;
  std::string payload;
};

// Default cap on a single frame payload. Compiled plans for production batches are
// single-digit MiB; anything near the cap is corruption, not traffic.
constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 30;

std::string EncodeFrame(FrameType type, std::string_view payload);

// Reads one frame. UNAVAILABLE on a clean peer close between frames; DATA_LOSS on a
// torn/corrupt/oversized/unknown-type frame (the stream can no longer be trusted).
StatusOr<Frame> ReadFrame(Socket& socket,
                          uint64_t max_payload_bytes = kMaxFramePayloadBytes);

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload);

// A frame split for scatter-gather writes: the wire bytes are exactly
// head ++ *body ++ crc, where `head` is the 16-byte frame header plus the leading
// payload bytes and `body` is a shared immutable payload tail that is never copied —
// the server points it at a cached PlanStore record and writev's all three segments.
// `body` may be null (the whole payload lives in `head`).
struct FrameParts {
  std::string head;
  std::shared_ptr<const std::string> body;
  std::array<char, 4> crc = {0, 0, 0, 0};

  size_t body_size() const { return body == nullptr ? 0 : body->size(); }
  size_t TotalBytes() const { return head.size() + body_size() + crc.size(); }
};

// Builds the parts for payload = payload_head ++ *payload_body. The CRC is computed
// incrementally over header + both payload segments — `payload_body`'s bytes are read
// once and copied never.
FrameParts EncodeFrameParts(FrameType type, std::string_view payload_head,
                            std::shared_ptr<const std::string> payload_body = nullptr);

// Contiguous wire bytes for `parts` (tests and non-vectored writers).
std::string FlattenFrameParts(const FrameParts& parts);

// Incremental frame decoder for non-blocking reads: Append() whatever recv produced,
// then pop complete frames with Next(). Validation order matches ReadFrame — header
// bounds as soon as 16 bytes exist (a bad magic or an implausible length fails before
// any payload arrives), checksum once the full frame is buffered. A failure is sticky:
// the stream is desynced, so every later Next() returns the same DATA_LOSS.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint64_t max_payload_bytes = kMaxFramePayloadBytes);

  void Append(const char* data, size_t n);

  // One complete frame, NOT_FOUND when more bytes are needed, DATA_LOSS (sticky) on a
  // corrupt stream.
  StatusOr<Frame> Next();

  // Bytes of an incomplete frame still buffered — a peer that closed with this nonzero
  // tore a frame mid-flight.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool failed() const { return failed_; }

 private:
  const uint64_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Parsed prefix of buffer_, compacted lazily.
  bool failed_ = false;
  Status error_ = Status::Ok();
};

}  // namespace dcp

#endif  // DCP_SERVICE_FRAME_H_
