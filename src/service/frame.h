// Wire framing for the planning service: every message travels as one
// length-prefixed, CRC32-trailed frame,
//
//   offset 0   u32 magic       "DCPf" (0x66504344, little-endian)
//          4   u32 frame type  (FrameType below; unknown values are rejected)
//          8   u64 length      payload bytes (bounded before any allocation)
//         16   payload         message body (runtime/instructions.h service codecs)
//   16+len     u32 CRC32       over the 16-byte header + payload
//
// The same layered validation as PlanStore records: header bounds first, checksum
// before any payload byte is interpreted, then the bounds-checked message codec.
// A malformed frame is a recoverable DATA_LOSS — the server counts it, answers with an
// error frame when the stream still permits one, and drops the connection (framing sync
// is gone); it never aborts. Compiled plans inside kPlanResponse payloads are PlanStore
// record bytes, so the service wire format and the persistence format are one format.
#ifndef DCP_SERVICE_FRAME_H_
#define DCP_SERVICE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "service/transport.h"

namespace dcp {

enum class FrameType : uint32_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  // A connection-level failure (malformed frame, unknown type): payload is a
  // PlanServiceResponse carrying only the status. The sender closes afterwards.
  kErrorResponse = 5,
  // Anti-entropy gossip between replicas: a PlanSyncRequest listing held signatures,
  // answered with a PlanSyncResponse shipping the records the requester lacked.
  kSyncRequest = 6,
  kSyncResponse = 7,
};

struct Frame {
  FrameType type = FrameType::kErrorResponse;
  std::string payload;
};

// Default cap on a single frame payload. Compiled plans for production batches are
// single-digit MiB; anything near the cap is corruption, not traffic.
constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 30;

std::string EncodeFrame(FrameType type, std::string_view payload);

// Reads one frame. UNAVAILABLE on a clean peer close between frames; DATA_LOSS on a
// torn/corrupt/oversized/unknown-type frame (the stream can no longer be trusted).
StatusOr<Frame> ReadFrame(Socket& socket,
                          uint64_t max_payload_bytes = kMaxFramePayloadBytes);

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload);

}  // namespace dcp

#endif  // DCP_SERVICE_FRAME_H_
