#include "service/plan_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/plan_store.h"
#include "masks/mask.h"
#include "service/frame.h"

namespace dcp {
namespace {

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kDataLoss;
}

int RetryBackoffMs(const RetryPolicy& policy, int retry) {
  int64_t backoff = std::max(1, policy.initial_backoff_ms);
  for (int i = 1; i < retry && backoff < policy.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<int64_t>(backoff, std::max(1, policy.max_backoff_ms));
  const uint64_t jitter =
      SplitMix64(policy.jitter_seed ^ static_cast<uint64_t>(retry)) %
      static_cast<uint64_t>(backoff / 2 + 1);
  return static_cast<int>(backoff - backoff / 2 + static_cast<int64_t>(jitter));
}

PlanSignature PlanRequestCacheKey(const std::string& tenant,
                                  const std::vector<int64_t>& seqlens,
                                  const MaskSpec& mask_spec, int64_t block_size) {
  PlanSignatureBuilder b;
  b.Add(0x70636c69656e7431ULL);  // "pclient1": never aliases a server PlanSignature.
  for (char c : tenant) {
    b.Add(static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  b.Add(tenant.size());
  b.AddSpan(seqlens);
  b.Add(static_cast<uint64_t>(mask_spec.kind));
  b.AddSigned(mask_spec.sink_tokens);
  b.AddSigned(mask_spec.window_tokens);
  b.AddSigned(mask_spec.icl_block_tokens);
  b.AddSigned(mask_spec.window_blocks);
  b.AddSigned(mask_spec.sink_blocks);
  b.AddSigned(mask_spec.test_blocks);
  b.AddSigned(mask_spec.num_answers);
  b.AddDouble(mask_spec.answer_fraction);
  b.AddSigned(block_size);
  return b.Finish();
}

PlanClient::PlanClient(ServiceAddress address, PlanClientOptions options)
    : address_(std::move(address)), options_(std::move(options)) {
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.planner_threads));
  metrics_ = metrics::Registry::NewAttached({{"tenant", options_.tenant}});
  for (int s = 0; s < 5; ++s) {
    serve_latency_us_[s] = metrics_->GetHistogram(
        "dcp_client_plan_latency_us",
        {{"source", PlanServeSourceName(static_cast<PlanServeSource>(s))}},
        "Client-observed plan latency by serve source, microseconds.");
  }
}

PlanClient::~PlanClient() = default;

StatusOr<std::unique_ptr<PlanClient>> PlanClient::Connect(const ServiceAddress& address,
                                                          PlanClientOptions options) {
  std::unique_ptr<PlanClient> client(new PlanClient(address, std::move(options)));
  StatusOr<Socket> socket =
      ConnectSocket(address, client->options_.connect_timeout_ms);
  if (!socket.ok()) {
    return socket.status();
  }
  client->socket_ = std::move(socket).value();
  client->socket_.set_io_timeout_ms(client->options_.io_timeout_ms);
  client->connected_ = true;
  return client;
}

Status PlanClient::EnsureConnectedLocked() {
  if (connected_) {
    return Status::Ok();
  }
  StatusOr<Socket> socket = ConnectSocket(address_, options_.connect_timeout_ms);
  if (!socket.ok()) {
    return socket.status();
  }
  socket_ = std::move(socket).value();
  socket_.set_io_timeout_ms(options_.io_timeout_ms);
  connected_ = true;
  MutexLock lock(stats_mu_);
  ++stats_.reconnects;
  return Status::Ok();
}

StatusOr<Frame> PlanClient::Roundtrip(FrameType request_type,
                                      const std::string& payload,
                                      FrameType expected_response) {
  const uint64_t max_payload = options_.max_frame_payload_bytes == 0
                                   ? kMaxFramePayloadBytes
                                   : options_.max_frame_payload_bytes;
  MutexLock lock(io_mu_);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  Status failure = Status::Ok();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with deterministic jitter before every retry; the retry
      // runs on a fresh connection (the failed socket was closed below).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(RetryBackoffMs(options_.retry, attempt)));
      MutexLock stats_lock(stats_mu_);
      ++stats_.retries;
    }
    Status connect = EnsureConnectedLocked();
    if (!connect.ok()) {
      failure = connect;
      if (!IsRetryableStatus(failure)) {
        break;
      }
      continue;
    }
    {
      MutexLock stats_lock(stats_mu_);
      ++stats_.rpcs_sent;
    }
    Status sent = WriteFrame(socket_, request_type, payload);
    StatusOr<Frame> reply = sent.ok() ? ReadFrame(socket_, max_payload)
                                      : StatusOr<Frame>(sent);
    if (reply.ok()) {
      if (reply.value().type == expected_response ||
          reply.value().type == FrameType::kErrorResponse) {
        if (reply.value().type == FrameType::kErrorResponse) {
          // The server rejected the stream (it saw a malformed frame); the connection
          // is about to close on its side.
          connected_ = false;
          socket_.Close();
        }
        return reply;
      }
      // A response of the wrong type means the stream is out of sync; drop it.
      failure = Status::DataLoss("unexpected response frame type " +
                                 std::to_string(static_cast<uint32_t>(
                                     reply.value().type)));
    } else {
      failure = reply.status();
    }
    {
      MutexLock stats_lock(stats_mu_);
      ++stats_.rpc_errors;
    }
    connected_ = false;
    socket_.Close();
    // Only transport-level failures are worth (and safe to) chase: the RPC is
    // idempotent, but an application rejection would fail identically every attempt.
    if (!IsRetryableStatus(failure)) {
      break;
    }
  }
  return failure;
}

Status PlanClient::DecodeErrorFrame(const Frame& frame) {
  StatusOr<PlanServiceResponse> error = DeserializePlanServiceResponse(frame.payload);
  if (!error.ok()) {
    return error.status();
  }
  if (error.value().code == StatusCode::kOk) {
    return Status::DataLoss("error frame carried an OK status");
  }
  return Status(error.value().code, error.value().message);
}

PlanSignature PlanClient::CacheKey(const std::vector<int64_t>& seqlens,
                                   const MaskSpec& mask_spec,
                                   int64_t block_size) const {
  return PlanRequestCacheKey(options_.tenant, seqlens, mask_spec, block_size);
}

PlanHandle PlanClient::CacheLookup(const PlanSignature& key) {
  MutexLock lock(cache_mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanClient::CacheInsert(const PlanSignature& key, PlanHandle handle) {
  if (options_.cache_capacity <= 0) {
    return;
  }
  MutexLock lock(cache_mu_);
  if (cache_.find(key) != cache_.end()) {
    return;  // A concurrent caller already planted it.
  }
  lru_.emplace_front(key, std::move(handle));
  cache_.emplace(key, lru_.begin());
  while (static_cast<int>(lru_.size()) > options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

StatusOr<PlanHandle> PlanClient::PlanWithBlockSize(const std::vector<int64_t>& seqlens,
                                                   const MaskSpec& mask_spec,
                                                   int64_t block_size) {
  // Latency is attributed to the serve source only once it is known (the cache
  // probe resolves it immediately; an RPC resolves it from the response).
  const bool timed = metrics::RecordingEnabled();
  const int64_t start_us = timed ? metrics::MonotonicMicros() : 0;
  const PlanSignature key = CacheKey(seqlens, mask_spec, block_size);
  if (PlanHandle cached = CacheLookup(key)) {
    {
      MutexLock lock(cache_mu_);
      last_source_ = PlanServeSource::kClientCache;
    }
    {
      MutexLock lock(stats_mu_);
      ++stats_.cache_hits;
    }
    if (timed) {
      const int64_t probe_us = metrics::MonotonicMicros() - start_us;
      metrics::RecordPhase(metrics::TracePhase::kCacheProbe, probe_us);
      serve_latency_us_[static_cast<int>(PlanServeSource::kClientCache)]->Record(
          probe_us);
    }
    return cached;
  }

  PlanServiceRequest request;
  request.tenant = options_.tenant;
  request.seqlens = seqlens;
  request.mask_spec = mask_spec;
  request.block_size = block_size;
  request.deadline_ms = options_.deadline_ms;
  // Propagate the ambient trace id (or mint one) so the server's trace ring and
  // slow-request log correlate with this caller. v2 servers ignore the trailer.
  metrics::Trace* trace = metrics::TraceContext::Current();
  request.trace_id = trace != nullptr ? trace->trace_id : metrics::NextTraceId();
  StatusOr<Frame> reply =
      Roundtrip(FrameType::kPlanRequest, SerializePlanServiceRequest(request),
                FrameType::kPlanResponse);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().type == FrameType::kErrorResponse) {
    return DecodeErrorFrame(reply.value());
  }
  StatusOr<PlanServiceResponse> response =
      DeserializePlanServiceResponse(reply.value().payload);
  if (!response.ok()) {
    return response.status();
  }
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }

  // The plan arrives as a PlanStore record: CRC-validated, signature-embedded. Decode
  // and cross-check before trusting a single field.
  StatusOr<std::pair<PlanSignature, BatchPlan>> record =
      PlanStore::DecodeRecord(response.value().record);
  if (!record.ok()) {
    return record.status();
  }
  PlanSignature sig;
  sig.lo = response.value().signature_lo;
  sig.hi = response.value().signature_hi;
  if (!(record.value().first == sig)) {
    return Status::DataLoss("response record signature " +
                            record.value().first.ToHex() +
                            " does not match response header " + sig.ToHex());
  }

  auto compiled = std::make_shared<CompiledPlan>();
  compiled->signature = sig;
  compiled->plan = std::move(record).value().second;
  // Masks are derived deterministically from the request, exactly as the engine's
  // store-hit path rebuilds them: rebuilding is O(tokens), shipping them is not.
  compiled->masks = BuildBatchMasks(mask_spec, seqlens);
  PlanHandle handle = std::move(compiled);
  CacheInsert(key, handle);
  {
    MutexLock lock(cache_mu_);
    last_source_ = response.value().source;
  }
  const int source_index = static_cast<int>(response.value().source);
  if (timed && source_index >= 0 && source_index < 5) {
    serve_latency_us_[source_index]->Record(metrics::MonotonicMicros() - start_us);
  }
  return handle;
}

StatusOr<PlanHandle> PlanClient::Plan(const std::vector<int64_t>& seqlens,
                                      const MaskSpec& mask_spec) {
  return PlanWithBlockSize(seqlens, mask_spec, /*block_size=*/0);
}

StatusOr<PlanHandle> PlanClient::PlanForLoader(const std::vector<int64_t>& seqlens,
                                               const MaskSpec& mask_spec) {
  return PlanWithBlockSize(seqlens, mask_spec, /*block_size=*/0);
}

PlanServeSource PlanClient::last_source() const {
  MutexLock lock(cache_mu_);
  return last_source_;
}

StatusOr<PlanServiceStatsResponse> PlanClient::ServerStats(
    const std::string& tenant_filter) {
  PlanServiceStatsRequest request;
  request.tenant = tenant_filter;
  StatusOr<Frame> reply =
      Roundtrip(FrameType::kStatsRequest, SerializePlanServiceStatsRequest(request),
                FrameType::kStatsResponse);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().type == FrameType::kErrorResponse) {
    return DecodeErrorFrame(reply.value());
  }
  return DeserializePlanServiceStatsResponse(reply.value().payload);
}

StatusOr<PlanServiceMetricsResponse> PlanClient::ServerMetrics(
    const std::string& name_prefix) {
  PlanServiceMetricsRequest request;
  request.name_prefix = name_prefix;
  StatusOr<Frame> reply =
      Roundtrip(FrameType::kMetricsRequest,
                SerializePlanServiceMetricsRequest(request),
                FrameType::kMetricsResponse);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().type == FrameType::kErrorResponse) {
    return DecodeErrorFrame(reply.value());
  }
  StatusOr<PlanServiceMetricsResponse> response =
      DeserializePlanServiceMetricsResponse(reply.value().payload);
  if (!response.ok()) {
    return response.status();
  }
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }
  return response;
}

PlanClientStats PlanClient::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void PlanClient::ClearCache() {
  MutexLock lock(cache_mu_);
  lru_.clear();
  cache_.clear();
}

}  // namespace dcp
