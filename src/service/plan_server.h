// dcp::PlanServer — the serving half of the planning service (dcp::PlanService = this
// server + the TenantRegistry engine pool + PlanClient). The paper overlaps planning
// with training because planning is the shared CPU-bound bottleneck (§6.1); at
// production scale that planner belongs in its own process so many trainer ranks (and
// many jobs) share one warm plan cache instead of each re-planning identical batch
// shapes.
//
// Threading model:
//   - one accept thread (poll loop, stoppable without signals),
//   - one blocking reader thread per connection (frame decode only — cheap),
//   - a ThreadPool of `workers` that executes the actual planning, fed through a
//     bounded in-flight budget: when `max_queue` requests are already queued or
//     running, new requests are rejected immediately with UNAVAILABLE instead of
//     building an unbounded backlog (planning is expensive; a deep queue would just
//     convert overload into timeout storms).
//
// Responses are written under a per-connection mutex, so worker threads and the
// reader's overload/error replies never interleave bytes on one stream. A malformed
// frame (bad magic/CRC/length) is counted, answered with an error frame when possible,
// and the connection is dropped — framing sync is gone — but the server keeps serving
// every other connection.
#ifndef DCP_SERVICE_PLAN_SERVER_H_
#define DCP_SERVICE_PLAN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "runtime/instructions.h"
#include "service/fault_injection.h"
#include "service/frame.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

namespace dcp {

struct PlanServerOptions {
  int workers = 2;
  // In-flight request bound (queued + executing). At the bound, requests are rejected
  // with UNAVAILABLE ("overloaded") instead of queued. 0 rejects everything — useful
  // for drain/maintenance mode and for testing client backoff paths.
  int max_queue = 64;
  // Per-tenant in-flight bound (0 disables): one tenant's burst gets UNAVAILABLE for
  // that tenant only, while every other tenant keeps planning. Enforced in the reader
  // (the request is decoded before admission), counted per tenant in the stats RPC.
  int max_inflight_per_tenant = 0;
  // Cap on inbound REQUEST frames. Requests (tenant + seqlens + mask params) are a few
  // KB; only responses carry compiled plans. ReadFrame commits the claimed length
  // before the checksum can be verified, so a small request cap is what stops a
  // malicious 16-byte header from committing a giant allocation per connection.
  uint64_t max_frame_payload_bytes = uint64_t{1} << 20;
  // Encoded-record LRU: compiled plans are immutable per signature, so the wire bytes
  // (PlanStore record: serialize + CRC) are computed once and replayed on every
  // subsequent hit — the record encode would otherwise dominate the server-cache-hit
  // RPC latency. 0 disables (every response re-encodes).
  int record_cache_capacity = 256;
  // Anti-entropy gossip: every gossip_interval_ms (0 disables), a background task
  // exchanges per-tenant signature indexes with each peer replica and pulls the
  // records it lacks, so a plan computed once becomes warm fleet-wide.
  std::vector<ServiceAddress> peers;
  int gossip_interval_ms = 0;
  int max_sync_records_per_exchange = 64;
  // Records adopted from peers (and servable without replanning), LRU-bounded. The
  // key — the plan signature — fully determines the plan bytes, so the tier is shared
  // across tenants by construction.
  int replica_record_cache_capacity = 1024;
  // When set, this server consults the injector at FaultPoint::kServe before planning
  // (straggler delays, chaos-mode failures) and at kSyncRecord when shipping gossip
  // records (stale-record corruption). Transport-level faults attach via the global
  // injector instead (see service/fault_injection.h).
  std::shared_ptr<FaultInjector> fault_injector;
};

struct PlanServerStats {
  int64_t connections_accepted = 0;
  int64_t requests_received = 0;   // Well-formed request frames (plan + stats + sync).
  int64_t responses_sent = 0;
  int64_t plan_ok = 0;
  int64_t plan_errors = 0;         // Plan requests answered with a non-OK status.
  int64_t rejected_overload = 0;
  int64_t malformed_frames = 0;
  int64_t shed_quota = 0;          // Rejected over a tenant's in-flight quota.
  int64_t shed_deadline = 0;       // Dropped unplanned: the deadline had expired.
  int64_t replica_cache_hits = 0;  // Plan requests served from gossip-adopted records.
  int64_t sync_records_shipped = 0;
  int64_t sync_records_adopted = 0;
  int64_t sync_records_rejected = 0;  // Peer records that failed validation.
};

class PlanServer {
 public:
  PlanServer(std::shared_ptr<TenantRegistry> registry, PlanServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  // Binds `address` and starts the accept loop + worker pool. For tcp:...:0 the
  // ephemeral port is visible through bound_address().
  Status Start(const ServiceAddress& address);
  const ServiceAddress& bound_address() const { return bound_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Stops accepting, unblocks and joins every connection reader, and drains in-flight
  // work. Idempotent; also run by the destructor.
  void Stop();

  PlanServerStats stats() const;
  // The stats RPC's view: server counters + per-tenant engine cache counters.
  PlanServiceStatsResponse BuildStatsResponse(const std::string& tenant_filter) const;

  TenantRegistry& registry() { return *registry_; }

 private:
  struct Connection {
    Socket socket;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> done{false};
    // Worker jobs still holding this connection; it is only reaped at zero, so a
    // response write can never race connection destruction.
    std::atomic<int> pending_jobs{0};
  };

  void AcceptLoop();
  void ReadLoop(Connection* conn);
  // Decodes and executes one non-plan request frame on a worker thread.
  void HandleFrame(Connection* conn, Frame frame);
  // One admitted plan request on a worker thread: chaos delay, deadline shed, plan,
  // respond, release the tenant quota slot.
  void HandlePlanJob(Connection* conn, PlanServiceRequest request, int64_t arrival_ms,
                     bool quota_held);
  PlanServiceResponse HandlePlanRequest(const PlanServiceRequest& request);
  PlanSyncResponse HandleSyncRequest(const PlanSyncRequest& request);
  void WriteResponse(Connection* conn, FrameType type, std::string_view payload);
  void ReapFinishedConnections();  // Joins readers whose connections closed.
  // The PlanStore record bytes for `handle`, from the encoded-record LRU when present.
  std::shared_ptr<const std::string> EncodedRecordFor(const PlanHandle& handle);

  // Gossip-adopted record tier.
  std::shared_ptr<const std::string> ReplicaRecordLookup(const PlanSignature& sig);
  void ReplicaRecordAdopt(const PlanSignature& sig,
                          std::shared_ptr<const std::string> record);
  std::vector<std::pair<uint64_t, uint64_t>> LocalSignatureIndex(Engine& engine);
  void GossipLoop();
  void GossipWithPeer(const ServiceAddress& peer);

  const std::shared_ptr<TenantRegistry> registry_;
  const PlanServerOptions options_;

  Listener listener_;
  ServiceAddress bound_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::thread gossip_thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> in_flight_{0};

  std::mutex gossip_mu_;  // Pairs with gossip_cv_ for an interruptible interval sleep.
  std::condition_variable gossip_cv_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex record_cache_mu_;
  std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>> record_lru_;
  std::unordered_map<
      PlanSignature,
      std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>>::iterator,
      PlanSignatureHash>
      record_cache_;

  // Records other replicas computed, pulled by gossip; signature-keyed, LRU-bounded.
  std::mutex replica_cache_mu_;
  std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>> replica_lru_;
  std::unordered_map<
      PlanSignature,
      std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>>::iterator,
      PlanSignatureHash>
      replica_cache_;

  // Per-tenant in-flight counts (admission quota); keyed only for registered tenants.
  std::mutex quota_mu_;
  std::unordered_map<std::string, int> tenant_inflight_;

  mutable std::mutex stats_mu_;
  PlanServerStats stats_;
  struct TenantCounters {
    int64_t requests = 0;
    int64_t plan_errors = 0;
    int64_t shed_quota = 0;
  };
  std::unordered_map<std::string, TenantCounters> tenant_counters_;
};

}  // namespace dcp

#endif  // DCP_SERVICE_PLAN_SERVER_H_
