// dcp::PlanServer — the serving half of the planning service (dcp::PlanService = this
// server + the TenantRegistry engine pool + PlanClient). The paper overlaps planning
// with training because planning is the shared CPU-bound bottleneck (§6.1); at
// production scale that planner belongs in its own process so many trainer ranks (and
// many jobs) share one warm plan cache instead of each re-planning identical batch
// shapes.
//
// Threading model — event-driven, bounded thread count independent of connections:
//   - a fixed pool of `io_threads` loop threads, each multiplexing its share of the
//     connections through a Poller (epoll on Linux, poll fallback). Loop 0 also owns
//     the non-blocking listener: accept errors are transient operational conditions
//     (EMFILE, ECONNABORTED), answered with backoff + retry, never loop exit.
//   - non-blocking reads into a per-connection FrameAssembler; complete frames are
//     admitted (overload / per-tenant quota) on the loop thread and executed on a
//     ThreadPool of `workers` that does the actual planning.
//   - responses are queued on a per-connection outbox and drained by the owning loop
//     with writev: the frame header + payload head ride one iovec, the cached PlanStore
//     record bytes ride another, so the hit path never copies the record. A reader that
//     stops draining is bounded by `max_output_queue_bytes` and then closed (slow
//     readers shed whole connections, never individual responses, so the strict
//     request-response ordering of the protocol survives).
//
// A malformed frame (bad magic/CRC/length) is counted, answered with an error frame,
// and the connection is drained then dropped — framing sync is gone — but the server
// keeps serving every other connection.
#ifndef DCP_SERVICE_PLAN_SERVER_H_
#define DCP_SERVICE_PLAN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "runtime/instructions.h"
#include "service/event_loop.h"
#include "service/fault_injection.h"
#include "service/frame.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

namespace dcp {

struct PlanServerOptions {
  int workers = 2;
  // IO loop threads. Each multiplexes its share of all connections, so the server's
  // thread count is workers + io_threads + (gossip ? 1 : 0) regardless of how many
  // clients connect.
  int io_threads = 2;
  // listen(2) backlog; <= 0 uses SOMAXCONN. A connection burst deeper than the backlog
  // is SYN-dropped by the kernel and surfaces as client connect timeouts.
  int listen_backlog = 0;
  // Per-connection response outbox bound. A connection whose peer stops draining
  // responses is closed once this many queued bytes accumulate (slow-reader shedding);
  // the buffers a dead-slow reader pins are otherwise unbounded.
  size_t max_output_queue_bytes = size_t{8} << 20;
  // Test/diagnostic knob: use the portable poll(2) backend even where epoll exists,
  // so the fallback stays continuously exercised.
  bool force_poll_backend = false;
  // In-flight request bound (queued + executing). At the bound, requests are rejected
  // with UNAVAILABLE ("overloaded") instead of queued. 0 rejects everything — useful
  // for drain/maintenance mode and for testing client backoff paths.
  int max_queue = 64;
  // Per-tenant in-flight bound (0 disables): one tenant's burst gets UNAVAILABLE for
  // that tenant only, while every other tenant keeps planning. Enforced on the loop
  // thread (the request is decoded before admission), counted per tenant in the stats
  // RPC.
  int max_inflight_per_tenant = 0;
  // Cap on inbound REQUEST frames. Requests (tenant + seqlens + mask params) are a few
  // KB; only responses carry compiled plans. The frame header commits the claimed
  // length before the checksum can be verified, so a small request cap is what stops a
  // malicious 16-byte header from committing a giant allocation per connection.
  uint64_t max_frame_payload_bytes = uint64_t{1} << 20;
  // Encoded-record LRU: compiled plans are immutable per signature, so the wire bytes
  // (PlanStore record: serialize + CRC) are computed once and replayed on every
  // subsequent hit — the record encode would otherwise dominate the server-cache-hit
  // RPC latency. 0 disables (every response re-encodes).
  int record_cache_capacity = 256;
  // Anti-entropy gossip: every gossip_interval_ms (0 disables), a background task
  // exchanges per-tenant signature indexes with each peer replica and pulls the
  // records it lacks, so a plan computed once becomes warm fleet-wide.
  std::vector<ServiceAddress> peers;
  int gossip_interval_ms = 0;
  int max_sync_records_per_exchange = 64;
  // Records adopted from peers (and servable without replanning), LRU-bounded. The
  // key — the plan signature — fully determines the plan bytes, so the tier is shared
  // across tenants by construction.
  int replica_record_cache_capacity = 1024;
  // Per-request phase tracing: every completed plan request leaves a trace
  // (queue-wait / cache-probe / store-read / plan stages / encode / write-drain)
  // in a bounded in-memory ring, newest first. Requests slower than
  // slow_request_log_ms end to end (arrival to last response byte handed to the
  // kernel) are additionally logged to stderr with their phase breakdown; 0
  // disables the slow log.
  int trace_ring_capacity = 256;
  int64_t slow_request_log_ms = 1000;
  // When set, this server consults the injector at FaultPoint::kServe before planning
  // (straggler delays, chaos-mode failures), at kAccept on each accept attempt
  // (simulated EMFILE/ECONNABORTED pressure), and at kSyncRecord when shipping gossip
  // records (stale-record corruption). Transport-level faults attach via the global
  // injector instead (see service/fault_injection.h).
  std::shared_ptr<FaultInjector> fault_injector;
};

struct PlanServerStats {
  int64_t connections_accepted = 0;
  int64_t requests_received = 0;   // Well-formed request frames (plan + stats + sync).
  int64_t responses_sent = 0;
  int64_t plan_ok = 0;
  int64_t plan_errors = 0;         // Plan requests answered with a non-OK status.
  int64_t rejected_overload = 0;
  int64_t malformed_frames = 0;
  int64_t shed_quota = 0;          // Rejected over a tenant's in-flight quota.
  int64_t shed_deadline = 0;       // Dropped unplanned: the deadline had expired.
  int64_t replica_cache_hits = 0;  // Plan requests served from gossip-adopted records.
  int64_t sync_records_shipped = 0;
  int64_t sync_records_adopted = 0;
  int64_t sync_records_rejected = 0;  // Peer records that failed validation.
  // Transient accept failures (injected or real EMFILE/ENFILE/ECONNABORTED) answered
  // with backoff + retry instead of killing the accept path.
  int64_t accept_soft_errors = 0;
  // Plan responses whose record bytes were written straight from the shared cached
  // record (writev), with zero copies of the record on the serve path.
  int64_t zero_copy_serves = 0;
  // Connections closed because the peer stopped draining and the outbox hit
  // max_output_queue_bytes.
  int64_t slow_reader_closes = 0;
};

class PlanServer {
 public:
  PlanServer(std::shared_ptr<TenantRegistry> registry, PlanServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  // Binds `address` and starts the IO loops + worker pool. For tcp:...:0 the
  // ephemeral port is visible through bound_address().
  Status Start(const ServiceAddress& address);
  const ServiceAddress& bound_address() const { return bound_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Stops accepting, joins the IO loops, and drains in-flight work. Idempotent; also
  // run by the destructor.
  void Stop();

  PlanServerStats stats() const;
  // Recent completed plan-request traces, newest first (see trace_ring_capacity).
  std::vector<metrics::Trace> recent_traces() const { return trace_ring_.Snapshot(); }
  // The stats RPC's view: server counters + per-tenant engine cache counters.
  PlanServiceStatsResponse BuildStatsResponse(const std::string& tenant_filter) const;

  TenantRegistry& registry() { return *registry_; }

  // IO loop threads actually running (0 when stopped). Published atomically in
  // Start()/Stop() so stats pollers never race Stop() clearing loops_.
  int io_thread_count() const {
    return io_thread_count_.load(std::memory_order_acquire);
  }
  // The readiness backend the loops selected; meaningful only while running.
  // Same publication discipline as io_thread_count().
  Poller::Backend poller_backend() const {
    return static_cast<Poller::Backend>(
        poller_backend_.load(std::memory_order_acquire));
  }

 private:
  // Write-drain bookkeeping riding 1:1 with one outbox entry. The trace (null for
  // non-plan frames) is finalized — write-drain phase, total latency into the
  // serve-source histogram, ring push, slow log — when its frame's last byte is
  // handed to the kernel, or when the connection dies with the frame still queued.
  // No default member initializers: the enclosing class's QueueResponse default
  // argument value-initializes one, which the language forbids before PlanServer is
  // complete if NSDMIs are present — construct with {} everywhere instead.
  struct PendingResponseTrace {
    std::shared_ptr<metrics::Trace> trace;
    metrics::Histogram* latency_hist;  // Resolved by the enqueuing worker.
    int64_t enqueue_us;
    bool armed() const { return trace != nullptr; }
  };

  // One accepted connection. The fields below `mu` are shared between the owning loop
  // thread and worker threads; everything above it is loop-thread-only.
  struct Connection {
    explicit Connection(uint64_t max_payload_bytes) : assembler(max_payload_bytes) {}

    Socket socket;
    int fd = -1;
    int loop_index = 0;
    FrameAssembler assembler;
    bool read_open = true;          // recv still expected; cleared on EOF/desync.
    bool close_after_drain = false; // Malformed stream: close once the outbox drains.
    bool registered_write = false;  // Poller currently watches writability.
    size_t front_offset = 0;        // Bytes of outbox.front() already written.

    // Innermost: QueueResponse takes it last, nothing is acquired under it.
    // dcp-analyze: allow(lock-order): leaf lock.
    Mutex mu;
    // Only the loop thread pops; workers only push.
    std::deque<FrameParts> outbox DCP_GUARDED_BY(mu);
    // Element i annotates outbox[i]; pushed and popped in lockstep with it.
    std::deque<PendingResponseTrace> outbox_traces DCP_GUARDED_BY(mu);
    size_t outbox_bytes DCP_GUARDED_BY(mu) = 0;
    // A pointer to this conn sits in the loop's notify queue.
    bool notified DCP_GUARDED_BY(mu) = false;
    // No more responses accepted; loop closes when it sees it.
    bool dead DCP_GUARDED_BY(mu) = false;
    // Worker jobs still holding this connection; it is only freed at zero, so a
    // response enqueue can never race connection destruction.
    std::atomic<int> pending_jobs{0};
  };

  // One IO thread's state. `conns`/`graveyard` are owned by the loop thread alone;
  // `mu` guards the two cross-thread queues.
  struct IoLoop {
    explicit IoLoop(bool prefer_epoll) : poller(prefer_epoll) {}

    int index = 0;
    Poller poller;
    int wake_fd = -1;  // eventfd; workers and Stop() write, the loop drains.
    std::thread thread;
    // Live per-loop gauges (labeled loop="<index>"): frames and bytes currently
    // queued across this loop's connection outboxes. Adjusted wherever outbox
    // entries are pushed, drained, or discarded.
    metrics::Gauge* queue_depth = nullptr;
    metrics::Gauge* output_queue_bytes = nullptr;

    // Innermost: held only around queue push/swap, nothing acquired under it.
    // dcp-analyze: allow(lock-order): leaf lock.
    Mutex mu;
    // Conns with freshly queued responses.
    std::vector<Connection*> notify_queue DCP_GUARDED_BY(mu);
    // Routed by the accept loop.
    std::vector<std::unique_ptr<Connection>> incoming DCP_GUARDED_BY(mu);

    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    // Closed conns still pinned by worker jobs or a queued notification.
    std::vector<std::unique_ptr<Connection>> graveyard;

    // Accept backoff state (loop 0 only).
    bool accept_paused = false;
    int64_t accept_resume_ms = 0;
    int64_t accept_backoff_ms = 1;
  };

  // A decoded plan request in flight to a worker: the wire payload plus the arena the
  // request view's spans point into, so the worker plans straight off the wire bytes.
  struct PlanJob;


  struct ServeResult {
    PlanServiceResponse response;  // record always empty; the bytes travel separately.
    std::shared_ptr<const std::string> record;  // Null for error responses.
  };

  void IoLoopMain(IoLoop& loop);
  void Wake(IoLoop& loop);
  void DrainWake(IoLoop& loop);
  void DoAccept(IoLoop& loop);
  void PauseAccept(IoLoop& loop);
  void ResumeAccept(IoLoop& loop);
  void AdoptConnection(IoLoop& loop, std::unique_ptr<Connection> conn);
  void AdoptIncoming(IoLoop& loop);
  void ProcessNotifies(IoLoop& loop);
  void OnReadable(IoLoop& loop, Connection* conn);
  void ProcessInbound(IoLoop& loop, Connection* conn);
  // Admission (overload, per-tenant quota) + dispatch of one well-formed frame.
  void HandleInboundFrame(IoLoop& loop, Connection* conn, Frame frame);
  void FlushWrites(IoLoop& loop, Connection* conn);
  void CloseConn(IoLoop& loop, Connection* conn);
  // Closes the connection once nothing more can or should be written.
  void MaybeFinish(IoLoop& loop, Connection* conn);
  void Reap(IoLoop& loop);

  // Queues one encoded frame for the owning loop to write; sheds the connection if the
  // outbox bound is exceeded. Callable from any thread.
  void QueueResponse(Connection* conn, FrameParts parts,
                     PendingResponseTrace trace = PendingResponseTrace());
  // Frames a plan response as head + shared record bytes (zero-copy on the hit path).
  void QueuePlanResponse(Connection* conn, const PlanServiceResponse& response,
                         std::shared_ptr<const std::string> record,
                         std::shared_ptr<metrics::Trace> trace = nullptr);
  // Closes out a drained (or discarded) response's trace: write-drain phase, total
  // latency, histogram record, ring push, slow-request log.
  void FinalizeResponseTrace(PendingResponseTrace& pending, bool drained);

  // Decodes and executes one non-plan request frame on a worker thread.
  void HandleFrame(Connection* conn, Frame frame);
  // One admitted plan request on a worker thread: chaos delay, deadline shed, plan,
  // respond, release the tenant quota slot.
  void HandlePlanJob(Connection* conn, const std::shared_ptr<PlanJob>& job);
  ServeResult HandlePlanRequest(const std::string& tenant,
                                std::span<const int64_t> seqlens,
                                const MaskSpec& mask_spec, int64_t block_size);
  PlanSyncResponse HandleSyncRequest(const PlanSyncRequest& request);
  // The PlanStore record bytes for `handle`, from the encoded-record LRU when present.
  std::shared_ptr<const std::string> EncodedRecordFor(const PlanHandle& handle);

  // Gossip-adopted record tier.
  std::shared_ptr<const std::string> ReplicaRecordLookup(const PlanSignature& sig);
  void ReplicaRecordAdopt(const PlanSignature& sig,
                          std::shared_ptr<const std::string> record);
  std::vector<std::pair<uint64_t, uint64_t>> LocalSignatureIndex(Engine& engine);
  void GossipLoop();
  void GossipWithPeer(const ServiceAddress& peer);

  const std::shared_ptr<TenantRegistry> registry_;
  const PlanServerOptions options_;

  Listener listener_;
  ServiceAddress bound_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::atomic<uint64_t> next_loop_{0};  // Round-robin connection routing.
  std::thread gossip_thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> in_flight_{0};
  // Snapshots of loops_ facts for lock-free stats pollers (see io_thread_count()).
  std::atomic<int> io_thread_count_{0};
  std::atomic<int> poller_backend_{static_cast<int>(Poller::Backend::kPoll)};

  Mutex gossip_mu_;  // Pairs with gossip_cv_ for an interruptible interval sleep.
  CondVar gossip_cv_;

  Mutex record_cache_mu_;
  std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>> record_lru_
      DCP_GUARDED_BY(record_cache_mu_);
  std::unordered_map<
      PlanSignature,
      std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>>::iterator,
      PlanSignatureHash>
      record_cache_ DCP_GUARDED_BY(record_cache_mu_);

  // Records other replicas computed, pulled by gossip; signature-keyed, LRU-bounded.
  Mutex replica_cache_mu_;
  std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>> replica_lru_
      DCP_GUARDED_BY(replica_cache_mu_);
  std::unordered_map<
      PlanSignature,
      std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>>::iterator,
      PlanSignatureHash>
      replica_cache_ DCP_GUARDED_BY(replica_cache_mu_);

  // Per-tenant in-flight counts (admission quota); keyed only for registered tenants.
  Mutex quota_mu_ DCP_ACQUIRED_BEFORE(stats_mu_);
  std::unordered_map<std::string, int> tenant_inflight_ DCP_GUARDED_BY(quota_mu_);

  // Tentpole observability (common/metrics.h): every server counter lives in a
  // child registry attached to the process-global one, and PlanServerStats is a
  // thin view assembled from the counters' atomic cells — stats() and the scrape
  // can never disagree. Pointers resolved once in the constructor.
  std::shared_ptr<metrics::Registry> metrics_;
  struct ServerCounters {
    metrics::Counter* connections_accepted = nullptr;
    metrics::Counter* requests_received = nullptr;
    metrics::Counter* responses_sent = nullptr;
    metrics::Counter* plan_ok = nullptr;
    metrics::Counter* plan_errors = nullptr;
    metrics::Counter* rejected_overload = nullptr;
    metrics::Counter* malformed_frames = nullptr;
    metrics::Counter* shed_quota = nullptr;
    metrics::Counter* shed_deadline = nullptr;
    metrics::Counter* replica_cache_hits = nullptr;
    metrics::Counter* sync_records_shipped = nullptr;
    metrics::Counter* sync_records_adopted = nullptr;
    metrics::Counter* sync_records_rejected = nullptr;
    metrics::Counter* accept_soft_errors = nullptr;
    metrics::Counter* zero_copy_serves = nullptr;
    metrics::Counter* slow_reader_closes = nullptr;
  };
  ServerCounters counters_;
  metrics::TraceRing trace_ring_;

  // Per-tenant request counters, registry-backed (labeled tenant="<name>"); the map
  // only caches the pointer lookups. Keyed only for registered tenants.
  struct TenantCounters {
    metrics::Counter* requests = nullptr;
    metrics::Counter* plan_errors = nullptr;
    metrics::Counter* shed_quota = nullptr;
  };
  TenantCounters& TenantCountersFor(const std::string& tenant);
  metrics::Histogram* ServeHistogramFor(const std::string& tenant,
                                        PlanServeSource source);
  mutable Mutex stats_mu_;
  std::unordered_map<std::string, TenantCounters> tenant_counters_
      DCP_GUARDED_BY(stats_mu_);
};

}  // namespace dcp

#endif  // DCP_SERVICE_PLAN_SERVER_H_
