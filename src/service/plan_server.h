// dcp::PlanServer — the serving half of the planning service (dcp::PlanService = this
// server + the TenantRegistry engine pool + PlanClient). The paper overlaps planning
// with training because planning is the shared CPU-bound bottleneck (§6.1); at
// production scale that planner belongs in its own process so many trainer ranks (and
// many jobs) share one warm plan cache instead of each re-planning identical batch
// shapes.
//
// Threading model:
//   - one accept thread (poll loop, stoppable without signals),
//   - one blocking reader thread per connection (frame decode only — cheap),
//   - a ThreadPool of `workers` that executes the actual planning, fed through a
//     bounded in-flight budget: when `max_queue` requests are already queued or
//     running, new requests are rejected immediately with UNAVAILABLE instead of
//     building an unbounded backlog (planning is expensive; a deep queue would just
//     convert overload into timeout storms).
//
// Responses are written under a per-connection mutex, so worker threads and the
// reader's overload/error replies never interleave bytes on one stream. A malformed
// frame (bad magic/CRC/length) is counted, answered with an error frame when possible,
// and the connection is dropped — framing sync is gone — but the server keeps serving
// every other connection.
#ifndef DCP_SERVICE_PLAN_SERVER_H_
#define DCP_SERVICE_PLAN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "runtime/instructions.h"
#include "service/frame.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

namespace dcp {

struct PlanServerOptions {
  int workers = 2;
  // In-flight request bound (queued + executing). At the bound, requests are rejected
  // with UNAVAILABLE ("overloaded") instead of queued. 0 rejects everything — useful
  // for drain/maintenance mode and for testing client backoff paths.
  int max_queue = 64;
  // Cap on inbound REQUEST frames. Requests (tenant + seqlens + mask params) are a few
  // KB; only responses carry compiled plans. ReadFrame commits the claimed length
  // before the checksum can be verified, so a small request cap is what stops a
  // malicious 16-byte header from committing a giant allocation per connection.
  uint64_t max_frame_payload_bytes = uint64_t{1} << 20;
  // Encoded-record LRU: compiled plans are immutable per signature, so the wire bytes
  // (PlanStore record: serialize + CRC) are computed once and replayed on every
  // subsequent hit — the record encode would otherwise dominate the server-cache-hit
  // RPC latency. 0 disables (every response re-encodes).
  int record_cache_capacity = 256;
};

struct PlanServerStats {
  int64_t connections_accepted = 0;
  int64_t requests_received = 0;   // Well-formed request frames (plan + stats).
  int64_t responses_sent = 0;
  int64_t plan_ok = 0;
  int64_t plan_errors = 0;         // Plan requests answered with a non-OK status.
  int64_t rejected_overload = 0;
  int64_t malformed_frames = 0;
};

class PlanServer {
 public:
  PlanServer(std::shared_ptr<TenantRegistry> registry, PlanServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  // Binds `address` and starts the accept loop + worker pool. For tcp:...:0 the
  // ephemeral port is visible through bound_address().
  Status Start(const ServiceAddress& address);
  const ServiceAddress& bound_address() const { return bound_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Stops accepting, unblocks and joins every connection reader, and drains in-flight
  // work. Idempotent; also run by the destructor.
  void Stop();

  PlanServerStats stats() const;
  // The stats RPC's view: server counters + per-tenant engine cache counters.
  PlanServiceStatsResponse BuildStatsResponse(const std::string& tenant_filter) const;

  TenantRegistry& registry() { return *registry_; }

 private:
  struct Connection {
    Socket socket;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> done{false};
    // Worker jobs still holding this connection; it is only reaped at zero, so a
    // response write can never race connection destruction.
    std::atomic<int> pending_jobs{0};
  };

  void AcceptLoop();
  void ReadLoop(Connection* conn);
  // Decodes and executes one request frame on a worker thread.
  void HandleFrame(Connection* conn, Frame frame);
  PlanServiceResponse HandlePlanRequest(const PlanServiceRequest& request);
  void WriteResponse(Connection* conn, FrameType type, std::string_view payload);
  void ReapFinishedConnections();  // Joins readers whose connections closed.
  // The PlanStore record bytes for `handle`, from the encoded-record LRU when present.
  std::shared_ptr<const std::string> EncodedRecordFor(const PlanHandle& handle);

  const std::shared_ptr<TenantRegistry> registry_;
  const PlanServerOptions options_;

  Listener listener_;
  ServiceAddress bound_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> in_flight_{0};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex record_cache_mu_;
  std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>> record_lru_;
  std::unordered_map<
      PlanSignature,
      std::list<std::pair<PlanSignature, std::shared_ptr<const std::string>>>::iterator,
      PlanSignatureHash>
      record_cache_;

  mutable std::mutex stats_mu_;
  PlanServerStats stats_;
  struct TenantCounters {
    int64_t requests = 0;
    int64_t plan_errors = 0;
  };
  std::unordered_map<std::string, TenantCounters> tenant_counters_;
};

}  // namespace dcp

#endif  // DCP_SERVICE_PLAN_SERVER_H_
