#include "service/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "service/fault_injection.h"

namespace dcp {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Builds a sockaddr for `address`. Returns the length to pass to bind/connect.
StatusOr<socklen_t> FillSockaddr(const ServiceAddress& address,
                                 sockaddr_storage* storage) {
  std::memset(storage, 0, sizeof(*storage));
  if (address.kind == ServiceAddress::Kind::kTcp) {
    auto* sin = reinterpret_cast<sockaddr_in*>(storage);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(static_cast<uint16_t>(address.port));
    if (::inet_pton(AF_INET, address.host.c_str(), &sin->sin_addr) != 1) {
      return Status::InvalidArgument("cannot parse IPv4 address '" + address.host +
                                     "' (the service transport is numeric-IP only)");
    }
    return static_cast<socklen_t>(sizeof(sockaddr_in));
  }
  auto* sun = reinterpret_cast<sockaddr_un*>(storage);
  sun->sun_family = AF_UNIX;
  if (address.path.empty() || address.path.size() >= sizeof(sun->sun_path)) {
    return Status::InvalidArgument("unix socket path must be 1.." +
                                   std::to_string(sizeof(sun->sun_path) - 1) +
                                   " bytes: '" + address.path + "'");
  }
  std::memcpy(sun->sun_path, address.path.c_str(), address.path.size() + 1);
  return static_cast<socklen_t>(sizeof(sockaddr_un));
}

int64_t NowMs() { return metrics::MonotonicMillis(); }

}  // namespace

ServiceAddress ServiceAddress::Tcp(std::string host, int port) {
  ServiceAddress address;
  address.kind = Kind::kTcp;
  address.host = std::move(host);
  address.port = port;
  return address;
}

ServiceAddress ServiceAddress::Unix(std::string path) {
  ServiceAddress address;
  address.kind = Kind::kUnix;
  address.path = std::move(path);
  return address;
}

StatusOr<ServiceAddress> ServiceAddress::Parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) {
      return Status::InvalidArgument("unix address needs a path: '" + spec + "'");
    }
    return Unix(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
      return Status::InvalidArgument("tcp address must be tcp:host:port: '" + spec + "'");
    }
    const std::string port_text = rest.substr(colon + 1);
    int port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9' || port > 65535) {
        return Status::InvalidArgument("bad tcp port in '" + spec + "'");
      }
      port = port * 10 + (c - '0');
    }
    if (port > 65535) {
      return Status::InvalidArgument("bad tcp port in '" + spec + "'");
    }
    if (port == 0) {
      return Status::InvalidArgument(
          "tcp port must be 1..65535 in '" + spec +
          "' (port 0 would bind an ephemeral port or fail to connect; use "
          "ServiceAddress::Tcp(host, 0) to request an ephemeral bind explicitly)");
    }
    return Tcp(rest.substr(0, colon), port);
  }
  return Status::InvalidArgument("address must start with tcp: or unix: — got '" + spec +
                                 "'");
}

std::string ServiceAddress::ToString() const {
  if (kind == Kind::kTcp) {
    return "tcp:" + host + ":" + std::to_string(port);
  }
  return "unix:" + path;
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      io_timeout_ms_(other.io_timeout_ms_),
      injector_(std::move(other.injector_)) {
  other.fd_ = -1;
  other.io_timeout_ms_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    io_timeout_ms_ = other.io_timeout_ms_;
    injector_ = std::move(other.injector_);
    other.fd_ = -1;
    other.io_timeout_ms_ = -1;
  }
  return *this;
}

void Socket::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
}

Status Socket::WaitReady(short events, int64_t deadline_ms, const char* what) {
  pollfd pfd = {fd_, events, 0};
  for (;;) {
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                      std::to_string(io_timeout_ms_) + "ms");
    }
    const int ready = ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(
                                          remaining, 1000)));
    if (ready < 0 && errno != EINTR) {
      return Status::Internal(Errno("poll failed"));
    }
    if (ready > 0) {
      return Status::Ok();  // Readable/writable — or an error the IO call surfaces.
    }
  }
}

Status Socket::SendAll(std::string_view bytes) {
  if (!valid()) {
    return Status::Unavailable("send on closed socket");
  }
  if (injector_ != nullptr) {
    const FaultDecision fault = injector_->Decide(FaultPoint::kSend);
    switch (fault.action) {
      case FaultAction::kFail:
        Close();
        return Status::Unavailable("fault injection: send failed");
      case FaultAction::kTear: {
        // Let the first bytes through, then kill the connection: the peer observes a
        // real torn frame (DATA_LOSS mid-payload), not a clean hangup.
        const size_t keep = std::min(fault.tear_bytes, bytes.size());
        if (keep > 0) {
          (void)::send(fd_, bytes.data(), keep, MSG_NOSIGNAL);
        }
        Shutdown();
        Close();
        return Status::Unavailable("fault injection: connection torn after " +
                                   std::to_string(keep) + " bytes");
      }
      case FaultAction::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      default:
        break;
    }
  }
  // With a timeout the socket stays blocking but IO goes through poll + MSG_DONTWAIT,
  // so one stalled peer cannot wedge the calling thread past its budget.
  const bool timed = io_timeout_ms_ >= 0;
  const int64_t deadline_ms = timed ? NowMs() + io_timeout_ms_ : 0;
  size_t sent = 0;
  while (sent < bytes.size()) {
    if (timed) {
      DCP_RETURN_IF_ERROR(WaitReady(POLLOUT, deadline_ms, "send"));
    }
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL | (timed ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR || (timed && (errno == EAGAIN || errno == EWOULDBLOCK))) {
        continue;
      }
      return Status::Unavailable(Errno("send failed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Socket::RecvAll(void* buf, size_t n) {
  if (!valid()) {
    return Status::Unavailable("recv on closed socket");
  }
  if (injector_ != nullptr) {
    const FaultDecision fault = injector_->Decide(FaultPoint::kRecv);
    switch (fault.action) {
      case FaultAction::kFail:
        Close();
        return Status::Unavailable("fault injection: recv failed");
      case FaultAction::kTear:
        Close();
        return Status::DataLoss("fault injection: read torn");
      case FaultAction::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      default:
        break;
    }
    if (!valid()) {
      return Status::Unavailable("recv on closed socket");
    }
  }
  const bool timed = io_timeout_ms_ >= 0;
  const int64_t deadline_ms = timed ? NowMs() + io_timeout_ms_ : 0;
  size_t got = 0;
  auto* out = static_cast<char*>(buf);
  while (got < n) {
    if (timed) {
      DCP_RETURN_IF_ERROR(WaitReady(POLLIN, deadline_ms, "recv"));
    }
    const ssize_t r = ::recv(fd_, out + got, n - got, timed ? MSG_DONTWAIT : 0);
    if (r < 0) {
      if (errno == EINTR || (timed && (errno == EAGAIN || errno == EWOULDBLOCK))) {
        continue;
      }
      return Status::Unavailable(Errno("recv failed"));
    }
    if (r == 0) {
      // A close on a frame boundary is how peers hang up; inside a frame it tore one.
      return got == 0 ? Status::Unavailable("connection closed")
                      : Status::DataLoss("connection closed mid-frame after " +
                                         std::to_string(got) + " bytes");
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status Socket::SetNonBlocking(bool nonblocking) {
  if (!valid()) {
    return Status::Unavailable("fcntl on closed socket");
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) {
    return Status::Internal(Errno("fcntl(F_GETFL) failed"));
  }
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) != 0) {
    return Status::Internal(Errno("fcntl(F_SETFL) failed"));
  }
  return Status::Ok();
}

IoResult Socket::ReadSome(void* buf, size_t n) {
  IoResult result;
  if (!valid()) {
    result.status = Status::Unavailable("recv on closed socket");
    return result;
  }
  if (injector_ != nullptr) {
    const FaultDecision fault = injector_->Decide(FaultPoint::kRecv);
    switch (fault.action) {
      case FaultAction::kFail:
        result.status = Status::Unavailable("fault injection: recv failed");
        return result;
      case FaultAction::kTear:
        result.status = Status::DataLoss("fault injection: read torn");
        return result;
      case FaultAction::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      default:
        break;
    }
  }
  for (;;) {
    const ssize_t r = ::recv(fd_, buf, n, MSG_DONTWAIT);
    if (r > 0) {
      result.kind = IoResult::Kind::kProgress;
      result.bytes = static_cast<size_t>(r);
      return result;
    }
    if (r == 0) {
      result.kind = IoResult::Kind::kEof;
      return result;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.kind = IoResult::Kind::kWouldBlock;
      return result;
    }
    result.status = Status::Unavailable(Errno("recv failed"));
    return result;
  }
}

IoResult Socket::Writev(const iovec* iov, int iovcnt) {
  IoResult result;
  if (!valid()) {
    result.status = Status::Unavailable("send on closed socket");
    return result;
  }
  iovec teared[8];
  if (injector_ != nullptr) {
    const FaultDecision fault = injector_->Decide(FaultPoint::kSend);
    switch (fault.action) {
      case FaultAction::kFail:
        result.status = Status::Unavailable("fault injection: send failed");
        return result;
      case FaultAction::kTear: {
        // Truncate the gather list to tear_bytes, flush that prefix, then half-close:
        // the peer observes a real torn frame (DATA_LOSS mid-payload), not a clean
        // hangup. The caller still owns the fd and closes it on the kError below.
        size_t budget = fault.tear_bytes;
        int kept = 0;
        for (int i = 0; i < iovcnt && kept < 8 && budget > 0; ++i) {
          teared[kept] = iov[i];
          if (teared[kept].iov_len > budget) {
            teared[kept].iov_len = budget;
          }
          budget -= teared[kept].iov_len;
          ++kept;
        }
        if (kept > 0) {
          msghdr msg{};
          msg.msg_iov = teared;
          msg.msg_iovlen = static_cast<size_t>(kept);
          (void)::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
        }
        Shutdown();
        result.status = Status::Unavailable("fault injection: connection torn after " +
                                            std::to_string(fault.tear_bytes) + " bytes");
        return result;
      }
      case FaultAction::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      default:
        break;
    }
  }
  for (;;) {
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      result.kind = IoResult::Kind::kProgress;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      // Zero-byte sends (empty gather list) must not spin the caller's drain loop.
      result.kind = IoResult::Kind::kWouldBlock;
      return result;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.kind = IoResult::Kind::kWouldBlock;
      return result;
    }
    result.status = Status::Unavailable(Errno("send failed"));
    return result;
  }
}

void Socket::Shutdown() {
  if (valid()) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> ConnectSocket(const ServiceAddress& address, int timeout_ms) {
  std::shared_ptr<FaultInjector> injector = GlobalFaultInjector();
  if (injector != nullptr) {
    const FaultDecision fault = injector->Decide(FaultPoint::kConnect);
    if (fault.action == FaultAction::kFail || fault.action == FaultAction::kTear) {
      return Status::Unavailable("fault injection: connection to " +
                                 address.ToString() + " refused");
    }
    if (fault.action == FaultAction::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    }
  }
  sockaddr_storage storage;
  StatusOr<socklen_t> len = FillSockaddr(address, &storage);
  if (!len.ok()) {
    return len.status();
  }
  const int domain =
      address.kind == ServiceAddress::Kind::kTcp ? AF_INET : AF_UNIX;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(Errno("socket failed"));
  }
  Socket sock(fd);
  if (timeout_ms >= 0) {
    // Bounded connect: non-blocking connect, poll for writability, then read the
    // kernel's verdict from SO_ERROR and restore blocking mode.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), len.value());
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0) {
        return Status::DeadlineExceeded("connect to " + address.ToString() +
                                        " timed out after " +
                                        std::to_string(timeout_ms) + "ms");
      }
      int so_error = 0;
      socklen_t so_len = sizeof(so_error);
      if (ready < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0 ||
          so_error != 0) {
        errno = so_error != 0 ? so_error : errno;
        return Status::Unavailable(Errno("cannot connect to " + address.ToString()));
      }
    } else if (rc != 0) {
      return Status::Unavailable(Errno("cannot connect to " + address.ToString()));
    }
    (void)::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len.value()) != 0) {
    return Status::Unavailable(Errno("cannot connect to " + address.ToString()));
  }
  if (address.kind == ServiceAddress::Kind::kTcp) {
    // Plan RPCs are small request / large response; never trade latency for batching.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  sock.set_fault_injector(std::move(injector));
  return sock;
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), wake_fd_(other.wake_fd_), bound_(std::move(other.bound_)) {
  other.fd_ = -1;
  other.wake_fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    wake_fd_ = other.wake_fd_;
    bound_ = std::move(other.bound_);
    other.fd_ = -1;
    other.wake_fd_ = -1;
  }
  return *this;
}

StatusOr<Listener> Listener::Bind(const ServiceAddress& address, int backlog) {
  if (address.kind == ServiceAddress::Kind::kUnix) {
    // Replace a stale socket file from a dead server; refuse to clobber anything that
    // is not a socket (a config typo must not delete a real file).
    struct stat st;
    if (::lstat(address.path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        return Status::InvalidArgument("refusing to replace non-socket file at " +
                                       address.path);
      }
      ::unlink(address.path.c_str());
    }
  }
  sockaddr_storage storage;
  StatusOr<socklen_t> len = FillSockaddr(address, &storage);
  if (!len.ok()) {
    return len.status();
  }
  const int domain =
      address.kind == ServiceAddress::Kind::kTcp ? AF_INET : AF_UNIX;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(Errno("socket failed"));
  }
  Listener listener;
  listener.fd_ = fd;
  listener.wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (listener.wake_fd_ < 0) {
    return Status::Internal(Errno("eventfd failed"));
  }
  if (address.kind == ServiceAddress::Kind::kTcp) {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), len.value()) != 0) {
    return Status::Unavailable(Errno("cannot bind " + address.ToString()));
  }
  if (::listen(fd, backlog > 0 ? backlog : SOMAXCONN) != 0) {
    return Status::Internal(Errno("cannot listen on " + address.ToString()));
  }
  listener.bound_ = address;
  if (address.kind == ServiceAddress::Kind::kTcp && address.port == 0) {
    sockaddr_in sin;
    socklen_t sin_len = sizeof(sin);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &sin_len) != 0) {
      return Status::Internal(Errno("getsockname failed"));
    }
    listener.bound_.port = ntohs(sin.sin_port);
  }
  return listener;
}

StatusOr<Socket> Listener::Accept(int timeout_ms) {
  if (!valid()) {
    return Status::Unavailable("listener closed");
  }
  pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_fd_, POLLIN, 0}};
  const int ready = ::poll(pfds, 2, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) {
      return Status::NotFound("accept interrupted");
    }
    return Status::Internal(Errno("poll failed"));
  }
  if (ready == 0) {
    return Status::NotFound("accept timeout");
  }
  if ((pfds[1].revents & POLLIN) != 0) {
    return Status::Unavailable("listener interrupted");
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    return Status::Unavailable(Errno("accept failed"));
  }
  if (bound_.kind == ServiceAddress::Kind::kTcp) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  Socket accepted(fd);
  // Chaos mode (dcpctl serve --chaos) faults server-side IO too.
  accepted.set_fault_injector(GlobalFaultInjector());
  return accepted;
}

void Listener::Interrupt() {
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    ssize_t written;
    do {
      written = ::write(wake_fd_, &one, sizeof(one));
    } while (written < 0 && errno == EINTR);
  }
}

void Listener::Close() {
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
    if (bound_.kind == ServiceAddress::Kind::kUnix && !bound_.path.empty()) {
      ::unlink(bound_.path.c_str());
    }
  }
}

}  // namespace dcp
