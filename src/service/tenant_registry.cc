#include "service/tenant_registry.h"

#include <algorithm>

namespace dcp {

Status TenantRegistry::Register(const TenantConfig& config) {
  if (config.name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (config.name.size() > 256) {
    return Status::InvalidArgument("tenant name too long: " + config.name);
  }
  // Engine construction (store warm-load included) happens outside the lock; only the
  // map insert is serialized.
  auto engine = std::make_shared<Engine>(config.cluster, config.options);
  MutexLock lock(mu_);
  const auto [it, inserted] = tenants_.emplace(config.name, std::move(engine));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("tenant '" + config.name + "' already registered");
  }
  return Status::Ok();
}

std::shared_ptr<Engine> TenantRegistry::Find(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::string> TenantRegistry::Names() const {
  std::vector<std::string> names;
  {
    MutexLock lock(mu_);
    names.reserve(tenants_.size());
    for (const auto& [name, engine] : tenants_) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dcp
