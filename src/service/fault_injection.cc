#include "service/fault_injection.h"

#include <cstdlib>
#include <utility>

namespace dcp {
namespace {

// splitmix64: one multiply-xor-shift chain per draw. Chosen because the whole stream
// is reproducible from a single u64 state — the determinism contract in the header.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitDouble(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

// Guards only the global injector slot pointer; held for a pointer copy.
// dcp-analyze: allow(lock-order): leaf lock.
Mutex g_global_mu;
std::shared_ptr<FaultInjector>& GlobalSlot() {
  static std::shared_ptr<FaultInjector> slot;
  return slot;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {
  for (int p = 0; p < kNumFaultPoints; ++p) {
    // Independent stream per point: seed xor a point-specific odd constant, warmed one
    // step so adjacent seeds do not produce adjacent first draws.
    streams_[p] = seed ^ (0xa076bc9d7ae53d4bULL * static_cast<uint64_t>(p + 1));
    (void)SplitMix64(&streams_[p]);
    ops_[p] = 0;
    rates_[p] = FaultRates{};
  }
}

void FaultInjector::SetRates(FaultPoint point, const FaultRates& rates) {
  MutexLock lock(mu_);
  rates_[static_cast<int>(point)] = rates;
}

FaultDecision FaultInjector::Decide(FaultPoint point) {
  const int p = static_cast<int>(point);
  MutexLock lock(mu_);
  const FaultRates& rates = rates_[p];
  const int64_t op = ++ops_[p];
  ++decisions_;

  FaultDecision decision;
  decision.delay_ms = rates.delay_ms;
  decision.tear_bytes = rates.tear_bytes;

  if (rates.every_n > 0 && op % rates.every_n == 0 &&
      rates.periodic_action != FaultAction::kNone) {
    decision.action = rates.periodic_action;
    ++injected_;
    return decision;
  }

  const double total = rates.fail + rates.tear + rates.delay + rates.stale;
  if (total <= 0.0) {
    decision.action = FaultAction::kNone;
    return decision;
  }
  // One draw per decision, even when it lands in the no-fault tail: the stream
  // position depends only on the operation count, never on earlier outcomes.
  const double u = UnitDouble(&streams_[p]);
  if (u < rates.fail) {
    decision.action = FaultAction::kFail;
  } else if (u < rates.fail + rates.tear) {
    decision.action = FaultAction::kTear;
  } else if (u < rates.fail + rates.tear + rates.delay) {
    decision.action = FaultAction::kDelay;
  } else if (u < total) {
    decision.action = FaultAction::kStale;
  } else {
    decision.action = FaultAction::kNone;
  }
  if (decision.action != FaultAction::kNone) {
    ++injected_;
  }
  return decision;
}

int64_t FaultInjector::decisions() const {
  MutexLock lock(mu_);
  return decisions_;
}

int64_t FaultInjector::injected() const {
  MutexLock lock(mu_);
  return injected_;
}

void InstallGlobalFaultInjector(std::shared_ptr<FaultInjector> injector) {
  MutexLock lock(g_global_mu);
  GlobalSlot() = std::move(injector);
}

std::shared_ptr<FaultInjector> GlobalFaultInjector() {
  MutexLock lock(g_global_mu);
  return GlobalSlot();
}

Socket FaultInjectingSocket(Socket base, std::shared_ptr<FaultInjector> injector) {
  base.set_fault_injector(std::move(injector));
  return base;
}

uint64_t FaultSeedFromEnv(uint64_t fallback) {
  const char* text = std::getenv("DCP_FAULT_SEED");
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || (end != nullptr && *end != '\0')) {
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

}  // namespace dcp
