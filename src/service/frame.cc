#include "service/frame.h"

#include <cstring>

#include "common/crc32.h"

namespace dcp {
namespace {

constexpr uint32_t kFrameMagic = 0x66504344;  // "DCPf" little-endian.
constexpr size_t kHeaderBytes = 16;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

uint32_t ReadU32At(const char* bytes) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(const char* bytes) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

bool IsKnownFrameType(uint32_t type) {
  return type >= static_cast<uint32_t>(FrameType::kPlanRequest) &&
         type <= static_cast<uint32_t>(FrameType::kSyncResponse);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + 4);
  AppendU32(out, kFrameMagic);
  AppendU32(out, static_cast<uint32_t>(type));
  AppendU64(out, payload.size());
  out.append(payload);
  AppendU32(out, Crc32(out));
  return out;
}

StatusOr<Frame> ReadFrame(Socket& socket, uint64_t max_payload_bytes) {
  char header[kHeaderBytes];
  DCP_RETURN_IF_ERROR(socket.RecvAll(header, sizeof(header)));
  const uint32_t magic = ReadU32At(header);
  if (magic != kFrameMagic) {
    return Status::DataLoss("frame: bad magic");
  }
  const uint32_t type = ReadU32At(header + 4);
  if (!IsKnownFrameType(type)) {
    return Status::DataLoss("frame: unknown type " + std::to_string(type));
  }
  const uint64_t length = ReadU64At(header + 8);
  if (length > max_payload_bytes) {
    return Status::DataLoss("frame: implausible payload length " +
                            std::to_string(length));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(static_cast<size_t>(length));
  if (length > 0) {
    Status read = socket.RecvAll(frame.payload.data(), frame.payload.size());
    if (!read.ok()) {
      // A close inside the payload is a torn frame regardless of RecvAll's code.
      return Status::DataLoss("frame: " + read.message());
    }
  }
  char trailer[4];
  Status read = socket.RecvAll(trailer, sizeof(trailer));
  if (!read.ok()) {
    return Status::DataLoss("frame: " + read.message());
  }
  uint32_t crc = Crc32Update(0, header, sizeof(header));
  crc = Crc32Update(crc, frame.payload.data(), frame.payload.size());
  if (crc != ReadU32At(trailer)) {
    return Status::DataLoss("frame: checksum mismatch");
  }
  return frame;
}

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload) {
  return socket.SendAll(EncodeFrame(type, payload));
}

}  // namespace dcp
