#include "service/frame.h"

#include <cstring>

#include "common/crc32.h"

namespace dcp {
namespace {

constexpr uint32_t kFrameMagic = 0x66504344;  // "DCPf" little-endian.
constexpr size_t kHeaderBytes = 16;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

uint32_t ReadU32At(const char* bytes) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(const char* bytes) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

bool IsKnownFrameType(uint32_t type) {
  return type >= static_cast<uint32_t>(FrameType::kPlanRequest) &&
         type <= static_cast<uint32_t>(FrameType::kMetricsResponse);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + 4);
  AppendU32(out, kFrameMagic);
  AppendU32(out, static_cast<uint32_t>(type));
  AppendU64(out, payload.size());
  out.append(payload);
  AppendU32(out, Crc32(out));
  return out;
}

StatusOr<Frame> ReadFrame(Socket& socket, uint64_t max_payload_bytes) {
  char header[kHeaderBytes];
  DCP_RETURN_IF_ERROR(socket.RecvAll(header, sizeof(header)));
  const uint32_t magic = ReadU32At(header);
  if (magic != kFrameMagic) {
    return Status::DataLoss("frame: bad magic");
  }
  const uint32_t type = ReadU32At(header + 4);
  if (!IsKnownFrameType(type)) {
    return Status::DataLoss("frame: unknown type " + std::to_string(type));
  }
  const uint64_t length = ReadU64At(header + 8);
  if (length > max_payload_bytes) {
    return Status::DataLoss("frame: implausible payload length " +
                            std::to_string(length));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(static_cast<size_t>(length));
  if (length > 0) {
    Status read = socket.RecvAll(frame.payload.data(), frame.payload.size());
    if (!read.ok()) {
      // A close inside the payload is a torn frame regardless of RecvAll's code.
      return Status::DataLoss("frame: " + read.message());
    }
  }
  char trailer[4];
  Status read = socket.RecvAll(trailer, sizeof(trailer));
  if (!read.ok()) {
    return Status::DataLoss("frame: " + read.message());
  }
  uint32_t crc = Crc32Update(0, header, sizeof(header));
  crc = Crc32Update(crc, frame.payload.data(), frame.payload.size());
  if (crc != ReadU32At(trailer)) {
    return Status::DataLoss("frame: checksum mismatch");
  }
  return frame;
}

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload) {
  return socket.SendAll(EncodeFrame(type, payload));
}

FrameParts EncodeFrameParts(FrameType type, std::string_view payload_head,
                            std::shared_ptr<const std::string> payload_body) {
  FrameParts parts;
  const size_t body_size = payload_body == nullptr ? 0 : payload_body->size();
  parts.head.reserve(kHeaderBytes + payload_head.size());
  AppendU32(parts.head, kFrameMagic);
  AppendU32(parts.head, static_cast<uint32_t>(type));
  AppendU64(parts.head, payload_head.size() + body_size);
  parts.head.append(payload_head);
  uint32_t crc = Crc32Update(0, parts.head.data(), parts.head.size());
  if (body_size > 0) {
    crc = Crc32Update(crc, payload_body->data(), body_size);
    parts.body = std::move(payload_body);
  }
  for (int i = 0; i < 4; ++i) {
    parts.crc[i] = static_cast<char>(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return parts;
}

std::string FlattenFrameParts(const FrameParts& parts) {
  std::string out;
  out.reserve(parts.TotalBytes());
  out.append(parts.head);
  if (parts.body != nullptr) {
    out.append(*parts.body);
  }
  out.append(parts.crc.data(), parts.crc.size());
  return out;
}

FrameAssembler::FrameAssembler(uint64_t max_payload_bytes)
    : max_payload_bytes_(max_payload_bytes) {}

void FrameAssembler::Append(const char* data, size_t n) {
  if (failed_ || n == 0) {
    return;  // A desynced stream buffers nothing further.
  }
  // Compact once the parsed prefix dominates, so the buffer stays proportional to the
  // unparsed remainder instead of growing with connection lifetime.
  if (consumed_ > 4096 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

StatusOr<Frame> FrameAssembler::Next() {
  if (failed_) {
    return error_;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) {
    return Status::NotFound("frame: need more bytes");
  }
  const char* header = buffer_.data() + consumed_;
  // Header validation runs as soon as 16 bytes exist: garbage is rejected without
  // waiting for (or allocating) a payload the claimed length implies.
  const uint32_t magic = ReadU32At(header);
  if (magic != kFrameMagic) {
    failed_ = true;
    error_ = Status::DataLoss("frame: bad magic");
    return error_;
  }
  const uint32_t type = ReadU32At(header + 4);
  if (!IsKnownFrameType(type)) {
    failed_ = true;
    error_ = Status::DataLoss("frame: unknown type " + std::to_string(type));
    return error_;
  }
  const uint64_t length = ReadU64At(header + 8);
  if (length > max_payload_bytes_) {
    failed_ = true;
    error_ =
        Status::DataLoss("frame: implausible payload length " + std::to_string(length));
    return error_;
  }
  const size_t total = kHeaderBytes + static_cast<size_t>(length) + 4;
  if (available < total) {
    return Status::NotFound("frame: need more bytes");
  }
  uint32_t crc = Crc32Update(0, header, kHeaderBytes);
  crc = Crc32Update(crc, header + kHeaderBytes, static_cast<size_t>(length));
  if (crc != ReadU32At(header + kHeaderBytes + length)) {
    failed_ = true;
    error_ = Status::DataLoss("frame: checksum mismatch");
    return error_;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(header + kHeaderBytes, static_cast<size_t>(length));
  consumed_ += total;
  return frame;
}

}  // namespace dcp
