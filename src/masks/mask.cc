#include "masks/mask.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace dcp {

int64_t RangePair::OverlapWith(int64_t lo, int64_t hi) const {
  const int64_t o0 = std::max<int64_t>(0, std::min(end0, hi) - std::max(begin0, lo));
  const int64_t o1 = std::max<int64_t>(0, std::min(end1, hi) - std::max(begin1, lo));
  return o0 + o1;
}

RangePair NormalizeRanges(int64_t b0, int64_t e0, int64_t b1, int64_t e1) {
  // Drop empty ranges.
  if (e0 <= b0) {
    b0 = b1;
    e0 = e1;
    b1 = 0;
    e1 = 0;
  }
  if (e1 <= b1) {
    b1 = 0;
    e1 = 0;
  }
  RangePair out;
  if (e0 <= b0) {
    return out;  // both empty
  }
  if (e1 > b1 && b1 < b0) {
    std::swap(b0, b1);
    std::swap(e0, e1);
  }
  // Merge if overlapping or adjacent.
  if (e1 > b1 && b1 <= e0) {
    e0 = std::max(e0, e1);
    b1 = 0;
    e1 = 0;
  }
  out.begin0 = b0;
  out.end0 = e0;
  out.begin1 = b1;
  out.end1 = e1;
  return out;
}

namespace {

std::vector<RangePair> BuildCausal(int64_t length) {
  std::vector<RangePair> ranges(static_cast<size_t>(length));
  for (int64_t q = 0; q < length; ++q) {
    ranges[static_cast<size_t>(q)] = NormalizeRanges(0, q + 1, 0, 0);
  }
  return ranges;
}

std::vector<RangePair> BuildLambda(const MaskSpec& spec, int64_t length) {
  std::vector<RangePair> ranges(static_cast<size_t>(length));
  for (int64_t q = 0; q < length; ++q) {
    const int64_t sink_end = std::min(spec.sink_tokens, q + 1);
    const int64_t win_begin = std::max<int64_t>(0, q + 1 - spec.window_tokens);
    ranges[static_cast<size_t>(q)] = NormalizeRanges(0, sink_end, win_begin, q + 1);
  }
  return ranges;
}

std::vector<RangePair> BuildCausalBlockwise(const MaskSpec& spec, int64_t length) {
  const int64_t bt = spec.icl_block_tokens;
  DCP_CHECK_GT(bt, 0);
  const int64_t num_blocks = CeilDiv(length, bt);
  std::vector<RangePair> ranges(static_cast<size_t>(length));
  for (int64_t q = 0; q < length; ++q) {
    const int64_t block = q / bt;
    if (block >= num_blocks - spec.test_blocks) {
      // Final test block attends to everything before it (plus itself, causally).
      ranges[static_cast<size_t>(q)] = NormalizeRanges(0, q + 1, 0, 0);
      continue;
    }
    const int64_t sink_end = std::min(spec.sink_blocks * bt, q + 1);
    const int64_t win_begin =
        std::max<int64_t>(0, (block - spec.window_blocks + 1) * bt);
    ranges[static_cast<size_t>(q)] = NormalizeRanges(0, sink_end, win_begin, q + 1);
  }
  return ranges;
}

std::vector<RangePair> BuildSharedQuestion(const SequenceInfo& info) {
  const int64_t length = info.length;
  std::vector<RangePair> ranges(static_cast<size_t>(length));
  const int64_t qlen = info.question_len;
  // Question region: plain causal.
  for (int64_t q = 0; q < std::min(qlen, length); ++q) {
    ranges[static_cast<size_t>(q)] = NormalizeRanges(0, q + 1, 0, 0);
  }
  // Each answer: attends the question plus itself causally; not the other answers.
  int64_t pos = qlen;
  for (int64_t alen : info.answer_lens) {
    for (int64_t q = pos; q < pos + alen; ++q) {
      ranges[static_cast<size_t>(q)] = NormalizeRanges(0, qlen, pos, q + 1);
    }
    pos += alen;
  }
  DCP_CHECK_EQ(pos, length);
  return ranges;
}

}  // namespace

SequenceMask::SequenceMask(MaskKind kind, std::vector<RangePair> ranges)
    : kind_(kind), ranges_(std::move(ranges)) {}

SequenceMask SequenceMask::Build(const MaskSpec& spec, const SequenceInfo& info) {
  DCP_CHECK_GT(info.length, 0);
  switch (spec.kind) {
    case MaskKind::kCausal:
      return SequenceMask(spec.kind, BuildCausal(info.length));
    case MaskKind::kLambda:
      return SequenceMask(spec.kind, BuildLambda(spec, info.length));
    case MaskKind::kCausalBlockwise:
      return SequenceMask(spec.kind, BuildCausalBlockwise(spec, info.length));
    case MaskKind::kSharedQuestion: {
      if (info.answer_lens.empty()) {
        return SequenceMask(spec.kind, BuildCausal(info.length));
      }
      return SequenceMask(spec.kind, BuildSharedQuestion(info));
    }
  }
  return SequenceMask(MaskKind::kCausal, BuildCausal(info.length));
}

int64_t SequenceMask::CountPairs(int64_t qb, int64_t qe, int64_t kb, int64_t ke) const {
  DCP_CHECK(qb >= 0 && qe <= length() && qb <= qe);
  int64_t pairs = 0;
  for (int64_t q = qb; q < qe; ++q) {
    pairs += ranges(q).OverlapWith(kb, ke);
  }
  return pairs;
}

BlockCoverage SequenceMask::Classify(int64_t qb, int64_t qe, int64_t kb, int64_t ke,
                                     int64_t* pairs_out) const {
  const int64_t pairs = CountPairs(qb, qe, kb, ke);
  if (pairs_out != nullptr) {
    *pairs_out = pairs;
  }
  if (pairs == 0) {
    return BlockCoverage::kEmpty;
  }
  if (pairs == (qe - qb) * (ke - kb)) {
    return BlockCoverage::kFull;
  }
  return BlockCoverage::kPartial;
}

int64_t SequenceMask::TotalPairs() const {
  if (cached_total_pairs_ < 0) {
    int64_t total = 0;
    for (const RangePair& r : ranges_) {
      total += r.TotalLength();
    }
    cached_total_pairs_ = total;
  }
  return cached_total_pairs_;
}

double SequenceMask::SparsityVsCausal() const {
  const int64_t n = length();
  const double causal_pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n + 1);
  return static_cast<double>(TotalPairs()) / causal_pairs;
}

std::vector<SequenceMask> BuildBatchMasks(const MaskSpec& spec,
                                          const std::vector<int64_t>& seqlens) {
  std::vector<SequenceMask> masks;
  masks.reserve(seqlens.size());
  for (int64_t len : seqlens) {
    masks.push_back(SequenceMask::Build(spec, MakeSequenceInfo(spec, len)));
  }
  return masks;
}

}  // namespace dcp
