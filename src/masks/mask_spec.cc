#include "masks/mask_spec.h"

#include "common/check.h"

namespace dcp {

std::string MaskKindName(MaskKind kind) {
  switch (kind) {
    case MaskKind::kCausal:
      return "Causal";
    case MaskKind::kLambda:
      return "Lambda";
    case MaskKind::kCausalBlockwise:
      return "CausalBlockwise";
    case MaskKind::kSharedQuestion:
      return "SharedQuestion";
  }
  return "Unknown";
}

const std::vector<MaskKind>& AllMaskKinds() {
  static const std::vector<MaskKind> kinds = {
      MaskKind::kCausal, MaskKind::kLambda, MaskKind::kCausalBlockwise,
      MaskKind::kSharedQuestion};
  return kinds;
}

MaskSpec MaskSpec::Causal() { return MaskSpec{}; }

MaskSpec MaskSpec::Lambda(int64_t sink, int64_t window) {
  MaskSpec spec;
  spec.kind = MaskKind::kLambda;
  spec.sink_tokens = sink;
  spec.window_tokens = window;
  return spec;
}

MaskSpec MaskSpec::CausalBlockwise(int64_t block, int64_t window_blocks, int64_t sink_blocks,
                                   int64_t test_blocks) {
  MaskSpec spec;
  spec.kind = MaskKind::kCausalBlockwise;
  spec.icl_block_tokens = block;
  spec.window_blocks = window_blocks;
  spec.sink_blocks = sink_blocks;
  spec.test_blocks = test_blocks;
  return spec;
}

MaskSpec MaskSpec::SharedQuestion(int num_answers, double answer_fraction) {
  MaskSpec spec;
  spec.kind = MaskKind::kSharedQuestion;
  spec.num_answers = num_answers;
  spec.answer_fraction = answer_fraction;
  return spec;
}

MaskSpec MaskSpec::ForKind(MaskKind kind) {
  switch (kind) {
    case MaskKind::kCausal:
      return Causal();
    case MaskKind::kLambda:
      return Lambda();
    case MaskKind::kCausalBlockwise:
      return CausalBlockwise();
    case MaskKind::kSharedQuestion:
      return SharedQuestion();
  }
  return Causal();
}

SequenceInfo MakeSequenceInfo(const MaskSpec& spec, int64_t length) {
  DCP_CHECK_GT(length, 0);
  SequenceInfo info;
  info.length = length;
  if (spec.kind == MaskKind::kSharedQuestion) {
    DCP_CHECK_GT(spec.num_answers, 0);
    DCP_CHECK_GT(spec.answer_fraction, 0.0);
    DCP_CHECK_LT(spec.answer_fraction * spec.num_answers, 1.0 + 1e-9);
    int64_t answer_len = static_cast<int64_t>(
        static_cast<double>(length) * spec.answer_fraction);
    // Very short sequences degenerate gracefully: at least 1 token per answer, and the
    // question keeps at least 1 token.
    answer_len = std::max<int64_t>(answer_len, 1);
    while (answer_len * spec.num_answers >= length && answer_len > 1) {
      --answer_len;
    }
    int64_t total_answers = answer_len * spec.num_answers;
    if (total_answers >= length) {
      // length too small to host all answers; collapse to pure causal composition.
      info.question_len = length;
      return info;
    }
    info.question_len = length - total_answers;
    info.answer_lens.assign(static_cast<size_t>(spec.num_answers), answer_len);
  }
  return info;
}

}  // namespace dcp
