// Materialized per-sequence attention masks.
//
// Every supported mask is represented as at most two disjoint half-open kv ranges per query
// token (the paper's executor limitation, §5 "Blockwise Attention"). This gives O(1) point
// queries, O(block) pair counting, and exact block classification for block generation.
#ifndef DCP_MASKS_MASK_H_
#define DCP_MASKS_MASK_H_

#include <cstdint>
#include <vector>

#include "masks/mask_spec.h"

namespace dcp {

// Two disjoint, sorted, half-open ranges of kv indices a query token attends to.
// An unused range is encoded as begin == end == 0.
struct RangePair {
  int64_t begin0 = 0;
  int64_t end0 = 0;
  int64_t begin1 = 0;
  int64_t end1 = 0;

  int64_t TotalLength() const { return (end0 - begin0) + (end1 - begin1); }
  bool Contains(int64_t k) const {
    return (k >= begin0 && k < end0) || (k >= begin1 && k < end1);
  }
  // Number of positions in the intersection with [lo, hi).
  int64_t OverlapWith(int64_t lo, int64_t hi) const;
};

// Builds a normalized RangePair from up to two raw ranges (merges overlaps, drops empties,
// sorts). Raw ranges may be unsorted or overlapping.
RangePair NormalizeRanges(int64_t b0, int64_t e0, int64_t b1, int64_t e1);

enum class BlockCoverage {
  kEmpty,    // No (q, k) pair in the tile is attended: block never constructed.
  kPartial,  // Some pairs masked: kernel applies the range mask.
  kFull,     // Dense tile: kernel can skip mask checks.
};

// A fully materialized mask for one sequence: one RangePair per query token.
class SequenceMask {
 public:
  // Builds the mask for `info` under `spec`. O(length) time and memory.
  static SequenceMask Build(const MaskSpec& spec, const SequenceInfo& info);

  int64_t length() const { return static_cast<int64_t>(ranges_.size()); }
  MaskKind kind() const { return kind_; }
  const RangePair& ranges(int64_t q) const { return ranges_[static_cast<size_t>(q)]; }

  // Point query: does token q attend to kv position k?
  bool Attends(int64_t q, int64_t k) const { return ranges(q).Contains(k); }

  // Number of attended (q, k) pairs in the tile [qb, qe) x [kb, ke). O(qe - qb).
  int64_t CountPairs(int64_t qb, int64_t qe, int64_t kb, int64_t ke) const;

  // Classification of the tile plus its pair count in one pass.
  BlockCoverage Classify(int64_t qb, int64_t qe, int64_t kb, int64_t ke,
                         int64_t* pairs_out) const;

  // Total attended pairs over the whole sequence (cached after first call).
  int64_t TotalPairs() const;

  // FLOPs ratio of this mask relative to a causal mask of the same length
  // (the paper's "mask sparsity" metric in Fig. 19; causal == 1.0).
  double SparsityVsCausal() const;

 private:
  SequenceMask(MaskKind kind, std::vector<RangePair> ranges);

  MaskKind kind_;
  std::vector<RangePair> ranges_;
  mutable int64_t cached_total_pairs_ = -1;
};

// Convenience: build masks for a whole batch of sequence lengths.
std::vector<SequenceMask> BuildBatchMasks(const MaskSpec& spec,
                                          const std::vector<int64_t>& seqlens);

}  // namespace dcp

#endif  // DCP_MASKS_MASK_H_
