// Mask specifications: the four attention patterns evaluated in the paper (§2.4, Fig. 6),
// plus the parameters the evaluation fixes for each (§7.1 "Attention Masks").
//
// Every mask here is "causal at heart": a query token q may only attend to kv positions
// <= q; the sparse masks then restrict that further. Each mask lowers to at most two
// contiguous kv ranges per query token, which is exactly the representation the paper's
// executor supports.
#ifndef DCP_MASKS_MASK_SPEC_H_
#define DCP_MASKS_MASK_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcp {

enum class MaskKind {
  kCausal,           // Fig. 6a: full lower-triangular.
  kLambda,           // Fig. 6b: attention sink + sliding window.
  kCausalBlockwise,  // Fig. 6c: block sink + block sliding window + global test block.
  kSharedQuestion,   // Fig. 6d: shared prefix question, causal answers attending the question.
};

std::string MaskKindName(MaskKind kind);
const std::vector<MaskKind>& AllMaskKinds();

// Per-sequence composition metadata. For most masks only `length` matters; the shared
// question mask also needs the question/answer split (available from the dataset, as in
// the paper's mask_fn interface).
struct SequenceInfo {
  int64_t length = 0;
  int64_t question_len = 0;             // kSharedQuestion only.
  std::vector<int64_t> answer_lens;     // kSharedQuestion only; sums to length - question_len.
};

struct MaskSpec {
  MaskKind kind = MaskKind::kCausal;

  // kLambda parameters (paper: 64 sink tokens, window 4096).
  int64_t sink_tokens = 64;
  int64_t window_tokens = 4096;

  // kCausalBlockwise parameters (paper: block 256, window 2 blocks, 1 sink block, 1 test
  // block that attends to all previous tokens).
  int64_t icl_block_tokens = 256;
  int64_t window_blocks = 2;
  int64_t sink_blocks = 1;
  int64_t test_blocks = 1;

  // kSharedQuestion parameters (paper: 1 question, 4 answers, each answer 20% of the
  // sequence length; the question takes the remainder).
  int num_answers = 4;
  double answer_fraction = 0.2;

  static MaskSpec Causal();
  static MaskSpec Lambda(int64_t sink = 64, int64_t window = 4096);
  static MaskSpec CausalBlockwise(int64_t block = 256, int64_t window_blocks = 2,
                                  int64_t sink_blocks = 1, int64_t test_blocks = 1);
  static MaskSpec SharedQuestion(int num_answers = 4, double answer_fraction = 0.2);
  static MaskSpec ForKind(MaskKind kind);
};

// Fills in per-sequence composition for a mask kind (e.g. the question/answer split for the
// shared question mask) given the raw sequence length.
SequenceInfo MakeSequenceInfo(const MaskSpec& spec, int64_t length);

}  // namespace dcp

#endif  // DCP_MASKS_MASK_SPEC_H_
