#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dcp {

std::string DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kLongAlign:
      return "LongAlign";
    case DatasetKind::kLongDataCollections:
      return "LongDataCollections";
  }
  return "Unknown";
}

LengthSampler::LengthSampler(const DatasetConfig& config)
    : config_(config), rng_(config.seed) {
  DCP_CHECK_GT(config_.max_seq_len, 0);
  DCP_CHECK_GT(config_.min_seq_len, 0);
  DCP_CHECK_GT(config_.length_scale, 0.0);
}

int64_t LengthSampler::Next() {
  // Log-normal mixtures fit to the paper's Fig. 2 histograms. Parameters are of the
  // underlying normal (mu = ln(median)).
  double raw = 0.0;
  switch (config_.kind) {
    case DatasetKind::kLongAlign: {
      // Longer mean, fewer short sequences; occasional very long documents.
      const double u = rng_.NextDouble();
      if (u < 0.85) {
        raw = rng_.NextLogNormal(std::log(9000.0), 0.85);
      } else {
        raw = rng_.NextLogNormal(std::log(52000.0), 0.55);
      }
      break;
    }
    case DatasetKind::kLongDataCollections: {
      // Dominated by short sequences with a long tail.
      const double u = rng_.NextDouble();
      if (u < 0.90) {
        raw = rng_.NextLogNormal(std::log(2600.0), 1.15);
      } else {
        raw = rng_.NextLogNormal(std::log(38000.0), 0.75);
      }
      break;
    }
  }
  raw *= config_.length_scale;
  int64_t length = static_cast<int64_t>(std::llround(raw));
  length = std::clamp(length, config_.min_seq_len, config_.max_seq_len);
  return length;
}

std::vector<int64_t> LengthSampler::Sample(int count) {
  std::vector<int64_t> lengths;
  lengths.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    lengths.push_back(Next());
  }
  return lengths;
}

}  // namespace dcp
