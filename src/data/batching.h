// Token-budget batching: packs variable-length sequences into global batches of a fixed
// token budget (the paper uses 131072 tokens per iteration).
#ifndef DCP_DATA_BATCHING_H_
#define DCP_DATA_BATCHING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace dcp {

// One training batch: the sequence lengths it contains, in arrival order.
struct Batch {
  std::vector<int64_t> seqlens;

  int64_t TotalTokens() const;
  int64_t MaxSeqLen() const;
  int NumSequences() const { return static_cast<int>(seqlens.size()); }
};

struct BatchingConfig {
  int64_t token_budget = 131072;
};

// Greedy first-fit packer over a length stream: sequences are appended in sample order
// until the next one would overflow the budget (it then opens the following batch).
// A sequence longer than the budget is truncated to the budget.
class BatchStream {
 public:
  BatchStream(LengthSampler sampler, const BatchingConfig& config);

  Batch NextBatch();
  std::vector<Batch> NextBatches(int count);

 private:
  LengthSampler sampler_;
  BatchingConfig config_;
  int64_t carry_ = 0;  // Sequence sampled but not yet placed (would have overflowed).
};

}  // namespace dcp

#endif  // DCP_DATA_BATCHING_H_
