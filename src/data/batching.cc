#include "data/batching.h"

#include <algorithm>

#include "common/check.h"

namespace dcp {

int64_t Batch::TotalTokens() const {
  int64_t total = 0;
  for (int64_t len : seqlens) {
    total += len;
  }
  return total;
}

int64_t Batch::MaxSeqLen() const {
  int64_t longest = 0;
  for (int64_t len : seqlens) {
    longest = std::max(longest, len);
  }
  return longest;
}

BatchStream::BatchStream(LengthSampler sampler, const BatchingConfig& config)
    : sampler_(std::move(sampler)), config_(config) {
  DCP_CHECK_GT(config_.token_budget, 0);
}

Batch BatchStream::NextBatch() {
  Batch batch;
  int64_t used = 0;
  while (true) {
    int64_t len = carry_ != 0 ? carry_ : sampler_.Next();
    carry_ = 0;
    len = std::min(len, config_.token_budget);
    if (used + len > config_.token_budget) {
      carry_ = len;
      break;
    }
    batch.seqlens.push_back(len);
    used += len;
    if (used == config_.token_budget) {
      break;
    }
  }
  DCP_CHECK(!batch.seqlens.empty());
  return batch;
}

std::vector<Batch> BatchStream::NextBatches(int count) {
  std::vector<Batch> batches;
  batches.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    batches.push_back(NextBatch());
  }
  return batches;
}

}  // namespace dcp
