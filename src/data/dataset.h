// Synthetic sequence-length datasets.
//
// The paper evaluates on LongAlign and LongDataCollections, both exhibiting skewed,
// long-tailed length distributions (paper Fig. 2). Those datasets are not available here;
// we substitute log-normal mixture samplers fit to the figure: LongDataCollections is
// dominated by short sequences with a long tail, LongAlign has a longer mean and fewer
// short sequences. All experiments depend on the data only through this distribution.
#ifndef DCP_DATA_DATASET_H_
#define DCP_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dcp {

enum class DatasetKind {
  kLongAlign,
  kLongDataCollections,
};

std::string DatasetKindName(DatasetKind kind);

struct DatasetConfig {
  DatasetKind kind = DatasetKind::kLongDataCollections;
  // The paper's sequence-length scale knob (0.5 / 1 / 2 / 4): every sampled length is
  // multiplied by this before capping.
  double length_scale = 1.0;
  int64_t max_seq_len = 131072;  // Lengths are capped here (paper caps at 131072).
  int64_t min_seq_len = 64;
  uint64_t seed = 42;
};

// Infinite deterministic stream of sequence lengths.
class LengthSampler {
 public:
  explicit LengthSampler(const DatasetConfig& config);

  int64_t Next();
  std::vector<int64_t> Sample(int count);
  const DatasetConfig& config() const { return config_; }

 private:
  DatasetConfig config_;
  Rng rng_;
};

}  // namespace dcp

#endif  // DCP_DATA_DATASET_H_
