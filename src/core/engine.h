// The DCP session engine: the one object a training job constructs per (cluster,
// configuration) pair. It owns what the free-function facade used to scatter across
// callers — the planner options, the look-ahead thread pool, and a sharded LRU cache of
// compiled plans keyed by PlanSignature — and hands plans out as shared immutable
// handles, so repeated batches (dataset buckets recur constantly in production traffic)
// skip planning entirely and flow through the lookahead queue and the executor without
// deep copies.
//
//   Engine engine(cluster, options);
//   StatusOr<PlanHandle> plan = engine.Plan(seqlens, mask_spec);   // cache hit: O(hash)
//   executor.Prepare(plan.value());                                // reuses buffers when
//                                                                  // the signature matches
//
// User-input errors (empty batches, bad block sizes, malformed cluster shapes) come back
// as recoverable Status values; internal planner invariants still DCP_CHECK.
#ifndef DCP_CORE_ENGINE_H_
#define DCP_CORE_ENGINE_H_

#include <cstdint>
#include <initializer_list>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/plan_signature.h"
#include "core/plan_store.h"
#include "core/planner.h"
#include "masks/mask.h"
#include "runtime/cluster.h"
#include "runtime/instructions.h"

namespace dcp {

// An immutable compiled plan: the instruction streams plus the materialized masks they
// were planned against and the signature that identifies both. Shared by the cache, the
// lookahead queue, and the executor; never mutated after construction.
struct CompiledPlan {
  PlanSignature signature;
  BatchPlan plan;
  std::vector<SequenceMask> masks;
};

using PlanHandle = std::shared_ptr<const CompiledPlan>;

// Where a served plan came from, for callers (the planning service, benches) that
// need to distinguish the cache tiers without poking at counters.
enum class PlanOrigin {
  kFresh = 0,     // The planner ran.
  kMemoryCache,   // Served from the in-memory LRU.
  kStoreCache,    // Served from the persistent plan store.
};

// The planning interface shared by the in-process Engine and the remote PlanClient
// (src/service/plan_client.h): hand a DcpDataLoader a Planner and it neither knows nor
// cares whether plans come from a local planner thread or a planning service across the
// network — the handles are bit-identical either way.
class Planner {
 public:
  virtual ~Planner() = default;

  // Plans `seqlens` under `mask_spec` at the session's configured block size.
  virtual StatusOr<PlanHandle> Plan(const std::vector<int64_t>& seqlens,
                                    const MaskSpec& mask_spec) = 0;
  // Plans under the session's loader policy (fixed block size, or per-signature
  // auto-tune when enabled). For a remote planner the policy is the tenant's.
  virtual StatusOr<PlanHandle> PlanForLoader(const std::vector<int64_t>& seqlens,
                                             const MaskSpec& mask_spec) = 0;
  // The pool look-ahead planning is scheduled on (paper §6.1 overlap).
  virtual ThreadPool& pool() = 0;
};

struct EngineOptions {
  PlannerOptions planner;
  // Threads for look-ahead planning (the paper's §6.1 overlap); the partitioner
  // portfolio inside each PlanBatch additionally fans out on the global pool.
  int planner_threads = 2;
  // Total cached plans across all shards (exact bound); 0 disables caching entirely.
  int plan_cache_capacity = 64;
  int plan_cache_shards = 4;
  // Bound on AutoTune's per-signature winner table (tiny entries, but long-running
  // sessions with churning batch shapes must not grow without limit).
  int tune_cache_capacity = 1024;
  // When set, the data-loader path tunes the block size per batch signature instead of
  // using planner.block_size verbatim (paper §7.1's search, amortized by the tune cache).
  bool auto_tune_block_size = false;
  std::vector<int64_t> tune_block_sizes = {512, 1024, 2048, 4096};
  // When non-empty, a PlanStore directory backing the in-memory cache across process
  // restarts: the signature index is warm-loaded at construction, cache misses consult
  // the store before planning (a disk hit skips the planner entirely and is counted in
  // store_hits), and fresh plans plus LRU evictions write through atomically. Corrupt or
  // truncated records are counted, skipped, and replanned around — never fatal. If the
  // directory cannot be opened the engine runs store-less; see store_status().
  std::string plan_store_path;
  // When non-empty, every instrument this engine registers carries
  // tenant="<metrics_tenant>" so a process hosting many engines (the planning
  // service) scrapes them apart. Unlabeled engines' series merge in the scrape.
  std::string metrics_tenant;
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;
  int64_t tune_hits = 0;    // AutoTune served from the per-signature winner table.
  int64_t tune_misses = 0;  // AutoTune that ran the full block-size search.
  // Plan-store (cross-process persistence) counters; all zero when no store is attached.
  int64_t store_hits = 0;            // Cache misses served from disk instead of planning.
  int64_t store_writes = 0;          // Records written through (fresh plans + evictions).
  int64_t store_corrupt_skipped = 0; // Records that failed validation and were skipped.

  double HitRate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct AutoTuneResult {
  PlanHandle plan;
  int64_t best_block_size = 0;
  // Simulated fw+bw seconds of the winner; 0 when served from the tune cache without
  // re-simulating.
  double best_fwbw_seconds = 0.0;
  // (block size, simulated seconds) per candidate; empty when served from the cache.
  std::vector<std::pair<int64_t, double>> candidates;
  bool tuned_from_cache = false;
  // Which tier served the winning plan (a cached tune winner is usually also a
  // plan-cache hit).
  PlanOrigin plan_origin = PlanOrigin::kFresh;
};

// Validates one planning request's user inputs. Exposed for front ends (dcpctl) that
// want to report errors before constructing an Engine. Seqlens are a span (vectors
// convert implicitly) so the planning service can validate straight out of an
// arena-decoded request without copying.
Status ValidatePlanRequest(std::span<const int64_t> seqlens, const MaskSpec& mask_spec,
                           const ClusterSpec& cluster, const PlannerOptions& options);
// Braced-list convenience (std::span gains this constructor only in C++26).
inline Status ValidatePlanRequest(std::initializer_list<int64_t> seqlens,
                                  const MaskSpec& mask_spec, const ClusterSpec& cluster,
                                  const PlannerOptions& options) {
  return ValidatePlanRequest(std::span<const int64_t>(seqlens.begin(), seqlens.size()),
                             mask_spec, cluster, options);
}

class Engine : public Planner {
 public:
  Engine(ClusterSpec cluster, EngineOptions options);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Plans `seqlens` under `mask_spec` at the engine's configured block size. Cache hits
  // return the previously compiled handle without touching the planner.
  StatusOr<PlanHandle> Plan(const std::vector<int64_t>& seqlens,
                            const MaskSpec& mask_spec) override;
  // Same, at an explicit block size (AutoTune and tests use this). When `origin` is
  // non-null it reports which tier served the plan. Takes a span so the cache-hit path
  // (signature hash + LRU lookup) runs without materializing a seqlens vector; the
  // seqlens are only copied when the request actually misses to the planner.
  StatusOr<PlanHandle> PlanWithBlockSize(std::span<const int64_t> seqlens,
                                         const MaskSpec& mask_spec, int64_t block_size,
                                         PlanOrigin* origin = nullptr);
  StatusOr<PlanHandle> PlanWithBlockSize(std::initializer_list<int64_t> seqlens,
                                         const MaskSpec& mask_spec, int64_t block_size,
                                         PlanOrigin* origin = nullptr) {
    return PlanWithBlockSize(std::span<const int64_t>(seqlens.begin(), seqlens.size()),
                             mask_spec, block_size, origin);
  }

  // The paper's block-size search, cached per tune signature: the first sight of a batch
  // shape plans every candidate and prices it on the simulator; later sightings reuse
  // the recorded winner (usually a plan-cache hit as well).
  StatusOr<AutoTuneResult> AutoTune(std::span<const int64_t> seqlens,
                                    const MaskSpec& mask_spec);
  StatusOr<AutoTuneResult> AutoTune(std::initializer_list<int64_t> seqlens,
                                    const MaskSpec& mask_spec) {
    return AutoTune(std::span<const int64_t>(seqlens.begin(), seqlens.size()),
                    mask_spec);
  }

  // Plans either at the fixed block size or through AutoTune, per
  // options().auto_tune_block_size — the data loader's single entry point.
  StatusOr<PlanHandle> PlanForLoader(const std::vector<int64_t>& seqlens,
                                     const MaskSpec& mask_spec) override;

  // The planning service's entry point: one call that applies the session policy
  // (`block_size` 0) or an explicit block size, and reports which cache tier served
  // the plan.
  struct PlannedOutcome {
    PlanHandle handle;
    PlanOrigin origin = PlanOrigin::kFresh;
  };
  StatusOr<PlannedOutcome> PlanDetailed(std::span<const int64_t> seqlens,
                                        const MaskSpec& mask_spec,
                                        int64_t block_size = 0);

  const ClusterSpec& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }
  // The engine-owned pool the data loader schedules look-ahead planning on.
  ThreadPool& pool() override { return *pool_; }

  // A snapshot of every compiled plan currently in the in-memory LRU (shard by shard,
  // MRU first within a shard). The planning service's anti-entropy gossip enumerates
  // this to learn what the replica can ship; handles are immutable, so the snapshot
  // stays valid however the cache churns afterwards.
  std::vector<PlanHandle> CachedPlans() const;

  // The canonical signature PlanWithBlockSize would assign to this request (block_size
  // 0: the engine's fixed block size). Returns the validation error on malformed
  // input. Not meaningful for tenants with auto_tune_block_size set and block_size 0 —
  // there the signature depends on the tuning search; callers gate on
  // options().auto_tune_block_size.
  StatusOr<PlanSignature> RequestSignature(std::span<const int64_t> seqlens,
                                           const MaskSpec& mask_spec,
                                           int64_t block_size = 0) const;

  // A coherent snapshot of every counter: all shard locks are held simultaneously
  // while the shard counters are read, so concurrent Plan() callers (service worker
  // threads) can never make `hits + misses` disagree with the number of completed
  // lookups, and `entries` always matches a real instant of the cache.
  PlanCacheStats cache_stats() const;
  void ClearCache();

  // The attached plan store, or nullptr when plan_store_path is empty / failed to open.
  PlanStore* plan_store() const { return store_.get(); }
  // OK when no store was requested or it opened cleanly; the open error otherwise (the
  // engine still works, it just plans cold).
  const Status& store_status() const { return store_status_; }

  // The engine's child metrics registry (attached to metrics::Registry::Global()
  // for the process scrape; labeled with options().metrics_tenant when set).
  // PlanCacheStats is a thin view over counters registered here.
  metrics::Registry* metrics_registry() const { return metrics_.get(); }

 private:
  struct Shard {
    mutable Mutex mu;
    // Front = most recently used. The map indexes into the list.
    std::list<PlanHandle> lru DCP_GUARDED_BY(mu);
    std::unordered_map<PlanSignature, std::list<PlanHandle>::iterator, PlanSignatureHash>
        index DCP_GUARDED_BY(mu);
    int64_t capacity = 0;  // Immutable after construction.
    // Registry-backed counters (PlanCacheStats is a view over them). The
    // pointers are immutable after construction; every Add() happens with mu
    // held, so the all-shard-lock snapshot in cache_stats() stays exact even
    // though the storage is atomic.
    metrics::Counter* hits = nullptr;
    metrics::Counter* misses = nullptr;
    metrics::Counter* evictions = nullptr;
    // Sampled (1 in 16) end-to-end hit latency: signature hash + LRU probe.
    metrics::Histogram* hit_latency_us = nullptr;
  };

  Shard& ShardFor(const PlanSignature& sig);
  // Returns the cached handle and records a hit, or nullptr and records a miss.
  PlanHandle CacheLookup(const PlanSignature& sig);
  // Inserts `handle`, evicting LRU entries over capacity. If another thread planted the
  // same signature first, returns the incumbent so equal signatures share one handle.
  // Evicted handles are appended to `evicted` (when non-null) so the caller can write
  // them through to the store outside the shard lock.
  PlanHandle CacheInsert(PlanHandle handle, std::vector<PlanHandle>* evicted = nullptr);
  // CacheInsert + store write-through for the fresh plan and any evictions.
  PlanHandle InsertAndPersist(std::shared_ptr<CompiledPlan> compiled);
  // Consults the plan store for `sig` on a cache miss; returns nullptr when there is no
  // store, the record is absent, or it failed validation (counted inside the store).
  PlanHandle StoreLookup(const PlanSignature& sig, std::span<const int64_t> seqlens,
                         const MaskSpec& mask_spec);

  ClusterSpec cluster_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  // Child registry holding every instrument below; created before the shards
  // and the store so their instrument pointers can be resolved at construction.
  std::shared_ptr<metrics::Registry> metrics_;
  metrics::Histogram* plan_latency_us_ = nullptr;  // Fresh-plan (miss) latency.
  metrics::Histogram* tune_latency_us_ = nullptr;  // Full block-size searches.
  // Hit-path timing sampler: a clock pair on every ~0.4us cache hit would blow
  // the observability overhead budget, so only 1 in 16 untraced hits is timed.
  std::atomic<uint64_t> probe_ticker_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<PlanStore> store_;
  Status store_status_;

  // AutoTune winner table: LRU-bounded by tune_cache_capacity.
  mutable Mutex tune_mu_;
  std::list<std::pair<PlanSignature, int64_t>> tune_lru_ DCP_GUARDED_BY(tune_mu_);
  std::unordered_map<PlanSignature,
                     std::list<std::pair<PlanSignature, int64_t>>::iterator,
                     PlanSignatureHash>
      tune_index_ DCP_GUARDED_BY(tune_mu_);
  // Registry-backed (see Shard counters): bumped with tune_mu_ held.
  metrics::Counter* tune_hits_ = nullptr;
  metrics::Counter* tune_misses_ = nullptr;
};

}  // namespace dcp

#endif  // DCP_CORE_ENGINE_H_
