#include "core/api.h"

#include "common/check.h"

namespace dcp {

void DcpExecutor::Prepare(const BatchPlan& plan, std::vector<SequenceMask> masks) {
  plan_ = plan;
  masks_ = std::move(masks);
  exec_ = std::make_unique<NumericExecutor>(&plan_, &masks_);
}

const BatchPlan& DcpExecutor::plan() const {
  DCP_CHECK(exec_ != nullptr) << "DcpExecutor::Prepare not called";
  return plan_;
}

NumericExecutor& DcpExecutor::numeric() {
  DCP_CHECK(exec_ != nullptr) << "DcpExecutor::Prepare not called";
  return *exec_;
}

std::vector<Tensor> DcpAttention::Forward(DcpExecutor& executor,
                                          const std::vector<SeqTensors>& inputs) {
  NumericExecutor& exec = executor.numeric();
  exec.LoadInputs(inputs);
  exec.RunForward();
  return exec.GatherOutputs();
}

std::vector<SeqGrads> DcpAttention::Backward(DcpExecutor& executor,
                                             const std::vector<Tensor>& douts) {
  NumericExecutor& exec = executor.numeric();
  exec.LoadOutputGrads(douts);
  exec.RunBackward();
  return exec.GatherInputGrads();
}

}  // namespace dcp
